#!/usr/bin/env bash
# prefix-smoke: the warm-up prefix-sharing perf gate.
#
# Runs the full small-scale figure grid twice against fresh stores:
#
#   1. cold pass — `-prefix-share=false`, every grid point simulates its
#      own warm-up;
#   2. shared pass — sharing on (the default), sibling grid points fork a
#      snapshot of their common warm-up prefix.
#
# Then asserts the two properties the subsystem guarantees:
#
#   * byte identity — the content-addressed object files the two passes
#     persist must be identical, file for file (object payloads exclude
#     index bookkeeping, so this is exactly "every simulation produced the
#     same bytes");
#   * sharing actually happened — the shared pass's BENCH_results.json must
#     report at least MIN_SHARED prefix-forked runs and a shorter (or at
#     worst marginally slower) wall time is left to bench-diff's gate.
set -euo pipefail

cd "$(dirname "$0")/.."

MIN_SHARED="${MIN_SHARED:-50}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/hintm-bench" ./cmd/hintm-bench

echo "prefix-smoke: cold pass (sharing off)"
"$TMP/hintm-bench" -scale small -large small -prefix-share=false \
    -store "$TMP/cold-store" -results "$TMP/cold.json" all > /dev/null

echo "prefix-smoke: shared pass (sharing on)"
"$TMP/hintm-bench" -scale small -large small \
    -store "$TMP/shared-store" -results "$TMP/shared.json" all > /dev/null

echo "prefix-smoke: store byte identity"
diff -r "$TMP/cold-store/objects" "$TMP/shared-store/objects"

COLD_SHARED=$(grep -o '"prefixShared": *[0-9]*' "$TMP/cold.json" | grep -o '[0-9]*$' || echo 0)
SHARED=$(grep -o '"prefixShared": *[0-9]*' "$TMP/shared.json" | head -1 | grep -o '[0-9]*$' || echo 0)

if [ "$COLD_SHARED" != "0" ]; then
    echo "prefix-smoke: FAIL — sharing-off pass still forked $COLD_SHARED runs" >&2
    exit 1
fi
if [ "$SHARED" -lt "$MIN_SHARED" ]; then
    echo "prefix-smoke: FAIL — shared pass forked only $SHARED runs (want >= $MIN_SHARED)" >&2
    exit 1
fi

echo "prefix-smoke: OK ($SHARED prefix-forked runs, stores byte-identical)"
