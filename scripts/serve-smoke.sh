#!/usr/bin/env bash
# serve-smoke: end-to-end smoke test of hintm-served against a temp store.
#
# Builds the service, starts it, submits the same seeded run twice through
# the HTTP API, and asserts the acceptance property of the result store:
# the second submission is a store hit, the two GET bodies are
# byte-identical, and the warm path performed zero extra simulations
# (runner_sim_runs_total on /metrics does not move). Finishes by asking for
# a graceful SIGTERM drain and requiring a clean exit.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SERVE_SMOKE_PORT:-18347}"
TMP="$(mktemp -d)"
SRV_PID=""
cleanup() {
    if [[ -n "$SRV_PID" ]] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill -9 "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/hintm-served" ./cmd/hintm-served

"$TMP/hintm-served" -addr "$ADDR" -store "$TMP/store" -scale small -large small \
    >"$TMP/served.log" 2>&1 &
SRV_PID=$!

for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "serve-smoke: server died on startup:" >&2
        cat "$TMP/served.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/healthz" >/dev/null

SPEC='{"workload":"labyrinth","scale":"small","htm":"p8","hints":"full"}'

# Cold submission: simulated now, persisted into the store.
curl -fsS -X POST "http://$ADDR/v1/runs?wait=1" -d "$SPEC" > "$TMP/r1.json"
grep -q '"status": "done"' "$TMP/r1.json" || {
    echo "serve-smoke: cold submit not 'done':" >&2; cat "$TMP/r1.json" >&2; exit 1; }
KEY=$(grep -o '"key": "[0-9a-f]*"' "$TMP/r1.json" | head -1 | cut -d'"' -f4)
[[ ${#KEY} -eq 64 ]] || { echo "serve-smoke: bad key '$KEY'" >&2; exit 1; }

curl -fsS -D "$TMP/h1.txt" "http://$ADDR/v1/runs/$KEY" > "$TMP/b1.json"
SIMS_COLD=$(curl -fsS "http://$ADDR/metrics" | awk '/^runner_sim_runs_total /{print $2}')
[[ "$SIMS_COLD" -ge 1 ]] || { echo "serve-smoke: no simulation counted" >&2; exit 1; }

# Warm submission: a store hit, byte-identical body, zero extra sim runs.
curl -fsS -X POST "http://$ADDR/v1/runs?wait=1" -d "$SPEC" > "$TMP/r2.json"
grep -q '"status": "hit"' "$TMP/r2.json" || {
    echo "serve-smoke: warm submit not a store hit:" >&2; cat "$TMP/r2.json" >&2; exit 1; }
curl -fsS -D "$TMP/h2.txt" "http://$ADDR/v1/runs/$KEY" > "$TMP/b2.json"

cmp "$TMP/b1.json" "$TMP/b2.json" || {
    echo "serve-smoke: served bodies differ between cold and warm GET" >&2; exit 1; }
grep -qi '^x-hintm-store: hit' "$TMP/h2.txt" || {
    echo "serve-smoke: warm GET not marked as a store hit:" >&2; cat "$TMP/h2.txt" >&2; exit 1; }

SIMS_WARM=$(curl -fsS "http://$ADDR/metrics" | awk '/^runner_sim_runs_total /{print $2}')
[[ "$SIMS_WARM" -eq "$SIMS_COLD" ]] || {
    echo "serve-smoke: warm path simulated ($SIMS_COLD -> $SIMS_WARM)" >&2; exit 1; }

# Graceful drain: SIGTERM must produce a clean, drained exit.
kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo "serve-smoke: server exited non-zero on SIGTERM" >&2; exit 1; }
grep -q 'drained cleanly' "$TMP/served.log" || {
    echo "serve-smoke: no drain confirmation:" >&2; cat "$TMP/served.log" >&2; exit 1; }
SRV_PID=""

echo "serve-smoke: OK (key $KEY, cold+warm byte-identical, $SIMS_COLD sim runs total)"
