#!/usr/bin/env bash
# hyp-smoke: the hypothesis-catalogue reproducibility gate.
#
# Runs `hintm-exp check` twice over every committed hypothesis at small
# scale against a fresh temp store:
#
#   1. cold pass — every grid cell simulates; each regenerated FINDINGS.md
#      must be byte-identical to the committed copy (non-zero exit on any
#      drift), proving the committed verdicts are what the current tree
#      measures;
#   2. warm pass — the same check again with -assert-warm, which exits
#      non-zero unless the store recalled every cell (total sim-runs 0),
#      proving re-verification is free once a store is populated.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/hintm-exp" ./cmd/hintm-exp

echo "hyp-smoke: cold check (every cell simulates, findings must not drift)"
"$TMP/hintm-exp" -scale small -store "$TMP/store" -all check

echo "hyp-smoke: warm check (every cell must be a store recall)"
"$TMP/hintm-exp" -scale small -store "$TMP/store" -all -assert-warm check

echo "hyp-smoke: OK"
