#!/usr/bin/env bash
# fleet-smoke: end-to-end smoke test of a 3-node hintm-served fleet.
#
# Boots three nodes with separate stores sharing one consistent-hash peer
# list, then asserts the fleet's acceptance properties:
#
#   1. A batched grid (POST /v1/grids) submitted cold to node 1 streams
#      NDJSON progress and simulates every cell exactly once.
#   2. The identical grid submitted to node 2 completes entirely warm —
#      summary shows zero simulated cells and the fleet-wide
#      runner_sim_runs_total delta is zero (the warm path never simulates).
#   3. Every node serves byte-identical object bytes for the same key.
#   4. The fleet traces tell the truth: the cold cell's assembled trace
#      (GET /v1/traces/{key} on node 1) contains a simulate span, the warm
#      resolve's trace on node 2 contains none, and `hintm-trace report
#      -fleet` renders the phase breakdown plus valid Perfetto JSON.
#   5. A seeded open-loop load run (hintm-load, bursty arrivals) against
#      all three nodes meets the p99 latency and warm hit-rate SLOs —
#      including the server-side p99 scraped from /metrics — again with
#      zero additional simulations.
#   6. SIGTERM drains every node cleanly.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT="${FLEET_SMOKE_PORT:-18441}"
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/hintm-served" ./cmd/hintm-served
go build -o "$TMP/hintm-load" ./cmd/hintm-load
go build -o "$TMP/hintm-trace" ./cmd/hintm-trace

NODES=()
for i in 1 2 3; do
    NODES+=("http://127.0.0.1:$((BASE_PORT + i - 1))")
done
PEERS=$(IFS=,; echo "${NODES[*]}")

for i in 1 2 3; do
    ADDR="127.0.0.1:$((BASE_PORT + i - 1))"
    "$TMP/hintm-served" -addr "$ADDR" -store "$TMP/store$i" -scale small -large small \
        -node "http://$ADDR" -peers "$PEERS" \
        >"$TMP/served$i.log" 2>&1 &
    PIDS+=($!)
done

for i in 1 2 3; do
    URL="${NODES[$((i - 1))]}"
    for _ in $(seq 1 100); do
        if curl -fsS "$URL/healthz" >/dev/null 2>&1; then break; fi
        if ! kill -0 "${PIDS[$((i - 1))]}" 2>/dev/null; then
            echo "fleet-smoke: node $i died on startup:" >&2
            cat "$TMP/served$i.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    curl -fsS "$URL/healthz" >/dev/null
done

# fleet_sims sums runner_sim_runs_total across every node.
fleet_sims() {
    local total=0 n
    for url in "${NODES[@]}"; do
        n=$(curl -fsS "$url/metrics" | awk '/^runner_sim_runs_total /{print $2}')
        total=$((total + ${n:-0}))
    done
    echo "$total"
}

GRID='{"schema":"hintm-api/v2","requests":[
  {"workload":"labyrinth","scale":"small","htm":"p8","hints":"none"},
  {"workload":"labyrinth","scale":"small","htm":"p8","hints":"st"},
  {"workload":"labyrinth","scale":"small","htm":"p8","hints":"dyn"},
  {"workload":"labyrinth","scale":"small","htm":"p8","hints":"full"},
  {"workload":"labyrinth","scale":"small","htm":"infcap","hints":"none"},
  {"workload":"labyrinth","scale":"small","htm":"infcap","hints":"st"},
  {"workload":"labyrinth","scale":"small","htm":"infcap","hints":"dyn"},
  {"workload":"labyrinth","scale":"small","htm":"infcap","hints":"full"}
]}'

# Phase 1: cold grid to node 1, streamed as NDJSON.
curl -fsS -X POST "${NODES[0]}/v1/grids" -d "$GRID" > "$TMP/grid-cold.ndjson"
grep -q '"event":"accepted","total":8' "$TMP/grid-cold.ndjson" || {
    echo "fleet-smoke: cold grid not accepted:" >&2; cat "$TMP/grid-cold.ndjson" >&2; exit 1; }
grep -q '"simulated":8,"failed":0' "$TMP/grid-cold.ndjson" || {
    echo "fleet-smoke: cold grid summary wrong:" >&2; tail -1 "$TMP/grid-cold.ndjson" >&2; exit 1; }
SIMS_COLD=$(fleet_sims)
[[ "$SIMS_COLD" -eq 8 ]] || {
    echo "fleet-smoke: cold grid ran $SIMS_COLD simulations, want 8" >&2; exit 1; }

# Phase 2: the identical grid to node 2 — warm everywhere, SimRuns delta 0.
curl -fsS -X POST "${NODES[1]}/v1/grids" -d "$GRID" > "$TMP/grid-warm.ndjson"
grep -q '"simulated":0,"failed":0' "$TMP/grid-warm.ndjson" || {
    echo "fleet-smoke: warm grid summary wrong:" >&2; tail -1 "$TMP/grid-warm.ndjson" >&2; exit 1; }
SIMS_WARM=$(fleet_sims)
[[ "$SIMS_WARM" -eq "$SIMS_COLD" ]] || {
    echo "fleet-smoke: warm grid simulated ($SIMS_COLD -> $SIMS_WARM); the warm path must never simulate" >&2
    exit 1; }

# Phase 3: byte identity — the first cell's key served by every node.
KEY=$(grep -o '"key":"[0-9a-f]*"' "$TMP/grid-cold.ndjson" | head -1 | cut -d'"' -f4)
[[ ${#KEY} -eq 64 ]] || { echo "fleet-smoke: bad key '$KEY'" >&2; exit 1; }
for i in 1 2 3; do
    curl -fsS "${NODES[$((i - 1))]}/v1/runs/$KEY" > "$TMP/body$i.json"
done
cmp "$TMP/body1.json" "$TMP/body2.json" && cmp "$TMP/body1.json" "$TMP/body3.json" || {
    echo "fleet-smoke: nodes serve different bytes for $KEY" >&2; exit 1; }

# Phase 4: fleet traces. Node 1 resolved the cell cold, so its assembled
# trace must contain the simulate span; node 2 answered it warm (store or
# peer), so its latest root must not.
curl -fsS "${NODES[0]}/v1/traces/$KEY" > "$TMP/trace-cold.json"
grep -Eq '"schema": *"hintm-trace/v1"' "$TMP/trace-cold.json" || {
    echo "fleet-smoke: cold trace has no schema:" >&2; cat "$TMP/trace-cold.json" >&2; exit 1; }
grep -Eq '"kind": *"request"' "$TMP/trace-cold.json" || {
    echo "fleet-smoke: cold trace has no root span" >&2; exit 1; }
grep -Eq '"kind": *"simulate"' "$TMP/trace-cold.json" || {
    echo "fleet-smoke: cold resolve's trace is missing its simulate span:" >&2
    cat "$TMP/trace-cold.json" >&2; exit 1; }
curl -fsS "${NODES[1]}/v1/traces/$KEY" > "$TMP/trace-warm.json"
if grep -Eq '"kind": *"simulate"' "$TMP/trace-warm.json"; then
    echo "fleet-smoke: warm resolve's trace claims a simulation:" >&2
    cat "$TMP/trace-warm.json" >&2; exit 1
fi
grep -Eq '"kind": *"(store.get|peer.fetch)"' "$TMP/trace-warm.json" || {
    echo "fleet-smoke: warm trace shows neither store hit nor peer fetch" >&2; exit 1; }

# The reporter prints the phase breakdown and writes Perfetto JSON that a
# strict parser accepts.
"$TMP/hintm-trace" report -fleet "${NODES[0]}" -o "$TMP/perfetto.json" "$KEY" \
    | tee "$TMP/trace-report.txt"
grep -q 'attributed to phases' "$TMP/trace-report.txt" || {
    echo "fleet-smoke: trace report printed no attribution line" >&2; exit 1; }
python3 - "$TMP/perfetto.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
evs = doc["traceEvents"]
assert evs, "no trace events"
assert any(e.get("ph") == "X" for e in evs), "no duration events"
assert any(e.get("ph") == "M" for e in evs), "no process metadata"
PYEOF

# Phase 5: seeded open-loop load over the warm fleet, SLO-gated — the
# client-side p99 plus the server-side p99 scraped from /metrics. The pool
# is the same 8 specs, so every request must be a warm hit.
"$TMP/hintm-load" -targets "$PEERS" -n 60 -rate 40 -arrivals bursty -seed 1 \
    -workloads labyrinth -scale small -htms p8,infcap -hints none,st,dyn,full \
    -slo-p99 "${FLEET_SMOKE_P99:-2s}" -slo-server-p99 "${FLEET_SMOKE_P99:-2s}" \
    -slo-hit-rate 0.99 -slo-max-failed 0 \
    | tee "$TMP/load.txt"
grep -q 'server p99' "$TMP/load.txt" || {
    echo "fleet-smoke: load report has no server-side latency rows" >&2; exit 1; }
SIMS_LOAD=$(fleet_sims)
[[ "$SIMS_LOAD" -eq "$SIMS_COLD" ]] || {
    echo "fleet-smoke: load phase simulated ($SIMS_COLD -> $SIMS_LOAD)" >&2; exit 1; }

# Phase 6: graceful SIGTERM drain on every node.
for i in 1 2 3; do
    kill -TERM "${PIDS[$((i - 1))]}"
done
for i in 1 2 3; do
    wait "${PIDS[$((i - 1))]}" || {
        echo "fleet-smoke: node $i exited non-zero on SIGTERM" >&2; exit 1; }
    grep -q 'drained cleanly' "$TMP/served$i.log" || {
        echo "fleet-smoke: node $i no drain confirmation:" >&2; cat "$TMP/served$i.log" >&2; exit 1; }
done
PIDS=()

echo "fleet-smoke: OK (8 cells cold on node 1, warm via peers on node 2, byte-identical on all 3, traces cold/warm correct + Perfetto valid, load SLOs met incl. server-side p99, SimRuns delta 0)"
