#!/usr/bin/env bash
# chaos-smoke: kill-a-node resilience smoke test of a 3-node hintm-served
# fleet, plus a sanity pass over the hintm-chaos fault proxy.
#
# Phases:
#
#   A. Proxy sanity: hintm-chaos fronting node 1 with delay+corrupt faults
#      forwards requests but measurably injects both, and its own /metrics
#      endpoint counts the injections by behavior — the campaign can prove
#      its faults fired without waiting for proxy exit.
#   B. Node death mid-workload: node 3 is killed (SIGKILL) while a grid
#      streams on node 1. The grid completes with zero failed cells, the
#      same grid then answers entirely warm on node 2 (no re-simulation),
#      the survivors serve byte-identical bytes, and a seeded open-loop
#      load run against the survivors meets its SLOs with zero failures —
#      the circuit breaker confines the dead peer's cost.
#   C. Recovery: node 3 restarts with an EMPTY store. The survivors'
#      anti-entropy sweeps re-replicate every key it owns; the revived
#      node converges to a warm store and answers the full grid without
#      any node simulating anything again.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT="${CHAOS_SMOKE_PORT:-18461}"
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/hintm-served" ./cmd/hintm-served
go build -o "$TMP/hintm-load" ./cmd/hintm-load
go build -o "$TMP/hintm-chaos" ./cmd/hintm-chaos

NODES=()
for i in 1 2 3; do
    NODES+=("http://127.0.0.1:$((BASE_PORT + i - 1))")
done
PEERS=$(IFS=,; echo "${NODES[*]}")

# Resilience knobs tuned for a fast test: breakers open after 2 failures,
# probe every ~200ms, repair sweeps every 2s, and a cold miss may burn at
# most 1s on peers before simulating locally.
start_node() { # start_node <index> <store-dir>
    local i="$1" dir="$2"
    local ADDR="127.0.0.1:$((BASE_PORT + i - 1))"
    "$TMP/hintm-served" -addr "$ADDR" -store "$dir" -scale small -large small \
        -node "http://$ADDR" -peers "$PEERS" \
        -peer-budget 1s -breaker-threshold 2 -breaker-backoff 200ms -anti-entropy 2s \
        >>"$TMP/served$i.log" 2>&1 &
    PIDS[$((i - 1))]=$!
}

wait_healthy() { # wait_healthy <index>
    local i="$1" URL="${NODES[$((i - 1))]}"
    for _ in $(seq 1 100); do
        if curl -fsS "$URL/healthz" >/dev/null 2>&1; then return 0; fi
        if ! kill -0 "${PIDS[$((i - 1))]}" 2>/dev/null; then
            echo "chaos-smoke: node $i died on startup:" >&2
            cat "$TMP/served$i.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    curl -fsS "$URL/healthz" >/dev/null
}

for i in 1 2 3; do start_node "$i" "$TMP/store$i"; done
for i in 1 2 3; do wait_healthy "$i"; done

# fleet_sims sums runner_sim_runs_total across the given node URLs.
fleet_sims() {
    local total=0 n
    for url in "$@"; do
        n=$(curl -fsS "$url/metrics" | awk '/^runner_sim_runs_total /{print $2}')
        total=$((total + ${n:-0}))
    done
    echo "$total"
}

metric() { # metric <url> <name>
    curl -fsS "$1/metrics" | awk -v m="$2" '$1 == m {print $2}'
}

# ---- Phase A: chaos proxy sanity ----------------------------------------
CHAOS_ADDR="127.0.0.1:$((BASE_PORT + 10))"
CHAOS_METRICS="127.0.0.1:$((BASE_PORT + 11))"
"$TMP/hintm-chaos" -listen "$CHAOS_ADDR" -target "${NODES[0]}" \
    -plan "delay=100ms,corrupt=1" -seed 7 \
    -metrics-addr "$CHAOS_METRICS" >"$TMP/chaos.log" 2>&1 &
CHAOS_PID=$!
PIDS+=($CHAOS_PID)
for _ in $(seq 1 50); do
    if curl -s -o /dev/null "http://$CHAOS_ADDR/healthz"; then break; fi
    sleep 0.1
done

curl -fsS "${NODES[0]}/healthz" > "$TMP/healthz-direct.json"
START_MS=$(date +%s%3N)
curl -s "http://$CHAOS_ADDR/healthz" > "$TMP/healthz-chaos.json" || true
ELAPSED_MS=$(( $(date +%s%3N) - START_MS ))
[[ "$ELAPSED_MS" -ge 100 ]] || {
    echo "chaos-smoke: proxied healthz took ${ELAPSED_MS}ms; delay=100ms not injected" >&2; exit 1; }
if cmp -s "$TMP/healthz-direct.json" "$TMP/healthz-chaos.json"; then
    echo "chaos-smoke: corrupt=1 body identical to direct fetch" >&2; exit 1
fi

# The proxy's own /metrics proves the faults fired, per behavior.
curl -fsS "http://$CHAOS_METRICS/metrics" > "$TMP/chaos-metrics.txt"
for behavior in delayed corrupted; do
    N=$(awk -v s="chaos_injected_total{behavior=\"$behavior\"}" '$1 == s {print $2}' "$TMP/chaos-metrics.txt")
    [[ "${N:-0}" -ge 1 ]] || {
        echo "chaos-smoke: proxy /metrics shows no $behavior injections:" >&2
        cat "$TMP/chaos-metrics.txt" >&2; exit 1; }
done
BYTES=$(awk '$1 == "chaos_proxied_bytes_total" {print $2}' "$TMP/chaos-metrics.txt")
[[ "${BYTES:-0}" -ge 1 ]] || {
    echo "chaos-smoke: proxy /metrics counted no proxied bytes" >&2; exit 1; }

kill -TERM "$CHAOS_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true
grep -Eq 'corrupted=[1-9]' "$TMP/chaos.log" || {
    echo "chaos-smoke: proxy did not count the corruption:" >&2; cat "$TMP/chaos.log" >&2; exit 1; }

# ---- Phase B: kill node 3 mid-grid --------------------------------------
GRID='{"schema":"hintm-api/v2","requests":[
  {"workload":"labyrinth","scale":"small","htm":"p8","hints":"none"},
  {"workload":"labyrinth","scale":"small","htm":"p8","hints":"st"},
  {"workload":"labyrinth","scale":"small","htm":"p8","hints":"dyn"},
  {"workload":"labyrinth","scale":"small","htm":"p8","hints":"full"},
  {"workload":"labyrinth","scale":"small","htm":"infcap","hints":"none"},
  {"workload":"labyrinth","scale":"small","htm":"infcap","hints":"st"},
  {"workload":"labyrinth","scale":"small","htm":"infcap","hints":"dyn"},
  {"workload":"labyrinth","scale":"small","htm":"infcap","hints":"full"}
]}'

curl -fsS -X POST "${NODES[0]}/v1/grids" -d "$GRID" > "$TMP/grid-cold.ndjson" &
CURL_PID=$!
sleep 0.2 # let the grid start streaming, then crash node 3 under it
kill -9 "${PIDS[2]}" 2>/dev/null || true
wait "$CURL_PID" || { echo "chaos-smoke: cold grid stream broke" >&2; exit 1; }

grep -q '"event":"accepted","total":8' "$TMP/grid-cold.ndjson" || {
    echo "chaos-smoke: cold grid not accepted:" >&2; cat "$TMP/grid-cold.ndjson" >&2; exit 1; }
grep -q '"failed":0' "$TMP/grid-cold.ndjson" || {
    echo "chaos-smoke: grid cells failed with a dead peer:" >&2
    tail -1 "$TMP/grid-cold.ndjson" >&2; exit 1; }
SIMS_COLD=$(fleet_sims "${NODES[0]}" "${NODES[1]}")
[[ "$SIMS_COLD" -eq 8 ]] || {
    echo "chaos-smoke: cold grid ran $SIMS_COLD survivor simulations, want 8" >&2; exit 1; }

# The same grid on node 2 answers warm without node 3 and without
# simulating anything anywhere.
curl -fsS -X POST "${NODES[1]}/v1/grids" -d "$GRID" > "$TMP/grid-warm.ndjson"
grep -q '"simulated":0,"failed":0' "$TMP/grid-warm.ndjson" || {
    echo "chaos-smoke: warm grid on survivor wrong:" >&2; tail -1 "$TMP/grid-warm.ndjson" >&2; exit 1; }
[[ "$(fleet_sims "${NODES[0]}" "${NODES[1]}")" -eq "$SIMS_COLD" ]] || {
    echo "chaos-smoke: warm grid simulated on a survivor" >&2; exit 1; }

# Survivors serve byte-identical bytes.
KEY=$(grep -o '"key":"[0-9a-f]*"' "$TMP/grid-cold.ndjson" | head -1 | cut -d'"' -f4)
[[ ${#KEY} -eq 64 ]] || { echo "chaos-smoke: bad key '$KEY'" >&2; exit 1; }
curl -fsS "${NODES[0]}/v1/runs/$KEY" > "$TMP/body1.json"
curl -fsS "${NODES[1]}/v1/runs/$KEY" > "$TMP/body2.json"
cmp "$TMP/body1.json" "$TMP/body2.json" || {
    echo "chaos-smoke: survivors serve different bytes for $KEY" >&2; exit 1; }

# Seeded open-loop load against the survivors: breakers confine the dead
# peer, so zero failures and the p99 SLO hold with node 3 down.
"$TMP/hintm-load" -targets "${NODES[0]},${NODES[1]}" -n 60 -rate 40 -arrivals bursty -seed 1 \
    -workloads labyrinth -scale small -htms p8,infcap -hints none,st,dyn,full \
    -request-timeout 30s \
    -slo-p99 "${CHAOS_SMOKE_P99:-2s}" -slo-hit-rate 0.99 -slo-max-failed 0 \
    | tee "$TMP/load.txt"
[[ "$(fleet_sims "${NODES[0]}" "${NODES[1]}")" -eq "$SIMS_COLD" ]] || {
    echo "chaos-smoke: load phase simulated" >&2; exit 1; }

# ---- Phase C: revive node 3 empty; anti-entropy repairs it warm ---------
rm -rf "$TMP/store3"
start_node 3 "$TMP/store3"
wait_healthy 3

# The survivors' sweeps must find the empty owner and re-replicate; wait
# for repairs to be counted and for the revived store to fill.
for _ in $(seq 1 120); do
    R1=$(metric "${NODES[0]}" fleet_repair_keys_total); R1=${R1:-0}
    R2=$(metric "${NODES[1]}" fleet_repair_keys_total); R2=${R2:-0}
    REPAIRS=$((R1 + R2))
    ENTRIES=$(curl -fsS "${NODES[2]}/healthz" | grep -o '"storeEntries": *[0-9]*' | grep -o '[0-9]*$')
    if [[ "${REPAIRS:-0}" -gt 0 && "${ENTRIES:-0}" -gt 0 ]]; then break; fi
    sleep 0.25
done
[[ "${REPAIRS:-0}" -gt 0 ]] || {
    echo "chaos-smoke: survivors never repaired the revived node" >&2
    curl -fsS "${NODES[0]}/healthz" >&2 || true; exit 1; }
[[ "${ENTRIES:-0}" -gt 0 ]] || {
    echo "chaos-smoke: revived node's store stayed empty" >&2; exit 1; }

# Give replication a moment to settle, then: the full grid on the revived
# node answers entirely warm, and the fleet-wide simulation count is
# unchanged — recovery moved bytes, not work.
sleep 1
curl -fsS -X POST "${NODES[2]}/v1/grids" -d "$GRID" > "$TMP/grid-revived.ndjson"
grep -q '"simulated":0,"failed":0' "$TMP/grid-revived.ndjson" || {
    echo "chaos-smoke: revived node's grid not warm:" >&2
    tail -1 "$TMP/grid-revived.ndjson" >&2; exit 1; }
[[ "$(fleet_sims "${NODES[@]}")" -eq "$SIMS_COLD" ]] || {
    echo "chaos-smoke: recovery re-simulated (want fleet-wide delta 0)" >&2; exit 1; }

# Graceful drain on everyone still alive.
for i in 1 2 3; do
    kill -TERM "${PIDS[$((i - 1))]}" 2>/dev/null || true
done
for i in 1 2 3; do
    wait "${PIDS[$((i - 1))]}" 2>/dev/null || true
done
PIDS=()

echo "chaos-smoke: OK (proxy injects, node killed mid-grid with 0 failures, survivors byte-identical + SLOs met, revived node repaired warm by anti-entropy, SimRuns delta 0)"
