module hintm

go 1.22
