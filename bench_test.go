// Benchmarks regenerating the paper's evaluation, one per table/figure, plus
// component microbenchmarks. Each figure benchmark runs the corresponding
// harness experiment (at the quick input scale so `go test -bench` stays
// tractable) and reports its headline numbers as benchmark metrics; the
// full-scale figures are produced by `go run ./cmd/hintm-bench all`.
//
// Table I (HinTM's hardware additions) and Table II (machine parameters) are
// configuration tables: `go run ./cmd/hintm-sim -print-config` regenerates
// Table II, and BenchmarkTable2_MachineConfig exercises the same path.
package hintm_test

import (
	"context"
	"io"
	"math"
	"testing"

	"hintm/internal/alias"
	"hintm/internal/cache"
	"hintm/internal/classify"
	"hintm/internal/escape"
	"hintm/internal/harness"
	"hintm/internal/htm"
	"hintm/internal/sim"
	"hintm/internal/workloads"
)

func quickRunner() *harness.Runner {
	return harness.NewRunner(harness.QuickOptions())
}

// BenchmarkFig1_OpportunityStudy regenerates Fig. 1: capacity-abort runtime
// share and the safe-region/safe-access opportunity metrics.
func BenchmarkFig1_OpportunityStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quickRunner().Fig1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var capTime, safePages, safeReads float64
		for _, r := range rows {
			capTime += r.CapacityTime
			safePages += r.SafePages
			safeReads += r.SafeReadsPage
		}
		n := float64(len(rows))
		b.ReportMetric(capTime/n*100, "capacity-time-%")
		b.ReportMetric(safePages/n*100, "safe-pages-%")
		b.ReportMetric(safeReads/n*100, "safe-reads@4K-%")
	}
}

// BenchmarkFig4a_CapacityAbortReduction and BenchmarkFig4b_Speedup
// regenerate Fig. 4 on the P8 baseline.
func BenchmarkFig4a_CapacityAbortReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quickRunner().Fig4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var st, dyn, full, n float64
		for _, r := range rows {
			if r.BaseCapacity == 0 {
				continue
			}
			st += r.CapRedSt
			dyn += r.CapRedDyn
			full += r.CapRedFull
			n++
		}
		if n > 0 {
			b.ReportMetric(st/n*100, "cap-red-st-%")
			b.ReportMetric(dyn/n*100, "cap-red-dyn-%")
			b.ReportMetric(full/n*100, "cap-red-full-%")
		}
	}
}

func BenchmarkFig4b_Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quickRunner().Fig4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var full, inf, max float64
		prod := 1.0
		for _, r := range rows {
			prod *= r.SpeedupFull
			inf += r.SpeedupInf
			if r.SpeedupFull > max {
				max = r.SpeedupFull
			}
			full++
		}
		b.ReportMetric(pow(prod, 1/full), "geomean-speedup-x")
		b.ReportMetric(max, "max-speedup-x")
	}
}

// BenchmarkFig5_AccessBreakdown regenerates Fig. 5.
func BenchmarkFig5_AccessBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quickRunner().Fig5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var static, dyn float64
		for _, r := range rows {
			static += r.StaticFrac
			dyn += r.DynFrac
		}
		n := float64(len(rows))
		b.ReportMetric(static/n*100, "static-safe-%")
		b.ReportMetric(dyn/n*100, "dynamic-safe-%")
	}
}

// BenchmarkFig6_TxSizeCDF regenerates the Fig. 6 footprint CDFs.
func BenchmarkFig6_TxSizeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := quickRunner().Fig6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var overCapBase, overCapFull float64
		for _, s := range series {
			last := len(s.Points) - 1
			overCapBase += 1 - s.Base[last]
			overCapFull += 1 - s.Full[last]
		}
		n := float64(len(series))
		b.ReportMetric(overCapBase/n*100, "base-tx-over-64blk-%")
		b.ReportMetric(overCapFull/n*100, "hintm-tx-over-64blk-%")
	}
}

// BenchmarkFig7_P8S regenerates the P8S study.
func BenchmarkFig7_P8S(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quickRunner().Fig7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		prod, n := 1.0, 0.0
		for _, r := range rows {
			prod *= r.SpeedupFull
			n++
		}
		b.ReportMetric(pow(prod, 1/n), "geomean-speedup-x")
	}
}

// BenchmarkFig8_L1TMSMT regenerates the L1TM/SMT study.
func BenchmarkFig8_L1TMSMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quickRunner().Fig8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		prod, n := 1.0, 0.0
		for _, r := range rows {
			prod *= r.SpeedupFull
			n++
		}
		b.ReportMetric(pow(prod, 1/n), "geomean-speedup-x")
	}
}

// BenchmarkTable2_MachineConfig renders the Table-II parameter dump.
func BenchmarkTable2_MachineConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.RenderTable2(io.Discard)
	}
}

// Per-workload baseline-vs-HinTM simulation benches: the cycles metric is
// the figure datum; ns/op measures simulator throughput.
func BenchmarkWorkloadP8(b *testing.B) {
	for _, name := range workloads.Names() {
		for _, mode := range []sim.HintMode{sim.HintNone, sim.HintFull} {
			spec, _ := workloads.ByName(name)
			mod := spec.BuildDefault(workloads.Small)
			if _, err := classify.Run(mod); err != nil {
				b.Fatal(err)
			}
			b.Run(name+"/"+mode.String(), func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					cfg := sim.DefaultConfig()
					cfg.Hints = mode
					m, err := sim.New(cfg, mod)
					if err != nil {
						b.Fatal(err)
					}
					res, err := m.Run(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Cycles
					m.Release()
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
			})
		}
	}
}

// Component microbenchmarks.

func BenchmarkCacheAccess(b *testing.B) {
	h := cache.New(cache.DefaultConfig(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(i%8, uint64(i%4096), i%7 == 0)
	}
}

func BenchmarkP8TrackerTrack(b *testing.B) {
	tr := htm.NewP8Tracker(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !tr.TrackRead(uint64(i % 64)) {
			tr.Reset()
		}
	}
}

func BenchmarkSignatureAddCheck(b *testing.B) {
	sig := htm.NewSignature(1024, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig.Add(uint64(i))
		sig.MayContain(uint64(i + 1))
		if i%4096 == 0 {
			sig.Reset()
		}
	}
}

func BenchmarkClassifyPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, _ := workloads.ByName("labyrinth")
		mod := spec.BuildDefault(workloads.Small)
		if _, err := classify.Run(mod); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAliasAnalysis(b *testing.B) {
	spec, _ := workloads.ByName("vacation")
	mod := spec.BuildDefault(workloads.Small)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := alias.Analyze(mod)
		escape.Analyze(mod, a)
	}
}

// BenchmarkSimulatorThroughput measures simulated instructions per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := workloads.ByName("kmeans")
	mod := spec.BuildDefault(workloads.Small)
	if _, err := classify.Run(mod); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		m, err := sim.New(sim.DefaultConfig(), mod)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
		m.Release()
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkProfiledThroughput is BenchmarkSimulatorThroughput with
// per-instruction execution counting enabled — the delta between the two is
// the profiling overhead (a presized-slice increment per step; see
// DESIGN.md's hot-path notes).
func BenchmarkProfiledThroughput(b *testing.B) {
	spec, _ := workloads.ByName("kmeans")
	mod := spec.BuildDefault(workloads.Small)
	if _, err := classify.Run(mod); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		m, err := sim.New(sim.DefaultConfig(), mod)
		if err != nil {
			b.Fatal(err)
		}
		m.EnableProfile()
		res, err := m.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
		m.Release()
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "sim-instrs/s")
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}
