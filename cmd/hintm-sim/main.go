// Command hintm-sim runs one workload on one machine configuration and
// prints the detailed simulation statistics.
//
// Usage:
//
//	hintm-sim [flags] <workload>
//	hintm-sim [flags] -module prog.tir
//	hintm-sim -print-config
//	hintm-sim -list
//
// Flags:
//
//	-htm p8|p8s|l1tm|infcap    baseline HTM (default p8)
//	-hints none|st|dyn|full    HinTM mode (default none)
//	-scale small|medium|large  input scale (default medium)
//	-threads N                 override the paper's thread count
//	-smt N                     hardware threads per core (default 1)
//	-seed N                    simulation seed
//	-sig-bits N                P8S read-signature size in bits (0 = default 1024)
//	-timeout D                 abort the simulation after D (e.g. 30s)
//	-faults SPEC               fault-injection plan, e.g. "spurious=0.01,storm=0.001"
//	-watchdog N                livelock watchdog: fail after N cycles without progress
//	-max-cycles N              hard cap on simulated cycles
//	-trace-out FILE            write a Chrome trace-event JSON (ui.perfetto.dev)
//	-autopsy                   print the capacity-abort autopsy after the run
//	-sample-cycles N           counter-sample period for traced runs
//	-cpuprofile/-memprofile    write Go pprof profiles of the simulator itself
//
// A watchdog trip prints a per-core diagnostic snapshot (thread positions,
// transaction states, retry counts, clocks, lock ownership) before exiting.
// The trace file is completed and the autopsy rendered even when the run
// fails — a livelocked run's trace is exactly the one worth reading.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"hintm/internal/cache"
	"hintm/internal/classify"
	"hintm/internal/cli"
	"hintm/internal/htm"
	"hintm/internal/ir"
	"hintm/internal/obs"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/workloads"
)

func main() {
	sf := cli.RegisterSim(flag.CommandLine)
	threads := flag.Int("threads", 0, "thread count (0 = paper default)")
	timeout := flag.Duration("timeout", 0, "abort the simulation after this duration (0 = none)")
	printConfig := flag.Bool("print-config", false, "print the Table-II machine parameters and exit")
	list := flag.Bool("list", false, "list workloads and exit")
	moduleFile := flag.String("module", "", "run a hand-written textual TIR module instead of a workload")
	noClassify := flag.Bool("no-classify", false, "skip the static classification pass")
	hot := flag.Int("hot", 0, "print the N most-executed instructions")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in ui.perfetto.dev)")
	autopsy := flag.Bool("autopsy", false, "print the capacity-abort autopsy report after the run")
	sampleCycles := flag.Int64("sample-cycles", 10000, "counter-sample period in cycles for traced runs (0 = off)")
	profiles := cli.RegisterProfiles(flag.CommandLine, "hintm-sim", "simulator")
	flag.Parse()

	stopProfiles, err := profiles.Start()
	if err != nil {
		fatal(err)
	}
	cleanup = stopProfiles
	defer stopProfiles()

	if *printConfig {
		renderConfig(sim.DefaultConfig())
		return
	}
	if *list {
		t := stats.NewTable("workload", "threads", "description")
		for _, s := range workloads.All() {
			t.Row(s.Name, s.DefaultThreads, s.Description)
		}
		t.Render(os.Stdout)
		return
	}
	if *moduleFile == "" && flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: hintm-sim [flags] <workload>; see -list"))
	}

	scale, err := sf.Scale()
	if err != nil {
		fatal(err)
	}
	cfg, err := sf.Config()
	if err != nil {
		fatal(err)
	}

	var mod *ir.Module
	var name string
	n := *threads
	if *moduleFile != "" {
		src, err := os.ReadFile(*moduleFile)
		if err != nil {
			fatal(err)
		}
		mod, err = ir.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		name = *moduleFile
	} else {
		spec, err := workloads.ByName(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if n == 0 {
			n = spec.DefaultThreads * cfg.SMT
		}
		if n > cfg.Contexts() {
			cfg.Cores = (n + cfg.SMT - 1) / cfg.SMT
			cfg.Cache = cache.DefaultConfig(cfg.Cores)
		}
		mod = spec.Build(n, scale)
		name = spec.Name
	}
	rep := &classify.Report{}
	if !*noClassify {
		if rep, err = classify.Run(mod); err != nil {
			fatal(err)
		}
	}

	// Observability sinks: the Chrome trace streams to disk, the collector
	// powers the autopsy. finishObs completes both even when the run fails.
	var tracers []obs.Tracer
	var chrome *obs.ChromeTracer
	var traceFile *os.File
	if *traceOut != "" {
		if traceFile, err = os.Create(*traceOut); err != nil {
			fatal(err)
		}
		chrome = obs.NewChromeTracer(traceFile)
		tracers = append(tracers, chrome)
	}
	var col *obs.Collector
	if *autopsy {
		col = obs.NewCollector()
		tracers = append(tracers, col)
	}
	if len(tracers) > 0 {
		cfg.Tracer = obs.Multi(tracers...)
		cfg.SampleCycles = *sampleCycles
	}
	finishObs := func() {
		if chrome != nil {
			if err := chrome.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hintm-sim: trace:", err)
			} else if err := traceFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hintm-sim: trace:", err)
			} else {
				fmt.Fprintf(os.Stderr, "trace: %d events written to %s (open in ui.perfetto.dev)\n",
					chrome.Events(), *traceOut)
			}
			chrome = nil
		}
		if col != nil {
			fmt.Println()
			col.Autopsy().Render(os.Stdout)
			col = nil
		}
	}

	m, err := sim.New(cfg, mod)
	if err != nil {
		fatal(err)
	}
	if *hot > 0 {
		m.EnableProfile()
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()
	res, err := run(ctx, m)
	if err != nil {
		finishObs()
		var lle *sim.LivelockError
		if errors.As(err, &lle) {
			fmt.Fprintln(os.Stderr, "hintm-sim:", lle)
			fmt.Fprint(os.Stderr, lle.Snapshot())
			cleanup()
			os.Exit(1)
		}
		fatal(err)
	}

	fmt.Printf("workload  %s (%s, %d threads, %v, %v)\n",
		name, scale, n, cfg.HTM, cfg.Hints)
	fmt.Printf("compiler  %v\n\n", rep)

	t := stats.NewTable("metric", "value")
	t.Row("cycles", res.Cycles)
	t.Row("instructions", res.Steps)
	t.Row("HTM commits", res.Commits)
	t.Row("fallback commits", res.FallbackCommits)
	for _, reason := range htm.AbortReasons {
		if n := res.Aborts[reason]; n > 0 {
			t.Row("aborts/"+reason.String(), n)
		}
	}
	t.Row("tx accesses static-safe", res.StaticSafeAccesses)
	t.Row("tx accesses dynamic-safe", res.DynSafeAccesses)
	t.Row("tx accesses unsafe", res.UnsafeTxAccesses)
	t.Row("page-mode cycles", fmt.Sprintf("%d (%s of runtime)",
		res.PageModeCycles, stats.Pct(res.PageModeCycleFraction())))
	t.Row("TX footprint mean (blocks)", fmt.Sprintf("%.1f", res.TxFootprints.Mean()))
	t.Row("TX footprint p95 (blocks)", res.TxFootprints.Percentile(0.95))
	t.Row("TX footprint max (blocks)", res.TxFootprints.Max())
	t.Row("L1 hit rate", stats.Pct(stats.Ratio(float64(res.Cache.L1Hits),
		float64(res.Cache.L1Hits+res.Cache.L1Misses))))
	t.Row("TLB misses", res.VM.TLBMisses)
	t.Row("page transitions", res.VM.Transitions)
	if cfg.Faults.Enabled() {
		t.Row("faults/spurious aborts", res.Faults.SpuriousAborts)
		t.Row("faults/storms forced", res.Faults.StormsForced)
		t.Row("faults/invals held", res.Faults.InvalsHeld)
		t.Row("faults/inval bursts", res.Faults.InvalBursts)
	}
	t.Render(os.Stdout)

	if *hot > 0 {
		fmt.Printf("\nhottest %d instructions:\n", *hot)
		ht := stats.NewTable("count", "function", "instruction")
		for _, h := range m.HotInstructions(*hot) {
			ht.Row(h.Count, h.Func, h.Text)
		}
		ht.Render(os.Stdout)
	}
	finishObs()
}

// run executes the machine, recovering panics (e.g. the fault layer's
// injected crash) into ordinary errors so the CLI reports them cleanly.
func run(ctx context.Context, m *sim.Machine) (res *sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			if e, ok := v.(error); ok {
				err = fmt.Errorf("simulation panicked: %w", e)
			} else {
				err = fmt.Errorf("simulation panicked: %v", v)
			}
			res = nil
		}
	}()
	return m.Run(ctx)
}

func renderConfig(cfg sim.Config) {
	t := stats.NewTable("parameter", "value (paper Table II / §V)")
	t.Row("cores", fmt.Sprintf("%d 64-bit, in-order timing model", cfg.Cores))
	t.Row("L1d", fmt.Sprintf("%d sets x %d ways x 64B = 32KB, %d-cycle",
		cfg.Cache.L1Sets, cfg.Cache.L1Ways, cfg.Cache.L1Latency))
	t.Row("L2", fmt.Sprintf("%d sets x %d ways x 64B = 8MB shared, %d-cycle",
		cfg.Cache.L2Sets, cfg.Cache.L2Ways, cfg.Cache.L2Latency))
	t.Row("memory", fmt.Sprintf("%d-cycle", cfg.Cache.MemLatency))
	t.Row("coherence", "snoopy MESI")
	t.Row("HTM buffer (P8)", fmt.Sprintf("%d-entry fully associative", cfg.P8Entries))
	t.Row("signature (P8S)", fmt.Sprintf("%d-bit PBX, %d hashes", cfg.SigBits, cfg.SigHashes))
	t.Row("TLB", fmt.Sprintf("%d entries/context, %d-cycle walk", cfg.TLBEntries, cfg.VM.TLBMiss))
	t.Row("minor fault", fmt.Sprintf("%d cycles", cfg.VM.MinorFault))
	t.Row("TLB shootdown", fmt.Sprintf("%d init / %d slave cycles",
		cfg.VM.ShootdownInitiator, cfg.VM.ShootdownSlave))
	t.Row("conflict retries", fmt.Sprintf("%d, then fallback lock", cfg.MaxConflictRetries))
	t.Render(os.Stdout)
}

// cleanup finalizes any armed profiles before an early exit; fatal and the
// livelock path call it because os.Exit skips deferred stops.
var cleanup = func() {}

func fatal(err error) {
	cleanup()
	fmt.Fprintln(os.Stderr, "hintm-sim:", err)
	os.Exit(1)
}
