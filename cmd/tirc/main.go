// Command tirc is the "compiler driver" for TIR workload modules: it builds
// a workload's IR, optionally runs HinTM's static classification passes, and
// dumps the result — the equivalent of inspecting the paper's LLVM pipeline
// output, with safe loads/stores rendered as load.safe / store.safe.
//
// Usage:
//
//	tirc [-classify] [-func name] [-scale s] [-threads n] <workload>
//	tirc [-classify] [-func name] -i module.tir
//
// With -i, the module is parsed from a textual TIR file (the same syntax
// tirc itself emits), enabling dump → edit → re-analyze round trips.
package main

import (
	"flag"
	"fmt"
	"os"

	"hintm/internal/classify"
	"hintm/internal/ir"
	"hintm/internal/opt"
	"hintm/internal/workloads"
)

func main() {
	doClassify := flag.Bool("classify", false, "run the static classification passes before dumping")
	optimize := flag.Bool("O", false, "run the optimizer pipeline before classification")
	input := flag.String("i", "", "parse a textual TIR file instead of building a workload")
	funcName := flag.String("func", "", "dump only this function")
	scaleFlag := flag.String("scale", "small", "input scale: small|medium|large")
	threads := flag.Int("threads", 0, "thread count (0 = paper default)")
	flag.Parse()

	var mod *ir.Module
	if *input != "" {
		src, err := os.ReadFile(*input)
		if err != nil {
			fatal(err)
		}
		mod, err = ir.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	} else {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("usage: tirc [flags] <workload>; workloads: %v", workloads.Names()))
		}
		spec, err := workloads.ByName(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		var scale workloads.Scale
		switch *scaleFlag {
		case "small":
			scale = workloads.Small
		case "medium":
			scale = workloads.Medium
		case "large":
			scale = workloads.Large
		default:
			fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
		}
		n := spec.DefaultThreads
		if *threads > 0 {
			n = *threads
		}
		mod = spec.Build(n, scale)
	}
	if *optimize {
		st, err := opt.Run(mod)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "opt: %v\n", st)
	}
	if *doClassify {
		rep, err := classify.Run(mod)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "classify: %v\n", rep)
	}
	if *funcName != "" {
		f := mod.Func(*funcName)
		if f == nil {
			fatal(fmt.Errorf("no function %q in module %s", *funcName, mod.Name))
		}
		fmt.Print(f.String())
		return
	}
	st := ir.CollectStats(mod)
	fmt.Fprintf(os.Stderr, "module stats: %+v\n", st)
	fmt.Print(mod.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tirc:", err)
	os.Exit(1)
}
