// Command hintm-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	hintm-bench [flags] [table1|table2|fig1|fig4|fig5|fig6|fig7|fig8|ablate|extras|export|seeds|svg|all]
//	hintm-bench [-tolerance F] [-min-wall S] benchdiff BASELINE.json CURRENT.json
//
// Flags:
//
//	-scale small|medium|large   input scale for the P8 figures (default medium)
//	-large small|medium|large   input scale for Fig 7/8 (default large)
//	-workloads a,b,c            restrict to a workload subset
//	-seed N                     simulation seed
//	-seeds N                    seed count for the "seeds" sweep target
//	                            (runs seeds 1..N; default 5)
//	-workers N                  concurrent simulations (0 = GOMAXPROCS)
//	-timeout D                  abort the whole run after D (e.g. 10m)
//	-faults SPEC                fault-injection plan, e.g. "spurious=0.01,storm=0.001"
//	-watchdog N                 livelock watchdog: fail a run after N cycles without progress
//	-max-cycles N               hard cap on each run's simulated cycles
//	-trace-dir DIR              write per-run Chrome traces + abort autopsies into DIR
//	-results FILE               write machine-readable headline metrics ("all" target;
//	                            default BENCH_results.json, "" disables)
//	-store DIR                  recall/persist every run in a content-addressed
//	                            result store (warm-cache figure regeneration;
//	                            shared with hintm-served)
//	-prefix-share BOOL          share each grid group's warm-up prefix via
//	                            snapshot/fork (default true; results stay
//	                            byte-identical either way)
//	-tolerance F                relative tolerance for the benchdiff target
//	                            (default 0.05)
//	-min-wall S                 shortest baseline wall time the benchdiff
//	                            target gates in relative terms (default 0.05)
//	-cpuprofile/-memprofile     write Go pprof profiles of the harness itself
//
// When individual runs fail (injected faults, watchdog trips, panics) the
// figures still render with the failed cells explicitly marked; the command
// then exits non-zero with a summary of every failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hintm/internal/cli"
	"hintm/internal/harness"
)

func main() {
	hf := cli.RegisterHarness(flag.CommandLine)
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = none)")
	svgDir := flag.String("svg", "", "also render the figures as SVG files into this directory")
	results := flag.String("results", "BENCH_results.json", `write machine-readable headline metrics here on the "all" target ("" = off)`)
	seeds := flag.Int("seeds", 5, `seed count for the "seeds" target (sweeps seeds 1..N)`)
	storeDir := cli.RegisterStore(flag.CommandLine, "")
	tolerance := flag.Float64("tolerance", 0.05, `relative headline-metric tolerance for the "benchdiff" target`)
	minWall := flag.Float64("min-wall", harness.DefaultMinWallSeconds, `shortest baseline wall time (seconds) the "benchdiff" target gates in relative terms`)
	profiles := cli.RegisterProfiles(flag.CommandLine, "hintm-bench", "harness")
	flag.Parse()

	stopProfiles, err := profiles.Start()
	if err != nil {
		fatal(err)
	}
	cleanup = stopProfiles
	defer stopProfiles()

	opts, err := hf.Options()
	if err != nil {
		fatal(err)
	}
	// The content-addressed store makes repeated figure regeneration
	// warm-cache: any run already stored (by an earlier bench run or by
	// hintm-served over the same directory) is recalled, not re-run.
	if opts.Store, err = cli.OpenStore(*storeDir); err != nil {
		fatal(err)
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()

	r := harness.NewRunner(opts)
	target := "all"
	if flag.NArg() > 0 {
		target = flag.Arg(0)
	}
	switch target {
	case "fig1", "fig4", "fig5", "fig6", "fig7", "fig8":
		render := map[string]func(context.Context, io.Writer) error{
			"fig1": r.RenderFig1, "fig4": r.RenderFig4, "fig5": r.RenderFig5,
			"fig6": r.RenderFig6, "fig7": r.RenderFig7, "fig8": r.RenderFig8,
		}[target]
		before := r.Stats()
		err = render(ctx, os.Stdout)
		// Every run gets the production breakdown, not just "all": a
		// single-figure render shows its own cold/store-hit/prefix-forked
		// split the same way.
		if ctx.Err() == nil {
			r.RenderRunSummary(os.Stdout, target, r.Stats().Sub(before))
		}
	case "ablate":
		err = r.RenderAblations(ctx, os.Stdout)
	case "extras":
		err = r.RenderExtras(ctx, os.Stdout)
	case "export":
		err = r.ExportAll(ctx, os.Stdout)
	case "seeds":
		// Multi-seed robustness sweep: re-runs the headline comparison for
		// seeds 1..N and prints the across-seed table (mean/median/min/max/
		// stddev), so seed sensitivity is visible outside the hypothesis
		// framework too.
		err = harness.RenderSeedSweep(ctx, os.Stdout, opts, harness.Seeds(*seeds))
	case "benchdiff":
		// benchdiff never simulates: it loads two BENCH_results.json files
		// and exits non-zero when the new one regresses the baseline's
		// headline metrics beyond -tolerance.
		if flag.NArg() != 3 {
			fatal(fmt.Errorf("usage: hintm-bench [-tolerance F] [-min-wall S] benchdiff BASELINE.json CURRENT.json"))
		}
		err = runBenchDiff(flag.Arg(1), flag.Arg(2), harness.DiffOptions{Tolerance: *tolerance, MinWallSeconds: *minWall})
	case "table1":
		harness.RenderTable1(os.Stdout)
	case "table2":
		harness.RenderTable2(os.Stdout)
	case "svg":
		if *svgDir == "" {
			*svgDir = "figures"
		}
		err = r.WriteSVGs(ctx, *svgDir)
	case "all":
		start := time.Now()
		err = r.RenderAll(ctx, os.Stdout)
		if *svgDir != "" && ctx.Err() == nil {
			// Degraded text figures still produce SVGs for the cells that
			// succeeded; keep the first error for the exit summary.
			if serr := r.WriteSVGs(ctx, *svgDir); err == nil {
				err = serr
			}
		}
		if *results != "" && ctx.Err() == nil {
			// The memoized scheduler recalls every figure's runs, so the
			// summary is a pure reduction at this point.
			if rerr := writeResults(ctx, r, *results, time.Since(start)); err == nil {
				err = rerr
			}
		}
	default:
		err = fmt.Errorf("unknown target %q (want table1|table2|fig1|fig4|fig5|fig6|fig7|fig8|ablate|extras|export|seeds|svg|benchdiff|all)", target)
	}
	if err != nil {
		fatal(err)
	}
}

// runBenchDiff compares two headline-metric files and fails on regressions.
func runBenchDiff(basePath, curPath string, o harness.DiffOptions) error {
	load := func(path string) (*harness.BenchResults, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return harness.ReadBenchResults(f)
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(curPath)
	if err != nil {
		return err
	}
	regressions := harness.DiffBenchResultsOpts(base, cur, o)
	if len(regressions) == 0 {
		fmt.Printf("benchdiff: %s vs %s: no regressions beyond %.1f%% tolerance\n",
			basePath, curPath, o.Tolerance*100)
		return nil
	}
	return fmt.Errorf("benchdiff: %s regresses %s:\n%s",
		curPath, basePath, strings.Join(regressions, "\n"))
}

// writeResults reduces the run into BENCH_results.json-style headline
// metrics and writes them to path.
func writeResults(ctx context.Context, r *harness.Runner, path string, wall time.Duration) error {
	sum, err := r.BenchResults(ctx)
	if err != nil {
		return err
	}
	sum.WallSeconds = wall.Seconds()
	if sum.WallSeconds > 0 {
		sum.SimCyclesPerSec = float64(sum.SimCycles) / sum.WallSeconds
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sum.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "results: wrote %s\n", path)
	return nil
}

var cleanup = func() {}

func fatal(err error) {
	cleanup()
	// Joined errors (one per failed run) print one per line under a single
	// summary header, so a degraded campaign reads as a failure list.
	lines := strings.Split(err.Error(), "\n")
	if len(lines) > 1 {
		fmt.Fprintf(os.Stderr, "hintm-bench: %d errors:\n", len(lines))
		for _, l := range lines {
			fmt.Fprintln(os.Stderr, "  "+l)
		}
	} else {
		fmt.Fprintln(os.Stderr, "hintm-bench:", err)
	}
	os.Exit(1)
}
