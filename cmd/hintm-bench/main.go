// Command hintm-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	hintm-bench [flags] [table1|table2|fig1|fig4|fig5|fig6|fig7|fig8|ablate|extras|export|seeds|svg|all]
//
// Flags:
//
//	-scale small|medium|large   input scale for the P8 figures (default medium)
//	-large small|medium|large   input scale for Fig 7/8 (default large)
//	-workloads a,b,c            restrict to a workload subset
//	-seed N                     simulation seed
//	-workers N                  concurrent simulations (0 = GOMAXPROCS)
//	-timeout D                  abort the whole run after D (e.g. 10m)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"hintm/internal/harness"
	"hintm/internal/workloads"
)

func parseScale(s string) (workloads.Scale, error) {
	switch s {
	case "small":
		return workloads.Small, nil
	case "medium":
		return workloads.Medium, nil
	case "large":
		return workloads.Large, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

func main() {
	scaleFlag := flag.String("scale", "medium", "input scale for P8 figures")
	largeFlag := flag.String("large", "large", "input scale for Fig 7/8")
	wlFlag := flag.String("workloads", "", "comma-separated workload subset")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = none)")
	svgDir := flag.String("svg", "", "also render the figures as SVG files into this directory")
	flag.Parse()

	opts := harness.DefaultOptions()
	var err error
	if opts.Scale, err = parseScale(*scaleFlag); err != nil {
		fatal(err)
	}
	if opts.LargeScale, err = parseScale(*largeFlag); err != nil {
		fatal(err)
	}
	if *wlFlag != "" {
		opts.Filter = strings.Split(*wlFlag, ",")
	}
	opts.Seed = *seed
	opts.Workers = *workers

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	r := harness.NewRunner(opts)
	target := "all"
	if flag.NArg() > 0 {
		target = flag.Arg(0)
	}
	switch target {
	case "fig1":
		err = r.RenderFig1(ctx, os.Stdout)
	case "fig4":
		err = r.RenderFig4(ctx, os.Stdout)
	case "fig5":
		err = r.RenderFig5(ctx, os.Stdout)
	case "fig6":
		err = r.RenderFig6(ctx, os.Stdout)
	case "fig7":
		err = r.RenderFig7(ctx, os.Stdout)
	case "fig8":
		err = r.RenderFig8(ctx, os.Stdout)
	case "ablate":
		err = r.RenderAblations(ctx, os.Stdout)
	case "extras":
		err = r.RenderExtras(ctx, os.Stdout)
	case "export":
		err = r.ExportAll(ctx, os.Stdout)
	case "seeds":
		err = harness.RenderSeedSweep(ctx, os.Stdout, opts, []uint64{1, 2, 3, 4, 5})
	case "table1":
		harness.RenderTable1(os.Stdout)
	case "table2":
		harness.RenderTable2(os.Stdout)
	case "svg":
		if *svgDir == "" {
			*svgDir = "figures"
		}
		err = r.WriteSVGs(ctx, *svgDir)
	case "all":
		err = r.RenderAll(ctx, os.Stdout)
		if err == nil && *svgDir != "" {
			err = r.WriteSVGs(ctx, *svgDir)
		}
	default:
		err = fmt.Errorf("unknown target %q (want table1|table2|fig1|fig4|fig5|fig6|fig7|fig8|ablate|extras|export|seeds|svg|all)", target)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hintm-bench:", err)
	os.Exit(1)
}
