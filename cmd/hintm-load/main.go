// Command hintm-load drives a hintm-served node or fleet with seeded
// open-loop synthetic load and gates on latency/hit-rate SLOs.
//
// Usage:
//
//	hintm-load -targets URL[,URL...] [flags]
//
// Flags:
//
//	-targets URL,URL,...      node base URLs, round-robin (required)
//	-n N                      total requests (default 100)
//	-rate R                   mean arrival rate, requests/sec (default 20)
//	-arrivals poisson|bursty  arrival process (default poisson)
//	-cv F                     inter-arrival coefficient of variation for
//	                          bursty arrivals (default 3)
//	-seed N                   schedule seed; same seed, same schedule
//	-workloads a,b,c          request-pool workloads (default labyrinth)
//	-scale small|medium|large request-pool input scale (default small)
//	-htms a,b,c               request-pool HTM kinds (default p8)
//	-hints a,b,c              request-pool hint modes (default none,full)
//	-timeout D                abort the whole run after D
//	-request-timeout D        per-request client deadline (default 5m);
//	                          expiries are reported as "timed out", a
//	                          category distinct from failures
//	-slo-p99 D                fail if p99 latency of successful requests
//	                          exceeds D (0 = don't check)
//	-slo-server-p99 D         fail if the server-side p99 exceeds D; the
//	                          generator scrapes every target's /metrics
//	                          before and after the run and gates on the
//	                          serve_request_seconds delta (0 = don't check)
//	-slo-hit-rate F           fail if the warm hit rate is below F (0..1)
//	-slo-max-failed N         fail if more than N requests hard-fail
//	-json                     also print the report as JSON
//
// The request pool is the cross product workloads × htms × hints at the
// given scale; request i submits pool[i % len(pool)], so -n larger than
// the pool revisits every spec — the warm phase an SLO hit-rate gate
// wants to measure. Throttled requests (429) count as shed load, not
// failures. The exit status is non-zero iff an SLO is violated or the
// run could not execute.
//
// The /metrics scrape always runs (best effort — a fleet without the
// endpoint just skips the server-side rows); with -slo-server-p99 set a
// failed scrape is fatal, because a gate that cannot measure must not
// pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hintm/internal/api"
	"hintm/internal/cli"
	"hintm/internal/loadgen"
	"hintm/internal/stats"
)

func main() {
	targets := flag.String("targets", "", "comma-separated node base URLs (required)")
	n := flag.Int("n", 100, "total requests")
	rate := flag.Float64("rate", 20, "mean arrival rate, requests/sec")
	arrivals := flag.String("arrivals", "poisson", "arrival process: poisson|bursty")
	cv := flag.Float64("cv", 3, "inter-arrival coefficient of variation for bursty arrivals")
	seed := flag.Uint64("seed", 1, "schedule seed (same seed, same schedule)")
	wls := flag.String("workloads", "labyrinth", "comma-separated request-pool workloads")
	scale := flag.String("scale", "small", "request-pool input scale: small|medium|large")
	htms := flag.String("htms", "p8", "comma-separated request-pool HTM kinds")
	hints := flag.String("hints", "none,full", "comma-separated request-pool hint modes")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = none)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request client deadline (0 = 5m default)")
	sloP99 := flag.Duration("slo-p99", 0, "fail if p99 latency exceeds this (0 = don't check)")
	sloServerP99 := flag.Duration("slo-server-p99", 0, "fail if the server-side p99 (scraped from /metrics) exceeds this (0 = don't check)")
	sloHit := flag.Float64("slo-hit-rate", 0, "fail if the warm hit rate is below this fraction (0 = don't check)")
	sloFailed := flag.Int("slo-max-failed", 0, "fail if more than this many requests hard-fail")
	asJSON := flag.Bool("json", false, "also print the report as JSON")
	flag.Parse()

	if *targets == "" {
		fatal(fmt.Errorf("-targets is required"))
	}
	process, err := loadgen.ParseProcess(*arrivals)
	if err != nil {
		fatal(err)
	}

	// The request pool: workloads × htms × hints, in flag order, so the
	// sequence of submitted specs is deterministic.
	var specs []api.RunSpec
	for _, wl := range strings.Split(*wls, ",") {
		for _, htm := range strings.Split(*htms, ",") {
			for _, hint := range strings.Split(*hints, ",") {
				specs = append(specs, api.RunSpec{Workload: wl, Scale: *scale, HTM: htm, Hints: hint})
			}
		}
	}

	cfg := loadgen.Config{
		Targets: strings.Split(*targets, ","),
		Specs:   specs,
		N:       *n,
		Rate:    *rate,
		Process: process,
		CV:      *cv,
		Seed:    *seed,
		Timeout: *reqTimeout,
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()

	// Scrape the fleet's histograms around the run: the delta is the
	// server-side view of exactly this run's requests.
	before, scrapeErr := loadgen.ScrapeServers(ctx, nil, cfg.Targets)
	if scrapeErr != nil && *sloServerP99 > 0 {
		fatal(fmt.Errorf("pre-run scrape: %w", scrapeErr))
	}

	start := time.Now()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	if scrapeErr == nil {
		after, err := loadgen.ScrapeServers(ctx, nil, cfg.Targets)
		if err != nil {
			scrapeErr = err
			if *sloServerP99 > 0 {
				fatal(fmt.Errorf("post-run scrape: %w", err))
			}
		} else {
			rep.Server = after.Delta(before)
		}
	}

	fmt.Printf("hintm-load: %d requests over %v (%s arrivals, %.1f/s, seed %d, pool %d specs, %d targets)\n",
		rep.Sent, wall.Round(time.Millisecond), process, *rate, *seed, len(specs), len(cfg.Targets))
	t := stats.NewTable("metric", "value")
	t.Row("hits (warm)", rep.Hits)
	t.Row("  via peer", rep.PeerHits)
	t.Row("simulated (cold)", rep.Simulated)
	t.Row("throttled (429)", rep.Throttled)
	t.Row("timed out", rep.TimedOut)
	t.Row("failed", rep.Failed)
	t.Row("warm hit rate", stats.Pct(rep.HitRate()))
	t.Row("latency p50", rep.Percentile(0.50).Round(time.Millisecond))
	t.Row("latency p90", rep.Percentile(0.90).Round(time.Millisecond))
	t.Row("latency p99", rep.Percentile(0.99).Round(time.Millisecond))
	if rep.Server.Count > 0 {
		t.Row("server samples", rep.Server.Count)
		t.Row("server p50", rep.ServerPercentile(0.50).Round(time.Millisecond))
		t.Row("server p99", rep.ServerPercentile(0.99).Round(time.Millisecond))
	}
	t.Render(os.Stdout)
	if scrapeErr != nil {
		fmt.Fprintf(os.Stderr, "hintm-load: /metrics scrape skipped: %v\n", scrapeErr)
	}

	if *asJSON {
		out := map[string]any{
			"sent": rep.Sent, "hits": rep.Hits, "peerHits": rep.PeerHits,
			"simulated": rep.Simulated, "throttled": rep.Throttled,
			"timedOut": rep.TimedOut, "failed": rep.Failed,
			"hitRate":     rep.HitRate(),
			"p50Ms":       rep.Percentile(0.50).Seconds() * 1000,
			"p90Ms":       rep.Percentile(0.90).Seconds() * 1000,
			"p99Ms":       rep.Percentile(0.99).Seconds() * 1000,
			"serverCount": rep.Server.Count,
			"serverP50Ms": rep.ServerPercentile(0.50).Seconds() * 1000,
			"serverP99Ms": rep.ServerPercentile(0.99).Seconds() * 1000,
			"wallSeconds": wall.Seconds(),
			"seed":        *seed,
			"arrivals":    process.String(),
			"ratePerSec":  *rate,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	}

	slo := loadgen.SLO{P99: *sloP99, ServerP99: *sloServerP99, MinHitRate: *sloHit, MaxFailed: *sloFailed}
	if err := rep.Check(slo); err != nil {
		fatal(fmt.Errorf("SLO violated:\n%w", err))
	}
	if *sloP99 > 0 || *sloServerP99 > 0 || *sloHit > 0 {
		fmt.Println("hintm-load: SLOs met")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hintm-load:", err)
	os.Exit(1)
}
