// Command hintm-trace records simulated memory-access traces and analyzes
// them offline — the trace-driven counterpart of the paper's §II-B
// "first-order estimation" study.
//
// Usage:
//
//	hintm-trace record -o trace.bin [-scale s] [-hints m] <workload>
//	hintm-trace report trace.bin
//	hintm-trace report -fleet URL [-sim run.trace.json] [-o merged.json] <store-key>
//
// `report` prints the sharing metrics (safe regions / safe transactional
// reads at 64 B and 4 KiB granularity) and a transaction-footprint limit
// study: the fraction of committed transactions that would overflow
// hypothetical buffer sizes.
//
// `report -fleet` switches from simulator traces to fleet traces: it
// fetches the assembled span tree for a store key from a hintm-served
// node (GET /v1/traces/{key}), prints the per-phase latency breakdown —
// admission, store, peer, hedge, sim, replication — with the fraction of
// the request's wall time attributed, and with -o writes the spans as
// Chrome/Perfetto trace-event JSON. -sim merges a run's simulator trace
// (the .trace.json the harness writes under -trace-dir) into the same
// file, so one Perfetto view holds the fleet's request handling and the
// simulation it triggered.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"hintm/internal/classify"
	"hintm/internal/htm"
	"hintm/internal/obs"
	"hintm/internal/profile"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/trace"
	"hintm/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		fatal(fmt.Errorf("usage: hintm-trace record|report ..."))
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "report":
		report(os.Args[2:])
	default:
		fatal(fmt.Errorf("unknown subcommand %q", os.Args[1]))
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "trace.bin", "output trace file")
	htmFlag := fs.String("htm", "infcap", "baseline HTM: p8|p8s|l1tm|infcap (InfCap default: limit studies want every TX committed)")
	scaleFlag := fs.String("scale", "small", "input scale: small|medium|large")
	hintsFlag := fs.String("hints", "none", "hint mode: none|st|dyn|full")
	seed := fs.Uint64("seed", 1, "simulation seed")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("record: exactly one workload required (have %v)", workloads.Names()))
	}
	spec, err := workloads.ByName(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	var scale workloads.Scale
	switch *scaleFlag {
	case "small":
		scale = workloads.Small
	case "medium":
		scale = workloads.Medium
	case "large":
		scale = workloads.Large
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = *seed
	switch *htmFlag {
	case "p8":
	case "p8s":
		cfg.HTM = sim.HTMP8S
	case "l1tm":
		cfg.HTM = sim.HTML1TM
	case "infcap":
		cfg.HTM = sim.HTMInfCap
	default:
		fatal(fmt.Errorf("unknown htm %q", *htmFlag))
	}
	switch *hintsFlag {
	case "none":
	case "st":
		cfg.Hints = sim.HintStatic
	case "dyn":
		cfg.Hints = sim.HintDynamic
	case "full":
		cfg.Hints = sim.HintFull
	default:
		fatal(fmt.Errorf("unknown hints %q", *hintsFlag))
	}

	mod := spec.BuildDefault(scale)
	if _, err := classify.Run(mod); err != nil {
		fatal(err)
	}
	m, err := sim.New(cfg, mod)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tw := trace.NewWriter(f)
	m.SetProfiler(tw)
	res, err := m.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	info, _ := f.Stat()
	fmt.Printf("recorded %s: %d events, %d bytes (%d commits, %d aborts)\n",
		*out, tw.Events(), info.Size(), res.Commits, res.TotalAborts())
}

func report(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	maxTID := fs.Int("max-worker-tid", 15, "highest worker thread id to include")
	fleet := fs.String("fleet", "", "fetch the fleet trace for a store key from this node base URL")
	simPath := fs.String("sim", "", "simulator Chrome trace to merge into -o (fleet mode)")
	out := fs.String("o", "", "write merged Perfetto trace-event JSON here (fleet mode)")
	_ = fs.Parse(args)
	if *fleet != "" {
		if fs.NArg() != 1 {
			fatal(fmt.Errorf("report -fleet: exactly one store key required"))
		}
		fleetReport(*fleet, fs.Arg(0), *simPath, *out)
		return
	}
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("report: exactly one trace file required"))
	}
	path := fs.Arg(0)

	// Pass 1: replay into the sharing profiler.
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	tr, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	sharing := profile.NewSharing(*maxTID)
	var attempts, commits uint64
	aborts := make(map[htm.AbortReason]uint64)
	if err := tr.ForEach(func(ev trace.Event) error {
		switch ev.Kind {
		case trace.KindAccess:
			sharing.OnAccess(ev.TID, ev.Addr, ev.Write, ev.InTx)
		case trace.KindTxBegin:
			attempts++
		case trace.KindTxCommit:
			commits++
		case trace.KindTxAbort:
			aborts[ev.Reason]++
		}
		return nil
	}); err != nil {
		fatal(err)
	}
	f.Close()
	rep := sharing.Report()

	fmt.Println("sharing metrics (paper Fig. 1 methodology):")
	t := stats.NewTable("metric", "value")
	t.Row("touched blocks / pages", fmt.Sprintf("%d / %d", rep.Blocks, rep.Pages))
	t.Row("safe blocks", stats.Pct(rep.SafeBlockFrac))
	t.Row("safe pages", stats.Pct(rep.SafePageFrac))
	t.Row("TX accesses", rep.TxAccesses)
	t.Row("safe TX reads @64B", stats.Pct(rep.SafeReadFracBlock))
	t.Row("safe TX reads @4K", stats.Pct(rep.SafeReadFracPage))
	t.Render(os.Stdout)

	var totalAborts uint64
	for _, n := range aborts {
		totalAborts += n
	}
	fmt.Printf("\ntransaction outcomes: %d attempts, %d commits, %d aborts\n",
		attempts, commits, totalAborts)
	if totalAborts > 0 {
		ta := stats.NewTable("abort reason", "count", "share")
		for _, r := range htm.AbortReasons {
			if n := aborts[r]; n > 0 {
				ta.Row(r.String(), n, stats.Pct(float64(n)/float64(totalAborts)))
			}
		}
		ta.Render(os.Stdout)
	}

	// Pass 2: footprint limit study.
	f2, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f2.Close()
	sizes := []int{16, 32, 64, 128, 256, 512}
	lim, err := trace.LimitStudy(f2, sizes)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nfootprint limit study (%d committed TXs, mean %.1f blocks, max %d):\n",
		lim.CommittedTxs, lim.Footprints.Mean(), lim.Footprints.Max())
	t2 := stats.NewTable("buffer entries", "TXs overflowing")
	keys := make([]int, 0, len(lim.AbortFracAt))
	for k := range lim.AbortFracAt {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		t2.Row(k, stats.Pct(lim.AbortFracAt[k]))
	}
	t2.Render(os.Stdout)
}

// fleetReport fetches one assembled fleet trace, prints where the
// request's wall time went, and optionally exports Perfetto JSON —
// merged with a simulator trace when one is given, so the cross-node
// request handling and the simulation it triggered share one timeline.
func fleetReport(node, key, simPath, out string) {
	u := strings.TrimRight(node, "/") + "/v1/traces/" + key
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(u)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: HTTP %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body))))
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		fatal(fmt.Errorf("decode trace: %v", err))
	}
	if doc.Schema != obs.TraceSchema {
		fatal(fmt.Errorf("trace schema %q, want %s", doc.Schema, obs.TraceSchema))
	}

	nodes := map[string]bool{}
	for _, s := range doc.Spans {
		nodes[s.Node] = true
	}
	b := obs.Breakdown(doc.Spans)
	fmt.Printf("fleet trace %s root %s: %d spans across %d nodes\n",
		doc.Trace, doc.Root, len(doc.Spans), len(nodes))
	phases := make([]string, 0, len(b.Phases))
	for p := range b.Phases {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	t := stats.NewTable("phase", "spans", "time", "share")
	for _, p := range phases {
		share := 0.0
		if b.TotalUs > 0 {
			share = float64(b.Phases[p]) / float64(b.TotalUs)
		}
		t.Row(p, b.Counts[p], time.Duration(b.Phases[p])*time.Microsecond, stats.Pct(share))
	}
	t.Render(os.Stdout)
	// Shares sum the spans of every node, so overlapping local and remote
	// views can exceed 100%; coverage is the non-overlapping attribution.
	fmt.Printf("request wall time %v; %s attributed to phases (%d remote spans)\n",
		time.Duration(b.TotalUs)*time.Microsecond, stats.Pct(b.Coverage()), b.Remote)
	if out == "" {
		return
	}

	events := obs.ChromeSpanEvents(doc.Spans, 100)
	if simPath != "" {
		raw, err := os.ReadFile(simPath)
		if err != nil {
			fatal(err)
		}
		var simDoc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &simDoc); err != nil {
			fatal(fmt.Errorf("decode %s: %v", simPath, err))
		}
		events = append(events, simDoc.TraceEvents...)
	}
	merged, err := json.Marshal(map[string]any{"displayTimeUnit": "ns", "traceEvents": events})
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, merged, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d trace events\n", out, len(events))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hintm-trace:", err)
	os.Exit(1)
}
