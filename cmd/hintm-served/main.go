// Command hintm-served is the persistent experiment service: it keeps a
// scheduler and a content-addressed result store resident, so experiments
// are submitted over HTTP, simulated at most once, and served from the
// store forever after — across clients and across restarts.
//
// Usage:
//
//	hintm-served [flags]
//
// Flags:
//
//	-addr HOST:PORT             listen address (default 127.0.0.1:8347)
//	-store DIR                  result store directory (default .hintm-store)
//	-scale small|medium|large   default input scale for requests/figures
//	-large small|medium|large   input scale for Fig 7/8 assembly
//	-workloads a,b,c            restrict figure assembly to a subset
//	-seed N                     simulation seed (part of every store key)
//	-workers N                  concurrent simulations (0 = GOMAXPROCS)
//	-faults SPEC                fault-injection plan applied to every run
//	-watchdog N                 livelock watchdog cycles per run
//	-max-cycles N               hard cap on each run's simulated cycles
//	-trace-dir DIR              per-run trace/autopsy artifacts, linked
//	                            from each store entry
//	-drain D                    graceful-shutdown budget (default 30s)
//
// Endpoints:
//
//	POST /v1/runs[?wait=1]   submit a run or a grid; hits answer instantly
//	GET  /v1/runs/{key}      stored result (byte-identical per key) or 202
//	GET  /v1/figures/{name}  figure rows assembled from the store
//	GET  /healthz            liveness + store/queue summary
//	GET  /metrics            store hits/misses, queue depth, sim runs, ...
//
// On SIGINT/SIGTERM the listener stops accepting, enqueued runs get the
// drain budget to finish persisting, and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hintm/internal/fault"
	"hintm/internal/harness"
	"hintm/internal/obs"
	"hintm/internal/server"
	"hintm/internal/store"
	"hintm/internal/workloads"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address")
	storeDir := flag.String("store", ".hintm-store", "result store directory")
	scaleFlag := flag.String("scale", "medium", "default input scale for requests and P8 figures")
	largeFlag := flag.String("large", "large", "input scale for Fig 7/8 assembly")
	wlFlag := flag.String("workloads", "", "comma-separated workload subset for figure assembly")
	seed := flag.Uint64("seed", 1, "simulation seed (part of every store key)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	faultsFlag := flag.String("faults", "", `fault-injection plan, e.g. "spurious=0.01,storm=0.001"`)
	watchdog := flag.Int64("watchdog", 0, "fail a run after this many cycles without forward progress (0 = off)")
	maxCycles := flag.Int64("max-cycles", 0, "hard cap on each run's simulated cycles (0 = none)")
	traceDir := flag.String("trace-dir", "", "write per-run traces and autopsies into this directory")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight runs")
	flag.Parse()

	opts := harness.DefaultOptions()
	var err error
	if opts.Scale, err = workloads.ParseScale(*scaleFlag); err != nil {
		fatal(err)
	}
	if opts.LargeScale, err = workloads.ParseScale(*largeFlag); err != nil {
		fatal(err)
	}
	if *wlFlag != "" {
		opts.Filter = strings.Split(*wlFlag, ",")
	}
	opts.Seed = *seed
	opts.Workers = *workers
	if opts.Faults, err = fault.ParsePlan(*faultsFlag); err != nil {
		fatal(err)
	}
	opts.WatchdogCycles = *watchdog
	opts.MaxCycles = *maxCycles
	opts.TraceDir = *traceDir

	st, err := store.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	srv := server.New(server.Config{Store: st, Options: opts, Metrics: obs.NewMetrics()})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	// SIGTERM alongside SIGINT: containers and service managers send TERM,
	// and a drained shutdown is what keeps the store's index consistent
	// with every run clients were promised.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hintm-served: listening on %s (store %s, %d entries)\n",
		*addr, *storeDir, st.Len())

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "hintm-served: shutting down, draining for up to %v\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "hintm-served: shutdown:", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "hintm-served: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hintm-served:", err)
	os.Exit(1)
}
