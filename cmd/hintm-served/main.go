// Command hintm-served is the persistent experiment service: it keeps a
// scheduler and a content-addressed result store resident, so experiments
// are submitted over HTTP, simulated at most once, and served from the
// store forever after — across clients, across restarts, and (with -peers)
// across a fleet of nodes sharing the key space by consistent hashing.
//
// Usage:
//
//	hintm-served [flags]
//
// Flags:
//
//	-addr HOST:PORT             listen address (default 127.0.0.1:8347)
//	-store DIR                  result store directory (default .hintm-store)
//	-scale small|medium|large   default input scale for requests/figures
//	-large small|medium|large   input scale for Fig 7/8 assembly
//	-workloads a,b,c            restrict figure assembly to a subset
//	-seed N                     simulation seed (part of every store key)
//	-workers N                  concurrent simulations (0 = GOMAXPROCS)
//	-faults SPEC                fault-injection plan applied to every run
//	-watchdog N                 livelock watchdog cycles per run
//	-max-cycles N               hard cap on each run's simulated cycles
//	-trace-dir DIR              per-run trace/autopsy artifacts, linked
//	                            from each store entry
//	-drain D                    graceful-shutdown budget (default 30s)
//	-queue-limit N              max admitted-but-unfinished runs before
//	                            submissions get 429 (default 256)
//	-node URL                   this node's advertised base URL
//	-peers URL,URL,...          every fleet node's base URL (incl. -node);
//	                            enables sharding, peer fetch, forwarding
//	-replicas N                 ring owners per key (default 2)
//	-peer-budget D              total peer time one cold miss may spend
//	                            before simulating locally (default 2s)
//	-breaker-threshold N        consecutive peer failures that open its
//	                            circuit breaker (default 3)
//	-breaker-backoff D          initial open-breaker probe backoff,
//	                            doubled (with seeded jitter) per failed
//	                            probe (default 500ms)
//	-health-seed N              breaker backoff jitter seed
//	-repl-queue N               async replication queue capacity;
//	                            overflow drops oldest (default 1024)
//	-repl-workers N             replication worker count (default 2)
//	-anti-entropy D             background repair sweep interval
//	                            (default 0 = off)
//	-trace-capacity N           resident fleet-trace buffers per node
//	                            (default 512; negative disables tracing)
//
// Endpoints (wire format hintm-api/v2, see internal/api):
//
//	POST /v1/runs[?wait=1]   submit a run or a grid; hits answer instantly
//	POST /v1/grids           batched grid; NDJSON per-run progress stream
//	GET  /v1/runs            list stored results (?workload=, ?htm=,
//	                         ?limit=, ?after= pagination)
//	GET  /v1/runs/{key}      stored result (byte-identical per key, fetched
//	                         from the key's ring owners on a miss) or 202
//	PUT  /v1/runs/{key}      fleet-internal replication (raw object bytes)
//	GET  /v1/figures/{name}  figure rows assembled from the store
//	GET  /v1/traces/{key}    the assembled fleet trace of a request: every
//	                         span recorded for the key's latest resolve on
//	                         this node, gathered from all healthy peers
//	GET  /healthz            liveness + build info + store/queue/fleet summary
//	GET  /metrics            store hits/misses, queue depth, sim runs,
//	                         peer fetch/hit/forward counters, and
//	                         serve_request_seconds/serve_phase_seconds
//	                         latency histograms labeled by node/phase/outcome
//
// On SIGINT/SIGTERM the listener stops accepting, enqueued runs get the
// drain budget to finish persisting, and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"hintm/internal/cli"
	"hintm/internal/obs"
	"hintm/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address")
	storeDir := cli.RegisterStore(flag.CommandLine, ".hintm-store")
	hf := cli.RegisterHarness(flag.CommandLine)
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight runs")
	queueLimit := flag.Int("queue-limit", 0, "max admitted-but-unfinished runs before submissions get 429 (0 = default)")
	traceCap := flag.Int("trace-capacity", 0, "resident fleet-trace buffers (0 = default 512, negative = tracing off)")
	ff := cli.RegisterFleet(flag.CommandLine)
	flag.Parse()

	opts, err := hf.Options()
	if err != nil {
		fatal(err)
	}
	st, err := cli.OpenStore(*storeDir)
	if err != nil {
		fatal(err)
	}

	cfg := server.Config{Store: st, Options: opts, Metrics: obs.NewMetrics(),
		QueueLimit: *queueLimit, TraceCapacity: *traceCap}
	if cfg.Fleet, err = ff.Config(); err != nil {
		fatal(err)
	}
	srv := server.New(cfg)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	// SIGTERM alongside SIGINT: containers and service managers send TERM,
	// and a drained shutdown is what keeps the store's index consistent
	// with every run clients were promised.
	ctx, stop := cli.Context(0)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hintm-served: listening on %s (store %s, %d entries)\n",
		*addr, *storeDir, st.Len())
	if ff.Enabled() {
		fmt.Fprintf(os.Stderr, "hintm-served: fleet node %s of [%s]\n",
			cfg.Fleet.Self, strings.Join(cfg.Fleet.Peers, ","))
	}

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "hintm-served: shutting down, draining for up to %v\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "hintm-served: shutdown:", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "hintm-served: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hintm-served:", err)
	os.Exit(1)
}
