// Command hintm-chaos fronts a hintm-served node with the deterministic
// fault-injection proxy (internal/chaos). Point fleet peers (or a load
// generator) at the proxy instead of the node, and the plan's network
// faults — killed connections, blackholes, delays, slow-loris trickles,
// corrupted bodies, flaky 503s — are injected between them, reproducibly:
// same plan + seed + request sequence, same faults.
//
// Usage:
//
//	hintm-chaos -target URL [flags]
//
// Flags:
//
//	-listen HOST:PORT       proxy listen address (default 127.0.0.1:8448)
//	-target URL             backend base URL to forward to (required)
//	-plan SPEC              chaos plan, comma-separated key=value pairs:
//	                        kill-at=N, blackhole=1, delay=50ms, slow-loris=2s,
//	                        corrupt=P, flaky=P (empty = transparent proxy)
//	-seed N                 decision-stream seed (default 1)
//	-metrics-addr HOST:PORT serve the proxy's own /metrics here ("" = off):
//	                        requests, forwards, proxied bytes, and injected
//	                        faults labeled by behavior — so a chaos campaign
//	                        can assert mid-run that its faults actually fired
//
// On SIGINT/SIGTERM the proxy prints its injection counters and exits.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"hintm/internal/chaos"
	"hintm/internal/cli"
	"hintm/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8448", "proxy listen address")
	target := flag.String("target", "", "backend base URL to forward to (required)")
	planSpec := flag.String("plan", "", "chaos plan (key=value,... ; empty = transparent)")
	seed := flag.Uint64("seed", 1, "decision-stream seed")
	metricsAddr := flag.String("metrics-addr", "", `serve the proxy's own /metrics on this address ("" = off)`)
	flag.Parse()

	if *target == "" {
		fatal(fmt.Errorf("-target is required"))
	}
	plan, err := chaos.ParsePlan(*planSpec)
	if err != nil {
		fatal(err)
	}
	proxy, err := chaos.New(*target, plan, *seed)
	if err != nil {
		fatal(err)
	}

	srv := &http.Server{Addr: *listen, Handler: proxy}
	ctx, stop := cli.Context(0)
	defer stop()

	errc := make(chan error, 1)
	var msrv *http.Server
	if *metricsAddr != "" {
		m := obs.NewMetrics()
		proxy.SetMetrics(m)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			m.Render(w)
		})
		msrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() { errc <- msrv.ListenAndServe() }()
	}
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hintm-chaos: %s -> %s plan=%q seed=%d\n",
		*listen, *target, plan.String(), *seed)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	srv.Close()
	if msrv != nil {
		msrv.Close()
	}
	st := proxy.Stats()
	fmt.Fprintf(os.Stderr,
		"hintm-chaos: requests=%d forwarded=%d killed=%d blackholed=%d flaked=%d corrupted=%d\n",
		st.Requests, st.Forwarded, st.Killed, st.Blackholed, st.Flaked, st.Corrupted)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hintm-chaos:", err)
	os.Exit(1)
}
