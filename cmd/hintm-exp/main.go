// Command hintm-exp runs the committed hypothesis catalogue.
//
// Usage:
//
//	hintm-exp [flags] [list|run|check|write]
//
// Targets:
//
//	list    print every registered hypothesis with its claim (no simulation)
//	run     evaluate the selected hypotheses and print their verdicts
//	check   run, then diff each committed FINDINGS.md byte-for-byte against
//	        the fresh evaluation; exit non-zero on any drift
//	write   run and regenerate the committed FINDINGS.md files in place
//
// Flags:
//
//	-hypothesis a,b   run only these hypotheses (comma-separated names)
//	-all              run every registered hypothesis (default when no
//	                  -hypothesis is given)
//	-scale small|medium|large   input scale for every grid cell (default small,
//	                  the scale the committed findings are generated at)
//	-dir DIR          hypotheses tree root holding <name>/FINDINGS.md
//	                  (default "hypotheses")
//	-store DIR        content-addressed result store; warm cells are recalled,
//	                  not re-simulated ("" = off)
//	-workers N        concurrent simulations (0 = GOMAXPROCS)
//	-timeout D        abort the whole run after D (e.g. 10m)
//	-assert-warm      after running, exit non-zero if any cell actually
//	                  simulated (CI uses this to prove the store made the
//	                  second pass free)
//
// Every hypothesis is a one-variable-at-a-time grid executed through the
// harness scheduler, so all cells share single-flight dedup and the store.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	_ "hintm/hypotheses"
	"hintm/internal/cli"
	"hintm/internal/harness"
	"hintm/internal/hyp"
	"hintm/internal/workloads"
)

func main() {
	names := flag.String("hypothesis", "", "comma-separated hypothesis names (default: all)")
	all := flag.Bool("all", false, "run every registered hypothesis")
	scaleFlag := flag.String("scale", "small", "input scale for every grid cell: small|medium|large")
	dir := flag.String("dir", "hypotheses", "hypotheses tree root holding <name>/FINDINGS.md")
	storeDir := cli.RegisterStore(flag.CommandLine, "")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = none)")
	assertWarm := flag.Bool("assert-warm", false, "exit non-zero if any cell simulated instead of recalling from the store")
	flag.Parse()

	target := "list"
	if flag.NArg() > 0 {
		target = flag.Arg(0)
	}

	specs, err := selectSpecs(*names, *all, target)
	if err != nil {
		fatal(err)
	}

	if target == "list" {
		list(specs)
		return
	}

	eng, err := newEngine(*scaleFlag, *storeDir, *workers)
	if err != nil {
		fatal(err)
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()

	var failures []string
	var simRuns uint64
	for _, spec := range specs {
		e, err := eng.Run(ctx, spec)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", spec.Name, err))
		}
		simRuns += e.SimRuns
		fmt.Printf("%-28s %-12s sim-runs=%-3d %s\n", spec.Name, e.Outcome.Verdict, e.SimRuns, e.Outcome.Reason)
		switch target {
		case "run":
		case "write":
			if err := hyp.Write(e, *dir); err != nil {
				fatal(err)
			}
			fmt.Printf("%-28s wrote %s\n", "", hyp.Path(*dir, spec))
		case "check":
			if err := hyp.Check(e, *dir); err != nil {
				failures = append(failures, err.Error())
			}
		default:
			fatal(fmt.Errorf("unknown target %q (want list|run|check|write)", target))
		}
	}
	fmt.Printf("total sim-runs: %d (store recalls excluded)\n", simRuns)
	if len(failures) > 0 {
		fatal(fmt.Errorf("%d hypothesis findings drifted:\n%s", len(failures), strings.Join(failures, "\n")))
	}
	if target == "check" {
		fmt.Printf("check: %d hypotheses byte-identical to committed findings\n", len(specs))
	}
	if *assertWarm && simRuns > 0 {
		fatal(fmt.Errorf("assert-warm: %d cells simulated instead of recalling from the store", simRuns))
	}
}

// selectSpecs resolves -hypothesis/-all into a concrete spec list. With
// neither flag, non-list targets default to the full catalogue.
func selectSpecs(names string, all bool, target string) ([]*hyp.Spec, error) {
	if names != "" && all {
		return nil, fmt.Errorf("-hypothesis and -all are mutually exclusive")
	}
	if names == "" {
		return hyp.All(), nil
	}
	var specs []*hyp.Spec
	for _, name := range strings.Split(names, ",") {
		s, err := hyp.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

func list(specs []*hyp.Spec) {
	for _, s := range specs {
		fmt.Printf("%s\n  variable: %s; levels: %d; seeds: %d\n  %s\n", s.Name, s.Variable, len(s.Levels), len(s.Seeds), s.Claim)
	}
}

// newEngine builds the shared grid engine: default (non-quick) harness
// options at the flagged scale, with the optional store attached.
func newEngine(scale, storeDir string, workers int) (*hyp.Engine, error) {
	opts := harness.DefaultOptions()
	var err error
	if opts.Scale, err = workloads.ParseScale(scale); err != nil {
		return nil, err
	}
	opts.Workers = workers
	if opts.Store, err = cli.OpenStore(storeDir); err != nil {
		return nil, err
	}
	return &hyp.Engine{Opts: opts}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hintm-exp:", err)
	os.Exit(1)
}
