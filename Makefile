# Convenience targets for the HinTM reproduction. Everything is plain
# `go` — these exist so the common flows are one command.

GO ?= go

.PHONY: all test vet bench figures svg ablate export clean

all: vet test

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The full verification artifacts the repository ships with.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every figure of the paper's evaluation (text tables).
figures:
	$(GO) run ./cmd/hintm-bench all

# Render the figures as SVG files under ./figures/.
svg:
	$(GO) run ./cmd/hintm-bench -svg figures svg

ablate:
	$(GO) run ./cmd/hintm-bench ablate

export:
	$(GO) run ./cmd/hintm-bench export > results.json

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	rm -rf figures results.json
