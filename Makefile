# Convenience targets for the HinTM reproduction. Everything is plain
# `go` — these exist so the common flows are one command.

GO ?= go

.PHONY: all test vet race fuzz-short bench figures svg ablate export clean

all: test

# test is the default gate: vet, the full suite, and the race detector over
# the concurrent packages (the scheduler and the simulator it drives).
test: vet
	$(GO) test ./...
	$(MAKE) race

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages under the race detector; the
# harness determinism tests double as the parallel-scheduler correctness
# suite.
race:
	$(GO) test -race ./internal/harness/... ./internal/sim/...

# fuzz-short gives the classifier-soundness fuzzer a 10-second native-fuzzing
# budget — enough for CI to catch regressions the seeded corpus misses.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzClassifierSoundness -fuzztime=10s ./internal/classify

# The full verification artifacts the repository ships with.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every figure of the paper's evaluation (text tables).
figures:
	$(GO) run ./cmd/hintm-bench all

# Render the figures as SVG files under ./figures/.
svg:
	$(GO) run ./cmd/hintm-bench -svg figures svg

ablate:
	$(GO) run ./cmd/hintm-bench ablate

export:
	$(GO) run ./cmd/hintm-bench export > results.json

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	rm -rf figures results.json
