# Convenience targets for the HinTM reproduction. Everything is plain
# `go` — these exist so the common flows are one command.

GO ?= go

.PHONY: all test vet race fuzz-short bench bench-smoke bench-diff prefix-smoke trace-check serve-smoke fleet-smoke chaos-smoke hyp-smoke figures svg ablate export clean

all: test

# test is the default gate: vet, the full suite, and the race detector over
# the concurrent packages (the scheduler and the simulator it drives).
test: vet
	$(GO) test ./...
	$(MAKE) race

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages under the race detector; the
# harness determinism tests double as the parallel-scheduler correctness
# suite, and the server/fleet/loadgen packages exercise the admission
# control and NDJSON stream ratchet under concurrent submissions. The
# prefix twin-grid golden makes the harness package heavy under -race, so
# the per-package timeout is raised: concurrent packages on a starved
# single-CPU runner must wait it out, not flake.
race:
	$(GO) test -race -timeout 1800s ./internal/harness/... ./internal/sim/... \
		./internal/server/... ./internal/fleet/... ./internal/loadgen/... \
		./internal/chaos/... ./internal/cli/... ./internal/hyp/...

# fuzz-short gives the classifier-soundness fuzzer a 10-second native-fuzzing
# budget — enough for CI to catch regressions the seeded corpus misses.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzClassifierSoundness -fuzztime=10s ./internal/classify

# The full verification artifacts the repository ships with.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every figure of the paper's evaluation (text tables).
figures:
	$(GO) run ./cmd/hintm-bench all

# Render the figures as SVG files under ./figures/.
svg:
	$(GO) run ./cmd/hintm-bench -svg figures svg

ablate:
	$(GO) run ./cmd/hintm-bench ablate

export:
	$(GO) run ./cmd/hintm-bench export > results.json

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs every benchmark exactly once with -benchmem, plus the
# zero-allocation pin tests (testing.AllocsPerRun over the step loop, tracker
# probe/insert, TLB hit, checkpoint capture/restore, and the snapshot-fork
# paths: fork cost stays O(live state) and the resumed step loop stays
# alloc-free) — the CI gate that the benchmark harness still works and the
# hot paths stay alloc-free.
bench-smoke:
	$(GO) test -run='Alloc' -bench=. -benchtime=1x -benchmem ./...

# bench-diff re-runs the small-input benchmark trajectory and fails when a
# headline metric regresses the committed BENCH_baseline.json beyond the
# tolerance (default 5%), or when wall time regresses beyond the much wider
# wall gate (10x tolerance, floor 50% — wall clocks are noisy, headline
# metrics are not; figures whose baseline ran in under 50ms are store hits
# and are not wall-gated). The simulator is seeded-deterministic, so an
# unchanged
# tree diffs exactly zero on the metrics; regenerate the baseline
# deliberately with:
#   go run ./cmd/hintm-bench -scale small -large small -results BENCH_baseline.json all
bench-diff:
	$(GO) run ./cmd/hintm-bench -scale small -large small -results .bench-current.json all > /dev/null
	$(GO) run ./cmd/hintm-bench benchdiff BENCH_baseline.json .bench-current.json
	rm -f .bench-current.json

# prefix-smoke runs the full small-scale figure grid twice — warm-up prefix
# sharing off, then on — and asserts the two stores are byte-identical,
# object file for object file, and that the shared pass actually forked a
# minimum number of runs from snapshots (MIN_SHARED, default 50).
prefix-smoke:
	./scripts/prefix-smoke.sh

# serve-smoke boots hintm-served against a temp store, submits the same
# seeded run twice over HTTP, and asserts the second is a store hit with a
# byte-identical body and zero extra simulations — then SIGTERM-drains it.
serve-smoke:
	./scripts/serve-smoke.sh

# fleet-smoke boots a 3-node sharded fleet, submits a grid cold to node 1
# and again to node 2 (fleet-wide SimRuns delta must be zero), checks
# byte-identity across nodes, runs seeded open-loop load with p99 and
# hit-rate SLO gates, and SIGTERM-drains every node.
fleet-smoke:
	./scripts/fleet-smoke.sh

# chaos-smoke is the resilience gate: a fault-proxy sanity pass, then a
# 3-node fleet that loses a node (SIGKILL) mid-grid — the grid must finish
# with zero failures, survivors must stay byte-identical and meet load
# SLOs behind open circuit breakers — and finally the node revives empty
# and must be repaired to a warm store by anti-entropy with a fleet-wide
# SimRuns delta of zero.
chaos-smoke:
	./scripts/chaos-smoke.sh

# hyp-smoke re-verifies the committed hypothesis catalogue: a cold
# `hintm-exp check` (every FINDINGS.md must regenerate byte-identical),
# then a warm check with -assert-warm (every cell must be a store recall —
# zero simulations).
hyp-smoke:
	./scripts/hyp-smoke.sh

# trace-check records the same seeded run twice and requires byte-identical
# traces and autopsies — the end-to-end determinism property the
# observability layer guarantees (DESIGN.md §11).
trace-check:
	rm -rf .trace-check && mkdir -p .trace-check
	$(GO) run ./cmd/hintm-sim -scale small -trace-out .trace-check/a.json -autopsy vacation > .trace-check/a.txt
	$(GO) run ./cmd/hintm-sim -scale small -trace-out .trace-check/b.json -autopsy vacation > .trace-check/b.txt
	cmp .trace-check/a.json .trace-check/b.json
	diff .trace-check/a.txt .trace-check/b.txt
	rm -rf .trace-check

clean:
	rm -rf figures results.json BENCH_results.json .trace-check .bench-current.json .hintm-store
