// Package fallbacklockconvoy probes the serial-fallback pathology hybrid
// TM is known for: as spurious aborts push more critical sections onto the
// global fallback lock, lock holders abort every concurrent hardware
// transaction, which converts yet more work to the lock — a convoy that
// grows fallback share faster than the injected abort probability alone
// explains, and costs wall-clock time.
package fallbacklockconvoy

import (
	"fmt"

	"hintm/internal/fault"
	"hintm/internal/harness"
	"hintm/internal/hyp"
	"hintm/internal/sim"
)

func init() { hyp.Register(spec) }

// Metric indices.
const (
	mFallbackShare = iota // fallback commits / all commits
	mCycles
	mHTMCommits
)

// Claim thresholds: moderate injection (p=0.5) must at least quadruple the
// clean fallback share (amplification — each lock holder aborts bystanders,
// so share grows faster than p alone explains), and heavy injection (p=0.9)
// must cost at least 10% wall-clock time versus clean.
const (
	amplification = 4.0
	slowdownFloor = 1.10
)

var spec = &hyp.Spec{
	Name: "fallback-lock-convoy",
	Claim: "On kmeans under P8, injecting spurious aborts with per-attempt " +
		"probability p convoys work onto the global fallback lock: the " +
		"fallback share of commits grows monotonically in p, at p=0.5 it is " +
		"at least 4x the clean share, and at p=0.9 the run is at least 10% " +
		"slower than clean.",
	Refs: []string{
		"Inherent Limitations of Hybrid Transactional Memory — https://arxiv.org/pdf/1405.5689 (instrumentation/fallback serialization costs)",
		"Safety Hints for HTM Capacity Abort Mitigation (HPCA 2023), §II — retry budget and serial fallback path",
	},
	Base:     harness.Request{Workload: "kmeans", HTM: sim.HTMP8, Hints: sim.HintNone},
	Variable: "injected spurious-abort probability",
	Levels: []hyp.Level{
		{Name: "clean"}, // control: no fault plan
		{Name: "p=0.2", Apply: func(q *harness.Request, o *harness.Options) {
			o.Faults = fault.Plan{SpuriousProb: 0.2}
		}},
		{Name: "p=0.5", Apply: func(q *harness.Request, o *harness.Options) {
			o.Faults = fault.Plan{SpuriousProb: 0.5}
		}},
		{Name: "p=0.9", Apply: func(q *harness.Request, o *harness.Options) {
			o.Faults = fault.Plan{SpuriousProb: 0.9}
		}},
	},
	Seeds: []uint64{1, 2, 3, 4, 5},
	Metrics: []hyp.Metric{
		{Name: "fallback share of commits", Format: "%.3f",
			Extract: func(r *sim.Result) float64 {
				total := r.Commits + r.FallbackCommits
				if total == 0 {
					return 0
				}
				return float64(r.FallbackCommits) / float64(total)
			}},
		{Name: "cycles", Format: "%.0f",
			Extract: func(r *sim.Result) float64 { return float64(r.Cycles) }},
		{Name: "HTM commits", Format: "%.0f",
			Extract: func(r *sim.Result) float64 { return float64(r.Commits) }},
	},
	Judge: judge,
}

func judge(e *hyp.Evaluation) hyp.Outcome {
	shares := make([]float64, 4)
	for l := range shares {
		shares[l] = e.Mean(l, mFallbackShare)
	}
	for l := 1; l < len(shares); l++ {
		if shares[l] < shares[l-1] {
			return hyp.Outcome{
				Verdict: hyp.Refuted,
				Reason: fmt.Sprintf("fallback share is not monotone in p: %s has mean share %.3f but %s has %.3f.",
					e.Spec.Levels[l].Name, shares[l], e.Spec.Levels[l-1].Name, shares[l-1]),
			}
		}
	}
	// Amplification at p=0.5. A clean share of exactly zero makes the ratio
	// undefined; fall back to an absolute bar of 10% of commits on the lock.
	amplified := false
	var ampText string
	if shares[0] > 0 {
		ratio := shares[2] / shares[0]
		amplified = ratio >= amplification
		ampText = fmt.Sprintf("p=0.5 share %.3f is %.1fx clean's %.3f (needs >= %.0fx)", shares[2], ratio, shares[0], amplification)
	} else {
		amplified = shares[2] >= 0.10
		ampText = fmt.Sprintf("clean share is 0, p=0.5 share %.3f (absolute bar 0.100)", shares[2])
	}
	slowdown := e.Mean(3, mCycles) / e.Mean(0, mCycles)
	reason := fmt.Sprintf("%s; p=0.9 runs %.1f%% slower than clean (floor %.0f%%).",
		ampText, (slowdown-1)*100, (slowdownFloor-1)*100)
	if amplified && slowdown >= slowdownFloor {
		return hyp.Outcome{Verdict: hyp.Supported, Reason: reason}
	}
	return hyp.Outcome{Verdict: hyp.Refuted, Reason: reason}
}
