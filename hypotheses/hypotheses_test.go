package hypotheses

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"hintm/internal/harness"
	"hintm/internal/hyp"
	"hintm/internal/workloads"
)

// TestRegistryMatchesTree pins the three-way agreement between Names, the
// hyp registry, and the directories on disk: adding a hypothesis without
// wiring all three is a test failure, not a silent gap in CI's check.
func TestRegistryMatchesTree(t *testing.T) {
	if !sort.StringsAreSorted(Names) {
		t.Errorf("Names not sorted: %v", Names)
	}
	var registered []string
	for _, s := range hyp.All() {
		registered = append(registered, s.Name)
	}
	if len(registered) != len(Names) {
		t.Fatalf("registry has %v, Names has %v", registered, Names)
	}
	for i, name := range Names {
		if registered[i] != name {
			t.Errorf("registry[%d] = %q, Names[%d] = %q", i, registered[i], i, name)
		}
		if fi, err := os.Stat(name); err != nil || !fi.IsDir() {
			t.Errorf("hypothesis %q has no directory: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(name, "FINDINGS.md")); err != nil {
			t.Errorf("hypothesis %q has no committed FINDINGS.md: %v", name, err)
		}
	}
}

// TestSpecsAreRunnable validates every committed spec beyond structural
// checks: the base workload must exist and every level must apply cleanly.
func TestSpecsAreRunnable(t *testing.T) {
	for _, s := range hyp.All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if _, err := workloads.ByName(s.Base.Workload); err != nil {
			t.Errorf("%s: base workload: %v", s.Name, err)
		}
		for _, l := range s.Levels {
			req, opts := s.Base, harness.QuickOptions()
			if l.Apply != nil {
				l.Apply(&req, &opts)
			}
			if req.Workload != s.Base.Workload {
				t.Errorf("%s/%s: a level must not change the workload (one variable at a time)", s.Name, l.Name)
			}
		}
	}
}

// TestCommittedFindingsNameTheirHypothesis guards against copy-paste
// skew between a directory and the findings generated into it.
func TestCommittedFindingsNameTheirHypothesis(t *testing.T) {
	for _, name := range Names {
		data, err := os.ReadFile(filepath.Join(name, "FINDINGS.md"))
		if err != nil {
			t.Fatal(err)
		}
		want := "# Hypothesis: " + name + "\n"
		if len(data) < len(want) || string(data[:len(want)]) != want {
			t.Errorf("%s/FINDINGS.md does not open with %q", name, want)
		}
	}
}
