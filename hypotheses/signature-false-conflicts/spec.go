// Package signaturefalseconflicts probes the cost of P8S's Bloom-style
// read signature: shrinking it below the default 1024 bits must raise
// false-conflict aborts superlinearly and, past a point, measurable
// wall-clock slowdown — the hash collisions the paper's signature sizing
// is designed to keep negligible.
package signaturefalseconflicts

import (
	"fmt"

	"hintm/internal/harness"
	"hintm/internal/htm"
	"hintm/internal/hyp"
	"hintm/internal/sim"
)

func init() { hyp.Register(spec) }

// Metric indices.
const (
	mFalseRate = iota // false-conflict aborts per 1k HTM commits
	mCycles
	mCommits
)

// slowdownFloor is the minimum mean cycles(64-bit)/cycles(1024-bit) ratio
// for the "measurable slowdown" half of the claim.
const slowdownFloor = 1.05

var spec = &hyp.Spec{
	Name: "signature-false-conflicts",
	Claim: "On yada under SMT=2 — the deepest-footprint STAMP workload here — " +
		"shrinking the P8S read signature from 1024 bits induces false-conflict " +
		"aborts at a superlinearly growing rate (per 1k HTM commits) as bits " +
		"halve, and at 64 bits the collisions cost at least 5% wall-clock time " +
		"versus the 1024-bit default.",
	Refs: []string{
		"Safety Hints for HTM Capacity Abort Mitigation (HPCA 2023), §III — P8S PBX read-signature overflow handling",
		"The Influence of Malloc Placement on TSX Hardware Transactional Memory — https://arxiv.org/pdf/1504.04640 (address-aliasing abort pathologies)",
	},
	Base:     harness.Request{Workload: "yada", HTM: sim.HTMP8S, Hints: sim.HintNone, SMT: 2},
	Variable: "read-signature size (bits)",
	Levels: []hyp.Level{
		{Name: "1024b"}, // control: the architectural default
		{Name: "256b", Apply: func(q *harness.Request, o *harness.Options) { q.SigBits = 256 }},
		{Name: "128b", Apply: func(q *harness.Request, o *harness.Options) { q.SigBits = 128 }},
		{Name: "64b", Apply: func(q *harness.Request, o *harness.Options) { q.SigBits = 64 }},
	},
	Seeds: []uint64{1, 2, 3, 4, 5},
	Metrics: []hyp.Metric{
		{Name: "false-conflict aborts per 1k commits", Format: "%.1f",
			Extract: func(r *sim.Result) float64 {
				if r.Commits == 0 {
					return 0
				}
				return 1000 * float64(r.Aborts[htm.AbortFalseConflict]) / float64(r.Commits)
			}},
		{Name: "cycles", Format: "%.0f",
			Extract: func(r *sim.Result) float64 { return float64(r.Cycles) }},
		{Name: "HTM commits", Format: "%.0f",
			Extract: func(r *sim.Result) float64 { return float64(r.Commits) }},
	},
	Judge: judge,
}

func judge(e *hyp.Evaluation) hyp.Outcome {
	// Mean false-conflict rate per level, in level (= descending bits) order.
	rates := make([]float64, 4)
	for l := range rates {
		rates[l] = e.Mean(l, mFalseRate)
	}
	if rates[1] == 0 && rates[2] == 0 && rates[3] == 0 {
		return hyp.Outcome{
			Verdict: hyp.Inconclusive,
			Reason:  "no false-conflict aborts at any signature size — the workload's read set never stresses the signature at this scale.",
		}
	}
	for l := 1; l < len(rates); l++ {
		if rates[l] < rates[l-1] {
			return hyp.Outcome{
				Verdict: hyp.Refuted,
				Reason: fmt.Sprintf("false-conflict rate is not monotone in signature size: %s has mean %.1f/1k commits but %s has %.1f.",
					e.Spec.Levels[l].Name, rates[l], e.Spec.Levels[l-1].Name, rates[l-1]),
			}
		}
	}
	// Superlinear: halving bits twice (256 -> 64) must more than quadruple
	// the rate. A zero 256-bit rate leaves the ratio undefined.
	if rates[1] == 0 {
		return hyp.Outcome{
			Verdict: hyp.Inconclusive,
			Reason:  "256-bit signature shows no false conflicts, so the superlinearity ratio is undefined at this scale.",
		}
	}
	growth := rates[3] / rates[1]
	slowdown := e.Mean(3, mCycles) / e.Mean(0, mCycles)
	reason := fmt.Sprintf("mean false-conflict rate grows %.1f -> %.1f -> %.1f per 1k commits from 256b to 64b (%.1fx over a 4x bit reduction, superlinear needs > 4x); 64b runs %.1f%% slower than 1024b (floor %.0f%%).",
		rates[1], rates[2], rates[3], growth, (slowdown-1)*100, (slowdownFloor-1)*100)
	if growth > 4 && slowdown >= slowdownFloor {
		return hyp.Outcome{Verdict: hyp.Supported, Reason: reason}
	}
	return hyp.Outcome{Verdict: hyp.Refuted, Reason: reason}
}
