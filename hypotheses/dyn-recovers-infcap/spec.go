// Package dynrecoversinfcap states the reproduction's headline claim as a
// falsifiable experiment: dynamic-only HinTM hints should recover most of
// the speedup an infinite-capacity HTM would deliver, because the capacity
// aborts they eliminate are the dominant cost on read-dominated workloads.
package dynrecoversinfcap

import (
	"fmt"

	"hintm/internal/harness"
	"hintm/internal/htm"
	"hintm/internal/hyp"
	"hintm/internal/sim"
	"hintm/internal/stats"
)

func init() { hyp.Register(spec) }

// Metric indices.
const (
	mCycles = iota
	mCapacityAborts
	mCommits
)

// threshold is the claim's recovery fraction: HinTM-dyn must deliver at
// least this share of InfCap's speedup over P8.
const threshold = 0.80

// headroom is the minimum InfCap speedup over P8 (per seed) for the
// question to be answerable at all: when the unbounded HTM itself gains
// under 5%, there is no capacity cost to recover and the verdict is
// INCONCLUSIVE rather than a ratio of noise.
const headroom = 0.05

var spec = &hyp.Spec{
	Name: "dyn-recovers-infcap",
	Claim: "On genome — the paper's read-dominated capacity victim — HinTM's " +
		"dynamic-only hints (P8+dyn) recover at least 80% of the speedup an " +
		"infinite-capacity HTM (InfCap) achieves over the bounded P8 baseline: " +
		"mean per-seed recovery fraction (S_dyn-1)/(S_inf-1) >= 0.80.",
	Refs: []string{
		"Safety Hints for HTM Capacity Abort Mitigation (HPCA 2023), §V — HinTM-dyn vs the InfCap upper bound",
	},
	Base:     harness.Request{Workload: "genome", HTM: sim.HTMP8, Hints: sim.HintNone},
	Variable: "HTM/hint configuration",
	Levels: []hyp.Level{
		{Name: "P8"}, // control: bounded baseline, no hints
		{Name: "P8+dyn", Apply: func(q *harness.Request, o *harness.Options) { q.Hints = sim.HintDynamic }},
		{Name: "InfCap", Apply: func(q *harness.Request, o *harness.Options) { q.HTM = sim.HTMInfCap }},
	},
	Seeds: []uint64{1, 2, 3, 4, 5},
	Metrics: []hyp.Metric{
		{Name: "cycles", Format: "%.0f",
			Extract: func(r *sim.Result) float64 { return float64(r.Cycles) }},
		{Name: "capacity aborts", Format: "%.0f",
			Extract: func(r *sim.Result) float64 { return float64(r.Aborts[htm.AbortCapacity]) }},
		{Name: "HTM commits", Format: "%.0f",
			Extract: func(r *sim.Result) float64 { return float64(r.Commits) }},
	},
	Judge: judge,
}

// judge computes the per-seed recovery fraction (S_dyn - 1) / (S_inf - 1),
// where S_x is that configuration's speedup over the same-seed P8 control.
func judge(e *hyp.Evaluation) hyp.Outcome {
	ctrl := e.Values(0, mCycles)
	dyn := e.Values(1, mCycles)
	inf := e.Values(2, mCycles)
	recov := make([]float64, len(ctrl))
	for i := range ctrl {
		sDyn := ctrl[i]/dyn[i] - 1
		sInf := ctrl[i]/inf[i] - 1
		if sInf < headroom {
			return hyp.Outcome{
				Verdict: hyp.Inconclusive,
				Reason: fmt.Sprintf("seed %d: InfCap gains only %.1f%% over P8 — no capacity headroom to recover, the claim is untestable at this scale.",
					e.Spec.Seeds[i], sInf*100),
			}
		}
		recov[i] = sDyn / sInf
	}
	sum := stats.Summarize(recov)
	reason := fmt.Sprintf("dynamic hints recover a mean %.1f%% of InfCap's speedup over P8 (median %.1f%%, min %.1f%%, max %.1f%%) across %d seeds; threshold %.0f%%.",
		sum.Mean*100, sum.Median*100, sum.Min*100, sum.Max*100, sum.N, threshold*100)
	if sum.Mean >= threshold {
		return hyp.Outcome{Verdict: hyp.Supported, Reason: reason}
	}
	return hyp.Outcome{Verdict: hyp.Refuted, Reason: reason}
}
