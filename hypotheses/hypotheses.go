// Package hypotheses links every committed hypothesis into one importable
// registry. Each subdirectory holds a single hyp.Spec (registered from its
// init) alongside the committed FINDINGS.md that cmd/hintm-exp regenerates
// and verifies byte-for-byte. Importing this package — as hintm-exp and the
// tests here do — is what brings the full catalogue into hyp.All().
package hypotheses

import (
	_ "hintm/hypotheses/dyn-recovers-infcap"
	_ "hintm/hypotheses/fallback-lock-convoy"
	_ "hintm/hypotheses/signature-false-conflicts"
)

// Names lists the committed hypotheses; hypotheses_test.go keeps it in
// lockstep with both the registry and the directories on disk.
var Names = []string{
	"dyn-recovers-infcap",
	"fallback-lock-convoy",
	"signature-false-conflicts",
}
