// Quickstart: build a tiny transactional program in TIR, run HinTM's static
// classifier over it, and simulate it on a POWER8-style HTM with and without
// safety hints.
//
// The program is the classic capacity-abort victim: each thread fills a
// thread-private heap buffer inside a transaction (90 cache blocks — more
// than the P8 buffer's 64 entries) and then publishes one result word to a
// shared array. A conventional HTM tracks every access and aborts; HinTM's
// compiler proves the buffer thread-private and the HTM tracks only the
// single unsafe store.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hintm/internal/classify"
	"hintm/internal/ir"
	"hintm/internal/sim"
)

const (
	threads = 8
	blocks  = 90 // private blocks touched per TX: exceeds P8's 64 entries
	rounds  = 8
)

// buildModule writes the demo program directly with the IR builder — this is
// what a workload kernel looks like under the hood.
func buildModule() *ir.Module {
	b := ir.NewBuilder("quickstart")
	b.Global("results", threads*8) // one block per thread

	w := b.ThreadBody("worker", 1)
	tid := w.Param(0)
	buf := w.MallocI(blocks * 64)

	// for r := 0; r < rounds; r++ { TX { fill buf; results[tid] = sum } }
	loop := w.NewBlock("loop")
	fill := w.NewBlock("fill")
	fillDone := w.NewBlock("filldone")
	done := w.NewBlock("done")

	r := w.C(0)
	i := w.C(0)
	sum := w.C(0)
	w.Br(loop)

	w.SetBlock(loop)
	w.TxBegin()
	w.MovTo(i, w.C(0))
	w.MovTo(sum, w.C(0))
	w.Br(fill)

	w.SetBlock(fill) // rotated loop: provably initializes buf
	off := w.Mul(i, w.C(64))
	v := w.Add(tid, i)
	w.Store(w.Add(buf, off), 0, v) // private, initializing -> safe
	w.MovTo(sum, w.Add(sum, w.Load(w.Add(buf, off), 0)))
	w.MovTo(i, w.Add(i, w.C(1)))
	c := w.Cmp(ir.CmpLT, i, w.C(blocks))
	w.CondBr(c, fill, fillDone)

	w.SetBlock(fillDone)
	res := w.GlobalAddr("results")
	slot := w.Mul(tid, w.C(64))       // one block per thread: no false sharing
	w.Store(w.Add(res, slot), 0, sum) // shared -> stays tracked
	w.TxEnd()
	w.MovTo(r, w.Add(r, w.C(1)))
	c2 := w.Cmp(ir.CmpLT, r, w.C(rounds))
	w.CondBr(c2, loop, done)

	w.SetBlock(done)
	w.FreeI(buf, blocks*64)
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(threads)
	mn.Parallel(n, "worker")
	mn.RetVoid()
	return b.M
}

func run(mod *ir.Module, hints sim.HintMode) *sim.Result {
	cfg := sim.DefaultConfig()
	cfg.Hints = hints
	m, err := sim.New(cfg, mod)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	mod := buildModule()
	rep, err := classify.Run(mod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("static classification:", rep)

	base := run(mod, sim.HintNone)
	hinted := run(mod, sim.HintStatic)

	fmt.Printf("\n%-22s %14s %14s\n", "", "baseline P8", "P8 + HinTM-st")
	fmt.Printf("%-22s %14d %14d\n", "cycles", base.Cycles, hinted.Cycles)
	fmt.Printf("%-22s %14d %14d\n", "HTM commits", base.Commits, hinted.Commits)
	fmt.Printf("%-22s %14d %14d\n", "fallback (serialized)", base.FallbackCommits, hinted.FallbackCommits)
	fmt.Printf("%-22s %14d %14d\n", "capacity aborts",
		base.TotalAborts(), hinted.TotalAborts())
	fmt.Printf("%-22s %14s %14.1f\n", "TX footprint (blocks)", "-", hinted.TxFootprints.Mean())
	fmt.Printf("\nspeedup from safety hints: %.2fx\n",
		float64(base.Cycles)/float64(hinted.Cycles))
}
