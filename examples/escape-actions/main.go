// Escape actions vs. safety hints: the paper's §VII comparison, live.
//
// Some HTMs (Intel TSX, IBM POWER) provide suspend/resume escape actions: a
// coarse window whose accesses bypass tracking entirely. HinTM's safe
// load/store hints achieve the same capacity relief at instruction
// granularity — automatically, and without losing conflict detection for the
// accesses that still need it. This example runs the same
// 90-private-blocks-per-TX kernel three ways:
//
//  1. conventional implicit tracking  → capacity aborts, serialized fallback;
//  2. programmer suspend/resume       → fits, but manual and all-or-nothing;
//  3. HinTM static hints              → fits, compiler-derived, per access.
//
// Run: go run ./examples/escape-actions
package main

import (
	"context"
	"fmt"
	"log"

	"hintm/internal/classify"
	"hintm/internal/htm"
	"hintm/internal/ir"
	"hintm/internal/sim"
	"hintm/internal/stats"
)

const (
	threads = 8
	blocks  = 90
	rounds  = 4
)

// build emits the kernel; mode selects the capacity-relief mechanism.
func build(mode string) *ir.Module {
	b := ir.NewBuilder("escape-demo")
	b.Global("results", threads*8)

	w := b.ThreadBody("worker", 1)
	tid := w.Param(0)
	buf := w.MallocI(blocks * 64)

	loop := w.NewBlock("loop")
	fill := w.NewBlock("fill")
	fillDone := w.NewBlock("filldone")
	done := w.NewBlock("done")

	r := w.C(0)
	i := w.C(0)
	sum := w.C(0)
	w.Br(loop)

	w.SetBlock(loop)
	w.TxBegin()
	if mode == "escape" {
		w.TxSuspend()
	}
	w.MovTo(i, w.C(0))
	w.MovTo(sum, w.C(0))
	w.Br(fill)

	w.SetBlock(fill)
	off := w.Mul(i, w.C(64))
	w.Store(w.Add(buf, off), 0, w.Add(tid, i))
	w.MovTo(sum, w.Add(sum, w.Load(w.Add(buf, off), 0)))
	w.MovTo(i, w.Add(i, w.C(1)))
	c := w.Cmp(ir.CmpLT, i, w.C(blocks))
	w.CondBr(c, fill, fillDone)

	w.SetBlock(fillDone)
	if mode == "escape" {
		w.TxResume()
	}
	res := w.GlobalAddr("results")
	w.Store(w.Add(res, w.Mul(tid, w.C(64))), 0, sum)
	w.TxEnd()
	w.MovTo(r, w.Add(r, w.C(1)))
	c2 := w.Cmp(ir.CmpLT, r, w.C(rounds))
	w.CondBr(c2, loop, done)

	w.SetBlock(done)
	w.FreeI(buf, blocks*64)
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(threads)
	mn.Parallel(n, "worker")
	mn.RetVoid()
	return b.M
}

func run(mod *ir.Module, hints sim.HintMode) *sim.Result {
	cfg := sim.DefaultConfig()
	cfg.Hints = hints
	m, err := sim.New(cfg, mod)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	tracked := run(build("plain"), sim.HintNone)

	escMod := build("escape")
	escape := run(escMod, sim.HintNone)

	hintMod := build("plain")
	if _, err := classify.Run(hintMod); err != nil {
		log.Fatal(err)
	}
	hinted := run(hintMod, sim.HintStatic)

	t := stats.NewTable("mechanism", "cycles", "capacity-aborts", "fallback",
		"tracked-footprint", "speedup")
	row := func(name string, r *sim.Result) {
		t.Row(name, r.Cycles, r.Aborts[htm.AbortCapacity], r.FallbackCommits,
			fmt.Sprintf("%.0f blocks", r.TxFootprints.Mean()),
			fmt.Sprintf("%.2fx", float64(tracked.Cycles)/float64(r.Cycles)))
	}
	row("implicit tracking", tracked)
	row("suspend/resume", escape)
	row("HinTM safe hints", hinted)
	fmt.Print(t.String())
	fmt.Println("\nBoth mechanisms recover the capacity loss; the hints do it without")
	fmt.Println("programmer effort and keep conflict detection on every access that")
	fmt.Println("needs it — escape windows blind the HTM to everything inside them.")
}
