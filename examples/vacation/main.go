// Vacation walkthrough: dynamic classification and its page-mode costs.
//
// The reservation system's tables are read-mostly but genuinely updated, so
// compile-time analysis can prove little — the sharing pattern only exists
// at runtime. HinTM's page classifier watches each page's inter-thread
// behaviour: pages that stay thread-private or read-shared serve safe reads,
// while a page's first cross-thread write triggers the safe→unsafe
// transition that aborts every transaction that touched it (the paper's
// page-mode abort) and pays TLB-shootdown costs. Vacation is the paper's
// outlier for exactly this overhead; this example surfaces all of it.
//
// Run: go run ./examples/vacation
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"hintm/internal/classify"
	"hintm/internal/htm"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/workloads"
)

func run(mode sim.HintMode) *sim.Result {
	spec, err := workloads.ByName("vacation")
	if err != nil {
		log.Fatal(err)
	}
	mod := spec.BuildDefault(workloads.Medium)
	if _, err := classify.Run(mod); err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Hints = mode
	m, err := sim.New(cfg, mod)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	base := run(sim.HintNone)
	dyn := run(sim.HintDynamic)

	fmt.Println("vacation on P8: baseline vs HinTM-dyn")
	t := stats.NewTable("metric", "baseline", "HinTM-dyn")
	t.Row("cycles", base.Cycles, dyn.Cycles)
	t.Row("capacity aborts", base.Aborts[htm.AbortCapacity], dyn.Aborts[htm.AbortCapacity])
	t.Row("page-mode aborts", base.Aborts[htm.AbortPageMode], dyn.Aborts[htm.AbortPageMode])
	t.Row("page transitions", base.VM.Transitions, dyn.VM.Transitions)
	t.Row("page-mode cycles", base.PageModeCycles, dyn.PageModeCycles)
	t.Row("...as runtime share", stats.Pct(base.PageModeCycleFraction()),
		stats.Pct(dyn.PageModeCycleFraction()))
	t.Row("dyn-safe accesses", base.DynSafeAccesses, dyn.DynSafeAccesses)
	t.Render(os.Stdout)
	fmt.Printf("\nspeedup: %.2fx — positive, but page-mode transitions claw back\n",
		float64(base.Cycles)/float64(dyn.Cycles))
	fmt.Println("a large share of the win: the paper's vacation outlier (Fig. 4b).")
}
