// Intset walkthrough: where HinTM's classification finds nothing to mark.
//
// The sorted linked-list set is the classic TM stress test: every operation
// pointer-chases half the list *inside* its transaction, and the nodes are
// genuinely shared and genuinely written. There is no thread-private memory
// for the compiler to prove and no read-only page for the runtime to
// discover — the readset is irreducible. HinTM is honest about this: the
// paper expands *effective* capacity by not tracking accesses that cannot
// race; when every access can race, only genuinely larger hardware (InfCap
// here, or the P8S read signature) helps.
//
// The hash-set variant shows the flip side: short probe sequences never
// pressure even the 64-entry buffer, so — like kmeans and ssca2 in the
// paper — there is nothing for HinTM to win.
//
// Run: go run ./examples/intset
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"hintm/internal/classify"
	"hintm/internal/htm"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/workloads"
)

func run(name string, kind sim.HTMKind, hints sim.HintMode) *sim.Result {
	spec, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	mod := spec.BuildDefault(workloads.Medium)
	if _, err := classify.Run(mod); err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.HTM = kind
	cfg.Hints = hints
	m, err := sim.New(cfg, mod)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("== intset-ll: the irreducible readset ==")
	base := run("intset-ll", sim.HTMP8, sim.HintNone)
	full := run("intset-ll", sim.HTMP8, sim.HintFull)
	sig := run("intset-ll", sim.HTMP8S, sim.HintNone)
	inf := run("intset-ll", sim.HTMInfCap, sim.HintNone)

	t := stats.NewTable("system", "cycles", "capacity-aborts", "fallback", "speedup")
	row := func(name string, r *sim.Result) {
		t.Row(name, r.Cycles, r.Aborts[htm.AbortCapacity], r.FallbackCommits,
			fmt.Sprintf("%.2fx", float64(base.Cycles)/float64(r.Cycles)))
	}
	row("P8", base)
	row("P8 + HinTM", full)
	row("P8S (signatures)", sig)
	row("InfCap", inf)
	t.Render(os.Stdout)
	fmt.Printf("\nHinTM marks %s of the list walk safe — nothing can be proven,\n",
		stats.Pct(full.SafeFraction()))
	fmt.Println("so capacity relief must come from hardware (signatures / InfCap).")

	fmt.Println("\n== intset-hash: nothing to win ==")
	hBase := run("intset-hash", sim.HTMP8, sim.HintNone)
	hFull := run("intset-hash", sim.HTMP8, sim.HintFull)
	t2 := stats.NewTable("system", "cycles", "capacity-aborts", "commits")
	t2.Row("P8", hBase.Cycles, hBase.Aborts[htm.AbortCapacity], hBase.Commits)
	t2.Row("P8 + HinTM", hFull.Cycles, hFull.Aborts[htm.AbortCapacity], hFull.Commits)
	t2.Render(os.Stdout)
	fmt.Printf("\nTiny transactions never overflow (%.2fx \"speedup\"): with nothing\n",
		float64(hBase.Cycles)/float64(hFull.Cycles))
	fmt.Println("to win, HinTM-dyn's page-management overhead is pure cost — the same")
	fmt.Println("flat-to-slightly-negative result the paper shows for kmeans/ssca2.")
}
