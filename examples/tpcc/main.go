// TPC-C walkthrough: HinTM on OLTP-style transactions and on a
// signature-extended HTM (P8S).
//
// Payment (tpcc-p) is conflict-dominated — its aborts come from the hot
// warehouse row, and no capacity mechanism can help those — yet removing the
// small population of capacity aborts from its occasional customer
// name-scans still buys measurable speedup, the paper's point that even
// conflict-bound OLTP benefits. New-order (tpcc-no) staged-order-line
// accesses are statically safe but highly local, so their removal saves few
// tracking entries (the paper's locality observation).
//
// The second half runs new-order on P8S, where hardware read signatures
// already absorb readset overflow: HinTM's remaining value is writeset
// relief and false-conflict avoidance.
//
// Run: go run ./examples/tpcc
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"hintm/internal/classify"
	"hintm/internal/htm"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/workloads"
)

func run(name string, kind sim.HTMKind, mode sim.HintMode, scale workloads.Scale) *sim.Result {
	spec, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	mod := spec.BuildDefault(scale)
	if _, err := classify.Run(mod); err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.HTM = kind
	cfg.Hints = mode
	m, err := sim.New(cfg, mod)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("== tpcc-p on P8: conflict-dominated, capacity still matters ==")
	base := run("tpcc-p", sim.HTMP8, sim.HintNone, workloads.Medium)
	full := run("tpcc-p", sim.HTMP8, sim.HintFull, workloads.Medium)
	t := stats.NewTable("metric", "baseline", "HinTM")
	t.Row("cycles", base.Cycles, full.Cycles)
	t.Row("conflict aborts", base.Aborts[htm.AbortConflict], full.Aborts[htm.AbortConflict])
	t.Row("capacity aborts", base.Aborts[htm.AbortCapacity], full.Aborts[htm.AbortCapacity])
	t.Render(os.Stdout)
	confFrac := float64(base.Aborts[htm.AbortConflict]) / float64(base.TotalAborts())
	fmt.Printf("conflicts are %s of baseline aborts; speedup from capacity relief: %.2fx\n\n",
		stats.Pct(confFrac), float64(base.Cycles)/float64(full.Cycles))

	fmt.Println("== tpcc-no on P8S: signatures absorb the readset ==")
	sBase := run("tpcc-no", sim.HTMP8S, sim.HintNone, workloads.Large)
	sFull := run("tpcc-no", sim.HTMP8S, sim.HintFull, workloads.Large)
	t2 := stats.NewTable("metric", "P8S", "P8S + HinTM")
	t2.Row("cycles", sBase.Cycles, sFull.Cycles)
	t2.Row("capacity aborts", sBase.Aborts[htm.AbortCapacity], sFull.Aborts[htm.AbortCapacity])
	t2.Row("false-conflict aborts", sBase.Aborts[htm.AbortFalseConflict], sFull.Aborts[htm.AbortFalseConflict])
	t2.Row("page-mode cycle share", stats.Pct(sBase.PageModeCycleFraction()),
		stats.Pct(sFull.PageModeCycleFraction()))
	t2.Render(os.Stdout)
	fmt.Printf("net effect on P8S: %.2fx — HinTM removes the remaining capacity and\n",
		float64(sBase.Cycles)/float64(sFull.Cycles))
	fmt.Println("false-conflict aborts, but page-mode overheads can offset the gain")
	fmt.Println("(the paper observes the same net loss for tpcc-no on P8S).")
}
