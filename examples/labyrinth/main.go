// Labyrinth walkthrough: the paper's flagship HinTM-st case (Listing 2).
//
// The maze router's transactions sweep a thread-private copy of the routing
// grid — memory that can never race, yet a conventional implicitly-
// transactional HTM dutifully tracks every access and blows its 64-entry
// buffer on nearly every transaction, collapsing to serialized fallback
// execution. This example shows the whole pipeline: the static classifier
// replicating the route-selection helper for its safe arguments, the
// resulting transaction footprint shrinking below the buffer size, and the
// end-to-end speedups of each HinTM mode.
//
// Run: go run ./examples/labyrinth
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"hintm/internal/classify"
	"hintm/internal/htm"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/workloads"
)

func main() {
	spec, err := workloads.ByName("labyrinth")
	if err != nil {
		log.Fatal(err)
	}
	mod := spec.BuildDefault(workloads.Medium)
	rep, err := classify.Run(mod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiler pass:", rep)
	for _, f := range mod.Funcs {
		if strings.Contains(f.Name, "$") {
			fmt.Printf("  replicated clone: @%s (specialized for safe arguments)\n", f.Name)
		}
	}

	fmt.Println("\nrunning P8 configurations...")
	table := stats.NewTable("config", "cycles", "HTM commits", "fallback", "capacity-aborts", "footprint-mean")
	var baseCycles int64
	for _, mode := range []sim.HintMode{sim.HintNone, sim.HintStatic, sim.HintDynamic, sim.HintFull} {
		cfg := sim.DefaultConfig()
		cfg.Hints = mode
		m, err := sim.New(cfg, mod)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		if mode == sim.HintNone {
			baseCycles = res.Cycles
		}
		table.Row(mode.String(), res.Cycles, res.Commits, res.FallbackCommits,
			res.Aborts[htm.AbortCapacity], fmt.Sprintf("%.1f", res.TxFootprints.Mean()))
		if mode != sim.HintNone {
			fmt.Printf("  %-10s speedup %.2fx\n", mode, float64(baseCycles)/float64(res.Cycles))
		}
	}
	fmt.Println()
	fmt.Print(table.String())
	fmt.Println("\nNote how HinTM-st alone recovers labyrinth: the private-grid")
	fmt.Println("sweep dominates the transaction and the compiler proves it safe.")
}
