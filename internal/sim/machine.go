package sim

import (
	"context"
	"fmt"
	"sort"

	"hintm/internal/cache"
	"hintm/internal/fault"
	"hintm/internal/htm"
	"hintm/internal/interp"
	"hintm/internal/ir"
	"hintm/internal/mem"
	"hintm/internal/obs"
	"hintm/internal/vmem"
)

// hwContext is one hardware context: a core slot (with SMT, two contexts
// share a core, its L1 and — in L1TM — its transactional capacity pressure).
type hwContext struct {
	id, core int

	thread *interp.Thread
	ctrl   *htm.Controller

	// siblings lists the other contexts on the same core (SMT), in context
	// id order: they observe this context's accesses through the shared L1.
	// coreMates is the same list including this context (the eviction
	// audience). Precomputed at New so the per-access snoop loops touch
	// only real siblings instead of scanning every context.
	siblings  []*hwContext
	coreMates []*hwContext

	cycle        int64
	backoffUntil int64
	txStart      int64
	retries      int
	fallbackNext bool
	// runIdx is this context's position in Machine.runnable (and effCache),
	// or -1 outside a parallel region; abortTx and shootdown charges use it
	// to keep the packed clock cache in sync.
	runIdx int32
	// txActive mirrors ctrl.Active() so snoop loops can skip idle contexts
	// with one field load; maintained at TxBegin/commit/abort.
	txActive bool
	// suspended marks escape-action mode (TxSuspend..TxResume): accesses
	// bypass transactional tracking entirely.
	suspended bool

	// intro accumulates per-attempt introspection for the tracer (block
	// access counts and the hint-skipped set); nil when tracing is disabled
	// so the hot path allocates nothing.
	intro *txIntro
	// capStructure names the hardware structure behind an imminent capacity
	// abort; the machine sets it immediately before abortTx(AbortCapacity).
	capStructure string
}

// txIntro is one attempt's footprint introspection, maintained only while a
// tracer is attached.
type txIntro struct {
	// counts maps block → access count for the running attempt.
	counts map[uint64]int
	// skipped holds distinct blocks the safety hints kept out of tracking.
	skipped map[uint64]struct{}
}

func newTxIntro() *txIntro {
	return &txIntro{counts: make(map[uint64]int), skipped: make(map[uint64]struct{})}
}

func (ti *txIntro) reset() {
	for k := range ti.counts {
		delete(ti.counts, k)
	}
	for k := range ti.skipped {
		delete(ti.skipped, k)
	}
}

// top ranks the attempt's most-accessed blocks, highest count first (block
// number breaks ties, keeping traces deterministic despite map order).
func (ti *txIntro) top(n int) []obs.BlockCount {
	out := make([]obs.BlockCount, 0, len(ti.counts))
	for b, c := range ti.counts {
		out = append(out, obs.BlockCount{Block: b, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Block < out[j].Block
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func (c *hwContext) effectiveCycle() int64 {
	if c.backoffUntil > c.cycle {
		return c.backoffUntil
	}
	return c.cycle
}

// Machine is the assembled simulator.
type Machine struct {
	cfg    Config
	prog   *interp.Program
	memory *mem.Memory
	alloc  *mem.Allocator
	caches *cache.Hierarchy
	vm     *vmem.Manager

	ctxs []*hwContext
	// byThread maps thread ID → hardware context. Thread IDs are dense
	// (workers 0..Contexts-1, main = Contexts), so a slice indexes it.
	byThread []*hwContext

	mainThread *interp.Thread
	parallel   *parallelState
	// runnable holds the worker contexts whose thread has not finished, in
	// context id order (so the min-cycle tie-break stays "lowest id", exactly
	// as a full scan over ctxs would pick). effCache mirrors each runnable
	// context's effectiveCycle in one dense array, so the per-step min-scan
	// reads one cache line instead of chasing every context; every site that
	// moves another context's clock calls syncEff. Maintained by Parallel
	// and stepWorkers; empty outside a parallel region.
	runnable []*hwContext
	effCache []int64

	fallbackHolder *hwContext
	res            *Result
	profiler       Profiler
	// stepCap is Run's effective MaxSteps; stepWorkers consults it so that
	// batched stepping stops exactly where the single-step loop would.
	stepCap int64

	// tracer is the observability sink (nil = tracing disabled); nextSample
	// is the cycle the next counter sample is due at. sampling caches
	// "tracer != nil && SampleCycles > 0" so the per-step check is one load.
	tracer     obs.Tracer
	nextSample int64
	sampling   bool

	// faults is the injection engine (nil unless cfg.Faults is enabled).
	faults *fault.Engine
	// fallbackAcquires counts lock acquisitions; with commits it forms the
	// watchdog's progress signal.
	fallbackAcquires  uint64
	lastProgress      uint64
	lastProgressCycle int64

	// resumed marks a machine forked from a captured prefix (see prefix.go):
	// globals are already laid out and the main thread already exists, so Run
	// skips program setup and continues from the boundary instruction.
	resumed bool
}

// Profiler observes every data memory access the simulated program performs.
// The sharing profiler (internal/profile) uses it to compute the paper's
// Fig.-1 metrics.
type Profiler interface {
	// OnAccess reports one word access: the software thread, the address,
	// whether it is a write, and whether it executes transactionally.
	OnAccess(tid int, addr mem.Addr, write, inTx bool)
}

// TxEventKind classifies transaction lifecycle events for observers.
type TxEventKind uint8

// Transaction lifecycle events.
const (
	TxEventBegin TxEventKind = iota
	TxEventCommit
	TxEventAbort
)

// TxObserver is an optional extension of Profiler: observers implementing it
// additionally receive transaction begin/commit/abort events, which the
// trace recorder needs to delimit transactions offline. Abort events carry
// their reason (htm.AbortNone for begin/commit).
type TxObserver interface {
	OnTxEvent(tid int, ev TxEventKind, reason htm.AbortReason)
}

// notifyTx forwards a lifecycle event to the profiler, if it observes them.
func (m *Machine) notifyTx(tid int, ev TxEventKind, reason htm.AbortReason) {
	if o, ok := m.profiler.(TxObserver); ok {
		o.OnTxEvent(tid, ev, reason)
	}
}

// SetProfiler attaches an access observer (call before Run).
func (m *Machine) SetProfiler(p Profiler) { m.profiler = p }

// EnableProfile turns on per-instruction execution counting (call before
// Run); HotInstructions reports the results.
func (m *Machine) EnableProfile() { m.prog.EnableProfile() }

// HotInstr is one row of the execution-count profile.
type HotInstr struct {
	Count uint64
	Func  string
	Text  string
}

// HotInstructions returns the n most-executed instructions, hottest first.
func (m *Machine) HotInstructions(n int) []HotInstr {
	counts := m.prog.ProfileCounts()
	if counts == nil {
		return nil
	}
	where := make(map[int]HotInstr, len(counts))
	m.prog.M.ForEachInstr(func(f *ir.Func, _ *ir.Block, in *ir.Instr) {
		if c, ok := counts[in.ID]; ok {
			where[in.ID] = HotInstr{Count: c, Func: f.Name, Text: in.String()}
		}
	})
	out := make([]HotInstr, 0, len(where))
	for _, h := range where {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Func+out[i].Text < out[j].Func+out[j].Text
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ReadGlobal returns word wordIdx of the named global after (or during) a
// run — the way tests and examples inspect a program's final state.
func (m *Machine) ReadGlobal(name string, wordIdx int64) int64 {
	return m.memory.ReadWord(m.prog.GlobalAddr(name) + mem.Addr(wordIdx*mem.WordSize))
}

// Release recycles the machine's pooled resources (currently the cache line
// backings). The machine must not be used afterwards. Optional but worthwhile
// for callers that construct many machines, e.g. experiment sweeps.
func (m *Machine) Release() {
	if m.caches != nil {
		m.caches.Release()
		m.caches = nil
	}
}

type parallelState struct {
	workers  []*interp.Thread
	finished bool
}

// mainTID is the main thread's id, distinct from any worker tid.
func (m *Machine) mainTID() int { return m.cfg.Contexts() }

// New assembles a machine for the given module. The module should already
// have been through the classify pass if static hints are to be honoured
// (running it unconditionally and toggling cfg.Hints keeps execution
// identical across configurations).
func New(cfg Config, mod *ir.Module) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	prog, err := interp.NewProgram(mod)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		prog:     prog,
		memory:   mem.NewMemory(),
		alloc:    mem.NewAllocator(),
		caches:   cache.New(cfg.Cache),
		vm:       vmem.New(cfg.Contexts(), cfg.TLBEntries, cfg.VM, cfg.Hints.Dynamic()),
		byThread: make([]*hwContext, cfg.Contexts()+1),
		res:      newResult(),
	}
	for i := 0; i < cfg.Contexts(); i++ {
		ctrl := htm.NewController(m.newTracker())
		ctrl.SetVersioning(cfg.Versioning)
		m.ctxs = append(m.ctxs, &hwContext{
			id: i,
			// Contexts are spread across cores first, so SMT siblings are
			// ctx i and ctx i+Cores.
			core:   i % cfg.Cores,
			ctrl:   ctrl,
			runIdx: -1,
		})
	}
	for _, c := range m.ctxs {
		for _, o := range m.ctxs {
			if o.core != c.core {
				continue
			}
			c.coreMates = append(c.coreMates, o)
			if o != c {
				c.siblings = append(c.siblings, o)
			}
		}
	}
	if cfg.Faults.Enabled() {
		m.faults = fault.NewEngine(cfg.Faults, cfg.Seed, cfg.Contexts())
	}
	if cfg.Tracer != nil {
		m.tracer = cfg.Tracer
		for _, c := range m.ctxs {
			c.intro = newTxIntro()
		}
	}
	return m, nil
}

func (m *Machine) newTracker() htm.Tracker {
	switch m.cfg.HTM {
	case HTMP8:
		return htm.NewP8Tracker(m.cfg.P8Entries)
	case HTMP8S:
		return htm.NewSigTracker(m.cfg.P8Entries, m.cfg.SigBits, m.cfg.SigHashes)
	case HTML1TM:
		return htm.NewL1Tracker()
	case HTMInfCap, HTMSTM:
		// STM bookkeeping lives in software tables: unbounded, precise.
		return htm.NewInfTracker()
	}
	panic("sim: unknown HTM kind")
}

// ctxCheckMask controls how often Run polls its context: cancellation is
// noticed within 1<<16 simulated instructions, keeping the per-step cost of
// cancellability to one branch on the step counter.
const ctxCheckMask = 1<<16 - 1

// Run executes the program's main function to completion and returns the
// collected statistics. The context is checked periodically (every ~64k
// simulated instructions): cancelling it is the way to stop a runaway
// simulation before the MaxSteps guard trips.
func (m *Machine) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mainFn := m.prog.M.Func("main")
	if mainFn == nil {
		return nil, fmt.Errorf("sim: module has no main")
	}
	if !m.resumed {
		// A machine forked from a prefix (prefix.go) arrives with globals laid
		// out, the main thread mid-program, and its stack already allocated —
		// redoing setup would corrupt the captured state.
		m.prog.LayoutGlobals(m.alloc, m.memory)

		mtid := m.mainTID()
		base := m.alloc.StackAlloc(mtid, mainFn.AllocaWords*mem.WordSize)
		m.mainThread = m.prog.NewThread(mtid, "main", nil, base, m.cfg.Seed)
		m.byThread[mtid] = m.ctxs[0]
	}

	maxSteps := m.cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 2_000_000_000
	}
	m.stepCap = maxSteps
	m.sampling = m.tracer != nil && m.cfg.SampleCycles > 0

	for !m.mainThread.Done {
		if m.res.Steps&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: cancelled after %d steps: %w", m.res.Steps, err)
			}
		}
		if m.res.Steps >= maxSteps {
			return nil, fmt.Errorf("sim: exceeded %d steps (livelock?)", maxSteps)
		}
		if m.res.Steps&guardMask == 0 {
			if err := m.checkGuards(); err != nil {
				return nil, err
			}
		}
		if m.parallel != nil && !m.parallel.finished {
			m.stepWorkers()
			continue
		}
		m.stepThread(m.ctxs[0], m.mainThread)
	}

	m.res.Cycles = 0
	for _, c := range m.ctxs {
		if c.cycle > m.res.Cycles {
			m.res.Cycles = c.cycle
		}
	}
	m.res.Cache = m.caches.Stats()
	m.res.VM = m.vm.Stats()
	if m.faults != nil {
		m.res.Faults = m.faults.Stats()
	}
	return m.res, nil
}

// stepWorkers advances runnable worker contexts, always stepping the one
// with the smallest clock (ties to the lowest context id). It runs until the
// next guard-grid boundary (or the step cap, or the region's barrier), so
// Run's periodic checks fire at exactly the steps they would under
// single-stepping while the scheduler stays out of the per-step call path.
func (m *Machine) stepWorkers() {
	for {
		if len(m.runnable) == 0 {
			// All workers finished: barrier completes; main resumes at the
			// latest worker clock.
			var max int64
			for _, c := range m.ctxs {
				if c.cycle > max {
					max = c.cycle
				}
			}
			if m.ctxs[0].cycle < max {
				m.ctxs[0].cycle = max
			}
			m.parallel.finished = true
			return
		}
		pickIdx := 0
		best := m.effCache[0]
		// best2 is the runner-up clock: every other runnable context sits at
		// or above it, and clocks only move forward, so pick stays the unique
		// minimum for as long as it remains strictly below best2.
		best2 := int64(1<<63 - 1)
		for i := 1; i < len(m.effCache); i++ {
			if e := m.effCache[i]; e < best {
				pickIdx, best2, best = i, best, e
			} else if e < best2 {
				best2 = e
			}
		}
		for {
			pick := m.runnable[pickIdx]
			m.stepThread(pick, pick.thread)
			e := pick.effectiveCycle()
			m.effCache[pickIdx] = e
			// Keep stepping pick while it is provably still the scheduler's
			// choice.
			for !pick.thread.Done &&
				m.res.Steps&guardMask != 0 &&
				m.res.Steps < m.stepCap &&
				e < best2 {
				m.stepThread(pick, pick.thread)
				e = pick.effectiveCycle()
				m.effCache[pickIdx] = e
			}
			if pick.thread.Done {
				pick.runIdx = -1
				m.runnable = append(m.runnable[:pickIdx], m.runnable[pickIdx+1:]...)
				m.effCache = append(m.effCache[:pickIdx], m.effCache[pickIdx+1:]...)
				for i := pickIdx; i < len(m.runnable); i++ {
					m.runnable[i].runIdx = int32(i)
				}
				break
			}
			if m.res.Steps&guardMask == 0 || m.res.Steps >= m.stepCap {
				return
			}
			// Tie continuation: every entry left of pickIdx exceeded best at
			// scan time, pick just moved past it, and clocks never move
			// backwards — so the next entry still equal to best (lockstep
			// workloads keep whole tie groups at one clock) is the lowest-id
			// minimum, i.e. exactly the context a fresh scan would choose.
			if best2 != best {
				break // no entry can equal best: all others sit at >= best2
			}
			j := pickIdx + 1
			for j < len(m.effCache) && m.effCache[j] != best {
				j++
			}
			if j == len(m.effCache) {
				break // tie group exhausted: full rescan
			}
			pickIdx = j
			best2 = best // a tied peer exists, so no batch for this pick
		}
		if m.res.Steps&guardMask == 0 || m.res.Steps >= m.stepCap {
			return
		}
	}
}

// syncEff refreshes c's entry in the packed clock cache after a mutation of
// its clock by another context (abort charges, TLB-shootdown slave costs).
func (m *Machine) syncEff(c *hwContext) {
	if c.runIdx >= 0 {
		m.effCache[c.runIdx] = c.effectiveCycle()
	}
}

func (m *Machine) stepThread(c *hwContext, t *interp.Thread) {
	if c.backoffUntil > c.cycle {
		c.cycle = c.backoffUntil
	}
	m.prog.Step(m, t)
	c.cycle++ // base instruction cost
	m.res.Steps++
	if m.sampling && c.cycle >= m.nextSample {
		m.sample(c.cycle)
	}
}

// sample emits one periodic counter snapshot and schedules the next one on
// the sample grid, so a long-running instruction advances past several
// periods without emitting a burst.
func (m *Machine) sample(now int64) {
	s := obs.CounterSample{
		Cycle:           now,
		Steps:           m.res.Steps,
		Commits:         m.res.Commits,
		FallbackCommits: m.res.FallbackCommits,
	}
	for r, n := range m.res.Aborts {
		if int(r) < len(s.Aborts) {
			s.Aborts[r] = n
		}
	}
	cs := m.caches.Stats()
	s.L1Hits, s.L1Misses, s.BusOps = cs.L1Hits, cs.L1Misses, cs.BusOps
	vs := m.vm.Stats()
	s.TLBMisses, s.PageTransitions = vs.TLBMisses, vs.Transitions
	m.tracer.Sample(s)
	step := m.cfg.SampleCycles
	m.nextSample = now - now%step + step
}

// ctxOf maps a thread to its hardware context.
func (m *Machine) ctxOf(t *interp.Thread) *hwContext {
	c := m.byThread[t.ID]
	if c == nil {
		panic(fmt.Sprintf("sim: unmapped thread %d", t.ID))
	}
	return c
}

// abortTx aborts the context's running transaction: memory is restored from
// the undo log, the thread rolls back to its TxBegin checkpoint, statistics
// and the retry policy are updated.
func (m *Machine) abortTx(c *hwContext, reason htm.AbortReason) {
	// The span must be captured before Abort() resets the tracker: set sizes
	// and the footprint are the attempt's state at the moment of death.
	var span obs.TxAttempt
	if m.tracer != nil {
		span = obs.TxAttempt{
			Ctx: c.id, TID: c.thread.ID,
			Start:    c.txStart,
			Outcome:  obs.OutcomeAbort,
			Reason:   reason,
			ReadSet:  c.ctrl.ReadSetSize(),
			WriteSet: c.ctrl.WriteSetSize(),
			Tracked:  c.ctrl.FootprintBlocks(),
		}
		span.SafeSkipped = len(c.intro.skipped)
		if reason == htm.AbortCapacity {
			structure := c.capStructure
			if structure == "" {
				structure = m.capacityStructure()
			}
			span.Overflow = &obs.Overflow{
				Structure: structure,
				Tracked:   span.Tracked,
				Skipped:   span.SafeSkipped,
				Top:       c.intro.top(8),
			}
		}
	}
	undo := c.ctrl.Abort()
	c.txActive = false
	for _, e := range undo {
		m.memory.WriteWord(mem.Addr(e.Addr), e.Old)
	}
	c.cycle += m.cfg.AbortFixedCost + int64(len(undo))*m.cfg.Cache.L1Latency

	cp := c.thread.Restore()
	m.alloc.StackRelease(c.thread.ID, cp.StackTop)
	c.suspended = false
	if m.profiler != nil {
		m.notifyTx(c.thread.ID, TxEventAbort, reason)
	}
	if m.tracer != nil {
		span.End = c.cycle
		m.tracer.TxEnd(span)
		c.capStructure = ""
	}

	m.res.Aborts[reason]++
	if lost := c.cycle - c.txStart; lost > 0 {
		m.res.CyclesLost[reason] += lost
	}

	switch reason {
	case htm.AbortCapacity:
		// Retrying a capacity abort is futile (paper §I): fall back — unless
		// the ablation knob grants retries to quantify that futility.
		c.retries++
		if c.retries > m.cfg.CapacityRetries {
			c.fallbackNext = true
		} else {
			c.backoffUntil = c.cycle + m.cfg.BackoffBase
		}
	case htm.AbortConflict, htm.AbortFalseConflict, htm.AbortExplicit, htm.AbortSpurious:
		// Spurious (injected) aborts share the conflict policy: bounded
		// backed-off retries, then the fallback lock — so injection can
		// never livelock a run by itself.
		c.retries++
		if c.retries > m.cfg.MaxConflictRetries {
			c.fallbackNext = true
		} else {
			c.backoffUntil = c.cycle + m.cfg.BackoffBase<<uint(c.retries)
		}
	case htm.AbortPageMode:
		// The page is unsafe (tracked) on retry; retry immediately.
	case htm.AbortFallbackLock:
		// The thread will stall at TxBegin until the lock is free.
	}
	m.syncEff(c)
}

// capacityStructure names the bounded structure behind a capacity abort from
// the tracker itself (the eviction path labels itself "l1-eviction" via
// hwContext.capStructure before calling abortTx).
func (m *Machine) capacityStructure() string {
	switch m.cfg.HTM {
	case HTMP8:
		return "tx-buffer"
	case HTMP8S:
		return "tx-buffer-writeset"
	case HTML1TM:
		return "l1"
	}
	return "tracker"
}
