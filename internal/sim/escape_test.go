package sim

import (
	"testing"

	"hintm/internal/htm"
	"hintm/internal/ir"
)

// escapeModule builds the quickstart pattern with suspend/resume around the
// private fill instead of safety hints: each TX suspends, fills `blocks`
// private cache blocks, resumes, and performs one tracked shared store.
func escapeModule(blocks int64, useEscape bool) *ir.Module {
	b := ir.NewBuilder("escape")
	b.Global("results", 64)

	w := b.ThreadBody("worker", 1)
	tid := w.Param(0)
	buf := w.MallocI(blocks * 64)

	loop := w.NewBlock("loop")
	fill := w.NewBlock("fill")
	fillDone := w.NewBlock("filldone")
	done := w.NewBlock("done")

	r := w.C(0)
	i := w.C(0)
	sum := w.C(0)
	w.Br(loop)

	w.SetBlock(loop)
	w.TxBegin()
	if useEscape {
		w.TxSuspend()
	}
	w.MovTo(i, w.C(0))
	w.MovTo(sum, w.C(0))
	w.Br(fill)

	w.SetBlock(fill)
	off := w.Mul(i, w.C(64))
	w.Store(w.Add(buf, off), 0, w.Add(tid, i))
	w.MovTo(sum, w.Add(sum, w.Load(w.Add(buf, off), 0)))
	w.MovTo(i, w.Add(i, w.C(1)))
	c := w.Cmp(ir.CmpLT, i, w.C(blocks))
	w.CondBr(c, fill, fillDone)

	w.SetBlock(fillDone)
	if useEscape {
		w.TxResume()
	}
	res := w.GlobalAddr("results")
	w.Store(w.Add(res, w.Mul(tid, w.C(64))), 0, sum)
	w.TxEnd()
	w.MovTo(r, w.Add(r, w.C(1)))
	c2 := w.Cmp(ir.CmpLT, r, w.C(4))
	w.CondBr(c2, loop, done)

	w.SetBlock(done)
	w.FreeI(buf, blocks*64)
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(8)
	mn.Parallel(n, "worker")
	mn.RetVoid()
	return b.M
}

func TestEscapeActionsAvoidCapacityAborts(t *testing.T) {
	// 90 private blocks > 64-entry buffer: tracked run aborts, escape run
	// fits in one tracked block per TX.
	_, plain := runModule(t, escapeModule(90, false), DefaultConfig())
	if plain.Aborts[htm.AbortCapacity] == 0 {
		t.Fatalf("tracked fill should capacity-abort: %v", plain)
	}

	m, esc := runModule(t, escapeModule(90, true), DefaultConfig())
	if esc.Aborts[htm.AbortCapacity] != 0 {
		t.Fatalf("suspended fill must not capacity-abort: %v", esc)
	}
	if esc.SuspendedAccesses == 0 {
		t.Fatal("no suspended accesses counted")
	}
	if esc.Cycles >= plain.Cycles {
		t.Fatalf("escape actions should win: %d vs %d cycles", esc.Cycles, plain.Cycles)
	}
	// Correctness: results[tid] = sum over blocks of (tid+i).
	want := func(tid int64) int64 {
		var s int64
		for i := int64(0); i < 90; i++ {
			s += tid + i
		}
		return s
	}
	for tid := int64(0); tid < 8; tid++ {
		if got := m.ReadGlobal("results", tid*8); got != want(tid) {
			t.Fatalf("results[%d] = %d, want %d", tid, got, want(tid))
		}
	}
}

func TestEscapeFootprintOnlyTrackedAccesses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HTM = HTMInfCap
	_, res := runModule(t, escapeModule(90, true), cfg)
	// Only the shared result store is tracked: footprint == 1 block.
	if res.TxFootprints.Max() != 1 {
		t.Fatalf("escape TX footprint = %d blocks, want 1", res.TxFootprints.Max())
	}
}

func TestSuspendOutsideTxIsNoop(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("g", 1)
	w := b.ThreadBody("worker", 1)
	w.TxSuspend() // no TX active: must be ignored
	g := w.GlobalAddr("g")
	w.Store(g, 0, w.Param(0))
	w.TxResume()
	w.RetVoid()
	mn := b.Function("main", 0)
	n := mn.C(1)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	_, res := runModule(t, b.M, DefaultConfig())
	if res.SuspendedAccesses != 0 {
		t.Fatalf("suspend outside TX counted accesses: %v", res)
	}
}

func TestSuspendClearedOnAbortAndCommit(t *testing.T) {
	// A TX that suspends and then explicitly aborts (via a conflicting
	// sibling) must not leak suspension into the retry. Simplest check: the
	// escape workload under contention still produces correct results.
	m, res := runModule(t, escapeModule(20, true), DefaultConfig())
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	for tid := int64(0); tid < 8; tid++ {
		var want int64
		for i := int64(0); i < 20; i++ {
			want += tid + i
		}
		if got := m.ReadGlobal("results", tid*8); got != want {
			t.Fatalf("results[%d] = %d, want %d", tid, got, want)
		}
	}
}
