package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"hintm/internal/fault"
	"hintm/internal/htm"
	"hintm/internal/interp"
	"hintm/internal/ir"
	"hintm/internal/mem"
	"hintm/internal/obs"
)

// chromeRun executes a freshly-built module under cfg with a ChromeTracer
// attached and returns the rendered trace bytes.
func chromeRun(t *testing.T, build func() *ir.Module, cfg Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	ct := obs.NewChromeTracer(&buf)
	cfg.Tracer = ct
	m, err := New(cfg, build())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := ct.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if ct.Events() == 0 {
		t.Fatal("trace recorded no events")
	}
	return buf.Bytes()
}

func TestChromeTraceDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleCycles = 100
	build := func() *ir.Module { return counterModule(4, 30) }
	a := chromeRun(t, build, cfg)
	b := chromeRun(t, build, cfg)
	if !json.Valid(a) {
		t.Fatalf("trace is not valid JSON:\n%s", a)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs produced different traces")
	}
}

// The fault campaign draws from seeded PRNG streams, so even a run full of
// injected aborts and page storms must trace byte-identically.
func TestChromeTraceDeterministicUnderFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hints = HintFull
	cfg.SampleCycles = 500
	cfg.Faults = fault.Plan{SpuriousProb: 0.05, StormProb: 0.002}
	build := func() *ir.Module { return classified(t, bigTxModule(4, 5, 80)) }
	a := chromeRun(t, build, cfg)
	b := chromeRun(t, build, cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed fault-campaign runs produced different traces")
	}
	if !json.Valid(a) {
		t.Fatalf("trace is not valid JSON:\n%s", a)
	}
}

// Every capacity abort the run counts must appear in the autopsy with a full
// overflow attribution: the structure that overflowed and a non-empty
// offending-block ranking.
func TestAutopsyAttributesEveryCapacityAbort(t *testing.T) {
	col := obs.NewCollector()
	cfg := DefaultConfig()
	cfg.Tracer = col
	_, res := runModule(t, bigTxModule(2, 5, 100), cfg)

	nCap := res.Aborts[htm.AbortCapacity]
	if nCap == 0 {
		t.Fatal("workload produced no capacity aborts; test is vacuous")
	}
	a := col.Autopsy()
	if uint64(len(a.Capacity)) != nCap {
		t.Fatalf("autopsy attributes %d capacity aborts, result counts %d",
			len(a.Capacity), nCap)
	}
	for i, at := range a.Capacity {
		if at.Overflow == nil {
			t.Fatalf("capacity abort %d has no overflow detail", i)
		}
		if at.Overflow.Structure == "" {
			t.Errorf("capacity abort %d has no overflowed structure", i)
		}
		if len(at.Overflow.Top) == 0 {
			t.Errorf("capacity abort %d has no offending blocks", i)
		}
		if at.Overflow.Tracked == 0 {
			t.Errorf("capacity abort %d tracked 0 blocks at overflow", i)
		}
	}
	if len(a.TopBlocks) == 0 {
		t.Error("aggregated top-blocks ranking is empty")
	}
}

// The span stream must account for every transaction outcome the result
// counters report — nothing double-counted, nothing dropped.
func TestSpanAccountingMatchesResult(t *testing.T) {
	col := obs.NewCollector()
	cfg := DefaultConfig()
	cfg.Tracer = col
	cfg.SampleCycles = 200
	_, res := runModule(t, counterModule(8, 20), cfg)

	a := col.Autopsy()
	if uint64(a.Commits) != res.Commits {
		t.Errorf("span commits = %d, result commits = %d", a.Commits, res.Commits)
	}
	if uint64(a.FallbackCommits) != res.FallbackCommits {
		t.Errorf("span fallback commits = %d, result = %d", a.FallbackCommits, res.FallbackCommits)
	}
	if uint64(a.Aborts) != res.TotalAborts() {
		t.Errorf("span aborts = %d, result aborts = %d", a.Aborts, res.TotalAborts())
	}
	for _, r := range htm.AbortReasons {
		if uint64(a.AbortsByReason[r]) != res.Aborts[r] {
			t.Errorf("span aborts[%s] = %d, result = %d",
				r, a.AbortsByReason[r], res.Aborts[r])
		}
	}

	if len(col.Samples) == 0 {
		t.Fatal("sampling produced no counter samples")
	}
	prev := int64(-1)
	for _, s := range col.Samples {
		if s.Cycle <= prev {
			t.Fatalf("sample cycles not strictly increasing: %d after %d", s.Cycle, prev)
		}
		prev = s.Cycle
	}
	last := col.Samples[len(col.Samples)-1]
	if last.Commits > res.Commits || last.TotalAborts() > res.TotalAborts() {
		t.Errorf("final sample (%d commits, %d aborts) exceeds run totals (%d, %d)",
			last.Commits, last.TotalAborts(), res.Commits, res.TotalAborts())
	}
}

// benchMachine assembles a machine plus a bare thread without running it, so
// the access path can be exercised directly.
func benchMachine(tb testing.TB, cfg Config) (*Machine, *interp.Thread, mem.Addr) {
	tb.Helper()
	m, err := New(cfg, counterModule(1, 1))
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	m.prog.LayoutGlobals(m.alloc, m.memory)
	mainFn := m.prog.M.Func("main")
	mtid := m.mainTID()
	base := m.alloc.StackAlloc(mtid, mainFn.AllocaWords*mem.WordSize)
	th := m.prog.NewThread(mtid, "main", nil, base, cfg.Seed)
	m.byThread[mtid] = m.ctxs[0]
	return m, th, m.prog.GlobalAddr("ctr")
}

// With a nil tracer the steady-state access path must not allocate — tracing
// support is free when disabled.
func TestNilTracerAccessDoesNotAllocate(t *testing.T) {
	m, th, addr := benchMachine(t, DefaultConfig())
	// Warm up: fault the page in, fill the cache line.
	m.Load(th, addr, false)
	m.Store(th, addr, 1, false)
	if n := testing.AllocsPerRun(200, func() {
		m.Load(th, addr, false)
		m.Store(th, addr, 1, false)
	}); n != 0 {
		t.Errorf("non-tx access allocates %.1f times per op with nil tracer", n)
	}

	if ctrl := m.TxBegin(th); ctrl != interp.CtrlOK {
		t.Fatalf("TxBegin = %v", ctrl)
	}
	m.Load(th, addr, false) // warm up the tracker entry
	if n := testing.AllocsPerRun(200, func() {
		m.Load(th, addr, false)
	}); n != 0 {
		t.Errorf("in-tx read allocates %.1f times per op with nil tracer", n)
	}
	if ctrl := m.TxEnd(th); ctrl != interp.CtrlOK {
		t.Fatalf("TxEnd = %v", ctrl)
	}
}

func BenchmarkNilTracerAccess(b *testing.B) {
	m, th, addr := benchMachine(b, DefaultConfig())
	m.Load(th, addr, false)
	m.Store(th, addr, 1, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(th, addr, false)
		m.Store(th, addr, 1, false)
	}
}

// With a tracer attached the same run must still succeed and emit spans; the
// comparison benchmark documents the (bounded) cost of tracing.
func BenchmarkCollectorTracedRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		col := obs.NewCollector()
		cfg := DefaultConfig()
		cfg.Tracer = col
		m, err := New(cfg, counterModule(4, 10))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		if len(col.Attempts) == 0 {
			b.Fatal("no spans collected")
		}
	}
}
