package sim

import (
	"errors"
	"fmt"
	"strings"

	"hintm/internal/stats"
)

// ErrLivelock is the sentinel every LivelockError matches via errors.Is.
var ErrLivelock = errors.New("sim: livelock watchdog tripped")

// ErrMaxCycles is the sentinel every CycleLimitError matches via errors.Is.
var ErrMaxCycles = errors.New("sim: cycle limit exceeded")

// CoreSnapshot is one hardware context's state at the moment the watchdog
// tripped.
type CoreSnapshot struct {
	Context, Core int
	// Thread is the software thread mapped to the context (-1 when idle).
	Thread int
	// Where locates the thread ("fn/block:pc").
	Where string

	InTx, Fallback, Suspended bool
	// FallbackNext marks a context that will take the lock at its next
	// TxBegin; HoldsLock marks the current lock holder.
	FallbackNext, HoldsLock bool

	Retries      int
	Cycle        int64
	BackoffUntil int64
	TxStart      int64
}

// LivelockError reports that no transaction committed (in HTM or via the
// fallback lock) and no fallback lock was acquired for WatchdogCycles
// simulated cycles while transactional work was pending. It carries the
// per-context diagnostic state the retry policy was stuck in.
type LivelockError struct {
	WatchdogCycles int64
	// Cycles/Steps locate the trip point; SinceProgress is the stall length.
	Cycles, Steps   int64
	SinceProgress   int64
	Commits         uint64
	FallbackCommits uint64
	Cores           []CoreSnapshot
}

// Is makes errors.Is(err, ErrLivelock) work.
func (e *LivelockError) Is(target error) bool { return target == ErrLivelock }

func (e *LivelockError) Error() string {
	return fmt.Sprintf("sim: no TX progress for %d cycles (watchdog %d; cycle %d, %d commits, %d fallback commits)",
		e.SinceProgress, e.WatchdogCycles, e.Cycles, e.Commits, e.FallbackCommits)
}

// Snapshot renders the per-context diagnostic table.
func (e *LivelockError) Snapshot() string {
	tbl := stats.NewTable("ctx", "core", "thread", "where", "state", "retries", "cycle", "backoff-until", "tx-start")
	for _, c := range e.Cores {
		var st []string
		if c.InTx {
			st = append(st, "in-tx")
		}
		if c.Fallback {
			st = append(st, "fallback")
		}
		if c.Suspended {
			st = append(st, "suspended")
		}
		if c.FallbackNext {
			st = append(st, "lock-next")
		}
		if c.HoldsLock {
			st = append(st, "holds-lock")
		}
		if len(st) == 0 {
			st = append(st, "idle")
		}
		thread := "-"
		if c.Thread >= 0 {
			thread = fmt.Sprintf("%d", c.Thread)
		}
		tbl.Row(fmt.Sprintf("%d", c.Context), fmt.Sprintf("%d", c.Core), thread, c.Where,
			strings.Join(st, "+"), fmt.Sprintf("%d", c.Retries), fmt.Sprintf("%d", c.Cycle),
			fmt.Sprintf("%d", c.BackoffUntil), fmt.Sprintf("%d", c.TxStart))
	}
	var sb strings.Builder
	tbl.Render(&sb)
	return sb.String()
}

// CycleLimitError reports the simulated clock crossed Config.MaxCycles.
type CycleLimitError struct {
	Limit, Cycles, Steps int64
}

// Is makes errors.Is(err, ErrMaxCycles) work.
func (e *CycleLimitError) Is(target error) bool { return target == ErrMaxCycles }

func (e *CycleLimitError) Error() string {
	return fmt.Sprintf("sim: exceeded cycle limit %d (at cycle %d, step %d)", e.Limit, e.Cycles, e.Steps)
}

// guardMask controls how often Run evaluates the cycle cap and watchdog:
// every 4096 steps, cheap enough to leave both always-on.
const guardMask = 1<<12 - 1

// maxCycle is the furthest context clock — the run's current simulated time.
func (m *Machine) maxCycle() int64 {
	var max int64
	for _, c := range m.ctxs {
		if c.cycle > max {
			max = c.cycle
		}
	}
	return max
}

// txPending reports whether any transactional work is in flight: a thread
// inside a TX or fallback section, a context committed to taking the lock or
// mid-retry, or the lock held. The watchdog only counts stall time while
// this holds — a long non-transactional phase must not trip it.
func (m *Machine) txPending() bool {
	if m.fallbackHolder != nil {
		return true
	}
	for _, c := range m.ctxs {
		if c.fallbackNext || c.retries > 0 {
			return true
		}
		if c.thread != nil && !c.thread.Done && (c.thread.InTx || c.thread.Fallback) {
			return true
		}
	}
	if m.mainThread != nil && !m.mainThread.Done && (m.mainThread.InTx || m.mainThread.Fallback) {
		return true
	}
	return false
}

// checkGuards enforces Config.MaxCycles and the livelock watchdog. Progress
// is any HTM commit, fallback commit, or fallback-lock acquisition; the
// watchdog trips when WatchdogCycles of simulated time pass without one
// while transactional work is pending.
func (m *Machine) checkGuards() error {
	now := m.maxCycle()
	if m.cfg.MaxCycles > 0 && now > m.cfg.MaxCycles {
		return &CycleLimitError{Limit: m.cfg.MaxCycles, Cycles: now, Steps: m.res.Steps}
	}
	if m.cfg.WatchdogCycles <= 0 {
		return nil
	}
	progress := m.res.Commits + m.res.FallbackCommits + m.fallbackAcquires
	if progress != m.lastProgress || !m.txPending() {
		m.lastProgress = progress
		m.lastProgressCycle = now
		return nil
	}
	if stall := now - m.lastProgressCycle; stall > m.cfg.WatchdogCycles {
		return m.livelockError(now, stall)
	}
	return nil
}

func (m *Machine) livelockError(now, stall int64) *LivelockError {
	e := &LivelockError{
		WatchdogCycles:  m.cfg.WatchdogCycles,
		Cycles:          now,
		Steps:           m.res.Steps,
		SinceProgress:   stall,
		Commits:         m.res.Commits,
		FallbackCommits: m.res.FallbackCommits,
	}
	for _, c := range m.ctxs {
		s := CoreSnapshot{
			Context:      c.id,
			Core:         c.core,
			Thread:       -1,
			Where:        "-",
			FallbackNext: c.fallbackNext,
			HoldsLock:    m.fallbackHolder == c,
			Suspended:    c.suspended,
			Retries:      c.retries,
			Cycle:        c.cycle,
			BackoffUntil: c.backoffUntil,
			TxStart:      c.txStart,
		}
		t := c.thread
		if c == m.ctxs[0] && (t == nil || t.Done) && m.mainThread != nil && !m.mainThread.Done {
			t = m.mainThread
		}
		if t != nil {
			s.Thread = t.ID
			s.Where = t.Where()
			s.InTx = t.InTx
			s.Fallback = t.Fallback
		}
		e.Cores = append(e.Cores, s)
	}
	return e
}
