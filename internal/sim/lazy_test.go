package sim

import (
	"testing"

	"hintm/internal/htm"
	"hintm/internal/ir"
	"hintm/internal/mem"
)

func lazyConfig() Config {
	cfg := DefaultConfig()
	cfg.Versioning = htm.VersionLazy
	return cfg
}

func TestLazyCounterCorrect(t *testing.T) {
	mod := counterModule(8, 20)
	m, res := runModule(t, mod, lazyConfig())
	if got := m.memory.ReadWord(m.prog.GlobalAddr("ctr")); got != 160 {
		t.Fatalf("lazy counter = %d, want 160 (%v)", got, res)
	}
}

func TestLazyStoreToLoadForwarding(t *testing.T) {
	// In one TX: write x=5, read it back, write the result+1 elsewhere.
	// Without forwarding the read would see the pre-TX value.
	b := ir.NewBuilder("fwd")
	b.Global("g", 2)
	w := b.ThreadBody("worker", 1)
	g := w.GlobalAddr("g")
	w.TxBegin()
	w.Store(g, 0, w.C(5))
	v := w.Load(g, 0)
	w.Store(g, 8, w.AddI(v, 1))
	w.TxEnd()
	w.RetVoid()
	mn := b.Function("main", 0)
	n := mn.C(1)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	m, _ := runModule(t, b.M, lazyConfig())
	if got := m.memory.ReadWord(m.prog.GlobalAddr("g") + 8); got != 6 {
		t.Fatalf("forwarded read produced %d, want 6", got)
	}
}

func TestLazyAbortDiscardsBuffer(t *testing.T) {
	// Force capacity aborts: unsafe writes beyond the buffer. Under lazy
	// versioning the aborted attempt must leave memory untouched (no undo
	// traffic at all), and the fallback retry produces correct results.
	mod := bigTxModule(2, 2, 100)
	m, res := runModule(t, mod, lazyConfig())
	if res.Aborts[htm.AbortCapacity] == 0 {
		t.Fatalf("expected capacity aborts: %v", res)
	}
	base := m.prog.GlobalAddr("out")
	want := int64(99 * 100 / 2)
	for tid := int64(0); tid < 2; tid++ {
		if got := m.memory.ReadWord(base + mem.Addr(tid*8)); got != want {
			t.Fatalf("out[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestLazyMatchesEagerSemantics(t *testing.T) {
	// The versioning discipline must be invisible to program results.
	for _, hints := range []HintMode{HintNone, HintFull} {
		modE := bigTxModule(4, 3, 80)
		cfgE := DefaultConfig()
		cfgE.Hints = hints
		mE, _ := runModule(t, modE, cfgE)

		modL := bigTxModule(4, 3, 80)
		cfgL := lazyConfig()
		cfgL.Hints = hints
		mL, _ := runModule(t, modL, cfgL)

		for tid := int64(0); tid < 4; tid++ {
			e := mE.ReadGlobal("out", tid)
			l := mL.ReadGlobal("out", tid)
			if e != l {
				t.Fatalf("hints=%v: out[%d] eager=%d lazy=%d", hints, tid, e, l)
			}
		}
	}
}

func TestLazyRemoteReadSeesPreTxValue(t *testing.T) {
	// Thread 0 buffers a store and spins; thread 1 reads the location
	// non-transactionally: it must see the OLD value (0) until commit —
	// under eager-undo it would transiently see the new one. Since the
	// remote read also aborts thread 0's TX (conflict), we only check
	// final-state correctness here: after everything commits the value is 7.
	b := ir.NewBuilder("remote")
	b.Global("x", 8)
	w := newWorkerPair(b)
	_ = w
	mn := b.Function("main", 0)
	n := mn.C(2)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	m, _ := runModule(t, b.M, lazyConfig())
	if got := m.memory.ReadWord(m.prog.GlobalAddr("x")); got != 7 {
		t.Fatalf("x = %d, want 7", got)
	}
}

// newWorkerPair emits: tid0 writes 7 to x in a TX (with padding work);
// tid1 reads x repeatedly outside any TX into x[1].
func newWorkerPair(b *ir.Builder) *ir.FuncBuilder {
	w := b.ThreadBody("worker", 1)
	isWriter := w.Cmp(ir.CmpEQ, w.Param(0), w.C(0))
	wr := w.NewBlock("wr")
	rd := w.NewBlock("rd")
	done := w.NewBlock("done")
	w.CondBr(isWriter, wr, rd)

	w.SetBlock(wr)
	g := w.GlobalAddr("x")
	w.TxBegin()
	w.Store(g, 0, w.C(7))
	w.TxEnd()
	w.Br(done)

	w.SetBlock(rd)
	g2 := w.GlobalAddr("x")
	loop := w.NewBlock("rloop")
	i := w.C(0)
	w.Br(loop)
	w.SetBlock(loop)
	v := w.Load(g2, 0)
	w.Store(g2, 8, v)
	w.MovTo(i, w.AddI(i, 1))
	c := w.Cmp(ir.CmpLT, i, w.C(50))
	w.CondBr(c, loop, done)

	w.SetBlock(done)
	w.RetVoid()
	return w
}

func TestVersioningString(t *testing.T) {
	if htm.VersionEager.String() != "eager" || htm.VersionLazy.String() != "lazy" {
		t.Fatal("versioning names wrong")
	}
}
