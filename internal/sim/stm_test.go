package sim

import (
	"testing"

	"hintm/internal/htm"
)

func TestSTMNeverCapacityAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HTM = HTMSTM
	_, res := runModule(t, bigTxModule(2, 3, 100), cfg)
	if res.Aborts[htm.AbortCapacity] != 0 {
		t.Fatalf("STM must not capacity-abort: %v", res)
	}
	if res.FallbackCommits != 0 {
		t.Fatalf("STM should not fall back: %v", res)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestSTMSlowerThanHTMOnSmallTxs(t *testing.T) {
	// Tiny transactions: HTM wins because STM pays per-access barriers.
	mod1 := counterModule(8, 20)
	_, htmRes := runModule(t, mod1, DefaultConfig())
	mod2 := counterModule(8, 20)
	cfg := DefaultConfig()
	cfg.HTM = HTMSTM
	_, stmRes := runModule(t, mod2, cfg)
	if stmRes.Cycles <= htmRes.Cycles {
		t.Fatalf("STM should be slower on tiny TXs: %d vs %d", stmRes.Cycles, htmRes.Cycles)
	}
}

func TestSTMBeatsOverflowingHTM(t *testing.T) {
	// Huge transactions: the bounded HTM serializes through the fallback
	// lock; STM pays barriers but keeps running transactions concurrently —
	// the crossover the paper's introduction frames.
	mod1 := bigTxModule(8, 4, 100)
	_, htmRes := runModule(t, mod1, DefaultConfig())
	mod2 := bigTxModule(8, 4, 100)
	cfg := DefaultConfig()
	cfg.HTM = HTMSTM
	_, stmRes := runModule(t, mod2, cfg)
	if stmRes.Cycles >= htmRes.Cycles {
		t.Fatalf("STM should beat the overflowing HTM: %d vs %d",
			stmRes.Cycles, htmRes.Cycles)
	}
}

func TestSTMBarrierElisionViaHints(t *testing.T) {
	// HinTM's hints elide STM barriers on safe accesses, so the hinted STM
	// run is faster — the Harris/Shpeisman-style optimization (§II-C).
	mod1 := bigTxModule(4, 4, 80)
	cfgBase := DefaultConfig()
	cfgBase.HTM = HTMSTM
	_, base := runModule(t, mod1, cfgBase)

	mod2 := bigTxModule(4, 4, 80)
	cfgDyn := DefaultConfig()
	cfgDyn.HTM = HTMSTM
	cfgDyn.Hints = HintDynamic
	_, hinted := runModule(t, mod2, cfgDyn)

	if hinted.Cycles >= base.Cycles {
		t.Fatalf("hints should elide STM barriers: %d vs %d",
			hinted.Cycles, base.Cycles)
	}
	if hinted.DynSafeAccesses == 0 {
		t.Fatal("no dynamically safe accesses under STM")
	}
}

func TestSTMCorrectness(t *testing.T) {
	mod := counterModule(8, 15)
	cfg := DefaultConfig()
	cfg.HTM = HTMSTM
	m, res := runModule(t, mod, cfg)
	if got := m.ReadGlobal("ctr", 0); got != 120 {
		t.Fatalf("counter = %d, want 120 (%v)", got, res)
	}
}
