// Package sim assembles the full simulated machine of the paper's
// methodology (§V): an 8-core (optionally 2-way SMT) SMP with private L1s, a
// shared L2, snoopy MESI coherence, one HTM controller per hardware context
// (P8 / P8S / L1TM / InfCap), and HinTM's translation subsystem. It executes
// TIR programs deterministically, interleaving hardware contexts in cycle
// order, and produces the per-run statistics the experiment harness turns
// into the paper's figures.
package sim

import (
	"fmt"

	"hintm/internal/cache"
	"hintm/internal/fault"
	"hintm/internal/htm"
	"hintm/internal/obs"
	"hintm/internal/vmem"
)

// HTMKind selects the baseline HTM configuration (paper §V).
type HTMKind uint8

// Baseline HTMs.
const (
	// HTMP8: POWER8-style dedicated 64-entry fully-associative buffer.
	HTMP8 HTMKind = iota
	// HTMP8S: P8 plus a 1-kbit PBX read signature.
	HTMP8S
	// HTML1TM: transactional state tracked in the 32KB 8-way L1.
	HTML1TM
	// HTMInfCap: unbounded tracking (capacity-abort-free upper bound).
	HTMInfCap
	// HTMSTM: an eager lock-based software TM baseline (TinySTM-style):
	// unbounded software bookkeeping (no capacity aborts) but a per-access
	// read/write barrier cost — the §II-A trade-off HTM exists to avoid.
	// HinTM's hints elide barriers for safe accesses, reproducing the STM
	// optimizations the paper cites as its lineage (§II-C).
	HTMSTM
)

func (k HTMKind) String() string {
	switch k {
	case HTMP8:
		return "P8"
	case HTMP8S:
		return "P8S"
	case HTML1TM:
		return "L1TM"
	case HTMInfCap:
		return "InfCap"
	case HTMSTM:
		return "STM"
	}
	return fmt.Sprintf("htm(%d)", uint8(k))
}

// ParseHTMKind parses the CLI/API spelling of a baseline HTM
// ("p8", "p8s", "l1tm", "infcap", "stm").
func ParseHTMKind(s string) (HTMKind, error) {
	switch s {
	case "p8":
		return HTMP8, nil
	case "p8s":
		return HTMP8S, nil
	case "l1tm":
		return HTML1TM, nil
	case "infcap":
		return HTMInfCap, nil
	case "stm":
		return HTMSTM, nil
	}
	return 0, fmt.Errorf("unknown HTM %q (want p8|p8s|l1tm|infcap|stm)", s)
}

// HintMode selects which HinTM classification mechanisms are honoured.
type HintMode uint8

// Hint modes (paper §V's HinTM-st / HinTM-dyn / HinTM).
const (
	HintNone HintMode = iota
	HintStatic
	HintDynamic
	HintFull
)

func (h HintMode) String() string {
	switch h {
	case HintNone:
		return "baseline"
	case HintStatic:
		return "HinTM-st"
	case HintDynamic:
		return "HinTM-dyn"
	case HintFull:
		return "HinTM"
	}
	return fmt.Sprintf("hint(%d)", uint8(h))
}

// ParseHintMode parses the CLI/API spelling of a hint mode
// ("none", "st", "dyn", "full").
func ParseHintMode(s string) (HintMode, error) {
	switch s {
	case "none":
		return HintNone, nil
	case "st":
		return HintStatic, nil
	case "dyn":
		return HintDynamic, nil
	case "full":
		return HintFull, nil
	}
	return 0, fmt.Errorf("unknown hint mode %q (want none|st|dyn|full)", s)
}

// Static reports whether compiler hints are honoured.
func (h HintMode) Static() bool { return h == HintStatic || h == HintFull }

// Dynamic reports whether runtime page classification is active.
func (h HintMode) Dynamic() bool { return h == HintDynamic || h == HintFull }

// Config parameterizes a machine (defaults follow paper Table II and §V).
type Config struct {
	// Cores and SMT define hardware contexts (Cores × SMT).
	Cores int
	SMT   int

	HTM   HTMKind
	Hints HintMode
	// Versioning selects eager (undo log, POWER8-style) or lazy (write
	// buffer, TSX-style) store versioning. Conflict detection is eager in
	// both. HinTM hints behave identically under either.
	Versioning htm.Versioning

	// P8Entries sizes the dedicated transactional buffer.
	P8Entries int
	// SigBits/SigHashes size the P8S read signature.
	SigBits   uint64
	SigHashes int

	Cache cache.Config
	VM    vmem.Costs
	// TLBEntries per hardware context.
	TLBEntries int

	// MaxConflictRetries before a conflicting TX falls back to the lock.
	MaxConflictRetries int
	// CapacityRetries lets a capacity-aborted TX retry in HTM mode before
	// falling back. The paper argues this is futile (the TX will overflow
	// again); the default of 0 follows the paper, and the ablation
	// quantifies the claim.
	CapacityRetries int
	// BackoffBase is the exponential-backoff unit after conflict aborts.
	BackoffBase int64
	// TxBeginCost/TxCommitCost are the begin/commit instruction overheads.
	TxBeginCost, TxCommitCost int64
	// EscapeCost is the per-TxSuspend/TxResume overhead (pipeline drain).
	EscapeCost int64
	// STMReadBarrier/STMWriteBarrier are the per-access software
	// instrumentation costs under the HTMSTM baseline.
	STMReadBarrier, STMWriteBarrier int64
	// AbortFixedCost is the abort-handler overhead; undo-log restoration
	// additionally costs L1Latency per entry.
	AbortFixedCost int64
	// FallbackPollCost is charged per failed fallback-lock poll.
	FallbackPollCost int64

	// Seed drives the per-thread PRNG streams.
	Seed uint64
	// MaxSteps aborts runaway simulations (0 = default guard).
	MaxSteps int64
	// MaxCycles hard-caps the simulated clock: a run whose furthest context
	// clock exceeds it stops with a CycleLimitError (0 = no cap). Unlike
	// MaxSteps (an implementation guard against interpreter runaway), this
	// bounds *simulated time*, the natural budget for hand-written .tir
	// programs.
	MaxCycles int64
	// WatchdogCycles arms the livelock watchdog: if no transaction commits
	// (HTM or via fallback) and no fallback lock is acquired for this many
	// simulated cycles while transactional work is pending, the run stops
	// with a LivelockError carrying a per-context diagnostic snapshot
	// (0 = watchdog off).
	WatchdogCycles int64
	// Faults is the fault-injection plan (zero value = no injection).
	Faults fault.Plan

	// Tracer receives cycle-timestamped observability events: transaction
	// spans, instant events (page transitions, shootdowns, evictions,
	// injected faults), and periodic counter samples. nil is the disabled
	// fast path: every emission site is one nil check and the access hot
	// path allocates nothing (see internal/obs).
	Tracer obs.Tracer
	// SampleCycles is the counter-sample period in simulated cycles; a
	// sample is emitted each time a context clock crosses the next multiple
	// (0 = sampling off). Only meaningful with a Tracer attached.
	SampleCycles int64
}

// DefaultConfig returns the paper's P8 baseline on 8 cores.
func DefaultConfig() Config {
	return Config{
		Cores:              8,
		SMT:                1,
		HTM:                HTMP8,
		Hints:              HintNone,
		P8Entries:          64,
		SigBits:            1024,
		SigHashes:          2,
		Cache:              cache.DefaultConfig(8),
		VM:                 vmem.DefaultCosts(),
		TLBEntries:         64,
		MaxConflictRetries: 4,
		BackoffBase:        64,
		TxBeginCost:        4,
		TxCommitCost:       8,
		EscapeCost:         10,
		STMReadBarrier:     12,
		STMWriteBarrier:    20,
		AbortFixedCost:     40,
		FallbackPollCost:   50,
		Seed:               1,
		MaxSteps:           2_000_000_000,
	}
}

// Contexts returns the hardware context count.
func (c Config) Contexts() int { return c.Cores * c.SMT }

// validate checks internal consistency.
func (c Config) validate() error {
	if c.Cores <= 0 || c.SMT <= 0 {
		return fmt.Errorf("sim: bad core/SMT config %d×%d", c.Cores, c.SMT)
	}
	if c.P8Entries <= 0 && (c.HTM == HTMP8 || c.HTM == HTMP8S) {
		return fmt.Errorf("sim: P8 buffer needs entries")
	}
	if c.Cache.Cores != c.Cores {
		return fmt.Errorf("sim: cache config is for %d cores, machine has %d",
			c.Cache.Cores, c.Cores)
	}
	if c.MaxCycles < 0 || c.WatchdogCycles < 0 {
		return fmt.Errorf("sim: negative cycle limit (max-cycles %d, watchdog %d)",
			c.MaxCycles, c.WatchdogCycles)
	}
	if c.SampleCycles < 0 {
		return fmt.Errorf("sim: negative sample period %d", c.SampleCycles)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}
