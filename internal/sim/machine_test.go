package sim

import (
	"context"
	"testing"

	"hintm/internal/htm"
	"hintm/internal/ir"
	"hintm/internal/mem"
)

// TestExplicitAbortRetries: an AbortHint-triggered abort rolls back and the
// retry (with a different PRNG-independent condition) succeeds.
func TestExplicitAbortRetries(t *testing.T) {
	// attempt counter lives OUTSIDE the TX's rollback domain (a global
	// written pre-TX), so the hint fires only on the first attempt.
	b := ir.NewBuilder("explicit")
	b.Global("attempts", 8) // one slot per thread, block-strided would be better but 1 thread only
	b.Global("out", 1)
	w := b.ThreadBody("worker", 1)
	att := w.GlobalAddr("attempts")
	out := w.GlobalAddr("out")

	loopDone := w.NewBlock("ld")
	w.TxBegin()
	// cond = (attempts == 0): with attempts never written, the hint fires
	// on every HTM attempt until the retry budget forces the fallback.
	n := w.Load(att, 0)
	first := w.Cmp(ir.CmpEQ, n, w.C(0))
	w.AbortIf(first)
	v := w.Load(out, 0)
	w.Store(out, 0, w.AddI(v, 1))
	w.TxEnd()
	w.Br(loopDone)
	w.SetBlock(loopDone)
	w.RetVoid()

	mn := b.Function("main", 0)
	nt := mn.C(1)
	mn.Parallel(nt, "worker")
	mn.RetVoid()

	m, res := runModule(t, b.M, DefaultConfig())
	// attempts==0 forever -> the explicit abort fires on every HTM retry
	// until the retry budget forces the fallback lock, where AbortHint is
	// ignored (no HTM TX active) and the critical section completes.
	if res.Aborts[htm.AbortExplicit] == 0 {
		t.Fatalf("no explicit aborts: %v", res)
	}
	if res.FallbackCommits != 1 {
		t.Fatalf("fallback commits = %d, want 1", res.FallbackCommits)
	}
	if got := m.ReadGlobal("out", 0); got != 1 {
		t.Fatalf("out = %d, want 1", got)
	}
}

// TestFallbackLockMutualExclusion: two threads that both always overflow
// must serialize through the lock and still produce an exact sum.
func TestFallbackLockMutualExclusion(t *testing.T) {
	mod := bigTxModule(4, 4, 100) // always overflows P8
	m, res := runModule(t, mod, DefaultConfig())
	if res.FallbackCommits == 0 {
		t.Fatal("expected fallback commits")
	}
	want := int64(99 * 100 / 2)
	for tid := int64(0); tid < 4; tid++ {
		if got := m.ReadGlobal("out", tid); got != want {
			t.Fatalf("out[%d] = %d, want %d", tid, got, want)
		}
	}
}

// TestTwoParallelRegions: a program with two successive parallel regions
// (page-sharing state resets between them).
func TestTwoParallelRegions(t *testing.T) {
	b := ir.NewBuilder("two")
	b.Global("sum", 8)
	w := b.ThreadBody("worker", 1)
	g := w.GlobalAddr("sum")
	off := w.MulI(w.Param(0), 8)
	w.TxBegin()
	v := w.Load(w.Add(g, off), 0)
	w.Store(w.Add(g, off), 0, w.AddI(v, 1))
	w.TxEnd()
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(4)
	mn.Parallel(n, "worker")
	n2 := mn.C(8)
	mn.Parallel(n2, "worker")
	mn.RetVoid()

	cfg := DefaultConfig()
	cfg.Hints = HintDynamic
	m, res := runModule(t, b.M, cfg)
	if res.Commits+res.FallbackCommits != 12 {
		t.Fatalf("commits = %d, want 12", res.Commits+res.FallbackCommits)
	}
	// Threads 0..3 ran twice, 4..7 once.
	for tid := int64(0); tid < 8; tid++ {
		want := int64(1)
		if tid < 4 {
			want = 2
		}
		if got := m.ReadGlobal("sum", tid); got != want {
			t.Fatalf("sum[%d] = %d, want %d", tid, got, want)
		}
	}
}

// TestMainThreadTransaction: main may run transactions outside any parallel
// region (single-threaded TXs on context 0).
func TestMainThreadTransaction(t *testing.T) {
	b := ir.NewBuilder("maintx")
	b.Global("g", 1)
	w := b.ThreadBody("worker", 1)
	w.RetVoid()
	mn := b.Function("main", 0)
	g := mn.GlobalAddr("g")
	mn.TxBegin()
	mn.Store(g, 0, mn.C(9))
	mn.TxEnd()
	n := mn.C(1)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	m, res := runModule(t, b.M, DefaultConfig())
	if res.Commits != 1 {
		t.Fatalf("commits = %d", res.Commits)
	}
	if got := m.ReadGlobal("g", 0); got != 9 {
		t.Fatalf("g = %d", got)
	}
}

// TestBackoffDelaysRetry: after a conflict abort, the context's clock jumps
// by at least the backoff base before the retry commits.
func TestBackoffDelaysRetry(t *testing.T) {
	cfgA := DefaultConfig()
	cfgA.BackoffBase = 1
	_, low := runModule(t, counterModule(8, 20), cfgA)
	cfgB := DefaultConfig()
	cfgB.BackoffBase = 4096
	_, high := runModule(t, counterModule(8, 20), cfgB)
	if low.TotalAborts() == 0 {
		t.Skip("no contention this run")
	}
	// Large backoff must not deadlock and must still complete all TXs.
	if high.Commits+high.FallbackCommits != 160 {
		t.Fatalf("high-backoff commits = %d", high.Commits+high.FallbackCommits)
	}
}

// TestProfilerReceivesAccesses: the profiler hook observes program accesses.
func TestProfilerReceivesAccesses(t *testing.T) {
	mod := counterModule(2, 3)
	m, err := New(DefaultConfig(), mod)
	if err != nil {
		t.Fatal(err)
	}
	probe := &countingProfiler{}
	m.SetProfiler(probe)
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if probe.n == 0 {
		t.Fatal("profiler saw nothing")
	}
}

type countingProfiler struct{ n int }

func (p *countingProfiler) OnAccess(tid int, addr mem.Addr, write, inTx bool) { p.n++ }

// TestHotInstructions: the execution profile surfaces the hottest code.
func TestHotInstructions(t *testing.T) {
	mod := counterModule(2, 5)
	m, err := New(DefaultConfig(), mod)
	if err != nil {
		t.Fatal(err)
	}
	if m.HotInstructions(3) != nil {
		t.Fatal("profile should be nil before EnableProfile")
	}
	m.EnableProfile()
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	hot := m.HotInstructions(3)
	if len(hot) != 3 {
		t.Fatalf("hot rows = %d", len(hot))
	}
	if hot[0].Count < hot[1].Count || hot[1].Count < hot[2].Count {
		t.Fatal("profile not sorted")
	}
	if hot[0].Count == 0 || hot[0].Func == "" || hot[0].Text == "" {
		t.Fatalf("bad row: %+v", hot[0])
	}
}

// TestCapacityRetryFutility: granting capacity retries must not recover any
// commits — the transaction overflows again every time (paper §I).
func TestCapacityRetryFutility(t *testing.T) {
	base := DefaultConfig()
	_, r0 := runModule(t, bigTxModule(2, 3, 100), base)
	retry := DefaultConfig()
	retry.CapacityRetries = 3
	_, r3 := runModule(t, bigTxModule(2, 3, 100), retry)
	if r3.Commits != r0.Commits {
		t.Fatalf("retries changed HTM commits: %d vs %d", r3.Commits, r0.Commits)
	}
	if r3.Aborts[htm.AbortCapacity] <= r0.Aborts[htm.AbortCapacity] {
		t.Fatalf("retries should multiply capacity aborts: %d vs %d",
			r3.Aborts[htm.AbortCapacity], r0.Aborts[htm.AbortCapacity])
	}
	if r3.Cycles <= r0.Cycles {
		t.Fatalf("futile retries should cost cycles: %d vs %d", r3.Cycles, r0.Cycles)
	}
}
