package sim

import (
	"context"
	"errors"
	"fmt"

	"hintm/internal/htm"
	"hintm/internal/interp"
	"hintm/internal/ir"
	"hintm/internal/mem"
	"hintm/internal/snap"
)

// Prefix sharing: every grid point over one workload executes an identical
// single-threaded warm-up — data-structure construction, page-table and
// cache population — before the first transaction or parallel region, because
// nothing HTM-, hint- or retry-policy-specific can influence execution until
// transactional machinery first engages. RunToPrefix executes exactly that
// warm-up once and captures the machine as a snap.State; Prefix.Fork then
// materializes any number of sibling machines that resume from the boundary
// under their own full configurations, byte-identical to cold runs.

// ErrNoPrefix reports that a shareable prefix could not be captured: the
// program finished without transactional work, the configuration is not
// prefix-capturable (tracer attached, faults enabled), or the machine was
// not quiescent at the boundary. Callers match it with errors.Is and fall
// back to a cold run.
var ErrNoPrefix = errors.New("sim: no shareable prefix")

// Prefix is one captured warm-up, ready to fork. Steps and Cycles locate the
// boundary (diagnostics; forks re-derive everything from the snapshot).
type Prefix struct {
	cfg   Config
	prog  *interp.Program
	state *snap.State

	Steps  int64
	Cycles int64
}

// PrefixConfig returns the canonical configuration for running cfg's shared
// prefix: every parameter that cannot influence execution before the first
// transaction or parallel region (HTM kind, tracker sizing, versioning,
// retry policy, transactional costs, the static-hint bit) is collapsed to a
// fixed value, so sibling grid points that differ only in those parameters
// map to the same prefix. Parameters the warm-up does observe — topology,
// cache and VM geometry, seed, run limits, and the dynamic-hint bit (it
// decides whether the translation subsystem classifies pages during the
// warm-up's minor faults) — are preserved.
func PrefixConfig(cfg Config) Config {
	d := DefaultConfig()
	p := cfg
	p.HTM = HTMInfCap
	if cfg.Hints.Dynamic() {
		p.Hints = HintDynamic
	} else {
		p.Hints = HintNone
	}
	p.Versioning = d.Versioning
	p.P8Entries, p.SigBits, p.SigHashes = d.P8Entries, d.SigBits, d.SigHashes
	p.MaxConflictRetries, p.CapacityRetries = d.MaxConflictRetries, d.CapacityRetries
	p.BackoffBase = d.BackoffBase
	p.TxBeginCost, p.TxCommitCost = d.TxBeginCost, d.TxCommitCost
	p.EscapeCost = d.EscapeCost
	p.STMReadBarrier, p.STMWriteBarrier = d.STMReadBarrier, d.STMWriteBarrier
	p.AbortFixedCost, p.FallbackPollCost = d.AbortFixedCost, d.FallbackPollCost
	p.Tracer, p.SampleCycles = nil, 0
	return p
}

// PrefixCompatible checks that a run configured by run may resume from a
// prefix captured under prefix: everything the warm-up observed must match,
// and the run must not want per-access instrumentation the prefix did not
// perform (tracing, fault injection).
func PrefixCompatible(prefix, run Config) error {
	switch {
	case run.Cores != prefix.Cores || run.SMT != prefix.SMT:
		return fmt.Errorf("sim: prefix topology %d×%d, run %d×%d: %w",
			prefix.Cores, prefix.SMT, run.Cores, run.SMT, ErrNoPrefix)
	case run.Cache != prefix.Cache:
		return fmt.Errorf("sim: cache geometry differs from prefix: %w", ErrNoPrefix)
	case run.VM != prefix.VM || run.TLBEntries != prefix.TLBEntries:
		return fmt.Errorf("sim: VM costs/TLB geometry differ from prefix: %w", ErrNoPrefix)
	case run.Seed != prefix.Seed:
		return fmt.Errorf("sim: seed %d differs from prefix seed %d: %w",
			run.Seed, prefix.Seed, ErrNoPrefix)
	case run.MaxSteps != prefix.MaxSteps || run.MaxCycles != prefix.MaxCycles ||
		run.WatchdogCycles != prefix.WatchdogCycles:
		return fmt.Errorf("sim: run limits differ from prefix: %w", ErrNoPrefix)
	case run.Hints.Dynamic() != prefix.Hints.Dynamic():
		return fmt.Errorf("sim: dynamic-hint bit differs from prefix: %w", ErrNoPrefix)
	case run.Tracer != nil:
		return fmt.Errorf("sim: traced runs cannot resume a prefix: %w", ErrNoPrefix)
	case run.Faults.Enabled() || prefix.Faults.Enabled():
		return fmt.Errorf("sim: fault-injected runs cannot share a prefix: %w", ErrNoPrefix)
	}
	return nil
}

// RunToPrefix executes the warm-up: it steps the main thread exactly as Run
// would — same clock charges, same cancellation and guard cadence — and
// stops immediately BEFORE the first OpTxBegin or OpParallel, so the
// boundary instruction itself is re-executed by every fork (and by nobody
// during capture: stopping after it would charge its cycle twice). On
// success the machine's components are MOVED into the returned Prefix and
// the machine is dead; on error the machine is unchanged but should be
// discarded. A program that completes without reaching a boundary returns
// ErrNoPrefix: there is nothing transactional to vary, so sharing has no
// suffix to save.
func (m *Machine) RunToPrefix(ctx context.Context) (*Prefix, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if m.resumed {
		return nil, fmt.Errorf("sim: RunToPrefix on a resumed machine: %w", ErrNoPrefix)
	}
	if m.tracer != nil || m.faults != nil {
		return nil, fmt.Errorf("sim: prefix capture needs an uninstrumented machine: %w", ErrNoPrefix)
	}
	mainFn := m.prog.M.Func("main")
	if mainFn == nil {
		return nil, fmt.Errorf("sim: module has no main")
	}
	m.prog.LayoutGlobals(m.alloc, m.memory)

	mtid := m.mainTID()
	base := m.alloc.StackAlloc(mtid, mainFn.AllocaWords*mem.WordSize)
	m.mainThread = m.prog.NewThread(mtid, "main", nil, base, m.cfg.Seed)
	m.byThread[mtid] = m.ctxs[0]

	maxSteps := m.cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 2_000_000_000
	}
	m.stepCap = maxSteps

	for !m.mainThread.Done {
		if m.res.Steps&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: cancelled after %d steps: %w", m.res.Steps, err)
			}
		}
		if m.res.Steps >= maxSteps {
			return nil, fmt.Errorf("sim: exceeded %d steps (livelock?)", maxSteps)
		}
		if m.res.Steps&guardMask == 0 {
			if err := m.checkGuards(); err != nil {
				return nil, err
			}
		}
		switch m.mainThread.NextOp() {
		case ir.OpTxBegin, ir.OpParallel:
			return m.capturePrefix()
		}
		m.stepThread(m.ctxs[0], m.mainThread)
	}
	return nil, fmt.Errorf("sim: program finished without transactional work: %w", ErrNoPrefix)
}

// capturePrefix verifies the machine is quiescent at the boundary and moves
// its state into a Prefix. Quiescence is asserted, not assumed: a boundary
// where any controller holds state, any retry policy is armed, or any
// transactional statistic is nonzero would bake prefix-config decisions into
// every fork.
func (m *Machine) capturePrefix() (*Prefix, error) {
	if m.parallel != nil || m.fallbackHolder != nil {
		return nil, fmt.Errorf("sim: prefix boundary inside a parallel region: %w", ErrNoPrefix)
	}
	for _, c := range m.ctxs {
		if !c.ctrl.Quiescent() || c.txActive || c.suspended || c.retries != 0 ||
			c.fallbackNext || c.backoffUntil != 0 {
			return nil, fmt.Errorf("sim: context %d not quiescent at prefix boundary: %w",
				c.id, ErrNoPrefix)
		}
	}
	if m.res.Commits != 0 || m.res.FallbackCommits != 0 || m.res.TotalAborts() != 0 ||
		m.res.TxAccesses() != 0 || m.res.SuspendedAccesses != 0 {
		return nil, fmt.Errorf("sim: transactional statistics nonzero at prefix boundary: %w",
			ErrNoPrefix)
	}

	ctr := snap.Counters{
		Steps:             m.res.Steps,
		CtxCycles:         make([]int64, len(m.ctxs)),
		NonTxAccesses:     m.res.NonTxAccesses,
		PageModeCycles:    m.res.PageModeCycles,
		FallbackAcquires:  m.fallbackAcquires,
		LastProgress:      m.lastProgress,
		LastProgressCycle: m.lastProgressCycle,
	}
	for i, c := range m.ctxs {
		ctr.CtxCycles[i] = c.cycle
	}
	st := &snap.State{
		Mem:      m.memory,
		Alloc:    m.alloc,
		Cache:    m.caches,
		VM:       m.vm,
		Main:     m.mainThread.CaptureState(),
		Counters: ctr,
	}
	p := &Prefix{
		cfg:    m.cfg,
		prog:   m.prog,
		state:  st,
		Steps:  m.res.Steps,
		Cycles: m.ctxs[0].cycle,
	}
	// The machine is consumed: its components now belong to the snapshot.
	m.memory, m.alloc, m.caches, m.vm = nil, nil, nil, nil
	m.mainThread = nil
	m.byThread[m.mainTID()] = nil
	return p, nil
}

// Fork materializes a machine that resumes from the prefix under cfg. The
// forked machine owns deep clones of the captured components plus fresh HTM
// controllers built from cfg; its Run picks up at the boundary instruction
// and produces results byte-identical to a cold run of cfg. Any number of
// forks may be taken, concurrently.
func (p *Prefix) Fork(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := PrefixCompatible(p.cfg, cfg); err != nil {
		return nil, err
	}
	f := p.state.Fork()

	m := &Machine{
		cfg:      cfg,
		prog:     p.prog,
		memory:   f.Mem,
		alloc:    f.Alloc,
		caches:   f.Cache,
		vm:       f.VM,
		byThread: make([]*hwContext, cfg.Contexts()+1),
		res:      newResult(),
		resumed:  true,
	}
	for i := 0; i < cfg.Contexts(); i++ {
		ctrl := htm.NewController(m.newTracker())
		ctrl.SetVersioning(cfg.Versioning)
		m.ctxs = append(m.ctxs, &hwContext{
			id:     i,
			core:   i % cfg.Cores,
			ctrl:   ctrl,
			runIdx: -1,
		})
	}
	for _, c := range m.ctxs {
		for _, o := range m.ctxs {
			if o.core != c.core {
				continue
			}
			c.coreMates = append(c.coreMates, o)
			if o != c {
				c.siblings = append(c.siblings, o)
			}
		}
	}

	m.mainThread = f.Main.NewThread(p.prog)
	m.byThread[m.mainTID()] = m.ctxs[0]
	for i, cyc := range f.Counters.CtxCycles {
		m.ctxs[i].cycle = cyc
	}
	m.res.Steps = f.Counters.Steps
	m.res.StaticSafeAccesses = f.Counters.StaticSafeAccesses
	m.res.DynSafeAccesses = f.Counters.DynSafeAccesses
	m.res.UnsafeTxAccesses = f.Counters.UnsafeTxAccesses
	m.res.NonTxAccesses = f.Counters.NonTxAccesses
	m.res.SuspendedAccesses = f.Counters.SuspendedAccesses
	m.res.PageModeCycles = f.Counters.PageModeCycles
	m.fallbackAcquires = f.Counters.FallbackAcquires
	m.lastProgress = f.Counters.LastProgress
	m.lastProgressCycle = f.Counters.LastProgressCycle
	return m, nil
}

// Forks reports how many machines have been forked from this prefix.
func (p *Prefix) Forks() uint64 { return p.state.Forks() }

// Config returns the configuration the prefix was captured under.
func (p *Prefix) Config() Config { return p.cfg }

// Release returns the snapshot's pooled resources; the prefix must not be
// forked afterwards.
func (p *Prefix) Release() { p.state.Release() }
