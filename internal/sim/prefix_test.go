package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"hintm/internal/ir"
	"hintm/internal/obs"
)

// setupModule builds a workload with a substantial single-threaded warm-up:
// main initializes a words-long global array (touching memory, caches, TLB,
// page table), then forks workers that transactionally sum disjoint slices
// into out[tid]. The warm-up is the shareable prefix; the parallel region is
// the per-configuration suffix.
func setupModule(nThreads, words int64) *ir.Module {
	b := ir.NewBuilder("setup")
	b.Global("data", words*8)
	b.Global("out", 8*nThreads)

	w := b.ThreadBody("worker", 1)
	per := words / nThreads
	start := w.MulI(w.Param(0), per)
	end := w.AddI(start, per)
	loop := w.NewBlock("loop")
	done := w.NewBlock("done")
	i := w.Mov(start)
	acc := w.C(0)
	w.Br(loop)
	w.SetBlock(loop)
	w.TxBegin()
	g := w.GlobalAddr("data")
	v := w.Load(w.Add(g, w.MulI(i, 8)), 0)
	w.MovTo(acc, w.Add(acc, v))
	o := w.GlobalAddr("out")
	w.Store(w.Add(o, w.MulI(w.Param(0), 8)), 0, acc)
	w.TxEnd()
	w.MovTo(i, w.AddI(i, 1))
	c := w.Cmp(ir.CmpLT, i, end)
	w.CondBr(c, loop, done)
	w.SetBlock(done)
	w.RetVoid()

	mn := b.Function("main", 0)
	iLoop := mn.NewBlock("init")
	iDone := mn.NewBlock("initdone")
	j := mn.C(0)
	mn.Br(iLoop)
	mn.SetBlock(iLoop)
	g2 := mn.GlobalAddr("data")
	mn.Store(mn.Add(g2, mn.MulI(j, 8)), 0, j)
	mn.MovTo(j, mn.AddI(j, 1))
	c2 := mn.Cmp(ir.CmpLT, j, mn.C(words))
	mn.CondBr(c2, iLoop, iDone)
	mn.SetBlock(iDone)
	n := mn.C(nThreads)
	mn.Parallel(n, "worker")
	mn.RetVoid()
	return b.M
}

// mainTxModule: the warm-up ends at a main-thread transaction (no parallel
// region), followed by a non-transactional cooldown loop — exercises the
// OpTxBegin boundary and gives the alloc pin a steady-state region to step.
func mainTxModule(words int64) *ir.Module {
	b := ir.NewBuilder("maintx")
	b.Global("data", words*8)
	b.Global("out", 8)

	mn := b.Function("main", 0)
	iLoop := mn.NewBlock("init")
	iDone := mn.NewBlock("initdone")
	cLoop := mn.NewBlock("cool")
	cDone := mn.NewBlock("cooldone")
	j := mn.C(0)
	mn.Br(iLoop)
	mn.SetBlock(iLoop)
	g := mn.GlobalAddr("data")
	mn.Store(mn.Add(g, mn.MulI(j, 8)), 0, j)
	mn.MovTo(j, mn.AddI(j, 1))
	c := mn.Cmp(ir.CmpLT, j, mn.C(words))
	mn.CondBr(c, iLoop, iDone)
	mn.SetBlock(iDone)
	mn.TxBegin()
	v := mn.Load(mn.GlobalAddr("data"), 0)
	mn.Store(mn.GlobalAddr("out"), 0, mn.AddI(v, 1))
	mn.TxEnd()
	mn.MovTo(j, mn.C(0))
	mn.Br(cLoop)
	mn.SetBlock(cLoop)
	g3 := mn.GlobalAddr("data")
	v2 := mn.Load(mn.Add(g3, mn.MulI(j, 8)), 0)
	mn.Store(mn.GlobalAddr("out"), 0, v2)
	mn.MovTo(j, mn.AddI(j, 1))
	c3 := mn.Cmp(ir.CmpLT, j, mn.C(words))
	mn.CondBr(c3, cLoop, cDone)
	mn.SetBlock(cDone)
	mn.RetVoid()
	return b.M
}

// plainModule has no transactions and no parallel region: no prefix exists.
func plainModule() *ir.Module {
	b := ir.NewBuilder("plain")
	b.Global("x", 8)
	mn := b.Function("main", 0)
	mn.Store(mn.GlobalAddr("x"), 0, mn.C(42))
	mn.RetVoid()
	return b.M
}

// capturePrefixFor runs the canonical prefix of cfg over mod.
func capturePrefixFor(t *testing.T, mod *ir.Module, cfg Config) *Prefix {
	t.Helper()
	pm, err := New(PrefixConfig(cfg), mod)
	if err != nil {
		t.Fatalf("New(prefix): %v", err)
	}
	p, err := pm.RunToPrefix(context.Background())
	if err != nil {
		t.Fatalf("RunToPrefix: %v", err)
	}
	return p
}

// runForked forks cfg from p and runs it to completion.
func runForked(t *testing.T, p *Prefix, cfg Config) (*Machine, *Result) {
	t.Helper()
	m, err := p.Fork(cfg)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatalf("Run(forked): %v", err)
	}
	return m, res
}

// assertIdentical compares every statistic and the visible memory outcome.
func assertIdentical(t *testing.T, label string, mod *ir.Module, cold, forked *Machine, rc, rf *Result, outWords int64) {
	t.Helper()
	if !reflect.DeepEqual(rc, rf) {
		t.Errorf("%s: forked result differs from cold:\n cold:   %v\n forked: %v", label, rc, rf)
	}
	for w := int64(0); w < outWords; w++ {
		if c, f := cold.ReadGlobal("out", w), forked.ReadGlobal("out", w); c != f {
			t.Errorf("%s: out[%d] = %d forked vs %d cold", label, w, f, c)
		}
	}
}

func TestForkMatchesColdAcrossGrid(t *testing.T) {
	mod := classified(t, setupModule(4, 512))
	kinds := []HTMKind{HTMP8, HTMP8S, HTML1TM, HTMInfCap, HTMSTM}
	hints := []HintMode{HintNone, HintStatic, HintDynamic, HintFull}

	// One prefix per dynamic-hint bit serves the whole grid.
	prefixes := map[bool]*Prefix{}
	for _, dyn := range []bool{false, true} {
		cfg := DefaultConfig()
		if dyn {
			cfg.Hints = HintDynamic
		}
		prefixes[dyn] = capturePrefixFor(t, mod, cfg)
	}

	for _, k := range kinds {
		for _, h := range hints {
			label := fmt.Sprintf("%s/%s", k, h)
			cfg := DefaultConfig()
			cfg.HTM = k
			cfg.Hints = h
			cold, rc := runModule(t, mod, cfg)
			forked, rf := runForked(t, prefixes[h.Dynamic()], cfg)
			assertIdentical(t, label, mod, cold, forked, rc, rf, 4)
		}
	}
	if n := prefixes[false].Forks() + prefixes[true].Forks(); n != uint64(len(kinds)*len(hints)) {
		t.Errorf("fork count %d, want %d", n, len(kinds)*len(hints))
	}
}

func TestForkMatchesColdMainThreadTx(t *testing.T) {
	mod := mainTxModule(256)
	cfg := DefaultConfig()
	p := capturePrefixFor(t, mod, cfg)
	if p.Steps == 0 || p.Cycles == 0 {
		t.Fatalf("empty prefix: steps=%d cycles=%d", p.Steps, p.Cycles)
	}
	cold, rc := runModule(t, mod, cfg)
	forked, rf := runForked(t, p, cfg)
	assertIdentical(t, "main-tx", mod, cold, forked, rc, rf, 1)
}

func TestConcurrentForksAreIndependent(t *testing.T) {
	mod := setupModule(4, 512)
	cfg := DefaultConfig()
	cfg.Hints = HintDynamic
	p := capturePrefixFor(t, mod, cfg)
	_, want := runModule(t, mod, cfg)

	const n = 8
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := p.Fork(cfg)
			if err != nil {
				t.Errorf("Fork %d: %v", i, err)
				return
			}
			res, err := m.Run(context.Background())
			if err != nil {
				t.Errorf("Run %d: %v", i, err)
				return
			}
			m.Release()
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			continue
		}
		if !reflect.DeepEqual(want, res) {
			t.Errorf("fork %d diverged:\n want %v\n got  %v", i, want, res)
		}
	}
}

func TestNoPrefixWithoutTransactionalWork(t *testing.T) {
	pm, err := New(DefaultConfig(), plainModule())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.RunToPrefix(context.Background()); !errors.Is(err, ErrNoPrefix) {
		t.Fatalf("err = %v, want ErrNoPrefix", err)
	}
}

func TestNoPrefixWhenInstrumented(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tracer = obs.NewCollector()
	pm, err := New(cfg, setupModule(2, 64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.RunToPrefix(context.Background()); !errors.Is(err, ErrNoPrefix) {
		t.Fatalf("traced capture err = %v, want ErrNoPrefix", err)
	}
}

func TestPrefixCompatibleRejectsMismatches(t *testing.T) {
	base := PrefixConfig(DefaultConfig())
	cases := map[string]func(*Config){
		"seed":     func(c *Config) { c.Seed = 99 },
		"cores":    func(c *Config) { c.Cores = 4; c.Cache.Cores = 4 },
		"smt":      func(c *Config) { c.SMT = 2 },
		"cache":    func(c *Config) { c.Cache.L1Sets *= 2 },
		"tlb":      func(c *Config) { c.TLBEntries *= 2 },
		"dyn-bit":  func(c *Config) { c.Hints = HintDynamic },
		"tracer":   func(c *Config) { c.Tracer = obs.NewCollector() },
		"watchdog": func(c *Config) { c.WatchdogCycles = 1 << 20 },
	}
	for name, mutate := range cases {
		run := DefaultConfig()
		mutate(&run)
		if err := PrefixCompatible(base, run); err == nil {
			t.Errorf("%s: mismatch accepted", name)
		} else if !errors.Is(err, ErrNoPrefix) {
			t.Errorf("%s: err = %v, want ErrNoPrefix", name, err)
		}
	}
	// And the compatible case passes, including masked-parameter drift.
	run := DefaultConfig()
	run.HTM = HTML1TM
	run.Hints = HintStatic
	run.BackoffBase = 1
	run.P8Entries = 8
	if err := PrefixCompatible(base, run); err != nil {
		t.Errorf("compatible config rejected: %v", err)
	}
}

// TestSnapshotForkAllocsSteadyState pins the fork cost shape: allocations
// per fork are O(live state) — a constant for a fixed snapshot — and do NOT
// grow with the number of forks already taken (no hidden accumulation in the
// snapshot or pools).
func TestSnapshotForkAllocsSteadyState(t *testing.T) {
	mod := setupModule(4, 512)
	p := capturePrefixFor(t, mod, DefaultConfig())
	cfg := DefaultConfig()
	fork := func() {
		m, err := p.Fork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Release()
	}
	for i := 0; i < 16; i++ {
		fork() // warm line pools
	}
	early := testing.AllocsPerRun(32, fork)
	late := testing.AllocsPerRun(32, fork)
	if late > early*1.1+8 {
		t.Errorf("fork allocations grew with fork count: early %.0f, late %.0f", early, late)
	}
	// The absolute count must stay proportional to live state (512 words of
	// data ≈ 8 pages + stacks/globals); a generous cap catches accidental
	// per-fork copies of dead structures.
	if early > 2000 {
		t.Errorf("fork allocates %.0f objects for a ~10-page snapshot", early)
	}
}

// TestResumedStepAllocsZero pins the resume path itself: once forked, the
// per-step execution path allocates nothing in steady state (identical to
// the cold machine's hot loop).
func TestResumedStepAllocsZero(t *testing.T) {
	mod := mainTxModule(256)
	p := capturePrefixFor(t, mod, DefaultConfig())
	m, err := p.Fork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.stepCap = 1 << 30
	// Step through the boundary transaction into the cooldown loop (the
	// first TxBegin draws its checkpoint from the pool).
	for i := 0; i < 64 && !m.mainThread.Done; i++ {
		m.stepThread(m.ctxs[0], m.mainThread)
	}
	if avg := testing.AllocsPerRun(100, func() {
		m.stepThread(m.ctxs[0], m.mainThread)
	}); avg != 0 {
		t.Errorf("resumed step allocates %.1f objects/step, want 0", avg)
	}
}

func BenchmarkSnapshotFork(b *testing.B) {
	mod := setupModule(8, 4096)
	pm, err := New(PrefixConfig(DefaultConfig()), mod)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pm.RunToPrefix(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := p.Fork(cfg)
		if err != nil {
			b.Fatal(err)
		}
		m.Release()
	}
}

// BenchmarkPrefixResume compares a forked resume against a cold run of the
// same cell: the gap is the warm-up work sharing saves per sibling.
func BenchmarkPrefixResume(b *testing.B) {
	mod := setupModule(8, 4096)
	cfg := DefaultConfig()
	pm, err := New(PrefixConfig(cfg), mod)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pm.RunToPrefix(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("forked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := p.Fork(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			m.Release()
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := New(cfg, mod)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			m.Release()
		}
	})
}
