package sim

import (
	"context"
	"testing"

	"hintm/internal/classify"
	"hintm/internal/htm"
	"hintm/internal/ir"
	"hintm/internal/mem"
)

// counterModule: nThreads threads each perform iters transactions
// incrementing a shared counter. Total must be nThreads*iters.
func counterModule(nThreads, iters int64) *ir.Module {
	b := ir.NewBuilder("counter")
	b.Global("ctr", 1)

	w := b.ThreadBody("worker", 1)
	loop := w.NewBlock("loop")
	done := w.NewBlock("done")
	i := w.C(0)
	w.Br(loop)
	w.SetBlock(loop)
	w.TxBegin()
	g := w.GlobalAddr("ctr")
	v := w.Load(g, 0)
	w.Store(g, 0, w.AddI(v, 1))
	w.TxEnd()
	w.MovTo(i, w.AddI(i, 1))
	c := w.Cmp(ir.CmpLT, i, w.C(iters))
	w.CondBr(c, loop, done)
	w.SetBlock(done)
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(nThreads)
	mn.Parallel(n, "worker")
	mn.RetVoid()
	return b.M
}

// bigTxModule: each thread's TX reads `blocks` distinct cache blocks of a
// thread-private heap buffer, then updates one shared word.
func bigTxModule(nThreads, iters, blocks int64) *ir.Module {
	b := ir.NewBuilder("bigtx")
	b.Global("out", 8)

	w := b.ThreadBody("worker", 1)
	buf := w.MallocI(blocks * 64) // one word per block touched, 64B apart
	// Initialize the buffer (outside TX).
	initLoop := w.NewBlock("init")
	txLoop := w.NewBlock("txloop")
	readLoop := w.NewBlock("read")
	readDone := w.NewBlock("readdone")
	txDone := w.NewBlock("txdone")
	i := w.C(0)
	iter := w.C(0)
	acc := w.C(0)
	w.Br(initLoop)
	w.SetBlock(initLoop)
	off := w.MulI(i, 64)
	w.Store(w.Add(buf, off), 0, i)
	w.MovTo(i, w.AddI(i, 1))
	c := w.Cmp(ir.CmpLT, i, w.C(blocks))
	w.CondBr(c, initLoop, txLoop)

	w.SetBlock(txLoop)
	w.TxBegin()
	w.MovTo(i, w.C(0))
	w.MovTo(acc, w.C(0))
	w.Br(readLoop)
	w.SetBlock(readLoop)
	off2 := w.MulI(i, 64)
	v := w.Load(w.Add(buf, off2), 0)
	w.MovTo(acc, w.Add(acc, v))
	w.MovTo(i, w.AddI(i, 1))
	c2 := w.Cmp(ir.CmpLT, i, w.C(blocks))
	w.CondBr(c2, readLoop, readDone)
	w.SetBlock(readDone)
	g := w.GlobalAddr("out")
	slot := w.MulI(w.Param(0), 8)
	w.Store(w.Add(g, slot), 0, acc)
	w.TxEnd()
	w.MovTo(iter, w.AddI(iter, 1))
	c3 := w.Cmp(ir.CmpLT, iter, w.C(iters))
	w.CondBr(c3, txLoop, txDone)
	w.SetBlock(txDone)
	w.FreeI(buf, blocks*64)
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(nThreads)
	mn.Parallel(n, "worker")
	mn.RetVoid()
	return b.M
}

func runModule(t *testing.T, mod *ir.Module, cfg Config) (*Machine, *Result) {
	t.Helper()
	m, err := New(cfg, mod)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m, res
}

func classified(t *testing.T, mod *ir.Module) *ir.Module {
	t.Helper()
	if _, err := classify.Run(mod); err != nil {
		t.Fatalf("classify: %v", err)
	}
	return mod
}

func TestCounterCorrectUnderContention(t *testing.T) {
	mod := counterModule(8, 20)
	m, res := runModule(t, mod, DefaultConfig())
	got := m.memory.ReadWord(m.prog.GlobalAddr("ctr"))
	if got != 160 {
		t.Fatalf("counter = %d, want 160 (%v)", got, res)
	}
	if res.Commits+res.FallbackCommits != 160 {
		t.Fatalf("commits %d + fallback %d != 160", res.Commits, res.FallbackCommits)
	}
	if res.Aborts[htm.AbortConflict] == 0 {
		t.Log("warning: contended counter saw no conflicts (suspicious but legal)")
	}
	if res.Aborts[htm.AbortCapacity] != 0 {
		t.Fatalf("tiny TXs must not capacity-abort: %v", res)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	_, r1 := runModule(t, counterModule(8, 10), cfg)
	_, r2 := runModule(t, counterModule(8, 10), cfg)
	if r1.Cycles != r2.Cycles || r1.TotalAborts() != r2.TotalAborts() ||
		r1.Steps != r2.Steps {
		t.Fatalf("nondeterministic: %v vs %v", r1, r2)
	}
}

func TestCapacityAbortAndFallback(t *testing.T) {
	// 100 blocks > 64-entry P8 buffer: every TX capacity-aborts once, then
	// completes under the fallback lock.
	mod := bigTxModule(2, 3, 100)
	m, res := runModule(t, mod, DefaultConfig())
	if res.Aborts[htm.AbortCapacity] == 0 {
		t.Fatalf("expected capacity aborts: %v", res)
	}
	if res.FallbackCommits == 0 {
		t.Fatalf("capacity aborts must fall back: %v", res)
	}
	// Correctness: out[tid] = sum 0..99.
	base := m.prog.GlobalAddr("out")
	want := int64(99 * 100 / 2)
	for tid := int64(0); tid < 2; tid++ {
		if got := m.memory.ReadWord(base + mem.Addr(tid*8)); got != want {
			t.Fatalf("out[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestInfCapEliminatesCapacityAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HTM = HTMInfCap
	_, res := runModule(t, bigTxModule(2, 3, 100), cfg)
	if res.Aborts[htm.AbortCapacity] != 0 {
		t.Fatalf("InfCap capacity aborts: %v", res)
	}
	if res.FallbackCommits != 0 {
		t.Fatalf("InfCap should not fall back: %v", res)
	}
}

func TestDynamicHintsEliminateCapacityAborts(t *testing.T) {
	// The big reads target thread-private pages: HinTM-dyn marks them safe
	// and the TX fits trivially.
	cfg := DefaultConfig()
	cfg.Hints = HintDynamic
	m, res := runModule(t, bigTxModule(2, 3, 100), cfg)
	if res.Aborts[htm.AbortCapacity] != 0 {
		t.Fatalf("HinTM-dyn left capacity aborts: %v", res)
	}
	if res.DynSafeAccesses == 0 {
		t.Fatalf("no dynamically safe accesses recorded: %v", res)
	}
	base := m.prog.GlobalAddr("out")
	want := int64(99 * 100 / 2)
	if got := m.memory.ReadWord(base); got != want {
		t.Fatalf("out[0] = %d, want %d", got, want)
	}
}

func TestStaticHintsEliminateCapacityAborts(t *testing.T) {
	mod := classified(t, bigTxModule(2, 3, 100))
	cfg := DefaultConfig()
	cfg.Hints = HintStatic
	_, res := runModule(t, mod, cfg)
	if res.StaticSafeAccesses == 0 {
		t.Fatalf("classifier marked nothing: %v", res)
	}
	if res.Aborts[htm.AbortCapacity] != 0 {
		t.Fatalf("HinTM-st left capacity aborts: %v", res)
	}
}

func TestBaselineIgnoresSafeBits(t *testing.T) {
	// Same classified module, hints off: capacity aborts must persist.
	mod := classified(t, bigTxModule(2, 3, 100))
	cfg := DefaultConfig()
	cfg.Hints = HintNone
	_, res := runModule(t, mod, cfg)
	if res.Aborts[htm.AbortCapacity] == 0 {
		t.Fatalf("baseline unexpectedly avoided capacity aborts: %v", res)
	}
	if res.StaticSafeAccesses != 0 {
		t.Fatalf("baseline counted static-safe accesses: %v", res)
	}
}

func TestTxFootprintShrinksWithHints(t *testing.T) {
	cfgBase := DefaultConfig()
	cfgBase.HTM = HTMInfCap
	_, rBase := runModule(t, bigTxModule(2, 3, 100), cfgBase)

	cfgDyn := cfgBase
	cfgDyn.Hints = HintDynamic
	_, rDyn := runModule(t, bigTxModule(2, 3, 100), cfgDyn)

	if rBase.TxFootprints.Mean() <= rDyn.TxFootprints.Mean() {
		t.Fatalf("hints did not shrink footprints: base %.1f vs dyn %.1f",
			rBase.TxFootprints.Mean(), rDyn.TxFootprints.Mean())
	}
	if rBase.TxFootprints.Max() < 100 {
		t.Fatalf("baseline footprint max %d, want >= 100", rBase.TxFootprints.Max())
	}
}

// pageModeModule: thread 0 transactionally reads a shared page repeatedly;
// thread 1 eventually writes it, forcing a safe→unsafe transition.
func pageModeModule() *ir.Module {
	b := ir.NewBuilder("pagemode")
	b.GlobalPageAligned("shared", 512) // one full page
	b.Global("sink", 8)

	w := b.ThreadBody("worker", 1)
	isWriter := w.Cmp(ir.CmpEQ, w.Param(0), w.C(1))
	writer := w.NewBlock("writer")
	reader := w.NewBlock("reader")
	rLoop := w.NewBlock("rloop")
	rEnd := w.NewBlock("rend")
	w.CondBr(isWriter, writer, reader)

	// Reader: many TXs each reading a few words of the shared page.
	w.SetBlock(reader)
	i := w.C(0)
	w.Br(rLoop)
	w.SetBlock(rLoop)
	w.TxBegin()
	g := w.GlobalAddr("shared")
	v1 := w.Load(g, 0)
	v2 := w.Load(g, 64)
	s := w.GlobalAddr("sink")
	w.Store(s, 0, w.Add(v1, v2))
	w.TxEnd()
	w.MovTo(i, w.AddI(i, 1))
	c := w.Cmp(ir.CmpLT, i, w.C(200))
	w.CondBr(c, rLoop, rEnd)
	w.SetBlock(rEnd)
	w.RetVoid()

	// Writer: spin a while (reads of own scratch), then write shared page.
	w.SetBlock(writer)
	scratch := w.Alloca(8)
	j := w.C(0)
	spin := w.NewBlock("spin")
	wr := w.NewBlock("wr")
	w.Br(spin)
	w.SetBlock(spin)
	w.Store(scratch, 0, j)
	w.MovTo(j, w.AddI(j, 1))
	c2 := w.Cmp(ir.CmpLT, j, w.C(500))
	w.CondBr(c2, spin, wr)
	w.SetBlock(wr)
	w.TxBegin()
	g2 := w.GlobalAddr("shared")
	w.Store(g2, 128, w.C(7))
	w.TxEnd()
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(2)
	mn.Parallel(n, "worker")
	mn.RetVoid()
	return b.M
}

func TestPageModeTransitionAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hints = HintDynamic
	_, res := runModule(t, pageModeModule(), cfg)
	if res.VM.Transitions == 0 {
		t.Fatalf("no page transitions: %v", res)
	}
	if res.PageModeCycles == 0 {
		t.Fatalf("no page-mode cycles charged: %v", res)
	}
	// A page-mode abort only occurs if a reader TX was live at transition
	// time; with 200 reader TXs that is overwhelmingly likely.
	if res.Aborts[htm.AbortPageMode] == 0 {
		t.Logf("note: no page-mode abort observed (timing): %v", res)
	}
}

func TestBaselineHasNoPageModeMachinery(t *testing.T) {
	_, res := runModule(t, pageModeModule(), DefaultConfig())
	if res.VM.Transitions != 0 || res.PageModeCycles != 0 ||
		res.Aborts[htm.AbortPageMode] != 0 {
		t.Fatalf("baseline ran dynamic classification: %v", res)
	}
}

func TestL1TMCapacityViaSetConflicts(t *testing.T) {
	// 100 sequential blocks fit easily in a 512-block L1, so use a tiny L1
	// to force set-conflict evictions of tracked lines.
	cfg := DefaultConfig()
	cfg.HTM = HTML1TM
	cfg.Cache.L1Sets, cfg.Cache.L1Ways = 4, 2 // 8-block L1
	_, res := runModule(t, bigTxModule(1, 2, 40), cfg)
	if res.Aborts[htm.AbortCapacity] == 0 {
		t.Fatalf("L1TM with tiny L1 must capacity-abort: %v", res)
	}
}

func TestL1TMLargerCapacityThanP8(t *testing.T) {
	// 100-block TX: overflows P8's 64 entries but fits the 512-block L1.
	cfgP8 := DefaultConfig()
	_, rP8 := runModule(t, bigTxModule(1, 2, 100), cfgP8)
	cfgL1 := DefaultConfig()
	cfgL1.HTM = HTML1TM
	_, rL1 := runModule(t, bigTxModule(1, 2, 100), cfgL1)
	if rP8.Aborts[htm.AbortCapacity] == 0 {
		t.Fatalf("P8 should overflow: %v", rP8)
	}
	if rL1.Aborts[htm.AbortCapacity] != 0 {
		t.Fatalf("L1TM should fit 100 blocks: %v", rL1)
	}
}

func TestP8SUnboundedReadset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HTM = HTMP8S
	_, res := runModule(t, bigTxModule(2, 3, 100), cfg)
	if res.Aborts[htm.AbortCapacity] != 0 {
		t.Fatalf("P8S readset should not overflow: %v", res)
	}
}

func TestSpeedupFromHints(t *testing.T) {
	// The headline effect: dynamic hints must make the capacity-bound
	// workload faster than baseline P8.
	mod1 := bigTxModule(4, 4, 100)
	cfgBase := DefaultConfig()
	_, rBase := runModule(t, mod1, cfgBase)

	mod2 := bigTxModule(4, 4, 100)
	cfgDyn := DefaultConfig()
	cfgDyn.Hints = HintDynamic
	_, rDyn := runModule(t, mod2, cfgDyn)

	if rDyn.Cycles >= rBase.Cycles {
		t.Fatalf("no speedup: baseline %d cycles, HinTM-dyn %d", rBase.Cycles, rDyn.Cycles)
	}
}

func TestResultString(t *testing.T) {
	_, res := runModule(t, counterModule(4, 5), DefaultConfig())
	if res.String() == "" {
		t.Fatal("empty result string")
	}
	if res.TxAccesses() == 0 {
		t.Fatal("no transactional accesses counted")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 0
	if _, err := New(cfg, counterModule(1, 1)); err == nil {
		t.Fatal("invalid config accepted")
	}
	cfg = DefaultConfig()
	cfg.Cache.Cores = 4
	if _, err := New(cfg, counterModule(1, 1)); err == nil {
		t.Fatal("mismatched cache cores accepted")
	}
}

func TestHTMKindAndHintModeStrings(t *testing.T) {
	for _, k := range []HTMKind{HTMP8, HTMP8S, HTML1TM, HTMInfCap} {
		if k.String() == "" {
			t.Error("empty HTM name")
		}
	}
	for _, h := range []HintMode{HintNone, HintStatic, HintDynamic, HintFull} {
		if h.String() == "" {
			t.Error("empty hint name")
		}
	}
	if !HintFull.Static() || !HintFull.Dynamic() || HintNone.Static() {
		t.Error("hint mode predicates wrong")
	}
}
