package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hintm/internal/ir"
)

// livelockModule is a crafted livelock-prone program: each thread opens a
// transaction and then spins for an effectively unbounded number of
// iterations before reaching TxEnd. No commit, no fallback acquisition —
// exactly the no-forward-progress condition the watchdog exists to catch.
func livelockModule(nThreads int64) *ir.Module {
	b := ir.NewBuilder("livelock")
	b.Global("x", 8)

	w := b.ThreadBody("worker", 1)
	spin := w.NewBlock("spin")
	done := w.NewBlock("done")
	i := w.C(0)
	w.TxBegin()
	w.Br(spin)
	w.SetBlock(spin)
	g := w.GlobalAddr("x")
	v := w.Load(g, 0)
	w.Store(g, 0, w.AddI(v, 1))
	w.MovTo(i, w.AddI(i, 1))
	c := w.Cmp(ir.CmpLT, i, w.C(1_000_000_000_000))
	w.CondBr(c, spin, done)
	w.SetBlock(done)
	w.TxEnd()
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(nThreads)
	mn.Parallel(n, "worker")
	mn.RetVoid()
	return b.M
}

func TestWatchdogCatchesLivelock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 50_000
	cfg.MaxSteps = 50_000_000 // safety net: the test fails, never hangs
	m, err := New(cfg, livelockModule(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(context.Background())
	if err == nil {
		t.Fatal("livelocked run completed")
	}
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("err = %v, want ErrLivelock", err)
	}
	var lle *LivelockError
	if !errors.As(err, &lle) {
		t.Fatalf("err %T not a *LivelockError", err)
	}
	if lle.SinceProgress <= cfg.WatchdogCycles {
		t.Errorf("stall %d not beyond watchdog %d", lle.SinceProgress, cfg.WatchdogCycles)
	}
	if lle.Commits != 0 || lle.FallbackCommits != 0 {
		t.Errorf("livelock error reports progress: %+v", lle)
	}
	if len(lle.Cores) != cfg.Contexts() {
		t.Fatalf("snapshot has %d contexts, want %d", len(lle.Cores), cfg.Contexts())
	}
	// The spinning thread must show up in-TX with a meaningful location.
	var inTx *CoreSnapshot
	for i := range lle.Cores {
		if lle.Cores[i].InTx {
			inTx = &lle.Cores[i]
			break
		}
	}
	if inTx == nil {
		t.Fatalf("no context in-TX in snapshot: %+v", lle.Cores)
	}
	if !strings.Contains(inTx.Where, "worker/") {
		t.Errorf("stuck thread located at %q, want a worker position", inTx.Where)
	}
	snap := lle.Snapshot()
	for _, want := range []string{"ctx", "where", "in-tx", "worker/"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 10_000
	m, err := New(cfg, counterModule(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatalf("healthy run tripped a guard: %v", err)
	}
}

func TestWatchdogIgnoresNonTxPhases(t *testing.T) {
	// bigTxModule's long non-transactional init loop must not count as a
	// stall even under an aggressively small watchdog.
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 2_000
	m, err := New(cfg, bigTxModule(1, 2, 200))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatalf("non-transactional phase tripped the watchdog: %v", err)
	}
}

func TestMaxCyclesCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 5_000
	m, err := New(cfg, counterModule(8, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(context.Background())
	if err == nil {
		t.Fatal("capped run completed")
	}
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	var cle *CycleLimitError
	if !errors.As(err, &cle) {
		t.Fatalf("err %T not a *CycleLimitError", err)
	}
	if cle.Limit != 5_000 || cle.Cycles <= cle.Limit {
		t.Errorf("limit error inconsistent: %+v", cle)
	}
}

func TestGuardConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = -1
	if _, err := New(cfg, counterModule(1, 1)); err == nil {
		t.Error("negative MaxCycles accepted")
	}
	cfg = DefaultConfig()
	cfg.WatchdogCycles = -1
	if _, err := New(cfg, counterModule(1, 1)); err == nil {
		t.Error("negative WatchdogCycles accepted")
	}
}
