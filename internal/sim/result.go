package sim

import (
	"fmt"
	"strings"

	"hintm/internal/cache"
	"hintm/internal/fault"
	"hintm/internal/htm"
	"hintm/internal/stats"
	"hintm/internal/vmem"
)

// Result aggregates one simulation run's statistics.
type Result struct {
	// Cycles is the run's wall-clock length: the maximum context clock.
	Cycles int64
	// Steps is the number of executed instructions across all contexts.
	Steps int64

	// Commits counts HTM commits; FallbackCommits counts critical sections
	// completed under the fallback lock.
	Commits, FallbackCommits uint64
	// Aborts and CyclesLost break down aborts and discarded work by reason.
	Aborts     map[htm.AbortReason]uint64
	CyclesLost map[htm.AbortReason]int64
	// PageModeCycles is the aggregate cost of page-mode transitions
	// (initiator + slave shootdown charges), paper Fig. 4b's secondary axis.
	PageModeCycles int64

	// Transactional access breakdown (paper Fig. 5).
	StaticSafeAccesses uint64
	DynSafeAccesses    uint64
	UnsafeTxAccesses   uint64
	NonTxAccesses      uint64
	// SuspendedAccesses ran between TxSuspend/TxResume escape actions.
	SuspendedAccesses uint64

	// TxFootprints is the committed-TX tracked-footprint histogram in
	// cache blocks (paper Fig. 6).
	TxFootprints *stats.Hist

	Cache cache.Stats
	VM    vmem.Stats
	// Faults counts injected events when a fault plan was active (zero
	// otherwise) — campaigns assert on it to prove they were not vacuous.
	Faults fault.Stats
}

func newResult() *Result {
	return &Result{
		Aborts:       make(map[htm.AbortReason]uint64),
		CyclesLost:   make(map[htm.AbortReason]int64),
		TxFootprints: stats.NewHist(),
	}
}

// TotalAborts sums aborts across reasons.
func (r *Result) TotalAborts() uint64 {
	var n uint64
	for _, c := range r.Aborts {
		n += c
	}
	return n
}

// TxAccesses returns the total transactional access count.
func (r *Result) TxAccesses() uint64 {
	return r.StaticSafeAccesses + r.DynSafeAccesses + r.UnsafeTxAccesses
}

// SafeFraction returns the fraction of transactional accesses hinted safe.
func (r *Result) SafeFraction() float64 {
	total := r.TxAccesses()
	if total == 0 {
		return 0
	}
	return float64(r.StaticSafeAccesses+r.DynSafeAccesses) / float64(total)
}

// PageModeCycleFraction returns page-mode transition cost relative to the
// run length (Fig. 4b secondary axis).
func (r *Result) PageModeCycleFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.PageModeCycles) / float64(r.Cycles)
}

// String summarizes the run.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles=%d commits=%d fallback=%d aborts=%d",
		r.Cycles, r.Commits, r.FallbackCommits, r.TotalAborts())
	for _, reason := range htm.AbortReasons {
		if n := r.Aborts[reason]; n > 0 {
			fmt.Fprintf(&sb, " %s=%d", reason, n)
		}
	}
	return sb.String()
}
