package sim

import (
	"context"
	"testing"

	"hintm/internal/fault"
	"hintm/internal/htm"
	"hintm/internal/mem"
)

// Fault campaigns must perturb timing, never semantics: every test here runs
// a workload under injection and asserts both that the faults actually fired
// (the campaign was not vacuous) and that the program's outputs are exactly
// what a fault-free run produces.

func TestSpuriousCampaignPreservesSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.Plan{SpuriousProb: 0.2}
	mod := counterModule(8, 20)
	m, res := runModule(t, mod, cfg)
	if got := m.memory.ReadWord(m.prog.GlobalAddr("ctr")); got != 160 {
		t.Fatalf("counter = %d under spurious campaign, want 160", got)
	}
	if res.Faults.SpuriousAborts == 0 {
		t.Fatalf("campaign vacuous: no spurious aborts fired (%v)", res)
	}
	if res.Aborts[htm.AbortSpurious] != res.Faults.SpuriousAborts {
		t.Fatalf("abort stats disagree: reason says %d, engine says %d",
			res.Aborts[htm.AbortSpurious], res.Faults.SpuriousAborts)
	}
	if res.Commits+res.FallbackCommits != 160 {
		t.Fatalf("commits %d + fallback %d != 160", res.Commits, res.FallbackCommits)
	}
}

func TestStormCampaignPreservesSemantics(t *testing.T) {
	// Dynamic hints mark the private read buffers safe; the storm forces
	// those pages back to unsafe mid-run, exercising the shootdown +
	// page-mode-abort path far more often than organic sharing would.
	cfg := DefaultConfig()
	cfg.Hints = HintDynamic
	cfg.Faults = fault.Plan{StormProb: 0.02}
	m, res := runModule(t, bigTxModule(2, 3, 100), cfg)
	if res.Faults.StormsForced == 0 {
		t.Fatalf("campaign vacuous: no storms forced (%v)", res)
	}
	base := m.prog.GlobalAddr("out")
	want := int64(99 * 100 / 2)
	for tid := int64(0); tid < 2; tid++ {
		if got := m.memory.ReadWord(base + mem.Addr(tid*8)); got != want {
			t.Fatalf("out[%d] = %d under storm campaign, want %d", tid, got, want)
		}
	}
	if res.VM.Transitions == 0 {
		t.Fatalf("storms fired but no page transitions recorded: %v", res)
	}
}

func TestInvalDelayCampaignPreservesSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.Plan{InvalDelaySteps: 100, InvalBurst: 4}
	mod := counterModule(8, 30)
	m, res := runModule(t, mod, cfg)
	if got := m.memory.ReadWord(m.prog.GlobalAddr("ctr")); got != 240 {
		t.Fatalf("counter = %d under inval-delay campaign, want 240", got)
	}
	if res.Faults.InvalsHeld == 0 {
		t.Fatalf("campaign vacuous: no invalidations held (%v)", res)
	}
	if res.Commits+res.FallbackCommits != 240 {
		t.Fatalf("commits %d + fallback %d != 240", res.Commits, res.FallbackCommits)
	}
}

func TestCombinedCampaignPreservesSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hints = HintFull
	cfg.Faults = fault.Plan{
		SpuriousProb:    0.1,
		StormProb:       0.01,
		InvalDelaySteps: 50,
		InvalBurst:      8,
	}
	mod := classified(t, bigTxModule(4, 4, 100))
	m, res := runModule(t, mod, cfg)
	base := m.prog.GlobalAddr("out")
	want := int64(99 * 100 / 2)
	for tid := int64(0); tid < 4; tid++ {
		if got := m.memory.ReadWord(base + mem.Addr(tid*8)); got != want {
			t.Fatalf("out[%d] = %d under combined campaign, want %d", tid, got, want)
		}
	}
	if res.Faults.SpuriousAborts == 0 {
		t.Fatalf("combined campaign fired no spurious aborts: %+v", res.Faults)
	}
}

// Same plan + same seed ⇒ bit-identical run, including the injected faults.
func TestFaultCampaignReplaysDeterministically(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.Plan{SpuriousProb: 0.15, InvalDelaySteps: 80, InvalBurst: 4}
	_, r1 := runModule(t, counterModule(8, 20), cfg)
	_, r2 := runModule(t, counterModule(8, 20), cfg)
	if r1.Cycles != r2.Cycles || r1.Steps != r2.Steps || r1.Faults != r2.Faults ||
		r1.TotalAborts() != r2.TotalAborts() {
		t.Fatalf("campaign replay diverged:\n%v (faults %+v)\n%v (faults %+v)",
			r1, r1.Faults, r2, r2.Faults)
	}

	cfg2 := cfg
	cfg2.Seed = 2
	_, r3 := runModule(t, counterModule(8, 20), cfg2)
	if r1.Cycles == r3.Cycles && r1.Faults == r3.Faults {
		t.Log("note: seeds 1 and 2 produced identical campaigns (unlikely but legal)")
	}
}

func TestFaultFreeRunUnchangedByFaultPlumbing(t *testing.T) {
	// The zero plan must not even allocate an engine: results match a config
	// that never heard of faults.
	cfg := DefaultConfig()
	_, r1 := runModule(t, counterModule(8, 10), cfg)
	cfg.Faults = fault.Plan{} // explicit zero
	m, r2 := runModule(t, counterModule(8, 10), cfg)
	if m.faults != nil {
		t.Fatal("zero plan allocated a fault engine")
	}
	if r1.Cycles != r2.Cycles || r1.Steps != r2.Steps {
		t.Fatalf("zero plan changed the run: %v vs %v", r1, r2)
	}
}

func TestPanicInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.Plan{PanicTx: 5}
	m, err := New(cfg, counterModule(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("PanicTx did not panic")
		}
		ip, ok := v.(fault.InjectedPanic)
		if !ok {
			t.Fatalf("panic value %T, want fault.InjectedPanic", v)
		}
		if ip.Tx != 5 {
			t.Errorf("panicked at tx %d, want 5", ip.Tx)
		}
	}()
	m.Run(context.Background())
}
