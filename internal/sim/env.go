package sim

import (
	"fmt"

	"hintm/internal/fault"
	"hintm/internal/htm"
	"hintm/internal/interp"
	"hintm/internal/mem"
	"hintm/internal/obs"
	"hintm/internal/vmem"
)

// The Machine implements interp.Env: every architectural side effect of the
// running program funnels through these methods.
var _ interp.Env = (*Machine)(nil)

// Load implements interp.Env.
func (m *Machine) Load(t *interp.Thread, addr mem.Addr, staticSafe bool) (int64, interp.Ctrl) {
	c := m.ctxOf(t)
	if ctrl := m.access(c, t, addr, false, staticSafe); ctrl != interp.CtrlOK {
		return 0, ctrl
	}
	// Lazy versioning: the transaction's own buffered stores forward to its
	// loads; memory still holds pre-transaction values.
	if c.txActive && c.ctrl.Lazy() {
		if v, ok := c.ctrl.ForwardRead(uint64(addr)); ok {
			return v, interp.CtrlOK
		}
	}
	return m.memory.ReadWord(addr), interp.CtrlOK
}

// Store implements interp.Env.
func (m *Machine) Store(t *interp.Thread, addr mem.Addr, val int64, staticSafe bool) interp.Ctrl {
	c := m.ctxOf(t)
	// The safety hint must be resolved before logging: hinted-safe stores
	// skip the undo log (they are initializing). Dynamic classification
	// never marks stores safe, so only the static hint matters here.
	safe := staticSafe && m.cfg.Hints.Static()
	if ctrl := m.access(c, t, addr, true, staticSafe); ctrl != interp.CtrlOK {
		return ctrl
	}
	if c.txActive && !c.suspended && !safe {
		if c.ctrl.Lazy() {
			// Lazy versioning: buffer the store; memory is written at commit.
			c.ctrl.BufferWrite(uint64(addr), val)
			return interp.CtrlOK
		}
		c.ctrl.RecordUndo(uint64(addr), m.memory.ReadWord(addr))
	}
	m.memory.WriteWord(addr, val)
	return interp.CtrlOK
}

// access performs the shared translation / coherence / tracking pipeline of
// one memory access. It returns CtrlAbort if the acting context's own TX
// aborted (thread already rolled back).
func (m *Machine) access(c *hwContext, t *interp.Thread, addr mem.Addr, write, staticSafe bool) interp.Ctrl {
	page := addr.Page()
	block := addr.Block()

	if m.profiler != nil {
		m.profiler.OnAccess(t.ID, addr, write, c.txActive || t.Fallback)
	}

	// 0. Fault layer: invalidations held for this context come due at its
	// next access, and an armed spurious abort (interrupt/TLB-miss model)
	// fires before the access takes architectural effect.
	if m.faults != nil {
		if m.deliverHeldInvals(c, false) {
			return interp.CtrlAbort
		}
		if c.txActive && !c.suspended && m.faults.SpuriousAbortNow(c.id) {
			if m.tracer != nil {
				m.tracer.Instant(c.id, c.cycle, obs.EvFaultSpurious, uint64(block))
			}
			m.abortTx(c, htm.AbortSpurious)
			return interp.CtrlAbort
		}
	}

	// 1. Translation and dynamic classification (paper §IV-B). Statically
	// safe instructions skip dynamic classification but still translate.
	out := m.vm.Access(c.id, t.ID, page, write)
	c.cycle += out.FaultCycles
	if m.tracer != nil && out.MinorFault {
		m.tracer.Instant(c.id, c.cycle, obs.EvMinorFault, uint64(page))
	}
	if out.Transition != nil {
		if selfAborted := m.pageModeTransition(c, out); selfAborted {
			return interp.CtrlAbort
		}
	}

	// 1b. Fault layer: page-mode abort storm — force the touched page
	// unsafe, triggering the full shootdown + page-mode-abort path.
	if m.faults != nil && m.faults.ForceUnsafe(c.id) {
		if tr := m.vm.ForceUnsafe(c.id, page); tr != nil {
			m.faults.StormForced()
			if m.tracer != nil {
				m.tracer.Instant(c.id, c.cycle, obs.EvFaultStorm, uint64(page))
			}
			c.cycle += tr.InitiatorCycles
			if selfAborted := m.pageModeTransition(c, vmem.Outcome{Transition: tr}); selfAborted {
				return interp.CtrlAbort
			}
		}
	}

	useStatic := staticSafe && m.cfg.Hints.Static()
	useDyn := out.Safe && !write && !useStatic
	safe := useStatic || useDyn

	// 2. Access-class accounting (paper Fig. 5), transactional accesses only.
	if c.suspended {
		m.res.SuspendedAccesses++
	} else if c.txActive || t.Fallback {
		switch {
		case useStatic:
			m.res.StaticSafeAccesses++
		case useDyn:
			m.res.DynSafeAccesses++
		default:
			m.res.UnsafeTxAccesses++
		}
	} else {
		m.res.NonTxAccesses++
	}

	// 3. Cache + coherence.
	res := m.caches.Access(c.core, block, write)
	c.cycle += res.Latency

	// 4. L1 evictions: contexts on this core may lose in-L1 tracked state.
	for _, ev := range res.Evicted {
		if m.tracer != nil {
			m.tracer.Instant(c.id, c.cycle, obs.EvEviction, ev)
		}
		for _, o := range c.coreMates {
			if !o.txActive {
				continue
			}
			if r := o.ctrl.OnLocalEviction(ev); r != htm.AbortNone {
				if r == htm.AbortCapacity {
					o.capStructure = "l1-eviction"
				}
				if o == c {
					m.abortTx(c, r)
					return interp.CtrlAbort
				}
				m.abortTx(o, r)
			}
		}
	}

	// 5. Conflict detection: bus snoops reach contexts on other cores; SMT
	// siblings observe every access through the shared L1.
	if res.BusOp {
		if m.faults != nil {
			for _, o := range m.ctxs {
				if o.core == c.core {
					continue
				}
				// Fault layer: hold delivery only when the op misses the
				// victim's write set (probed with a remote-read check). An op
				// hitting it cannot be delayed — the ownership transfer is on
				// this access's critical path, and skipping the immediate abort
				// would let an undo-log restore clobber our write (eager) or
				// let us read uncommitted data. HoldInval fires for idle
				// contexts too, so this path cannot take the txActive shortcut.
				if o.ctrl.OnRemoteOp(block, false) == htm.AbortNone &&
					m.faults.HoldInval(o.id, block, write, m.res.Steps) {
					if m.tracer != nil {
						m.tracer.Instant(o.id, o.cycle, obs.EvFaultInvalHeld, block)
					}
					continue
				}
				if r := o.ctrl.OnRemoteOp(block, write); r != htm.AbortNone {
					m.abortTx(o, r)
				}
			}
		} else {
			for _, o := range m.ctxs {
				if o.core == c.core || !o.txActive {
					continue
				}
				if r := o.ctrl.OnRemoteOp(block, write); r != htm.AbortNone {
					m.abortTx(o, r)
				}
			}
		}
	}
	for _, o := range c.siblings {
		if !o.txActive {
			continue
		}
		if r := o.ctrl.OnRemoteOp(block, write); r != htm.AbortNone {
			m.abortTx(o, r)
		}
	}

	// 6. Transactional tracking with the safety hint. Escape-action mode
	// (TxSuspend) bypasses tracking entirely, like a blanket safe hint that
	// also covers stores and skips the undo log.
	if c.txActive && !c.suspended {
		if c.intro != nil {
			c.intro.counts[block]++
			if safe {
				c.intro.skipped[block] = struct{}{}
			}
		}
		// STM baseline: every instrumented (unsafe) access pays the
		// software barrier; hinted-safe accesses elide it — the very
		// optimization HinTM's classification descends from (§II-C).
		if m.cfg.HTM == HTMSTM && !safe {
			if write {
				c.cycle += m.cfg.STMWriteBarrier
			} else {
				c.cycle += m.cfg.STMReadBarrier
			}
		}
		if r := c.ctrl.Access(block, page, write, safe); r != htm.AbortNone {
			m.abortTx(c, r)
			return interp.CtrlAbort
		}
	}
	return interp.CtrlOK
}

// pageModeTransition handles a safe→unsafe page transition: slave shootdown
// charges, conservative aborts of every TX that touched the page (paper
// §III-B), and the Fig.-4b page-mode cost accounting.
func (m *Machine) pageModeTransition(c *hwContext, out vmem.Outcome) (selfAborted bool) {
	tr := out.Transition
	cost := tr.InitiatorCycles
	if m.tracer != nil {
		m.tracer.Instant(c.id, c.cycle, obs.EvPageTransition, tr.Page)
	}
	for _, s := range tr.Slaves {
		m.ctxs[s].cycle += m.vm.SlaveCost()
		m.syncEff(m.ctxs[s])
		cost += m.vm.SlaveCost()
		if m.tracer != nil {
			m.tracer.Instant(s, m.ctxs[s].cycle, obs.EvTLBShootdown, tr.Page)
		}
	}
	m.res.PageModeCycles += cost

	for _, o := range m.ctxs {
		if o == c {
			continue
		}
		if r := o.ctrl.OnPageModeTransition(tr.Page); r != htm.AbortNone {
			m.abortTx(o, r)
		}
	}
	if c.ctrl.Active() && c.ctrl.TouchedPage(tr.Page) {
		m.abortTx(c, htm.AbortPageMode)
		return true
	}
	return false
}

// deliverHeldInvals offers context c its held bus invalidations: the due
// prefix (or a burst) normally, everything when flush is set (pre-commit).
// It reports whether the delivery aborted c's own transaction; any
// invalidations popped after the abort are dropped, which is equivalent to
// delivering them while no transaction is active.
func (m *Machine) deliverHeldInvals(c *hwContext, flush bool) (selfAborted bool) {
	var pend []fault.Inval
	if flush {
		pend = m.faults.FlushInvals(c.id)
	} else {
		pend = m.faults.DueInvals(c.id, m.res.Steps)
	}
	for _, iv := range pend {
		if r := c.ctrl.OnRemoteOp(iv.Block, iv.Write); r != htm.AbortNone {
			m.abortTx(c, r)
			return true
		}
	}
	return false
}

// Malloc implements interp.Env.
func (m *Machine) Malloc(t *interp.Thread, size int64) mem.Addr {
	c := m.ctxOf(t)
	c.cycle += 30 // allocator fast-path cost
	return m.alloc.Malloc(t.ID, size)
}

// Free implements interp.Env.
func (m *Machine) Free(t *interp.Thread, addr mem.Addr, size int64) {
	c := m.ctxOf(t)
	c.cycle += 15
	m.alloc.Free(t.ID, addr, size)
}

// StackAlloc implements interp.Env (words → bytes).
func (m *Machine) StackAlloc(t *interp.Thread, words int64) mem.Addr {
	return m.alloc.StackAlloc(t.ID, words*mem.WordSize)
}

// StackRelease implements interp.Env.
func (m *Machine) StackRelease(t *interp.Thread, base mem.Addr) {
	m.alloc.StackRelease(t.ID, base)
}

// TxBegin implements interp.Env: it is re-consulted after every abort, so
// the retry/fallback policy lives here.
func (m *Machine) TxBegin(t *interp.Thread) interp.Ctrl {
	c := m.ctxOf(t)
	if m.fallbackHolder != nil && m.fallbackHolder != c {
		c.cycle += m.cfg.FallbackPollCost
		return interp.CtrlStall
	}
	c.cycle += m.cfg.TxBeginCost
	if c.fallbackNext {
		// Acquire the global fallback lock; running TXs subscribed to the
		// lock abort (they would otherwise miss our unprotected writes).
		m.fallbackHolder = c
		for _, o := range m.ctxs {
			if o != c && o.ctrl.Active() {
				m.abortTx(o, htm.AbortFallbackLock)
			}
		}
		t.Fallback = true
		c.txStart = c.cycle
		m.fallbackAcquires++
		if m.tracer != nil {
			m.tracer.TxBegin(c.id, t.ID, c.cycle, true)
		}
		return interp.CtrlOK
	}
	t.Capture(m.alloc.StackTop(t.ID))
	c.ctrl.Begin()
	c.txActive = true
	if m.faults != nil {
		m.faults.TxBegun(c.id)
	}
	t.InTx = true
	c.txStart = c.cycle
	if m.profiler != nil {
		m.notifyTx(t.ID, TxEventBegin, htm.AbortNone)
	}
	if m.tracer != nil {
		c.intro.reset()
		m.tracer.TxBegin(c.id, t.ID, c.cycle, false)
	}
	return interp.CtrlOK
}

// TxSuspend implements interp.Env: enter escape-action mode (paper §VII).
// Real HTMs charge a pipeline drain for suspend/resume; EscapeCost models it.
func (m *Machine) TxSuspend(t *interp.Thread) interp.Ctrl {
	c := m.ctxOf(t)
	if c.ctrl.Active() {
		c.suspended = true
		c.cycle += m.cfg.EscapeCost
	}
	return interp.CtrlOK
}

// TxResume implements interp.Env: leave escape-action mode.
func (m *Machine) TxResume(t *interp.Thread) interp.Ctrl {
	c := m.ctxOf(t)
	if c.suspended {
		c.suspended = false
		c.cycle += m.cfg.EscapeCost
	}
	return interp.CtrlOK
}

// TxEnd implements interp.Env.
func (m *Machine) TxEnd(t *interp.Thread) interp.Ctrl {
	c := m.ctxOf(t)
	// Fault layer: a transaction may never commit past a pending
	// invalidation — flush the whole inbox first. This is what keeps
	// delayed delivery semantics-preserving: the worst it can do is turn an
	// early abort into a late one.
	if m.faults != nil && m.deliverHeldInvals(c, true) {
		return interp.CtrlAbort
	}
	c.suspended = false
	c.cycle += m.cfg.TxCommitCost
	if t.Fallback {
		m.fallbackHolder = nil
		t.Fallback = false
		c.fallbackNext = false
		c.retries = 0
		m.res.FallbackCommits++
		if m.tracer != nil {
			m.tracer.TxEnd(obs.TxAttempt{
				Ctx: c.id, TID: t.ID,
				Start: c.txStart, End: c.cycle,
				Outcome: obs.OutcomeFallbackCommit, Fallback: true,
			})
		}
		return interp.CtrlOK
	}
	m.res.TxFootprints.Add(c.ctrl.FootprintBlocks())
	// Commit spans are captured before Commit() resets the tracker.
	var span obs.TxAttempt
	if m.tracer != nil {
		span = obs.TxAttempt{
			Ctx: c.id, TID: t.ID, Start: c.txStart,
			Outcome:     obs.OutcomeCommit,
			ReadSet:     c.ctrl.ReadSetSize(),
			WriteSet:    c.ctrl.WriteSetSize(),
			Tracked:     c.ctrl.FootprintBlocks(),
			SafeSkipped: len(c.intro.skipped),
		}
	}
	if c.ctrl.Lazy() {
		// Drain the write buffer: the lines are already owned (conflict
		// detection acquired them eagerly), so the drain is local.
		n := c.ctrl.Drain(func(a uint64, v int64) {
			m.memory.WriteWord(mem.Addr(a), v)
		})
		c.cycle += int64(n) * m.cfg.Cache.L1Latency
	}
	c.ctrl.Commit()
	c.txActive = false
	t.InTx = false
	c.retries = 0
	m.res.Commits++
	if m.profiler != nil {
		m.notifyTx(t.ID, TxEventCommit, htm.AbortNone)
	}
	if m.tracer != nil {
		span.End = c.cycle
		m.tracer.TxEnd(span)
	}
	return interp.CtrlOK
}

// Parallel implements interp.Env: the first call forks the workers and
// stalls main; once every worker finishes, the re-executed Parallel
// completes. Page-sharing state resets at region start so that dynamic
// classification tracks the parallel region's sharing behaviour (setup
// writes by main would otherwise poison every page).
func (m *Machine) Parallel(t *interp.Thread, n int64, fn string, args []int64) interp.Ctrl {
	if m.parallel != nil {
		if m.parallel.finished {
			m.parallel = nil
			return interp.CtrlOK
		}
		return interp.CtrlStall
	}
	if n <= 0 || n > int64(len(m.ctxs)) {
		panic(fmt.Sprintf("sim: parallel of %d threads on %d contexts", n, len(m.ctxs)))
	}
	m.vm.ResetSharing()
	body := m.prog.M.Func(fn)
	ps := &parallelState{}
	m.runnable = m.runnable[:0]
	m.effCache = m.effCache[:0]
	for i := int64(0); i < n; i++ {
		tid := int(i)
		base := m.alloc.StackAlloc(tid, body.AllocaWords*mem.WordSize)
		th := m.prog.NewThread(tid, fn, append([]int64{i}, args...), base, m.cfg.Seed)
		ctx := m.ctxs[tid]
		ctx.thread = th
		if ctx.cycle < m.ctxs[0].cycle {
			ctx.cycle = m.ctxs[0].cycle
		}
		m.byThread[tid] = ctx
		m.runnable = append(m.runnable, ctx)
		ctx.runIdx = int32(len(m.runnable) - 1)
		m.effCache = append(m.effCache, ctx.effectiveCycle())
		ps.workers = append(ps.workers, th)
	}
	m.parallel = ps
	return interp.CtrlStall
}

// AbortHint implements interp.Env.
func (m *Machine) AbortHint(t *interp.Thread, cond int64) interp.Ctrl {
	c := m.ctxOf(t)
	if cond != 0 && c.ctrl.Active() {
		m.abortTx(c, htm.AbortExplicit)
		return interp.CtrlAbort
	}
	return interp.CtrlOK
}
