package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistBasics(t *testing.T) {
	h := NewHist()
	for _, v := range []int{1, 2, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Mean(); got < 2.33 || got > 2.34 {
		t.Fatalf("Mean = %f", got)
	}
	if h.Max() != 3 {
		t.Fatalf("Max = %d", h.Max())
	}
}

// TestHistEmpty pins the documented zero values of every summary accessor
// on a zero-sample histogram: whatever the internals do, an empty Hist must
// answer 0 everywhere, never panic, and never leak an implementation
// accident (such as Percentile indexing an empty value list).
func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.N() != 0 {
		t.Errorf("N = %d, want 0", h.N())
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("Mean = %f, want 0", got)
	}
	if got := h.Max(); got != 0 {
		t.Errorf("Max = %d, want 0", got)
	}
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("Percentile(%v) = %d, want 0", p, got)
		}
	}
	for i, c := range h.CDF([]int{-1, 0, 7}) {
		if c != 0 {
			t.Errorf("CDF[%d] = %f, want 0", i, c)
		}
	}
	if got := h.FractionAbove(0); got != 0 {
		t.Errorf("FractionAbove = %f, want 0", got)
	}
}

// Max must report the true maximum for all-negative histograms, not the
// zero-initialized accumulator.
func TestHistMaxNegative(t *testing.T) {
	h := NewHist()
	for _, v := range []int{-5, -9, -2} {
		h.Add(v)
	}
	if got := h.Max(); got != -2 {
		t.Errorf("Max = %d, want -2", got)
	}
}

func TestHistCDF(t *testing.T) {
	h := NewHist()
	for v := 1; v <= 10; v++ {
		h.Add(v)
	}
	cdf := h.CDF([]int{0, 5, 10, 20})
	want := []float64{0, 0.5, 1, 1}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("CDF[%d] = %f, want %f", i, cdf[i], want[i])
		}
	}
	if got := h.FractionAbove(8); got < 0.199 || got > 0.201 {
		t.Errorf("FractionAbove(8) = %f", got)
	}
}

func TestHistPercentile(t *testing.T) {
	h := NewHist()
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Errorf("p50 = %d", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Errorf("p100 = %d", p)
	}
}

func TestHistCDFMonotoneProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHist()
		for _, v := range vals {
			h.Add(int(v))
		}
		points := []int{0, 16, 32, 64, 128, 256}
		cdf := h.CDF(points)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return len(vals) == 0 || cdf[len(cdf)-1] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	a.Add(1)
	b.Add(2)
	b.Add(2)
	a.Merge(b)
	if a.N() != 3 || a.Max() != 2 {
		t.Fatalf("merged N=%d max=%d", a.N(), a.Max())
	}
}

func TestEmptyHistSafe(t *testing.T) {
	h := NewHist()
	if h.Mean() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty hist should return zeros")
	}
	if h.CDF([]int{5})[0] != 0 {
		t.Fatal("empty CDF should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("app", "speedup")
	tb.Row("labyrinth", 2.98)
	tb.Row("vacation", 1.18)
	out := tb.String()
	if !strings.Contains(out, "labyrinth") || !strings.Contains(out, "2.980") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("separator line missing: %q", lines[1])
	}
}

func TestRatioAndPct(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio broken")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio must guard division by zero")
	}
	if Pct(0.25) != "25.0%" {
		t.Errorf("Pct = %q", Pct(0.25))
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("%")
	c.Bar("labyrinth", 75.2)
	c.Bar("kmeans", 0)
	c.Bar("tiny", 0.5)
	out := c.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "█") || !strings.Contains(lines[0], "75.20%") {
		t.Fatalf("bar line wrong: %q", lines[0])
	}
	if strings.Contains(lines[1], "█") {
		t.Fatalf("zero bar should be empty: %q", lines[1])
	}
	// Non-zero values always get at least one cell.
	if !strings.Contains(lines[2], "█") {
		t.Fatalf("tiny bar should be visible: %q", lines[2])
	}
	if (&BarChart{}).String() != "" {
		t.Fatal("empty chart should render nothing")
	}
}
