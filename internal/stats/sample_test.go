package stats

import (
	"math"
	"testing"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSampleAggregates(t *testing.T) {
	tests := []struct {
		name                 string
		xs                   []float64
		mean, median, varian float64
		min, max             float64
	}{
		{"empty", nil, 0, 0, 0, 0, 0},
		{"single", []float64{7}, 7, 7, 0, 7, 7},
		{"pair", []float64{2, 4}, 3, 3, 2, 2, 4},
		{"odd", []float64{5, 1, 3}, 3, 3, 4, 1, 5},
		{"even", []float64{1, 2, 3, 4}, 2.5, 2.5, 5.0 / 3.0, 1, 4},
		{"constant", []float64{2, 2, 2, 2}, 2, 2, 0, 2, 2},
		{"negative", []float64{-3, -1, -2}, -2, -2, 1, -3, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !close(got, tt.mean) {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Median(tt.xs); !close(got, tt.median) {
				t.Errorf("Median = %v, want %v", got, tt.median)
			}
			if got := Variance(tt.xs); !close(got, tt.varian) {
				t.Errorf("Variance = %v, want %v", got, tt.varian)
			}
			if got := StdDev(tt.xs); !close(got, math.Sqrt(tt.varian)) {
				t.Errorf("StdDev = %v, want %v", got, math.Sqrt(tt.varian))
			}
			s := Summarize(tt.xs)
			if len(tt.xs) == 0 {
				if s != (Summary{}) {
					t.Errorf("Summarize(empty) = %+v, want zero", s)
				}
				return
			}
			if s.N != len(tt.xs) || !close(s.Mean, tt.mean) || !close(s.Median, tt.median) ||
				!close(s.Variance, tt.varian) || !close(s.Min, tt.min) || !close(s.Max, tt.max) {
				t.Errorf("Summarize = %+v", s)
			}
		})
	}
}

// Median must not reorder the caller's slice.
func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestCohenD(t *testing.T) {
	tests := []struct {
		name   string
		a, b   []float64
		want   float64
		wantOK bool
	}{
		// Single-seed samples carry no spread information: undefined, not
		// a crash — the verdict layer reports INCONCLUSIVE.
		{"single-seed-a", []float64{1}, []float64{2, 3}, 0, false},
		{"single-seed-b", []float64{1, 2}, []float64{3}, 0, false},
		{"both-empty", nil, nil, 0, false},
		// Identical constant levels: pooled sd 0 and equal means — no
		// standardized effect exists. Must be ok=false, not 0/0.
		{"identical-levels", []float64{5, 5, 5}, []float64{5, 5, 5}, 0, false},
		// Zero-variance samples with different means would divide by zero;
		// the contract is ok=false so judges turn it into INCONCLUSIVE.
		{"zero-variance-diff-means", []float64{1, 1, 1}, []float64{2, 2, 2}, 0, false},
		// sd(a)=sd(b)=1, means 4 vs 2 -> d = 2.
		{"well-defined", []float64{3, 4, 5}, []float64{1, 2, 3}, 2, true},
		{"sign", []float64{1, 2, 3}, []float64{3, 4, 5}, -2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, ok := CohenD(tt.a, tt.b)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v (d=%v)", ok, tt.wantOK, d)
			}
			if !close(d, tt.want) {
				t.Errorf("d = %v, want %v", d, tt.want)
			}
		})
	}
}
