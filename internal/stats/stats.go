// Package stats provides the counters, histograms, CDFs and text tables the
// simulator and the experiment harness use to report results in the shape of
// the paper's figures.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Hist is an integer-valued histogram (e.g. committed transaction footprints
// in cache blocks, paper Fig. 6).
type Hist struct {
	counts map[int]uint64
	n      uint64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{counts: make(map[int]uint64)} }

// Add records one observation.
func (h *Hist) Add(v int) {
	h.counts[v]++
	h.n++
}

// N returns the observation count.
func (h *Hist) N() uint64 { return h.n }

// Empty-histogram contract: a Hist with zero observations has no
// distribution to summarize, so every summary accessor returns its
// documented zero value — Mean, Max and Percentile return 0, CDF returns
// all-zero probabilities, FractionAbove returns 0 — rather than whatever
// the implementation would happen to produce. TestHistEmpty pins this.

// Mean returns the average observation, 0 when empty.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.n)
}

// Max returns the largest observation, 0 when empty. Observations may be
// negative (Add takes any int): the maximum of an all-negative histogram is
// its true (negative) largest value, not the accidental 0 the old
// zero-initialized scan returned.
func (h *Hist) Max() int {
	if h.n == 0 {
		return 0
	}
	max := math.MinInt
	for v := range h.counts {
		if v > max {
			max = v
		}
	}
	return max
}

// CDF returns P(X <= x) for each x in points (points need not be sorted).
func (h *Hist) CDF(points []int) []float64 {
	out := make([]float64, len(points))
	if h.n == 0 {
		return out
	}
	values := make([]int, 0, len(h.counts))
	for v := range h.counts {
		values = append(values, v)
	}
	sort.Ints(values)
	for i, x := range points {
		var cum uint64
		for _, v := range values {
			if v > x {
				break
			}
			cum += h.counts[v]
		}
		out[i] = float64(cum) / float64(h.n)
	}
	return out
}

// FractionAbove returns P(X > x).
func (h *Hist) FractionAbove(x int) float64 {
	if h.n == 0 {
		return 0
	}
	return 1 - h.CDF([]int{x})[0]
}

// Percentile returns the smallest value v with CDF(v) >= p (p in [0,1]),
// 0 when empty.
func (h *Hist) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	values := make([]int, 0, len(h.counts))
	for v := range h.counts {
		values = append(values, v)
	}
	sort.Ints(values)
	target := p * float64(h.n)
	var cum uint64
	for _, v := range values {
		cum += h.counts[v]
		if float64(cum) >= target {
			return v
		}
	}
	return values[len(values)-1]
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for v, c := range other.counts {
		h.counts[v] += c
		h.n += c
	}
}

// histEntry is one (value, count) pair of the histogram's canonical JSON
// form: an array of pairs sorted by value, so equal histograms always
// serialize to identical bytes (the result store's content-addressing and
// the warm-cache byte-identity guarantee both depend on this).
type histEntry struct {
	V int    `json:"v"`
	C uint64 `json:"c"`
}

// MarshalJSON encodes the histogram as a value-sorted [{"v":..,"c":..}]
// array.
func (h *Hist) MarshalJSON() ([]byte, error) {
	values := make([]int, 0, len(h.counts))
	for v := range h.counts {
		values = append(values, v)
	}
	sort.Ints(values)
	entries := make([]histEntry, 0, len(values))
	for _, v := range values {
		entries = append(entries, histEntry{V: v, C: h.counts[v]})
	}
	return json.Marshal(entries)
}

// UnmarshalJSON decodes MarshalJSON's form, replacing the receiver's
// contents and rederiving the observation count.
func (h *Hist) UnmarshalJSON(data []byte) error {
	var entries []histEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return err
	}
	h.counts = make(map[int]uint64, len(entries))
	h.n = 0
	for _, e := range entries {
		h.counts[e.V] += e.C
		h.n += e.C
	}
	return nil
}

// Table renders aligned text tables for the harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, hcell := range t.header {
		widths[i] = len(hcell)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Ratio returns a/b guarding division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
