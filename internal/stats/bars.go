package stats

import (
	"fmt"
	"io"
	"strings"
)

// BarRow is one bar of a horizontal ASCII bar chart.
type BarRow struct {
	Label string
	Value float64
	// Failed marks a bar whose value could not be computed (its run
	// failed); it renders as an explicit FAILED marker, not a zero bar.
	Failed bool
}

// BarChart renders labeled horizontal bars, the terminal rendition of the
// paper's bar figures.
type BarChart struct {
	rows []BarRow
	// Unit is appended to each value (e.g. "%" or "x").
	Unit string
	// Width is the maximum bar width in characters (default 40).
	Width int
}

// NewBarChart creates an empty chart.
func NewBarChart(unit string) *BarChart { return &BarChart{Unit: unit, Width: 40} }

// Bar appends one bar.
func (b *BarChart) Bar(label string, value float64) {
	b.rows = append(b.rows, BarRow{Label: label, Value: value})
}

// FailedBar appends a failed-run marker in place of a bar.
func (b *BarChart) FailedBar(label string) {
	b.rows = append(b.rows, BarRow{Label: label, Failed: true})
}

// Render writes the chart; bars scale to the maximum value.
func (b *BarChart) Render(w io.Writer) {
	if len(b.rows) == 0 {
		return
	}
	maxVal := 0.0
	maxLabel := 0
	for _, r := range b.rows {
		if r.Value > maxVal {
			maxVal = r.Value
		}
		if len(r.Label) > maxLabel {
			maxLabel = len(r.Label)
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	width := b.Width
	if width <= 0 {
		width = 40
	}
	for _, r := range b.rows {
		if r.Failed {
			fmt.Fprintf(w, "%s %s FAILED\n", pad(r.Label, maxLabel),
				pad("xx", width))
			continue
		}
		n := int(r.Value / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		if r.Value > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(w, "%s %s%s %.2f%s\n",
			pad(r.Label, maxLabel),
			strings.Repeat("█", n),
			strings.Repeat(" ", width-n),
			r.Value, b.Unit)
	}
}

// String renders to a string.
func (b *BarChart) String() string {
	var sb strings.Builder
	b.Render(&sb)
	return sb.String()
}
