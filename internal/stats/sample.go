package stats

import (
	"math"
	"sort"
)

// Sample aggregates over float64 slices. The hypothesis framework reduces
// per-seed metric values with these; every function is deterministic in the
// input order (sums accumulate left to right) so rendered findings are
// byte-reproducible for a fixed seed list.

// Mean returns the arithmetic mean, 0 when xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the middle value (mean of the two middle values for even
// lengths), 0 when xs is empty. The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Variance returns the unbiased sample variance (divisor n-1), 0 when xs
// has fewer than two values — a single observation carries no spread
// information, and callers treat the 0 as "spread unknown", not "spread
// zero" (see CohenD).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation, 0 when xs has fewer than
// two values.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Summary bundles the aggregates one table row reports for a multi-seed
// metric.
type Summary struct {
	N                int
	Mean, Median     float64
	Min, Max         float64
	Variance, StdDev float64
}

// Summarize reduces xs into a Summary. The zero Summary is returned for an
// empty slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:        len(xs),
		Mean:     Mean(xs),
		Median:   Median(xs),
		Min:      math.Inf(1),
		Max:      math.Inf(-1),
		Variance: Variance(xs),
	}
	s.StdDev = math.Sqrt(s.Variance)
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// CohenD returns the Cohen's-d effect size between two samples:
// (mean(a) - mean(b)) / pooledStdDev. ok is false — and d is 0 — whenever
// the statistic is undefined: either sample has fewer than two values (no
// spread information), or the pooled standard deviation is zero (identical
// constant samples admit no standardized effect). Callers must treat
// ok=false as "effect size unknown" — the hypothesis judges report
// INCONCLUSIVE rather than fabricating a divide-by-zero infinity.
func CohenD(a, b []float64) (d float64, ok bool) {
	if len(a) < 2 || len(b) < 2 {
		return 0, false
	}
	na, nb := float64(len(a)), float64(len(b))
	pooled := ((na-1)*Variance(a) + (nb-1)*Variance(b)) / (na + nb - 2)
	if pooled <= 0 {
		return 0, false
	}
	return (Mean(a) - Mean(b)) / math.Sqrt(pooled), true
}
