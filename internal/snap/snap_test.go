package snap

import (
	"sync"
	"testing"

	"hintm/internal/cache"
	"hintm/internal/interp"
	"hintm/internal/ir"
	"hintm/internal/mem"
	"hintm/internal/vmem"
)

// testState builds a minimal but fully-populated snapshot: a touched memory
// page, a warmed cache line, a walked vmem page, and a main thread parked at
// its entry point. Thread-state fidelity across a real prefix boundary is
// pinned by internal/sim's fork tests; here we pin the State mechanics.
func testState(t *testing.T) *State {
	t.Helper()
	b := ir.NewBuilder("snaptest")
	f := b.Function("main", 0)
	f.RetVoid()
	prog, err := interp.NewProgram(b.M)
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	m := mem.NewMemory()
	m.WriteWord(mem.Addr(0), 7)
	al := mem.NewAllocator()
	al.Malloc(0, 64)
	ch := cache.New(cache.DefaultConfig(1))
	ch.Access(0, 3, true)
	vm := vmem.New(1, 4, vmem.DefaultCosts(), true)
	vm.Access(0, 0, 1, false)
	th := prog.NewThread(0, "main", nil, al.StackAlloc(0, 64), 1)
	return &State{
		Mem: m, Alloc: al, Cache: ch, VM: vm, Main: th.CaptureState(),
		Counters: Counters{Steps: 42, CtxCycles: []int64{100}, NonTxAccesses: 9},
	}
}

func TestValidate(t *testing.T) {
	s := testState(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("complete state invalid: %v", err)
	}
	for name, strip := range map[string]func(*State){
		"mem":   func(s *State) { s.Mem = nil },
		"alloc": func(s *State) { s.Alloc = nil },
		"cache": func(s *State) { s.Cache = nil },
		"vm":    func(s *State) { s.VM = nil },
		"main":  func(s *State) { s.Main = nil },
	} {
		broken := testState(t)
		strip(broken)
		if err := broken.Validate(); err == nil {
			t.Errorf("state without %s validated", name)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	s := testState(t)
	f1, f2 := s.Fork(), s.Fork()

	// Each fork owns its mutable components; writes through one fork must be
	// invisible to the other fork and to the pristine snapshot.
	f1.Mem.WriteWord(mem.Addr(0), -1)
	f1.Cache.Access(0, 50, true)
	f1.VM.Access(0, 0, 2, true)
	f1.Alloc.Malloc(0, 128)
	f1.Counters.CtxCycles[0] = 777

	if v := f2.Mem.ReadWord(mem.Addr(0)); v != 7 {
		t.Fatalf("sibling fork saw write: %d", v)
	}
	if v := s.Mem.ReadWord(mem.Addr(0)); v != 7 {
		t.Fatalf("snapshot saw fork write: %d", v)
	}
	if f2.Counters.CtxCycles[0] != 100 || s.Counters.CtxCycles[0] != 100 {
		t.Fatal("CtxCycles aliased across forks")
	}
	if f2.Counters.Steps != 42 || f2.Counters.NonTxAccesses != 9 {
		t.Fatalf("scalar counters not restored: %+v", f2.Counters)
	}
	// Main is deliberately shared (immutable); both forks must instantiate
	// threads from it independently.
	if f1.Main != s.Main || f2.Main != s.Main {
		t.Fatal("Main should be shared, not cloned")
	}
}

func TestForksCounterConcurrent(t *testing.T) {
	s := testState(t)
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := s.Fork()
			f.Mem.WriteWord(mem.Addr(8), 1)
		}()
	}
	wg.Wait()
	if got := s.Forks(); got != n {
		t.Fatalf("Forks() = %d, want %d", got, n)
	}
	if v := s.Mem.ReadWord(mem.Addr(8)); v != 0 {
		t.Fatalf("concurrent forks mutated the snapshot: %d", v)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	s := testState(t)
	s.Release()
	s.Release() // second call must be a no-op, not a double-free
	if s.Cache != nil {
		t.Fatal("Release left the cache reference")
	}
}
