// Package snap captures and forks the full deterministic state of a
// simulated machine at a declared prefix boundary. A State owns deep copies
// (or, where the structures are immutable, shared references) of everything
// that determines the rest of a run: the sparse physical memory, the
// address-space allocator, the cache hierarchy with its line backings, the
// translation subsystem (page table, arena, per-context TLBs), the main
// thread's architectural state, and the machine's scalar counters. Fork
// produces fresh, unaliased copies — copy-on-fork, not copy-on-write: a
// clone is O(live state), and N siblings resuming from one State can run
// concurrently without ever observing each other.
//
// What is deliberately NOT here: HTM controllers and fault-injection state.
// The simulator only declares boundaries where every controller is
// quiescent (holding zero information), so forks rebuild controllers from
// their own configuration — that is exactly what lets sibling grid points
// with different HTM kinds share one prefix. Fault engines consume PRNG
// draws during the prefix, so fault-enabled runs are excluded from sharing
// by the scheduler rather than cloned here.
package snap

import (
	"fmt"
	"sync/atomic"

	"hintm/internal/cache"
	"hintm/internal/interp"
	"hintm/internal/mem"
	"hintm/internal/vmem"
)

// Counters is the machine's scalar state at the boundary: everything
// outside the component structures that the continuation of a run depends
// on (instruction and access counts, per-context clocks, watchdog progress
// marks). It is restored verbatim into each fork so a resumed run's final
// statistics are byte-identical to a cold run's.
type Counters struct {
	// Steps is the instruction count at the boundary; CtxCycles the
	// per-hardware-context clocks (only context 0 can be nonzero at a
	// single-threaded boundary, but all are carried for robustness).
	Steps     int64
	CtxCycles []int64

	// Access-class counts accumulated during the prefix (all prefix
	// accesses are non-transactional, but every class is carried).
	StaticSafeAccesses uint64
	DynSafeAccesses    uint64
	UnsafeTxAccesses   uint64
	NonTxAccesses      uint64
	SuspendedAccesses  uint64
	PageModeCycles     int64

	// Watchdog progress state: the guard grid keeps advancing the progress
	// mark during a non-transactional prefix, so forks must resume from the
	// captured values to trip (or not trip) at the same step a cold run
	// would.
	FallbackAcquires  uint64
	LastProgress      uint64
	LastProgressCycle int64
}

// State is one captured machine snapshot. Capture moves the prefix
// machine's components in (zero-copy — the capturing machine is dead
// afterwards); Fork clones them out. A State is immutable once built and
// safe for concurrent Fork calls.
type State struct {
	Mem   *mem.Memory
	Alloc *mem.Allocator
	Cache *cache.Hierarchy
	VM    *vmem.Manager
	// Main is the main thread's architectural snapshot; immutable, so forks
	// share it and instantiate fresh threads from it.
	Main *interp.ThreadState

	Counters Counters

	forks atomic.Uint64
}

// Validate checks the snapshot is complete (every component present).
func (s *State) Validate() error {
	switch {
	case s.Mem == nil, s.Alloc == nil, s.Cache == nil, s.VM == nil, s.Main == nil:
		return fmt.Errorf("snap: incomplete state (mem %v alloc %v cache %v vm %v main %v)",
			s.Mem != nil, s.Alloc != nil, s.Cache != nil, s.VM != nil, s.Main != nil)
	}
	return nil
}

// Forked is one fork's private copy of the captured state. Every reference
// is independent of the State and of every other fork; Main is shared
// because it is immutable (instantiate a thread with Main.NewThread).
type Forked struct {
	Mem   *mem.Memory
	Alloc *mem.Allocator
	Cache *cache.Hierarchy
	VM    *vmem.Manager
	Main  *interp.ThreadState

	Counters Counters
}

// Fork deep-clones the state. Concurrent calls are safe: clones only read
// the pristine snapshot. Cost is O(live state) — touched memory pages, live
// cache lines, page-table and TLB entries — independent of how many forks
// were taken before.
func (s *State) Fork() Forked {
	s.forks.Add(1)
	f := Forked{
		Mem:      s.Mem.Clone(),
		Alloc:    s.Alloc.Clone(),
		Cache:    s.Cache.Clone(),
		VM:       s.VM.Clone(),
		Main:     s.Main,
		Counters: s.Counters,
	}
	f.Counters.CtxCycles = append([]int64(nil), s.Counters.CtxCycles...)
	return f
}

// Forks reports how many forks have been taken from this state.
func (s *State) Forks() uint64 { return s.forks.Load() }

// Release returns pooled resources held by the pristine snapshot (the
// cache line backings) to their pools. Optional; the state must not be
// forked afterwards.
func (s *State) Release() {
	if s.Cache != nil {
		s.Cache.Release()
		s.Cache = nil
	}
}
