package flat

import "testing"

func TestAddFindDel(t *testing.T) {
	var tab Tab[int]
	tab.Init(16, false)
	for k := uint64(0); k < 10; k++ {
		tab.Add(k, int(k)*10)
	}
	if tab.N != 10 {
		t.Fatalf("N = %d, want 10", tab.N)
	}
	for k := uint64(0); k < 10; k++ {
		i, ok := tab.Find(k)
		if !ok || tab.Vals[i] != int(k)*10 {
			t.Fatalf("Find(%d) = %v, val %d", k, ok, tab.Vals[i])
		}
	}
	if _, ok := tab.Find(99); ok {
		t.Fatal("found absent key")
	}
	if !tab.Del(3) || tab.Del(3) {
		t.Fatal("Del(3) should succeed once")
	}
	if _, ok := tab.Find(3); ok {
		t.Fatal("deleted key still live")
	}
	// Every other key must survive backward-shift deletion.
	for k := uint64(0); k < 10; k++ {
		if k == 3 {
			continue
		}
		if i, ok := tab.Find(k); !ok || tab.Vals[i] != int(k)*10 {
			t.Fatalf("key %d lost after Del", k)
		}
	}
}

// Colliding keys exercise the backward-shift chain repair: delete entries in
// every order and check the survivors stay reachable.
func TestDelChainRepair(t *testing.T) {
	keys := []uint64{1, 17, 33, 49, 65, 81} // distinct keys, small table
	for del := range keys {
		var tab Tab[uint64]
		tab.Init(16, false)
		for _, k := range keys {
			tab.Add(k, k)
		}
		if !tab.Del(keys[del]) {
			t.Fatalf("Del(%d) failed", keys[del])
		}
		for j, k := range keys {
			_, ok := tab.Find(k)
			if want := j != del; ok != want {
				t.Fatalf("after Del(%d): Find(%d) = %v, want %v",
					keys[del], k, ok, want)
			}
		}
	}
}

func TestGrowRehashesAll(t *testing.T) {
	var tab Tab[uint64]
	tab.Init(16, false)
	const n = 1000
	for k := uint64(0); k < n; k++ {
		tab.Add(k, k^0xabcd)
	}
	if tab.N != n {
		t.Fatalf("N = %d, want %d", tab.N, n)
	}
	for k := uint64(0); k < n; k++ {
		i, ok := tab.Find(k)
		if !ok || tab.Vals[i] != k^0xabcd {
			t.Fatalf("key %d lost across grow", k)
		}
	}
}

func TestResetEmptiesInO1(t *testing.T) {
	var tab Tab[int]
	tab.Init(16, true)
	tab.Add(7, 70)
	tab.Reset()
	if tab.N != 0 {
		t.Fatalf("N = %d after Reset", tab.N)
	}
	if _, ok := tab.Find(7); ok {
		t.Fatal("stale key live after Reset")
	}
	// Re-adding the same key in the new generation works.
	tab.Add(7, 71)
	if i, ok := tab.Find(7); !ok || tab.Vals[i] != 71 {
		t.Fatal("re-add after Reset failed")
	}
}

func TestGenWrapClearsStamps(t *testing.T) {
	var tab Tab[int]
	tab.Init(16, true)
	tab.Add(1, 1)
	tab.Gen = ^uint32(0) // force the wrap path on the next Reset
	tab.Reset()
	if tab.Gen != 1 {
		t.Fatalf("Gen = %d after wrap, want 1", tab.Gen)
	}
	if _, ok := tab.Find(1); ok {
		t.Fatal("stale key live after generation wrap")
	}
}

// Steady-state tracker usage — Reset then re-insert the same working set —
// must not allocate once the backing is warm.
func TestSteadyStateDoesNotAllocate(t *testing.T) {
	var tab Tab[uint8]
	tab.Init(128, true)
	work := func() {
		tab.Reset()
		for k := uint64(0); k < 64; k++ {
			if i, ok := tab.Find(k); ok {
				tab.Vals[i] |= 1
			} else {
				tab.Add(k, 1)
			}
		}
	}
	work()
	if n := testing.AllocsPerRun(100, work); n != 0 {
		t.Errorf("steady-state probe/insert allocates %.1f per cycle", n)
	}
}
