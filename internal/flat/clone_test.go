package flat

import "testing"

// Clone must preserve the probe layout slot-for-slot: the snapshot/fork
// subsystem's byte-identity guarantee depends on iteration order over
// Keys/Vals matching the original exactly, not just on set equality.
func TestClonePreservesProbeLayout(t *testing.T) {
	var tab Tab[int]
	tab.Init(32, false)
	// Insert then delete to exercise backward-shift repair, leaving a layout
	// that differs from a fresh insert of the surviving keys.
	for k := uint64(0); k < 20; k++ {
		tab.Add(k, int(k)*10)
	}
	for k := uint64(0); k < 20; k += 3 {
		tab.Del(k)
	}
	c := tab.Clone()
	if c.N != tab.N || c.Gen != tab.Gen || len(c.Keys) != len(tab.Keys) {
		t.Fatalf("clone shape: N %d/%d Gen %d/%d slots %d/%d",
			c.N, tab.N, c.Gen, tab.Gen, len(c.Keys), len(tab.Keys))
	}
	for i := range tab.Keys {
		if c.Gens[i] != tab.Gens[i] {
			t.Fatalf("slot %d: gen %d != %d", i, c.Gens[i], tab.Gens[i])
		}
		if tab.Gens[i] == tab.Gen && (c.Keys[i] != tab.Keys[i] || c.Vals[i] != tab.Vals[i]) {
			t.Fatalf("slot %d: live entry (%d,%d) != (%d,%d)",
				i, c.Keys[i], c.Vals[i], tab.Keys[i], tab.Vals[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	var tab Tab[int]
	tab.Init(16, false)
	for k := uint64(0); k < 8; k++ {
		tab.Add(k, int(k))
	}
	c := tab.Clone()

	// Mutations through the clone must not reach the original.
	c.Del(2)
	c.Add(100, 1)
	if i, ok := tab.Find(2); !ok || tab.Vals[i] != 2 {
		t.Fatal("original lost key 2 after clone.Del")
	}
	if _, ok := tab.Find(100); ok {
		t.Fatal("original gained key 100 from clone.Add")
	}

	// And the other direction, including an O(1) generation-bump Reset and a
	// growth rehash, both of which replace or invalidate backing state.
	tab.Reset()
	for k := uint64(200); k < 240; k++ {
		tab.Add(k, 1)
	}
	if _, ok := c.Find(5); !ok {
		t.Fatal("clone lost key 5 after original Reset+grow")
	}
	if _, ok := c.Find(200); ok {
		t.Fatal("clone gained key 200 from original")
	}
	if n := c.N; n != 8 {
		t.Fatalf("clone N = %d, want 8", n)
	}
}
