// Package flat provides the open-addressed, linear-probe hash table over
// uint64 keys that replaces the Go maps on the simulator's per-access hot
// paths (HTM tracker read/write sets, the controller's touched-page set and
// lazy write buffer, TLB and page-table indexes, the memory page index).
// Probes touch parallel slices instead of chasing map buckets, and Reset is
// O(1): it bumps a generation stamp instead of deleting keys, so the same
// backing arrays are reused across every transaction of a run. Not safe for
// concurrent use — each simulated hardware context owns its tables.
package flat

// Tab is the table. A slot is live iff Gens[i] == Gen. Keys/Vals/Gens are
// exported so callers can iterate live slots directly (statistics, drains);
// mutate only through Add/Del/Reset.
//
// Bounded tables (the P8 buffer, TLBs) are sized at 2× capacity up front and
// never grow — the caller enforces the entry limit, so a free slot always
// terminates a probe. Unbounded tables grow at 3/4 load.
type Tab[V any] struct {
	Keys []uint64
	Vals []V
	Gens []uint32
	// Gen is the current generation stamp; always >= 1 so a zeroed Gens
	// entry is never live and deletion can clear slots with 0.
	Gen     uint32
	mask    uint64
	shift   uint8
	N       int
	bounded bool
}

// fibMul is the 64-bit Fibonacci-hashing multiplier (2^64/phi).
const fibMul = 0x9E3779B97F4A7C15

// Init sizes the table with at least minSlots slots (rounded up to a power
// of two, minimum 16). Bounded tables never grow.
func (t *Tab[V]) Init(minSlots int, bounded bool) {
	size := 16
	for size < minSlots {
		size *= 2
	}
	t.Keys = make([]uint64, size)
	t.Vals = make([]V, size)
	t.Gens = make([]uint32, size)
	t.Gen = 1
	t.mask = uint64(size - 1)
	t.shift = uint8(64 - log2(size))
	t.N = 0
	t.bounded = bounded
}

func log2(size int) int {
	n := 0
	for size > 1 {
		size >>= 1
		n++
	}
	return n
}

// home is the key's preferred slot.
func (t *Tab[V]) home(k uint64) uint64 { return (k * fibMul) >> t.shift }

// Find returns the key's slot index if live, else the index of the free
// slot where it would be inserted.
func (t *Tab[V]) Find(k uint64) (int, bool) {
	i := t.home(k)
	for {
		if t.Gens[i] != t.Gen {
			return int(i), false
		}
		if t.Keys[i] == k {
			return int(i), true
		}
		i = (i + 1) & t.mask
	}
}

// Add inserts a key that must not currently be live and returns its slot.
// Unbounded tables grow (rehash) past 3/4 load before inserting.
func (t *Tab[V]) Add(k uint64, v V) int {
	if !t.bounded && t.N >= len(t.Keys)*3/4 {
		t.grow()
	}
	i, ok := t.Find(k)
	if ok {
		panic("flat: Tab.Add of live key")
	}
	t.Keys[i] = k
	t.Vals[i] = v
	t.Gens[i] = t.Gen
	t.N++
	return i
}

// Del removes a live key using backward-shift deletion, keeping every
// remaining entry reachable without tombstones.
func (t *Tab[V]) Del(k uint64) bool {
	idx, ok := t.Find(k)
	if !ok {
		return false
	}
	t.N--
	i := uint64(idx)
	j := i
	for {
		j = (j + 1) & t.mask
		if t.Gens[j] != t.Gen {
			break
		}
		h := t.home(t.Keys[j])
		// Entry j may fill the hole at i unless its home lies cyclically
		// inside (i, j] — moving it would then break its own probe chain.
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.Keys[i] = t.Keys[j]
			t.Vals[i] = t.Vals[j]
			i = j
		}
	}
	t.Gens[i] = 0
	return true
}

// Reset empties the table in O(1) by bumping the generation stamp; backing
// arrays are kept for reuse.
func (t *Tab[V]) Reset() {
	t.Gen++
	if t.Gen == 0 {
		// Generation counter wrapped (once per ~4G resets): clear stamps so
		// no stale slot can alias the restarted generation.
		for i := range t.Gens {
			t.Gens[i] = 0
		}
		t.Gen = 1
	}
	t.N = 0
}

// Clone returns an independent deep copy of the table: fresh backing
// arrays, identical live contents, identical probe layout (so iteration
// orders over Keys/Vals match the original exactly — the property the
// snapshot/fork subsystem's byte-identity guarantee rests on). Values are
// copied by assignment; pointer-valued tables must deep-copy their values
// themselves.
func (t *Tab[V]) Clone() Tab[V] {
	c := *t
	c.Keys = append([]uint64(nil), t.Keys...)
	c.Vals = append([]V(nil), t.Vals...)
	c.Gens = append([]uint32(nil), t.Gens...)
	return c
}

// grow doubles the table, rehashing live entries.
func (t *Tab[V]) grow() {
	oldKeys, oldVals, oldGens, oldGen := t.Keys, t.Vals, t.Gens, t.Gen
	t.Init(len(oldKeys)*2, t.bounded)
	for i := range oldKeys {
		if oldGens[i] == oldGen {
			t.Add(oldKeys[i], oldVals[i])
		}
	}
}
