package svgplot

import (
	"strings"
	"testing"
)

func TestBarChartSVG(t *testing.T) {
	c := &BarChart{
		Title:      "demo <chart>",
		Categories: []string{"a", "b"},
		YLabel:     "speedup",
		Series: []Series{
			{Name: "st", Values: []float64{1.5, 2}},
			{Name: "full", Values: []float64{3, 4}},
		},
	}
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(out, "<rect") < 5 { // background + legend + 4 bars
		t.Fatalf("too few rects:\n%s", out)
	}
	if !strings.Contains(out, "demo &lt;chart&gt;") {
		t.Fatal("title not escaped")
	}
	for _, want := range []string{">st<", ">full<", ">a<", ">b<", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestStackedBarChart(t *testing.T) {
	c := &BarChart{
		Title:      "stacked",
		Categories: []string{"x"},
		Stacked:    true,
		Percent:    true,
		YMax:       1,
		Series: []Series{
			{Name: "p", Values: []float64{0.25}},
			{Name: "q", Values: []float64{0.75}},
		},
	}
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "100%") {
		t.Fatal("percent ticks missing")
	}
}

func TestLineChartSVG(t *testing.T) {
	c := &LineChart{
		Title:  "cdf",
		XLabel: "blocks",
		YLabel: "fraction",
		VLineX: 64,
		Lines: []Line{
			{Name: "base", X: []float64{0, 32, 64, 96}, Y: []float64{0, 0.2, 0.5, 1}},
			{Name: "hinted", X: []float64{0, 32, 64, 96}, Y: []float64{0.5, 0.9, 1, 1}},
		},
	}
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "<polyline") != 2 {
		t.Fatal("expected two curves")
	}
	if !strings.Contains(out, "stroke-dasharray") {
		t.Fatal("capacity marker missing")
	}
}

func TestEmptyChartStillValid(t *testing.T) {
	var sb strings.Builder
	if err := (&BarChart{Title: "empty"}).WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "</svg>") {
		t.Fatal("incomplete document")
	}
}
