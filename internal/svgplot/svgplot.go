// Package svgplot renders the harness's figure data as standalone SVG
// files — grouped bar charts for the abort-reduction/speedup figures and
// line charts for the footprint CDFs — using nothing but string assembly.
// The goal is publication-shaped output (the paper's figures are grouped
// bars over applications), not a general plotting library.
package svgplot

import (
	"fmt"
	"io"
	"strings"
)

// Series is one legend entry of a grouped bar chart.
type Series struct {
	Name   string
	Values []float64 // one per category
}

// BarChart is a grouped (or stacked) vertical bar chart.
type BarChart struct {
	Title      string
	Categories []string // x-axis groups (applications)
	Series     []Series
	// YLabel annotates the value axis; YMax fixes the scale (0 = auto).
	YLabel string
	YMax   float64
	// Stacked stacks series instead of grouping them side by side.
	Stacked bool
	// Percent formats tick labels as percentages of 1.0.
	Percent bool
}

// geometry constants (pixels).
const (
	chartW   = 860
	chartH   = 360
	marginL  = 70
	marginR  = 20
	marginT  = 44
	marginB  = 70
	plotW    = chartW - marginL - marginR
	plotH    = chartH - marginT - marginB
	legendDY = 16
)

// palette holds fill colors for up to six series.
var palette = []string{"#4878a8", "#e49444", "#5ba053", "#c34e52", "#8566aa", "#857aab"}

// WriteSVG renders the chart.
func (c *BarChart) WriteSVG(w io.Writer) error {
	var sb strings.Builder
	header(&sb, c.Title)

	maxVal := c.YMax
	if maxVal <= 0 {
		for _, s := range c.Series {
			if c.Stacked {
				for i := range c.Categories {
					var sum float64
					for _, s2 := range c.Series {
						if i < len(s2.Values) {
							sum += s2.Values[i]
						}
					}
					if sum > maxVal {
						maxVal = sum
					}
				}
				break
			}
			for _, v := range s.Values {
				if v > maxVal {
					maxVal = v
				}
			}
		}
		if maxVal <= 0 {
			maxVal = 1
		}
		maxVal *= 1.08 // headroom
	}

	axes(&sb, maxVal, c.YLabel, c.Percent)

	nCat := len(c.Categories)
	if nCat == 0 {
		sb.WriteString("</svg>\n")
		_, err := io.WriteString(w, sb.String())
		return err
	}
	groupW := float64(plotW) / float64(nCat)
	nSer := len(c.Series)

	for ci, cat := range c.Categories {
		gx := float64(marginL) + float64(ci)*groupW
		// Category label, rotated for readability.
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="11" text-anchor="end" transform="rotate(-35 %.1f %d)">%s</text>`+"\n",
			gx+groupW/2, chartH-marginB+14, gx+groupW/2, chartH-marginB+14, esc(cat))
		if c.Stacked {
			y0 := float64(chartH - marginB)
			for si, s := range c.Series {
				v := 0.0
				if ci < len(s.Values) {
					v = s.Values[ci]
				}
				h := v / maxVal * float64(plotH)
				y0 -= h
				fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					gx+groupW*0.2, y0, groupW*0.6, h, palette[si%len(palette)])
			}
			continue
		}
		barW := groupW * 0.8 / float64(nSer)
		for si, s := range c.Series {
			v := 0.0
			if ci < len(s.Values) {
				v = s.Values[ci]
			}
			h := v / maxVal * float64(plotH)
			x := gx + groupW*0.1 + float64(si)*barW
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, float64(chartH-marginB)-h, barW*0.92, h, palette[si%len(palette)])
		}
	}

	legend(&sb, seriesNames(c.Series))
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// Line is one curve of a line chart.
type Line struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart plots curves (the Fig.-6 CDFs).
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Lines  []Line
	// VLineX draws a dashed vertical marker (P8's 64-block capacity).
	VLineX float64
}

// WriteSVG renders the chart.
func (c *LineChart) WriteSVG(w io.Writer) error {
	var sb strings.Builder
	header(&sb, c.Title)

	var maxX, maxY float64
	for _, l := range c.Lines {
		for _, x := range l.X {
			if x > maxX {
				maxX = x
			}
		}
		for _, y := range l.Y {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxX <= 0 {
		maxX = 1
	}
	if maxY <= 0 {
		maxY = 1
	}

	axes(&sb, maxY, c.YLabel, maxY <= 1.01)
	// X tick labels.
	for i := 0; i <= 4; i++ {
		xv := maxX * float64(i) / 4
		px := float64(marginL) + xv/maxX*float64(plotW)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%.0f</text>`+"\n",
			px, chartH-marginB+16, xv)
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, chartH-8, esc(c.XLabel))

	if c.VLineX > 0 {
		px := float64(marginL) + c.VLineX/maxX*float64(plotW)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#999" stroke-dasharray="4 3"/>`+"\n",
			px, marginT, px, chartH-marginB)
	}

	for li, l := range c.Lines {
		var pts []string
		for i := range l.X {
			px := float64(marginL) + l.X[i]/maxX*float64(plotW)
			py := float64(chartH-marginB) - l.Y[i]/maxY*float64(plotH)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px, py))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), palette[li%len(palette)])
	}

	var names []string
	for _, l := range c.Lines {
		names = append(names, l.Name)
	}
	legend(&sb, names)
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func header(sb *strings.Builder, title string) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", chartW, chartH)
	fmt.Fprintf(sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartW, chartH)
	fmt.Fprintf(sb, `<text x="%d" y="24" font-size="15" font-weight="bold" text-anchor="middle">%s</text>`+"\n",
		chartW/2, esc(title))
}

// axes draws the frame, y grid lines, and y tick labels.
func axes(sb *strings.Builder, maxVal float64, yLabel string, percent bool) {
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, chartH-marginB, marginL+plotW, chartH-marginB)
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, chartH-marginB)
	for i := 0; i <= 4; i++ {
		v := maxVal * float64(i) / 4
		py := float64(chartH-marginB) - float64(plotH)*float64(i)/4
		label := fmt.Sprintf("%.2g", v)
		if percent {
			label = fmt.Sprintf("%.0f%%", v*100)
		}
		fmt.Fprintf(sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py, marginL+plotW, py)
		fmt.Fprintf(sb, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, py+4, label)
	}
	if yLabel != "" {
		fmt.Fprintf(sb, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, esc(yLabel))
	}
}

func legend(sb *strings.Builder, names []string) {
	x := marginL + 8
	y := marginT + 4
	for i, name := range names {
		fmt.Fprintf(sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			x, y+i*legendDY, palette[i%len(palette)])
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			x+14, y+i*legendDY+9, esc(name))
	}
}

func seriesNames(series []Series) []string {
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	return names
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
