package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"hintm/internal/ir"
	"hintm/internal/obs"
	"hintm/internal/sim"
	"hintm/internal/workloads"
)

// Grid-level warm-up prefix sharing. Every grid point over one (workload,
// scale, SMT, seed) coordinate executes an identical single-threaded warm-up
// before its first transaction or parallel region: nothing HTM-, static-
// hint-, signature- or retry-policy-specific can influence execution until
// transactional machinery engages (the dynamic-hint bit is the one hint
// parameter the warm-up observes — it drives page classification on the
// setup faults — so it stays in the key). RunAll groups its submitted grid
// by that masked coordinate; the first sibling to actually need a
// simulation runs the warm-up once (sim.RunToPrefix), and every sibling —
// including that first one — forks the captured snapshot instead of
// re-simulating the prefix. Forked results are byte-identical to cold runs:
// sim-level identity is pinned by internal/sim's fork tests, grid-level
// identity by TestPrefixTwinGrid and the seed-grid golden file.

// prefixKeySchema versions the prefix grouping key. It shares runKey's
// shape (store.Schema-style versioning) but is never used for store
// addressing — bump it if the set of masked parameters changes.
const prefixKeySchema = "hintm-prefix/v1"

// prefixFlight is the single-flight cell for one prefix group: the first
// sibling to reach the fork point materializes the snapshot, everyone else
// waits on the once. A flight only exists for groups RunAll planned (≥ 2
// distinct unsatisfied siblings), so lone requests never pay a warm-up +
// fork when a plain cold run is cheaper.
type prefixFlight struct {
	once sync.Once
	p    *sim.Prefix
	err  error
}

// prefixShareable reports whether this runner may share prefixes at all.
// Traced runs attach per-run tracers (the prefix would be silent exactly
// where the trace should start) and fault plans consume per-access PRNG
// draws during the warm-up, making it configuration-dependent.
func (r *Runner) prefixShareable() bool {
	return !r.opts.NoPrefixShare && r.opts.TraceDir == "" && !r.opts.Faults.Enabled()
}

// prefixKey returns the grouping key for req: the store-key preimage with
// every post-warm-up determinant masked out. Two requests with equal keys
// are guaranteed identical up to the prefix boundary.
func (r *Runner) prefixKey(req Request) string {
	req = req.normalize()
	hints := "cold"
	if req.Hints.Dynamic() {
		hints = "dyn"
	}
	k := runKey{
		Schema:         prefixKeySchema,
		Workload:       req.Workload,
		Scale:          req.Scale.String(),
		Hints:          hints, // collapsed to the dynamic bit; HTM/SigBits masked entirely
		SMT:            req.SMT,
		Seed:           r.opts.Seed,
		WatchdogCycles: r.opts.WatchdogCycles,
		MaxCycles:      r.opts.MaxCycles,
	}
	data, err := json.Marshal(k)
	if err != nil {
		panic(fmt.Sprintf("harness: canonical prefix key encoding: %v", err))
	}
	return string(data)
}

// planPrefixes registers a prefix flight for every group of ≥ 2 distinct,
// not-yet-scheduled requests sharing a prefix key. Planning is deliberately
// store-blind: flights are lazy, so a group whose members all turn out to
// be store-warm never simulates its warm-up. The worst case — all siblings
// but one warm — costs one warm-up + one fork where a cold run would have
// done, a bounded and rare overpayment.
func (r *Runner) planPrefixes(reqs []Request) {
	if !r.prefixShareable() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	count := make(map[string]int)
	seen := make(map[Request]bool)
	for _, req := range reqs {
		req = req.normalize()
		if seen[req] {
			continue
		}
		seen[req] = true
		if _, done := r.runs[req]; done {
			continue // already scheduled (or completed) by an earlier grid
		}
		count[r.prefixKey(req)]++
	}
	for key, n := range count {
		if n < 2 {
			continue
		}
		if _, ok := r.prefixes[key]; !ok {
			r.prefixes[key] = &prefixFlight{}
		}
	}
}

// runPrefix executes one shared warm-up under the calling sibling's
// already-held worker slot (so materialization can never deadlock the pool,
// including Workers=1) and captures the snapshot.
func (r *Runner) runPrefix(ctx context.Context, spec *workloads.Spec, req Request, mod *ir.Module) (*sim.Prefix, error) {
	pcfg := sim.PrefixConfig(r.configFor(spec, req))
	m, err := sim.New(pcfg, mod)
	if err != nil {
		return nil, err
	}
	// Release is a no-op on success (capture moves the components into the
	// snapshot) and frees the pooled line backings on failure.
	defer m.Release()
	r.prefixRuns.Add(1)
	r.opts.Metrics.Counter(obs.MetricPrefixRuns).Inc()
	p, err := m.RunToPrefix(ctx)
	if err != nil {
		return nil, err
	}
	r.simCycles.Add(uint64(p.Cycles))
	return p, nil
}

// machineFor builds the simulator for one request: a fork of the group's
// shared prefix when RunAll planned one, a cold machine otherwise. The
// returned prefixCycles is the simulated time already accounted to the
// shared warm-up (0 for cold runs); the caller subtracts it so simCycles
// counts executed — not recalled — cycles. Every prefix-path failure
// degrades to a cold run: sharing is an optimization, never a correctness
// dependency.
func (r *Runner) machineFor(ctx context.Context, spec *workloads.Spec, req Request, mod *ir.Module, cfg sim.Config) (m *sim.Machine, prefixCycles int64, err error) {
	if r.prefixShareable() && cfg.Tracer == nil {
		r.mu.Lock()
		pf := r.prefixes[r.prefixKey(req)]
		r.mu.Unlock()
		if pf != nil {
			pf.once.Do(func() {
				pf.p, pf.err = r.runPrefix(ctx, spec, req, mod)
			})
			if pf.err == nil && pf.p != nil {
				start := time.Now()
				if fm, ferr := pf.p.Fork(cfg); ferr == nil {
					r.forkNanos.Add(time.Since(start).Nanoseconds())
					r.forkedRuns.Add(1)
					r.sharedCycles.Add(uint64(pf.p.Cycles))
					r.opts.Metrics.Counter(obs.MetricPrefixForked).Inc()
					return fm, pf.p.Cycles, nil
				}
			}
		}
	}
	m, err = sim.New(cfg, mod)
	return m, 0, err
}
