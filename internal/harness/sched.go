package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"

	"hintm/internal/cache"
	"hintm/internal/classify"
	"hintm/internal/ir"
	"hintm/internal/obs"
	"hintm/internal/profile"
	"hintm/internal/sim"
	"hintm/internal/workloads"
)

// The scheduler executes simulation Requests on a bounded worker pool with
// single-flight deduplication: every distinct Request runs exactly once per
// Runner, concurrent duplicates wait for the first flight, and completed
// results are cached for the Runner's lifetime. Each sim.Machine is fully
// self-contained and seeded, so results are deterministic regardless of the
// worker count or completion order — the property the determinism tests
// assert and every cross-configuration comparison in the figures relies on.

// noteExec records one actual simulator invocation (the counter warm-serve
// assertions and the runner_sim_runs_total metric read).
func (r *Runner) noteExec() {
	r.execs.Add(1)
	r.opts.Metrics.Counter(obs.MetricSimRuns).Inc()
}

// moduleKey identifies one built + classified module. Modules are shared
// across runs that differ only in HTM/hint configuration; after classify
// they are read-only, so concurrent machines can safely execute the same
// module.
type moduleKey struct {
	workload string
	threads  int
	scale    workloads.Scale
}

// flight is a single-flight cell: the creating goroutine computes val/err
// and closes done; everyone else waits on done (or their context).
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// acquire takes one worker-pool slot, honouring cancellation while queued.
func (r *Runner) acquire(ctx context.Context) (release func(), err error) {
	select {
	case r.sem <- struct{}{}:
		inflight := r.opts.Metrics.Counter(obs.MetricInflight)
		inflight.Add(1)
		return func() {
			inflight.Add(-1)
			<-r.sem
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Run executes (or joins, or recalls) the simulation for req and returns
// its cached result. Identical Requests — from any goroutine, any figure —
// share one underlying run.
func (r *Runner) Run(ctx context.Context, req Request) (*sim.Result, error) {
	req = req.normalize()
	r.mu.Lock()
	if f, ok := r.runs[req]; ok {
		r.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight[*sim.Result]{done: make(chan struct{})}
	r.runs[req] = f
	r.mu.Unlock()

	// Store hook: a warm entry answers without simulating (and without a
	// worker slot); a cold run is persisted the moment it completes, so the
	// next process — or the next figure regeneration — recalls it.
	if res, ok := r.storeGet(req); ok {
		r.storeHits.Add(1)
		f.val = res
	} else {
		f.val, f.err = r.execute(ctx, req)
		if f.err == nil {
			r.storePut(req, f.val)
		}
	}
	if f.err != nil {
		// Every failure names its request; RequestError unwraps, so callers
		// still match the cause with errors.Is/As.
		f.err = &RequestError{Req: req, Err: f.err}
		if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
			// A cancellation is this caller's, not the configuration's: evict
			// the flight so a later call with a live context can retry.
			r.mu.Lock()
			delete(r.runs, req)
			r.mu.Unlock()
		}
	}
	close(f.done)
	return f.val, f.err
}

// RunAll submits the whole grid at once and waits for every request. The
// returned slice is index-aligned with reqs (duplicates resolve to the same
// *sim.Result). Failures degrade, not abort: every other request still runs
// to completion, failed slots stay nil, and the returned error joins one
// RequestError per distinct failure — so callers both get the partial
// results and learn exactly which requests died.
func (r *Runner) RunAll(ctx context.Context, reqs []Request) ([]*sim.Result, error) {
	// Group the grid by shared warm-up prefix before anything runs, so
	// sibling cells fork one captured snapshot instead of re-simulating
	// their common setup (see prefix.go).
	r.planPrefixes(reqs)
	out := make([]*sim.Result, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			out[i], errs[i] = r.Run(ctx, req)
		}(i, req)
	}
	wg.Wait()
	return out, joinErrors(errs)
}

// gather runs the grid and indexes the successful results by (normalized)
// Request — the shape figure builders consume. On failure the map still
// carries every request that succeeded (failed requests are simply absent)
// alongside the joined error; builders mark the missing cells failed. Only
// a cancelled context returns a nil map: nothing can be salvaged.
func (r *Runner) gather(ctx context.Context, reqs []Request) (map[Request]*sim.Result, error) {
	res, err := r.RunAll(ctx, reqs)
	if err != nil && ctx.Err() != nil {
		return nil, err
	}
	out := make(map[Request]*sim.Result, len(reqs))
	for i, req := range reqs {
		if res[i] != nil {
			out[req.normalize()] = res[i]
		}
	}
	return out, err
}

// RunProfiled executes req with the sharing profiler attached and returns
// the run's result alongside the profiler's report. Profiled runs are never
// memoized (the profiler is a per-run observer) but they respect the worker
// pool like every other run.
func (r *Runner) RunProfiled(ctx context.Context, req Request) (res *sim.Result, rep profile.Report, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &RequestError{Req: req, Err: &PanicError{Value: v, Stack: debug.Stack()}}
		}
	}()
	req = req.normalize()
	spec, err := workloads.ByName(req.Workload)
	if err != nil {
		return nil, profile.Report{}, err
	}
	release, err := r.acquire(ctx)
	if err != nil {
		return nil, profile.Report{}, err
	}
	defer release()
	mod, err := r.module(ctx, spec, spec.DefaultThreads*req.SMT, req.Scale)
	if err != nil {
		return nil, profile.Report{}, err
	}
	cfg := r.configFor(spec, req)
	m, err := sim.New(cfg, mod)
	if err != nil {
		return nil, profile.Report{}, err
	}
	defer m.Release()
	prof := profile.NewSharing(cfg.Contexts() - 1)
	m.SetProfiler(prof)
	r.noteExec()
	res, err = m.Run(ctx)
	if err != nil {
		return nil, profile.Report{}, &RequestError{Req: req, Err: fmt.Errorf("profiled: %w", err)}
	}
	r.simCycles.Add(uint64(res.Cycles))
	return res, prof.Report(), nil
}

// execute performs one simulation under a worker-pool slot. A panicking
// simulation (an interpreter bug, or the fault layer's injected crash) is
// recovered into a PanicError: the worker survives, the pool slot is
// released, and the grid's other requests keep running. When the runner has
// a TraceDir, the run carries a tracer and its artifacts are finalized even
// on failure — a livelocked run's trace is exactly the one worth reading.
func (r *Runner) execute(ctx context.Context, req Request) (res *sim.Result, err error) {
	var finish func(error) error
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
		if finish != nil {
			err = finish(err)
		}
	}()
	spec, err := workloads.ByName(req.Workload)
	if err != nil {
		return nil, err
	}
	release, err := r.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	mod, err := r.module(ctx, spec, spec.DefaultThreads*req.SMT, req.Scale)
	if err != nil {
		return nil, err
	}
	cfg := r.configFor(spec, req)
	if finish, err = r.attachTrace(&cfg, req); err != nil {
		return nil, err
	}
	m, prefixCycles, err := r.machineFor(ctx, spec, req, mod, cfg)
	if err != nil {
		return nil, err
	}
	defer m.Release()
	r.noteExec()
	res, err = m.Run(ctx)
	if res != nil {
		// A forked run's prefix cycles were executed (and counted) once by
		// the shared warm-up; only the suffix was simulated here.
		r.simCycles.Add(uint64(res.Cycles - prefixCycles))
	}
	return res, err
}

// attachTrace wires per-run observability into cfg when the runner has a
// TraceDir: a Chrome trace-event file plus an in-memory collector whose
// autopsy is written alongside it. The returned finish closes both artifacts
// (merging close errors into the run's) and must be called exactly once.
func (r *Runner) attachTrace(cfg *sim.Config, req Request) (finish func(error) error, err error) {
	if r.opts.TraceDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(r.opts.TraceDir, 0o755); err != nil {
		return nil, err
	}
	base := filepath.Join(r.opts.TraceDir, strings.ReplaceAll(req.String(), "/", "_"))
	f, err := os.Create(base + ".trace.json")
	if err != nil {
		return nil, err
	}
	chrome := obs.NewChromeTracer(f)
	col := obs.NewCollector()
	cfg.Tracer = obs.Multi(chrome, col)
	cfg.SampleCycles = r.opts.SampleCycles
	if cfg.SampleCycles == 0 {
		cfg.SampleCycles = 10000
	}
	return func(runErr error) error {
		errs := []error{runErr, chrome.Close(), f.Close()}
		af, err := os.Create(base + ".autopsy.txt")
		if err != nil {
			errs = append(errs, err)
		} else {
			col.Autopsy().Render(af)
			errs = append(errs, af.Close())
		}
		return joinErrors(errs)
	}, nil
}

// module builds and classifies a workload module, single-flighted: the
// first requester builds, concurrent requesters wait. The flight's creator
// never blocks on pool slots, so module waits cannot deadlock the pool.
func (r *Runner) module(ctx context.Context, spec *workloads.Spec, threads int, scale workloads.Scale) (*ir.Module, error) {
	key := moduleKey{workload: spec.Name, threads: threads, scale: scale}
	r.mu.Lock()
	if f, ok := r.mods[key]; ok {
		r.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight[*ir.Module]{done: make(chan struct{})}
	r.mods[key] = f
	r.mu.Unlock()

	m := spec.Build(threads, scale)
	if _, err := classify.Run(m); err != nil {
		f.err = fmt.Errorf("%s: %w", spec.Name, err)
	} else {
		f.val = m
	}
	close(f.done)
	return f.val, f.err
}

// configFor assembles the machine configuration for a request. With SMT,
// the machine shrinks to the workload's thread count in cores so that two
// contexts co-schedule on every core, generating the L1 pressure the
// paper's Fig.-8 methodology relies on (8 threads of genome/yada run on 4
// dual-threaded cores).
func (r *Runner) configFor(spec *workloads.Spec, req Request) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.HTM = req.HTM
	cfg.Hints = req.Hints
	cfg.SMT = req.SMT
	if req.SigBits != 0 {
		cfg.SigBits = req.SigBits
	}
	if req.SMT > 1 {
		cfg.Cores = spec.DefaultThreads
		cfg.Cache = cache.DefaultConfig(cfg.Cores)
	}
	cfg.Seed = r.opts.Seed
	cfg.Faults = r.opts.Faults
	cfg.WatchdogCycles = r.opts.WatchdogCycles
	cfg.MaxCycles = r.opts.MaxCycles
	return cfg
}

// runConfig executes one custom-config run under the worker pool — the
// ablation path, where each sweep point perturbs fields Request does not
// carry. Never memoized; panics are recovered like Run's.
func (r *Runner) runConfig(ctx context.Context, spec *workloads.Spec, scale workloads.Scale, cfg sim.Config) (res *sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	release, err := r.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	mod, err := r.module(ctx, spec, spec.DefaultThreads*cfg.SMT, scale)
	if err != nil {
		return nil, err
	}
	m, err := sim.New(cfg, mod)
	if err != nil {
		return nil, err
	}
	defer m.Release()
	r.noteExec()
	res, err = m.Run(ctx)
	if res != nil {
		r.simCycles.Add(uint64(res.Cycles))
	}
	return res, err
}

// runConfigs executes a batch of custom-config runs concurrently and
// returns results index-aligned with cfgs.
func (r *Runner) runConfigs(ctx context.Context, spec *workloads.Spec, scale workloads.Scale, cfgs []sim.Config) ([]*sim.Result, error) {
	out := make([]*sim.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg sim.Config) {
			defer wg.Done()
			out[i], errs[i] = r.runConfig(ctx, spec, scale, cfg)
		}(i, cfg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
