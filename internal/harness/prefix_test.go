package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"testing"

	"hintm/internal/sim"
	"hintm/internal/store"
	"hintm/internal/workloads"
)

// twinGrid is the grid TestPrefixTwinGrid runs under both scheduling modes:
// every HTM kind, every hint mode, and a P8S signature sweep, over two
// workloads and both SMT settings — a superset of the sharing shapes the
// figure grids produce.
func twinGrid() []Request {
	var reqs []Request
	for _, wl := range []string{"labyrinth", "vacation"} {
		for _, smt := range []int{1, 2} {
			for _, kind := range []sim.HTMKind{sim.HTMP8, sim.HTMP8S, sim.HTML1TM, sim.HTMInfCap, sim.HTMSTM} {
				for _, hints := range []sim.HintMode{sim.HintNone, sim.HintStatic, sim.HintDynamic, sim.HintFull} {
					reqs = append(reqs, Request{Workload: wl, Scale: workloads.Small, HTM: kind, Hints: hints, SMT: smt})
				}
			}
			for _, bits := range []uint64{256, 4096} {
				reqs = append(reqs, Request{Workload: wl, Scale: workloads.Small, HTM: sim.HTMP8S, Hints: sim.HintFull, SMT: smt, SigBits: bits})
			}
		}
	}
	return reqs
}

// storeLines canonicalizes a store's full contents as
// "<key> <sha256(result)> <request preimage>" lines.
func storeLines(t *testing.T, st *store.Store) []string {
	t.Helper()
	entries := st.List()
	lines := make([]string, 0, len(entries))
	for _, ie := range entries {
		e, _, err := st.Get(ie.Key)
		if err != nil || e == nil {
			t.Fatalf("store entry %s unreadable: %v", ie.Key, err)
		}
		res := sha256.Sum256(e.Result)
		lines = append(lines, fmt.Sprintf("%s %s %s", e.Key, hex.EncodeToString(res[:]), string(e.Request)))
	}
	sort.Strings(lines)
	return lines
}

// TestPrefixTwinGrid is the grid-level byte-identity pin for warm-up prefix
// sharing: the same grid run cold (sharing off) and shared (sharing on)
// must persist exactly the same store keys and result payloads, at any
// worker count. Run under -race by the Makefile's race target.
func TestPrefixTwinGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full twin grid; skipped in -short mode")
	}
	reqs := twinGrid()
	ctx := context.Background()

	runGrid := func(noShare bool, workers int) ([]string, RunStats) {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts := QuickOptions()
		opts.Filter = []string{"labyrinth", "vacation"}
		opts.Store = st
		opts.Workers = workers
		opts.NoPrefixShare = noShare
		r := NewRunner(opts)
		if _, err := r.RunAll(ctx, reqs); err != nil {
			t.Fatalf("noShare=%v workers=%d: %v", noShare, workers, err)
		}
		return storeLines(t, st), r.Stats()
	}

	coldLines, coldStats := runGrid(true, 4)
	if coldStats.ForkedRuns != 0 || coldStats.PrefixRuns != 0 {
		t.Fatalf("sharing-off runner still shared: %+v", coldStats)
	}
	if coldStats.SimRuns != uint64(len(reqs)) {
		t.Fatalf("cold grid ran %d sims, want %d", coldStats.SimRuns, len(reqs))
	}

	for _, workers := range []int{1, 3, 8} {
		sharedLines, sharedStats := runGrid(false, workers)
		if sharedStats.ForkedRuns == 0 {
			t.Fatalf("workers=%d: sharing-on runner forked nothing: %+v", workers, sharedStats)
		}
		if sharedStats.SimRuns != uint64(len(reqs)) {
			t.Errorf("workers=%d: shared grid produced %d results, want %d", workers, sharedStats.SimRuns, len(reqs))
		}
		// Every sibling group (≥ 2 members by construction) shares one
		// warm-up; the grid has 2 workloads × 2 SMT × 2 dyn-bit settings.
		if sharedStats.PrefixRuns != 8 {
			t.Errorf("workers=%d: %d prefix warm-ups, want 8", workers, sharedStats.PrefixRuns)
		}
		if len(sharedLines) != len(coldLines) {
			t.Fatalf("workers=%d: store sizes differ: shared %d, cold %d", workers, len(sharedLines), len(coldLines))
		}
		for i := range coldLines {
			if sharedLines[i] != coldLines[i] {
				t.Errorf("workers=%d: store line %d differs:\n  cold:   %s\n  shared: %s",
					workers, i, coldLines[i], sharedLines[i])
			}
		}
	}
}

// The prefix key must mask exactly the parameters that cannot influence the
// warm-up (HTM kind, static hints, signature sizing) and keep everything
// that can (workload, scale, SMT, the dynamic-hint bit, seed, run limits).
func TestPrefixKeyMasking(t *testing.T) {
	r := NewRunner(QuickOptions())
	base := Request{Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8, Hints: sim.HintNone, SMT: 1}
	key := r.prefixKey(base)

	same := map[string]Request{
		"htm kind":     {Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMInfCap, Hints: sim.HintNone, SMT: 1},
		"static hints": {Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8, Hints: sim.HintStatic, SMT: 1},
		"sig bits":     {Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8S, Hints: sim.HintNone, SMT: 1, SigBits: 256},
		"zero smt":     {Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8, Hints: sim.HintNone, SMT: 0},
	}
	for name, req := range same {
		if got := r.prefixKey(req); got != key {
			t.Errorf("%s should be masked: key %s != %s", name, got, key)
		}
	}

	diff := map[string]Request{
		"workload": {Workload: "vacation", Scale: workloads.Small, HTM: sim.HTMP8, Hints: sim.HintNone, SMT: 1},
		"scale":    {Workload: "labyrinth", Scale: workloads.Medium, HTM: sim.HTMP8, Hints: sim.HintNone, SMT: 1},
		"smt":      {Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8, Hints: sim.HintNone, SMT: 2},
		"dyn bit":  {Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8, Hints: sim.HintDynamic, SMT: 1},
	}
	for name, req := range diff {
		if got := r.prefixKey(req); got == key {
			t.Errorf("%s must split the group but key matched: %s", name, got)
		}
	}

	// Dynamic and full hints agree on the one bit the warm-up observes.
	dyn := Request{Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8, Hints: sim.HintDynamic, SMT: 1}
	full := Request{Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMInfCap, Hints: sim.HintFull, SMT: 1}
	if r.prefixKey(dyn) != r.prefixKey(full) {
		t.Error("dyn and full hint modes should share a prefix group")
	}

	// A different runner seed must change every key.
	opts := QuickOptions()
	opts.Seed = 99
	if NewRunner(opts).prefixKey(base) == key {
		t.Error("seed not part of the prefix key")
	}
}

// Single Run calls (no grid context) must never plan or pay for a warm-up:
// sharing only activates when RunAll sees ≥ 2 siblings.
func TestSingleRunNeverSharesPrefix(t *testing.T) {
	r := NewRunner(QuickOptions())
	req := Request{Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8, Hints: sim.HintNone}
	if _, err := r.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.PrefixRuns != 0 || st.ForkedRuns != 0 {
		t.Fatalf("lone Run shared a prefix: %+v", st)
	}
	if st.SimRuns != 1 || st.ColdRuns() != 1 {
		t.Fatalf("lone Run accounting: %+v", st)
	}
}

// RunAll groups of fewer than two distinct unsatisfied requests must also
// stay cold — re-running an already-completed grid must not suddenly plan
// warm-ups for store-warm cells.
func TestPrefixPlanningSkipsSatisfiedRequests(t *testing.T) {
	r := NewRunner(QuickOptions())
	ctx := context.Background()
	grid := fig4Grid()
	if _, err := r.RunAll(ctx, grid); err != nil {
		t.Fatal(err)
	}
	first := r.Stats()
	if first.ForkedRuns == 0 {
		t.Fatalf("shareable grid did not share: %+v", first)
	}
	// Second submission: everything memoized, no new prefixes, no new runs.
	if _, err := r.RunAll(ctx, grid); err != nil {
		t.Fatal(err)
	}
	if second := r.Stats(); second != first {
		t.Fatalf("re-submitted grid did new work: %+v -> %+v", first, second)
	}
}

// NoPrefixShare and fault-injected runners must behave exactly as before
// the subsystem existed.
func TestPrefixSharingDisabledPaths(t *testing.T) {
	opts := QuickOptions()
	opts.NoPrefixShare = true
	r := NewRunner(opts)
	if _, err := r.RunAll(context.Background(), fig4Grid()); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.PrefixRuns != 0 || st.ForkedRuns != 0 {
		t.Fatalf("NoPrefixShare runner shared: %+v", st)
	}
	if st.SimRuns != 8 {
		t.Fatalf("cold grid ran %d sims, want 8", st.SimRuns)
	}
}
