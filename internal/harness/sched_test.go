package harness

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hintm/internal/sim"
	"hintm/internal/workloads"
)

// fig4Grid is a small but non-trivial request grid: every (HTM, hint)
// point Fig. 4 needs for one workload.
func fig4Grid() []Request {
	var reqs []Request
	for _, kind := range []sim.HTMKind{sim.HTMP8, sim.HTMInfCap} {
		for _, hints := range []sim.HintMode{sim.HintNone, sim.HintStatic, sim.HintDynamic, sim.HintFull} {
			reqs = append(reqs, Request{
				Workload: "labyrinth", Scale: workloads.Small, HTM: kind, Hints: hints,
			})
		}
	}
	return reqs
}

// TestParallelMatchesSerial is the scheduler's central guarantee: a Runner
// with 8 workers must produce byte-identical figure output and deeply equal
// raw results to a Runner with 1 worker.
func TestParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	reqs := fig4Grid()

	runWith := func(workers int) ([]*sim.Result, string) {
		opts := QuickOptions()
		opts.Filter = []string{"labyrinth"}
		opts.Workers = workers
		r := NewRunner(opts)
		res, err := r.RunAll(ctx, reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var sb strings.Builder
		if err := r.RenderFig4(ctx, &sb); err != nil {
			t.Fatalf("workers=%d render: %v", workers, err)
		}
		return res, sb.String()
	}

	serialRes, serialOut := runWith(1)
	parallelRes, parallelOut := runWith(8)

	if serialOut != parallelOut {
		t.Errorf("rendered Fig 4 differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialOut, parallelOut)
	}
	if len(serialRes) != len(parallelRes) {
		t.Fatalf("result counts differ: %d vs %d", len(serialRes), len(parallelRes))
	}
	for i := range serialRes {
		if !reflect.DeepEqual(serialRes[i], parallelRes[i]) {
			t.Errorf("request %v: results differ between 1 and 8 workers", reqs[i])
		}
	}
}

// TestConcurrentRunnersShareFlights hammers one Runner from many goroutines
// (run under -race by the Makefile's race target): every caller asking for
// the same Request must get the same cached *sim.Result pointer back.
func TestConcurrentRunnersShareFlights(t *testing.T) {
	opts := QuickOptions()
	opts.Workers = 4
	r := NewRunner(opts)
	reqs := fig4Grid()

	const callers = 4
	got := make([][]*sim.Result, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, err := r.RunAll(context.Background(), reqs)
			if err != nil {
				t.Error(err)
				return
			}
			got[c] = res
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for c := 1; c < callers; c++ {
		for i := range reqs {
			if got[c][i] != got[0][i] {
				t.Fatalf("caller %d request %v: distinct *Result — single-flight broken", c, reqs[i])
			}
		}
	}
}

// TestRunAllAlignsDuplicates: duplicate entries in one grid must resolve to
// the one shared result, index-aligned with the input.
func TestRunAllAlignsDuplicates(t *testing.T) {
	r := NewRunner(QuickOptions())
	req := Request{Workload: "kmeans", Scale: workloads.Small}
	res, err := r.RunAll(context.Background(), []Request{req, req, req})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0] == nil || res[0] != res[1] || res[1] != res[2] {
		t.Fatalf("duplicates not deduplicated: %v", res)
	}
}

// TestRunCancellation: a cancelled context must abort promptly with the
// context's error, and must not poison the cache — a later call with a live
// context re-runs and succeeds.
func TestRunCancellation(t *testing.T) {
	r := NewRunner(QuickOptions())
	req := Request{Workload: "labyrinth", Scale: workloads.Small}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	res, err := r.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if res == nil || res.Cycles == 0 {
		t.Fatalf("retry produced empty result: %+v", res)
	}
}

// TestRunAllCancellation: cancelling mid-grid surfaces the context error
// from RunAll and from figure entry points built on it.
func TestRunAllCancellation(t *testing.T) {
	opts := QuickOptions()
	opts.Filter = []string{"labyrinth"}
	r := NewRunner(opts)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunAll(ctx, fig4Grid()); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll err = %v, want context.Canceled", err)
	}
	if _, err := r.Fig4(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig4 err = %v, want context.Canceled", err)
	}
}

// TestRunUnknownWorkload: bad requests fail without touching the pool.
func TestRunUnknownWorkload(t *testing.T) {
	r := NewRunner(QuickOptions())
	if _, err := r.Run(context.Background(), Request{Workload: "ghost"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestRequestNormalization: SMT 0 and SMT 1 are one cache key, and String
// is stable for log/error messages.
func TestRequestNormalization(t *testing.T) {
	a := Request{Workload: "x", Scale: workloads.Small}.normalize()
	b := Request{Workload: "x", Scale: workloads.Small, SMT: 1}.normalize()
	if a != b {
		t.Fatalf("normalize: %+v != %+v", a, b)
	}
	if s := a.String(); !strings.Contains(s, "x/") || !strings.Contains(s, "smt1") {
		t.Fatalf("String = %q", s)
	}
}

// TestRunProfiledRespectsContext: the profiled path honours cancellation
// like every other run.
func TestRunProfiledRespectsContext(t *testing.T) {
	r := NewRunner(QuickOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := Request{Workload: "kmeans", Scale: workloads.Small}
	if _, _, err := r.RunProfiled(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, rep, err := r.RunProfiled(context.Background(), req); err != nil || rep.Pages == 0 {
		t.Fatalf("live profiled run: err=%v report=%+v", err, rep)
	}
}
