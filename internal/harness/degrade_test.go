package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hintm/internal/fault"
	"hintm/internal/sim"
	"hintm/internal/workloads"
)

// The degradation contract: a failed run — injected panic, watchdog trip,
// cycle cap — yields a typed per-request error, the rest of the grid
// completes, and the figures render with the failed cells explicitly marked.

func TestRunRecoversInjectedPanic(t *testing.T) {
	opts := QuickOptions()
	opts.Faults = fault.Plan{PanicTx: 1}
	r := NewRunner(opts)
	res, err := r.Run(context.Background(), Request{Workload: "ssca2", Scale: workloads.Small})
	if res != nil || err == nil {
		t.Fatalf("panicking run returned (%v, %v)", res, err)
	}
	var reqErr *RequestError
	if !errors.As(err, &reqErr) {
		t.Fatalf("err %T does not wrap a RequestError", err)
	}
	if reqErr.Req.Workload != "ssca2" {
		t.Errorf("RequestError names %q, want ssca2", reqErr.Req.Workload)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err does not wrap a PanicError: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack trace")
	}
	var ip fault.InjectedPanic
	if !errors.As(err, &ip) {
		t.Fatalf("err does not unwrap to the injected fault.InjectedPanic: %v", err)
	}
}

func TestRunAllReturnsPartialResults(t *testing.T) {
	// One healthy request, one that cannot even resolve its workload: the
	// grid must complete, keep the good result, and name the bad request.
	r := quick()
	good := Request{Workload: "ssca2", Scale: workloads.Small}
	bad := Request{Workload: "no-such-workload", Scale: workloads.Small}
	out, err := r.RunAll(context.Background(), []Request{good, bad})
	if err == nil {
		t.Fatal("RunAll swallowed the failure")
	}
	if out[0] == nil {
		t.Fatal("healthy request lost its result")
	}
	if out[1] != nil {
		t.Fatal("failed request has a result")
	}
	var reqErr *RequestError
	if !errors.As(err, &reqErr) || reqErr.Req.Workload != "no-such-workload" {
		t.Fatalf("joined error does not identify the failed request: %v", err)
	}
}

func TestWatchdogAndCycleCapSurfaceThroughHarness(t *testing.T) {
	opts := QuickOptions()
	opts.MaxCycles = 1_000 // far below any Small workload's runtime
	r := NewRunner(opts)
	_, err := r.Run(context.Background(), Request{Workload: "ssca2", Scale: workloads.Small})
	if !errors.Is(err, sim.ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles through the harness", err)
	}
	var reqErr *RequestError
	if !errors.As(err, &reqErr) {
		t.Fatalf("cycle-cap failure not wrapped in a RequestError: %v", err)
	}
}

func TestRenderFig4DegradesWithFailedCells(t *testing.T) {
	opts := QuickOptions()
	opts.Filter = []string{"ssca2", "kmeans"}
	opts.Faults = fault.Plan{PanicTx: 40}
	r := NewRunner(opts)

	rows, err := r.Fig4(context.Background())
	if err == nil {
		t.Fatal("Fig4 reported no error for a panicking campaign")
	}
	if len(rows) != 2 {
		t.Fatalf("Fig4 returned %d rows, want 2 (failed cells must stay visible)", len(rows))
	}
	for _, row := range rows {
		if !row.Failed {
			t.Errorf("row %s not marked failed", row.App)
		}
	}

	var sb strings.Builder
	if err := r.RenderFig4(context.Background(), &sb); err == nil {
		t.Fatal("RenderFig4 reported success for a degraded figure")
	}
	outStr := sb.String()
	if !strings.Contains(outStr, "FAILED") {
		t.Fatalf("degraded figure does not mark failed cells:\n%s", outStr)
	}
	if !strings.Contains(outStr, "Fig 4") {
		t.Fatalf("degraded figure lost its structure:\n%s", outStr)
	}
}

func TestWriteSVGsDegrades(t *testing.T) {
	opts := QuickOptions()
	opts.Filter = []string{"ssca2"}
	opts.Faults = fault.Plan{PanicTx: 40}
	r := NewRunner(opts)
	dir := t.TempDir()
	if err := r.WriteSVGs(context.Background(), dir); err == nil {
		t.Fatal("WriteSVGs reported success for a panicking campaign")
	}
	// The SVG files must still exist (charts minus the failed cells).
	for _, name := range []string{"fig4a.svg", "fig8.svg"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("degraded WriteSVGs did not produce %s: %v", name, err)
		}
	}
}

func TestFaultCampaignThroughHarnessIsDeterministic(t *testing.T) {
	run := func() []Fig4Row {
		opts := QuickOptions()
		opts.Filter = []string{"ssca2"}
		opts.Faults = fault.Plan{SpuriousProb: 0.05, InvalDelaySteps: 100, InvalBurst: 4}
		r := NewRunner(opts)
		rows, err := r.Fig4(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault campaign not deterministic through the harness:\n%+v\n%+v", a[i], b[i])
		}
	}
}
