package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"hintm/internal/svgplot"
)

// WriteSVGs renders every figure into dir as standalone SVG files, mirroring
// the paper's figure shapes (grouped bars over applications, CDF curves with
// the 64-block capacity marker). Failed figure cells are omitted from the
// charts and their errors joined into the returned error, so a partially
// failed campaign still produces the plottable remainder.
func (r *Runner) WriteSVGs(ctx context.Context, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var figErrs []error
	write := func(name string, render func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return render(f)
	}

	// Fig 1.
	rows1, err := r.Fig1(ctx)
	if rows1 == nil && err != nil {
		return err
	}
	figErrs = append(figErrs, err)
	if err := write("fig1.svg", func(f *os.File) error {
		c := &svgplot.BarChart{
			Title:   "Fig 1: capacity-abort time and safe-access opportunity",
			YLabel:  "fraction",
			Percent: true,
			Series: []svgplot.Series{
				{Name: "capacity-abort time"}, {Name: "safe pages"},
				{Name: "safe TX reads @4K"}, {Name: "safe TX reads @64B"},
			},
		}
		for _, row := range rows1 {
			if row.Failed {
				continue
			}
			c.Categories = append(c.Categories, row.App)
			c.Series[0].Values = append(c.Series[0].Values, row.CapacityTime)
			c.Series[1].Values = append(c.Series[1].Values, row.SafePages)
			c.Series[2].Values = append(c.Series[2].Values, row.SafeReadsPage)
			c.Series[3].Values = append(c.Series[3].Values, row.SafeReadsBlock)
		}
		return c.WriteSVG(f)
	}); err != nil {
		return err
	}

	// Fig 4a / 4b.
	rows4, err := r.Fig4(ctx)
	if rows4 == nil && err != nil {
		return err
	}
	figErrs = append(figErrs, err)
	if err := write("fig4a.svg", func(f *os.File) error {
		c := &svgplot.BarChart{
			Title:   "Fig 4a: capacity-abort reduction vs P8",
			YLabel:  "aborts eliminated",
			Percent: true,
			YMax:    1,
			Series: []svgplot.Series{
				{Name: "HinTM-st"}, {Name: "HinTM-dyn"}, {Name: "HinTM"},
			},
		}
		for _, row := range rows4 {
			if row.Failed {
				continue
			}
			c.Categories = append(c.Categories, row.App)
			c.Series[0].Values = append(c.Series[0].Values, row.CapRedSt)
			c.Series[1].Values = append(c.Series[1].Values, row.CapRedDyn)
			c.Series[2].Values = append(c.Series[2].Values, row.CapRedFull)
		}
		return c.WriteSVG(f)
	}); err != nil {
		return err
	}
	if err := write("fig4b.svg", func(f *os.File) error {
		c := &svgplot.BarChart{
			Title:  "Fig 4b: speedup over P8",
			YLabel: "speedup (x)",
			Series: []svgplot.Series{
				{Name: "HinTM-st"}, {Name: "HinTM-dyn"}, {Name: "HinTM"}, {Name: "InfCap"},
			},
		}
		for _, row := range rows4 {
			if row.Failed {
				continue
			}
			c.Categories = append(c.Categories, row.App)
			c.Series[0].Values = append(c.Series[0].Values, row.SpeedupSt)
			c.Series[1].Values = append(c.Series[1].Values, row.SpeedupDyn)
			c.Series[2].Values = append(c.Series[2].Values, row.SpeedupFull)
			c.Series[3].Values = append(c.Series[3].Values, row.SpeedupInf)
		}
		return c.WriteSVG(f)
	}); err != nil {
		return err
	}

	// Fig 5 (stacked).
	rows5, err := r.Fig5(ctx)
	if rows5 == nil && err != nil {
		return err
	}
	figErrs = append(figErrs, err)
	if err := write("fig5.svg", func(f *os.File) error {
		c := &svgplot.BarChart{
			Title:   "Fig 5: transactional access breakdown",
			YLabel:  "fraction of TX accesses",
			Percent: true,
			YMax:    1,
			Stacked: true,
			Series: []svgplot.Series{
				{Name: "compiler-safe"}, {Name: "runtime-safe"}, {Name: "unsafe"},
			},
		}
		for _, row := range rows5 {
			if row.Failed {
				continue
			}
			c.Categories = append(c.Categories, row.App)
			c.Series[0].Values = append(c.Series[0].Values, row.StaticFrac)
			c.Series[1].Values = append(c.Series[1].Values, row.DynFrac)
			c.Series[2].Values = append(c.Series[2].Values, row.UnsafeFrac)
		}
		return c.WriteSVG(f)
	}); err != nil {
		return err
	}

	// Fig 6 CDFs (one file per app).
	series6, err := r.Fig6(ctx)
	if series6 == nil && err != nil {
		return err
	}
	figErrs = append(figErrs, err)
	for _, s := range series6 {
		s := s
		if s.Failed {
			continue
		}
		name := fmt.Sprintf("fig6-%s.svg", s.App)
		if err := write(name, func(f *os.File) error {
			xs := make([]float64, len(s.Points))
			for i, p := range s.Points {
				xs[i] = float64(p)
			}
			c := &svgplot.LineChart{
				Title:  fmt.Sprintf("Fig 6: TX size CDF — %s", s.App),
				XLabel: "tracked footprint (cache blocks)",
				YLabel: "fraction of TXs",
				VLineX: 64,
				Lines: []svgplot.Line{
					{Name: "baseline", X: xs, Y: s.Base},
					{Name: "HinTM-st", X: xs, Y: s.St},
					{Name: "HinTM", X: xs, Y: s.Full},
				},
			}
			return c.WriteSVG(f)
		}); err != nil {
			return err
		}
	}

	// Fig 7b and Fig 8 speedups.
	rows7, err := r.Fig7(ctx)
	if rows7 == nil && err != nil {
		return err
	}
	figErrs = append(figErrs, err)
	if err := write("fig7b.svg", func(f *os.File) error {
		c := &svgplot.BarChart{
			Title:  "Fig 7b: speedup over P8S (large inputs)",
			YLabel: "speedup (x)",
			Series: []svgplot.Series{
				{Name: "HinTM-st"}, {Name: "HinTM-dyn"}, {Name: "HinTM"}, {Name: "InfCap"},
			},
		}
		for _, row := range rows7 {
			if row.Failed {
				continue
			}
			c.Categories = append(c.Categories, row.App)
			c.Series[0].Values = append(c.Series[0].Values, row.SpeedupSt)
			c.Series[1].Values = append(c.Series[1].Values, row.SpeedupDyn)
			c.Series[2].Values = append(c.Series[2].Values, row.SpeedupFull)
			c.Series[3].Values = append(c.Series[3].Values, row.SpeedupInf)
		}
		return c.WriteSVG(f)
	}); err != nil {
		return err
	}
	rows8, err := r.Fig8(ctx)
	if rows8 == nil && err != nil {
		return err
	}
	figErrs = append(figErrs, err)
	if err := write("fig8.svg", func(f *os.File) error {
		c := &svgplot.BarChart{
			Title:  "Fig 8: speedup over L1TM with 2-way SMT (large inputs)",
			YLabel: "speedup (x)",
			Series: []svgplot.Series{
				{Name: "HinTM-st"}, {Name: "HinTM-dyn"}, {Name: "HinTM"}, {Name: "InfCap"},
			},
		}
		for _, row := range rows8 {
			if row.Failed {
				continue
			}
			c.Categories = append(c.Categories, row.App)
			c.Series[0].Values = append(c.Series[0].Values, row.SpeedupSt)
			c.Series[1].Values = append(c.Series[1].Values, row.SpeedupDyn)
			c.Series[2].Values = append(c.Series[2].Values, row.SpeedupFull)
			c.Series[3].Values = append(c.Series[3].Values, row.SpeedupInf)
		}
		return c.WriteSVG(f)
	}); err != nil {
		return err
	}
	return joinErrors(figErrs)
}
