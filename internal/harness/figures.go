package harness

import (
	"context"
	"fmt"
	"io"
	"sync"

	"hintm/internal/htm"
	"hintm/internal/profile"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/workloads"
)

// Every figure follows the same shape: build the whole Request grid up
// front, submit it to the scheduler in one RunAll/gather call (so the
// worker pool can run the grid's independent simulations concurrently), and
// then reduce the per-request results into rows in deterministic workload
// order.
//
// Figures degrade gracefully: when some of a figure's requests fail (panic,
// livelock, cycle cap), the builder still returns every computable row,
// marks the dead cells with Failed, and returns the joined error alongside
// them. Renderers print FAILED markers for those cells, exclude them from
// means, and pass the error on — so hintm-bench shows the surviving figure
// and exits non-zero. Only a cancelled context aborts a figure outright.

// anyNil reports whether any needed result is missing (its request failed).
func anyNil(results ...*sim.Result) bool {
	for _, res := range results {
		if res == nil {
			return true
		}
	}
	return false
}

// fig7Apps is the subset the paper's larger-HTM studies show.
var fig7Apps = []string{"bayes", "genome", "labyrinth", "tpcc-no", "vacation", "yada"}

// req builds the single-SMT request most figures use.
func req(app string, scale workloads.Scale, kind sim.HTMKind, hints sim.HintMode) Request {
	return Request{Workload: app, Scale: scale, HTM: kind, Hints: hints, SMT: 1}
}

// Fig1Row reproduces one bar group of paper Fig. 1.
type Fig1Row struct {
	App string
	// CapacityTime: fraction of P8 runtime attributable to capacity aborts,
	// derived as 1 - cycles(InfCap)/cycles(P8) (the paper's method).
	CapacityTime float64
	// SafePages: fraction of touched pages safe over the execution.
	SafePages float64
	// SafeReadsPage / SafeReadsBlock: fraction of transactional accesses
	// that are reads to safe regions at 4 KiB / 64 B granularity.
	SafeReadsPage, SafeReadsBlock float64
	// Failed marks a row whose underlying runs failed; value fields are zero.
	Failed bool
}

// Fig1 runs the opportunity study.
func (r *Runner) Fig1(ctx context.Context) ([]Fig1Row, error) {
	specs, err := r.specs()
	if err != nil {
		return nil, err
	}
	reqs := make([]Request, 0, 2*len(specs))
	for _, spec := range specs {
		reqs = append(reqs,
			req(spec.Name, r.opts.Scale, sim.HTMP8, sim.HintNone),
			req(spec.Name, r.opts.Scale, sim.HTMInfCap, sim.HintNone))
	}

	// The profiled runs carry a per-run observer and so cannot share the
	// memoized grid; they ride the same worker pool concurrently with it.
	profs := make([]profile.Report, len(specs))
	perrs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, app string) {
			defer wg.Done()
			_, profs[i], perrs[i] = r.RunProfiled(ctx,
				req(app, r.opts.Scale, sim.HTMInfCap, sim.HintNone))
		}(i, spec.Name)
	}
	byReq, err := r.gather(ctx, reqs)
	wg.Wait()
	if byReq == nil {
		return nil, err
	}
	err = joinErrors(append(perrs, err))

	var rows []Fig1Row
	for i, spec := range specs {
		p8 := byReq[req(spec.Name, r.opts.Scale, sim.HTMP8, sim.HintNone)]
		inf := byReq[req(spec.Name, r.opts.Scale, sim.HTMInfCap, sim.HintNone)]
		if anyNil(p8, inf) || perrs[i] != nil {
			rows = append(rows, Fig1Row{App: spec.Name, Failed: true})
			continue
		}
		capTime := 1 - float64(inf.Cycles)/float64(p8.Cycles)
		if capTime < 0 {
			capTime = 0
		}
		rows = append(rows, Fig1Row{
			App:            spec.Name,
			CapacityTime:   capTime,
			SafePages:      profs[i].SafePageFrac,
			SafeReadsPage:  profs[i].SafeReadFracPage,
			SafeReadsBlock: profs[i].SafeReadFracBlock,
		})
	}
	return rows, err
}

// RenderFig1 prints the figure as a table.
func (r *Runner) RenderFig1(ctx context.Context, w io.Writer) error {
	rows, err := r.Fig1(ctx)
	if rows == nil {
		return err
	}
	fmt.Fprint(w, Title("Fig 1: capacity-abort time and safe-access opportunity (P8)"))
	t := stats.NewTable("app", "capacity-time", "safe-pages", "safe-reads@4K", "safe-reads@64B")
	chart := stats.NewBarChart("%")
	var ct, sp, srp, srb []float64
	for _, row := range rows {
		if row.Failed {
			t.Row(row.App, "FAILED", "-", "-", "-")
			chart.FailedBar(row.App)
			continue
		}
		t.Row(row.App, stats.Pct(row.CapacityTime), stats.Pct(row.SafePages),
			stats.Pct(row.SafeReadsPage), stats.Pct(row.SafeReadsBlock))
		ct = append(ct, row.CapacityTime)
		sp = append(sp, row.SafePages)
		srp = append(srp, row.SafeReadsPage)
		srb = append(srb, row.SafeReadsBlock)
		chart.Bar(row.App, row.CapacityTime*100)
	}
	t.Row("MEAN", stats.Pct(mean(ct)), stats.Pct(mean(sp)), stats.Pct(mean(srp)), stats.Pct(mean(srb)))
	t.Render(w)
	fmt.Fprintln(w, "\nruntime lost to capacity aborts:")
	chart.Render(w)
	return err
}

// Fig4Row reproduces one application of paper Fig. 4 (P8 baseline).
type Fig4Row struct {
	App               string
	BaseCapacity      uint64
	CapRedSt          float64
	CapRedDyn         float64
	CapRedFull        float64
	SpeedupSt         float64
	SpeedupDyn        float64
	SpeedupFull       float64
	SpeedupInf        float64
	PageModeCycleFrac float64 // under HinTM (full), Fig. 4b secondary axis
	// Failed marks a row whose underlying runs failed; value fields are zero.
	Failed bool
}

// Fig4 runs the P8 capacity-abort-reduction and speedup study.
func (r *Runner) Fig4(ctx context.Context) ([]Fig4Row, error) {
	return r.figOnHTM(ctx, sim.HTMP8, r.opts.Scale, nil)
}

// figOnHTM runs the {baseline, st, dyn, full, InfCap} sweep on one HTM
// kind. With apps == nil the sweep covers the runner's selected workloads;
// otherwise exactly the named ones.
func (r *Runner) figOnHTM(ctx context.Context, kind sim.HTMKind, scale workloads.Scale, apps []string) ([]Fig4Row, error) {
	specs, err := r.specs()
	if err != nil {
		return nil, err
	}
	if apps != nil {
		specs = make([]*workloads.Spec, 0, len(apps))
		for _, name := range apps {
			spec, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	var reqs []Request
	for _, spec := range specs {
		reqs = append(reqs,
			req(spec.Name, scale, kind, sim.HintNone),
			req(spec.Name, scale, kind, sim.HintStatic),
			req(spec.Name, scale, kind, sim.HintDynamic),
			req(spec.Name, scale, kind, sim.HintFull),
			req(spec.Name, scale, sim.HTMInfCap, sim.HintNone))
	}
	byReq, err := r.gather(ctx, reqs)
	if byReq == nil {
		return nil, err
	}
	var rows []Fig4Row
	for _, spec := range specs {
		base := byReq[req(spec.Name, scale, kind, sim.HintNone)]
		st := byReq[req(spec.Name, scale, kind, sim.HintStatic)]
		dyn := byReq[req(spec.Name, scale, kind, sim.HintDynamic)]
		full := byReq[req(spec.Name, scale, kind, sim.HintFull)]
		inf := byReq[req(spec.Name, scale, sim.HTMInfCap, sim.HintNone)]
		if anyNil(base, st, dyn, full, inf) {
			rows = append(rows, Fig4Row{App: spec.Name, Failed: true})
			continue
		}
		baseCap := base.Aborts[htm.AbortCapacity]
		rows = append(rows, Fig4Row{
			App:               spec.Name,
			BaseCapacity:      baseCap,
			CapRedSt:          reduction(baseCap, st.Aborts[htm.AbortCapacity]),
			CapRedDyn:         reduction(baseCap, dyn.Aborts[htm.AbortCapacity]),
			CapRedFull:        reduction(baseCap, full.Aborts[htm.AbortCapacity]),
			SpeedupSt:         speedup(base.Cycles, st.Cycles),
			SpeedupDyn:        speedup(base.Cycles, dyn.Cycles),
			SpeedupFull:       speedup(base.Cycles, full.Cycles),
			SpeedupInf:        speedup(base.Cycles, inf.Cycles),
			PageModeCycleFrac: full.PageModeCycleFraction(),
		})
	}
	return rows, err
}

// RenderFig4 prints Fig. 4a+4b.
func (r *Runner) RenderFig4(ctx context.Context, w io.Writer) error {
	rows, err := r.Fig4(ctx)
	if rows == nil {
		return err
	}
	renderHTMSweep(w, rows,
		"Fig 4a: capacity-abort reduction vs P8",
		"Fig 4b: speedup over P8 (and page-mode cycle fraction)")
	return err
}

func renderHTMSweep(w io.Writer, rows []Fig4Row, titleA, titleB string) {
	fmt.Fprint(w, Title(titleA))
	ta := stats.NewTable("app", "base-cap-aborts", "HinTM-st", "HinTM-dyn", "HinTM")
	var rs, rd, rf []float64
	for _, row := range rows {
		if row.Failed {
			ta.Row(row.App, "FAILED", "-", "-", "-")
			continue
		}
		ta.Row(row.App, row.BaseCapacity, stats.Pct(row.CapRedSt),
			stats.Pct(row.CapRedDyn), stats.Pct(row.CapRedFull))
		if row.BaseCapacity > 0 {
			rs = append(rs, row.CapRedSt)
			rd = append(rd, row.CapRedDyn)
			rf = append(rf, row.CapRedFull)
		}
	}
	ta.Row("MEAN", "-", stats.Pct(mean(rs)), stats.Pct(mean(rd)), stats.Pct(mean(rf)))
	ta.Render(w)

	fmt.Fprint(w, Title(titleB))
	tb := stats.NewTable("app", "HinTM-st", "HinTM-dyn", "HinTM", "InfCap", "pagemode-cycles")
	chart := stats.NewBarChart("x")
	var ss, sd, sf, si []float64
	for _, row := range rows {
		if row.Failed {
			tb.Row(row.App, "FAILED", "-", "-", "-", "-")
			chart.FailedBar(row.App)
			continue
		}
		tb.Row(row.App,
			fmt.Sprintf("%.2fx", row.SpeedupSt),
			fmt.Sprintf("%.2fx", row.SpeedupDyn),
			fmt.Sprintf("%.2fx", row.SpeedupFull),
			fmt.Sprintf("%.2fx", row.SpeedupInf),
			stats.Pct(row.PageModeCycleFrac))
		ss = append(ss, row.SpeedupSt)
		sd = append(sd, row.SpeedupDyn)
		sf = append(sf, row.SpeedupFull)
		si = append(si, row.SpeedupInf)
		chart.Bar(row.App, row.SpeedupFull)
	}
	tb.Row("GEOMEAN",
		fmt.Sprintf("%.2fx", geomean(ss)),
		fmt.Sprintf("%.2fx", geomean(sd)),
		fmt.Sprintf("%.2fx", geomean(sf)),
		fmt.Sprintf("%.2fx", geomean(si)), "-")
	tb.Render(w)
	fmt.Fprintln(w, "\nHinTM speedup:")
	chart.Render(w)
}

// Fig5Row reproduces paper Fig. 5: the transactional access breakdown.
type Fig5Row struct {
	App                             string
	StaticFrac, DynFrac, UnsafeFrac float64
	// Failed marks a row whose underlying run failed; value fields are zero.
	Failed bool
}

// Fig5 measures the access breakdown under InfCap + HinTM (the paper's
// "HinTM + preserve" collection mode: no capacity aborts skew the counts).
func (r *Runner) Fig5(ctx context.Context) ([]Fig5Row, error) {
	specs, err := r.specs()
	if err != nil {
		return nil, err
	}
	var keep []*workloads.Spec
	var reqs []Request
	for _, spec := range specs {
		if spec.Name == "kmeans" || spec.Name == "ssca2" {
			continue // the paper omits them for brevity
		}
		keep = append(keep, spec)
		reqs = append(reqs, req(spec.Name, r.opts.Scale, sim.HTMInfCap, sim.HintFull))
	}
	results, err := r.RunAll(ctx, reqs)
	if err != nil && ctx.Err() != nil {
		return nil, err
	}
	var rows []Fig5Row
	for i, spec := range keep {
		res := results[i]
		if res == nil {
			rows = append(rows, Fig5Row{App: spec.Name, Failed: true})
			continue
		}
		total := float64(res.TxAccesses())
		if total == 0 {
			total = 1
		}
		rows = append(rows, Fig5Row{
			App:        spec.Name,
			StaticFrac: float64(res.StaticSafeAccesses) / total,
			DynFrac:    float64(res.DynSafeAccesses) / total,
			UnsafeFrac: float64(res.UnsafeTxAccesses) / total,
		})
	}
	return rows, err
}

// RenderFig5 prints the breakdown.
func (r *Runner) RenderFig5(ctx context.Context, w io.Writer) error {
	rows, err := r.Fig5(ctx)
	if rows == nil {
		return err
	}
	fmt.Fprint(w, Title("Fig 5: transactional access breakdown (compiler/runtime/unsafe)"))
	t := stats.NewTable("app", "static-safe", "dynamic-safe", "unsafe")
	var sf, df []float64
	for _, row := range rows {
		if row.Failed {
			t.Row(row.App, "FAILED", "-", "-")
			continue
		}
		t.Row(row.App, stats.Pct(row.StaticFrac), stats.Pct(row.DynFrac), stats.Pct(row.UnsafeFrac))
		sf = append(sf, row.StaticFrac)
		df = append(df, row.DynFrac)
	}
	t.Row("MEAN", stats.Pct(mean(sf)), stats.Pct(mean(df)), stats.Pct(1-mean(sf)-mean(df)))
	t.Render(w)
	return err
}

// Fig6Series reproduces one subplot of paper Fig. 6: transaction-footprint
// CDFs under baseline / HinTM-st / HinTM tracking, collected on InfCap.
type Fig6Series struct {
	App            string
	Points         []int
	Base, St, Full []float64
	// Failed marks a series whose underlying runs failed; CDFs are nil.
	Failed bool
}

// fig6Apps matches the paper's four subplots.
var fig6Apps = []string{"genome", "labyrinth", "bayes", "vacation"}

// Fig6 collects the CDFs.
func (r *Runner) Fig6(ctx context.Context) ([]Fig6Series, error) {
	points := []int{4, 8, 16, 24, 32, 40, 48, 56, 64}
	var apps []string
	for _, name := range fig6Apps {
		if len(r.opts.Filter) > 0 && !contains(r.opts.Filter, name) {
			continue
		}
		if _, err := workloads.ByName(name); err != nil {
			return nil, err
		}
		apps = append(apps, name)
	}
	var reqs []Request
	for _, name := range apps {
		reqs = append(reqs,
			req(name, r.opts.Scale, sim.HTMInfCap, sim.HintNone),
			req(name, r.opts.Scale, sim.HTMInfCap, sim.HintStatic),
			req(name, r.opts.Scale, sim.HTMInfCap, sim.HintFull))
	}
	byReq, err := r.gather(ctx, reqs)
	if byReq == nil {
		return nil, err
	}
	var out []Fig6Series
	for _, name := range apps {
		base := byReq[req(name, r.opts.Scale, sim.HTMInfCap, sim.HintNone)]
		st := byReq[req(name, r.opts.Scale, sim.HTMInfCap, sim.HintStatic)]
		full := byReq[req(name, r.opts.Scale, sim.HTMInfCap, sim.HintFull)]
		if anyNil(base, st, full) {
			out = append(out, Fig6Series{App: name, Points: points, Failed: true})
			continue
		}
		out = append(out, Fig6Series{
			App:    name,
			Points: points,
			Base:   base.TxFootprints.CDF(points),
			St:     st.TxFootprints.CDF(points),
			Full:   full.TxFootprints.CDF(points),
		})
	}
	return out, err
}

// RenderFig6 prints the CDFs.
func (r *Runner) RenderFig6(ctx context.Context, w io.Writer) error {
	series, err := r.Fig6(ctx)
	if series == nil && err != nil {
		return err
	}
	for _, s := range series {
		fmt.Fprint(w, Title(fmt.Sprintf("Fig 6: TX size CDF — %s (x = blocks, P8 capacity = 64)", s.App)))
		if s.Failed {
			fmt.Fprintln(w, "FAILED: underlying runs did not complete")
			continue
		}
		t := stats.NewTable("blocks", "baseline", "HinTM-st", "HinTM")
		for i, p := range s.Points {
			t.Row(p, s.Base[i], s.St[i], s.Full[i])
		}
		t.Render(w)
	}
	return err
}

// Fig7Row reproduces one application of paper Fig. 7 (P8S baseline).
type Fig7Row struct {
	App          string
	BaseCapacity uint64
	BaseFalse    uint64
	CapRedSt     float64
	CapRedDyn    float64
	CapRedFull   float64
	FalseRedFull float64
	SpeedupSt    float64
	SpeedupDyn   float64
	SpeedupFull  float64
	SpeedupInf   float64
	// Failed marks a row whose underlying runs failed; value fields are zero.
	Failed bool
}

// Fig7 runs the P8S study on larger inputs.
func (r *Runner) Fig7(ctx context.Context) ([]Fig7Row, error) {
	specs, err := r.specs()
	if err != nil {
		return nil, err
	}
	var keep []*workloads.Spec
	var reqs []Request
	for _, spec := range specs {
		if !contains(fig7Apps, spec.Name) {
			continue
		}
		keep = append(keep, spec)
		reqs = append(reqs,
			req(spec.Name, r.opts.LargeScale, sim.HTMP8S, sim.HintNone),
			req(spec.Name, r.opts.LargeScale, sim.HTMP8S, sim.HintStatic),
			req(spec.Name, r.opts.LargeScale, sim.HTMP8S, sim.HintDynamic),
			req(spec.Name, r.opts.LargeScale, sim.HTMP8S, sim.HintFull),
			req(spec.Name, r.opts.LargeScale, sim.HTMInfCap, sim.HintNone))
	}
	byReq, err := r.gather(ctx, reqs)
	if byReq == nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, spec := range keep {
		base := byReq[req(spec.Name, r.opts.LargeScale, sim.HTMP8S, sim.HintNone)]
		st := byReq[req(spec.Name, r.opts.LargeScale, sim.HTMP8S, sim.HintStatic)]
		dyn := byReq[req(spec.Name, r.opts.LargeScale, sim.HTMP8S, sim.HintDynamic)]
		full := byReq[req(spec.Name, r.opts.LargeScale, sim.HTMP8S, sim.HintFull)]
		inf := byReq[req(spec.Name, r.opts.LargeScale, sim.HTMInfCap, sim.HintNone)]
		if anyNil(base, st, dyn, full, inf) {
			rows = append(rows, Fig7Row{App: spec.Name, Failed: true})
			continue
		}
		baseCap := base.Aborts[htm.AbortCapacity]
		baseFalse := base.Aborts[htm.AbortFalseConflict]
		rows = append(rows, Fig7Row{
			App:          spec.Name,
			BaseCapacity: baseCap,
			BaseFalse:    baseFalse,
			CapRedSt:     reduction(baseCap, st.Aborts[htm.AbortCapacity]),
			CapRedDyn:    reduction(baseCap, dyn.Aborts[htm.AbortCapacity]),
			CapRedFull:   reduction(baseCap, full.Aborts[htm.AbortCapacity]),
			FalseRedFull: reduction(baseFalse, full.Aborts[htm.AbortFalseConflict]),
			SpeedupSt:    speedup(base.Cycles, st.Cycles),
			SpeedupDyn:   speedup(base.Cycles, dyn.Cycles),
			SpeedupFull:  speedup(base.Cycles, full.Cycles),
			SpeedupInf:   speedup(base.Cycles, inf.Cycles),
		})
	}
	return rows, err
}

// RenderFig7 prints the P8S study.
func (r *Runner) RenderFig7(ctx context.Context, w io.Writer) error {
	rows, err := r.Fig7(ctx)
	if rows == nil {
		return err
	}
	fmt.Fprint(w, Title("Fig 7a: capacity & false-conflict abort reduction vs P8S (large inputs)"))
	ta := stats.NewTable("app", "base-cap", "base-false", "cap-red-st", "cap-red-dyn", "cap-red-full", "false-red-full")
	for _, row := range rows {
		if row.Failed {
			ta.Row(row.App, "FAILED", "-", "-", "-", "-", "-")
			continue
		}
		ta.Row(row.App, row.BaseCapacity, row.BaseFalse, stats.Pct(row.CapRedSt),
			stats.Pct(row.CapRedDyn), stats.Pct(row.CapRedFull), stats.Pct(row.FalseRedFull))
	}
	ta.Render(w)

	fmt.Fprint(w, Title("Fig 7b: speedup over P8S"))
	tb := stats.NewTable("app", "HinTM-st", "HinTM-dyn", "HinTM", "InfCap")
	var sf []float64
	for _, row := range rows {
		if row.Failed {
			tb.Row(row.App, "FAILED", "-", "-", "-")
			continue
		}
		tb.Row(row.App,
			fmt.Sprintf("%.2fx", row.SpeedupSt),
			fmt.Sprintf("%.2fx", row.SpeedupDyn),
			fmt.Sprintf("%.2fx", row.SpeedupFull),
			fmt.Sprintf("%.2fx", row.SpeedupInf))
		sf = append(sf, row.SpeedupFull)
	}
	tb.Row("GEOMEAN", "-", "-", fmt.Sprintf("%.2fx", geomean(sf)), "-")
	tb.Render(w)
	return err
}

// Fig8Row reproduces paper Fig. 8 (L1TM with 2-way SMT, large inputs).
type Fig8Row struct {
	App               string
	BaseCapacity      uint64
	CapRedFull        float64
	SpeedupSt         float64
	SpeedupDyn        float64
	SpeedupFull       float64
	SpeedupInf        float64
	PageModeCycleFrac float64
	// Failed marks a row whose underlying runs failed; value fields are zero.
	Failed bool
}

// Fig8 runs the L1TM/SMT study.
func (r *Runner) Fig8(ctx context.Context) ([]Fig8Row, error) {
	specs, err := r.specs()
	if err != nil {
		return nil, err
	}
	smt2 := func(app string, kind sim.HTMKind, hints sim.HintMode) Request {
		return Request{Workload: app, Scale: r.opts.LargeScale, HTM: kind, Hints: hints, SMT: 2}
	}
	var keep []*workloads.Spec
	var reqs []Request
	for _, spec := range specs {
		if !contains(fig7Apps, spec.Name) {
			continue
		}
		keep = append(keep, spec)
		reqs = append(reqs,
			smt2(spec.Name, sim.HTML1TM, sim.HintNone),
			smt2(spec.Name, sim.HTML1TM, sim.HintStatic),
			smt2(spec.Name, sim.HTML1TM, sim.HintDynamic),
			smt2(spec.Name, sim.HTML1TM, sim.HintFull),
			smt2(spec.Name, sim.HTMInfCap, sim.HintNone))
	}
	byReq, err := r.gather(ctx, reqs)
	if byReq == nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, spec := range keep {
		base := byReq[smt2(spec.Name, sim.HTML1TM, sim.HintNone)]
		st := byReq[smt2(spec.Name, sim.HTML1TM, sim.HintStatic)]
		dyn := byReq[smt2(spec.Name, sim.HTML1TM, sim.HintDynamic)]
		full := byReq[smt2(spec.Name, sim.HTML1TM, sim.HintFull)]
		inf := byReq[smt2(spec.Name, sim.HTMInfCap, sim.HintNone)]
		if anyNil(base, st, dyn, full, inf) {
			rows = append(rows, Fig8Row{App: spec.Name, Failed: true})
			continue
		}
		baseCap := base.Aborts[htm.AbortCapacity]
		rows = append(rows, Fig8Row{
			App:               spec.Name,
			BaseCapacity:      baseCap,
			CapRedFull:        reduction(baseCap, full.Aborts[htm.AbortCapacity]),
			SpeedupSt:         speedup(base.Cycles, st.Cycles),
			SpeedupDyn:        speedup(base.Cycles, dyn.Cycles),
			SpeedupFull:       speedup(base.Cycles, full.Cycles),
			SpeedupInf:        speedup(base.Cycles, inf.Cycles),
			PageModeCycleFrac: full.PageModeCycleFraction(),
		})
	}
	return rows, err
}

// RenderFig8 prints the L1TM study.
func (r *Runner) RenderFig8(ctx context.Context, w io.Writer) error {
	rows, err := r.Fig8(ctx)
	if rows == nil {
		return err
	}
	fmt.Fprint(w, Title("Fig 8: speedup over L1TM with 2-way SMT (large inputs)"))
	t := stats.NewTable("app", "base-cap-aborts", "cap-red-full", "HinTM-st", "HinTM-dyn", "HinTM", "InfCap", "pagemode-cycles")
	var sf []float64
	for _, row := range rows {
		if row.Failed {
			t.Row(row.App, "FAILED", "-", "-", "-", "-", "-", "-")
			continue
		}
		t.Row(row.App, row.BaseCapacity, stats.Pct(row.CapRedFull),
			fmt.Sprintf("%.2fx", row.SpeedupSt),
			fmt.Sprintf("%.2fx", row.SpeedupDyn),
			fmt.Sprintf("%.2fx", row.SpeedupFull),
			fmt.Sprintf("%.2fx", row.SpeedupInf),
			stats.Pct(row.PageModeCycleFrac))
		sf = append(sf, row.SpeedupFull)
	}
	t.Row("GEOMEAN", "-", "-", "-", "-", fmt.Sprintf("%.2fx", geomean(sf)), "-", "-")
	t.Render(w)
	return err
}

// Extras runs the Fig.-4-style sweep over the non-paper microbenchmarks.
func (r *Runner) Extras(ctx context.Context) ([]Fig4Row, error) {
	return r.figOnHTM(ctx, sim.HTMP8, r.opts.Scale, []string{"intset-ll", "intset-hash"})
}

// RenderExtras prints the microbenchmark sweep.
func (r *Runner) RenderExtras(ctx context.Context, w io.Writer) error {
	rows, err := r.Extras(ctx)
	if rows == nil {
		return err
	}
	renderHTMSweep(w, rows,
		"Extras: capacity-abort reduction vs P8 (intset microbenchmarks)",
		"Extras: speedup over P8 — note the honest negative: pointer chasing over shared RW nodes defeats both classifiers")
	return err
}

// RenderAll runs every figure in order. A figure with failed cells renders
// degraded and its error is collected; only a cancelled context (or a
// figure yielding nothing at all) stops the sequence early.
func (r *Runner) RenderAll(ctx context.Context, w io.Writer) error {
	var errs []error
	figures := []struct {
		name   string
		render func(context.Context, io.Writer) error
	}{
		{"fig1", r.RenderFig1}, {"fig4", r.RenderFig4}, {"fig5", r.RenderFig5},
		{"fig6", r.RenderFig6}, {"fig7", r.RenderFig7}, {"fig8", r.RenderFig8},
	}
	spans := make([]RunStats, 0, len(figures))
	names := make([]string, 0, len(figures))
	for _, f := range figures {
		before := r.Stats()
		err := f.render(ctx, w)
		spans = append(spans, r.Stats().Sub(before))
		names = append(names, f.name)
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			errs = append(errs, err)
		}
	}
	r.renderRunSummary(w, names, spans)
	return joinErrors(errs)
}

// renderRunSummary appends the per-figure production breakdown to every
// full render: how each figure's simulations were obtained (full cold runs,
// content-addressed store recalls, prefix-forked resumes) plus the shared
// warm-ups executed and the wall time spent forking snapshots. Shared runs
// attribute to the first figure that needed them, so later figures showing
// zeros means the memoization is working, not that they rendered for free.
// RenderRunSummary is the single-figure entry point to the same table:
// callers that render one figure directly (hintm-bench fig4 etc.) pass the
// figure name and the stats span their render consumed.
func (r *Runner) RenderRunSummary(w io.Writer, name string, span RunStats) {
	r.renderRunSummary(w, []string{name}, []RunStats{span})
}

func (r *Runner) renderRunSummary(w io.Writer, names []string, spans []RunStats) {
	fmt.Fprint(w, Title("Run summary: how each figure's simulations were produced"))
	// Fork wall time is deliberately absent here: stdout must stay
	// byte-identical across worker counts and sharing modes aside, and a
	// wall clock never is. It lives in BENCH_results.json (forkWallNanos),
	// where bench-diff gates it with a tolerance.
	tb := stats.NewTable("figure", "cold", "store-hit", "prefix-forked", "prefix-runs", "shared-cycles")
	var total RunStats
	for i, name := range names {
		d := spans[i]
		tb.Row(name, d.ColdRuns(), d.StoreHits, d.ForkedRuns, d.PrefixRuns, d.SharedCycles)
		total.SimRuns += d.SimRuns
		total.StoreHits += d.StoreHits
		total.PrefixRuns += d.PrefixRuns
		total.ForkedRuns += d.ForkedRuns
		total.ForkSeconds += d.ForkSeconds
		total.SharedCycles += d.SharedCycles
	}
	tb.Row("TOTAL", total.ColdRuns(), total.StoreHits, total.ForkedRuns, total.PrefixRuns,
		total.SharedCycles)
	tb.Render(w)
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// RenderTable1 prints HinTM's modeled hardware additions (paper Table I).
func RenderTable1(w io.Writer) {
	fmt.Fprint(w, Title("Table I: HinTM's required hardware modifications (as modeled)"))
	t := stats.NewTable("component", "addition", "where in this repo")
	t.Row("Core", "safe load/store opcodes (1 bit per memory op)", "ir.OpLoad/OpStore Safe flag")
	t.Row("TLB", "2 bits per entry (ro, shared) + owner tid", "vmem.tlbEntry")
	t.Row("Page table", "tid + ro + shared per PTE", "vmem.pageEntry")
	t.Row("HTM controller", "1-bit safety hint input per access", "htm.Controller.Access")
	t.Row("HTM controller", "touched-page set for page-mode aborts", "htm.Controller touched map")
	t.Render(w)
}

// RenderTable2 prints the machine configuration (paper Table II).
func RenderTable2(w io.Writer) {
	cfg := sim.DefaultConfig()
	fmt.Fprint(w, Title("Table II: simulation parameters"))
	t := stats.NewTable("parameter", "value")
	t.Row("cores", fmt.Sprintf("%d x 64-bit, in-order timing, %d-wide contexts", cfg.Cores, cfg.SMT))
	t.Row("L1d", fmt.Sprintf("32KB %d-way, 64B blocks, %d-cycle", cfg.Cache.L1Ways, cfg.Cache.L1Latency))
	t.Row("L2", fmt.Sprintf("8MB %d-way shared, %d-cycle", cfg.Cache.L2Ways, cfg.Cache.L2Latency))
	t.Row("memory", fmt.Sprintf("%d-cycle", cfg.Cache.MemLatency))
	t.Row("coherence", "snoopy MESI")
	t.Row("P8 buffer", fmt.Sprintf("%d entries, fully associative", cfg.P8Entries))
	t.Row("P8S signature", fmt.Sprintf("%d-bit PBX, %d hashes", cfg.SigBits, cfg.SigHashes))
	t.Row("TLB", fmt.Sprintf("%d entries/context", cfg.TLBEntries))
	t.Row("page costs", fmt.Sprintf("minor fault %d, shootdown %d/%d cycles",
		cfg.VM.MinorFault, cfg.VM.ShootdownInitiator, cfg.VM.ShootdownSlave))
	t.Render(w)
}
