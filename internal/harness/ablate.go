package harness

import (
	"context"
	"fmt"
	"io"

	"hintm/internal/cache"
	"hintm/internal/htm"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/workloads"
)

// Ablation studies for the design parameters the reproduction fixes by
// fiat: they quantify how sensitive the headline results are to the
// buffer size, signature size, shootdown cost model, and retry policy.
// The paper motivates most of them qualitatively (§VI-E: "achieving the
// same effect solely with hardware requires larger buffering capacity";
// §VI-B: "motivates investigating ... reduced page mode transition
// penalties"); these sweeps put numbers on the trade-offs.
//
// Each sweep point perturbs sim.Config fields Request does not carry, so
// ablations bypass the memoizing Request cache: every sweep collects its
// configurations up front and submits the batch to the worker pool in one
// runConfigs call.

// ablateBase returns the sweeps' common starting configuration.
func (r *Runner) ablateBase() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Seed = r.opts.Seed
	return cfg
}

// AblateBufferSize sweeps the P8 buffer's entry count with and without
// HinTM: the hints act like a hardware capacity multiplier.
func (r *Runner) AblateBufferSize(ctx context.Context, w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	entries := []int{16, 32, 64, 128, 256}
	var cfgs []sim.Config
	for _, n := range entries {
		cfg := r.ablateBase()
		cfg.P8Entries = n
		cfgs = append(cfgs, cfg)
		cfg.Hints = sim.HintFull
		cfgs = append(cfgs, cfg)
	}
	res, err := r.runConfigs(ctx, spec, r.opts.Scale, cfgs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: P8 buffer size (%s)", app)))
	t := stats.NewTable("entries", "base cycles", "base cap-aborts",
		"HinTM cycles", "HinTM cap-aborts", "HinTM speedup")
	for i, n := range entries {
		base, full := res[2*i], res[2*i+1]
		t.Row(n, base.Cycles, base.Aborts[htm.AbortCapacity],
			full.Cycles, full.Aborts[htm.AbortCapacity],
			fmt.Sprintf("%.2fx", speedup(base.Cycles, full.Cycles)))
	}
	t.Render(w)
	return nil
}

// AblateSignatureSize sweeps P8S signature bits: smaller signatures alias
// more (false conflicts), and HinTM's reduced readset insertion rate
// effectively enlarges the signature.
func (r *Runner) AblateSignatureSize(ctx context.Context, w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	bits := []uint64{128, 256, 512, 1024, 4096}
	var cfgs []sim.Config
	for _, b := range bits {
		cfg := r.ablateBase()
		cfg.HTM = sim.HTMP8S
		cfg.SigBits = b
		cfgs = append(cfgs, cfg)
		cfg.Hints = sim.HintFull
		cfgs = append(cfgs, cfg)
	}
	res, err := r.runConfigs(ctx, spec, r.opts.LargeScale, cfgs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: P8S signature size (%s, large inputs)", app)))
	t := stats.NewTable("bits", "base false-conflicts", "HinTM false-conflicts",
		"base cycles", "HinTM cycles")
	for i, b := range bits {
		base, full := res[2*i], res[2*i+1]
		t.Row(b, base.Aborts[htm.AbortFalseConflict],
			full.Aborts[htm.AbortFalseConflict], base.Cycles, full.Cycles)
	}
	t.Render(w)
	return nil
}

// AblateShootdownCost sweeps the page-mode transition cost (the paper's
// §VI-B future-work lever): cheap transitions turn HinTM-dyn's worst case
// around.
func (r *Runner) AblateShootdownCost(ctx context.Context, w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	scales := []int64{0, 1, 2, 4}
	cfgs := []sim.Config{r.ablateBase()} // [0] = baseline, no hints
	for _, s := range scales {
		cfg := r.ablateBase()
		cfg.Hints = sim.HintDynamic
		cfg.VM.ShootdownInitiator = 6600 / 2 * s
		cfg.VM.ShootdownSlave = 1450 / 2 * s
		cfg.VM.MinorFault = 1450 / 2 * s
		cfgs = append(cfgs, cfg)
	}
	res, err := r.runConfigs(ctx, spec, r.opts.Scale, cfgs)
	if err != nil {
		return err
	}
	base := res[0]
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: TLB-shootdown cost (%s, HinTM-dyn)", app)))
	t := stats.NewTable("initiator-cycles", "slave-cycles", "dyn cycles",
		"page-mode cycles", "speedup vs baseline")
	for i := range scales {
		cfg, dyn := cfgs[i+1], res[i+1]
		t.Row(cfg.VM.ShootdownInitiator, cfg.VM.ShootdownSlave, dyn.Cycles,
			dyn.PageModeCycles,
			fmt.Sprintf("%.2fx", speedup(base.Cycles, dyn.Cycles)))
	}
	t.Render(w)
	return nil
}

// AblateRetryPolicy sweeps the conflict-retry budget before falling back to
// the global lock.
func (r *Runner) AblateRetryPolicy(ctx context.Context, w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	retries := []int{0, 1, 2, 4, 8, 16}
	var cfgs []sim.Config
	for _, n := range retries {
		cfg := r.ablateBase()
		cfg.MaxConflictRetries = n
		cfgs = append(cfgs, cfg)
	}
	res, err := r.runConfigs(ctx, spec, r.opts.Scale, cfgs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: conflict retries before fallback (%s)", app)))
	t := stats.NewTable("retries", "cycles", "HTM commits", "fallback", "conflict-aborts")
	for i, n := range retries {
		t.Row(n, res[i].Cycles, res[i].Commits, res[i].FallbackCommits,
			res[i].Aborts[htm.AbortConflict])
	}
	t.Render(w)
	return nil
}

// AblateTLBSize sweeps per-context TLB entries: small TLBs mean fewer slave
// shootdowns (entries already evicted) but more walk latency.
func (r *Runner) AblateTLBSize(ctx context.Context, w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	entries := []int{16, 32, 64, 128, 256}
	var cfgs []sim.Config
	for _, n := range entries {
		cfg := r.ablateBase()
		cfg.Hints = sim.HintDynamic
		cfg.TLBEntries = n
		cfgs = append(cfgs, cfg)
	}
	res, err := r.runConfigs(ctx, spec, r.opts.Scale, cfgs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: TLB entries per context (%s, HinTM-dyn)", app)))
	t := stats.NewTable("entries", "cycles", "tlb-misses", "transitions", "page-mode cycles")
	for i, n := range entries {
		t.Row(n, res[i].Cycles, res[i].VM.TLBMisses, res[i].VM.Transitions, res[i].PageModeCycles)
	}
	t.Render(w)
	return nil
}

// AblateVersioning compares eager (undo-log) against lazy (write-buffer)
// store versioning on a write-heavy workload, with and without HinTM.
func (r *Runner) AblateVersioning(ctx context.Context, w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	type point struct {
		v     htm.Versioning
		hints sim.HintMode
	}
	var points []point
	var cfgs []sim.Config
	for _, v := range []htm.Versioning{htm.VersionEager, htm.VersionLazy} {
		for _, hints := range []sim.HintMode{sim.HintNone, sim.HintFull} {
			cfg := r.ablateBase()
			cfg.Versioning = v
			cfg.Hints = hints
			points = append(points, point{v, hints})
			cfgs = append(cfgs, cfg)
		}
	}
	res, err := r.runConfigs(ctx, spec, r.opts.Scale, cfgs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: store versioning discipline (%s)", app)))
	t := stats.NewTable("versioning", "hints", "cycles", "aborts", "commits")
	for i, p := range points {
		t.Row(p.v, p.hints, res[i].Cycles, res[i].TotalAborts(), res[i].Commits)
	}
	t.Render(w)
	return nil
}

// AblateHTMvsSTM compares the bounded HTM, the STM baseline, and both with
// HinTM on one capacity-bound workload — the crossover the paper's
// introduction frames: STM has no capacity cliff but pays per-access
// barriers; HinTM gives the HTM the capacity without the barriers.
func (r *Runner) AblateHTMvsSTM(ctx context.Context, w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	systems := []struct {
		name  string
		kind  sim.HTMKind
		hints sim.HintMode
	}{
		{"P8 HTM", sim.HTMP8, sim.HintNone},
		{"P8 + HinTM", sim.HTMP8, sim.HintFull},
		{"STM", sim.HTMSTM, sim.HintNone},
		{"STM + HinTM (barrier elision)", sim.HTMSTM, sim.HintFull},
		{"InfCap (ideal)", sim.HTMInfCap, sim.HintNone},
	}
	var cfgs []sim.Config
	for _, s := range systems {
		cfg := r.ablateBase()
		cfg.HTM = s.kind
		cfg.Hints = s.hints
		cfgs = append(cfgs, cfg)
	}
	res, err := r.runConfigs(ctx, spec, r.opts.Scale, cfgs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: HTM vs STM (%s)", app)))
	t := stats.NewTable("system", "cycles", "capacity-aborts", "fallback", "commits")
	for i, s := range systems {
		t.Row(s.name, res[i].Cycles, res[i].Aborts[htm.AbortCapacity],
			res[i].FallbackCommits, res[i].Commits)
	}
	t.Render(w)
	return nil
}

// AblateCapacityRetryFutility quantifies the paper's §I claim that retrying
// capacity aborts is futile: granting retries only multiplies the aborts
// and the wasted cycles without recovering commits.
func (r *Runner) AblateCapacityRetryFutility(ctx context.Context, w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	retries := []int{0, 1, 2, 4}
	var cfgs []sim.Config
	for _, n := range retries {
		cfg := r.ablateBase()
		cfg.CapacityRetries = n
		cfgs = append(cfgs, cfg)
	}
	res, err := r.runConfigs(ctx, spec, r.opts.Scale, cfgs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: retrying capacity aborts (%s) — the paper's futility claim", app)))
	t := stats.NewTable("capacity-retries", "cycles", "capacity-aborts", "HTM commits", "fallback")
	for i, n := range retries {
		t.Row(n, res[i].Cycles, res[i].Aborts[htm.AbortCapacity], res[i].Commits, res[i].FallbackCommits)
	}
	t.Render(w)
	return nil
}

// AblateCoherenceProtocol compares MESI against MSI: without a silent
// Exclusive state every first write is a bus transaction, giving HTM
// conflict detection strictly more visibility at the cost of traffic.
func (r *Runner) AblateCoherenceProtocol(ctx context.Context, w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	protos := []cache.Protocol{cache.MESI, cache.MSI}
	var cfgs []sim.Config
	for _, proto := range protos {
		cfg := r.ablateBase()
		cfg.Cache.Protocol = proto
		cfgs = append(cfgs, cfg)
	}
	res, err := r.runConfigs(ctx, spec, r.opts.Scale, cfgs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: coherence protocol (%s)", app)))
	t := stats.NewTable("protocol", "cycles", "bus-ops", "conflict-aborts", "commits")
	for i, proto := range protos {
		t.Row(proto, res[i].Cycles, res[i].Cache.BusOps, res[i].Aborts[htm.AbortConflict], res[i].Commits)
	}
	t.Render(w)
	return nil
}

// RenderAblations runs the full ablation set on representative workloads.
func (r *Runner) RenderAblations(ctx context.Context, w io.Writer) error {
	if err := r.AblateBufferSize(ctx, w, "labyrinth"); err != nil {
		return err
	}
	if err := r.AblateSignatureSize(ctx, w, "yada"); err != nil {
		return err
	}
	if err := r.AblateShootdownCost(ctx, w, "vacation"); err != nil {
		return err
	}
	if err := r.AblateRetryPolicy(ctx, w, "tpcc-p"); err != nil {
		return err
	}
	if err := r.AblateTLBSize(ctx, w, "vacation"); err != nil {
		return err
	}
	if err := r.AblateVersioning(ctx, w, "labyrinth"); err != nil {
		return err
	}
	if err := r.AblateHTMvsSTM(ctx, w, "bayes"); err != nil {
		return err
	}
	if err := r.AblateCapacityRetryFutility(ctx, w, "bayes"); err != nil {
		return err
	}
	return r.AblateCoherenceProtocol(ctx, w, "tpcc-p")
}
