package harness

import (
	"fmt"
	"io"

	"hintm/internal/cache"
	"hintm/internal/htm"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/workloads"
)

// Ablation studies for the design parameters the reproduction fixes by
// fiat: they quantify how sensitive the headline results are to the
// buffer size, signature size, shootdown cost model, and retry policy.
// The paper motivates most of them qualitatively (§VI-E: "achieving the
// same effect solely with hardware requires larger buffering capacity";
// §VI-B: "motivates investigating ... reduced page mode transition
// penalties"); these sweeps put numbers on the trade-offs.

// ablateRun executes one (workload, cfg) pair without memoization (each
// sweep point has a distinct configuration).
func (r *Runner) ablateRun(spec *workloads.Spec, scale workloads.Scale, cfg sim.Config) (*sim.Result, error) {
	mod, err := r.module(spec, spec.DefaultThreads*cfg.SMT, scale)
	if err != nil {
		return nil, err
	}
	m, err := sim.New(cfg, mod)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// AblateBufferSize sweeps the P8 buffer's entry count with and without
// HinTM: the hints act like a hardware capacity multiplier.
func (r *Runner) AblateBufferSize(w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: P8 buffer size (%s)", app)))
	t := stats.NewTable("entries", "base cycles", "base cap-aborts",
		"HinTM cycles", "HinTM cap-aborts", "HinTM speedup")
	for _, entries := range []int{16, 32, 64, 128, 256} {
		cfg := sim.DefaultConfig()
		cfg.Seed = r.opts.Seed
		cfg.P8Entries = entries
		base, err := r.ablateRun(spec, r.opts.Scale, cfg)
		if err != nil {
			return err
		}
		cfg.Hints = sim.HintFull
		full, err := r.ablateRun(spec, r.opts.Scale, cfg)
		if err != nil {
			return err
		}
		t.Row(entries, base.Cycles, base.Aborts[htm.AbortCapacity],
			full.Cycles, full.Aborts[htm.AbortCapacity],
			fmt.Sprintf("%.2fx", speedup(base.Cycles, full.Cycles)))
	}
	t.Render(w)
	return nil
}

// AblateSignatureSize sweeps P8S signature bits: smaller signatures alias
// more (false conflicts), and HinTM's reduced readset insertion rate
// effectively enlarges the signature.
func (r *Runner) AblateSignatureSize(w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: P8S signature size (%s, large inputs)", app)))
	t := stats.NewTable("bits", "base false-conflicts", "HinTM false-conflicts",
		"base cycles", "HinTM cycles")
	for _, bits := range []uint64{128, 256, 512, 1024, 4096} {
		cfg := sim.DefaultConfig()
		cfg.Seed = r.opts.Seed
		cfg.HTM = sim.HTMP8S
		cfg.SigBits = bits
		base, err := r.ablateRun(spec, r.opts.LargeScale, cfg)
		if err != nil {
			return err
		}
		cfg.Hints = sim.HintFull
		full, err := r.ablateRun(spec, r.opts.LargeScale, cfg)
		if err != nil {
			return err
		}
		t.Row(bits, base.Aborts[htm.AbortFalseConflict],
			full.Aborts[htm.AbortFalseConflict], base.Cycles, full.Cycles)
	}
	t.Render(w)
	return nil
}

// AblateShootdownCost sweeps the page-mode transition cost (the paper's
// §VI-B future-work lever): cheap transitions turn HinTM-dyn's worst case
// around.
func (r *Runner) AblateShootdownCost(w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: TLB-shootdown cost (%s, HinTM-dyn)", app)))
	base, err := r.ablateRun(spec, r.opts.Scale, func() sim.Config {
		cfg := sim.DefaultConfig()
		cfg.Seed = r.opts.Seed
		return cfg
	}())
	if err != nil {
		return err
	}
	t := stats.NewTable("initiator-cycles", "slave-cycles", "dyn cycles",
		"page-mode cycles", "speedup vs baseline")
	for _, scale := range []int64{0, 1, 2, 4} {
		cfg := sim.DefaultConfig()
		cfg.Seed = r.opts.Seed
		cfg.Hints = sim.HintDynamic
		cfg.VM.ShootdownInitiator = 6600 / 2 * scale
		cfg.VM.ShootdownSlave = 1450 / 2 * scale
		cfg.VM.MinorFault = 1450 / 2 * scale
		dyn, err := r.ablateRun(spec, r.opts.Scale, cfg)
		if err != nil {
			return err
		}
		t.Row(cfg.VM.ShootdownInitiator, cfg.VM.ShootdownSlave, dyn.Cycles,
			dyn.PageModeCycles,
			fmt.Sprintf("%.2fx", speedup(base.Cycles, dyn.Cycles)))
	}
	t.Render(w)
	return nil
}

// AblateRetryPolicy sweeps the conflict-retry budget before falling back to
// the global lock.
func (r *Runner) AblateRetryPolicy(w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: conflict retries before fallback (%s)", app)))
	t := stats.NewTable("retries", "cycles", "HTM commits", "fallback", "conflict-aborts")
	for _, retries := range []int{0, 1, 2, 4, 8, 16} {
		cfg := sim.DefaultConfig()
		cfg.Seed = r.opts.Seed
		cfg.MaxConflictRetries = retries
		res, err := r.ablateRun(spec, r.opts.Scale, cfg)
		if err != nil {
			return err
		}
		t.Row(retries, res.Cycles, res.Commits, res.FallbackCommits,
			res.Aborts[htm.AbortConflict])
	}
	t.Render(w)
	return nil
}

// AblateTLBSize sweeps per-context TLB entries: small TLBs mean fewer slave
// shootdowns (entries already evicted) but more walk latency.
func (r *Runner) AblateTLBSize(w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: TLB entries per context (%s, HinTM-dyn)", app)))
	t := stats.NewTable("entries", "cycles", "tlb-misses", "transitions", "page-mode cycles")
	for _, entries := range []int{16, 32, 64, 128, 256} {
		cfg := sim.DefaultConfig()
		cfg.Seed = r.opts.Seed
		cfg.Hints = sim.HintDynamic
		cfg.TLBEntries = entries
		res, err := r.ablateRun(spec, r.opts.Scale, cfg)
		if err != nil {
			return err
		}
		t.Row(entries, res.Cycles, res.VM.TLBMisses, res.VM.Transitions, res.PageModeCycles)
	}
	t.Render(w)
	return nil
}

// AblateVersioning compares eager (undo-log) against lazy (write-buffer)
// store versioning on a write-heavy workload, with and without HinTM.
func (r *Runner) AblateVersioning(w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: store versioning discipline (%s)", app)))
	t := stats.NewTable("versioning", "hints", "cycles", "aborts", "commits")
	for _, v := range []htm.Versioning{htm.VersionEager, htm.VersionLazy} {
		for _, hints := range []sim.HintMode{sim.HintNone, sim.HintFull} {
			cfg := sim.DefaultConfig()
			cfg.Seed = r.opts.Seed
			cfg.Versioning = v
			cfg.Hints = hints
			res, err := r.ablateRun(spec, r.opts.Scale, cfg)
			if err != nil {
				return err
			}
			t.Row(v, hints, res.Cycles, res.TotalAborts(), res.Commits)
		}
	}
	t.Render(w)
	return nil
}

// AblateHTMvsSTM compares the bounded HTM, the STM baseline, and both with
// HinTM on one capacity-bound workload — the crossover the paper's
// introduction frames: STM has no capacity cliff but pays per-access
// barriers; HinTM gives the HTM the capacity without the barriers.
func (r *Runner) AblateHTMvsSTM(w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: HTM vs STM (%s)", app)))
	t := stats.NewTable("system", "cycles", "capacity-aborts", "fallback", "commits")
	for _, row := range []struct {
		name  string
		kind  sim.HTMKind
		hints sim.HintMode
	}{
		{"P8 HTM", sim.HTMP8, sim.HintNone},
		{"P8 + HinTM", sim.HTMP8, sim.HintFull},
		{"STM", sim.HTMSTM, sim.HintNone},
		{"STM + HinTM (barrier elision)", sim.HTMSTM, sim.HintFull},
		{"InfCap (ideal)", sim.HTMInfCap, sim.HintNone},
	} {
		cfg := sim.DefaultConfig()
		cfg.Seed = r.opts.Seed
		cfg.HTM = row.kind
		cfg.Hints = row.hints
		res, err := r.ablateRun(spec, r.opts.Scale, cfg)
		if err != nil {
			return err
		}
		t.Row(row.name, res.Cycles, res.Aborts[htm.AbortCapacity],
			res.FallbackCommits, res.Commits)
	}
	t.Render(w)
	return nil
}

// AblateCapacityRetryFutility quantifies the paper's §I claim that retrying
// capacity aborts is futile: granting retries only multiplies the aborts
// and the wasted cycles without recovering commits.
func (r *Runner) AblateCapacityRetryFutility(w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: retrying capacity aborts (%s) — the paper's futility claim", app)))
	t := stats.NewTable("capacity-retries", "cycles", "capacity-aborts", "HTM commits", "fallback")
	for _, retries := range []int{0, 1, 2, 4} {
		cfg := sim.DefaultConfig()
		cfg.Seed = r.opts.Seed
		cfg.CapacityRetries = retries
		res, err := r.ablateRun(spec, r.opts.Scale, cfg)
		if err != nil {
			return err
		}
		t.Row(retries, res.Cycles, res.Aborts[htm.AbortCapacity], res.Commits, res.FallbackCommits)
	}
	t.Render(w)
	return nil
}

// AblateCoherenceProtocol compares MESI against MSI: without a silent
// Exclusive state every first write is a bus transaction, giving HTM
// conflict detection strictly more visibility at the cost of traffic.
func (r *Runner) AblateCoherenceProtocol(w io.Writer, app string) error {
	spec, err := workloads.ByName(app)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Ablation: coherence protocol (%s)", app)))
	t := stats.NewTable("protocol", "cycles", "bus-ops", "conflict-aborts", "commits")
	for _, proto := range []cache.Protocol{cache.MESI, cache.MSI} {
		cfg := sim.DefaultConfig()
		cfg.Seed = r.opts.Seed
		cfg.Cache.Protocol = proto
		res, err := r.ablateRun(spec, r.opts.Scale, cfg)
		if err != nil {
			return err
		}
		t.Row(proto, res.Cycles, res.Cache.BusOps, res.Aborts[htm.AbortConflict], res.Commits)
	}
	t.Render(w)
	return nil
}

// RenderAblations runs the full ablation set on representative workloads.
func (r *Runner) RenderAblations(w io.Writer) error {
	if err := r.AblateBufferSize(w, "labyrinth"); err != nil {
		return err
	}
	if err := r.AblateSignatureSize(w, "yada"); err != nil {
		return err
	}
	if err := r.AblateShootdownCost(w, "vacation"); err != nil {
		return err
	}
	if err := r.AblateRetryPolicy(w, "tpcc-p"); err != nil {
		return err
	}
	if err := r.AblateTLBSize(w, "vacation"); err != nil {
		return err
	}
	if err := r.AblateVersioning(w, "labyrinth"); err != nil {
		return err
	}
	if err := r.AblateHTMvsSTM(w, "bayes"); err != nil {
		return err
	}
	if err := r.AblateCapacityRetryFutility(w, "bayes"); err != nil {
		return err
	}
	return r.AblateCoherenceProtocol(w, "tpcc-p")
}
