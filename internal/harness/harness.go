// Package harness drives the paper's experiments end to end: it builds each
// workload, runs the static classification pass, simulates every (HTM ×
// hint-mode) configuration the evaluation needs, and reduces the results
// into the rows/series of each figure (Fig. 1, 4, 5, 6, 7, 8).
//
// Simulations are described by exported Request values and executed by a
// parallel scheduler (see sched.go): figures submit their whole request
// grid up front via RunAll, a bounded worker pool runs the grid
// concurrently, and single-flight deduplication guarantees each distinct
// Request simulates exactly once per Runner. The hintm-bench CLI and the
// repository's benchmark suite are thin wrappers around this package.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"hintm/internal/fault"
	"hintm/internal/ir"
	"hintm/internal/obs"
	"hintm/internal/sim"
	"hintm/internal/store"
	"hintm/internal/workloads"
)

// Options configures a Runner.
type Options struct {
	// Scale is used for the P8 experiments (Fig. 1, 4, 5, 6).
	Scale workloads.Scale
	// LargeScale is used for the capacity-pressure studies on larger HTMs
	// (Fig. 7, 8), mirroring the paper's larger inputs.
	LargeScale workloads.Scale
	// Filter restricts to the named workloads (nil = all).
	Filter []string
	// Seed drives every simulation's PRNG streams.
	Seed uint64
	// Workers bounds how many simulations run concurrently
	// (0 = runtime.GOMAXPROCS(0)). Results are deterministic for any
	// worker count: each simulation is self-contained and seeded.
	Workers int
	// Faults is the fault-injection plan applied to every simulation (zero
	// value = no injection); campaigns replay bit-identically for a given
	// (plan, Seed) pair.
	Faults fault.Plan
	// WatchdogCycles arms the sim livelock watchdog per run (0 = off).
	WatchdogCycles int64
	// MaxCycles hard-caps each run's simulated clock (0 = no cap).
	MaxCycles int64
	// TraceDir, when set, writes per-run observability artifacts into the
	// directory: every distinct Request the memoized scheduler executes
	// leaves a Chrome trace-event JSON file and an abort-autopsy text report
	// named after the request.
	TraceDir string
	// SampleCycles is the counter-sample period for traced runs
	// (0 = a 10000-cycle default; only meaningful with TraceDir set).
	SampleCycles int64
	// NoPrefixShare disables grid-level warm-up prefix sharing. By default,
	// when RunAll receives several requests that differ only in parameters
	// that cannot influence execution before the first transaction or
	// parallel region (HTM kind, static hints, signature sizing), the
	// scheduler simulates their common warm-up once, snapshots the machine,
	// and forks every sibling from the snapshot — byte-identical to cold
	// runs, pinned by TestPrefixTwinGrid. Sharing is automatically off for
	// traced (TraceDir) and fault-injected runs, whose per-access
	// instrumentation makes the warm-up configuration-dependent.
	NoPrefixShare bool
	// Store, when non-nil, is the content-addressed result store the
	// scheduler consults before simulating and persists into afterwards:
	// a warm store turns figure regeneration into a pure, byte-identical
	// reduction, and lets separate processes share completed runs.
	Store *store.Store
	// Metrics, when non-nil, receives the runner's counters (simulations
	// executed, in-flight workers, store persistence failures); the
	// serving layer renders it on /metrics.
	Metrics *obs.Metrics
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{Scale: workloads.Medium, LargeScale: workloads.Large, Seed: 1}
}

// QuickOptions shrinks everything for tests and smoke runs.
func QuickOptions() Options {
	return Options{Scale: workloads.Small, LargeScale: workloads.Small, Seed: 1}
}

// Runner schedules simulations and caches classified modules and run
// results across figures. It is safe for concurrent use: Run/RunAll may be
// called from any number of goroutines.
type Runner struct {
	opts Options
	// sem is the worker pool: one slot per concurrently-executing
	// simulation.
	sem chan struct{}

	// execs counts actual result-producing simulator invocations — cold
	// full runs plus prefix-forked resumes; store hits, memoized recalls,
	// and prefix warm-up runs are excluded — so the "warm serve runs
	// nothing" assertions and the per-cell accounting both stay exact.
	execs atomic.Uint64
	// simCycles totals the simulated cycles actually executed: cold runs
	// contribute their full clock, forked resumes only their post-boundary
	// suffix, and each shared prefix contributes its warm-up exactly once —
	// so the BENCH_results.json simulated-cycles-per-second headline never
	// double-counts shared work.
	simCycles atomic.Uint64
	// Prefix-sharing and store-reuse accounting (see prefix.go; the
	// BENCH_results.json v3 breakdown and the RenderAll run summary read
	// these through Stats).
	storeHits  atomic.Uint64
	prefixRuns atomic.Uint64
	forkedRuns atomic.Uint64
	forkNanos  atomic.Int64
	// sharedCycles totals the simulated cycles forked resumes inherited from
	// their snapshot instead of re-executing — the work prefix sharing
	// actually eliminated, in simulated time. A cold scheduler would have
	// executed simCycles + sharedCycles - (each warm-up once).
	sharedCycles atomic.Uint64

	mu       sync.Mutex
	mods     map[moduleKey]*flight[*ir.Module]
	runs     map[Request]*flight[*sim.Result]
	prefixes map[string]*prefixFlight
}

// RunStats is a point-in-time snapshot of the runner's execution counters.
// Differences of two snapshots attribute work to a span of calls (RenderAll
// and BenchResults use that for their per-figure breakdowns).
type RunStats struct {
	// SimRuns counts result-producing simulations (cold + prefix-forked);
	// StoreHits counts requests answered from the content-addressed store.
	SimRuns   uint64
	StoreHits uint64
	// PrefixRuns counts shared warm-ups executed; ForkedRuns the
	// simulations resumed from a snapshot; ForkSeconds the wall time spent
	// deep-cloning snapshots into forks.
	PrefixRuns  uint64
	ForkedRuns  uint64
	ForkSeconds float64
	// SharedCycles is the simulated-cycle total forked resumes inherited
	// from their snapshots instead of re-executing.
	SharedCycles uint64
}

// ColdRuns is the number of simulations that ran from scratch.
func (s RunStats) ColdRuns() uint64 { return s.SimRuns - s.ForkedRuns }

// Sub returns the counter deltas s - o (s taken after o).
func (s RunStats) Sub(o RunStats) RunStats {
	return RunStats{
		SimRuns:      s.SimRuns - o.SimRuns,
		StoreHits:    s.StoreHits - o.StoreHits,
		PrefixRuns:   s.PrefixRuns - o.PrefixRuns,
		ForkedRuns:   s.ForkedRuns - o.ForkedRuns,
		ForkSeconds:  s.ForkSeconds - o.ForkSeconds,
		SharedCycles: s.SharedCycles - o.SharedCycles,
	}
}

// Stats snapshots the runner's execution counters.
func (r *Runner) Stats() RunStats {
	return RunStats{
		SimRuns:      r.execs.Load(),
		StoreHits:    r.storeHits.Load(),
		PrefixRuns:   r.prefixRuns.Load(),
		ForkedRuns:   r.forkedRuns.Load(),
		ForkSeconds:  float64(r.forkNanos.Load()) / 1e9,
		SharedCycles: r.sharedCycles.Load(),
	}
}

// SimRuns reports how many simulator invocations the runner has performed
// (memoized recalls and store hits do not count).
func (r *Runner) SimRuns() uint64 { return r.execs.Load() }

// NewRunner returns a runner for the given options.
func NewRunner(opts Options) *Runner {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		opts:     opts,
		sem:      make(chan struct{}, workers),
		mods:     make(map[moduleKey]*flight[*ir.Module]),
		runs:     make(map[Request]*flight[*sim.Result]),
		prefixes: make(map[string]*prefixFlight),
	}
}

// specs returns the selected workloads.
func (r *Runner) specs() ([]*workloads.Spec, error) {
	if len(r.opts.Filter) == 0 {
		return workloads.All(), nil
	}
	var out []*workloads.Spec
	for _, name := range r.opts.Filter {
		s, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// reduction computes 1 - v/base, the paper's "X% of aborts eliminated".
func reduction(base, v uint64) float64 {
	if base == 0 {
		return 0
	}
	red := 1 - float64(v)/float64(base)
	if red < 0 {
		return 0
	}
	return red
}

// speedup computes base/v cycles.
func speedup(base, v int64) float64 {
	if v == 0 {
		return 0
	}
	return float64(base) / float64(v)
}

// geomean over positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			v = 1e-9
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Title renders a section header.
func Title(s string) string {
	return fmt.Sprintf("\n== %s ==\n%s\n", s, strings.Repeat("-", len(s)+6))
}
