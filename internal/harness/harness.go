// Package harness drives the paper's experiments end to end: it builds each
// workload, runs the static classification pass, simulates every (HTM ×
// hint-mode) configuration the evaluation needs, and reduces the results
// into the rows/series of each figure (Fig. 1, 4, 5, 6, 7, 8). The
// hintm-bench CLI and the repository's benchmark suite are thin wrappers
// around this package.
package harness

import (
	"fmt"
	"math"
	"strings"

	"hintm/internal/cache"
	"hintm/internal/classify"
	"hintm/internal/ir"
	"hintm/internal/profile"
	"hintm/internal/sim"
	"hintm/internal/workloads"
)

// Options configures a Runner.
type Options struct {
	// Scale is used for the P8 experiments (Fig. 1, 4, 5, 6).
	Scale workloads.Scale
	// LargeScale is used for the capacity-pressure studies on larger HTMs
	// (Fig. 7, 8), mirroring the paper's larger inputs.
	LargeScale workloads.Scale
	// Filter restricts to the named workloads (nil = all).
	Filter []string
	// Seed drives every simulation's PRNG streams.
	Seed uint64
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{Scale: workloads.Medium, LargeScale: workloads.Large, Seed: 1}
}

// QuickOptions shrinks everything for tests and smoke runs.
func QuickOptions() Options {
	return Options{Scale: workloads.Small, LargeScale: workloads.Small, Seed: 1}
}

// Runner caches classified modules and simulation results across figures.
type Runner struct {
	opts Options
	mods map[string]*ir.Module
	runs map[string]*sim.Result
}

// NewRunner returns a runner for the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts, mods: make(map[string]*ir.Module), runs: make(map[string]*sim.Result)}
}

// specs returns the selected workloads.
func (r *Runner) specs() ([]*workloads.Spec, error) {
	if len(r.opts.Filter) == 0 {
		return workloads.All(), nil
	}
	var out []*workloads.Spec
	for _, name := range r.opts.Filter {
		s, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// module builds + classifies (memoized).
func (r *Runner) module(spec *workloads.Spec, threads int, scale workloads.Scale) (*ir.Module, error) {
	key := fmt.Sprintf("%s|%d|%v", spec.Name, threads, scale)
	if m, ok := r.mods[key]; ok {
		return m, nil
	}
	m := spec.Build(threads, scale)
	if _, err := classify.Run(m); err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	r.mods[key] = m
	return m, nil
}

// config assembles a machine configuration. With SMT, the machine shrinks
// to the workload's thread count in cores so that two contexts co-schedule
// on every core, generating the L1 pressure the paper's Fig.-8 methodology
// relies on (8 threads of genome/yada run on 4 dual-threaded cores).
func (r *Runner) config(spec *workloads.Spec, kind sim.HTMKind, hints sim.HintMode, smt int) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.HTM = kind
	cfg.Hints = hints
	cfg.SMT = smt
	if smt > 1 {
		cfg.Cores = spec.DefaultThreads
		cfg.Cache = cache.DefaultConfig(cfg.Cores)
	}
	cfg.Seed = r.opts.Seed
	return cfg
}

// run simulates (memoized).
func (r *Runner) run(spec *workloads.Spec, scale workloads.Scale,
	kind sim.HTMKind, hints sim.HintMode, smt int) (*sim.Result, error) {

	threads := spec.DefaultThreads * smt
	key := fmt.Sprintf("%s|%v|%v|%v|%d", spec.Name, scale, kind, hints, smt)
	if res, ok := r.runs[key]; ok {
		return res, nil
	}
	mod, err := r.module(spec, threads, scale)
	if err != nil {
		return nil, err
	}
	m, err := sim.New(r.config(spec, kind, hints, smt), mod)
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("%s %v/%v: %w", spec.Name, kind, hints, err)
	}
	r.runs[key] = res
	return res, nil
}

// profiled runs one simulation with the sharing profiler attached
// (not memoized: the profiler is a per-run observer).
func (r *Runner) profiled(spec *workloads.Spec, scale workloads.Scale,
	kind sim.HTMKind, hints sim.HintMode) (*sim.Result, profile.Report, error) {

	mod, err := r.module(spec, spec.DefaultThreads, scale)
	if err != nil {
		return nil, profile.Report{}, err
	}
	cfg := r.config(spec, kind, hints, 1)
	m, err := sim.New(cfg, mod)
	if err != nil {
		return nil, profile.Report{}, err
	}
	prof := profile.NewSharing(cfg.Contexts() - 1)
	m.SetProfiler(prof)
	res, err := m.Run()
	if err != nil {
		return nil, profile.Report{}, err
	}
	return res, prof.Report(), nil
}

// reduction computes 1 - v/base, the paper's "X% of aborts eliminated".
func reduction(base, v uint64) float64 {
	if base == 0 {
		return 0
	}
	red := 1 - float64(v)/float64(base)
	if red < 0 {
		return 0
	}
	return red
}

// speedup computes base/v cycles.
func speedup(base, v int64) float64 {
	if v == 0 {
		return 0
	}
	return float64(base) / float64(v)
}

// geomean over positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			v = 1e-9
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Title renders a section header.
func Title(s string) string {
	return fmt.Sprintf("\n== %s ==\n%s\n", s, strings.Repeat("-", len(s)+6))
}
