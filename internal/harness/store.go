package harness

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"

	"hintm/internal/htm"
	"hintm/internal/obs"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/store"
)

// The store hook makes every scheduled run a durable, content-addressed
// artifact: before a request simulates, the runner consults the configured
// result store; after it completes, the result is persisted. A warm store
// therefore makes figure regeneration a pure reduction — byte-identical to
// the cold run, asserted by TestStoreWarmRunByteIdentical — and two
// processes sharing a store directory (hintm-bench and hintm-served, say)
// share one set of simulations.

// runKey is the canonical preimage of a request's store key. It captures
// every input that determines the run's result: the request coordinates
// plus the runner options that reach sim.Config, all spelled as their
// stable string forms, prefixed with the store schema version. Field order
// is fixed by the struct, so json.Marshal is a canonical encoding.
type runKey struct {
	Schema         string `json:"schema"`
	Workload       string `json:"workload"`
	Scale          string `json:"scale"`
	HTM            string `json:"htm"`
	Hints          string `json:"hints"`
	SMT            int    `json:"smt"`
	SigBits        uint64 `json:"sigBits,omitempty"`
	Seed           uint64 `json:"seed"`
	Faults         string `json:"faults,omitempty"`
	WatchdogCycles int64  `json:"watchdogCycles,omitempty"`
	MaxCycles      int64  `json:"maxCycles,omitempty"`
}

// KeyPreimage returns the canonical JSON encoding of req under the
// runner's options — the bytes whose SHA-256 is the request's store key.
func (r *Runner) KeyPreimage(req Request) []byte {
	req = req.normalize()
	k := runKey{
		Schema:         store.Schema,
		Workload:       req.Workload,
		Scale:          req.Scale.String(),
		HTM:            req.HTM.String(),
		Hints:          req.Hints.String(),
		SMT:            req.SMT,
		SigBits:        req.SigBits,
		Seed:           r.opts.Seed,
		Faults:         r.opts.Faults.String(),
		WatchdogCycles: r.opts.WatchdogCycles,
		MaxCycles:      r.opts.MaxCycles,
	}
	data, err := json.Marshal(k)
	if err != nil {
		// A struct of strings and integers cannot fail to marshal.
		panic(fmt.Sprintf("harness: canonical key encoding: %v", err))
	}
	return data
}

// StoreKey returns req's content address under the runner's options. It is
// derivable with or without a configured store (the serving layer uses it
// for addressing before deciding whether to run anything).
func (r *Runner) StoreKey(req Request) string {
	return store.Key(r.KeyPreimage(req))
}

// storeGet recalls req's result from the configured store. Any failure —
// no store, miss, quarantined entry, undecodable result — degrades to
// (nil, false): the scheduler just simulates.
func (r *Runner) storeGet(req Request) (*sim.Result, bool) {
	st := r.opts.Store
	if st == nil {
		return nil, false
	}
	e, _, err := st.Get(r.StoreKey(req))
	if err != nil || e == nil {
		return nil, false
	}
	var res sim.Result
	if err := json.Unmarshal(e.Result, &res); err != nil {
		return nil, false
	}
	// Restore the invariants sim.newResult guarantees and plain JSON does
	// not: consumers index these without nil checks.
	if res.Aborts == nil {
		res.Aborts = make(map[htm.AbortReason]uint64)
	}
	if res.CyclesLost == nil {
		res.CyclesLost = make(map[htm.AbortReason]int64)
	}
	if res.TxFootprints == nil {
		res.TxFootprints = stats.NewHist()
	}
	return &res, true
}

// storePut persists a completed run. Persistence failures are deliberately
// non-fatal — the simulation succeeded and its result is correct; a full
// disk should not fail the figure — but they are counted so a service
// operator sees them on /metrics.
func (r *Runner) storePut(req Request, res *sim.Result) {
	st := r.opts.Store
	if st == nil {
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		r.opts.Metrics.Counter(obs.MetricStorePutErrors).Inc()
		return
	}
	e := store.Entry{Request: r.KeyPreimage(req), Result: data}
	if r.opts.TraceDir != "" {
		base := filepath.Join(r.opts.TraceDir, strings.ReplaceAll(req.String(), "/", "_"))
		e.TracePath = base + ".trace.json"
		e.AutopsyPath = base + ".autopsy.txt"
	}
	if _, err := st.Put(e); err != nil {
		r.opts.Metrics.Counter(obs.MetricStorePutErrors).Inc()
	}
}
