package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hintm/internal/fault"
	"hintm/internal/sim"
	"hintm/internal/store"
	"hintm/internal/workloads"
)

// storeOpts returns quick options bound to a fresh store over dir.
func storeOpts(t *testing.T, dir string) Options {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Filter = []string{"labyrinth"}
	opts.Store = st
	return opts
}

// TestStoreWarmRunByteIdentical is the subsystem's central guarantee: the
// same seeded Request served cold (simulated, persisted) and then warm
// (recalled by a brand-new runner over the same store) yields deeply equal
// results, byte-identical JSON encodings and byte-identical stored object
// bytes — and the warm runner never invokes the simulator.
func TestStoreWarmRunByteIdentical(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	req := Request{Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8, Hints: sim.HintFull}

	cold := NewRunner(storeOpts(t, dir))
	res1, err := cold.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.SimRuns(); got != 1 {
		t.Fatalf("cold run executed %d simulations, want 1", got)
	}
	_, raw1, err := cold.opts.Store.Get(cold.StoreKey(req))
	if err != nil || raw1 == nil {
		t.Fatalf("cold run did not persist: raw=%v err=%v", raw1, err)
	}

	warm := NewRunner(storeOpts(t, dir))
	res2, err := warm.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.SimRuns(); got != 0 {
		t.Fatalf("warm run executed %d simulations, want 0 (store hit)", got)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("warm result differs from cold:\ncold: %v\nwarm: %v", res1, res2)
	}
	b1, _ := json.Marshal(res1)
	b2, _ := json.Marshal(res2)
	if !bytes.Equal(b1, b2) {
		t.Errorf("result JSON differs:\ncold: %s\nwarm: %s", b1, b2)
	}
	_, raw2, _ := warm.opts.Store.Get(warm.StoreKey(req))
	if !bytes.Equal(raw1, raw2) {
		t.Error("stored object bytes changed between cold and warm reads")
	}
}

// TestStoreWarmFigureByteIdentical renders the same figure cold and warm
// and requires identical text — the regeneration workflow the store exists
// for.
func TestStoreWarmFigureByteIdentical(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	render := func() (string, uint64) {
		r := NewRunner(storeOpts(t, dir))
		var sb strings.Builder
		if err := r.RenderFig4(ctx, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String(), r.SimRuns()
	}
	coldOut, coldRuns := render()
	warmOut, warmRuns := render()
	if coldRuns == 0 {
		t.Fatal("cold render simulated nothing")
	}
	if warmRuns != 0 {
		t.Errorf("warm render executed %d simulations, want 0", warmRuns)
	}
	if coldOut != warmOut {
		t.Errorf("warm figure differs from cold:\n--- cold ---\n%s--- warm ---\n%s", coldOut, warmOut)
	}
}

// TestStoreKeyCoversRunDeterminants asserts the canonical key moves with
// every input that changes a run's result — and only with those.
func TestStoreKeyCoversRunDeterminants(t *testing.T) {
	base := QuickOptions()
	req := Request{Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8, Hints: sim.HintNone, SMT: 1}
	key := func(opts Options, q Request) string { return NewRunner(opts).StoreKey(q) }

	k0 := key(base, req)
	if k0 != key(base, req) {
		t.Fatal("key not stable for identical inputs")
	}
	// SMT 0 normalizes to 1: one cache slot, one key.
	if k0 != key(base, Request{Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8}) {
		t.Error("SMT 0 and SMT 1 should share a key")
	}

	seeded := base
	seeded.Seed = 99
	if key(seeded, req) == k0 {
		t.Error("seed change did not change the key")
	}
	faulty := base
	var err error
	if faulty.Faults, err = fault.ParsePlan("spurious=0.01"); err != nil {
		t.Fatal(err)
	}
	if key(faulty, req) == k0 {
		t.Error("fault plan change did not change the key")
	}
	capped := base
	capped.MaxCycles = 12345
	if key(capped, req) == k0 {
		t.Error("max-cycles change did not change the key")
	}
	other := req
	other.Hints = sim.HintFull
	if key(base, other) == k0 {
		t.Error("hint-mode change did not change the key")
	}
	sized := req
	sized.SigBits = 256
	if key(base, sized) == k0 {
		t.Error("signature-size change did not change the key")
	}
	// SigBits 0 means "config default": its preimage must stay exactly the
	// pre-SigBits encoding, so every store entry written before the field
	// existed is still addressable (TestStorePreimageIsCanonical pins the
	// bytes).
	if key(base, req) != k0 {
		t.Error("zero SigBits shifted the key")
	}

	// Options that do NOT reach the simulator must not shift addresses —
	// a wider worker pool serves the same cache.
	wide := base
	wide.Workers = 7
	if key(wide, req) != k0 {
		t.Error("worker-count change shifted the key")
	}
}

// TestStorePreimageIsCanonical pins the preimage encoding: changing it
// silently would orphan every existing store.
func TestStorePreimageIsCanonical(t *testing.T) {
	r := NewRunner(QuickOptions())
	req := Request{Workload: "labyrinth", Scale: workloads.Small, HTM: sim.HTMP8S, Hints: sim.HintStatic, SMT: 2}
	want := `{"schema":"hintm-store/v1","workload":"labyrinth","scale":"small","htm":"P8S","hints":"HinTM-st","smt":2,"seed":1}`
	if got := string(r.KeyPreimage(req)); got != want {
		t.Errorf("preimage:\n got %s\nwant %s", got, want)
	}
}
