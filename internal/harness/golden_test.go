package harness

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"hintm/internal/store"
)

// The byte-identity pin: the full seed figure grid (every simulation the
// fig1/4/5/6/7/8 reductions schedule at the quick scale, seed 1) must
// produce exactly the store keys and stored result payloads recorded in
// testdata/seed_grid_golden.txt. Any behavioral drift in the simulator —
// a data-structure swap that changes an iteration order, a cost model
// tweak, an accounting change — fails this test loudly, not just a spot
// benchmark. Regenerate deliberately with:
//
//	go test ./internal/harness -run TestSeedGridGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/seed_grid_golden.txt from the current simulator")

const goldenPath = "testdata/seed_grid_golden.txt"

// seedGridLines runs the whole quick-scale figure grid against a fresh
// store and returns one canonical line per distinct simulation:
//
//	<store key> <sha256 of stored result JSON> <canonical request preimage>
func seedGridLines(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Store = st
	r := NewRunner(opts)

	ctx := context.Background()
	sum, err := r.BenchResults(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Errors) > 0 {
		t.Fatalf("figure grid degraded: %v", sum.Errors)
	}

	entries := st.List()
	if len(entries) == 0 {
		t.Fatal("figure grid persisted no runs")
	}
	lines := make([]string, 0, len(entries))
	for _, ie := range entries {
		e, _, err := st.Get(ie.Key)
		if err != nil || e == nil {
			t.Fatalf("store entry %s unreadable: %v", ie.Key, err)
		}
		res := sha256.Sum256(e.Result)
		lines = append(lines, fmt.Sprintf("%s %s %s", e.Key, hex.EncodeToString(res[:]), string(e.Request)))
	}
	sort.Strings(lines)
	return lines
}

func TestSeedGridGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure grid; skipped in -short mode")
	}
	lines := seedGridLines(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d runs)", goldenPath, len(lines))
		return
	}

	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("golden list missing (run with -update-golden to create): %v", err)
	}
	defer f.Close()
	want := make(map[string]string) // key -> full golden line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var order []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		key, _, _ := strings.Cut(line, " ")
		want[key] = line
		order = append(order, key)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	got := make(map[string]string, len(lines))
	for _, line := range lines {
		key, _, _ := strings.Cut(line, " ")
		got[key] = line
	}

	if len(got) != len(want) {
		t.Errorf("grid size drifted: golden pins %d runs, grid produced %d", len(want), len(got))
	}
	for _, key := range order {
		gl, ok := got[key]
		if !ok {
			t.Errorf("pinned run vanished from the grid:\n  %s", want[key])
			continue
		}
		if gl != want[key] {
			t.Errorf("stored result drifted for key %s:\n  golden: %s\n  got:    %s", key, want[key], gl)
		}
	}
	for key, gl := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("unpinned run appeared in the grid (update golden if intentional):\n  %s", gl)
		}
	}
}
