package harness

import (
	"context"
	"strings"
	"testing"

	"hintm/internal/workloads"
)

// quick returns a runner restricted to a small workload subset at Small
// scale, keeping the test suite fast while exercising every figure path.
func quick(filter ...string) *Runner {
	opts := QuickOptions()
	opts.Filter = filter
	return NewRunner(opts)
}

func TestFig1Rows(t *testing.T) {
	r := quick("labyrinth", "kmeans")
	rows, err := r.Fig1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byApp := map[string]Fig1Row{}
	for _, row := range rows {
		byApp[row.App] = row
		if row.SafePages < 0 || row.SafePages > 1 {
			t.Errorf("%s: SafePages out of range: %f", row.App, row.SafePages)
		}
	}
	if byApp["kmeans"].CapacityTime > 0.02 {
		t.Errorf("kmeans should have ~no capacity time: %f", byApp["kmeans"].CapacityTime)
	}
	if byApp["labyrinth"].CapacityTime < 0.2 {
		t.Errorf("labyrinth should be capacity-bound: %f", byApp["labyrinth"].CapacityTime)
	}
	if byApp["labyrinth"].SafePages < 0.5 {
		t.Errorf("labyrinth private grids should dominate pages: %f", byApp["labyrinth"].SafePages)
	}
}

func TestFig4Rows(t *testing.T) {
	r := quick("labyrinth")
	rows, err := r.Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	if row.BaseCapacity == 0 {
		t.Fatal("labyrinth baseline should capacity-abort")
	}
	if row.CapRedSt < 0.5 {
		t.Errorf("labyrinth st capacity reduction = %f", row.CapRedSt)
	}
	if row.SpeedupSt <= 1.0 {
		t.Errorf("labyrinth st speedup = %f", row.SpeedupSt)
	}
	if row.SpeedupInf < row.SpeedupFull*0.9 {
		t.Errorf("InfCap %f should roughly bound HinTM %f", row.SpeedupInf, row.SpeedupFull)
	}
}

func TestFig5Rows(t *testing.T) {
	r := quick("labyrinth", "genome")
	rows, err := r.Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Fig5Row{}
	for _, row := range rows {
		byApp[row.App] = row
		sum := row.StaticFrac + row.DynFrac + row.UnsafeFrac
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: fractions sum to %f", row.App, sum)
		}
	}
	if byApp["genome"].StaticFrac > 0.05 {
		t.Errorf("genome static should be ~0: %f", byApp["genome"].StaticFrac)
	}
	if byApp["labyrinth"].StaticFrac < 0.5 {
		t.Errorf("labyrinth static should dominate: %f", byApp["labyrinth"].StaticFrac)
	}
}

func TestFig6Series(t *testing.T) {
	r := quick("labyrinth")
	series, err := r.Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	last := len(s.Points) - 1
	// CDFs must be monotone and HinTM must dominate baseline.
	for i := 1; i <= last; i++ {
		if s.Base[i] < s.Base[i-1] || s.Full[i] < s.Full[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if s.Full[last] < s.Base[last] {
		t.Errorf("HinTM CDF at 64 blocks (%f) should be >= baseline (%f)",
			s.Full[last], s.Base[last])
	}
}

func TestFig7And8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("large-HTM sweeps are slow")
	}
	r := quick("labyrinth")
	rows7, err := r.Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows7) != 1 || rows7[0].App != "labyrinth" {
		t.Fatalf("fig7 rows: %+v", rows7)
	}
	rows8, err := r.Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows8) != 1 {
		t.Fatalf("fig8 rows: %+v", rows8)
	}
}

func TestRenderAllProducesEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full render is slow")
	}
	r := quick("labyrinth", "genome", "vacation", "bayes")
	var sb strings.Builder
	if err := r.RenderAll(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig 1", "Fig 4a", "Fig 4b", "Fig 5",
		"Fig 6", "Fig 7a", "Fig 7b", "Fig 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRenderTable1(t *testing.T) {
	var sb strings.Builder
	RenderTable1(&sb)
	for _, want := range []string{"safe load/store opcodes", "touched-page set", "2 bits per entry"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestRenderTable2(t *testing.T) {
	var sb strings.Builder
	RenderTable2(&sb)
	for _, want := range []string{"64 entries", "snoopy MESI", "1024-bit PBX"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table II missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunMemoization(t *testing.T) {
	r := quick("kmeans")
	req := Request{Workload: "kmeans", Scale: workloads.Small}
	a, err := r.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// SMT 0 and SMT 1 are the same request after normalization, so both
	// must resolve to the one cached *Result.
	b, err := r.Run(context.Background(), Request{Workload: "kmeans", Scale: workloads.Small, SMT: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configurations should be memoized")
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	r := quick("no-such-app")
	if _, err := r.Fig1(context.Background()); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestReductionAndSpeedup(t *testing.T) {
	if reduction(100, 40) != 0.6 {
		t.Error("reduction wrong")
	}
	if reduction(0, 10) != 0 {
		t.Error("reduction must guard zero base")
	}
	if reduction(10, 20) != 0 {
		t.Error("negative reductions clamp to zero")
	}
	if speedup(200, 100) != 2 {
		t.Error("speedup wrong")
	}
	if speedup(1, 0) != 0 {
		t.Error("speedup must guard zero")
	}
	g := geomean([]float64{1, 4})
	if g < 1.99 || g > 2.01 {
		t.Errorf("geomean = %f", g)
	}
}

// TestFigureDeterminism: identical options must reproduce identical figure
// rows — the property every comparison in the harness relies on.
func TestFigureDeterminism(t *testing.T) {
	rows1, err := quick("labyrinth").Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := quick("labyrinth").Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows1) != len(rows2) {
		t.Fatal("row counts differ")
	}
	for i := range rows1 {
		if rows1[i] != rows2[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, rows1[i], rows2[i])
		}
	}
}

// TestExtrasSweep exercises the microbenchmark target.
func TestExtrasSweep(t *testing.T) {
	rows, err := NewRunner(QuickOptions()).Extras(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("extras rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.App == "intset-ll" && row.CapRedFull > 0.5 {
			t.Errorf("intset-ll should resist classification: %+v", row)
		}
		if row.App == "intset-hash" && row.BaseCapacity != 0 {
			t.Errorf("intset-hash should have no capacity aborts: %+v", row)
		}
	}
}
