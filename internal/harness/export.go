package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"hintm/internal/stats"
)

// Export is the machine-readable bundle of every figure's data, for
// downstream plotting without re-running the simulator.
type Export struct {
	Options struct {
		Scale      string `json:"scale"`
		LargeScale string `json:"largeScale"`
		Seed       uint64 `json:"seed"`
	} `json:"options"`
	Fig1 []Fig1Row    `json:"fig1"`
	Fig4 []Fig4Row    `json:"fig4"`
	Fig5 []Fig5Row    `json:"fig5"`
	Fig6 []Fig6Series `json:"fig6"`
	Fig7 []Fig7Row    `json:"fig7"`
	Fig8 []Fig8Row    `json:"fig8"`
}

// ExportAll runs every figure and serializes the raw rows as indented JSON.
func (r *Runner) ExportAll(ctx context.Context, w io.Writer) error {
	var ex Export
	ex.Options.Scale = r.opts.Scale.String()
	ex.Options.LargeScale = r.opts.LargeScale.String()
	ex.Options.Seed = r.opts.Seed
	var err error
	if ex.Fig1, err = r.Fig1(ctx); err != nil {
		return err
	}
	if ex.Fig4, err = r.Fig4(ctx); err != nil {
		return err
	}
	if ex.Fig5, err = r.Fig5(ctx); err != nil {
		return err
	}
	if ex.Fig6, err = r.Fig6(ctx); err != nil {
		return err
	}
	if ex.Fig7, err = r.Fig7(ctx); err != nil {
		return err
	}
	if ex.Fig8, err = r.Fig8(ctx); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&ex)
}

// SeedSweepRow summarizes headline metrics across seeds for one workload.
type SeedSweepRow struct {
	App string
	// SpeedupMean/Median/Min/Max/StdDev are HinTM-vs-P8 speedups across
	// the seeds.
	SpeedupMean, SpeedupMedian, SpeedupMin, SpeedupMax, SpeedupStdDev float64
	// CapRedMean is the mean full-HinTM capacity-abort reduction.
	CapRedMean float64
	Seeds      int
}

// Seeds returns the canonical seed list {1..n} the multi-seed sweeps use
// (n <= 0 yields the single default seed).
func Seeds(n int) []uint64 {
	if n <= 0 {
		n = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

// SeedSweep re-runs the Fig.-4 comparison for each seed and aggregates,
// quantifying how sensitive the headline result is to the PRNG streams
// (i.e. to input/interleaving variation).
func SeedSweep(ctx context.Context, opts Options, seeds []uint64) ([]SeedSweepRow, error) {
	type acc struct {
		speedups []float64
		capreds  []float64
	}
	byApp := map[string]*acc{}
	var order []string
	for _, seed := range seeds {
		o := opts
		o.Seed = seed
		rows, err := NewRunner(o).Fig4(ctx)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			a := byApp[row.App]
			if a == nil {
				a = &acc{}
				byApp[row.App] = a
				order = append(order, row.App)
			}
			a.speedups = append(a.speedups, row.SpeedupFull)
			a.capreds = append(a.capreds, row.CapRedFull)
		}
	}
	var out []SeedSweepRow
	for _, app := range order {
		a := byApp[app]
		sum := stats.Summarize(a.speedups)
		out = append(out, SeedSweepRow{
			App:           app,
			Seeds:         sum.N,
			SpeedupMean:   sum.Mean,
			SpeedupMedian: sum.Median,
			SpeedupMin:    sum.Min,
			SpeedupMax:    sum.Max,
			SpeedupStdDev: sum.StdDev,
			CapRedMean:    stats.Mean(a.capreds),
		})
	}
	return out, nil
}

// RenderSeedSweep prints the robustness table.
func RenderSeedSweep(ctx context.Context, w io.Writer, opts Options, seeds []uint64) error {
	rows, err := SeedSweep(ctx, opts, seeds)
	if err != nil {
		return err
	}
	fmt.Fprint(w, Title(fmt.Sprintf("Seed sweep: HinTM speedup across %d seeds", len(seeds))))
	t := stats.NewTable("app", "mean", "median", "min", "max", "stddev", "cap-red-mean")
	for _, row := range rows {
		t.Row(row.App,
			fmt.Sprintf("%.2fx", row.SpeedupMean),
			fmt.Sprintf("%.2fx", row.SpeedupMedian),
			fmt.Sprintf("%.2fx", row.SpeedupMin),
			fmt.Sprintf("%.2fx", row.SpeedupMax),
			fmt.Sprintf("%.3f", row.SpeedupStdDev),
			fmt.Sprintf("%.0f%%", row.CapRedMean*100))
	}
	t.Render(w)
	return nil
}
