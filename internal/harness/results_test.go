package harness

import (
	"context"
	"encoding/json"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// benchResultsFixture produces a small but real BenchResults via the
// harness (memoized, so the cost is one tiny grid).
func benchResultsFixture(t *testing.T) *BenchResults {
	t.Helper()
	opts := QuickOptions()
	opts.Filter = []string{"labyrinth"}
	r := NewRunner(opts)
	sum, err := r.BenchResults(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sum.WallSeconds = 1.25
	return sum
}

func TestBenchResultsJSONRoundTrip(t *testing.T) {
	sum := benchResultsFixture(t)
	var sb strings.Builder
	if err := sum.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}

	got, err := ReadBenchResults(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(sum)
	b2, _ := json.Marshal(got)
	if string(b1) != string(b2) {
		t.Errorf("round-trip changed the summary:\n%s\nvs\n%s", b1, b2)
	}
}

func TestBenchResultsSchemaField(t *testing.T) {
	sum := benchResultsFixture(t)
	if sum.Schema != BenchResultsSchema {
		t.Fatalf("Schema = %q, want %q", sum.Schema, BenchResultsSchema)
	}
	var sb strings.Builder
	sum.WriteJSON(&sb)
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sb.String()), &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["schema"]) != `"`+BenchResultsSchema+`"` {
		t.Errorf("emitted schema field = %s", raw["schema"])
	}

	// A wrong schema is rejected with a regeneration hint, not misparsed.
	bad := strings.Replace(sb.String(), BenchResultsSchema, "hintm-bench-results/v0", 1)
	if _, err := ReadBenchResults(strings.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Errorf("stale schema accepted: %v", err)
	}
}

// TestBenchResultsStableKeyOrdering asserts the emitted JSON is
// byte-deterministic: two encodings of one summary are identical, and the
// figure keys appear in sorted order (encoding/json sorts map keys — this
// pins that the summary keeps relying on it, so baselines diff cleanly).
func TestBenchResultsStableKeyOrdering(t *testing.T) {
	sum := benchResultsFixture(t)
	var a, b strings.Builder
	sum.WriteJSON(&a)
	sum.WriteJSON(&b)
	if a.String() != b.String() {
		t.Fatal("two encodings of the same summary differ")
	}

	keyRe := regexp.MustCompile(`"(fig\d)":`)
	var keys []string
	for _, m := range keyRe.FindAllStringSubmatch(a.String(), -1) {
		keys = append(keys, m[1])
	}
	if len(keys) < 2 {
		t.Fatalf("expected several figure keys, got %v", keys)
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("figure keys not sorted in output: %v", keys)
	}
}

func headline(sp float64) *FigureHeadline {
	return &FigureHeadline{Rows: 5, GeomeanSpeedup: sp, GeomeanSpeedupInf: sp + 0.2, MeanCapAbortReduction: 0.8}
}

func baseSummary() *BenchResults {
	return &BenchResults{
		Schema: BenchResultsSchema, Scale: "small", LargeScale: "small", Seed: 1,
		Figures: map[string]*FigureHeadline{"fig4": headline(1.5), "fig7": headline(1.4)},
	}
}

func TestDiffBenchResultsCleanOnIdentical(t *testing.T) {
	if regs := DiffBenchResults(baseSummary(), baseSummary(), 0.05); len(regs) != 0 {
		t.Errorf("identical summaries flagged: %v", regs)
	}
}

func TestDiffBenchResultsFlagsRegressions(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*BenchResults)
		want   string
	}{
		{"speedup drop", func(b *BenchResults) { b.Figures["fig4"].GeomeanSpeedup = 1.2 }, "geomeanSpeedup"},
		{"failed rows", func(b *BenchResults) { b.Figures["fig7"].Failed = 2 }, "failed rows"},
		{"row count", func(b *BenchResults) { b.Figures["fig4"].Rows = 3 }, "grid changed"},
		{"missing figure", func(b *BenchResults) { delete(b.Figures, "fig7") }, "missing"},
		{"new error", func(b *BenchResults) { b.Errors = map[string]string{"fig4": "boom"} }, "new error"},
		{"seed mismatch", func(b *BenchResults) { b.Seed = 2 }, "seed mismatch"},
	}
	for _, tc := range cases {
		cur := baseSummary()
		tc.mutate(cur)
		regs := DiffBenchResults(baseSummary(), cur, 0.05)
		if len(regs) == 0 || !strings.Contains(strings.Join(regs, "\n"), tc.want) {
			t.Errorf("%s: regressions = %v, want mention of %q", tc.name, regs, tc.want)
		}
	}

	// Drifting metrics flag movement in either direction.
	base := baseSummary()
	base.Figures["fig4"].MeanCapacityTime = 0.20
	for _, v := range []float64{0.30, 0.10} {
		cur := baseSummary()
		cur.Figures["fig4"].MeanCapacityTime = v
		regs := DiffBenchResults(base, cur, 0.05)
		if !strings.Contains(strings.Join(regs, "\n"), "drifted") {
			t.Errorf("capacity-time %v -> %v not flagged: %v", 0.20, v, regs)
		}
	}
}

func TestDiffBenchResultsRespectsTolerance(t *testing.T) {
	cur := baseSummary()
	cur.Figures["fig4"].GeomeanSpeedup = 1.5 * 0.97 // a 3% dip
	if regs := DiffBenchResults(baseSummary(), cur, 0.05); len(regs) != 0 {
		t.Errorf("3%% dip flagged at 5%% tolerance: %v", regs)
	}
	if regs := DiffBenchResults(baseSummary(), cur, 0.01); len(regs) == 0 {
		t.Error("3% dip not flagged at 1% tolerance")
	}
	// An improvement is never a regression.
	cur.Figures["fig4"].GeomeanSpeedup = 2.0
	if regs := DiffBenchResults(baseSummary(), cur, 0.01); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
}
