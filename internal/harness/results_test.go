package harness

import (
	"context"
	"encoding/json"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// benchResultsFixture produces a small but real BenchResults via the
// harness (memoized, so the cost is one tiny grid).
func benchResultsFixture(t *testing.T) *BenchResults {
	t.Helper()
	opts := QuickOptions()
	opts.Filter = []string{"labyrinth"}
	r := NewRunner(opts)
	sum, err := r.BenchResults(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sum.WallSeconds = 1.25
	return sum
}

func TestBenchResultsJSONRoundTrip(t *testing.T) {
	sum := benchResultsFixture(t)
	var sb strings.Builder
	if err := sum.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}

	got, err := ReadBenchResults(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(sum)
	b2, _ := json.Marshal(got)
	if string(b1) != string(b2) {
		t.Errorf("round-trip changed the summary:\n%s\nvs\n%s", b1, b2)
	}
}

func TestBenchResultsSchemaField(t *testing.T) {
	sum := benchResultsFixture(t)
	if sum.Schema != BenchResultsSchema {
		t.Fatalf("Schema = %q, want %q", sum.Schema, BenchResultsSchema)
	}
	var sb strings.Builder
	sum.WriteJSON(&sb)
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sb.String()), &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["schema"]) != `"`+BenchResultsSchema+`"` {
		t.Errorf("emitted schema field = %s", raw["schema"])
	}

	// A wrong schema is rejected with a regeneration hint, not misparsed.
	bad := strings.Replace(sb.String(), BenchResultsSchema, "hintm-bench-results/v0", 1)
	if _, err := ReadBenchResults(strings.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Errorf("stale schema accepted: %v", err)
	}
}

// TestBenchResultsStableKeyOrdering asserts the emitted JSON is
// byte-deterministic: two encodings of one summary are identical, and the
// figure keys appear in sorted order (encoding/json sorts map keys — this
// pins that the summary keeps relying on it, so baselines diff cleanly).
func TestBenchResultsStableKeyOrdering(t *testing.T) {
	sum := benchResultsFixture(t)
	var a, b strings.Builder
	sum.WriteJSON(&a)
	sum.WriteJSON(&b)
	if a.String() != b.String() {
		t.Fatal("two encodings of the same summary differ")
	}

	keyRe := regexp.MustCompile(`"(fig\d)":`)
	var keys []string
	for _, m := range keyRe.FindAllStringSubmatch(a.String(), -1) {
		keys = append(keys, m[1])
	}
	if len(keys) < 2 {
		t.Fatalf("expected several figure keys, got %v", keys)
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("figure keys not sorted in output: %v", keys)
	}
}

func headline(sp float64) *FigureHeadline {
	return &FigureHeadline{Rows: 5, GeomeanSpeedup: sp, GeomeanSpeedupInf: sp + 0.2, MeanCapAbortReduction: 0.8}
}

func baseSummary() *BenchResults {
	return &BenchResults{
		Schema: BenchResultsSchema, Scale: "small", LargeScale: "small", Seed: 1,
		Figures: map[string]*FigureHeadline{"fig4": headline(1.5), "fig7": headline(1.4)},
	}
}

func TestDiffBenchResultsCleanOnIdentical(t *testing.T) {
	if regs := DiffBenchResults(baseSummary(), baseSummary(), 0.05); len(regs) != 0 {
		t.Errorf("identical summaries flagged: %v", regs)
	}
}

func TestDiffBenchResultsFlagsRegressions(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*BenchResults)
		want   string
	}{
		{"speedup drop", func(b *BenchResults) { b.Figures["fig4"].GeomeanSpeedup = 1.2 }, "geomeanSpeedup"},
		{"failed rows", func(b *BenchResults) { b.Figures["fig7"].Failed = 2 }, "failed rows"},
		{"row count", func(b *BenchResults) { b.Figures["fig4"].Rows = 3 }, "grid changed"},
		{"missing figure", func(b *BenchResults) { delete(b.Figures, "fig7") }, "missing"},
		{"new error", func(b *BenchResults) { b.Errors = map[string]string{"fig4": "boom"} }, "new error"},
		{"seed mismatch", func(b *BenchResults) { b.Seed = 2 }, "seed mismatch"},
	}
	for _, tc := range cases {
		cur := baseSummary()
		tc.mutate(cur)
		regs := DiffBenchResults(baseSummary(), cur, 0.05)
		if len(regs) == 0 || !strings.Contains(strings.Join(regs, "\n"), tc.want) {
			t.Errorf("%s: regressions = %v, want mention of %q", tc.name, regs, tc.want)
		}
	}

	// Drifting metrics flag movement in either direction.
	base := baseSummary()
	base.Figures["fig4"].MeanCapacityTime = 0.20
	for _, v := range []float64{0.30, 0.10} {
		cur := baseSummary()
		cur.Figures["fig4"].MeanCapacityTime = v
		regs := DiffBenchResults(base, cur, 0.05)
		if !strings.Contains(strings.Join(regs, "\n"), "drifted") {
			t.Errorf("capacity-time %v -> %v not flagged: %v", 0.20, v, regs)
		}
	}
}

func TestDiffBenchResultsRespectsTolerance(t *testing.T) {
	cur := baseSummary()
	cur.Figures["fig4"].GeomeanSpeedup = 1.5 * 0.97 // a 3% dip
	if regs := DiffBenchResults(baseSummary(), cur, 0.05); len(regs) != 0 {
		t.Errorf("3%% dip flagged at 5%% tolerance: %v", regs)
	}
	if regs := DiffBenchResults(baseSummary(), cur, 0.01); len(regs) == 0 {
		t.Error("3% dip not flagged at 1% tolerance")
	}
	// An improvement is never a regression.
	cur.Figures["fig4"].GeomeanSpeedup = 2.0
	if regs := DiffBenchResults(baseSummary(), cur, 0.01); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
}

// A v1 baseline (no wall times, no cycle throughput) must stay readable, so
// committed baselines survive the schema bump.
func TestReadBenchResultsAcceptsV1(t *testing.T) {
	v1 := `{"schema":"hintm-bench-results/v1","scale":"small","largeScale":"small",` +
		`"seed":1,"wallSeconds":2.5,"figures":{"fig4":{"rows":5,"failed":0,"geomeanSpeedup":1.5}}}`
	b, err := ReadBenchResults(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 baseline rejected: %v", err)
	}
	if b.Figures["fig4"].GeomeanSpeedup != 1.5 {
		t.Errorf("v1 metrics lost: %+v", b.Figures["fig4"])
	}
	// And it diffs cleanly against a v2 current run: the v2-only fields are
	// zero in the baseline, so their checks are skipped.
	cur := baseSummary()
	cur.Figures["fig4"] = b.Figures["fig4"]
	cur.Figures["fig4"].WallSeconds = 9.9
	delete(cur.Figures, "fig7")
	b.Scale, b.LargeScale = "small", "small"
	if regs := DiffBenchResults(b, cur, 0.05); len(regs) != 0 {
		t.Errorf("v1-vs-v2 diff flagged v2-only fields: %v", regs)
	}
}

func TestDiffBenchResultsFlagsWallTimeRegression(t *testing.T) {
	base := baseSummary()
	base.WallSeconds = 10
	base.Figures["fig4"].WallSeconds = 4

	// Within the wide wall gate (50% at default tolerance): clean.
	cur := baseSummary()
	cur.WallSeconds = 13
	cur.Figures["fig4"].WallSeconds = 5
	if regs := DiffBenchResults(base, cur, 0.05); len(regs) != 0 {
		t.Errorf("sub-gate wall noise flagged: %v", regs)
	}

	// Beyond it: flagged, both whole-run and per-figure.
	cur.WallSeconds = 16
	cur.Figures["fig4"].WallSeconds = 7
	regs := strings.Join(DiffBenchResults(base, cur, 0.05), "\n")
	if !strings.Contains(regs, "wallSeconds 10.00 -> 16.00") {
		t.Errorf("whole-run wall regression not flagged: %v", regs)
	}
	if !strings.Contains(regs, "fig4: wallSeconds 4.00 -> 7.00") {
		t.Errorf("per-figure wall regression not flagged: %v", regs)
	}

	// Wall improvements are never regressions.
	cur.WallSeconds = 2
	cur.Figures["fig4"].WallSeconds = 1
	if regs := DiffBenchResults(base, cur, 0.05); len(regs) != 0 {
		t.Errorf("wall improvement flagged: %v", regs)
	}

	// Sub-floor baselines (store-hit figures finishing in microseconds)
	// are never gated: a 100x relative move on a 100µs baseline is
	// scheduler jitter, not a perf regression.
	base.Figures["fig4"].WallSeconds = 0.0001
	cur.WallSeconds = base.WallSeconds
	cur.Figures["fig4"].WallSeconds = 0.01
	if regs := DiffBenchResults(base, cur, 0.05); len(regs) != 0 {
		t.Errorf("sub-floor wall baseline gated: %v", regs)
	}
}

// MinWallSeconds moves the relative-gate floor: the same wall move must be
// ignored below the floor and flagged above it, from both directions.
func TestDiffOptionsMinWallSeconds(t *testing.T) {
	base := baseSummary()
	base.WallSeconds = 0.02 // below the 0.05 default floor
	cur := baseSummary()
	cur.WallSeconds = 10

	// Default floor: a 0.02s baseline is noise, never gated.
	if regs := DiffBenchResultsOpts(base, cur, DiffOptions{Tolerance: 0.05}); len(regs) != 0 {
		t.Errorf("sub-default-floor baseline gated: %v", regs)
	}
	// Lowered floor: the same move is now a real regression.
	o := DiffOptions{Tolerance: 0.05, MinWallSeconds: 0.01}
	if regs := DiffBenchResultsOpts(base, cur, o); len(regs) == 0 {
		t.Error("lowered floor did not gate a 500x wall regression")
	}
	// Raised floor: baselines under it are exempt even when the default
	// would have gated them.
	base.WallSeconds = 1
	cur.WallSeconds = 100
	if regs := DiffBenchResultsOpts(base, cur, DiffOptions{Tolerance: 0.05, MinWallSeconds: 5}); len(regs) != 0 {
		t.Errorf("raised floor still gated a 1s baseline: %v", regs)
	}
	if regs := DiffBenchResultsOpts(base, cur, DiffOptions{Tolerance: 0.05}); len(regs) == 0 {
		t.Error("default floor missed a 100x regression on a 1s baseline")
	}

	// The wrapper keeps the default floor.
	base.WallSeconds, cur.WallSeconds = 0.02, 10
	if regs := DiffBenchResults(base, cur, 0.05); len(regs) != 0 {
		t.Errorf("DiffBenchResults changed its floor: %v", regs)
	}
}

// A v2 baseline (wall times + throughput, no production breakdown) must
// stay readable after the v3 bump, and its zero breakdown fields must skip
// the prefix-sharing gate.
func TestReadBenchResultsAcceptsV2(t *testing.T) {
	v2 := `{"schema":"hintm-bench-results/v2","scale":"small","largeScale":"small",` +
		`"seed":1,"wallSeconds":2.5,"simCycles":100,` +
		`"figures":{"fig4":{"rows":5,"failed":0,"wallSeconds":1.5,"geomeanSpeedup":1.5}}}`
	b, err := ReadBenchResults(strings.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 baseline rejected: %v", err)
	}
	if b.Figures["fig4"].WallSeconds != 1.5 {
		t.Errorf("v2 metrics lost: %+v", b.Figures["fig4"])
	}
	cur := baseSummary()
	cur.ColdRuns = 50 // cold work with no sharing — fine against a v2 baseline
	if regs := DiffBenchResultsOpts(b, cur, DiffOptions{Tolerance: 0.05}); len(regs) != 0 {
		t.Errorf("v2-vs-v3 diff flagged v3-only fields: %v", regs)
	}
}

func TestDiffBenchResultsFlagsLostPrefixSharing(t *testing.T) {
	base := baseSummary()
	base.ColdRuns, base.PrefixShared = 10, 40

	// Sharing stopped while cold work remained: regression.
	cur := baseSummary()
	cur.ColdRuns, cur.PrefixShared = 50, 0
	regs := strings.Join(DiffBenchResultsOpts(base, cur, DiffOptions{Tolerance: 0.05}), "\n")
	if !strings.Contains(regs, "prefixShared") {
		t.Errorf("lost sharing not flagged: %v", regs)
	}

	// A fully store-warm run (zero cold runs) legitimately shares nothing.
	cur.ColdRuns, cur.PrefixShared = 0, 0
	cur.StoreHits = 50
	if regs := DiffBenchResultsOpts(base, cur, DiffOptions{Tolerance: 0.05}); len(regs) != 0 {
		t.Errorf("store-warm run flagged: %v", regs)
	}

	// Sharing still active: clean.
	cur.ColdRuns, cur.PrefixShared = 10, 40
	cur.StoreHits = 0
	if regs := DiffBenchResultsOpts(base, cur, DiffOptions{Tolerance: 0.05}); len(regs) != 0 {
		t.Errorf("healthy sharing flagged: %v", regs)
	}
}
