package harness

import (
	"context"
	"strings"
	"testing"
)

// TestAblationsRunAtQuickScale drives every ablation end to end at Small
// scale and sanity-checks the rendered tables.
func TestAblationsRunAtQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations sweep many configurations")
	}
	r := NewRunner(QuickOptions())
	cases := []struct {
		name string
		run  func(w *strings.Builder) error
		want string
	}{
		{"buffer", func(w *strings.Builder) error { return r.AblateBufferSize(context.Background(), w, "labyrinth") }, "P8 buffer size"},
		{"signature", func(w *strings.Builder) error { return r.AblateSignatureSize(context.Background(), w, "yada") }, "signature size"},
		{"shootdown", func(w *strings.Builder) error { return r.AblateShootdownCost(context.Background(), w, "vacation") }, "TLB-shootdown cost"},
		{"retries", func(w *strings.Builder) error { return r.AblateRetryPolicy(context.Background(), w, "tpcc-p") }, "conflict retries"},
		{"tlb", func(w *strings.Builder) error { return r.AblateTLBSize(context.Background(), w, "vacation") }, "TLB entries"},
		{"versioning", func(w *strings.Builder) error { return r.AblateVersioning(context.Background(), w, "kmeans") }, "versioning discipline"},
		{"htm-vs-stm", func(w *strings.Builder) error { return r.AblateHTMvsSTM(context.Background(), w, "bayes") }, "HTM vs STM"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			if err := c.run(&sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			if !strings.Contains(out, c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
			if strings.Count(out, "\n") < 6 {
				t.Fatalf("suspiciously short table:\n%s", out)
			}
		})
	}
}

func TestAblateUnknownWorkload(t *testing.T) {
	r := NewRunner(QuickOptions())
	var sb strings.Builder
	if err := r.AblateBufferSize(context.Background(), &sb, "ghost"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestDefaultOptions(t *testing.T) {
	opts := DefaultOptions()
	if opts.Seed == 0 {
		t.Fatal("default seed must be nonzero")
	}
	if opts.Scale == opts.LargeScale {
		t.Fatal("default scales should differ")
	}
}

func TestRenderExtras(t *testing.T) {
	var sb strings.Builder
	if err := NewRunner(QuickOptions()).RenderExtras(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"intset-ll", "intset-hash", "honest negative"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("extras output missing %q", want)
		}
	}
}

func TestExportAllProducesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("export runs every figure")
	}
	var sb strings.Builder
	r := quick("labyrinth")
	if err := r.ExportAll(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"fig1"`, `"fig4"`, `"fig6"`, `"SpeedupFull"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q", want)
		}
	}
}

func TestSeedSweepAggregates(t *testing.T) {
	opts := QuickOptions()
	opts.Filter = []string{"labyrinth"}
	rows, err := SeedSweep(context.Background(), opts, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Seeds != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.SpeedupMin > r.SpeedupMean || r.SpeedupMean > r.SpeedupMax {
		t.Fatalf("aggregate ordering wrong: %+v", r)
	}
	if r.SpeedupMean <= 1 {
		t.Fatalf("labyrinth should speed up on every seed: %+v", r)
	}
}
