package harness

import (
	"context"
	"encoding/json"
	"io"
	"time"
)

// BenchResultsSchema versions the BENCH_results.json layout; bump it when a
// field changes meaning so downstream tooling can detect stale files.
// v2 added per-figure wall time and whole-run simulated-cycle throughput;
// v3 added the run-production breakdown (cold / store-hit / prefix-forked
// counts and fork time) per figure and for the whole run. Older files
// remain readable (the added fields decode as zero and the diff checks
// skip them).
const (
	BenchResultsSchema   = "hintm-bench-results/v3"
	benchResultsSchemaV2 = "hintm-bench-results/v2"
	benchResultsSchemaV1 = "hintm-bench-results/v1"
)

// FigureHeadline is one figure's machine-readable summary: the headline
// aggregate numbers a regression checker or dashboard wants, without the
// per-app rows (those live in `hintm-bench export`).
type FigureHeadline struct {
	// Rows is the number of app rows the figure produced; Failed counts the
	// rows whose underlying runs did not complete. Means/geomeans cover the
	// surviving rows only.
	Rows   int `json:"rows"`
	Failed int `json:"failed"`

	// WallSeconds is this figure's wall-clock production time (v2). When the
	// summary runs after the figures rendered, the memoized scheduler recalls
	// every run and this measures a cheap reduction; standalone, it measures
	// the figure's real simulation cost. Measurement metadata only — never
	// part of the deterministic result bytes.
	WallSeconds float64 `json:"wallSeconds,omitempty"`

	// v3 production breakdown: how this figure's simulations were obtained
	// while it rendered — full cold runs, content-addressed store recalls,
	// and prefix-forked resumes — plus the wall time spent forking
	// snapshots. Like WallSeconds these are deltas over the figure's span
	// (≈0 when an earlier figure already ran the cells; shared runs
	// attribute to the first figure that needed them) and are measurement
	// metadata, never part of the deterministic result bytes.
	ColdRuns     uint64  `json:"coldRuns,omitempty"`
	StoreHits    uint64  `json:"storeHits,omitempty"`
	PrefixShared uint64  `json:"prefixShared,omitempty"`
	ForkSeconds  float64 `json:"forkSeconds,omitempty"`
	// SharedCycles is the simulated-cycle total this figure's forked runs
	// inherited from snapshots instead of re-executing.
	SharedCycles uint64 `json:"sharedCycles,omitempty"`

	// GeomeanSpeedup is the HinTM-full speedup geomean over the figure's
	// baseline HTM; GeomeanSpeedupInf the InfCap upper bound.
	GeomeanSpeedup    float64 `json:"geomeanSpeedup,omitempty"`
	GeomeanSpeedupInf float64 `json:"geomeanSpeedupInf,omitempty"`
	// MeanCapAbortReduction is the mean HinTM-full capacity-abort reduction
	// (apps with baseline capacity aborts only).
	MeanCapAbortReduction float64 `json:"meanCapAbortReduction,omitempty"`
	// MeanCapacityTime is Fig. 1's mean runtime fraction lost to capacity
	// aborts; MeanSafeReadsBlock its mean safe-read fraction at 64 B.
	MeanCapacityTime   float64 `json:"meanCapacityTime,omitempty"`
	MeanSafeReadsBlock float64 `json:"meanSafeReadsBlock,omitempty"`
	// MeanStaticSafeFrac/MeanDynSafeFrac are Fig. 5's access-class means.
	MeanStaticSafeFrac float64 `json:"meanStaticSafeFrac,omitempty"`
	MeanDynSafeFrac    float64 `json:"meanDynSafeFrac,omitempty"`
	// MeanFracOverP8Full is Fig. 6's mean fraction of HinTM transactions
	// still exceeding the 64-block P8 capacity.
	MeanFracOverP8Full float64 `json:"meanFracOverP8Full,omitempty"`
}

// BenchResults is the machine-readable run summary hintm-bench writes next
// to its text figures (satellite of the observability layer: CI and scripts
// diff these instead of scraping tables).
type BenchResults struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	LargeScale string `json:"largeScale"`
	Seed       uint64 `json:"seed"`
	// WallSeconds is the whole run's wall-clock time; the caller stamps it
	// (the harness itself avoids wall-clock reads for determinism).
	WallSeconds float64 `json:"wallSeconds"`
	// SimCycles is the total simulated cycles this process actually executed
	// (store recalls contribute nothing); SimCyclesPerSec divides it by
	// WallSeconds — the v2 throughput headline the perf CI watches.
	SimCycles       uint64  `json:"simCycles,omitempty"`
	SimCyclesPerSec float64 `json:"simCyclesPerSec,omitempty"`

	// Whole-run production breakdown (v3): runner-global totals over every
	// simulation this process performed — always meaningful even when
	// figures share runs, and the counters bench-diff gates sharing on.
	ColdRuns     uint64  `json:"coldRuns,omitempty"`
	StoreHits    uint64  `json:"storeHits,omitempty"`
	PrefixShared uint64  `json:"prefixShared,omitempty"`
	ForkSeconds  float64 `json:"forkSeconds,omitempty"`
	// SharedCycles is the simulated-cycle total forked runs inherited from
	// snapshots rather than re-executing: a cold scheduler would have
	// simulated SimCycles + SharedCycles - (each shared warm-up, which
	// SimCycles already counts once) — the sharing win on the
	// simulated-work axis.
	SharedCycles uint64 `json:"sharedCycles,omitempty"`

	// Figures maps figure name → headline metrics.
	Figures map[string]*FigureHeadline `json:"figures"`
	// Errors maps figure name → joined error text for degraded figures.
	Errors map[string]string `json:"errors,omitempty"`
}

// BenchResults reduces every figure into headline metrics. Run after the
// figures have rendered, the memoized scheduler recalls every simulation, so
// the summary costs no extra runs; standalone it runs the full grid.
func (r *Runner) BenchResults(ctx context.Context) (*BenchResults, error) {
	out := &BenchResults{
		Schema:     BenchResultsSchema,
		Scale:      r.opts.Scale.String(),
		LargeScale: r.opts.LargeScale.String(),
		Seed:       r.opts.Seed,
		Figures:    make(map[string]*FigureHeadline),
		Errors:     make(map[string]string),
	}

	// Per-figure wall times and production breakdowns are measurement
	// metadata, not simulation state; the deterministic result bytes never
	// see them.
	var figStart time.Time
	var figStats RunStats

	figStart, figStats = time.Now(), r.Stats()
	if rows, err := r.Fig1(ctx); !out.note(ctx, "fig1", err) {
		h := &FigureHeadline{}
		var ct, srb []float64
		for _, row := range rows {
			h.count(row.Failed)
			if !row.Failed {
				ct = append(ct, row.CapacityTime)
				srb = append(srb, row.SafeReadsBlock)
			}
		}
		h.MeanCapacityTime = mean(ct)
		h.MeanSafeReadsBlock = mean(srb)
		h.stamp(figStart, figStats, r.Stats())
		out.Figures["fig1"] = h
	}

	figStart, figStats = time.Now(), r.Stats()
	if rows, err := r.Fig4(ctx); !out.note(ctx, "fig4", err) {
		h := sweepHeadline(rows)
		h.stamp(figStart, figStats, r.Stats())
		out.Figures["fig4"] = h
	}

	figStart, figStats = time.Now(), r.Stats()
	if rows, err := r.Fig5(ctx); !out.note(ctx, "fig5", err) {
		h := &FigureHeadline{}
		var sf, df []float64
		for _, row := range rows {
			h.count(row.Failed)
			if !row.Failed {
				sf = append(sf, row.StaticFrac)
				df = append(df, row.DynFrac)
			}
		}
		h.MeanStaticSafeFrac = mean(sf)
		h.MeanDynSafeFrac = mean(df)
		h.stamp(figStart, figStats, r.Stats())
		out.Figures["fig5"] = h
	}

	figStart, figStats = time.Now(), r.Stats()
	if series, err := r.Fig6(ctx); !out.note(ctx, "fig6", err) {
		h := &FigureHeadline{}
		var over []float64
		for _, s := range series {
			h.count(s.Failed)
			if !s.Failed && len(s.Full) > 0 {
				over = append(over, 1-s.Full[len(s.Full)-1])
			}
		}
		h.MeanFracOverP8Full = mean(over)
		h.stamp(figStart, figStats, r.Stats())
		out.Figures["fig6"] = h
	}

	figStart, figStats = time.Now(), r.Stats()
	if rows, err := r.Fig7(ctx); !out.note(ctx, "fig7", err) {
		h := &FigureHeadline{}
		var sp, si, cr []float64
		for _, row := range rows {
			h.count(row.Failed)
			if !row.Failed {
				sp = append(sp, row.SpeedupFull)
				si = append(si, row.SpeedupInf)
				if row.BaseCapacity > 0 {
					cr = append(cr, row.CapRedFull)
				}
			}
		}
		h.GeomeanSpeedup = geomean(sp)
		h.GeomeanSpeedupInf = geomean(si)
		h.MeanCapAbortReduction = mean(cr)
		h.stamp(figStart, figStats, r.Stats())
		out.Figures["fig7"] = h
	}

	figStart, figStats = time.Now(), r.Stats()
	if rows, err := r.Fig8(ctx); !out.note(ctx, "fig8", err) {
		h := &FigureHeadline{}
		var sp, si, cr []float64
		for _, row := range rows {
			h.count(row.Failed)
			if !row.Failed {
				sp = append(sp, row.SpeedupFull)
				si = append(si, row.SpeedupInf)
				if row.BaseCapacity > 0 {
					cr = append(cr, row.CapRedFull)
				}
			}
		}
		h.GeomeanSpeedup = geomean(sp)
		h.GeomeanSpeedupInf = geomean(si)
		h.MeanCapAbortReduction = mean(cr)
		h.stamp(figStart, figStats, r.Stats())
		out.Figures["fig8"] = h
	}

	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if len(out.Errors) == 0 {
		out.Errors = nil
	}
	out.SimCycles = r.simCycles.Load()
	st := r.Stats()
	out.ColdRuns = st.ColdRuns()
	out.StoreHits = st.StoreHits
	out.PrefixShared = st.ForkedRuns
	out.ForkSeconds = st.ForkSeconds
	out.SharedCycles = st.SharedCycles
	return out, nil
}

// stamp records the figure's wall time and production breakdown from the
// runner counter deltas over its rendering span.
func (h *FigureHeadline) stamp(figStart time.Time, before, after RunStats) {
	h.WallSeconds = time.Since(figStart).Seconds()
	d := after.Sub(before)
	h.ColdRuns = d.ColdRuns()
	h.StoreHits = d.StoreHits
	h.PrefixShared = d.ForkedRuns
	h.ForkSeconds = d.ForkSeconds
	h.SharedCycles = d.SharedCycles
}

// note records a figure failure; it reports whether the figure must be
// skipped outright (cancelled context). A degraded figure (err != nil but
// rows present) is recorded yet still summarized by the caller.
func (b *BenchResults) note(ctx context.Context, name string, err error) (skip bool) {
	if err != nil {
		b.Errors[name] = err.Error()
	}
	return ctx.Err() != nil
}

func (h *FigureHeadline) count(failed bool) {
	h.Rows++
	if failed {
		h.Failed++
	}
}

// sweepHeadline reduces a Fig.-4-shaped sweep (also used by extras).
func sweepHeadline(rows []Fig4Row) *FigureHeadline {
	h := &FigureHeadline{}
	var sp, si, cr []float64
	for _, row := range rows {
		h.count(row.Failed)
		if !row.Failed {
			sp = append(sp, row.SpeedupFull)
			si = append(si, row.SpeedupInf)
			if row.BaseCapacity > 0 {
				cr = append(cr, row.CapRedFull)
			}
		}
	}
	h.GeomeanSpeedup = geomean(sp)
	h.GeomeanSpeedupInf = geomean(si)
	h.MeanCapAbortReduction = mean(cr)
	return h
}

// WriteJSON serializes the summary as indented JSON (map keys sort, so the
// output is deterministic for a deterministic run).
func (b *BenchResults) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
