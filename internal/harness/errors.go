package harness

import (
	"errors"
	"fmt"
)

// RequestError attributes a failure to the Request whose simulation caused
// it, so a grid submitter can tell which cell of a figure died. It unwraps
// to the underlying cause: errors.Is/As see through it to context errors,
// sim.ErrLivelock, PanicError, and the rest.
type RequestError struct {
	Req Request
	Err error
}

func (e *RequestError) Error() string { return fmt.Sprintf("%v: %v", e.Req, e.Err) }

func (e *RequestError) Unwrap() error { return e.Err }

// PanicError is a worker panic recovered by the scheduler: the run that
// panicked reports this instead of crashing the process, and every other
// run in the grid completes. It unwraps to the panic value when that value
// is itself an error (e.g. fault.InjectedPanic).
type PanicError struct {
	// Value is the recovered panic value; Stack the goroutine stack at the
	// recovery point.
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("simulation panicked: %v", e.Value) }

func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// joinErrors deduplicates (by identity — shared flights yield the one error
// instance) and joins a grid's failures, preserving request order.
func joinErrors(errs []error) error {
	seen := make(map[error]bool, len(errs))
	var failed []error
	for _, err := range errs {
		if err != nil && !seen[err] {
			seen[err] = true
			failed = append(failed, err)
		}
	}
	return errors.Join(failed...)
}
