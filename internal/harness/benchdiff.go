package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Bench-trajectory regression checking: `hintm-bench benchdiff` (and the
// `make bench-diff` target) compares a freshly produced BENCH_results.json
// against the committed baseline and fails when a headline metric moved
// the wrong way by more than a relative tolerance. The simulator is
// deterministic for a fixed seed, so on an unchanged tree the diff is
// exactly zero; the tolerance exists to let intentional modelling changes
// land without churning the baseline for sub-noise drift.

// wallTolerance widens the metric tolerance for wall-clock comparisons:
// at least 50%, and never tighter than 10x the headline tolerance.
func wallTolerance(tolerance float64) float64 {
	wt := tolerance * 10
	if wt < 0.5 {
		wt = 0.5
	}
	return wt
}

// DefaultMinWallSeconds is the default for DiffOptions.MinWallSeconds: the
// shortest baseline wall time worth comparing in relative terms. Figures
// that reuse another figure's runs through the content-addressed store
// complete in microseconds, where a relative gate measures scheduler
// jitter, not performance.
const DefaultMinWallSeconds = 0.05

// DiffOptions tunes DiffBenchResultsOpts.
type DiffOptions struct {
	// Tolerance is the relative gate on the deterministic headline metrics:
	// a higher-is-better metric regresses when cur < base*(1-Tolerance); a
	// drifting metric when it moves more than Tolerance from base in either
	// direction. Wall-time gates use wallTolerance(Tolerance).
	Tolerance float64
	// MinWallSeconds is the shortest baseline wall time gated in relative
	// terms (0 = DefaultMinWallSeconds). Lower it to gate fast smoke grids;
	// raise it on noisy shared runners.
	MinWallSeconds float64
}

// ReadBenchResults decodes and validates one BENCH_results.json.
func ReadBenchResults(r io.Reader) (*BenchResults, error) {
	var b BenchResults
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("bench results: %w", err)
	}
	// Older baselines stay readable: the v2 additions (per-figure wall time,
	// simulated-cycle throughput) and the v3 production breakdown decode as
	// zero and every check skips zero baselines.
	switch b.Schema {
	case BenchResultsSchema, benchResultsSchemaV2, benchResultsSchemaV1:
	default:
		return nil, fmt.Errorf("bench results: schema %q, want %q (re-run hintm-bench to regenerate)",
			b.Schema, BenchResultsSchema)
	}
	return &b, nil
}

// higherIsBetter lists the FigureHeadline metrics where a drop is a
// regression; the remaining metrics are workload properties (capacity-time
// fractions, safe-access fractions) where any large move in either
// direction means the model changed and the baseline must be looked at.
var higherIsBetter = []struct {
	name string
	get  func(*FigureHeadline) float64
}{
	{"geomeanSpeedup", func(h *FigureHeadline) float64 { return h.GeomeanSpeedup }},
	{"geomeanSpeedupInf", func(h *FigureHeadline) float64 { return h.GeomeanSpeedupInf }},
	{"meanCapAbortReduction", func(h *FigureHeadline) float64 { return h.MeanCapAbortReduction }},
	{"meanStaticSafeFrac", func(h *FigureHeadline) float64 { return h.MeanStaticSafeFrac }},
	{"meanDynSafeFrac", func(h *FigureHeadline) float64 { return h.MeanDynSafeFrac }},
}

var drifting = []struct {
	name string
	get  func(*FigureHeadline) float64
}{
	{"meanCapacityTime", func(h *FigureHeadline) float64 { return h.MeanCapacityTime }},
	{"meanSafeReadsBlock", func(h *FigureHeadline) float64 { return h.MeanSafeReadsBlock }},
	{"meanFracOverP8Full", func(h *FigureHeadline) float64 { return h.MeanFracOverP8Full }},
}

// DiffBenchResults compares cur against base with default options; see
// DiffBenchResultsOpts.
func DiffBenchResults(base, cur *BenchResults, tolerance float64) []string {
	return DiffBenchResultsOpts(base, cur, DiffOptions{Tolerance: tolerance})
}

// DiffBenchResultsOpts compares cur against base and returns one line per
// regression (empty = clean).
func DiffBenchResultsOpts(base, cur *BenchResults, o DiffOptions) []string {
	tolerance := o.Tolerance
	minWall := o.MinWallSeconds
	if minWall <= 0 {
		minWall = DefaultMinWallSeconds
	}
	var out []string
	if base.Seed != cur.Seed {
		out = append(out, fmt.Sprintf("  seed mismatch: baseline %d vs current %d (not comparable)", base.Seed, cur.Seed))
		return out
	}
	if base.Scale != cur.Scale || base.LargeScale != cur.LargeScale {
		out = append(out, fmt.Sprintf("  scale mismatch: baseline %s/%s vs current %s/%s (not comparable)",
			base.Scale, base.LargeScale, cur.Scale, cur.LargeScale))
		return out
	}

	// Wall time is noisy (shared CI boxes, cold caches), so it gets a much
	// wider gate than the deterministic headline metrics: flag only when the
	// run slowed beyond wallTolerance(tolerance) — a real perf regression,
	// not scheduler jitter. v1 baselines carry no per-figure wall times
	// (zero) and store-hit figures run in microseconds, so only baselines
	// above minWall are gated.
	wallTol := wallTolerance(tolerance)
	if base.WallSeconds >= minWall && cur.WallSeconds > base.WallSeconds*(1+wallTol) {
		out = append(out, fmt.Sprintf("  wallSeconds %.2f -> %.2f (+%.0f%%, tolerance %.0f%%)",
			base.WallSeconds, cur.WallSeconds,
			(cur.WallSeconds/base.WallSeconds-1)*100, wallTol*100))
	}

	// Prefix sharing losing effectiveness is a perf regression even when the
	// wall gate (deliberately wide) misses it: if the baseline shared
	// prefixes and the current run simulated cold work yet shared nothing,
	// the grouping broke. A current run with zero cold runs (fully
	// store-warm) legitimately shares nothing and is not flagged; v1/v2
	// baselines carry no breakdown (zero) and skip the gate.
	if base.PrefixShared > 0 && cur.PrefixShared == 0 && cur.ColdRuns > 0 {
		out = append(out, fmt.Sprintf("  prefixShared %d -> 0 with %d cold runs (warm-up sharing stopped working)",
			base.PrefixShared, cur.ColdRuns))
	}

	figs := make([]string, 0, len(base.Figures))
	for name := range base.Figures {
		figs = append(figs, name)
	}
	sort.Strings(figs)
	for _, name := range figs {
		b := base.Figures[name]
		c, ok := cur.Figures[name]
		if !ok {
			out = append(out, fmt.Sprintf("  %s: figure missing from current results", name))
			continue
		}
		if c.Rows != b.Rows {
			out = append(out, fmt.Sprintf("  %s: rows %d -> %d (grid changed)", name, b.Rows, c.Rows))
		}
		if c.Failed > b.Failed {
			out = append(out, fmt.Sprintf("  %s: failed rows %d -> %d", name, b.Failed, c.Failed))
		}
		for _, m := range higherIsBetter {
			bv, cv := m.get(b), m.get(c)
			if bv > 0 && cv < bv*(1-tolerance) {
				out = append(out, fmt.Sprintf("  %s: %s %.4f -> %.4f (-%.1f%%, tolerance %.1f%%)",
					name, m.name, bv, cv, (1-cv/bv)*100, tolerance*100))
			}
		}
		for _, m := range drifting {
			bv, cv := m.get(b), m.get(c)
			if bv > 0 && (cv < bv*(1-tolerance) || cv > bv*(1+tolerance)) {
				out = append(out, fmt.Sprintf("  %s: %s drifted %.4f -> %.4f (beyond %.1f%% tolerance)",
					name, m.name, bv, cv, tolerance*100))
			}
		}
		if b.WallSeconds >= minWall && c.WallSeconds > b.WallSeconds*(1+wallTol) {
			out = append(out, fmt.Sprintf("  %s: wallSeconds %.2f -> %.2f (+%.0f%%, tolerance %.0f%%)",
				name, b.WallSeconds, c.WallSeconds,
				(c.WallSeconds/b.WallSeconds-1)*100, wallTol*100))
		}
	}

	// Errors appearing where the baseline had none are regressions even if
	// the surviving rows' aggregates look healthy.
	errNames := make([]string, 0, len(cur.Errors))
	for name := range cur.Errors {
		errNames = append(errNames, name)
	}
	sort.Strings(errNames)
	for _, name := range errNames {
		if base.Errors[name] == "" {
			out = append(out, fmt.Sprintf("  %s: new error: %s", name, cur.Errors[name]))
		}
	}
	return out
}
