package harness

import (
	"fmt"

	"hintm/internal/sim"
	"hintm/internal/workloads"
)

// Request identifies one simulation the harness can run: a point in the
// (workload × scale × HTM × hint-mode × SMT) grid. It is a comparable value
// type and is used directly as the scheduler's memoization key — two
// figures asking for the same Request share a single run. Adding a config
// dimension means adding a field here; the compiler then points at every
// construction site, where the old fmt.Sprintf string keys would silently
// collide.
type Request struct {
	// Workload names a registered workload (see workloads.ByName).
	Workload string
	// Scale selects the input size.
	Scale workloads.Scale
	// HTM selects the baseline HTM configuration.
	HTM sim.HTMKind
	// Hints selects the HinTM mode.
	Hints sim.HintMode
	// SMT is the hardware threads per core (0 is normalized to 1).
	SMT int
	// SigBits overrides the P8S read-signature size in bits (0 = the
	// config default, 1024 per the paper). Only meaningful with HTM=P8S;
	// the hypothesis framework sweeps it to measure signature-aliasing
	// false conflicts. Zero keeps the store-key preimage unchanged, so
	// every pre-existing store entry stays addressable.
	SigBits uint64
}

// Result is the statistics bundle one simulation produces. It aliases
// sim.Result so harness callers can stay within this package's vocabulary.
type Result = sim.Result

// normalize maps the zero SMT value to 1 so that Request{..., SMT: 0} and
// the equivalent explicit single-threaded request share one cache slot.
func (q Request) normalize() Request {
	if q.SMT <= 0 {
		q.SMT = 1
	}
	return q
}

// String renders the request for error messages and logs. The signature
// override only appears when set, so default-signature requests render (and
// name their trace artifacts) exactly as before.
func (q Request) String() string {
	q = q.normalize()
	s := fmt.Sprintf("%s/%v/%v/%v/smt%d", q.Workload, q.Scale, q.HTM, q.Hints, q.SMT)
	if q.SigBits != 0 {
		s += fmt.Sprintf("/sig%d", q.SigBits)
	}
	return s
}
