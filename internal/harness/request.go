package harness

import (
	"fmt"

	"hintm/internal/sim"
	"hintm/internal/workloads"
)

// Request identifies one simulation the harness can run: a point in the
// (workload × scale × HTM × hint-mode × SMT) grid. It is a comparable value
// type and is used directly as the scheduler's memoization key — two
// figures asking for the same Request share a single run. Adding a config
// dimension means adding a field here; the compiler then points at every
// construction site, where the old fmt.Sprintf string keys would silently
// collide.
type Request struct {
	// Workload names a registered workload (see workloads.ByName).
	Workload string
	// Scale selects the input size.
	Scale workloads.Scale
	// HTM selects the baseline HTM configuration.
	HTM sim.HTMKind
	// Hints selects the HinTM mode.
	Hints sim.HintMode
	// SMT is the hardware threads per core (0 is normalized to 1).
	SMT int
}

// Result is the statistics bundle one simulation produces. It aliases
// sim.Result so harness callers can stay within this package's vocabulary.
type Result = sim.Result

// normalize maps the zero SMT value to 1 so that Request{..., SMT: 0} and
// the equivalent explicit single-threaded request share one cache slot.
func (q Request) normalize() Request {
	if q.SMT <= 0 {
		q.SMT = 1
	}
	return q
}

// String renders the request for error messages and logs.
func (q Request) String() string {
	q = q.normalize()
	return fmt.Sprintf("%s/%v/%v/%v/smt%d", q.Workload, q.Scale, q.HTM, q.Hints, q.SMT)
}
