// Package obs is the simulator's observability layer: a deterministic,
// cycle-timestamped event stream threaded through the whole stack (machine,
// HTM controller, vmem/TLB, cache, fault layer). The machine emits three
// event classes into an attached Tracer:
//
//   - spans: one per transaction attempt (begin → commit/abort), annotated
//     with the outcome, abort reason, read/write-set occupancy at end, the
//     hint-skipped footprint, and fallback-lock episodes;
//   - instants: page-mode transitions, TLB shootdowns, minor faults, L1
//     evictions, and injected faults;
//   - counter samples: periodic (every Config.SampleCycles cycles) snapshots
//     of the run's headline counters, forming per-run metrics time series.
//
// A nil Tracer is the compiled-out fast path: every emission site is guarded
// by a single nil check and the hot path allocates nothing (asserted by
// BenchmarkNilTracerAccess in internal/sim).
//
// Two sinks ship with the package: ChromeTracer writes Chrome trace-event
// JSON (openable in ui.perfetto.dev, one track per hardware context) and
// Collector retains events in memory to power the capacity-abort autopsy
// report. Both are deterministic: two runs of the same seeded configuration
// produce byte-identical trace files, so traces are diffable in CI.
package obs

import (
	"fmt"

	"hintm/internal/htm"
)

// EventKind classifies instant events.
type EventKind uint8

// Instant event kinds.
const (
	// EvPageTransition: a page turned safe→unsafe (shared-rw), aborting
	// every TX that touched it. Arg is the page number.
	EvPageTransition EventKind = iota
	// EvTLBShootdown: a slave context's TLB entry was invalidated by a
	// page-mode transition. Arg is the page number.
	EvTLBShootdown
	// EvMinorFault: a private page upgraded ro→rw. Arg is the page number.
	EvMinorFault
	// EvEviction: the context's core evicted an L1 line. Arg is the block.
	EvEviction
	// EvFaultSpurious: the fault layer fired an injected spurious abort.
	EvFaultSpurious
	// EvFaultStorm: the fault layer forced a page unsafe. Arg is the page.
	EvFaultStorm
	// EvFaultInvalHeld: the fault layer delayed a bus invalidation bound
	// for this context. Arg is the block.
	EvFaultInvalHeld

	numEventKinds
)

func (k EventKind) String() string {
	switch k {
	case EvPageTransition:
		return "page-transition"
	case EvTLBShootdown:
		return "tlb-shootdown"
	case EvMinorFault:
		return "minor-fault"
	case EvEviction:
		return "l1-eviction"
	case EvFaultSpurious:
		return "fault-spurious"
	case EvFaultStorm:
		return "fault-storm"
	case EvFaultInvalHeld:
		return "fault-inval-held"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Outcome classifies how a transaction attempt ended.
type Outcome uint8

// Span outcomes.
const (
	OutcomeCommit Outcome = iota
	OutcomeAbort
	OutcomeFallbackCommit
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCommit:
		return "commit"
	case OutcomeAbort:
		return "abort"
	case OutcomeFallbackCommit:
		return "fallback-commit"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// BlockCount is one (cache block, access count) pair of a transaction
// attempt's footprint, used to rank the top offending addresses.
type BlockCount struct {
	Block uint64
	Count int
}

// Overflow details a capacity abort: what the bounded structure held when it
// overflowed, what the safety hints kept out of it, and where the footprint
// concentrated.
type Overflow struct {
	// Structure names the hardware structure that overflowed: "tx-buffer"
	// (P8/P8S dedicated buffer), "l1-eviction" (in-L1 tracking lost a line).
	Structure string
	// Tracked is the structure's occupancy in distinct blocks at overflow;
	// Skipped is the distinct blocks the attempt's safety hints elided.
	Tracked, Skipped int
	// Top ranks the attempt's most-accessed blocks, highest count first.
	Top []BlockCount
}

// TxAttempt is one transaction-attempt span.
type TxAttempt struct {
	// Ctx is the hardware context; TID the software thread.
	Ctx, TID int
	// Start/End delimit the attempt in that context's cycle clock (End
	// includes the abort handler / commit cost).
	Start, End int64
	Outcome    Outcome
	// Reason is the abort reason (htm.AbortNone for commits).
	Reason htm.AbortReason
	// Fallback marks a critical section executed under the fallback lock.
	Fallback bool
	// ReadSet/WriteSet/Tracked are the tracking-structure occupancies at
	// span end (blocks; Tracked counts distinct entries, the
	// capacity-relevant footprint).
	ReadSet, WriteSet, Tracked int
	// SafeSkipped counts distinct blocks the attempt accessed that safety
	// hints kept out of the tracking structure.
	SafeSkipped int
	// Overflow is non-nil exactly when Reason == htm.AbortCapacity.
	Overflow *Overflow
}

// Duration is the attempt's span length in cycles.
func (a TxAttempt) Duration() int64 { return a.End - a.Start }

// CounterSample is one periodic snapshot of the run's headline counters
// (cumulative since run start).
type CounterSample struct {
	// Cycle timestamps the sample; Steps is the executed instruction count.
	Cycle, Steps int64

	Commits, FallbackCommits uint64
	// Aborts is indexed by htm.AbortReason.
	Aborts [8]uint64

	TLBMisses, PageTransitions uint64
	L1Hits, L1Misses, BusOps   uint64
}

// TotalAborts sums the per-reason abort counters.
func (s CounterSample) TotalAborts() uint64 {
	var n uint64
	for _, v := range s.Aborts {
		n += v
	}
	return n
}

// Tracer receives the simulator's observability events. Implementations
// must not retain argument memory beyond the call (the machine reuses
// internal buffers); TxAttempt.Overflow.Top is freshly allocated per event
// and safe to keep.
type Tracer interface {
	// TxBegin opens a transaction-attempt span on a context.
	TxBegin(ctx, tid int, cycle int64, fallback bool)
	// TxEnd closes the context's open span with its full annotation.
	TxEnd(a TxAttempt)
	// Instant reports a point event; arg's meaning depends on kind.
	Instant(ctx int, cycle int64, kind EventKind, arg uint64)
	// Sample reports a periodic counter snapshot.
	Sample(s CounterSample)
}

// multi fans events out to several sinks in order.
type multi []Tracer

// Multi combines tracers into one; nil entries are dropped. It returns nil
// when nothing remains (keeping the disabled fast path) and the tracer
// itself when only one remains.
func Multi(ts ...Tracer) Tracer {
	var live multi
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

func (m multi) TxBegin(ctx, tid int, cycle int64, fallback bool) {
	for _, t := range m {
		t.TxBegin(ctx, tid, cycle, fallback)
	}
}

func (m multi) TxEnd(a TxAttempt) {
	for _, t := range m {
		t.TxEnd(a)
	}
}

func (m multi) Instant(ctx int, cycle int64, kind EventKind, arg uint64) {
	for _, t := range m {
		t.Instant(ctx, cycle, kind, arg)
	}
}

func (m multi) Sample(s CounterSample) {
	for _, t := range m {
		t.Sample(s)
	}
}
