package obs

// names.go is the single registry of metric families the hintm binaries
// export. Every instrumentation site references these constants instead of
// ad-hoc strings, Render uses the declarations to emit `# HELP`/`# TYPE`
// exposition headers, and a test asserts `/metrics` output contains only
// declared families — so a typo in a metric name is a test failure, not a
// silently forked time series.

// MetricType is the Prometheus exposition type of a metric family.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// MetricDef declares one metric family: its exposition name, type, and
// HELP text.
type MetricDef struct {
	Name string
	Type MetricType
	Help string
}

// Declared metric family names. Grouped by owning subsystem.
const (
	// Scheduler (internal/harness).
	MetricSimRuns      = "runner_sim_runs_total"
	MetricInflight     = "runner_inflight"
	MetricPrefixRuns   = "runner_prefix_runs_total"
	MetricPrefixForked = "runner_prefix_forked_total"

	// Content-addressed result store (internal/store, internal/harness).
	MetricStorePuts        = "store_puts_total"
	MetricStorePutErrors   = "store_put_errors_total"
	MetricStoreReplicas    = "store_replicas_total"
	MetricStoreHits        = "store_hits_total"
	MetricStoreMisses      = "store_misses_total"
	MetricStoreQuarantined = "store_quarantined_total"
	MetricStoreEntries     = "store_entries"

	// Serving layer (internal/server).
	MetricServeRequests   = "serve_requests_total"
	MetricServeThrottled  = "serve_throttled_total"
	MetricServeQueueDepth = "serve_queue_depth"
	MetricServeActive     = "serve_active"
	MetricServeRequestSec = "serve_request_seconds"
	MetricServePhaseSec   = "serve_phase_seconds"

	// Fleet: peer fetch, hedging, breakers, replication, anti-entropy.
	MetricProbes           = "fleet_probe_total"
	MetricPeerFetches      = "fleet_peer_fetch_total"
	MetricPeerErrors       = "fleet_peer_errors_total"
	MetricPeerHits         = "fleet_peer_hits_total"
	MetricPeerInvalid      = "fleet_peer_invalid_total"
	MetricHedges           = "fleet_hedge_total"
	MetricHedgeWins        = "fleet_hedge_wins_total"
	MetricBreakerSkipped   = "fleet_breaker_skipped_total"
	MetricBreakerHalfOpen  = "fleet_breaker_halfopen_total"
	MetricBreakerClosed    = "fleet_breaker_closed_total"
	MetricBreakerOpened    = "fleet_breaker_opened_total"
	MetricBreakerOpen      = "fleet_breaker_open"
	MetricServedForPeer    = "fleet_served_for_peer_total"
	MetricReplicatedIn     = "fleet_replicated_in_total"
	MetricForwards         = "fleet_forward_total"
	MetricForwardErrors    = "fleet_forward_errors_total"
	MetricReplDropped      = "fleet_repl_dropped_total"
	MetricReplQueueDepth   = "fleet_repl_queue_depth"
	MetricReplRetries      = "fleet_repl_retries_total"
	MetricReplSkipped      = "fleet_repl_skipped_total"
	MetricAntiEntropySweep = "fleet_antientropy_sweeps_total"
	MetricRepairKeys       = "fleet_repair_keys_total"

	// Fleet tracing (internal/obs FleetRecorder).
	MetricTraceRoots   = "trace_roots_total"
	MetricTraceSpans   = "trace_spans_total"
	MetricTraceEvicted = "trace_evicted_total"

	// Chaos proxy (internal/chaos).
	MetricChaosRequests  = "chaos_requests_total"
	MetricChaosForwarded = "chaos_forwarded_total"
	MetricChaosInjected  = "chaos_injected_total"
	MetricChaosBytes     = "chaos_proxied_bytes_total"
)

// defs is every declared family. Keep sorted by name within each group so
// diffs stay readable; Render sorts again before writing.
var defs = []MetricDef{
	{MetricSimRuns, TypeCounter, "Simulations actually executed (cold paths only; warm paths never increment this)."},
	{MetricInflight, TypeGauge, "Simulations currently executing on the scheduler's worker pool."},
	{MetricPrefixRuns, TypeCounter, "Shared warm-up prefixes simulated once on behalf of a sibling group."},
	{MetricPrefixForked, TypeCounter, "Simulations resumed from a forked prefix snapshot instead of running cold."},

	{MetricStorePuts, TypeCounter, "Results persisted into the content-addressed store."},
	{MetricStorePutErrors, TypeCounter, "Failed store writes (result still served from memory)."},
	{MetricStoreReplicas, TypeCounter, "Raw peer objects persisted verbatim after content-address validation."},
	{MetricStoreHits, TypeCounter, "Store lookups answered from a persisted entry."},
	{MetricStoreMisses, TypeCounter, "Store lookups that found no (valid) entry."},
	{MetricStoreQuarantined, TypeCounter, "Corrupt store entries moved aside during lookup or index rebuild."},
	{MetricStoreEntries, TypeGauge, "Entries currently in the store index."},

	{MetricServeRequests, TypeCounter, "HTTP API requests accepted (all endpoints)."},
	{MetricServeThrottled, TypeCounter, "Submissions refused with 429 by bounded admission."},
	{MetricServeQueueDepth, TypeGauge, "Admitted-but-unfinished runs."},
	{MetricServeActive, TypeGauge, "Requests currently inside a handler."},
	{MetricServeRequestSec, TypeHistogram, "End-to-end resolve latency by node and outcome (hit-store, hit-peer, sim, error)."},
	{MetricServePhaseSec, TypeHistogram, "Per-phase serve latency by node, phase (admission/store/peer/hedge/sim/replication), and outcome."},

	{MetricProbes, TypeCounter, "Health probes sent to open-breaker peers."},
	{MetricPeerFetches, TypeCounter, "Peer fetch attempts launched on cold misses."},
	{MetricPeerErrors, TypeCounter, "Peer fetches that failed (status, transport, or decode)."},
	{MetricPeerHits, TypeCounter, "Cold misses answered by a ring owner's store."},
	{MetricPeerInvalid, TypeCounter, "Peer payloads rejected by content-address validation."},
	{MetricHedges, TypeCounter, "Hedged second fetches fired after the p99 delay."},
	{MetricHedgeWins, TypeCounter, "Hedged fetches that answered before the primary."},
	{MetricBreakerSkipped, TypeCounter, "Peer fetch candidates skipped because their breaker was open."},
	{MetricBreakerHalfOpen, TypeCounter, "Breaker transitions open->half-open (probe admitted)."},
	{MetricBreakerClosed, TypeCounter, "Breaker transitions half-open->closed (probe succeeded)."},
	{MetricBreakerOpened, TypeCounter, "Breaker transitions closed->open (failure threshold reached)."},
	{MetricBreakerOpen, TypeGauge, "Peer circuit breakers currently open."},
	{MetricServedForPeer, TypeCounter, "Local-only lookups served to fleet peers (?local=1)."},
	{MetricReplicatedIn, TypeCounter, "Replication PUTs accepted from peers."},
	{MetricForwards, TypeCounter, "Replication pushes attempted to ring owners."},
	{MetricForwardErrors, TypeCounter, "Replication pushes that exhausted their retries."},
	{MetricReplDropped, TypeCounter, "Replication queue overflows (oldest item dropped)."},
	{MetricReplQueueDepth, TypeGauge, "Replication items queued or being pushed."},
	{MetricReplRetries, TypeCounter, "Replication push retries after a failed attempt."},
	{MetricReplSkipped, TypeCounter, "Replication pushes skipped because the target's breaker was open."},
	{MetricAntiEntropySweep, TypeCounter, "Anti-entropy sweeps completed."},
	{MetricRepairKeys, TypeCounter, "Keys queued for repair by anti-entropy sweeps."},

	{MetricTraceRoots, TypeCounter, "Request traces rooted on this node."},
	{MetricTraceSpans, TypeCounter, "Spans recorded across all traces."},
	{MetricTraceEvicted, TypeCounter, "Traces evicted by the recorder's capacity bound."},

	{MetricChaosRequests, TypeCounter, "Requests received by the chaos proxy."},
	{MetricChaosForwarded, TypeCounter, "Requests the proxy forwarded to the target untouched."},
	{MetricChaosInjected, TypeCounter, "Faults injected, labeled by behavior (killed, blackholed, flaked, delayed, corrupted, slow-loris)."},
	{MetricChaosBytes, TypeCounter, "Response bytes proxied to clients (including corrupted and truncated bodies)."},
}

// Lookup returns the declaration for a metric family name.
func Lookup(name string) (MetricDef, bool) {
	d, ok := declared[name]
	return d, ok
}

// Declared returns every declared metric family, sorted by name.
func Declared() []MetricDef {
	out := make([]MetricDef, len(defs))
	copy(out, defs)
	return out
}

var declared = func() map[string]MetricDef {
	m := make(map[string]MetricDef, len(defs))
	for _, d := range defs {
		if _, dup := m[d.Name]; dup {
			panic("obs: duplicate metric declaration " + d.Name)
		}
		m[d.Name] = d
	}
	return m
}()
