package obs

import (
	"fmt"
	"io"
	"sort"

	"hintm/internal/htm"
	"hintm/internal/stats"
)

// Instant is one retained point event.
type Instant struct {
	Ctx   int
	Cycle int64
	Kind  EventKind
	Arg   uint64
}

// Collector retains the event stream in memory. It powers the abort-autopsy
// report and gives tests structured access to everything the machine
// emitted.
type Collector struct {
	Attempts []TxAttempt
	Instants []Instant
	Samples  []CounterSample

	instCount [numEventKinds]uint64
}

var _ Tracer = (*Collector)(nil)

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// TxBegin implements Tracer (spans are recorded complete, at TxEnd).
func (c *Collector) TxBegin(ctx, tid int, cycle int64, fallback bool) {}

// TxEnd implements Tracer.
func (c *Collector) TxEnd(a TxAttempt) { c.Attempts = append(c.Attempts, a) }

// Instant implements Tracer.
func (c *Collector) Instant(ctx int, cycle int64, kind EventKind, arg uint64) {
	c.Instants = append(c.Instants, Instant{Ctx: ctx, Cycle: cycle, Kind: kind, Arg: arg})
	if int(kind) < len(c.instCount) {
		c.instCount[kind]++
	}
}

// Sample implements Tracer.
func (c *Collector) Sample(s CounterSample) { c.Samples = append(c.Samples, s) }

// InstantCount reports how many instants of one kind were seen.
func (c *Collector) InstantCount(kind EventKind) uint64 {
	if int(kind) >= len(c.instCount) {
		return 0
	}
	return c.instCount[kind]
}

// Autopsy is the per-run abort post-mortem: every abort span grouped by
// reason, and for each capacity abort the footprint breakdown the paper's
// argument is built on — tracked vs. hint-skipped blocks, which structure
// overflowed, and the top offending addresses.
type Autopsy struct {
	// Attempts/Commits/FallbackCommits/Aborts summarize the span stream.
	Attempts, Commits, FallbackCommits, Aborts int
	// CyclesLost sums abort-span durations by reason.
	AbortsByReason map[htm.AbortReason]int
	CyclesLost     map[htm.AbortReason]int64
	// Capacity holds one entry per capacity abort, in emission order.
	Capacity []TxAttempt
	// ByStructure counts capacity aborts per overflowed structure.
	ByStructure map[string]int
	// TopBlocks aggregates the offending footprint across every capacity
	// abort: access count and the number of aborts each block appeared in.
	TopBlocks []AggBlock
}

// AggBlock is one row of the aggregated capacity-abort footprint.
type AggBlock struct {
	Block   uint64
	Touches int
	Aborts  int
}

// Autopsy reduces the collected spans into the abort post-mortem.
func (c *Collector) Autopsy() *Autopsy {
	a := &Autopsy{
		AbortsByReason: make(map[htm.AbortReason]int),
		CyclesLost:     make(map[htm.AbortReason]int64),
		ByStructure:    make(map[string]int),
	}
	agg := make(map[uint64]*AggBlock)
	for _, at := range c.Attempts {
		a.Attempts++
		switch at.Outcome {
		case OutcomeCommit:
			a.Commits++
		case OutcomeFallbackCommit:
			a.FallbackCommits++
		case OutcomeAbort:
			a.Aborts++
			a.AbortsByReason[at.Reason]++
			a.CyclesLost[at.Reason] += at.Duration()
			if at.Reason == htm.AbortCapacity {
				a.Capacity = append(a.Capacity, at)
				if ov := at.Overflow; ov != nil {
					a.ByStructure[ov.Structure]++
					for _, bc := range ov.Top {
						row := agg[bc.Block]
						if row == nil {
							row = &AggBlock{Block: bc.Block}
							agg[bc.Block] = row
						}
						row.Touches += bc.Count
						row.Aborts++
					}
				}
			}
		}
	}
	for _, row := range agg {
		a.TopBlocks = append(a.TopBlocks, *row)
	}
	sort.Slice(a.TopBlocks, func(i, j int) bool {
		if a.TopBlocks[i].Touches != a.TopBlocks[j].Touches {
			return a.TopBlocks[i].Touches > a.TopBlocks[j].Touches
		}
		return a.TopBlocks[i].Block < a.TopBlocks[j].Block
	})
	return a
}

// Render writes the human-readable autopsy report.
func (a *Autopsy) Render(w io.Writer) {
	fmt.Fprintf(w, "abort autopsy: %d attempts, %d commits, %d fallback commits, %d aborts\n",
		a.Attempts, a.Commits, a.FallbackCommits, a.Aborts)
	if a.Aborts > 0 {
		t := stats.NewTable("reason", "aborts", "cycles lost")
		for _, r := range htm.AbortReasons {
			if n := a.AbortsByReason[r]; n > 0 {
				t.Row(r.String(), n, a.CyclesLost[r])
			}
		}
		t.Render(w)
	}
	if len(a.Capacity) == 0 {
		fmt.Fprintf(w, "no capacity aborts to attribute\n")
		return
	}

	fmt.Fprintf(w, "\ncapacity aborts: %d, by structure:", len(a.Capacity))
	for _, s := range sortedKeys(a.ByStructure) {
		fmt.Fprintf(w, " %s=%d", s, a.ByStructure[s])
	}
	fmt.Fprintln(w)
	t := stats.NewTable("#", "ctx", "thread", "cycles", "structure", "tracked", "rd/wr", "hint-skipped", "top blocks")
	for i, at := range a.Capacity {
		structure, top := "?", ""
		tracked, skipped := at.Tracked, at.SafeSkipped
		if ov := at.Overflow; ov != nil {
			structure = ov.Structure
			tracked, skipped = ov.Tracked, ov.Skipped
			top = formatTop(ov.Top, 4)
		}
		t.Row(i, at.Ctx, at.TID,
			fmt.Sprintf("%d..%d", at.Start, at.End),
			structure, tracked,
			fmt.Sprintf("%d/%d", at.ReadSet, at.WriteSet),
			skipped, top)
	}
	t.Render(w)

	if len(a.TopBlocks) > 0 {
		fmt.Fprintf(w, "\ntop offending blocks across all capacity aborts:\n")
		t := stats.NewTable("address", "touches", "aborts")
		for i, row := range a.TopBlocks {
			if i >= 10 {
				break
			}
			t.Row(fmt.Sprintf("0x%x", row.Block*blockSize), row.Touches, row.Aborts)
		}
		t.Render(w)
	}
}

// formatTop renders up to n of an attempt's top blocks as "addr×count".
func formatTop(top []BlockCount, n int) string {
	s := ""
	for i, bc := range top {
		if i >= n {
			s += fmt.Sprintf(" +%d more", len(top)-n)
			break
		}
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("0x%x×%d", bc.Block*blockSize, bc.Count)
	}
	return s
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
