package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

const testKey = "d1f2e3a4b5c60718293a4b5c6d7e8f90d1f2e3a4b5c60718293a4b5c6d7e8f90"

func TestTraceIDAndContextRoundTrip(t *testing.T) {
	if got := TraceID(testKey); got != testKey[:16] {
		t.Errorf("TraceID = %q", got)
	}
	if got := TraceID("ab"); got != "ab" {
		t.Errorf("short TraceID = %q", got)
	}
	sc := SpanContext{Trace: "abcd", Root: "n1#2", ParentNode: "n1", Parent: 3, Hop: 1}
	back, ok := ParseSpanContext(sc.String())
	if !ok || back != sc {
		t.Fatalf("round trip: %+v -> %q -> %+v (ok=%v)", sc, sc.String(), back, ok)
	}
	if (SpanContext{}).String() != "" {
		t.Error("zero context must serialize empty")
	}
	for _, bad := range []string{"", "a|b", "a|b|c|x|1", "a|b|c|1|99", "|r|n|1|1", "t||n|1|1"} {
		if _, ok := ParseSpanContext(bad); ok {
			t.Errorf("ParseSpanContext(%q) accepted", bad)
		}
	}
}

func TestRecorderRootsJoinsAndAssembly(t *testing.T) {
	a := NewFleetRecorder("http://a", 0, nil)
	b := NewFleetRecorder("http://b", 0, nil)

	tr := a.Root(testKey)
	root := tr.Start(0, SpanRequest)
	get := tr.Start(root, SpanStoreGet)
	tr.End(get, "miss", nil)
	pf := tr.StartPeer(root, SpanPeerFetch, "http://b")

	// The wire hop: b joins with the propagated context.
	sc, ok := ParseSpanContext(tr.Context(pf).String())
	if !ok {
		t.Fatal("context did not round-trip")
	}
	rtr := b.Join(sc)
	serve := rtr.StartFrom(sc, SpanPeerServe)
	rtr.End(serve, "miss", nil)
	tr.End(pf, "miss", nil)
	tr.End(root, "sim", errors.New("boom"))

	rootID, ok := a.LatestRoot(TraceID(testKey))
	if !ok || rootID != "http://a#1" {
		t.Fatalf("LatestRoot = %q, %v", rootID, ok)
	}
	local, ok := a.Spans(TraceID(testKey), rootID)
	if !ok || len(local) != 3 {
		t.Fatalf("local spans: %v, ok=%v", local, ok)
	}
	remote, ok := b.Spans(TraceID(testKey), rootID)
	if !ok || len(remote) != 1 {
		t.Fatalf("remote spans: %v, ok=%v", remote, ok)
	}
	rs := remote[0]
	if rs.Hop != 1 || rs.ParentNode != "http://a" || rs.Parent != pf || rs.Node != "http://b" {
		t.Errorf("remote span linkage: %+v", rs)
	}
	if local[0].Err != "boom" || local[0].Detail != "sim" {
		t.Errorf("root outcome not recorded: %+v", local[0])
	}

	// Re-rooting the same key mints the next epoch and becomes latest.
	a.Root(testKey)
	if rootID, _ := a.LatestRoot(TraceID(testKey)); rootID != "http://a#2" {
		t.Errorf("second root = %q, want http://a#2", rootID)
	}
}

func TestRecorderEvictionAndEpochGC(t *testing.T) {
	m := NewMetrics()
	r := NewFleetRecorder("n", 2, m)
	k1 := "1111111111111111aa"
	k2 := "2222222222222222aa"
	k3 := "3333333333333333aa"
	t1 := r.Root(k1)
	t1.Start(0, SpanRequest)
	r.Root(k2)
	r.Root(k3) // evicts k1's root
	if _, ok := r.Spans(TraceID(k1), t1.Root()); ok {
		t.Error("oldest root not evicted at capacity")
	}
	if got := m.Value(MetricTraceEvicted); got != 1 {
		t.Errorf("evicted counter = %d, want 1", got)
	}
	if got := m.Value(MetricTraceRoots); got != 3 {
		t.Errorf("roots counter = %d, want 3", got)
	}
	// k1 has no live roots left, so its epoch counter was forgotten:
	// re-rooting restarts at epoch 1 (bounded memory, still deterministic
	// for identical runs).
	if tr := r.Root(k1); tr.Root() != "n#1" {
		t.Errorf("post-GC re-root = %q, want n#1", tr.Root())
	}
}

func TestRecorderSpanCapAndAdd(t *testing.T) {
	r := NewFleetRecorder("n", 0, nil)
	tr := r.Root(testKey)
	root := tr.Start(0, SpanRequest)
	id := tr.Add(root, SpanAdmission, "", 5*time.Millisecond)
	if id == 0 {
		t.Fatal("Add returned 0")
	}
	spans, _ := r.Spans(TraceID(testKey), tr.Root())
	adm := spans[id-1]
	if adm.DurUs != 5000 || adm.StartUs < 0 {
		t.Errorf("Add span: %+v", adm)
	}
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tr.Start(root, SpanStoreGet)
	}
	spans, _ = r.Spans(TraceID(testKey), tr.Root())
	if len(spans) != maxSpansPerTrace {
		t.Errorf("span cap: %d spans, want %d", len(spans), maxSpansPerTrace)
	}
	tr.End(0, "x", nil) // id 0 ignored, no panic
}

// TestNilRecorderZeroAllocs is the acceptance pin: the disabled tracing
// path — every call the serve hot path makes — performs zero allocations.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *FleetRecorder
	allocs := testing.AllocsPerRun(1000, func() {
		tr := r.Root(testKey)
		root := tr.Start(0, SpanRequest)
		id := tr.Add(root, SpanAdmission, "", time.Millisecond)
		id = tr.Start(root, SpanStoreGet)
		tr.End(id, "miss", nil)
		id = tr.StartPeer(root, SpanPeerFetch, "http://peer")
		sc := tr.Context(id)
		if h := sc.String(); h != "" {
			t.Fatal("nil context not empty")
		}
		tr.End(id, "miss", nil)
		id = tr.Start(root, SpanSimulate)
		tr.End(id, "", nil)
		tr.End(root, "sim", nil)
		jt := r.Join(SpanContext{Trace: "t", Root: "r", Hop: 1})
		id = jt.StartFrom(SpanContext{}, SpanPeerServe)
		jt.End(id, "", nil)
		if _, ok := r.LatestRoot("t"); ok {
			t.Fatal("nil recorder has roots")
		}
	})
	if allocs != 0 {
		t.Errorf("nil-recorder span path allocates %v/op, want 0", allocs)
	}
}

func TestBreakdownAttribution(t *testing.T) {
	spans := []Span{
		{Node: "a", ID: 1, Hop: 0, Kind: SpanRequest, StartUs: 0, DurUs: 1000, Detail: "sim"},
		{Node: "a", ID: 2, Parent: 1, Hop: 0, Kind: SpanAdmission, StartUs: 0, DurUs: 10},
		{Node: "a", ID: 3, Parent: 1, Hop: 0, Kind: SpanStoreGet, StartUs: 10, DurUs: 10, Detail: "miss"},
		{Node: "a", ID: 4, Parent: 1, Hop: 0, Kind: SpanPeerFetch, StartUs: 20, DurUs: 180, Detail: "miss", Peer: "b"},
		{Node: "a", ID: 5, Parent: 1, Hop: 0, Kind: SpanPeerFetch, StartUs: 30, DurUs: 160, Detail: "hedge-miss", Peer: "c"},
		{Node: "a", ID: 6, Parent: 1, Hop: 0, Kind: SpanSimulate, StartUs: 200, DurUs: 790},
		{Node: "a", ID: 7, Parent: 1, Hop: 0, Kind: SpanReplEnqueue, StartUs: 990, DurUs: 10},
		{Node: "b", ID: 1, Parent: 4, ParentNode: "a", Hop: 1, Kind: SpanPeerServe, StartUs: 0, DurUs: 50, Detail: "miss"},
	}
	b := Breakdown(spans)
	if b.TotalUs != 1000 {
		t.Fatalf("total = %d", b.TotalUs)
	}
	if b.CoveredUs != 1000 {
		t.Errorf("covered = %d, want 1000 (coverage %v)", b.CoveredUs, b.Coverage())
	}
	if b.Coverage() < 0.999 {
		t.Errorf("coverage = %v", b.Coverage())
	}
	want := map[string]int64{"admission": 10, "store": 10, "peer": 180 + 50, "hedge": 160, "sim": 790, "replication": 10}
	for phase, dur := range want {
		if b.Phases[phase] != dur {
			t.Errorf("phase %s = %d, want %d", phase, b.Phases[phase], dur)
		}
	}
	if b.Remote != 1 {
		t.Errorf("remote = %d, want 1", b.Remote)
	}
}

func TestCanonicalDocDeterministic(t *testing.T) {
	mk := func(startA, durA int64) *TraceDoc {
		return &TraceDoc{
			Schema: TraceSchema, Trace: "abcd", Root: "a#1", Key: testKey,
			Spans: []Span{
				{Node: "b", ID: 1, Hop: 1, Kind: SpanPeerServe, StartUs: startA, DurUs: durA},
				{Node: "a", ID: 2, Hop: 0, Kind: SpanStoreGet, StartUs: startA * 2, DurUs: durA},
				{Node: "a", ID: 1, Hop: 0, Kind: SpanRequest, StartUs: startA, DurUs: durA * 3},
			},
		}
	}
	a, _ := json.Marshal(mk(17, 23).Canonical())
	b, _ := json.Marshal(mk(400, 9000).Canonical())
	if !bytes.Equal(a, b) {
		t.Errorf("canonical docs differ:\n%s\n%s", a, b)
	}
	c := mk(1, 2).Canonical()
	if c.Spans[0].Kind != SpanRequest || c.Spans[2].Hop != 1 {
		t.Errorf("canonical sort order wrong: %+v", c.Spans)
	}
}

func TestChromeSpanEventsValid(t *testing.T) {
	spans := []Span{
		{Node: "a", ID: 1, Hop: 0, Kind: SpanRequest, DurUs: 100},
		{Node: "a", ID: 2, Hop: 0, Kind: SpanReplPush, Peer: "b", StartUs: 90, DurUs: 40},
		{Node: "b", ID: 1, Hop: 1, Kind: SpanReplRecv, DurUs: 5},
	}
	evs := ChromeSpanEvents(spans, 10)
	doc, err := json.Marshal(map[string]any{"displayTimeUnit": "ns", "traceEvents": evs})
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("merged doc does not parse: %v", err)
	}
	if len(parsed.TraceEvents) != 5 { // 2 process metadata + 3 spans
		t.Fatalf("events = %d, want 5", len(parsed.TraceEvents))
	}
	for _, ev := range parsed.TraceEvents {
		if ev["ph"] == "" || ev["name"] == "" {
			t.Errorf("event missing ph/name: %v", ev)
		}
	}
	// The async replication span must live on its own track so X events nest.
	for _, ev := range parsed.TraceEvents {
		if ev["ph"] == "X" && ev["pid"] == 10.0 {
			name := ev["name"].(string)
			if name == SpanReplPush && ev["tid"] != 2.0 {
				t.Errorf("repl.push on tid %v, want 2", ev["tid"])
			}
			if name == SpanRequest && ev["tid"] != 1.0 {
				t.Errorf("request on tid %v, want 1", ev["tid"])
			}
		}
	}
}
