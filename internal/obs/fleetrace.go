package obs

import (
	"strconv"
	"sync"
	"time"
)

// FleetRecorder keeps the spans of recent request traces in memory, one
// bounded buffer per root execution. It is the fleet-side analogue of the
// simulator's Tracer and follows the same enable/disable idiom: a nil
// *FleetRecorder (and the nil *ActiveTrace handles it returns) makes
// every recording call a branch-and-return no-op with zero allocations,
// so the serve hot path pays nothing when tracing is off.
//
// Identity is deterministic. The trace id is TraceID(storeKey). Each
// execution that roots a trace on a node gets the root id
// "node#epoch" where epoch is that node's per-trace counter — so a cold
// run and a later warm run of the same key are distinct roots, and two
// identical seeded fleet runs mint identical root ids. Span ids are
// 1-based recording ordinals within one node's buffer.
type FleetRecorder struct {
	node    string
	cap     int
	metrics *Metrics

	mu     sync.Mutex
	roots  map[bufKey]*traceBuf
	order  []bufKey          // insertion order, for FIFO eviction
	latest map[string]string // trace id -> most recent local root id
	epochs map[string]uint64 // trace id -> next root epoch
	live   map[string]int    // trace id -> live roots (epoch GC)
}

// bufKey identifies one root execution's buffer. Root ids ("node#epoch")
// repeat across traces, so buffers are keyed by the pair.
type bufKey struct {
	trace, root string
}

// maxSpansPerTrace bounds one buffer; pathological traces stop recording
// rather than growing without bound.
const maxSpansPerTrace = 1024

// defaultTraceCapacity is how many root executions a recorder retains
// when the capacity knob is left at zero.
const defaultTraceCapacity = 512

// NewFleetRecorder returns a recorder for the named node retaining up to
// capacity root executions (0 = default 512, FIFO eviction beyond it).
// Metrics may be nil.
func NewFleetRecorder(node string, capacity int, m *Metrics) *FleetRecorder {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	return &FleetRecorder{
		node:    node,
		cap:     capacity,
		metrics: m,
		roots:   make(map[bufKey]*traceBuf),
		latest:  make(map[string]string),
		epochs:  make(map[string]uint64),
		live:    make(map[string]int),
	}
}

// Node returns the recorder's node name ("" on nil).
func (r *FleetRecorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

type traceBuf struct {
	trace string
	root  string
	node  string
	hop   int
	local bool // rooted here (counts toward the per-trace live count)
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// Root begins a new locally rooted trace for a store key and returns its
// recording handle. Nil recorder -> nil handle (whose methods no-op).
func (r *FleetRecorder) Root(key string) *ActiveTrace {
	if r == nil {
		return nil
	}
	trace := TraceID(key)
	r.mu.Lock()
	r.epochs[trace]++
	root := r.node + "#" + strconv.FormatUint(r.epochs[trace], 10)
	buf := &traceBuf{trace: trace, root: root, node: r.node, local: true, start: time.Now()}
	r.insert(bufKey{trace, root}, buf)
	r.latest[trace] = root
	r.live[trace]++
	r.mu.Unlock()
	r.metrics.Counter(MetricTraceRoots).Inc()
	return &ActiveTrace{rec: r, buf: buf}
}

// Join returns the recording handle for a remotely rooted trace (creating
// this node's buffer for it on first join). Contexts that are empty or
// too many hops deep return the nil no-op handle.
func (r *FleetRecorder) Join(sc SpanContext) *ActiveTrace {
	if r == nil || sc.Trace == "" || sc.Root == "" || sc.Hop > MaxHops {
		return nil
	}
	r.mu.Lock()
	k := bufKey{sc.Trace, sc.Root}
	buf, ok := r.roots[k]
	if !ok {
		buf = &traceBuf{trace: sc.Trace, root: sc.Root, node: r.node, hop: sc.Hop, start: time.Now()}
		r.insert(k, buf)
	}
	r.mu.Unlock()
	return &ActiveTrace{rec: r, buf: buf}
}

// insert adds a buffer under r.mu, evicting the oldest beyond capacity.
func (r *FleetRecorder) insert(k bufKey, buf *traceBuf) {
	if _, ok := r.roots[k]; ok {
		return
	}
	evicted := 0
	for len(r.roots) >= r.cap && len(r.order) > 0 {
		victim := r.order[0]
		r.order = r.order[1:]
		vb, ok := r.roots[victim]
		if !ok {
			continue
		}
		delete(r.roots, victim)
		if vb.local {
			if r.latest[vb.trace] == victim.root {
				delete(r.latest, vb.trace)
			}
			if r.live[vb.trace] > 0 {
				r.live[vb.trace]--
			}
			if r.live[vb.trace] == 0 {
				// No live local roots left: forget the epoch counter too,
				// so the recorder's memory stays bounded by its capacity.
				delete(r.live, vb.trace)
				delete(r.epochs, vb.trace)
			}
		}
		evicted++
	}
	r.roots[k] = buf
	r.order = append(r.order, k)
	r.metrics.Counter(MetricTraceEvicted).Add(int64(evicted))
}

// LatestRoot returns the most recent locally rooted execution id for a
// trace, if any.
func (r *FleetRecorder) LatestRoot(trace string) (string, bool) {
	if r == nil {
		return "", false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	root, ok := r.latest[trace]
	return root, ok
}

// Spans copies this node's recorded spans for one root execution of a
// trace, in id order. ok is false when the root is unknown here.
func (r *FleetRecorder) Spans(trace, root string) ([]Span, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	buf, ok := r.roots[bufKey{trace, root}]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	buf.mu.Lock()
	out := make([]Span, len(buf.spans))
	copy(out, buf.spans)
	buf.mu.Unlock()
	return out, true
}

// ActiveTrace is the per-execution recording handle. The nil handle (from
// a nil recorder or a refused Join) no-ops every method and allocates
// nothing; span ids it returns are 0, which End ignores.
type ActiveTrace struct {
	rec *FleetRecorder
	buf *traceBuf
}

// Root returns the root execution id ("" on the nil handle).
func (t *ActiveTrace) Root() string {
	if t == nil {
		return ""
	}
	return t.buf.root
}

// Start opens a span under the local parent id (0 = no parent) and
// returns its id.
func (t *ActiveTrace) Start(parent int, kind string) int {
	return t.start(parent, "", kind, "")
}

// StartPeer opens a span for an interaction with a named peer.
func (t *ActiveTrace) StartPeer(parent int, kind, peer string) int {
	return t.start(parent, "", kind, peer)
}

// StartFrom opens a span whose parent lives on the remote node named by
// the wire context — the receiving half of a propagated trace.
func (t *ActiveTrace) StartFrom(sc SpanContext, kind string) int {
	return t.start(sc.Parent, sc.ParentNode, kind, "")
}

func (t *ActiveTrace) start(parent int, parentNode, kind, peer string) int {
	if t == nil {
		return 0
	}
	b := t.buf
	now := time.Since(b.start).Microseconds()
	b.mu.Lock()
	if len(b.spans) >= maxSpansPerTrace {
		b.mu.Unlock()
		return 0
	}
	id := len(b.spans) + 1
	b.spans = append(b.spans, Span{
		Node:       b.node,
		ID:         id,
		Parent:     parent,
		ParentNode: parentNode,
		Hop:        b.hop,
		Kind:       kind,
		Peer:       peer,
		StartUs:    now,
	})
	b.mu.Unlock()
	t.rec.metrics.Counter(MetricTraceSpans).Inc()
	return id
}

// End closes a span, recording its outcome detail and error (if any).
// id 0 — from a nil handle or a full buffer — is ignored.
func (t *ActiveTrace) End(id int, detail string, err error) {
	if t == nil || id <= 0 {
		return
	}
	b := t.buf
	now := time.Since(b.start).Microseconds()
	b.mu.Lock()
	if id <= len(b.spans) {
		s := &b.spans[id-1]
		s.DurUs = now - s.StartUs
		s.Detail = detail
		if err != nil {
			s.Err = err.Error()
		}
	}
	b.mu.Unlock()
}

// Add records an already-completed span of the given duration ending now —
// for work measured before the trace existed, like the admission wait that
// precedes resolve. Starts clamp into the trace window.
func (t *ActiveTrace) Add(parent int, kind, detail string, dur time.Duration) int {
	if t == nil {
		return 0
	}
	id := t.start(parent, "", kind, "")
	if id == 0 {
		return 0
	}
	b := t.buf
	b.mu.Lock()
	s := &b.spans[id-1]
	s.StartUs -= dur.Microseconds()
	if s.StartUs < 0 {
		s.StartUs = 0
	}
	s.DurUs = dur.Microseconds()
	s.Detail = detail
	b.mu.Unlock()
	return id
}

// Context mints the wire context a child call should carry, naming the
// given local span as parent. The nil handle yields the zero context
// (which serializes to "" — no header).
func (t *ActiveTrace) Context(parent int) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	b := t.buf
	return SpanContext{Trace: b.trace, Root: b.root, ParentNode: b.node, Parent: parent, Hop: b.hop + 1}
}
