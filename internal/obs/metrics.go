package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a tiny registry of named int64 counters, gauges, and latency
// histograms shared by the scheduler, the result store, and the serving
// layer. It exists so `hintm-served /metrics` has one deterministic place
// to read from: every component increments named metrics here, and Render
// writes Prometheus text exposition — `# HELP`/`# TYPE` headers from the
// declarations in names.go, series in sorted order, histogram buckets
// cumulative and ascending.
//
// Metrics may carry labels (L("node", "http://...")); the unlabeled form
// is the common case and renders as plain `name value` lines, so awk-style
// scrapers keep working. A nil *Metrics is the disabled registry: Counter
// and Histogram return nil handles whose methods are no-ops, so
// instrumentation sites need no branching.
type Metrics struct {
	mu    sync.Mutex
	vals  map[string]*Metric
	hists map[string]*histSeries
}

type histSeries struct {
	name   string // family name
	labels string // rendered label pairs without braces ("" when unlabeled)
	h      *Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{vals: make(map[string]*Metric), hists: make(map[string]*histSeries)}
}

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Metric is one named value. Use Inc/Add for counters and Set/Add for
// gauges; the registry does not distinguish the two beyond the declared
// type in names.go (`*_total` counters, bare-name gauges).
type Metric struct {
	v atomic.Int64
}

// Inc adds one.
func (m *Metric) Inc() { m.Add(1) }

// Add adds delta (negative deltas are how gauges shrink).
func (m *Metric) Add(delta int64) {
	if m == nil {
		return
	}
	m.v.Add(delta)
}

// Set stores an absolute value.
func (m *Metric) Set(v int64) {
	if m == nil {
		return
	}
	m.v.Store(v)
}

// Value reads the current value (0 on the nil no-op metric).
func (m *Metric) Value() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// Counter returns the named metric series, registering it on first use.
// Labels select a series within the family; no labels is the bare series.
// Safe for concurrent use; on a nil registry it returns the nil no-op
// metric.
func (m *Metrics) Counter(name string, labels ...Label) *Metric {
	if m == nil {
		return nil
	}
	id := seriesID(name, labels)
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.vals[id]
	if !ok {
		c = &Metric{}
		m.vals[id] = c
	}
	return c
}

// Histogram returns the named histogram series with the default latency
// bounds, registering it on first use. On a nil registry it returns the
// nil no-op histogram.
func (m *Metrics) Histogram(name string, labels ...Label) *Histogram {
	if m == nil {
		return nil
	}
	id := seriesID(name, labels)
	m.mu.Lock()
	defer m.mu.Unlock()
	hs, ok := m.hists[id]
	if !ok {
		hs = &histSeries{name: name, labels: renderLabels(labels), h: NewHistogram(DefLatencyBounds())}
		m.hists[id] = hs
	}
	return hs.h
}

// Value reads the named metric series without registering it. Labels must
// match the series exactly.
func (m *Metrics) Value(name string, labels ...Label) int64 {
	if m == nil {
		return 0
	}
	id := seriesID(name, labels)
	m.mu.Lock()
	c := m.vals[id]
	m.mu.Unlock()
	return c.Value()
}

// HistogramValue reads the named histogram series without registering it;
// the zero snapshot is returned for an unknown series.
func (m *Metrics) HistogramValue(name string, labels ...Label) HistSnapshot {
	if m == nil {
		return HistSnapshot{}
	}
	id := seriesID(name, labels)
	m.mu.Lock()
	hs := m.hists[id]
	m.mu.Unlock()
	if hs == nil {
		return HistSnapshot{}
	}
	return hs.h.Snapshot()
}

// Snapshot copies every counter/gauge series' current value, keyed by the
// exposition series id (`name` or `name{k="v",...}`).
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.vals))
	for id, c := range m.vals {
		out[id] = c.Value()
	}
	return out
}

// seriesID renders the exposition identity of a series: the family name,
// plus `{k="v",...}` with label keys sorted when labels are present.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + renderLabels(labels) + "}"
}

// renderLabels renders label pairs sorted by key, values escaped per the
// exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// familyOf extracts the family name from a series id.
func familyOf(id string) string {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i]
	}
	return id
}

// Render writes the registry in Prometheus text exposition format:
// families in sorted-name order, each with its declared `# HELP`/`# TYPE`
// header (undeclared families render as `untyped` — the hygiene test in
// names_test.go keeps the serving stack free of those), series within a
// family sorted by label set, histogram buckets cumulative with ascending
// `le` bounds plus `_sum` and `_count`. Deterministic for a deterministic
// sequence of updates, like every artifact this package produces.
func (m *Metrics) Render(w io.Writer) error {
	if m == nil {
		return nil
	}
	type family struct {
		lines []string      // counter/gauge series lines
		hists []*histSeries // histogram series (snapshot under lock below)
	}
	snaps := make(map[*histSeries]HistSnapshot)
	fams := make(map[string]*family)
	fam := func(name string) *family {
		f, ok := fams[name]
		if !ok {
			f = &family{}
			fams[name] = f
		}
		return f
	}
	m.mu.Lock()
	for id, c := range m.vals {
		f := fam(familyOf(id))
		f.lines = append(f.lines, fmt.Sprintf("%s %d", id, c.Value()))
	}
	for _, hs := range m.hists {
		f := fam(hs.name)
		f.hists = append(f.hists, hs)
		snaps[hs] = hs.h.Snapshot()
	}
	m.mu.Unlock()

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		def, ok := Lookup(name)
		if !ok {
			def = MetricDef{Name: name, Type: "untyped", Help: "(undeclared)"}
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, def.Help, name, def.Type); err != nil {
			return err
		}
		sort.Strings(f.lines)
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
		sort.Slice(f.hists, func(i, j int) bool { return f.hists[i].labels < f.hists[j].labels })
		for _, hs := range f.hists {
			if err := renderHist(w, hs, snaps[hs]); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderHist writes one histogram series: cumulative buckets in ascending
// le order, the +Inf bucket, then _sum and _count.
func renderHist(w io.Writer, hs *histSeries, s HistSnapshot) error {
	bucket := func(le string, cum uint64) error {
		labels := `le="` + le + `"`
		if hs.labels != "" {
			labels = hs.labels + "," + labels
		}
		_, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", hs.name, labels, cum)
		return err
	}
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Buckets[i]
		if err := bucket(formatFloat(bound), cum); err != nil {
			return err
		}
	}
	if err := bucket("+Inf", s.Count); err != nil {
		return err
	}
	suffix := ""
	if hs.labels != "" {
		suffix = "{" + hs.labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", hs.name, suffix, formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", hs.name, suffix, s.Count)
	return err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
