package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is a tiny registry of named int64 counters and gauges shared by
// the scheduler, the result store, and the serving layer. It exists so
// `hintm-served /metrics` has one deterministic place to read from: every
// component increments named metrics here, and Render writes them in
// sorted-name order (Prometheus text exposition format, counters only).
//
// A nil *Metrics is the disabled registry: Counter returns a nil *Metric
// whose methods are no-ops, so instrumentation sites need no branching.
type Metrics struct {
	mu   sync.Mutex
	vals map[string]*Metric
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{vals: make(map[string]*Metric)}
}

// Metric is one named value. Use Inc/Add for counters and Set/Add for
// gauges; the registry does not distinguish the two beyond naming
// convention (`*_total` counters, bare-name gauges).
type Metric struct {
	v atomic.Int64
}

// Inc adds one.
func (m *Metric) Inc() { m.Add(1) }

// Add adds delta (negative deltas are how gauges shrink).
func (m *Metric) Add(delta int64) {
	if m == nil {
		return
	}
	m.v.Add(delta)
}

// Set stores an absolute value.
func (m *Metric) Set(v int64) {
	if m == nil {
		return
	}
	m.v.Store(v)
}

// Value reads the current value (0 on the nil no-op metric).
func (m *Metric) Value() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// Counter returns the named metric, registering it on first use. Safe for
// concurrent use; on a nil registry it returns the nil no-op metric.
func (m *Metrics) Counter(name string) *Metric {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.vals[name]
	if !ok {
		c = &Metric{}
		m.vals[name] = c
	}
	return c
}

// Value reads the named metric without registering it.
func (m *Metrics) Value(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	c := m.vals[name]
	m.mu.Unlock()
	return c.Value()
}

// Snapshot copies every metric's current value.
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.vals))
	for name, c := range m.vals {
		out[name] = c.Value()
	}
	return out
}

// Render writes `name value` lines in sorted-name order — deterministic
// for a deterministic sequence of updates, like every artifact this
// package produces.
func (m *Metrics) Render(w io.Writer) error {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, snap[name]); err != nil {
			return err
		}
	}
	return nil
}
