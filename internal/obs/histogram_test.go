package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// Underflow lands in the first bucket; exact boundary values belong to
	// the bucket they bound (le semantics); overflow lands in +Inf.
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 4.0, 4.0001, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 2} // le=1: {0.5,1}, le=2: {1.5,2}, le=4: {4}, +Inf: {4.0001,100}
	if len(s.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(want))
	}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d (buckets %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if wantSum := 0.5 + 1 + 1.5 + 2 + 4 + 4.0001 + 100; math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(DefLatencyBounds())
	// Seeded xorshift values spread across several decades, including
	// under- and overflow.
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 5000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := float64(x%10_000_000) / 1e7 * 0.5 // [0, 0.5)s
		if i%97 == 0 {
			v = 1e-6 // underflow
		}
		if i%131 == 0 {
			v = 1e9 // overflow
		}
		h.Observe(v)
	}
	s := h.Snapshot()
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.005 {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("quantile not monotone: q=%v -> %v after %v", q, got, prev)
		}
		prev = got
	}
	bounds := DefLatencyBounds()
	if max := s.Quantile(1); max > bounds[len(bounds)-1] {
		t.Errorf("q=1 -> %v above largest bound %v", max, bounds[len(bounds)-1])
	}
	if s.Quantile(0) < 0 {
		t.Errorf("q=0 negative: %v", s.Quantile(0))
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	if got := (HistSnapshot{}).Quantile(0.99); got != 0 {
		t.Errorf("empty snapshot quantile = %v, want 0", got)
	}
	h := NewHistogram([]float64{1, 2})
	h.Observe(50) // everything in +Inf
	h.Observe(60)
	if got := h.Snapshot().Quantile(0.99); got != 2 {
		t.Errorf("+Inf-only quantile = %v, want clamp to last bound 2", got)
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Count() != 0 || nilH.Snapshot().Count != 0 {
		t.Error("nil histogram not empty")
	}
}

func TestHistogramSub(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	before := h.Snapshot()
	h.Observe(0.5)
	h.Observe(1.5)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 || d.Buckets[0] != 1 || d.Buckets[1] != 1 {
		t.Errorf("delta = %+v, want one obs per bucket", d)
	}
	if math.Abs(d.Sum-2.0) > 1e-9 {
		t.Errorf("delta sum = %v, want 2", d.Sum)
	}
	// Subtracting a zero (never-taken) snapshot is the identity.
	if id := h.Snapshot().Sub(HistSnapshot{}); id.Count != 3 {
		t.Errorf("identity sub count = %d, want 3", id.Count)
	}
}

// TestHistogramConcurrentRender drives concurrent observation (run under
// -race via make race) and then requires the quiesced render to be
// deterministic and complete.
func TestHistogramConcurrentRender(t *testing.T) {
	m := NewMetrics()
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := m.Histogram(MetricServeRequestSec, L("node", "n1"), L("outcome", "sim"))
			for i := 0; i < per; i++ {
				h.Observe(float64(g+1) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	var a, b strings.Builder
	if err := m.Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Render(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("quiesced renders differ")
	}
	fams, err := ParseText(strings.NewReader(a.String()))
	if err != nil {
		t.Fatalf("render does not parse: %v", err)
	}
	hs, err := fams[MetricServeRequestSec].Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Count != goroutines*per {
		t.Errorf("count = %d, want %d", hs.Count, goroutines*per)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewHistogram(DefLatencyBounds())
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); allocs != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", allocs)
	}
	var nilH *Histogram
	if allocs := testing.AllocsPerRun(1000, func() { nilH.Observe(0.003) }); allocs != 0 {
		t.Errorf("nil Observe allocates %v/op, want 0", allocs)
	}
}
