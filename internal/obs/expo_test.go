package obs

import (
	"strings"
	"testing"
)

// TestRenderExpositionRoundTrip renders a registry carrying counters,
// labeled series (with exposition-hostile label values), and histograms,
// then re-parses the output — the validity gate for /metrics.
func TestRenderExpositionRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Counter(MetricServeRequests).Add(3)
	m.Counter(MetricChaosInjected, L("behavior", "delay")).Inc()
	m.Counter(MetricChaosInjected, L("behavior", "corrupt")).Add(2)
	weird := "we\"ird\\node\nx"
	m.Histogram(MetricServeRequestSec, L("node", weird), L("outcome", "sim")).Observe(0.01)
	m.Histogram(MetricServeRequestSec, L("node", weird), L("outcome", "hit-store")).Observe(0.0001)

	var out strings.Builder
	if err := m.Render(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("render does not parse:\n%s\nerr: %v", text, err)
	}

	f := fams[MetricServeRequests]
	if f == nil || f.Type != "counter" || len(f.Series) != 1 || f.Series[0].Value != 3 {
		t.Fatalf("serve_requests_total family: %+v", f)
	}
	if f.Help == "" {
		t.Error("declared family rendered without HELP text")
	}
	inj := fams[MetricChaosInjected]
	if inj == nil || len(inj.Series) != 2 {
		t.Fatalf("chaos_injected_total series: %+v", inj)
	}
	sum := 0.0
	for _, s := range inj.Series {
		sum += s.Value
	}
	if sum != 3 {
		t.Errorf("chaos_injected_total sum = %v, want 3", sum)
	}

	hist := fams[MetricServeRequestSec]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hist)
	}
	for _, s := range hist.Series {
		if strings.HasSuffix(s.Name, "_bucket") && s.Labels["node"] != weird {
			t.Fatalf("label escaping did not round-trip: %q", s.Labels["node"])
		}
	}
	hs, err := hist.Histogram()
	if err != nil {
		t.Fatalf("histogram aggregation: %v", err)
	}
	if hs.Count != 2 {
		t.Errorf("aggregated count = %d, want 2", hs.Count)
	}

	// Determinism: a second render is byte-identical.
	var again strings.Builder
	if err := m.Render(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Error("second render differs")
	}
}

// Unlabeled series must keep rendering as plain `name value` lines — the
// smoke scripts awk for them and older tests substring-match them.
func TestRenderUnlabeledLineFormat(t *testing.T) {
	m := NewMetrics()
	m.Counter(MetricSimRuns).Add(7)
	var out strings.Builder
	if err := m.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\nrunner_sim_runs_total 7\n") &&
		!strings.HasSuffix(out.String(), "runner_sim_runs_total 7\n") {
		t.Errorf("unlabeled line format changed:\n%s", out.String())
	}
}

func TestSeriesLabelOrderCanonical(t *testing.T) {
	m := NewMetrics()
	m.Counter("x_total", L("b", "2"), L("a", "1")).Inc()
	m.Counter("x_total", L("a", "1"), L("b", "2")).Inc()
	if got := m.Value("x_total", L("b", "2"), L("a", "1")); got != 2 {
		t.Errorf("label order forked the series: value = %d, want 2", got)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"name{le=\"0.1\" 3\n",  // unterminated label set
		"name{k=\"v\\q\"} 1\n", // bad escape
		"name notanumber\n",    // bad value
		"# TYPE lonely\n",      // malformed TYPE
		"{k=\"v\"} 1\n",        // missing name
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", bad)
		}
	}
}

func TestDeclaredNames(t *testing.T) {
	if _, ok := Lookup(MetricSimRuns); !ok {
		t.Fatal("runner_sim_runs_total not declared")
	}
	for _, d := range Declared() {
		if d.Name == "" || d.Help == "" {
			t.Errorf("incomplete declaration: %+v", d)
		}
		switch d.Type {
		case TypeCounter, TypeGauge, TypeHistogram:
		default:
			t.Errorf("%s: unknown type %q", d.Name, d.Type)
		}
		if strings.HasSuffix(d.Name, "_total") != (d.Type == TypeCounter) {
			t.Errorf("%s: _total suffix and counter type must coincide (type %s)", d.Name, d.Type)
		}
	}
}
