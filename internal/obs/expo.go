package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// expo.go is a small reader for the Prometheus text exposition format —
// the inverse of Metrics.Render. It exists for two consumers: the
// round-trip test that proves /metrics output is valid exposition, and
// hintm-load, which scrapes server-side histograms before and after a
// load run to gate SLOs on what the servers measured rather than what the
// client observed.

// ExpoSeries is one sample line: the series name as written (histogram
// samples keep their _bucket/_sum/_count suffix), its parsed labels, and
// the value.
type ExpoSeries struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ExpoFamily groups the samples of one metric family with its HELP/TYPE
// metadata ("untyped" when no TYPE line preceded the samples).
type ExpoFamily struct {
	Name   string
	Type   string
	Help   string
	Series []ExpoSeries // in exposition order
}

// ParseText parses text exposition into families keyed by family name.
// Histogram sample suffixes (_bucket/_sum/_count) are folded into the
// family declared by their TYPE line. Malformed lines are errors — this
// parser is the validity gate for Render's output, not a lenient scraper.
func ParseText(r io.Reader) (map[string]*ExpoFamily, error) {
	fams := make(map[string]*ExpoFamily)
	fam := func(name string) *ExpoFamily {
		f, ok := fams[name]
		if !ok {
			f = &ExpoFamily{Name: name, Type: "untyped"}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
			if kind == "" {
				continue // plain comment
			}
			f := fam(name)
			if kind == "HELP" {
				f.Help = rest
			} else {
				f.Type = rest
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		name := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suffix)
			if base != s.Name {
				if f, ok := fams[base]; ok && f.Type == "histogram" {
					name = base
				}
				break
			}
		}
		f := fam(name)
		f.Series = append(f.Series, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func parseComment(line string) (kind, name, rest string, err error) {
	for _, k := range []string{"# HELP ", "# TYPE "} {
		if strings.HasPrefix(line, k) {
			body := line[len(k):]
			i := strings.IndexByte(body, ' ')
			if i <= 0 {
				return "", "", "", fmt.Errorf("malformed %s line %q", strings.TrimSpace(k), line)
			}
			return strings.TrimSpace(k[2:]), body[:i], body[i+1:], nil
		}
	}
	return "", "", "", nil
}

func parseSample(line string) (ExpoSeries, error) {
	s := ExpoSeries{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		var err error
		s.Labels, rest, err = parseLabels(rest[i+1:])
		if err != nil {
			return s, fmt.Errorf("series %s: %w", s.Name, err)
		}
	} else {
		i := strings.IndexByte(rest, ' ')
		if i <= 0 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = rest[:i]
		rest = rest[i:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", line, err)
	}
	s.Value = v
	if s.Name == "" {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	return s, nil
}

// parseLabels consumes `k="v",...}` and returns the labels plus the
// remainder of the line after the closing brace.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		in = strings.TrimLeft(in, ",")
		if len(in) == 0 {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if in[0] == '}' {
			return labels, in[1:], nil
		}
		eq := strings.IndexByte(in, '=')
		if eq <= 0 || len(in) < eq+2 || in[eq+1] != '"' {
			return nil, "", fmt.Errorf("malformed label in %q", in)
		}
		key := in[:eq]
		val := strings.Builder{}
		i := eq + 2
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value for %q", key)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %q", in[i+1], key)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
		in = in[i:]
	}
}

// Histogram aggregates every _bucket/_sum/_count sample of a histogram
// family — across all label sets — into one HistSnapshot, validating
// structure on the way: per-series buckets must be cumulative and their
// le bounds ascending, and each label set's +Inf bucket must match its
// _count. This is both the scrape aggregation hintm-load needs (fleet-wide
// latency across nodes and outcomes) and the round-trip validity check.
func (f *ExpoFamily) Histogram() (HistSnapshot, error) {
	if f.Type != "histogram" {
		return HistSnapshot{}, fmt.Errorf("family %s: type %s, not histogram", f.Name, f.Type)
	}
	type seriesAgg struct {
		les  []float64 // in exposition order
		cums []uint64
		inf  uint64
		cnt  uint64
		has  bool
	}
	byLabels := make(map[string]*seriesAgg)
	order := []string{}
	agg := func(labels map[string]string) *seriesAgg {
		parts := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		id := strings.Join(parts, ",")
		a, ok := byLabels[id]
		if !ok {
			a = &seriesAgg{}
			byLabels[id] = a
			order = append(order, id)
		}
		return a
	}
	sum := 0.0
	for _, s := range f.Series {
		a := agg(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le := s.Labels["le"]
			if le == "+Inf" {
				a.inf = uint64(s.Value)
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return HistSnapshot{}, fmt.Errorf("family %s: bad le %q", f.Name, le)
			}
			a.les = append(a.les, bound)
			a.cums = append(a.cums, uint64(s.Value))
		case strings.HasSuffix(s.Name, "_sum"):
			sum += s.Value
		case strings.HasSuffix(s.Name, "_count"):
			a.cnt = uint64(s.Value)
			a.has = true
		default:
			return HistSnapshot{}, fmt.Errorf("family %s: unexpected histogram sample %s", f.Name, s.Name)
		}
	}
	var bounds []float64
	out := HistSnapshot{Sum: sum}
	for _, id := range order {
		a := byLabels[id]
		for i := 1; i < len(a.les); i++ {
			if a.les[i] <= a.les[i-1] {
				return HistSnapshot{}, fmt.Errorf("family %s{%s}: le bounds not ascending", f.Name, id)
			}
			if a.cums[i] < a.cums[i-1] {
				return HistSnapshot{}, fmt.Errorf("family %s{%s}: buckets not cumulative", f.Name, id)
			}
		}
		if len(a.cums) > 0 && a.inf < a.cums[len(a.cums)-1] {
			return HistSnapshot{}, fmt.Errorf("family %s{%s}: +Inf below last bucket", f.Name, id)
		}
		if a.has && a.cnt != a.inf {
			return HistSnapshot{}, fmt.Errorf("family %s{%s}: _count %d != +Inf bucket %d", f.Name, id, a.cnt, a.inf)
		}
		if bounds == nil {
			bounds = a.les
			out.Bounds = bounds
			out.Buckets = make([]uint64, len(bounds)+1)
		} else if len(a.les) != len(bounds) {
			return HistSnapshot{}, fmt.Errorf("family %s: inconsistent bucket layouts across series", f.Name)
		}
		prev := uint64(0)
		for i, c := range a.cums {
			out.Buckets[i] += c - prev
			prev = c
		}
		out.Buckets[len(bounds)] += a.inf - prev
		out.Count += a.inf
	}
	return out, nil
}
