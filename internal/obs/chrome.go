package obs

import (
	"bufio"
	"fmt"
	"io"
)

// ChromeTracer serializes the event stream as Chrome trace-event JSON — the
// format ui.perfetto.dev and chrome://tracing open directly. Each hardware
// context gets its own track (tid = context id, pid 0); transaction attempts
// are complete ("X") events, point events are thread-scoped instants ("i"),
// and counter samples are counter ("C") events grouped into three tracks
// (transactions, aborts, memory).
//
// All output is produced with fmt verbs over integers and fixed literal
// strings in emission order, so a deterministic simulation yields a
// byte-identical trace file — the property the CI trace-diff job asserts.
// Timestamps are simulated cycles written into the format's microsecond
// field: absolute times read as "µs" in the UI but are really cycles.
type ChromeTracer struct {
	w   *bufio.Writer
	err error
	n   int
	// named tracks which context tracks have had their metadata emitted.
	named map[int]bool
}

var _ Tracer = (*ChromeTracer)(nil)

// NewChromeTracer starts a trace-event stream on w. Call Close to complete
// the JSON document and flush.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	t := &ChromeTracer{w: bufio.NewWriterSize(w, 1<<16), named: make(map[int]bool)}
	t.printf("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	return t
}

func (t *ChromeTracer) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

// sep writes the inter-event separator and counts the event.
func (t *ChromeTracer) sep() {
	if t.n > 0 {
		t.printf(",\n")
	}
	t.n++
}

// track lazily emits the metadata naming a context's track. Contexts appear
// in deterministic (simulation) order, so lazy emission stays reproducible.
func (t *ChromeTracer) track(ctx int) {
	if t.named[ctx] {
		return
	}
	t.named[ctx] = true
	t.sep()
	t.printf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"hw-ctx %d"}}`, ctx, ctx)
	t.sep()
	t.printf(`{"name":"thread_sort_index","ph":"M","pid":0,"tid":%d,"args":{"sort_index":%d}}`, ctx, ctx)
}

// TxBegin implements Tracer. Spans are emitted as complete events at TxEnd
// (begin carries no information the end event lacks); begin only ensures the
// context's track exists before any instants land on it.
func (t *ChromeTracer) TxBegin(ctx, tid int, cycle int64, fallback bool) {
	t.track(ctx)
}

// TxEnd implements Tracer.
func (t *ChromeTracer) TxEnd(a TxAttempt) {
	t.track(a.Ctx)
	name := "tx"
	if a.Fallback {
		name = "fallback"
	}
	t.sep()
	t.printf(`{"name":%q,"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"args":{"sw_tid":%d,"outcome":%q,"reason":%q,"readset":%d,"writeset":%d,"tracked":%d,"safe_skipped":%d`,
		name, a.Ctx, a.Start, a.Duration(), a.TID, a.Outcome.String(),
		reasonLabel(a), a.ReadSet, a.WriteSet, a.Tracked, a.SafeSkipped)
	if ov := a.Overflow; ov != nil {
		t.printf(`,"overflow":{"structure":%q,"tracked":%d,"skipped":%d,"top":[`,
			ov.Structure, ov.Tracked, ov.Skipped)
		for i, bc := range ov.Top {
			if i > 0 {
				t.printf(",")
			}
			t.printf(`{"addr":"0x%x","count":%d}`, bc.Block*blockSize, bc.Count)
		}
		t.printf("]}")
	}
	t.printf("}}")
}

// Instant implements Tracer.
func (t *ChromeTracer) Instant(ctx int, cycle int64, kind EventKind, arg uint64) {
	t.track(ctx)
	t.sep()
	t.printf(`{"name":%q,"ph":"i","s":"t","pid":0,"tid":%d,"ts":%d,"args":{"arg":"0x%x"}}`,
		kind.String(), ctx, cycle, arg)
}

// Sample implements Tracer: one counter event per counter group, so the UI
// renders stacked per-group timelines.
func (t *ChromeTracer) Sample(s CounterSample) {
	t.sep()
	t.printf(`{"name":"transactions","ph":"C","pid":0,"ts":%d,"args":{"commits":%d,"fallback_commits":%d}}`,
		s.Cycle, s.Commits, s.FallbackCommits)
	t.sep()
	t.printf(`{"name":"aborts","ph":"C","pid":0,"ts":%d,"args":{"conflict":%d,"false_conflict":%d,"capacity":%d,"page_mode":%d,"fallback_lock":%d,"explicit":%d,"spurious":%d}}`,
		s.Cycle, s.Aborts[1], s.Aborts[2], s.Aborts[3], s.Aborts[4], s.Aborts[5], s.Aborts[6], s.Aborts[7])
	t.sep()
	t.printf(`{"name":"memory","ph":"C","pid":0,"ts":%d,"args":{"tlb_misses":%d,"page_transitions":%d,"l1_hits":%d,"l1_misses":%d,"bus_ops":%d}}`,
		s.Cycle, s.TLBMisses, s.PageTransitions, s.L1Hits, s.L1Misses, s.BusOps)
}

// Events reports how many trace events were written so far.
func (t *ChromeTracer) Events() int { return t.n }

// Close completes the JSON document and flushes the stream.
func (t *ChromeTracer) Close() error {
	t.printf("\n]}\n")
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// reasonLabel renders the span's abort reason ("" for commits keeps the args
// schema fixed across outcomes).
func reasonLabel(a TxAttempt) string {
	if a.Outcome != OutcomeAbort {
		return ""
	}
	return a.Reason.String()
}

// blockSize converts block numbers back to byte addresses for display
// (mirrors mem.BlockSize; obs stays importable from everywhere below sim).
const blockSize = 64
