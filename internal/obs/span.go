package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// span.go is the fleet-side counterpart of the simulator's Tracer: a span
// model for one request's journey through the serving fleet. A span is a
// named interval on one node — admission, store get, one peer-fetch
// candidate, the simulation itself, replication pushes — linked to its
// parent by (node, id) so the spans of every node involved in a request
// assemble into one tree. Identity is deterministic: the trace id derives
// from the request's content-address store key, span ids are per-trace
// ordinals, and root ids are per-node epoch counters — so two identical
// seeded fleet runs produce byte-identical canonical traces.

// Span kinds. Phase() maps them onto the report phases.
const (
	SpanRequest     = "request"      // root: one resolve() execution
	SpanAdmission   = "admission"    // time spent acquiring an admission slot
	SpanStoreGet    = "store.get"    // local store lookup
	SpanStorePut    = "store.put"    // local store persist (peer bytes)
	SpanPeerFetch   = "peer.fetch"   // one GET candidate during a cold miss
	SpanPeerServe   = "peer.serve"   // remote side of a peer fetch
	SpanSimulate    = "simulate"     // the simulation (includes store put)
	SpanReplEnqueue = "repl.enqueue" // handing the result to the replicator
	SpanReplPush    = "repl.push"    // one async replication PUT to an owner
	SpanReplRecv    = "repl.recv"    // remote side of a replication PUT
	SpanRepair      = "repair"       // anti-entropy repair root
)

// Span is one recorded interval. Times are microseconds relative to the
// start of its trace buffer on Node — node clocks are not synchronized,
// so cross-node offsets are presentation-only; durations are the signal.
type Span struct {
	Node       string `json:"node"`
	ID         int    `json:"id"`
	Parent     int    `json:"parent,omitempty"`
	ParentNode string `json:"parentNode,omitempty"`
	Hop        int    `json:"hop"`
	Kind       string `json:"kind"`
	Peer       string `json:"peer,omitempty"`
	Detail     string `json:"detail,omitempty"`
	StartUs    int64  `json:"startUs"`
	DurUs      int64  `json:"durUs"`
	Err        string `json:"err,omitempty"`
}

// SpanContext is the trace context carried on the wire in the
// X-Hintm-Trace header: which trace and root execution the caller belongs
// to, which of its spans is the parent, and how many hops deep the call
// chain is. The zero value means "not traced".
type SpanContext struct {
	Trace      string // trace id (prefix of the store key)
	Root       string // root execution id, "node#epoch"
	ParentNode string // node that recorded the parent span
	Parent     int    // parent span id on ParentNode
	Hop        int    // hops from the root execution (root = 0)
}

// MaxHops bounds trace propagation depth; deeper contexts are dropped
// rather than joined, mirroring the anti-cascade ?local=1 discipline.
const MaxHops = 4

// TraceIDLen is how much of the store key names the trace.
const TraceIDLen = 16

// TraceID derives the deterministic trace id from a content-address store
// key: its first 16 hex characters — plenty of identity, and visibly
// greppable back to the full key.
func TraceID(key string) string {
	if len(key) > TraceIDLen {
		return key[:TraceIDLen]
	}
	return key
}

// String renders the header value: trace|root|parentNode|parentID|hop.
// The zero context renders as "".
func (sc SpanContext) String() string {
	if sc.Trace == "" {
		return ""
	}
	return sc.Trace + "|" + sc.Root + "|" + sc.ParentNode + "|" +
		strconv.Itoa(sc.Parent) + "|" + strconv.Itoa(sc.Hop)
}

// ParseSpanContext parses a header value produced by String. It returns
// ok=false for empty or malformed values — an untraced or garbled header
// simply means "don't record", never an error.
func ParseSpanContext(s string) (SpanContext, bool) {
	if s == "" {
		return SpanContext{}, false
	}
	parts := strings.Split(s, "|")
	if len(parts) != 5 || parts[0] == "" || parts[1] == "" {
		return SpanContext{}, false
	}
	parent, err := strconv.Atoi(parts[3])
	if err != nil || parent < 0 {
		return SpanContext{}, false
	}
	hop, err := strconv.Atoi(parts[4])
	if err != nil || hop < 0 || hop > MaxHops {
		return SpanContext{}, false
	}
	return SpanContext{Trace: parts[0], Root: parts[1], ParentNode: parts[2], Parent: parent, Hop: hop}, true
}

// TraceSchema versions the assembled-trace JSON document.
const TraceSchema = "hintm-trace/v1"

// TraceDoc is the assembled trace served by GET /v1/traces/{key}: every
// span recorded for one root execution, across every node that touched it.
type TraceDoc struct {
	Schema string `json:"schema"`
	Key    string `json:"key,omitempty"`
	Trace  string `json:"trace"`
	Root   string `json:"root"`
	Node   string `json:"node,omitempty"` // node that assembled the doc
	Spans  []Span `json:"spans"`
}

// Sort orders spans deterministically: by hop, then node, then id. Within
// one node ids are recording order, so the sorted document is stable for
// identical runs.
func (d *TraceDoc) Sort() {
	sort.Slice(d.Spans, func(i, j int) bool {
		a, b := d.Spans[i], d.Spans[j]
		if a.Hop != b.Hop {
			return a.Hop < b.Hop
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.ID < b.ID
	})
}

// Canonical returns a copy with wall-clock fields zeroed: identity,
// structure, outcomes, and ordering survive; only the timings — the one
// nondeterministic ingredient — are dropped. Two identical seeded fleet
// runs must produce byte-identical canonical documents.
func (d *TraceDoc) Canonical() *TraceDoc {
	c := *d
	c.Spans = make([]Span, len(d.Spans))
	copy(c.Spans, d.Spans)
	for i := range c.Spans {
		c.Spans[i].StartUs = 0
		c.Spans[i].DurUs = 0
	}
	cc := &c
	cc.Sort()
	return cc
}

// Breakdown attributes a trace's wall time to report phases.
type BreakdownResult struct {
	TotalUs   int64            // root span duration
	CoveredUs int64            // union of origin-node child spans ∩ root
	Phases    map[string]int64 // phase -> summed span duration (µs)
	Counts    map[string]int   // phase -> span count
	Remote    int              // spans recorded off the origin node
}

// Coverage is the fraction of the root span's wall time covered by its
// origin-node child spans — the "where did the time go" score the fleet
// report prints. 1 means every microsecond is attributed to a phase.
func (b BreakdownResult) Coverage() float64 {
	if b.TotalUs <= 0 {
		return 0
	}
	return float64(b.CoveredUs) / float64(b.TotalUs)
}

// Phase maps a span to its report phase: admission, store, peer, hedge,
// sim, or replication. Hedged peer fetches (detail prefixed "hedge") count
// as the hedge phase.
func Phase(s Span) string {
	switch s.Kind {
	case SpanAdmission:
		return "admission"
	case SpanStoreGet, SpanStorePut:
		return "store"
	case SpanPeerFetch, SpanPeerServe:
		if strings.HasPrefix(s.Detail, "hedge") {
			return "hedge"
		}
		return "peer"
	case SpanSimulate:
		return "sim"
	case SpanReplEnqueue, SpanReplPush, SpanReplRecv, SpanRepair:
		return "replication"
	}
	return s.Kind
}

// Breakdown computes the per-phase attribution for one assembled trace.
// Phase sums include every non-root span (remote ones too — they explain
// where peers spent time); coverage counts only the origin node's spans,
// clipped to the root interval, because overlapping local and remote
// views of the same work must not double-attribute wall time.
func Breakdown(spans []Span) BreakdownResult {
	b := BreakdownResult{Phases: map[string]int64{}, Counts: map[string]int{}}
	var root *Span
	for i := range spans {
		if spans[i].Kind == SpanRequest && spans[i].Hop == 0 {
			root = &spans[i]
			break
		}
	}
	type iv struct{ lo, hi int64 }
	var local []iv
	for i := range spans {
		s := &spans[i]
		if root != nil && s == root {
			continue
		}
		if s.Hop > 0 {
			b.Remote++
		}
		p := Phase(*s)
		b.Phases[p] += s.DurUs
		b.Counts[p]++
		if root != nil && s.Hop == 0 && s.Node == root.Node && s.Kind != SpanRequest {
			lo, hi := s.StartUs, s.StartUs+s.DurUs
			if lo < root.StartUs {
				lo = root.StartUs
			}
			if hi > root.StartUs+root.DurUs {
				hi = root.StartUs + root.DurUs
			}
			if hi > lo {
				local = append(local, iv{lo, hi})
			}
		}
	}
	if root == nil {
		return b
	}
	b.TotalUs = root.DurUs
	sort.Slice(local, func(i, j int) bool { return local[i].lo < local[j].lo })
	var covered, end int64
	end = -1 << 62
	for _, v := range local {
		if v.lo > end {
			covered += v.hi - v.lo
			end = v.hi
		} else if v.hi > end {
			covered += v.hi - end
			end = v.hi
		}
	}
	b.CoveredUs = covered
	return b
}

// ChromeSpanEvents renders fleet spans as Chrome trace-event objects, one
// process per node (pids from pidBase up, in sorted node order) so a
// merged file opens alongside simulator ChromeTracer output in one
// Perfetto view. Synchronous request work goes on tid 1, async
// replication/repair on tid 2 — events on one tid must nest, and
// replication outlives the root span by design.
func ChromeSpanEvents(spans []Span, pidBase int) []json.RawMessage {
	nodes := map[string]int{}
	var names []string
	for _, s := range spans {
		if _, ok := nodes[s.Node]; !ok {
			nodes[s.Node] = 0
			names = append(names, s.Node)
		}
	}
	sort.Strings(names)
	var out []json.RawMessage
	for i, n := range names {
		nodes[n] = pidBase + i
		meta := fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pidBase+i, jstr("node "+n))
		out = append(out, json.RawMessage(meta))
	}
	for _, s := range spans {
		tid := 1
		switch s.Kind {
		case SpanReplEnqueue, SpanReplPush, SpanReplRecv, SpanRepair:
			tid = 2
		}
		name := s.Kind
		if s.Detail != "" {
			name += " " + s.Detail
		}
		dur := s.DurUs
		if dur < 1 {
			dur = 1
		}
		ev := fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%s,"args":{"id":%d,"parent":%d,"hop":%d,"peer":%s,"err":%s}}`,
			nodes[s.Node], tid, s.StartUs, dur, jstr(name), s.ID, s.Parent, s.Hop, jstr(s.Peer), jstr(s.Err))
		out = append(out, json.RawMessage(ev))
	}
	return out
}

func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
