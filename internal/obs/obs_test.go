package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hintm/internal/htm"
)

// sampleStream feeds a representative event mix into t: two context tracks,
// a commit span, a capacity-abort span with overflow detail, instants, and a
// counter sample.
func sampleStream(t Tracer) {
	t.TxBegin(0, 0, 100, false)
	t.TxEnd(TxAttempt{
		Ctx: 0, TID: 0, Start: 100, End: 250,
		Outcome: OutcomeCommit, ReadSet: 5, WriteSet: 2, Tracked: 6,
	})
	t.Instant(1, 300, EvPageTransition, 7)
	t.Instant(1, 310, EvTLBShootdown, 7)
	t.TxBegin(1, 1, 320, false)
	t.TxEnd(TxAttempt{
		Ctx: 1, TID: 1, Start: 320, End: 900,
		Outcome: OutcomeAbort, Reason: htm.AbortCapacity,
		ReadSet: 64, WriteSet: 1, Tracked: 64, SafeSkipped: 10,
		Overflow: &Overflow{
			Structure: "tx-buffer", Tracked: 64, Skipped: 10,
			Top: []BlockCount{{Block: 0x40, Count: 9}, {Block: 0x41, Count: 3}},
		},
	})
	t.TxBegin(0, 0, 1000, true)
	t.TxEnd(TxAttempt{
		Ctx: 0, TID: 0, Start: 1000, End: 1400,
		Outcome: OutcomeFallbackCommit, Fallback: true,
	})
	t.Sample(CounterSample{
		Cycle: 2000, Steps: 500, Commits: 1, FallbackCommits: 1,
		Aborts:    [8]uint64{0, 0, 0, 1, 0, 0, 0, 0},
		TLBMisses: 3, L1Hits: 40, L1Misses: 8, BusOps: 12,
	})
}

func TestChromeTracerEmitsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTracer(&buf)
	sampleStream(ct)
	if err := ct.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	out := buf.Bytes()
	if !json.Valid(out) {
		t.Fatalf("chrome trace is not valid JSON:\n%s", out)
	}
	if ct.Events() == 0 {
		t.Fatal("Events() = 0, want > 0")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(doc.TraceEvents) != ct.Events() {
		t.Fatalf("decoded %d events, Events() = %d", len(doc.TraceEvents), ct.Events())
	}
	// The capacity abort must carry its overflow annotation.
	if !strings.Contains(buf.String(), `"structure":"tx-buffer"`) {
		t.Error("trace lacks the overflow structure annotation")
	}
	if !strings.Contains(buf.String(), `"reason":"capacity"`) {
		t.Error("trace lacks the abort reason annotation")
	}
}

func TestChromeTracerDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		ct := NewChromeTracer(&buf)
		sampleStream(ct)
		if err := ct.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("identical event streams rendered different traces")
	}
}

func TestMultiDropsNilAndUnwraps(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	c := NewCollector()
	if got := Multi(nil, c); got != Tracer(c) {
		t.Errorf("Multi(nil, c) = %T, want the collector itself", got)
	}
	// Fan-out delivers every event to every sink.
	c2 := NewCollector()
	sampleStream(Multi(c, c2))
	if len(c.Attempts) != 3 || len(c2.Attempts) != 3 {
		t.Errorf("fan-out attempts = %d/%d, want 3/3", len(c.Attempts), len(c2.Attempts))
	}
}

func TestCollectorAutopsy(t *testing.T) {
	c := NewCollector()
	sampleStream(c)
	if got := c.InstantCount(EvPageTransition); got != 1 {
		t.Errorf("InstantCount(page-transition) = %d, want 1", got)
	}
	if got := c.InstantCount(EvEviction); got != 0 {
		t.Errorf("InstantCount(l1-eviction) = %d, want 0", got)
	}

	a := c.Autopsy()
	if a.Attempts != 3 || a.Commits != 1 || a.FallbackCommits != 1 || a.Aborts != 1 {
		t.Fatalf("autopsy totals = %+v", a)
	}
	if a.AbortsByReason[htm.AbortCapacity] != 1 {
		t.Errorf("AbortsByReason[capacity] = %d, want 1", a.AbortsByReason[htm.AbortCapacity])
	}
	if a.CyclesLost[htm.AbortCapacity] != 580 {
		t.Errorf("CyclesLost[capacity] = %d, want 580", a.CyclesLost[htm.AbortCapacity])
	}
	if len(a.Capacity) != 1 || a.Capacity[0].Overflow == nil {
		t.Fatalf("capacity list = %+v", a.Capacity)
	}
	if a.ByStructure["tx-buffer"] != 1 {
		t.Errorf("ByStructure = %v", a.ByStructure)
	}
	if len(a.TopBlocks) != 2 || a.TopBlocks[0].Block != 0x40 || a.TopBlocks[0].Touches != 9 {
		t.Errorf("TopBlocks = %+v, want 0x40×9 first", a.TopBlocks)
	}

	var buf bytes.Buffer
	a.Render(&buf)
	for _, want := range []string{"abort autopsy", "tx-buffer=1", "top offending blocks"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered autopsy lacks %q:\n%s", want, buf.String())
		}
	}
}

func TestAutopsyWithoutCapacityAborts(t *testing.T) {
	c := NewCollector()
	c.TxEnd(TxAttempt{Outcome: OutcomeCommit, End: 10})
	var buf bytes.Buffer
	c.Autopsy().Render(&buf)
	if !strings.Contains(buf.String(), "no capacity aborts") {
		t.Errorf("render = %q, want the no-capacity-aborts note", buf.String())
	}
}
