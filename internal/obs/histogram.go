package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-boundary bucket histogram with lock-free
// observation. Boundaries are upper bounds with Prometheus `le`
// (less-or-equal) semantics: an observation lands in the first bucket
// whose bound is >= the value, and values above the last bound land in
// the implicit +Inf bucket. The boundary slice is fixed at construction,
// so Observe is a binary search plus two atomic adds — safe on request
// hot paths — and the rendered exposition is deterministic for a
// deterministic observation sequence.
//
// A nil *Histogram is the disabled histogram: Observe is a no-op,
// matching the nil *Metric and nil Tracer idioms.
type Histogram struct {
	bounds []float64       // ascending upper bounds (le)
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefLatencyBounds returns the default latency boundaries used by the
// serving-layer histograms: 21 log-spaced buckets doubling from 100µs, so
// the range covers a sub-millisecond store hit through a ~100s simulation.
func DefLatencyBounds() []float64 {
	bounds := make([]float64, 21)
	b := 100e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// It panics on empty, unsorted, or duplicated bounds — boundaries are
// static configuration, and a bad set is a programming error.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: own, counts: make([]atomic.Uint64, len(own)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram's current state. The per-bucket loads are
// individually atomic but not mutually consistent under concurrent
// observation; Cum is re-derived from the bucket counts, so the snapshot
// is always internally monotone.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Bounds: h.bounds, Buckets: make([]uint64, len(h.counts))}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// HistSnapshot is a point-in-time copy of a histogram: per-bucket counts
// (last entry is the +Inf bucket), total count, and value sum.
type HistSnapshot struct {
	Bounds  []float64 // ascending upper bounds, len(Buckets)-1 entries
	Buckets []uint64  // per-bucket (non-cumulative) counts
	Count   uint64
	Sum     float64
}

// Sub returns the delta s - before, for before taken earlier from the same
// histogram (same bounds). Windowed quantiles — e.g. "p99 during this load
// run" — come from subtracting the pre-run snapshot from the post-run one.
func (s HistSnapshot) Sub(before HistSnapshot) HistSnapshot {
	if len(before.Buckets) == 0 {
		return s
	}
	if len(before.Buckets) != len(s.Buckets) {
		panic("obs: HistSnapshot.Sub across different bucket layouts")
	}
	out := HistSnapshot{Bounds: s.Bounds, Buckets: make([]uint64, len(s.Buckets)), Sum: s.Sum - before.Sum}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] - before.Buckets[i]
		out.Count += out.Buckets[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket holding the target rank — the standard Prometheus
// histogram_quantile estimate. Observations in the +Inf bucket clamp to
// the largest finite bound. Returns 0 for an empty snapshot. The estimate
// is monotone in q.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(s.Buckets)-1 {
			if i == len(s.Buckets)-1 && i == len(s.Bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + frac*(upper-lower)
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}
