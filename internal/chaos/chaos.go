// Package chaos is a deterministic, seeded network-fault proxy for the
// serving fleet. It plays the role for hintm-served that internal/fault
// plays for the simulator: a plan of hostile behaviors — killed
// connections, blackholes, fixed delays, slow-loris trickles, corrupted
// bodies, flaky errors — injected between fleet nodes (or between a client
// and a node) to validate the resilience machinery: circuit breakers,
// budgets, hedges, replication retry, and anti-entropy repair.
//
// Determinism: every per-request decision is drawn from a splitmix64 hash
// of (seed, request index, behavior), so the same plan + seed + request
// sequence injects the same faults. Concurrency does not perturb a given
// index's decisions; only which request gets which index depends on
// arrival order. The zero Plan forwards everything untouched.
//
// The proxy is an http.Handler, usable in-process in Go tests (wrap a
// fleet node's httptest handler) and as a standalone process via
// cmd/hintm-chaos (front a node's listen address) — the chaos smoke script
// does the latter.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hintm/internal/obs"
)

// Plan declares which network faults the proxy injects. The zero Plan
// injects nothing. All fields are scalars so plans round-trip through the
// flat key=value CLI syntax.
type Plan struct {
	// KillAt, when non-zero, severs the connection of the KillAt-th request
	// (1-based, counted at the proxy) and every request after it — the
	// proxy-level analogue of the backend process dying mid-workload.
	KillAt uint64
	// Blackhole accepts every request and never answers: the connection
	// hangs until the client's deadline kills it. Models a partitioned or
	// wedged peer, the case budgets and breakers exist for.
	Blackhole bool
	// Delay adds a fixed latency before forwarding each request. Models a
	// slow link; the hedge path exists for this.
	Delay time.Duration
	// SlowLoris trickles the response body out over this duration instead
	// of writing it at once. Models a peer that is alive but drip-feeding,
	// which per-call deadlines must bound.
	SlowLoris time.Duration
	// Corrupt is the per-request probability in [0,1] of flipping bytes in
	// the response body (length-preserving). The receiver's content-address
	// validation must reject the bytes.
	Corrupt float64
	// Flaky is the per-request probability in [0,1] of answering 503
	// without forwarding. Models an overloaded or crash-looping peer.
	Flaky float64
}

// Enabled reports whether the plan injects anything.
func (p Plan) Enabled() bool {
	return p.KillAt > 0 || p.Blackhole || p.Delay > 0 || p.SlowLoris > 0 || p.Corrupt > 0 || p.Flaky > 0
}

// Validate rejects out-of-range probabilities and negative durations.
func (p Plan) Validate() error {
	if p.Corrupt < 0 || p.Corrupt > 1 {
		return fmt.Errorf("chaos: corrupt probability %v outside [0,1]", p.Corrupt)
	}
	if p.Flaky < 0 || p.Flaky > 1 {
		return fmt.Errorf("chaos: flaky probability %v outside [0,1]", p.Flaky)
	}
	if p.Delay < 0 || p.SlowLoris < 0 {
		return fmt.Errorf("chaos: negative duration in plan: %+v", p)
	}
	return nil
}

// String renders the plan in ParsePlan's syntax (empty for the zero plan).
func (p Plan) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if p.KillAt > 0 {
		add("kill-at", strconv.FormatUint(p.KillAt, 10))
	}
	if p.Blackhole {
		add("blackhole", "1")
	}
	if p.Delay > 0 {
		add("delay", p.Delay.String())
	}
	if p.SlowLoris > 0 {
		add("slow-loris", p.SlowLoris.String())
	}
	if p.Corrupt > 0 {
		add("corrupt", strconv.FormatFloat(p.Corrupt, 'g', -1, 64))
	}
	if p.Flaky > 0 {
		add("flaky", strconv.FormatFloat(p.Flaky, 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the CLI chaos spec: comma-separated key=value pairs,
// e.g. "kill-at=40,delay=50ms,corrupt=0.5". The empty string is the zero
// (disabled) plan. Mirrors fault.ParsePlan's syntax.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Plan{}, fmt.Errorf("chaos: bad spec entry %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "kill-at":
			p.KillAt, err = strconv.ParseUint(v, 10, 64)
		case "blackhole":
			p.Blackhole, err = strconv.ParseBool(v)
		case "delay":
			p.Delay, err = time.ParseDuration(v)
		case "slow-loris":
			p.SlowLoris, err = time.ParseDuration(v)
		case "corrupt":
			p.Corrupt, err = strconv.ParseFloat(v, 64)
		case "flaky":
			p.Flaky, err = strconv.ParseFloat(v, 64)
		default:
			keys := []string{"kill-at", "blackhole", "delay", "slow-loris", "corrupt", "flaky"}
			sort.Strings(keys)
			return Plan{}, fmt.Errorf("chaos: unknown spec key %q (have %v)", k, keys)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("chaos: bad value for %q: %v", k, err)
		}
	}
	return p, p.Validate()
}

// Stats counts what the proxy actually injected, so a chaos campaign can
// assert it was not vacuous. All fields are read via Stats() snapshots.
type Stats struct {
	Requests   uint64
	Forwarded  uint64
	Killed     uint64
	Blackholed uint64
	Flaked     uint64
	Corrupted  uint64
}

// Behavior salts keep one request's independent draws (flaky vs corrupt)
// uncorrelated even though both hash the same index.
const (
	saltFlaky   = 0x464C414B59 // "FLAKY"
	saltCorrupt = 0x434F5252   // "CORR"
)

// Proxy forwards requests to a fixed target, injecting the plan's faults.
type Proxy struct {
	plan    Plan
	target  *url.URL
	seed    uint64
	client  *http.Client
	metrics *obs.Metrics // nil = unobserved (every method no-ops)

	n     atomic.Uint64 // request index, 1-based
	stats [6]atomic.Uint64
}

const (
	statRequests = iota
	statForwarded
	statKilled
	statBlackholed
	statFlaked
	statCorrupted
)

// New builds a proxy for target (a base URL like "http://127.0.0.1:8081").
func New(target string, plan Plan, seed uint64) (*Proxy, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("chaos: bad target %q: %v", target, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("chaos: target %q needs scheme and host", target)
	}
	return &Proxy{
		plan:   plan,
		target: u,
		seed:   seed,
		// No client-side timeout: the backend's and caller's deadlines rule;
		// the proxy must not rescue a blackholed caller from its own test.
		client: &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		}},
	}, nil
}

// SetMetrics routes the proxy's counters into a metrics registry, so a
// chaos campaign's injections are scrapable from a /metrics endpoint
// (cmd/hintm-chaos -metrics-addr) instead of only visible at proxy exit.
// Injections are labeled by behavior; delays and slow-loris trickles are
// counted too, even though they eventually forward the request.
func (p *Proxy) SetMetrics(m *obs.Metrics) { p.metrics = m }

// inject counts one injected fault, by behavior. stat < 0 records a
// behavior that has no Stats field (delays, slow-loris) on metrics only.
func (p *Proxy) inject(stat int, behavior string) {
	if stat >= 0 {
		p.stats[stat].Add(1)
	}
	p.metrics.Counter(obs.MetricChaosInjected, obs.L("behavior", behavior)).Inc()
}

// Stats returns a snapshot of the injection counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:   p.stats[statRequests].Load(),
		Forwarded:  p.stats[statForwarded].Load(),
		Killed:     p.stats[statKilled].Load(),
		Blackholed: p.stats[statBlackholed].Load(),
		Flaked:     p.stats[statFlaked].Load(),
		Corrupted:  p.stats[statCorrupted].Load(),
	}
}

// splitmix64 is the finalizer also used by the ring and the breaker jitter:
// one multiply-xor chain with full avalanche, so consecutive indices give
// uncorrelated draws.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// draw returns a uniform [0,1) decision for (request index, behavior).
func (p *Proxy) draw(index, salt uint64) float64 {
	return float64(splitmix64(p.seed^index*0x9E3779B97F4A7C15^salt)>>11) / (1 << 53)
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	index := p.n.Add(1)
	p.stats[statRequests].Add(1)
	p.metrics.Counter(obs.MetricChaosRequests).Inc()

	if p.plan.KillAt > 0 && index >= p.plan.KillAt {
		// Sever the connection with no response bytes — to the client this
		// is the backend process dying, not an HTTP error.
		p.inject(statKilled, "killed")
		panic(http.ErrAbortHandler)
	}
	if p.plan.Blackhole {
		p.inject(statBlackholed, "blackholed")
		// Drain the body before parking: the HTTP server only detects a
		// vanished client via its background read, which stays off while
		// the request body is unread — a blackholed PUT would otherwise
		// hold this handler (and proxy shutdown) past the client's abort.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		return
	}
	if p.plan.Flaky > 0 && p.draw(index, saltFlaky) < p.plan.Flaky {
		p.inject(statFlaked, "flaked")
		http.Error(w, "chaos: injected 503", http.StatusServiceUnavailable)
		return
	}
	if p.plan.Delay > 0 {
		p.inject(-1, "delayed")
		select {
		case <-time.After(p.plan.Delay):
		case <-r.Context().Done():
			return
		}
	}

	out := r.Clone(r.Context())
	out.URL.Scheme = p.target.Scheme
	out.URL.Host = p.target.Host
	out.Host = p.target.Host
	out.RequestURI = "" // client requests must not set it
	resp, err := p.client.Do(out)
	if err != nil {
		http.Error(w, "chaos: upstream: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, "chaos: upstream body: "+err.Error(), http.StatusBadGateway)
		return
	}
	p.stats[statForwarded].Add(1)
	p.metrics.Counter(obs.MetricChaosForwarded).Inc()
	p.metrics.Counter(obs.MetricChaosBytes).Add(int64(len(body)))

	if p.plan.Corrupt > 0 && len(body) > 0 && p.draw(index, saltCorrupt) < p.plan.Corrupt {
		p.inject(statCorrupted, "corrupted")
		body = corrupt(body, splitmix64(p.seed^index))
	}

	hdr := w.Header()
	for k, vs := range resp.Header {
		hdr[k] = vs
	}
	hdr.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	if p.plan.SlowLoris > 0 && len(body) > 0 {
		p.inject(-1, "slow-loris")
		p.trickle(w, r, body)
		return
	}
	w.Write(body)
}

// corrupt flips bytes at rng-chosen positions, preserving length. At least
// one byte always changes.
func corrupt(body []byte, rng uint64) []byte {
	out := append([]byte(nil), body...)
	flips := 1 + int(rng%8)
	for i := 0; i < flips; i++ {
		rng = splitmix64(rng)
		out[rng%uint64(len(out))] ^= 0xA5
	}
	return out
}

// trickle writes body in small flushed chunks spread over SlowLoris.
func (p *Proxy) trickle(w http.ResponseWriter, r *http.Request, body []byte) {
	const chunks = 16
	size := (len(body) + chunks - 1) / chunks
	pause := p.plan.SlowLoris / chunks
	fl, _ := w.(http.Flusher)
	for off := 0; off < len(body); off += size {
		end := off + size
		if end > len(body) {
			end = len(body)
		}
		if _, err := w.Write(body[off:end]); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		select {
		case <-time.After(pause):
		case <-r.Context().Done():
			return
		}
	}
}
