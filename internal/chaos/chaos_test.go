package chaos

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hintm/internal/obs"
)

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "kill-at=40,blackhole=1,delay=50ms,slow-loris=2s,corrupt=0.5,flaky=0.25"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{KillAt: 40, Blackhole: true, Delay: 50 * time.Millisecond,
		SlowLoris: 2 * time.Second, Corrupt: 0.5, Flaky: 0.25}
	if p != want {
		t.Fatalf("ParsePlan = %+v, want %+v", p, want)
	}
	back, err := ParsePlan(p.String())
	if err != nil || back != p {
		t.Fatalf("round trip: %+v (%v)", back, err)
	}
	if zero, err := ParsePlan("  "); err != nil || zero.Enabled() {
		t.Fatalf("blank spec: %+v (%v)", zero, err)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1",        // unknown key
		"kill-at",        // no value
		"delay=fast",     // bad duration
		"corrupt=1.5",    // out of range
		"flaky=-0.1",     // out of range
		"slow-loris=-1s", // negative
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

// TestDrawsDeterministic pins the seeded decision stream: same seed, same
// per-index decisions; different seed, a different stream.
func TestDrawsDeterministic(t *testing.T) {
	a, _ := New("http://127.0.0.1:1", Plan{Flaky: 0.5}, 42)
	b, _ := New("http://127.0.0.1:1", Plan{Flaky: 0.5}, 42)
	c, _ := New("http://127.0.0.1:1", Plan{Flaky: 0.5}, 43)
	same, diff := true, true
	for i := uint64(1); i <= 256; i++ {
		if a.draw(i, saltFlaky) != b.draw(i, saltFlaky) {
			same = false
		}
		if a.draw(i, saltFlaky) != c.draw(i, saltFlaky) {
			diff = false
		}
		// Behavior salts decorrelate draws within one index.
		if a.draw(i, saltFlaky) == a.draw(i, saltCorrupt) {
			t.Fatalf("index %d: flaky and corrupt draws collide", i)
		}
	}
	if !same {
		t.Error("same seed produced different decision streams")
	}
	if diff {
		t.Error("different seeds produced identical decision streams")
	}
}

func newEcho(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Echo-Path", r.URL.Path)
		body, _ := io.ReadAll(r.Body)
		w.Write([]byte("echo:" + r.Method + ":" + r.URL.RequestURI() + ":" + string(body)))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func newProxy(t *testing.T, target string, plan Plan, seed uint64) *httptest.Server {
	t.Helper()
	p, err := New(target, plan, seed)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return ts
}

// TestProxyTransparent: the zero plan forwards method, path, query, body,
// headers, and status untouched.
func TestProxyTransparent(t *testing.T) {
	echo := newEcho(t)
	proxy := newProxy(t, echo.URL, Plan{}, 1)

	resp, err := http.Post(proxy.URL+"/v1/runs?wait=1", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "echo:POST:/v1/runs?wait=1:hello" {
		t.Fatalf("proxied body %q", body)
	}
	if resp.Header.Get("X-Echo-Path") != "/v1/runs" {
		t.Errorf("upstream header lost: %v", resp.Header)
	}
}

func TestProxyKillAt(t *testing.T) {
	echo := newEcho(t)
	pr, err := New(echo.URL, Plan{KillAt: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(pr)
	t.Cleanup(ts.Close)

	if resp, err := http.Get(ts.URL + "/ok"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request before kill-at: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	// The second request — and every one after — dies without a response.
	for i := 0; i < 2; i++ {
		if _, err := http.Get(ts.URL + "/dead"); err == nil {
			t.Fatalf("request %d after kill-at succeeded", i+2)
		}
	}
	if st := pr.Stats(); st.Killed != 2 || st.Forwarded != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestProxyBlackhole(t *testing.T) {
	echo := newEcho(t)
	proxy := newProxy(t, echo.URL, Plan{Blackhole: true}, 1)

	client := &http.Client{Timeout: 150 * time.Millisecond}
	begin := time.Now()
	_, err := client.Get(proxy.URL + "/hang")
	if err == nil {
		t.Fatal("blackholed request returned")
	}
	if elapsed := time.Since(begin); elapsed < 100*time.Millisecond {
		t.Errorf("blackholed request failed fast (%v); it must hang until the client deadline", elapsed)
	}
}

func TestProxyDelay(t *testing.T) {
	echo := newEcho(t)
	proxy := newProxy(t, echo.URL, Plan{Delay: 120 * time.Millisecond}, 1)

	begin := time.Now()
	resp, err := http.Get(proxy.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(begin); elapsed < 120*time.Millisecond {
		t.Errorf("delayed request returned in %v", elapsed)
	}
}

func TestProxyFlakyAndCorrupt(t *testing.T) {
	echo := newEcho(t)
	pr, err := New(echo.URL, Plan{Flaky: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(pr)
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/flaky")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("flaky=1 answered %d, want 503", resp.StatusCode)
	}
	if st := pr.Stats(); st.Flaked != 1 || st.Forwarded != 0 {
		t.Errorf("flaky stats: %+v", st)
	}

	// corrupt=1: same length, different bytes, counted.
	direct, _ := http.Get(echo.URL + "/c")
	want, _ := io.ReadAll(direct.Body)
	direct.Body.Close()
	prc, _ := New(echo.URL, Plan{Corrupt: 1}, 7)
	tsc := httptest.NewServer(prc)
	t.Cleanup(tsc.Close)
	resp, err = http.Get(tsc.URL + "/c")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(got) != len(want) || bytes.Equal(got, want) {
		t.Fatalf("corrupt=1: got %q (len %d), original %q (len %d)", got, len(got), want, len(want))
	}
	if st := prc.Stats(); st.Corrupted != 1 {
		t.Errorf("corrupt stats: %+v", st)
	}
}

func TestProxySlowLoris(t *testing.T) {
	echo := newEcho(t)
	proxy := newProxy(t, echo.URL, Plan{SlowLoris: 200 * time.Millisecond}, 1)

	begin := time.Now()
	resp, err := http.Get(proxy.URL + "/drip")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(body), "echo:GET:/drip") {
		t.Fatalf("trickled body %q", body)
	}
	if elapsed := time.Since(begin); elapsed < 150*time.Millisecond {
		t.Errorf("slow-loris body arrived in %v, want a trickle", elapsed)
	}
}

// TestProxyMetrics: with a registry attached, the proxy's counters are
// scrapable — requests, forwards, proxied bytes, and injected faults by
// behavior — and the rendered exposition parses back cleanly.
func TestProxyMetrics(t *testing.T) {
	echo := newEcho(t)
	pr, err := New(echo.URL, Plan{Flaky: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	pr.SetMetrics(m)
	ts := httptest.NewServer(pr)
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/flaky")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := m.Value(obs.MetricChaosRequests); got != 3 {
		t.Errorf("%s = %d, want 3", obs.MetricChaosRequests, got)
	}
	if got := m.Value(obs.MetricChaosInjected, obs.L("behavior", "flaked")); got != 3 {
		t.Errorf(`%s{behavior="flaked"} = %d, want 3`, obs.MetricChaosInjected, got)
	}
	if got := m.Value(obs.MetricChaosForwarded); got != 0 {
		t.Errorf("flaky=1 forwarded %d requests", got)
	}

	// A transparent proxy forwards and counts bytes.
	prt, _ := New(echo.URL, Plan{}, 1)
	mt := obs.NewMetrics()
	prt.SetMetrics(mt)
	tst := httptest.NewServer(prt)
	t.Cleanup(tst.Close)
	resp, err := http.Get(tst.URL + "/bytes")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := mt.Value(obs.MetricChaosBytes); got != int64(len(body)) {
		t.Errorf("%s = %d, want %d", obs.MetricChaosBytes, got, len(body))
	}

	var sb strings.Builder
	if err := mt.Render(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("proxy /metrics is not valid exposition: %v", err)
	}
	for _, name := range []string{obs.MetricChaosRequests, obs.MetricChaosForwarded, obs.MetricChaosBytes} {
		if _, ok := fams[name]; !ok {
			t.Errorf("family %s missing from exposition", name)
		}
	}
}
