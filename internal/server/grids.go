// POST /v1/grids: batched grid submission with streamed per-run progress.
//
// A grid is the natural unit of work for this service — the paper's
// figures are sweeps of hundreds of (workload, scale, htm, hints, smt)
// points — so the API accepts them in one request and answers with an
// NDJSON event stream: one "accepted" line, one "run" line per submitted
// spec, one final "done" line with totals. Lines flush as they are
// produced, so a client watching the stream sees progress in real time
// on a cold grid and an instant answer on a warm one.
//
// Determinism: run events are emitted in submission-index order — a
// completion for index i buffers until every index below i has been
// reported (a ratchet). Runs still *execute* concurrently in whatever
// order the scheduler picks; only the reporting is ordered. Given equal
// store state, two submissions of the same grid therefore produce
// byte-identical streams, which the stream-determinism test asserts
// under -race.
package server

import (
	"encoding/json"
	"net/http"
	"time"

	"hintm/internal/api"
	"hintm/internal/harness"
	"hintm/internal/obs"
)

func (s *Server) handleGrids(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter(obs.MetricServeRequests).Inc()
	if !s.checkVersion(w, r) {
		return
	}
	var body api.GridRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.writeError(w, r, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	if e := checkSchema(body.Schema); e != nil {
		s.writeError(w, r, http.StatusBadRequest, e)
		return
	}
	if len(body.Requests) == 0 {
		s.writeError(w, r, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "empty grid: requests is required"))
		return
	}
	if len(body.Requests) > MaxGridRuns {
		e := api.Errorf(api.CodeBadRequest, "grid of %d runs exceeds the %d-run limit", len(body.Requests), MaxGridRuns)
		e.Detail = "split the submission"
		s.writeError(w, r, http.StatusBadRequest, e)
		return
	}
	reqs, perr := s.parseAll(body.Requests)
	if perr != nil {
		s.writeError(w, r, http.StatusBadRequest, perr)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.writeError(w, r, http.StatusServiceUnavailable,
			api.Errorf(api.CodeDraining, "server is draining; no new work accepted"))
		return
	}
	admitBegin := time.Now()
	if !s.admit(len(reqs)) {
		s.throttle(w, r, len(reqs))
		return
	}
	admitWait := time.Since(admitBegin)

	w.Header().Set(api.Header, api.Schema)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w) // one compact JSON value per line
	flusher, _ := w.(http.Flusher)
	emit := func(ev api.GridEvent) {
		ev.Schema = api.Schema
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(api.GridEvent{Event: "accepted", Total: len(reqs)})

	// Fan out: every run resolves concurrently (the scheduler's worker
	// pool bounds actual simulation parallelism, and single-flight dedup
	// collapses duplicate specs within the grid).
	results := make(chan api.GridRun)
	for i, req := range reqs {
		go func(i int, req harness.Request) {
			rs := s.resolve(r.Context(), req, admitWait)
			s.release(1)
			results <- api.GridRun{Index: i, RunStatus: rs}
		}(i, req)
	}

	// Ratchet: report in index order regardless of completion order.
	pending := make(map[int]api.GridRun, len(reqs))
	next := 0
	summary := api.GridSummary{Total: len(reqs)}
	for received := 0; received < len(reqs); received++ {
		gr := <-results
		pending[gr.Index] = gr
		for {
			g, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			switch {
			case g.Status == "hit" && g.Source == "peer":
				summary.PeerHits++
			case g.Status == "hit":
				summary.Hits++
			case g.Status == "done":
				summary.Simulated++
			default:
				summary.Failed++
			}
			run := g
			emit(api.GridEvent{Event: "run", Run: &run})
		}
	}
	emit(api.GridEvent{Event: "done", Summary: &summary})
}
