package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hintm/internal/harness"
	"hintm/internal/obs"
	"hintm/internal/store"
)

// memTransport routes peer HTTP calls to in-process handlers by fixed fake
// URL ("http://node0", ...). Unlike httptest servers — whose random ports
// would give two fleets different node names and therefore different ring
// placements — fixed URLs make two independently built fleets byte-identical
// in placement, which the trace determinism test requires.
type memTransport struct {
	handlers map[string]http.Handler
}

func (mt *memTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := mt.handlers["http://"+req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("memTransport: unknown node %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// newMemFleet builds an n-node fleet on fixed in-process URLs. The returned
// client routes any request (to any node) through the shared transport.
func newMemFleet(t *testing.T, n int) (servers []*Server, urls []string, client *http.Client) {
	t.Helper()
	mt := &memTransport{handlers: make(map[string]http.Handler)}
	client = &http.Client{Transport: mt}
	for i := 0; i < n; i++ {
		urls = append(urls, fmt.Sprintf("http://node%d", i))
	}
	for i := 0; i < n; i++ {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts := harness.QuickOptions()
		opts.Filter = []string{"labyrinth"}
		s := New(Config{
			Store: st, Options: opts, Metrics: obs.NewMetrics(),
			Fleet: FleetConfig{Self: urls[i], Peers: urls, Replicas: 2, Client: client},
		})
		mt.handlers[urls[i]] = s.Handler()
		servers = append(servers, s)
	}
	return servers, urls, client
}

// memPost submits one run through the in-process transport.
func memPost(t *testing.T, client *http.Client, url, body string) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/v1/runs?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := readAll(resp.Body, maxReplicaBytes)
	return resp.StatusCode, raw
}

// memGet fetches a URL through the in-process transport.
func memGet(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := readAll(resp.Body, maxReplicaBytes)
	return resp.StatusCode, raw
}

func decodeTrace(t *testing.T, raw []byte) obs.TraceDoc {
	t.Helper()
	var doc obs.TraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace does not decode: %v\n%s", err, raw)
	}
	if doc.Schema != obs.TraceSchema {
		t.Fatalf("trace schema = %q", doc.Schema)
	}
	return doc
}

func spanKinds(spans []obs.Span) map[string]int {
	kinds := map[string]int{}
	for _, s := range spans {
		kinds[s.Kind]++
	}
	return kinds
}

// TestFleetTraceColdWarmStructure is the tentpole's end-to-end assertion:
// a cold cross-node request's assembled trace shows every phase (including
// the remote peer.serve and repl.recv halves), and a warm request's trace
// has no simulate span.
func TestFleetTraceColdWarmStructure(t *testing.T) {
	servers, urls, client := newMemFleet(t, 3)

	code, raw := memPost(t, client, urls[0], labyrinthSmall)
	if code != http.StatusOK {
		t.Fatalf("cold submit: %d\n%s", code, raw)
	}
	var out struct {
		Runs []struct{ Key, Status string } `json:"runs"`
	}
	json.Unmarshal(raw, &out)
	key := out.Runs[0].Key
	quiesceFleet(t, servers)

	code, raw = memGet(t, client, urls[0]+"/v1/traces/"+key)
	if code != http.StatusOK {
		t.Fatalf("cold trace: %d\n%s", code, raw)
	}
	cold := decodeTrace(t, raw)
	kinds := spanKinds(cold.Spans)
	for _, want := range []string{obs.SpanRequest, obs.SpanAdmission, obs.SpanStoreGet, obs.SpanSimulate, obs.SpanReplEnqueue, obs.SpanReplPush, obs.SpanReplRecv} {
		if kinds[want] == 0 {
			t.Errorf("cold trace missing %s span (kinds %v)", want, kinds)
		}
	}
	if kinds[obs.SpanSimulate] != 1 {
		t.Errorf("cold trace has %d simulate spans, want 1", kinds[obs.SpanSimulate])
	}
	// The repl.recv spans are the remote halves: hop 1, on a node that is
	// not the origin, linked to a repl.push parent on the origin node.
	remote := 0
	for _, s := range cold.Spans {
		if s.Kind == obs.SpanReplRecv {
			remote++
			if s.Hop != 1 || s.Node == urls[0] || s.ParentNode != urls[0] {
				t.Errorf("repl.recv linkage wrong: %+v", s)
			}
		}
	}
	if remote == 0 {
		t.Error("no remote spans assembled")
	}

	// Warm on a node that does not hold the key locally: the peer-fetch path
	// produces a peer.fetch/peer.serve pair and — crucially — no simulate.
	warmNode := -1
	for i, s := range servers {
		if !s.store.Contains(key) {
			warmNode = i
			break
		}
	}
	if warmNode >= 0 {
		code, raw = memPost(t, client, urls[warmNode], labyrinthSmall)
		if code != http.StatusOK {
			t.Fatalf("warm submit: %d\n%s", code, raw)
		}
		code, raw = memGet(t, client, urls[warmNode]+"/v1/traces/"+key)
		if code != http.StatusOK {
			t.Fatalf("warm trace: %d\n%s", code, raw)
		}
		warm := decodeTrace(t, raw)
		wkinds := spanKinds(warm.Spans)
		if wkinds[obs.SpanSimulate] != 0 {
			t.Errorf("warm trace simulated: kinds %v", wkinds)
		}
		if wkinds[obs.SpanPeerFetch] == 0 || wkinds[obs.SpanPeerServe] == 0 {
			t.Errorf("warm peer-fetch trace missing fetch/serve pair: kinds %v", wkinds)
		}
		if warm.Root == cold.Root && warmNode == 0 {
			t.Errorf("warm run did not root a new execution: %s", warm.Root)
		}
	}

	// A warm store hit on the origin node is its own (later) root execution
	// with just request/admission/store.get.
	code, raw = memPost(t, client, urls[0], labyrinthSmall)
	if code != http.StatusOK {
		t.Fatalf("warm resubmit: %d", code)
	}
	code, raw = memGet(t, client, urls[0]+"/v1/traces/"+key)
	if code != http.StatusOK {
		t.Fatalf("warm trace on origin: %d", code)
	}
	hit := decodeTrace(t, raw)
	if hit.Root == cold.Root {
		t.Errorf("resubmission reused root %s", hit.Root)
	}
	hkinds := spanKinds(hit.Spans)
	if hkinds[obs.SpanSimulate] != 0 || hkinds[obs.SpanStoreGet] != 1 {
		t.Errorf("warm-hit trace kinds: %v", hkinds)
	}
	for _, s := range hit.Spans {
		if s.Kind == obs.SpanStoreGet && s.Detail != "hit" {
			t.Errorf("warm store.get detail = %q", s.Detail)
		}
	}
}

// TestFleetTraceDeterministic builds two independent fleets on identical
// node URLs, runs the identical seeded request through each, and requires
// the canonical assembled traces to be byte-identical — the acceptance
// criterion for deterministic trace identity.
func TestFleetTraceDeterministic(t *testing.T) {
	var docs [][]byte
	for fleet := 0; fleet < 2; fleet++ {
		servers, urls, client := newMemFleet(t, 3)
		code, raw := memPost(t, client, urls[0], labyrinthSmall)
		if code != http.StatusOK {
			t.Fatalf("fleet %d submit: %d\n%s", fleet, code, raw)
		}
		var out struct {
			Runs []struct{ Key string } `json:"runs"`
		}
		json.Unmarshal(raw, &out)
		quiesceFleet(t, servers)
		code, doc := memGet(t, client, urls[0]+"/v1/traces/"+out.Runs[0].Key+"?canon=1")
		if code != http.StatusOK {
			t.Fatalf("fleet %d trace: %d\n%s", fleet, code, doc)
		}
		docs = append(docs, doc)
	}
	if !bytes.Equal(docs[0], docs[1]) {
		t.Errorf("canonical traces differ across identical fleets:\n%s\nvs\n%s", docs[0], docs[1])
	}
}

// TestTraceBreakdownCoverage runs one cold request and requires the
// origin-node spans to attribute (nearly) all of the root's wall time to
// named phases — the report's "where did the time go" guarantee.
func TestTraceBreakdownCoverage(t *testing.T) {
	servers, urls, client := newMemFleet(t, 3)
	code, raw := memPost(t, client, urls[0], labyrinthSmall)
	if code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	var out struct {
		Runs []struct{ Key string } `json:"runs"`
	}
	json.Unmarshal(raw, &out)
	quiesceFleet(t, servers)
	_, doc := memGet(t, client, urls[0]+"/v1/traces/"+out.Runs[0].Key)
	b := obs.Breakdown(decodeTrace(t, doc).Spans)
	if b.TotalUs <= 0 {
		t.Fatalf("no root duration: %+v", b)
	}
	if cov := b.Coverage(); cov < 0.98 {
		t.Errorf("coverage = %.4f, want >= 0.98 (phases %v)", cov, b.Phases)
	}
	if b.Phases["sim"] == 0 || b.Phases["store"] == 0 {
		t.Errorf("phase attribution empty: %v", b.Phases)
	}
}

// TestTraceDisabledAndUnknown pins the degraded paths: tracing disabled
// (negative capacity) 404s, an untraced key 404s, and a ?local shard query
// for an unknown root returns an empty span list.
func TestTraceDisabledAndUnknown(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := harness.QuickOptions()
	opts.Filter = []string{"labyrinth"}
	s := New(Config{Store: st, Options: opts, Metrics: obs.NewMetrics(), TraceCapacity: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if s.traces != nil {
		t.Fatal("negative TraceCapacity did not disable tracing")
	}
	resp, err := http.Get(ts.URL + "/v1/traces/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled tracing: %d, want 404", resp.StatusCode)
	}

	_, ts2, _ := newTestServer(t, t.TempDir())
	resp, err = http.Get(ts2.URL + "/v1/traces/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts2.URL + "/v1/traces/" + strings.Repeat("ab", 32) + "?local=1&root=x%231")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp.Body, 1<<20)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("local shard for unknown root: %d", resp.StatusCode)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil || doc.Spans == nil || len(doc.Spans) != 0 {
		t.Errorf("unknown-root shard: %s", raw)
	}
}

// TestMetricsOnlyDeclaredNames scrapes a busy server's /metrics and asserts
// every family is centrally declared and the exposition parses — the
// metric-name hygiene gate.
func TestMetricsOnlyDeclaredNames(t *testing.T) {
	servers, urls, client := newMemFleet(t, 3)
	memPost(t, client, urls[0], labyrinthSmall)
	quiesceFleet(t, servers)
	memPost(t, client, urls[1], labyrinthSmall)

	for i, u := range urls {
		code, raw := memGet(t, client, u+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("node %d /metrics: %d", i, code)
		}
		fams, err := obs.ParseText(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("node %d /metrics does not parse: %v\n%s", i, err, raw)
		}
		for name, fam := range fams {
			def, ok := obs.Lookup(name)
			if !ok {
				t.Errorf("node %d exports undeclared metric %q", i, name)
				continue
			}
			if string(def.Type) != fam.Type {
				t.Errorf("node %d metric %s: exposition type %q, declared %q", i, name, fam.Type, def.Type)
			}
		}
	}

	// The origin node observed request latencies server-side: the labeled
	// histogram must be present and internally consistent.
	_, raw := memGet(t, client, urls[0]+"/metrics")
	fams, _ := obs.ParseText(bytes.NewReader(raw))
	reqHist := fams[obs.MetricServeRequestSec]
	if reqHist == nil {
		t.Fatal("serve_request_seconds missing after traffic")
	}
	hs, err := reqHist.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Count == 0 {
		t.Error("serve_request_seconds recorded nothing")
	}
}

// TestHealthzBuildInfoUptime pins the /healthz additions.
func TestHealthzBuildInfoUptime(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	time.Sleep(10 * time.Millisecond)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		UptimeSeconds *int64            `json:"uptimeSeconds"`
		BuildInfo     map[string]string `json:"buildInfo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.UptimeSeconds == nil || *health.UptimeSeconds < 0 {
		t.Errorf("uptimeSeconds missing or negative: %v", health.UptimeSeconds)
	}
	if health.BuildInfo["goVersion"] == "" {
		t.Errorf("buildInfo.goVersion missing: %v", health.BuildInfo)
	}
}
