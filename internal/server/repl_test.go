package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hintm/internal/api"
	"hintm/internal/harness"
	"hintm/internal/obs"
	"hintm/internal/store"
)

// TestReplicationDropOldest pins the queue's overflow policy: never block,
// drop the oldest item, count the drop, keep the depth gauge honest. The
// replicator is built without workers so the queue state is inspectable.
func TestReplicationDropOldest(t *testing.T) {
	s, _, m := newTestServer(t, t.TempDir())
	r := &replicator{s: s, limit: 2}
	r.cond = sync.NewCond(&r.mu)

	for _, key := range []string{"first", "second", "third"} {
		r.enqueue(replItem{key: key, nodes: []string{"http://peer"}})
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.queue) != 2 || r.queue[0].key != "second" || r.queue[1].key != "third" {
		t.Fatalf("queue after overflow: %+v, want [second third]", r.queue)
	}
	if got := m.Value("fleet_repl_dropped_total"); got != 1 {
		t.Errorf("fleet_repl_dropped_total = %d, want 1", got)
	}
	if got := m.Value("fleet_repl_queue_depth"); got != 2 {
		t.Errorf("fleet_repl_queue_depth = %d, want 2", got)
	}
	// Items with no targets are not queued at all.
	r.mu.Unlock()
	r.enqueue(replItem{key: "no-targets"})
	r.mu.Lock()
	if len(r.queue) != 2 {
		t.Errorf("empty-target item was queued")
	}
}

// TestReplicationSurvivesClientDisconnect is the regression test for the
// base-context rule: replication must run on the server's base context, so
// a client that disconnects the instant its response is ready cannot cancel
// the forward to the key's owners.
func TestReplicationSurvivesClientDisconnect(t *testing.T) {
	servers, _, _, _ := newFleet(t, 2)
	a, b := servers[0], servers[1]

	req, err := a.parse(api.RunSpec{Workload: "labyrinth", Scale: "small", HTM: "p8", Hints: "full"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rs := a.resolve(ctx, req, 0)
	cancel() // the client is gone the moment the response exists
	if rs.Status != "done" {
		t.Fatalf("cold resolve: %+v", rs)
	}

	quiesceFleet(t, servers)
	// Two nodes, two replicas: B owns every key, so the forward must have
	// landed there despite the cancelled request context.
	if !b.store.Contains(rs.Key) {
		t.Fatal("replication died with the client connection; key missing on the peer")
	}
}

// TestAntiEntropyRepairsEmptyNode: a node that restarts with an empty store
// converges back to the warm state the ring promises via its peers' sweeps
// — without any node simulating anything again.
func TestAntiEntropyRepairsEmptyNode(t *testing.T) {
	servers, urls, metrics, handlers := newFleet(t, 3)

	code, _, events := postGrid(t, urls[0], smallGrid)
	if code != http.StatusOK {
		t.Fatalf("cold grid: %d", code)
	}
	checkGridEvents(t, events, 4)
	quiesceFleet(t, servers)
	coldSims := fleetSimRuns(metrics)

	// "Restart" node C with a fresh, empty store. newFleet's handler
	// indirection makes the swap invisible to A and B: same URL, new server.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := harness.QuickOptions()
	opts.Filter = []string{"labyrinth"}
	mC := obs.NewMetrics()
	fresh := New(Config{
		Store: st, Options: opts, Metrics: mC,
		Fleet: FleetConfig{Self: urls[2], Peers: urls, Replicas: 2},
	})
	handlers[2] = fresh.Handler()
	servers[2] = fresh

	// A and B sweep; every key C owns but lost is re-replicated to it.
	repaired := servers[0].Sweep(context.Background()) + servers[1].Sweep(context.Background())
	quiesceFleet(t, servers[:2])

	wantOnC := 0
	for _, src := range servers[:2] {
		for _, ie := range src.store.List() {
			for _, owner := range src.ring.Owners(ie.Key, 2) {
				if owner == urls[2] {
					if !fresh.store.Contains(ie.Key) {
						t.Errorf("key %s owned by the restarted node was not repaired", ie.Key)
					}
					wantOnC++
				}
			}
		}
	}
	if wantOnC == 0 {
		// 4 grid cells across a 3-node ring with 2 replicas: statistically
		// C owns some key; if the ring placement ever changes such that it
		// owns none, this test needs a bigger grid, not a pass.
		t.Fatal("restarted node owns no keys; grid too small to exercise repair")
	}
	if repaired == 0 {
		t.Errorf("Sweep reported 0 repaired keys")
	}
	if got := metrics[0].Value("fleet_repair_keys_total") + metrics[1].Value("fleet_repair_keys_total"); got == 0 {
		t.Errorf("fleet_repair_keys_total not incremented on the sweeping nodes")
	}
	if got := metrics[0].Value("fleet_antientropy_sweeps_total"); got != 1 {
		t.Errorf("fleet_antientropy_sweeps_total on A = %d, want 1", got)
	}

	// The repair moved stored bytes, not simulations: the fleet-wide sim
	// count is unchanged and the revived node never ran the simulator.
	if got := fleetSimRuns(metrics[:2]) + mC.Value("runner_sim_runs_total"); got != coldSims {
		t.Errorf("repair ran %d extra simulations, want 0", got-coldSims)
	}

	// And a second sweep finds nothing to do: the fleet has converged.
	if again := servers[0].Sweep(context.Background()); again != 0 {
		t.Errorf("second sweep repaired %d keys, want 0", again)
	}
}

// TestRetryAfterScalesWithPressure pins the 429 hint computation and its
// clamps (satellite: no more hardcoded "1").
func TestRetryAfterScalesWithPressure(t *testing.T) {
	cases := []struct {
		load, submitted, limit, want int
	}{
		{0, 1, 0, 1},      // unlimited queue: constant floor
		{2, 1, 16, 1},     // under the limit: come right back
		{16, 1, 16, 1},    // barely over: ceil(10/16) = 1
		{16, 16, 16, 10},  // a full queue's worth of excess: ~10s
		{16, 160, 16, 30}, // absurd burst: clamped
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.load, tc.submitted, tc.limit); got != tc.want {
			t.Errorf("retryAfterSeconds(%d,%d,%d) = %d, want %d",
				tc.load, tc.submitted, tc.limit, got, tc.want)
		}
	}

	// End to end: a throttled response's Retry-After parses as an integer
	// ≥ 1 and grows with the queue's excess.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := harness.QuickOptions()
	opts.Filter = []string{"labyrinth"}
	s := New(Config{Store: st, Options: opts, Metrics: obs.NewMetrics(), QueueLimit: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	s.mu.Lock()
	s.inflight["fake-1"], s.inflight["fake-2"] = true, true
	s.mu.Unlock()
	single := throttledRetryAfter(t, ts.URL+"/v1/runs", labyrinthSmall)
	bulk := throttledRetryAfter(t, ts.URL+"/v1/grids",
		`{"requests":[`+strings.Repeat(labyrinthSmall+",", 19)+labyrinthSmall+`]}`)
	if single < 1 || bulk < 1 {
		t.Fatalf("Retry-After below 1: single=%d bulk=%d", single, bulk)
	}
	if bulk <= single {
		t.Errorf("Retry-After did not scale with pressure: single=%d bulk=%d", single, bulk)
	}
}

func throttledRetryAfter(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("%s: %d, want 429", url, resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	return secs
}

// TestHealthzFleetView: a fleet node's /healthz carries the resilience
// view — breaker states, replication queue depth, repair counters, last
// sweep — so an operator (and the chaos smoke script) can watch recovery.
func TestHealthzFleetView(t *testing.T) {
	servers, urls, _, _ := newFleet(t, 2)

	// Warm the breaker map with one real peer interaction.
	code, out := postRuns(t, wrapURL(urls[0]), "?wait=1", labyrinthSmall)
	if code != http.StatusOK || out.Runs[0].Status != "done" {
		t.Fatalf("cold submit: %d %+v", code, out)
	}
	quiesceFleet(t, servers)
	if n := servers[0].Sweep(context.Background()); n != 0 {
		t.Fatalf("sweep after quiesce repaired %d keys, want 0", n)
	}

	resp, err := http.Get(urls[0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status string `json:"status"`
		Fleet  *struct {
			Breakers           map[string]string `json:"breakers"`
			ReplicationQueue   int               `json:"replicationQueue"`
			ReplicationDropped int64             `json:"replicationDropped"`
			RepairedKeys       int64             `json:"repairedKeys"`
			Sweeps             int64             `json:"sweeps"`
			LastSweep          string            `json:"lastSweep"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Fleet == nil {
		t.Fatalf("healthz: %+v", hz)
	}
	if state, ok := hz.Fleet.Breakers[urls[1]]; ok && state != "closed" {
		t.Errorf("peer breaker state %q, want closed", state)
	}
	if hz.Fleet.ReplicationQueue != 0 {
		t.Errorf("replicationQueue = %d after quiesce", hz.Fleet.ReplicationQueue)
	}
	if hz.Fleet.Sweeps != 1 {
		t.Errorf("sweeps = %d, want 1", hz.Fleet.Sweeps)
	}
	if _, err := time.Parse(time.RFC3339, hz.Fleet.LastSweep); err != nil {
		t.Errorf("lastSweep %q: %v", hz.Fleet.LastSweep, err)
	}
}

// TestDrainFlushesReplication: graceful drain must push queued forwards out
// before the process exits, so a rolling restart does not strand fresh
// results on the node that computed them.
func TestDrainFlushesReplication(t *testing.T) {
	servers, _, _, _ := newFleet(t, 2)
	a, b := servers[0], servers[1]

	req, err := a.parse(api.RunSpec{Workload: "labyrinth", Scale: "small", HTM: "p8", Hints: "dyn"})
	if err != nil {
		t.Fatal(err)
	}
	rs := a.resolve(context.Background(), req, 0)
	if rs.Status != "done" {
		t.Fatalf("cold resolve: %+v", rs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !b.store.Contains(rs.Key) {
		t.Error("drain exited with the forward still queued")
	}
}
