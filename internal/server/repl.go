// Async replication and anti-entropy repair: how a result computed on one
// node reaches the key's ring owners without the request path paying for it.
//
// Replication used to run inline in resolve — a cold request waited for up
// to replicas × peer-timeout of PUT traffic before answering, and a dead
// peer made every cold request slow. It now runs through a bounded
// in-process queue drained by background workers: resolve enqueues the key
// and answers immediately; workers PUT the object bytes to each owner with
// retry + backoff on the server's base context (a client disconnect cannot
// cancel replication mid-flight); under overflow the oldest item is dropped
// (counted) rather than blocking, because anti-entropy will repair it.
//
// Anti-entropy is the background sweep that makes replication self-healing:
// walk the local store index, compute each key's ring owners, ask each
// healthy owner whether it has the key (a HEAD on the peer's ?local=1
// path), and enqueue a repair replication for the ones that miss. A node
// that crashed, restarted empty, or joined late converges to the warm state
// the ring promises — without simulating anything — as soon as its peers'
// sweeps find it reachable again.
package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hintm/internal/obs"
)

// Replication defaults: queue capacity, worker count, per-PUT attempts.
const (
	defaultReplQueue   = 1024
	defaultReplWorkers = 2
	replAttempts       = 3
	replRetryBackoff   = 50 * time.Millisecond
)

// replItem is one queued replication: push key's object bytes to nodes.
// sc is the originating trace's span context (zero = untraced), so the
// async pushes record into the trace of the request that produced the
// result.
type replItem struct {
	key   string
	nodes []string
	sc    obs.SpanContext
}

// replicator is the bounded queue plus its worker pool.
type replicator struct {
	s     *Server
	limit int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []replItem
	closed bool
	busy   int // workers mid-item

	wg sync.WaitGroup
}

func newReplicator(s *Server, limit, workers int) *replicator {
	if limit <= 0 {
		limit = defaultReplQueue
	}
	if workers <= 0 {
		workers = defaultReplWorkers
	}
	r := &replicator{s: s, limit: limit}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

// enqueue queues one replication. Never blocks: when the queue is full the
// oldest item is dropped (and counted) — a dropped forward costs a future
// peer fetch a miss until anti-entropy repairs it, never correctness.
func (r *replicator) enqueue(it replItem) {
	if len(it.nodes) == 0 {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if len(r.queue) >= r.limit {
		r.queue = r.queue[1:]
		r.s.metrics.Counter(obs.MetricReplDropped).Inc()
	}
	r.queue = append(r.queue, it)
	r.s.metrics.Counter(obs.MetricReplQueueDepth).Set(int64(len(r.queue) + r.busy))
	// Broadcast, not Signal: quiesce waiters share the cond, and waking one
	// of them instead of a worker would strand the item.
	r.cond.Broadcast()
	r.mu.Unlock()
}

// depth reports queued plus in-flight replications.
func (r *replicator) depth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queue) + r.busy
}

func (r *replicator) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if len(r.queue) == 0 && r.closed {
			r.mu.Unlock()
			return
		}
		it := r.queue[0]
		r.queue = r.queue[1:]
		r.busy++
		r.s.metrics.Counter(obs.MetricReplQueueDepth).Set(int64(len(r.queue) + r.busy))
		r.mu.Unlock()

		r.process(it)

		r.mu.Lock()
		r.busy--
		r.s.metrics.Counter(obs.MetricReplQueueDepth).Set(int64(len(r.queue) + r.busy))
		if len(r.queue) == 0 && r.busy == 0 {
			r.cond.Broadcast() // wake quiesce/drain waiters
		}
		r.mu.Unlock()
	}
}

// process pushes one key to its target nodes with bounded retry + backoff,
// on the server's base context — replication outlives the request that
// produced the result.
func (r *replicator) process(it replItem) {
	s := r.s
	// Rejoin the originating trace (same node, so this finds the existing
	// buffer); nil when the item is untraced or the trace was evicted.
	tr := s.traces.Join(it.sc)
	_, raw, err := s.store.Get(it.key)
	if err != nil || raw == nil {
		return // evicted or quarantined since enqueue: nothing to push
	}
	for _, node := range it.nodes {
		if !s.health.Ready(node) {
			// Open breaker: the peer is down; anti-entropy repairs it after
			// the breaker closes. Don't burn retries proving it again.
			s.metrics.Counter(obs.MetricReplSkipped).Inc()
			continue
		}
		s.metrics.Counter(obs.MetricForwards).Inc()
		sid := tr.StartPeer(it.sc.Parent, obs.SpanReplPush, node)
		begin := time.Now()
		ok := r.pushWithRetry(node, it.key, raw, tr.Context(sid))
		if ok {
			tr.End(sid, "pushed", nil)
			s.observePhase("replication", "ok", time.Since(begin))
		} else {
			tr.End(sid, "failed", nil)
			s.observePhase("replication", "error", time.Since(begin))
			s.metrics.Counter(obs.MetricForwardErrors).Inc()
		}
	}
}

func (r *replicator) pushWithRetry(node, key string, raw []byte, sc obs.SpanContext) bool {
	s := r.s
	backoff := replRetryBackoff
	for attempt := 0; attempt < replAttempts; attempt++ {
		if attempt > 0 {
			s.metrics.Counter(obs.MetricReplRetries).Inc()
			select {
			case <-time.After(backoff):
			case <-s.baseCtx.Done():
				return false
			}
			backoff *= 2
		}
		ctx, cancel := context.WithTimeout(s.baseCtx, defaultPeerTimeout)
		begin := time.Now()
		err := s.replicateTo(ctx, node, key, raw, sc)
		cancel()
		if s.baseCtx.Err() != nil {
			return false
		}
		s.health.Report(node, err == nil, time.Since(begin))
		if err == nil {
			return true
		}
		if !s.health.Ready(node) {
			return false // the failures opened the breaker; stop retrying
		}
	}
	return false
}

// quiesce blocks until the queue is empty and no worker is mid-item, or ctx
// expires. Tests and graceful drain use it; it does not stop the workers.
func (r *replicator) quiesce(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		r.mu.Lock()
		for (len(r.queue) > 0 || r.busy > 0) && !r.closed {
			r.cond.Wait()
		}
		r.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close marks the queue closed and waits for the workers to finish what is
// already queued. Call after the last enqueue (post-drain).
func (r *replicator) close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}

// ---- anti-entropy ------------------------------------------------------

// sweepLoop runs Sweep every interval until the server stops. The first
// sweep waits one full interval, so a freshly-booted node's peers get a
// chance to come up before being probed.
func (s *Server) sweepLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-t.C:
			s.Sweep(s.baseCtx)
		}
	}
}

// Sweep walks the local store index once and enqueues a repair replication
// for every (key, owner) pair where a healthy owner is missing the key. It
// returns how many keys were enqueued for repair. Exported so tests and
// operators can force a sweep; the background loop calls it on a timer.
func (s *Server) Sweep(ctx context.Context) int {
	if s.ring == nil {
		return 0
	}
	s.metrics.Counter(obs.MetricAntiEntropySweep).Inc()
	repaired := 0
	for _, ie := range s.store.List() {
		if ctx.Err() != nil {
			break
		}
		var missing []string
		for _, node := range s.ring.Owners(ie.Key, s.replicas) {
			if node == s.self || !s.health.Ready(node) {
				continue
			}
			has, err := s.peerHas(ctx, node, ie.Key)
			if err != nil {
				continue // unreachable: the breaker bookkeeping handles it
			}
			if !has {
				missing = append(missing, node)
			}
		}
		if len(missing) > 0 {
			repaired++
			s.metrics.Counter(obs.MetricRepairKeys).Inc()
			// Each repaired key roots its own trace: anti-entropy work has no
			// originating request, but its pushes should still be visible in
			// GET /v1/traces/{key}.
			tr := s.traces.Root(ie.Key)
			rid := tr.Start(0, obs.SpanRepair)
			s.repl.enqueue(replItem{key: ie.Key, nodes: missing, sc: tr.Context(rid)})
			tr.End(rid, "enqueued", nil)
		}
	}
	atomic.StoreInt64(&s.lastSweepUnix, time.Now().Unix())
	return repaired
}

// peerHas asks node whether it holds key locally: a HEAD on the ?local=1
// lookup path, so the check moves headers, not object bytes, and never
// cascades.
func (s *Server) peerHas(ctx context.Context, node, key string) (bool, error) {
	ctx, cancel := context.WithTimeout(ctx, defaultPeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, node+"/v1/runs/"+key+"?local=1", nil)
	if err != nil {
		return false, err
	}
	begin := time.Now()
	resp, err := s.peerHTTP.Do(req)
	s.health.Report(node, err == nil, time.Since(begin))
	if err != nil {
		return false, err
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK, nil
}
