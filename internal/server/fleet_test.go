package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hintm/internal/api"
	"hintm/internal/harness"
	"hintm/internal/obs"
	"hintm/internal/store"
)

// newFleet spins up n servers with separate stores that share one peer
// list, so they form a consistent-hash fleet. The handler indirection
// breaks the chicken-and-egg between knowing every node's URL and
// constructing the servers — and lets a test swap handlers[i] to simulate
// node i restarting behind a stable address.
func newFleet(t *testing.T, n int) (servers []*Server, urls []string, metrics []*obs.Metrics, handlers []http.Handler) {
	t.Helper()
	handlers = make([]http.Handler, n)
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handlers[i].ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts := harness.QuickOptions()
		opts.Filter = []string{"labyrinth"}
		m := obs.NewMetrics()
		s := New(Config{
			Store: st, Options: opts, Metrics: m,
			Fleet: FleetConfig{Self: urls[i], Peers: urls, Replicas: 2},
		})
		handlers[i] = s.Handler()
		servers = append(servers, s)
		metrics = append(metrics, m)
	}
	return servers, urls, metrics, handlers
}

func fleetSimRuns(metrics []*obs.Metrics) (total int64) {
	for _, m := range metrics {
		total += m.Value("runner_sim_runs_total")
	}
	return total
}

// quiesceFleet waits for every node's async replication queue to drain, so
// a warm-phase assertion runs against settled stores.
func quiesceFleet(t *testing.T, servers []*Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, s := range servers {
		if s.repl == nil {
			continue
		}
		if err := s.repl.quiesce(ctx); err != nil {
			t.Fatalf("node %d replication never quiesced: %v", i, err)
		}
	}
}

// TestFleetColdOnAWarmOnB is the sharded fleet's acceptance test: a run
// simulated on node A is a warm hit on node B via peer fetch, the served
// bytes are identical on every node, and the warm path never simulates
// anywhere in the fleet.
func TestFleetColdOnAWarmOnB(t *testing.T) {
	servers, urls, metrics, _ := newFleet(t, 3)

	code, out := postRuns(t, wrapURL(urls[0]), "?wait=1", labyrinthSmall)
	if code != http.StatusOK || out.Runs[0].Status != "done" || out.Runs[0].Source != "sim" {
		t.Fatalf("cold submit to A: code=%d run=%+v", code, out.Runs[0])
	}
	key := out.Runs[0].Key
	// Replication is async now: let the forward land before the warm phase.
	quiesceFleet(t, servers)
	coldSims := fleetSimRuns(metrics)
	if coldSims == 0 {
		t.Fatal("cold submit simulated nothing")
	}

	// The same spec submitted to B answers warm — from B's store (if the
	// forward already landed there) or via peer fetch — without any node
	// simulating again.
	code, out = postRuns(t, wrapURL(urls[1]), "?wait=1", labyrinthSmall)
	if code != http.StatusOK || out.Runs[0].Status != "hit" {
		t.Fatalf("warm submit to B: code=%d run=%+v, want hit", code, out.Runs[0])
	}
	if out.Runs[0].Source != "store" && out.Runs[0].Source != "peer" {
		t.Fatalf("warm submit source = %q", out.Runs[0].Source)
	}
	if got := fleetSimRuns(metrics); got != coldSims {
		t.Fatalf("warm submit ran %d extra simulations across the fleet", got-coldSims)
	}

	// Every node serves byte-identical object bytes for the key.
	var bodies [][]byte
	for i, u := range urls {
		resp, err := http.Get(u + "/v1/runs/" + key)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAll(resp.Body, maxReplicaBytes)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d GET: %d", i, resp.StatusCode)
		}
		src := resp.Header.Get(api.StoreHeader)
		if src != "hit" && src != "peer" {
			t.Fatalf("node %d GET %s = %q", i, api.StoreHeader, src)
		}
		bodies = append(bodies, body)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("node %d serves different bytes than node 0", i)
		}
	}
	if got := fleetSimRuns(metrics); got != coldSims {
		t.Errorf("GETs ran %d extra simulations", got-coldSims)
	}
}

// wrapURL adapts a raw base URL to the postRuns helper's httptest shape.
func wrapURL(u string) *httptest.Server {
	return &httptest.Server{URL: u}
}

// postGrid submits a grid and returns the HTTP status, raw NDJSON body,
// and parsed events.
func postGrid(t *testing.T, url, body string) (int, []byte, []api.GridEvent) {
	t.Helper()
	resp, err := http.Post(url+"/v1/grids", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := readAll(resp.Body, maxReplicaBytes)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, raw, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("grid Content-Type = %q", ct)
	}
	var events []api.GridEvent
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev api.GridEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	return resp.StatusCode, raw, events
}

const smallGrid = `{"schema":"hintm-api/v2","requests":[
	{"workload":"labyrinth","scale":"small","htm":"p8","hints":"none"},
	{"workload":"labyrinth","scale":"small","htm":"p8","hints":"st"},
	{"workload":"labyrinth","scale":"small","htm":"p8","hints":"dyn"},
	{"workload":"labyrinth","scale":"small","htm":"p8","hints":"full"}
]}`

// TestGridStreamShapeAndDeterminism runs a grid cold, then twice warm:
// the stream is accepted → run×N (in index order) → done, the warm
// summary shows zero simulations, and the two warm streams are
// byte-identical.
func TestGridStreamShapeAndDeterminism(t *testing.T) {
	_, ts, m := newTestServer(t, t.TempDir())

	code, _, cold := postGrid(t, ts.URL, smallGrid)
	if code != http.StatusOK {
		t.Fatalf("cold grid: %d", code)
	}
	checkGridEvents(t, cold, 4)
	if sum := cold[len(cold)-1].Summary; sum.Simulated != 4 || sum.Hits != 0 || sum.Failed != 0 {
		t.Fatalf("cold summary: %+v", sum)
	}
	coldSims := m.Value("runner_sim_runs_total")
	if coldSims != 4 {
		t.Fatalf("cold grid simulated %d runs, want 4", coldSims)
	}

	_, warm1, ev1 := postGrid(t, ts.URL, smallGrid)
	_, warm2, ev2 := postGrid(t, ts.URL, smallGrid)
	checkGridEvents(t, ev1, 4)
	checkGridEvents(t, ev2, 4)
	if sum := ev1[len(ev1)-1].Summary; sum.Hits != 4 || sum.Simulated != 0 {
		t.Fatalf("warm summary: %+v", sum)
	}
	if !bytes.Equal(warm1, warm2) {
		t.Errorf("warm grid streams differ:\n%s\nvs\n%s", warm1, warm2)
	}
	if got := m.Value("runner_sim_runs_total"); got != coldSims {
		t.Errorf("warm grids ran %d extra simulations", got-coldSims)
	}
}

// checkGridEvents asserts the accepted/run.../done shape with run events
// in submission-index order.
func checkGridEvents(t *testing.T, events []api.GridEvent, n int) {
	t.Helper()
	if len(events) != n+2 {
		t.Fatalf("got %d events, want %d", len(events), n+2)
	}
	if events[0].Event != "accepted" || events[0].Total != n {
		t.Fatalf("first event: %+v", events[0])
	}
	for i := 1; i <= n; i++ {
		ev := events[i]
		if ev.Event != "run" || ev.Run == nil || ev.Run.Index != i-1 {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
		if ev.Schema != api.Schema {
			t.Fatalf("event %d schema %q", i, ev.Schema)
		}
	}
	last := events[n+1]
	if last.Event != "done" || last.Summary == nil || last.Summary.Total != n {
		t.Fatalf("last event: %+v", last)
	}
}

// TestFleetGridWarmViaPeers submits a grid cold to node A, then the same
// grid to node B: B answers every cell warm (local store or peer fetch)
// and no node simulates anything new.
func TestFleetGridWarmViaPeers(t *testing.T) {
	servers, urls, metrics, _ := newFleet(t, 3)

	code, _, cold := postGrid(t, urls[0], smallGrid)
	if code != http.StatusOK {
		t.Fatalf("cold grid: %d", code)
	}
	checkGridEvents(t, cold, 4)
	quiesceFleet(t, servers)
	coldSims := fleetSimRuns(metrics)

	code, _, warm := postGrid(t, urls[1], smallGrid)
	if code != http.StatusOK {
		t.Fatalf("warm grid on B: %d", code)
	}
	checkGridEvents(t, warm, 4)
	sum := warm[len(warm)-1].Summary
	if sum.Simulated != 0 || sum.Failed != 0 || sum.Hits+sum.PeerHits != 4 {
		t.Fatalf("warm-on-B summary: %+v", sum)
	}
	if got := fleetSimRuns(metrics); got != coldSims {
		t.Errorf("warm grid on B ran %d extra simulations (SimRuns delta must be zero)", got-coldSims)
	}
}

// TestBackpressure429 fills the bounded queue and checks that runs and
// grids are refused with 429 + Retry-After + a typed overloaded envelope,
// then admitted again once the queue drains.
func TestBackpressure429(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := harness.QuickOptions()
	opts.Filter = []string{"labyrinth"}
	s := New(Config{Store: st, Options: opts, Metrics: obs.NewMetrics(), QueueLimit: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Fill the queue deterministically: two fake in-flight runs.
	s.mu.Lock()
	s.inflight["fake-1"], s.inflight["fake-2"] = true, true
	s.mu.Unlock()

	for _, submit := range []struct {
		path, body string
	}{
		{"/v1/runs?wait=1", labyrinthSmall},
		{"/v1/runs", labyrinthSmall},
		{"/v1/grids", smallGrid},
	} {
		resp, err := http.Post(ts.URL+submit.path, "application/json", strings.NewReader(submit.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := readAll(resp.Body, 1<<20)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s with full queue: %d, want 429", submit.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: no Retry-After header", submit.path)
		}
		var env api.ErrorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil || env.Error.Code != api.CodeOverloaded {
			t.Errorf("%s: envelope %s", submit.path, raw)
		}
		if env.Schema != api.Schema {
			t.Errorf("%s: envelope schema %q", submit.path, env.Schema)
		}
	}
	if got := s.metrics.Value("serve_throttled_total"); got != 3 {
		t.Errorf("serve_throttled_total = %d, want 3", got)
	}

	// Drain the fake queue: the same submission is admitted.
	s.mu.Lock()
	delete(s.inflight, "fake-1")
	delete(s.inflight, "fake-2")
	s.mu.Unlock()
	code, out := postRuns(t, ts, "?wait=1", labyrinthSmall)
	if code != http.StatusOK || out.Runs[0].Status != "done" {
		t.Fatalf("post-drain submit: %d %+v", code, out)
	}
	if s.load() != 0 {
		t.Errorf("admitted slots leaked: load = %d", s.load())
	}
}

// TestAdmitRelease pins the slot bookkeeping under mixed outcomes.
func TestAdmitRelease(t *testing.T) {
	s, ts, _ := newTestServer(t, t.TempDir())
	// A grid with duplicates, waited: all slots must come back.
	grid := fmt.Sprintf(`{"requests":[%s,%s]}`, labyrinthSmall, labyrinthSmall)
	if code, _ := postRuns(t, ts, "?wait=1", grid); code != http.StatusOK {
		t.Fatalf("grid: %d", code)
	}
	if s.load() != 0 {
		t.Errorf("slots leaked after waited grid: load = %d", s.load())
	}
}
