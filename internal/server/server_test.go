package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hintm/internal/api"
	"hintm/internal/harness"
	"hintm/internal/obs"
	"hintm/internal/store"
)

// newTestServer builds a server over a fresh store with quick options.
func newTestServer(t *testing.T, dir string) (*Server, *httptest.Server, *obs.Metrics) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := harness.QuickOptions()
	opts.Filter = []string{"labyrinth"}
	m := obs.NewMetrics()
	s := New(Config{Store: st, Options: opts, Metrics: m})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, m
}

func postRuns(t *testing.T, ts *httptest.Server, query, body string) (int, api.RunsResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.RunsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func getRun(t *testing.T, ts *httptest.Server, key string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Hintm-Store"), body
}

const labyrinthSmall = `{"workload":"labyrinth","scale":"small","htm":"p8","hints":"full"}`

// TestServeColdThenWarmByteIdentical is the PR's acceptance criterion end
// to end: the same seeded request served twice returns byte-identical JSON
// bodies, the second submission reports a store hit, and the warm path
// never invokes the simulator.
func TestServeColdThenWarmByteIdentical(t *testing.T) {
	s, ts, m := newTestServer(t, t.TempDir())

	code, out := postRuns(t, ts, "?wait=1", labyrinthSmall)
	if code != http.StatusOK || len(out.Runs) != 1 || out.Runs[0].Status != "done" {
		t.Fatalf("cold submit: code=%d out=%+v", code, out)
	}
	key := out.Runs[0].Key
	coldRuns := m.Value("runner_sim_runs_total")
	if coldRuns == 0 {
		t.Fatal("cold submit simulated nothing")
	}

	gcode, hdr, body1 := getRun(t, ts, key)
	if gcode != http.StatusOK || hdr != "hit" {
		t.Fatalf("GET after cold run: code=%d X-Hintm-Store=%q", gcode, hdr)
	}

	// Second submission: a hit, answered without touching the simulator.
	code, out = postRuns(t, ts, "?wait=1", labyrinthSmall)
	if code != http.StatusOK || out.Runs[0].Status != "hit" {
		t.Fatalf("warm submit: code=%d status=%q, want 200/hit", code, out.Runs[0].Status)
	}
	if out.Runs[0].Key != key {
		t.Errorf("warm submit key %s != cold key %s", out.Runs[0].Key, key)
	}
	if got := m.Value("runner_sim_runs_total"); got != coldRuns {
		t.Errorf("warm submit ran %d extra simulations, want 0", got-coldRuns)
	}
	if got := s.runner.SimRuns(); got != uint64(coldRuns) {
		t.Errorf("runner executed %d simulations, want %d", got, coldRuns)
	}

	gcode, hdr, body2 := getRun(t, ts, key)
	if gcode != http.StatusOK || hdr != "hit" {
		t.Fatalf("warm GET: code=%d X-Hintm-Store=%q", gcode, hdr)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("served bodies differ between cold and warm GET:\n%s\nvs\n%s", body1, body2)
	}
	if !json.Valid(body1) {
		t.Error("served body is not valid JSON")
	}
}

// TestServeWarmAcrossRestart re-opens the same store directory in a second
// server instance: the result survives the "process" and serves as a hit.
func TestServeWarmAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1, _ := newTestServer(t, dir)
	code, out := postRuns(t, ts1, "?wait=1", labyrinthSmall)
	if code != http.StatusOK || out.Runs[0].Status != "done" {
		t.Fatalf("first instance: %d %+v", code, out)
	}
	key := out.Runs[0].Key
	_, _, body1 := getRun(t, ts1, key)
	ts1.Close()

	_, ts2, m2 := newTestServer(t, dir)
	code, out = postRuns(t, ts2, "?wait=1", labyrinthSmall)
	if code != http.StatusOK || out.Runs[0].Status != "hit" {
		t.Fatalf("restarted instance: %d %+v, want hit", code, out)
	}
	_, hdr, body2 := getRun(t, ts2, key)
	if hdr != "hit" || !bytes.Equal(body1, body2) {
		t.Errorf("restarted instance served different bytes (hdr=%q)", hdr)
	}
	if m2.Value("runner_sim_runs_total") != 0 {
		t.Error("restarted instance re-simulated a stored run")
	}
}

// TestServeAsyncEnqueue submits without wait and polls until the run
// lands in the store.
func TestServeAsyncEnqueue(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	code, out := postRuns(t, ts, "", labyrinthSmall)
	if code != http.StatusAccepted {
		t.Fatalf("async submit code = %d, want 202", code)
	}
	st := out.Runs[0].Status
	if st != "enqueued" && st != "running" {
		t.Fatalf("async status = %q", st)
	}
	key := out.Runs[0].Key

	deadline := time.Now().Add(30 * time.Second)
	for {
		gcode, hdr, _ := getRun(t, ts, key)
		if gcode == http.StatusOK {
			if hdr != "hit" {
				t.Errorf("completed async run served with X-Hintm-Store=%q", hdr)
			}
			break
		}
		if gcode != http.StatusAccepted {
			t.Fatalf("poll returned %d", gcode)
		}
		if time.Now().After(deadline) {
			t.Fatal("async run never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Resubmitting the identical spec is now a hit even without wait.
	code, out = postRuns(t, ts, "", labyrinthSmall)
	if code != http.StatusOK || out.Runs[0].Status != "hit" {
		t.Errorf("resubmit after async completion: %d %+v", code, out)
	}
}

// TestServeGridDedup submits a grid with duplicates and distinct points.
func TestServeGridDedup(t *testing.T) {
	_, ts, m := newTestServer(t, t.TempDir())
	grid := `{"requests":[
		{"workload":"labyrinth","scale":"small","htm":"p8","hints":"none"},
		{"workload":"labyrinth","scale":"small","htm":"p8","hints":"none"},
		{"workload":"labyrinth","scale":"small","htm":"p8","hints":"full"}
	]}`
	code, out := postRuns(t, ts, "?wait=1", grid)
	if code != http.StatusOK || len(out.Runs) != 3 {
		t.Fatalf("grid submit: %d %+v", code, out)
	}
	if out.Runs[0].Key != out.Runs[1].Key || out.Runs[0].Key == out.Runs[2].Key {
		t.Errorf("grid keys wrong: %+v", out.Runs)
	}
	// Two distinct points → exactly two simulations despite three specs.
	if got := m.Value("runner_sim_runs_total"); got != 2 {
		t.Errorf("grid ran %d simulations, want 2", got)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	for _, body := range []string{
		`{"workload":"no-such-workload"}`,
		`{"workload":"labyrinth","htm":"p99"}`,
		`{"workload":"labyrinth","scale":"tiny"}`,
		`{}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: code %d, want 400", body, resp.StatusCode)
		}
	}

	resp, _ := http.Get(ts.URL + "/v1/runs/" + strings.Repeat("00", 32))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: %d, want 404", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/v1/figures/fig99")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown figure: %d, want 404", resp.StatusCode)
	}
}

// TestServeFigureWarm assembles a figure twice; the second assembly runs
// entirely from the store.
func TestServeFigureWarm(t *testing.T) {
	_, ts, m := newTestServer(t, t.TempDir())
	fetch := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/figures/fig5")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("figure: %d", resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return body
	}
	cold := fetch()
	coldRuns := m.Value("runner_sim_runs_total")
	if coldRuns == 0 {
		t.Fatal("figure assembly simulated nothing")
	}
	var parsed struct {
		Figure string            `json:"figure"`
		Rows   []json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(cold, &parsed); err != nil || parsed.Figure != "fig5" || len(parsed.Rows) == 0 {
		t.Fatalf("figure body malformed: %s", cold)
	}

	// A second server over the same store: in-process memo is gone, only
	// the store can make this free.
	warm := fetch()
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm figure differs:\n%s\nvs\n%s", cold, warm)
	}
	if got := m.Value("runner_sim_runs_total"); got != coldRuns {
		t.Errorf("warm figure ran %d extra simulations", got-coldRuns)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	postRuns(t, ts, "?wait=1", labyrinthSmall)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status       string `json:"status"`
		StoreEntries int    `json:"storeEntries"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.Status != "ok" || health.StoreEntries != 1 {
		t.Errorf("healthz: %+v", health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"store_puts_total 1", "runner_sim_runs_total 1", "serve_requests_total", "store_entries 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestDrainWaitsForEnqueuedRuns submits async work and drains: the run
// must be persisted by the time Drain returns.
func TestDrainWaitsForEnqueuedRuns(t *testing.T) {
	s, ts, _ := newTestServer(t, t.TempDir())
	_, out := postRuns(t, ts, "", labyrinthSmall)
	key := out.Runs[0].Key

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !s.store.Contains(key) {
		t.Error("drained server did not persist the enqueued run")
	}
	// After drain, new enqueues are refused rather than silently dropped.
	if got := s.enqueue("deadbeef", harness.Request{Workload: "labyrinth"}); got != "failed" {
		t.Errorf("post-drain enqueue = %q, want failed", got)
	}
}

// TestRunStatusShape pins the response contract the smoke script greps.
func TestRunStatusShape(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	_, out := postRuns(t, ts, "?wait=1", labyrinthSmall)
	rs := out.Runs[0]
	if len(rs.Key) != 64 {
		t.Errorf("key %q is not a sha256 hex digest", rs.Key)
	}
	if rs.ResultURL != "/v1/runs/"+rs.Key {
		t.Errorf("resultUrl %q", rs.ResultURL)
	}
	if want := fmt.Sprintf("labyrinth/%s/%s/%s/smt1", "small", "P8", "HinTM"); rs.Request != want {
		t.Errorf("request rendering %q, want %q", rs.Request, want)
	}
}
