package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hintm/internal/api"
)

// TestV2ErrorEnvelope pins the typed error shape: schema field, stable
// code, and the version header, across the redesigned handlers.
func TestV2ErrorEnvelope(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	for _, tc := range []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"POST", "/v1/runs", `{"workload":"no-such"}`, 400, api.CodeBadRequest},
		{"POST", "/v1/runs", `not json`, 400, api.CodeBadRequest},
		{"POST", "/v1/runs", `{"schema":"hintm-api/v9","workload":"labyrinth"}`, 400, api.CodeBadRequest},
		{"POST", "/v1/grids", `{"requests":[]}`, 400, api.CodeBadRequest},
		{"POST", "/v1/grids", `{"requests":[{"workload":"labyrinth","htm":"p99"}]}`, 400, api.CodeBadRequest},
		{"GET", "/v1/runs/" + strings.Repeat("00", 32), "", 404, api.CodeNotFound},
		{"GET", "/v1/figures/fig99", "", 404, api.CodeNotFound},
		{"GET", "/v1/runs?workload=no-such", "", 400, api.CodeBadRequest},
		{"GET", "/v1/runs?htm=p99", "", 400, api.CodeBadRequest},
		{"GET", "/v1/runs?limit=-3", "", 400, api.CodeBadRequest},
		{"GET", "/v1/runs?after=xyz", "", 400, api.CodeBadRequest},
		{"PUT", "/v1/runs/deadbeef", `{"schema":"bogus"}`, 400, api.CodeBadRequest},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env api.ErrorEnvelope
		derr := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
			continue
		}
		if derr != nil || env.Error == nil || env.Error.Code != tc.code || env.Schema != api.Schema {
			t.Errorf("%s %s: envelope %+v (decode err %v), want code %q", tc.method, tc.path, env, derr, tc.code)
		}
		if got := resp.Header.Get(api.Header); got != api.Schema {
			t.Errorf("%s %s: %s = %q, want %q", tc.method, tc.path, api.Header, got, api.Schema)
		}
		if env.Error != nil && env.Error.Message == "" {
			t.Errorf("%s %s: empty error message", tc.method, tc.path)
		}
	}
}

// TestV1CompatShim: a client pinning hintm-api/v1 gets the old
// {"error": "..."} body plus a Deprecation header.
func TestV1CompatShim(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	req, _ := http.NewRequest("POST", ts.URL+"/v1/runs", strings.NewReader(`{"workload":"no-such"}`))
	req.Header.Set(api.Header, api.SchemaV1)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("v1 response missing Deprecation header")
	}
	if got := resp.Header.Get(api.Header); got != api.SchemaV1 {
		t.Errorf("%s = %q, want %q", api.Header, got, api.SchemaV1)
	}
	var v1 struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v1); err != nil || v1.Error == "" {
		t.Errorf("v1 body not the legacy shape: %v / %+v", err, v1)
	}
}

// TestUnknownVersionRejected: pinning a version the server does not speak
// is a 400, not a silent misread.
func TestUnknownVersionRejected(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	req, _ := http.NewRequest("POST", ts.URL+"/v1/runs", strings.NewReader(labyrinthSmall))
	req.Header.Set(api.Header, "hintm-api/v9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown version: %d, want 400", resp.StatusCode)
	}
}

// TestVersionHeaderOnSuccess: every v2 success response carries the
// version header and a schema field.
func TestVersionHeaderOnSuccess(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	resp, err := http.Post(ts.URL+"/v1/runs?wait=1", "application/json", strings.NewReader(labyrinthSmall))
	if err != nil {
		t.Fatal(err)
	}
	var out api.RunsResponse
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if got := resp.Header.Get(api.Header); got != api.Schema {
		t.Errorf("%s = %q", api.Header, got)
	}
	if out.Schema != api.Schema {
		t.Errorf("body schema = %q", out.Schema)
	}
}

func getList(t *testing.T, ts *httptest.Server, query string) api.ListResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list %q: %d", query, resp.StatusCode)
	}
	var out api.ListResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestListPaginationAndFilters seeds a few runs and exercises GET
// /v1/runs: full listing with request-coordinate summaries, workload/htm
// filters, and seq-cursor pagination.
func TestListPaginationAndFilters(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	code, _ := postRuns(t, ts, "?wait=1", `{"requests":[
		{"workload":"labyrinth","scale":"small","htm":"p8","hints":"none"},
		{"workload":"labyrinth","scale":"small","htm":"p8","hints":"full"},
		{"workload":"labyrinth","scale":"small","htm":"infcap","hints":"none"}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("seed: %d", code)
	}

	all := getList(t, ts, "")
	if len(all.Runs) != 3 || all.NextAfter != 0 {
		t.Fatalf("full listing: %d runs, nextAfter %d", len(all.Runs), all.NextAfter)
	}
	for _, item := range all.Runs {
		if item.Workload != "labyrinth" || item.Scale != "small" || item.Key == "" ||
			item.ResultURL != "/v1/runs/"+item.Key || item.Size == 0 {
			t.Errorf("listing item incomplete: %+v", item)
		}
	}

	if got := getList(t, ts, "?htm=infcap"); len(got.Runs) != 1 || got.Runs[0].HTM != "InfCap" {
		t.Errorf("htm filter: %+v", got.Runs)
	}
	if got := getList(t, ts, "?workload=labyrinth&htm=p8"); len(got.Runs) != 2 {
		t.Errorf("combined filter: %d runs", len(got.Runs))
	}

	// Two pages of 2 + 1; the cursor carries the crawl.
	page1 := getList(t, ts, "?limit=2")
	if len(page1.Runs) != 2 || page1.NextAfter == 0 {
		t.Fatalf("page 1: %d runs, nextAfter %d", len(page1.Runs), page1.NextAfter)
	}
	page2 := getList(t, ts, "?limit=2&after="+itoa64(page1.NextAfter))
	if len(page2.Runs) != 1 || page2.NextAfter != 0 {
		t.Fatalf("page 2: %d runs, nextAfter %d", len(page2.Runs), page2.NextAfter)
	}
	seen := map[string]bool{}
	for _, item := range append(page1.Runs, page2.Runs...) {
		if seen[item.Key] {
			t.Errorf("key %s listed twice across pages", item.Key)
		}
		seen[item.Key] = true
	}
}

func itoa64(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestReplicateEndpoint round-trips PUT /v1/runs/{key} with real object
// bytes and rejects mis-keyed bodies.
func TestReplicateEndpoint(t *testing.T) {
	sA, tsA, _ := newTestServer(t, t.TempDir())
	_, tsB, mB := newTestServer(t, t.TempDir())

	_, out := postRuns(t, tsA, "?wait=1", labyrinthSmall)
	key := out.Runs[0].Key
	_, raw, err := sA.store.Get(key)
	if err != nil || raw == nil {
		t.Fatal("source entry missing")
	}

	req, _ := http.NewRequest("PUT", tsB.URL+"/v1/runs/"+key, strings.NewReader(string(raw)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate: %d", resp.StatusCode)
	}

	// B now serves the identical bytes without simulating.
	gcode, hdr, body := getRun(t, tsB, key)
	if gcode != http.StatusOK || hdr != "hit" || string(body) != string(raw) {
		t.Errorf("replicated entry differs: code=%d hdr=%q identical=%v", gcode, hdr, string(body) == string(raw))
	}
	if mB.Value("runner_sim_runs_total") != 0 {
		t.Error("replication target simulated")
	}

	// Mis-keyed PUT: valid bytes under the wrong URL key are refused.
	req, _ = http.NewRequest("PUT", tsB.URL+"/v1/runs/"+strings.Repeat("ab", 32), strings.NewReader(string(raw)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env api.ErrorEnvelope
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || env.Error == nil || env.Error.Code != api.CodeBadRequest {
		t.Errorf("mis-keyed replicate: %d %+v", resp.StatusCode, env)
	}
}
