// GET /v1/runs: list stored results with pagination and filters.
//
// Before this endpoint, store keys were write-only from a client's view —
// you could dereference a key you already held, but not discover what a
// node had computed. The listing is backed by the store index (no object
// reads), filters on the index's request summaries (?workload=, ?htm=),
// and paginates by store sequence number: `after` is the previous page's
// nextAfter, and because seqs are stable across reads a crawl sees every
// entry exactly once even while new results land.
package server

import (
	"net/http"
	"strconv"

	"hintm/internal/api"
	"hintm/internal/obs"
	"hintm/internal/sim"
	"hintm/internal/store"
	"hintm/internal/workloads"
)

const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter(obs.MetricServeRequests).Inc()
	if !s.checkVersion(w, r) {
		return
	}
	q := r.URL.Query()
	var f store.Filter
	if wl := q.Get("workload"); wl != "" {
		if _, err := workloads.ByName(wl); err != nil {
			s.writeError(w, r, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "bad workload filter: %v", err))
			return
		}
		f.Workload = wl
	}
	if h := q.Get("htm"); h != "" {
		kind, err := sim.ParseHTMKind(h)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "bad htm filter: %v", err))
			return
		}
		f.HTM = kind.String()
	}
	limit := defaultListLimit
	if lv := q.Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n <= 0 {
			s.writeError(w, r, http.StatusBadRequest,
				api.Errorf(api.CodeBadRequest, "bad limit %q: want a positive integer", lv))
			return
		}
		limit = min(n, maxListLimit)
	}
	var after uint64
	if av := q.Get("after"); av != "" {
		n, err := strconv.ParseUint(av, 10, 64)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest,
				api.Errorf(api.CodeBadRequest, "bad after cursor %q: want a sequence number", av))
			return
		}
		after = n
	}
	items, nextAfter := s.store.Select(f, after, limit)
	resp := api.ListResponse{Schema: api.Schema, Runs: make([]api.ListItem, len(items)), NextAfter: nextAfter}
	for i, it := range items {
		resp.Runs[i] = api.ListItem{
			Key:       it.Key,
			Seq:       it.Seq,
			Size:      it.Size,
			Workload:  it.Workload,
			Scale:     it.Scale,
			HTM:       it.HTM,
			Hints:     it.Hints,
			ResultURL: "/v1/runs/" + it.Key,
		}
	}
	s.respond(w, http.StatusOK, resp)
}
