package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hintm/internal/harness"
	"hintm/internal/obs"
	"hintm/internal/store"
)

// newServerWithFakePeers builds one real server whose ring peers are the
// given fake handlers — the harness for every peer-misbehavior test. The
// returned peer URLs are in registration order (the ring sorts its nodes,
// so tests can't recover which fake is which from the ring).
func newServerWithFakePeers(t *testing.T, fleet FleetConfig, peers ...http.Handler) (*Server, *httptest.Server, *obs.Metrics, []string) {
	t.Helper()
	self := httptest.NewServer(nil) // placeholder; handler set below
	t.Cleanup(self.Close)
	urls := []string{self.URL}
	var peerURLs []string
	for _, h := range peers {
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		peerURLs = append(peerURLs, ts.URL)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := harness.QuickOptions()
	opts.Filter = []string{"labyrinth"}
	m := obs.NewMetrics()
	fleet.Self = self.URL
	fleet.Peers = urls
	if fleet.Replicas == 0 {
		fleet.Replicas = len(urls)
	}
	s := New(Config{Store: st, Options: opts, Metrics: m, Fleet: fleet})
	self.Config.Handler = s.Handler()
	return s, self, m, peerURLs
}

func TestErrPeerStatusIncludesNumericCode(t *testing.T) {
	if got := errPeerStatus(599).Error(); !strings.Contains(got, "599") {
		t.Errorf("non-standard code message %q lacks the numeric code", got)
	}
	got := errPeerStatus(http.StatusBadGateway).Error()
	if !strings.Contains(got, "502") || !strings.Contains(got, "Bad Gateway") {
		t.Errorf("standard code message %q", got)
	}
}

// TestPeerFetchDegradesToSimulation: every way a peer can misbehave —
// 5xx, truncated/garbage JSON, an oversized body, a hard timeout — must
// degrade the request to a local simulation with the right error counter,
// never fail it.
func TestPeerFetchDegradesToSimulation(t *testing.T) {
	// The budget is generous for peers that answer promptly — a slow CI
	// machine streaming the 16MB oversized body must not hit the deadline,
	// because a budget expiry is deliberately not charged to the peer and
	// would mask the counter under test. Only the timeout case, which waits
	// out the whole budget by design, keeps a small one.
	cases := []struct {
		name    string
		handler http.HandlerFunc
		counter string
		budget  time.Duration
	}{
		{"5xx", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusBadGateway)
		}, "fleet_peer_errors_total", 30 * time.Second},
		{"garbage-json", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"schema":"not-a-store-entry","key":`)) // truncated, too
		}, "fleet_peer_invalid_total", 30 * time.Second},
		{"oversized-body", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			w.Write(make([]byte, maxReplicaBytes+1))
		}, "fleet_peer_errors_total", 30 * time.Second},
		{"timeout", func(w http.ResponseWriter, r *http.Request) {
			// Never answer — but drain the body first. The server only
			// notices a vanished client through its background read, which
			// it does not start while the request body is unread; the async
			// replication PUT that follows the local simulation has a body,
			// so blocking on Done() with the body unread parks this handler
			// past the client's 5s abort and wedges the httptest Close in
			// cleanup forever.
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
		}, "", 500 * time.Millisecond}, // budget expiry is not charged to the peer
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts, m, _ := newServerWithFakePeers(t,
				FleetConfig{PeerBudget: tc.budget}, tc.handler)
			begin := time.Now()
			code, out := postRuns(t, ts, "?wait=1", labyrinthSmall)
			elapsed := time.Since(begin)
			if code != http.StatusOK || out.Runs[0].Status != "done" || out.Runs[0].Source != "sim" {
				t.Fatalf("request did not degrade to local simulation: code=%d run=%+v", code, out.Runs[0])
			}
			if m.Value("runner_sim_runs_total") == 0 {
				t.Error("no local simulation ran")
			}
			if tc.counter != "" && m.Value(tc.counter) == 0 {
				t.Errorf("%s not incremented: %+v", tc.counter, m.Snapshot())
			}
			// Peer misbehavior must stay inside the peer budget, with wide
			// CI slack — nowhere near the old replicas × 5s worst case.
			if elapsed > 10*time.Second {
				t.Errorf("degraded request took %v", elapsed)
			}
		})
	}
}

// TestPeerOverheadBounded is the acceptance criterion for dead peers: the
// added peer time on a miss is bounded by the overall peer budget, and once
// the breakers are open it drops to zero peer calls.
func TestPeerOverheadBounded(t *testing.T) {
	blackhole := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) // unread body suppresses disconnect detection (see the timeout case above)
		<-r.Context().Done()
	})
	budget := 300 * time.Millisecond
	s, ts, m, peerURLs := newServerWithFakePeers(t,
		FleetConfig{PeerBudget: budget, BreakerThreshold: 1}, blackhole, blackhole)

	begin := time.Now()
	code, out := postRuns(t, ts, "?wait=1", labyrinthSmall)
	elapsed := time.Since(begin)
	if code != http.StatusOK || out.Runs[0].Status != "done" {
		t.Fatalf("cold run with dead peers: code=%d run=%+v", code, out.Runs[0])
	}
	// The budget plus the simulation itself plus generous CI slack — the
	// point is it is nowhere near replicas × 5s = 10s.
	if elapsed > budget+5*time.Second {
		t.Fatalf("cold run took %v with a %v peer budget", elapsed, budget)
	}

	// Budget expiry is deliberately not charged to the peers, so force the
	// breakers open the way sustained real failures would.
	for _, peer := range peerURLs {
		s.health.Report(peer, false, 0)
	}
	fetches := m.Value("fleet_peer_fetch_total")

	// A different spec, still cold: with every breaker open, no peer call
	// is even attempted.
	code, out = postRuns(t, ts, "?wait=1",
		`{"workload":"labyrinth","scale":"small","htm":"p8","hints":"none"}`)
	if code != http.StatusOK || out.Runs[0].Status != "done" {
		t.Fatalf("cold run with open breakers: code=%d run=%+v", code, out.Runs[0])
	}
	if got := m.Value("fleet_peer_fetch_total"); got != fetches {
		t.Errorf("open breakers still made %d peer calls", got-fetches)
	}
	if m.Value("fleet_breaker_skipped_total") == 0 {
		t.Error("no breaker skips counted")
	}
}

// TestPeerFetchHedge: when the first owner is slow, a hedged fetch fires at
// the next one after the hedge delay and its hit wins.
func TestPeerFetchHedge(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		http.NotFound(w, r)
	})
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"hit":"from-fast-peer"}`)) // peerFetch moves raw bytes; validation happens later
	})
	s, _, m, peerURLs := newServerWithFakePeers(t, FleetConfig{PeerBudget: 4 * time.Second}, slow, fast)

	// Find a key whose non-self owner order is [slow, fast] so the hedge
	// target is deterministic. Ring placement is deterministic, so this
	// search is too.
	key := ""
	for i := 0; i < 4096 && key == ""; i++ {
		cand := fmt.Sprintf("hedge-probe-%d", i)
		var nonSelf []string
		for _, n := range s.ring.Owners(cand, s.replicas) {
			if n != s.self {
				nonSelf = append(nonSelf, n)
			}
		}
		if len(nonSelf) == 2 && nonSelf[0] == peerURLs[0] && nonSelf[1] == peerURLs[1] {
			key = cand
		}
	}
	if key == "" {
		t.Fatal("no key with owner order [slow, fast] found")
	}

	begin := time.Now()
	raw := s.peerFetch(context.Background(), key, nil, 0)
	elapsed := time.Since(begin)
	if string(raw) != `{"hit":"from-fast-peer"}` {
		t.Fatalf("hedged fetch returned %q", raw)
	}
	if m.Value("fleet_hedge_total") != 1 || m.Value("fleet_hedge_wins_total") != 1 {
		t.Errorf("hedge metrics: %+v", m.Snapshot())
	}
	// Cold hedge delay is budget/8 = 500ms; the win must land well before
	// the slow peer's 2s, even with CI slack.
	if elapsed >= 2*time.Second {
		t.Errorf("hedged fetch took %v — the hedge never fired", elapsed)
	}
}

// TestBreakerRecoveryViaProbe: a peer that dies opens its breaker; when it
// comes back, the background /healthz probe closes the breaker without any
// request traffic.
func TestBreakerRecoveryViaProbe(t *testing.T) {
	var healthy atomic.Bool
	peer := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && healthy.Load() {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	})
	s, _, m, peerURLs := newServerWithFakePeers(t, FleetConfig{
		PeerBudget: time.Second, BreakerThreshold: 2, BreakerBackoff: 50 * time.Millisecond,
	}, peer)

	peerURL := peerURLs[0]
	s.health.Report(peerURL, false, 0)
	s.health.Report(peerURL, false, 0)
	if s.health.Allow(peerURL) {
		t.Fatal("breaker did not open")
	}

	healthy.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for !s.health.Allow(peerURL) {
		if time.Now().After(deadline) {
			t.Fatal("probe never closed the breaker")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if m.Value("fleet_breaker_closed_total") == 0 || m.Value("fleet_probe_total") == 0 {
		t.Errorf("probe metrics: %+v", m.Snapshot())
	}
}
