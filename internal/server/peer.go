// Peer result fetch: the read side of the sharded fleet's data path.
//
// Both directions (fetch here, replication in repl.go) move the store's raw
// object bytes verbatim, so a result is byte-identical on every node that
// holds it. Placement comes from the consistent-hash ring (internal/fleet):
// a key's owner and replicas are the nodes asked on a miss.
//
// Resilience contract: peer fetch is an optimization over re-simulating,
// so its worst case must be bounded and small. Three mechanisms enforce
// that. Peers with open circuit breakers are skipped instantly — a dead
// peer costs nothing after its breaker opens. The whole fetch runs under
// one overall budget (Config.Fleet.PeerBudget, default 2s), split into
// per-call deadlines across the owners, so even with every breaker closed
// a miss costs at most the budget, never replicas × timeout. And a hedged
// second fetch fires at the next owner after a p99-derived delay, so one
// slow-but-alive owner doesn't drag every cold request to its own tail.
package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strconv"
	"time"

	"hintm/internal/api"
	"hintm/internal/obs"
)

// defaultPeerTimeout bounds one peer HTTP call when no tighter deadline
// applies (replication PUTs, health probes, the client-level backstop).
const defaultPeerTimeout = 5 * time.Second

// defaultPeerBudget bounds the total peer time one miss may spend before
// degrading to a local simulation.
const defaultPeerBudget = 2 * time.Second

// maxReplicaBytes bounds a replicated object. Run results are a few KB;
// anything near this limit is garbage.
const maxReplicaBytes = 16 << 20

// hedgeDetail marks a hedge-launched candidate's span outcome; the
// constant prefixes keep the traced path allocation-free and let the
// report attribute hedge time separately (winner = the hedged span that
// ends "hedge-hit", loser = whichever span ends cancelled).
func hedgeDetail(hedged bool, detail string) string {
	if !hedged {
		return detail
	}
	switch detail {
	case "hit":
		return "hedge-hit"
	case "miss":
		return "hedge-miss"
	case "error":
		return "hedge-error"
	default:
		return "hedge-cancelled"
	}
}

// peerFetch asks key's ring owners (skipping this node and every peer with
// an open breaker) for the stored object, returning the first hit's raw
// bytes, or nil when no reachable peer has it. Peers are asked with
// ?local=1, so a fetch never cascades into further fetches or simulations.
//
// Owners are tried in ring order, each under a per-call deadline; a miss or
// error moves on immediately, and a hedge timer fires the next owner early
// when the first is slower than the observed p99. The overall budget bounds
// the total time spent here no matter what the peers do.
//
// Each candidate call records one peer.fetch span under parent in tr (nil
// = untraced) and propagates the trace context to the serving peer.
func (s *Server) peerFetch(ctx context.Context, key string, tr *obs.ActiveTrace, parent int) []byte {
	if s.ring == nil {
		return nil
	}
	var cands []string
	for _, node := range s.ring.Owners(key, s.replicas) {
		if node == s.self {
			continue
		}
		if !s.health.Allow(node) {
			s.metrics.Counter(obs.MetricBreakerSkipped).Inc()
			continue
		}
		cands = append(cands, node)
	}
	if len(cands) == 0 {
		return nil
	}
	ctx, cancel := context.WithTimeout(ctx, s.peerBudget)
	defer cancel()
	perCall := s.peerBudget / time.Duration(len(cands))

	type result struct {
		raw []byte
		idx int
	}
	ch := make(chan result, len(cands))
	launch := func(i int, hedgedLaunch bool) {
		go func() {
			s.metrics.Counter(obs.MetricPeerFetches).Inc()
			sid := tr.StartPeer(parent, obs.SpanPeerFetch, cands[i])
			cctx, ccancel := context.WithTimeout(ctx, perCall)
			defer ccancel()
			begin := time.Now()
			raw, err := s.fetchFrom(cctx, cands[i], key, tr.Context(sid))
			if err != nil && ctx.Err() != nil {
				// The budget expired or a winner cancelled this call: not
				// the peer's fault, so neither the breaker nor the error
				// counter should see it.
				tr.End(sid, hedgeDetail(hedgedLaunch, "cancelled"), nil)
				ch <- result{nil, i}
				return
			}
			s.health.Report(cands[i], err == nil, time.Since(begin))
			detail := "miss"
			if err != nil {
				s.metrics.Counter(obs.MetricPeerErrors).Inc()
				detail = "error"
			} else if raw != nil {
				detail = "hit"
			}
			tr.End(sid, hedgeDetail(hedgedLaunch, detail), err)
			if hedgedLaunch {
				s.observePhase("hedge", detail, time.Since(begin))
			}
			ch <- result{raw, i}
		}()
	}

	launched := 1
	launch(0, false)
	var hedgeC <-chan time.Time
	if len(cands) > 1 {
		t := time.NewTimer(s.health.HedgeDelay(s.peerBudget))
		defer t.Stop()
		hedgeC = t.C
	}
	hedged := false
	for done := 0; done < launched; {
		select {
		case <-ctx.Done():
			return nil
		case <-hedgeC:
			hedgeC = nil
			if launched < len(cands) {
				hedged = true
				s.metrics.Counter(obs.MetricHedges).Inc()
				launch(launched, true)
				launched++
			}
		case r := <-ch:
			done++
			if r.raw != nil {
				s.metrics.Counter(obs.MetricPeerHits).Inc()
				if hedged && r.idx > 0 {
					s.metrics.Counter(obs.MetricHedgeWins).Inc()
				}
				return r.raw
			}
			// A miss or error frees this slot: try the next owner now
			// rather than waiting for the hedge timer.
			if launched < len(cands) {
				launch(launched, false)
				launched++
			}
		}
	}
	return nil
}

// fetchFrom performs one ?local=1 lookup against a peer. (nil, nil) means
// the peer answered and does not have the key.
func (s *Server) fetchFrom(ctx context.Context, node, key string, sc obs.SpanContext) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/runs/"+key+"?local=1", nil)
	if err != nil {
		return nil, err
	}
	if h := sc.String(); h != "" {
		req.Header.Set(api.TraceHeader, h)
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return readAll(resp.Body, maxReplicaBytes)
	case http.StatusNotFound, http.StatusAccepted:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, nil
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, errPeerStatus(resp.StatusCode)
	}
}

type errPeerStatus int

func (e errPeerStatus) Error() string {
	// Always include the numeric code: StatusText returns "" for
	// non-standard codes, and "peer returned status " helps nobody.
	msg := "peer returned status " + strconv.Itoa(int(e))
	if text := http.StatusText(int(e)); text != "" {
		msg += " " + text
	}
	return msg
}

// forward queues a freshly-simulated key for replication to its ring
// owners, so later lookups find it where the ring says to look no matter
// which node did the work. Asynchronous and best-effort: the request path
// pays nothing, and a lost forward costs a future peer fetch a miss until
// anti-entropy repairs it, never correctness. The span context rides along
// so the async push spans still land in the originating trace.
func (s *Server) forward(key string, sc obs.SpanContext) {
	if s.ring == nil {
		return
	}
	var targets []string
	for _, node := range s.ring.Owners(key, s.replicas) {
		if node != s.self {
			targets = append(targets, node)
		}
	}
	s.repl.enqueue(replItem{key: key, nodes: targets, sc: sc})
}

// replicateTo PUTs one object's raw bytes to a peer.
func (s *Server) replicateTo(ctx context.Context, node, key string, raw []byte, sc obs.SpanContext) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, node+"/v1/runs/"+key+"?local=1", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if h := sc.String(); h != "" {
		req.Header.Set(api.TraceHeader, h)
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		return errPeerStatus(resp.StatusCode)
	}
	return nil
}
