// Peer result fetch and forwarding: the data paths of the sharded fleet.
//
// Both directions move the store's raw object bytes verbatim, so a result
// is byte-identical on every node that holds it. Placement comes from the
// consistent-hash ring (internal/fleet): a key's owner and replicas are
// the nodes asked on a miss (peer fetch) and the nodes given a copy after
// a cold simulation (forward), which together guarantee any node can
// answer any previously-computed key with at most Replicas network hops
// and zero simulation.
package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"time"
)

// defaultPeerTimeout bounds one peer HTTP call. Peer fetch is an
// optimization over re-simulating; a slow peer must not cost more than the
// simulation it would save.
const defaultPeerTimeout = 5 * time.Second

// maxReplicaBytes bounds a replicated object. Run results are a few KB;
// anything near this limit is garbage.
const maxReplicaBytes = 16 << 20

// peerFetch asks key's ring owner and replicas (skipping this node) for
// the stored object, returning the first hit's raw bytes, or nil when no
// peer has it. Peers are asked with ?local=1, so a fetch never cascades
// into further fetches or simulations.
func (s *Server) peerFetch(ctx context.Context, key string) []byte {
	if s.ring == nil {
		return nil
	}
	for _, node := range s.ring.Owners(key, s.replicas) {
		if node == s.self {
			continue
		}
		s.metrics.Counter("fleet_peer_fetch_total").Inc()
		raw, err := s.fetchFrom(ctx, node, key)
		if err != nil {
			// An unreachable peer degrades to a local simulation, never to
			// a failure.
			s.metrics.Counter("fleet_peer_errors_total").Inc()
			continue
		}
		if raw != nil {
			s.metrics.Counter("fleet_peer_hits_total").Inc()
			return raw
		}
	}
	return nil
}

// fetchFrom performs one ?local=1 lookup against a peer. (nil, nil) means
// the peer answered and does not have the key.
func (s *Server) fetchFrom(ctx context.Context, node, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/runs/"+key+"?local=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return readAll(resp.Body, maxReplicaBytes)
	case http.StatusNotFound, http.StatusAccepted:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, nil
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, errPeerStatus(resp.StatusCode)
	}
}

type errPeerStatus int

func (e errPeerStatus) Error() string { return "peer returned status " + http.StatusText(int(e)) }

// forward replicates a freshly-simulated key to its ring owners, so later
// lookups find it where the ring says to look no matter which node did
// the work. Best-effort: a failed forward costs a future peer fetch a
// miss (and at worst one re-simulation), never correctness.
func (s *Server) forward(ctx context.Context, key string) {
	if s.ring == nil {
		return
	}
	_, raw, err := s.store.Get(key)
	if err != nil || raw == nil {
		return
	}
	for _, node := range s.ring.Owners(key, s.replicas) {
		if node == s.self {
			continue
		}
		s.metrics.Counter("fleet_forward_total").Inc()
		if err := s.replicateTo(ctx, node, key, raw); err != nil {
			s.metrics.Counter("fleet_forward_errors_total").Inc()
		}
	}
}

// replicateTo PUTs one object's raw bytes to a peer.
func (s *Server) replicateTo(ctx context.Context, node, key string, raw []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, node+"/v1/runs/"+key+"?local=1", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		return errPeerStatus(resp.StatusCode)
	}
	return nil
}
