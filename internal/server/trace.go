// GET /v1/traces/{key}: the assembled fleet trace of a request.
//
// Every resolve roots a trace under the key's deterministic trace id
// (obs.TraceID — the first 16 hex characters of the content address), and
// every cross-node hop carries the X-Hintm-Trace context, so each node
// involved in a request holds its own shard of the spans. This endpoint
// assembles them: the queried node serves its latest local root execution
// for the key and asks every healthy peer for its spans of that same root
// (?local=1&root=..., the same anti-cascade discipline as the data path).
//
// ?canon=1 zeroes the wall-clock fields and sorts — the canonical form two
// identical seeded fleet runs must reproduce byte-identically, which the
// determinism test and fleet-smoke assert.
package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"

	"hintm/internal/api"
	"hintm/internal/obs"
)

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter(obs.MetricServeRequests).Inc()
	if s.traces == nil {
		s.writeError(w, r, http.StatusNotFound,
			api.Errorf(api.CodeNotFound, "tracing is disabled on this node"))
		return
	}
	key := r.PathValue("key")
	trace := obs.TraceID(key)
	q := r.URL.Query()
	root := q.Get("root")
	if root == "" {
		var ok bool
		if root, ok = s.traces.LatestRoot(trace); !ok {
			s.writeError(w, r, http.StatusNotFound,
				api.Errorf(api.CodeNotFound, "no trace rooted here for key %s (ask the node that resolved it)", key))
			return
		}
	}
	spans, ok := s.traces.Spans(trace, root)

	if q.Get("local") != "" {
		// The peer-internal shard: only this node's spans for exactly the
		// requested root. An empty shard is a normal answer — the assembling
		// node just learns we saw nothing.
		if spans == nil {
			spans = []obs.Span{}
		}
		s.respond(w, http.StatusOK, obs.TraceDoc{
			Schema: obs.TraceSchema, Trace: trace, Root: root, Node: s.nodeLabel, Spans: spans,
		})
		return
	}
	if !ok {
		s.writeError(w, r, http.StatusNotFound,
			api.Errorf(api.CodeNotFound, "no spans for key %s root %s", key, root))
		return
	}
	doc := &obs.TraceDoc{Schema: obs.TraceSchema, Key: key, Trace: trace, Root: root, Node: s.nodeLabel, Spans: spans}
	if s.ring != nil {
		for _, node := range s.ring.Nodes() {
			if node == s.self || !s.health.Ready(node) {
				continue
			}
			doc.Spans = append(doc.Spans, s.traceFrom(r.Context(), node, key, root)...)
		}
	}
	doc.Sort()
	if q.Get("canon") != "" {
		doc = doc.Canonical()
	}
	s.respond(w, http.StatusOK, doc)
}

// traceFrom fetches one peer's span shard for a root execution. Best
// effort: an unreachable or trace-disabled peer contributes nothing rather
// than failing the assembly.
func (s *Server) traceFrom(ctx context.Context, node, key, root string) []obs.Span {
	ctx, cancel := context.WithTimeout(ctx, defaultPeerTimeout)
	defer cancel()
	u := node + "/v1/traces/" + key + "?local=1&root=" + url.QueryEscape(root)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var doc obs.TraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil
	}
	return doc.Spans
}
