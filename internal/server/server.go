// Package server is the hintm-served HTTP service: a long-running process
// that turns experiments into cacheable, addressable, queryable artifacts.
//
// Request lifecycle: POST /v1/runs accepts a run spec (or a grid of them),
// derives each spec's content address (the harness's canonical key), and
// answers store hits immediately; misses are enqueued onto the scheduler's
// worker pool, where the runner's single-flight dedup guarantees each
// distinct request simulates at most once no matter how many HTTP clients
// ask for it. Completed runs persist into the store, so a result computed
// once is a hit forever after — across restarts, and across processes
// sharing the store directory (hintm-bench -store warms the same cache
// this service serves from).
//
// Byte-identity: GET /v1/runs/{key} responds with the store's raw object
// bytes verbatim. Two GETs of the same key — cold-then-warm, today or
// after a restart — return byte-identical bodies; the X-Hintm-Store
// header says whether this response was served warm.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"hintm/internal/harness"
	"hintm/internal/obs"
	"hintm/internal/sim"
	"hintm/internal/store"
	"hintm/internal/workloads"
)

// Config assembles a Server.
type Config struct {
	// Store is the content-addressed result store (required).
	Store *store.Store
	// Options configures the scheduler; Options.Store/Metrics are
	// overwritten with the server's own.
	Options harness.Options
	// Metrics receives every component's counters (nil = a fresh registry).
	Metrics *obs.Metrics
}

// Server handles the /v1 API. Create with New, expose via Handler, and
// call Drain on shutdown to let enqueued runs finish persisting.
type Server struct {
	store   *store.Store
	runner  *harness.Runner
	opts    harness.Options
	metrics *obs.Metrics

	// baseCtx outlives individual HTTP requests: enqueued runs must not
	// die with the client connection that triggered them. Cancelling it
	// (via the cancel returned at New) aborts in-flight simulations during
	// a forced shutdown.
	baseCtx context.Context
	cancel  context.CancelFunc

	mux *http.ServeMux
	wg  sync.WaitGroup

	mu       sync.Mutex
	inflight map[string]bool
	draining bool
}

// New builds a server over cfg.
func New(cfg Config) *Server {
	m := cfg.Metrics
	if m == nil {
		m = obs.NewMetrics()
	}
	cfg.Store.SetMetrics(m)
	opts := cfg.Options
	opts.Store = cfg.Store
	opts.Metrics = m
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		store:    cfg.Store,
		runner:   harness.NewRunner(opts),
		opts:     opts,
		metrics:  m,
		baseCtx:  ctx,
		cancel:   cancel,
		mux:      http.NewServeMux(),
		inflight: make(map[string]bool),
	}
	s.mux.HandleFunc("POST /v1/runs", s.handleRuns)
	s.mux.HandleFunc("GET /v1/runs/{key}", s.handleRun)
	s.mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain waits for every enqueued run to complete (and persist) or for ctx
// to expire, whichever comes first; on expiry it cancels the in-flight
// simulations. Call after the HTTP listener has stopped accepting.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return fmt.Errorf("server: drain cut short: %w", ctx.Err())
	}
}

// RunSpec is the wire form of one experiment request. Scale defaults to
// the server's configured scale; HTM to p8; hints to none; SMT to 1.
type RunSpec struct {
	Workload string `json:"workload"`
	Scale    string `json:"scale,omitempty"`
	HTM      string `json:"htm,omitempty"`
	Hints    string `json:"hints,omitempty"`
	SMT      int    `json:"smt,omitempty"`
}

// parse resolves the spec into a harness Request.
func (s *Server) parse(spec RunSpec) (harness.Request, error) {
	var req harness.Request
	if spec.Workload == "" {
		return req, errors.New("missing workload")
	}
	if _, err := workloads.ByName(spec.Workload); err != nil {
		return req, err
	}
	req.Workload = spec.Workload
	req.Scale = s.opts.Scale
	if spec.Scale != "" {
		var err error
		if req.Scale, err = workloads.ParseScale(spec.Scale); err != nil {
			return req, err
		}
	}
	if spec.HTM != "" {
		var err error
		if req.HTM, err = sim.ParseHTMKind(spec.HTM); err != nil {
			return req, err
		}
	}
	if spec.Hints != "" {
		var err error
		if req.Hints, err = sim.ParseHintMode(spec.Hints); err != nil {
			return req, err
		}
	}
	req.SMT = spec.SMT
	return req, nil
}

// RunStatus is one submitted request's disposition.
type RunStatus struct {
	// Key is the request's content address; ResultURL dereferences it.
	Key       string `json:"key"`
	Request   string `json:"request"`
	ResultURL string `json:"resultUrl"`
	// Status: "hit" (already stored), "done" (simulated under ?wait=1),
	// "enqueued" (simulation started), "running" (already in flight),
	// "failed" (run error; Error has details).
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// runsRequest accepts either {"requests":[spec...]} or one inline spec.
type runsRequest struct {
	Requests []RunSpec `json:"requests"`
	RunSpec
}

type runsResponse struct {
	Runs []RunStatus `json:"runs"`
}

// handleRuns is POST /v1/runs: submit a request or a grid. With ?wait=1
// the response blocks until every submitted run completes (store hits
// still answer without simulating); without it, misses are enqueued and
// the client polls GET /v1/runs/{key}.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter("serve_requests_total").Inc()
	var body runsRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	specs := body.Requests
	if len(specs) == 0 {
		specs = []RunSpec{body.RunSpec}
	}
	reqs := make([]harness.Request, len(specs))
	for i, spec := range specs {
		var err error
		if reqs[i], err = s.parse(spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("requests[%d]: %w", i, err))
			return
		}
	}

	wait := r.URL.Query().Get("wait") != ""
	out := runsResponse{Runs: make([]RunStatus, len(reqs))}
	status := http.StatusOK
	for i, req := range reqs {
		key := s.runner.StoreKey(req)
		rs := RunStatus{Key: key, Request: req.String(), ResultURL: "/v1/runs/" + key}
		switch {
		case s.store.Contains(key):
			rs.Status = "hit"
		case wait:
			// The runner single-flights concurrent duplicates, so a grid
			// containing repeats still simulates each point once.
			if _, err := s.runner.Run(r.Context(), req); err != nil {
				rs.Status, rs.Error = "failed", err.Error()
			} else {
				rs.Status = "done"
			}
		default:
			rs.Status = s.enqueue(key, req)
			if rs.Status == "enqueued" || rs.Status == "running" {
				status = http.StatusAccepted
			}
		}
		out.Runs[i] = rs
	}
	writeJSON(w, status, out)
}

// enqueue starts req on the scheduler unless that key is already in
// flight; it reports the resulting status.
func (s *Server) enqueue(key string, req harness.Request) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[key] {
		return "running"
	}
	if s.draining || s.baseCtx.Err() != nil {
		return "failed" // draining: no new work
	}
	s.inflight[key] = true
	s.metrics.Counter("serve_queue_depth").Set(int64(len(s.inflight)))
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Errors are not lost: the failed key stays absent from the store
		// and a ?wait=1 resubmission reports the error inline.
		_, _ = s.runner.Run(s.baseCtx, req)
		s.mu.Lock()
		delete(s.inflight, key)
		s.metrics.Counter("serve_queue_depth").Set(int64(len(s.inflight)))
		s.mu.Unlock()
	}()
	return "enqueued"
}

// handleRun is GET /v1/runs/{key}: the stored entry verbatim (200), a
// progress report while the run is in flight (202), or 404.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter("serve_requests_total").Inc()
	key := r.PathValue("key")
	_, raw, err := s.store.Get(key)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if raw != nil {
		// The raw object file bytes, verbatim: every hit of a key serves
		// the identical body.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Hintm-Store", "hit")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
		return
	}
	s.mu.Lock()
	running := s.inflight[key]
	queue := len(s.inflight)
	s.mu.Unlock()
	if running {
		w.Header().Set("X-Hintm-Store", "miss")
		writeJSON(w, http.StatusAccepted, map[string]any{
			"key": key, "status": "running", "queueDepth": queue,
		})
		return
	}
	w.Header().Set("X-Hintm-Store", "miss")
	httpError(w, http.StatusNotFound, fmt.Errorf("no run with key %s (POST /v1/runs to submit)", key))
}

// handleFigure is GET /v1/figures/{name}: the named figure's rows,
// assembled by the scheduler — which means from the store when it is
// warm, so regenerating a figure over cached runs simulates nothing.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter("serve_requests_total").Inc()
	name := r.PathValue("name")
	build, ok := s.figureBuilders()[name]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown figure %q (want one of %v)", name, s.figureNames()))
		return
	}
	rows, err := build(r.Context())
	if r.Context().Err() != nil {
		httpError(w, http.StatusServiceUnavailable, r.Context().Err())
		return
	}
	resp := map[string]any{"figure": name, "rows": rows}
	if err != nil {
		// Degraded figures still serve their surviving rows, same contract
		// as hintm-bench.
		resp["error"] = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// figureBuilders maps API figure names onto harness builders.
func (s *Server) figureBuilders() map[string]func(context.Context) (any, error) {
	return map[string]func(context.Context) (any, error){
		"fig1": func(ctx context.Context) (any, error) { return s.runner.Fig1(ctx) },
		"fig4": func(ctx context.Context) (any, error) { return s.runner.Fig4(ctx) },
		"fig5": func(ctx context.Context) (any, error) { return s.runner.Fig5(ctx) },
		"fig6": func(ctx context.Context) (any, error) { return s.runner.Fig6(ctx) },
		"fig7": func(ctx context.Context) (any, error) { return s.runner.Fig7(ctx) },
		"fig8": func(ctx context.Context) (any, error) { return s.runner.Fig8(ctx) },
	}
}

func (s *Server) figureNames() []string {
	names := make([]string, 0, 6)
	for name := range s.figureBuilders() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// handleHealthz is the liveness/readiness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queue := len(s.inflight)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"schema":       store.Schema,
		"storeEntries": s.store.Len(),
		"queueDepth":   queue,
	})
}

// handleMetrics renders the shared registry (store hit/miss/put counters,
// scheduler run counts, in-flight workers, queue depth) in Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.metrics.Counter("serve_queue_depth").Set(int64(len(s.inflight)))
	s.mu.Unlock()
	s.metrics.Counter("store_entries").Set(int64(s.store.Len()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.Render(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
