// Package server is the hintm-served HTTP service: a long-running process
// that turns experiments into cacheable, addressable, queryable artifacts,
// and — deployed as a fleet — scales them across nodes.
//
// Request lifecycle: POST /v1/runs accepts a run spec (or a grid of them)
// and POST /v1/grids accepts a batched grid answered as an NDJSON event
// stream. Each spec's content address (the harness's canonical key) is
// derived up front; local store hits answer immediately; on a miss, the
// key's ring owner and replicas are asked for the result (peer fetch)
// before anything simulates; only then does the run enter the scheduler's
// worker pool, where single-flight dedup guarantees each distinct request
// simulates at most once. Completed runs persist into the local store and
// are forwarded to the key's ring owners, so a result computed once is a
// warm hit everywhere, forever — across restarts, across processes, and
// across the fleet.
//
// Admission control: the server carries a bounded work queue. Submissions
// that would exceed it are refused with 429 and a Retry-After header
// rather than queued without bound — under overload the service sheds
// load, it does not grow latency indefinitely.
//
// Wire format: hintm-api/v2 (see internal/api). Every response carries the
// schema in its body and the X-Hintm-Api header; errors are typed
// {code, message, detail} envelopes. Clients pinning the deprecated v1
// error shape may send `X-Hintm-Api: hintm-api/v1`.
//
// Byte-identity: GET /v1/runs/{key} responds with the store's raw object
// bytes verbatim, and fleet replication (PutRaw) moves those bytes
// unchanged — so every GET of the same key, on any node, cold or warm,
// today or after a restart, returns a byte-identical body.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hintm/internal/api"
	"hintm/internal/fleet"
	"hintm/internal/harness"
	"hintm/internal/obs"
	"hintm/internal/sim"
	"hintm/internal/store"
	"hintm/internal/workloads"
)

// DefaultQueueLimit bounds admitted-but-unfinished runs (async queue plus
// active synchronous work) when Config.QueueLimit is zero.
const DefaultQueueLimit = 256

// MaxGridRuns caps one POST /v1/grids submission.
const MaxGridRuns = 4096

// FleetConfig describes this node's place in a multi-node deployment. The
// zero value means single-node operation (no peer fetch, no forwarding).
type FleetConfig struct {
	// Self is this node's advertised base URL (e.g. http://10.0.0.1:8347);
	// it must appear in Peers.
	Self string
	// Peers lists every node's base URL, including Self. All nodes must
	// agree on the set (spelling order is irrelevant) for placement to
	// agree.
	Peers []string
	// Replicas is how many ring owners hold (and are asked for) each key
	// (default 2, clamped to the fleet size).
	Replicas int
	// Client performs peer HTTP calls (nil = a client with a short timeout).
	Client *http.Client
	// PeerBudget bounds the total peer time one miss may spend before
	// degrading to a local simulation (default 2s). Split into per-call
	// deadlines across the key's owners.
	PeerBudget time.Duration
	// BreakerThreshold is how many consecutive peer-call failures open a
	// peer's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerBackoff is the first open→probe delay; each failed probe
	// doubles it, with seeded jitter, up to 30s (default 500ms).
	BreakerBackoff time.Duration
	// HealthSeed seeds the backoff jitter stream (default 1).
	HealthSeed uint64
	// ReplQueue bounds the async replication queue; overflow drops the
	// oldest item, counted (default 1024).
	ReplQueue int
	// ReplWorkers is how many goroutines drain the replication queue
	// (default 2).
	ReplWorkers int
	// AntiEntropy is the background repair sweep interval; every interval
	// the node re-replicates locally-held keys to owners that miss them
	// (0 = sweeps disabled).
	AntiEntropy time.Duration
}

// Config assembles a Server.
type Config struct {
	// Store is the content-addressed result store (required).
	Store *store.Store
	// Options configures the scheduler; Options.Store/Metrics are
	// overwritten with the server's own.
	Options harness.Options
	// Metrics receives every component's counters (nil = a fresh registry).
	Metrics *obs.Metrics
	// Fleet enables multi-node operation (zero value = single node).
	Fleet FleetConfig
	// QueueLimit bounds the admitted-but-unfinished run count; submissions
	// beyond it get 429 + Retry-After (0 = DefaultQueueLimit).
	QueueLimit int
	// TraceCapacity bounds how many root executions the fleet trace
	// recorder retains (0 = default 512; negative disables tracing — the
	// recorder is nil and the hot path records nothing).
	TraceCapacity int
}

// Server handles the /v1 API. Create with New, expose via Handler, and
// call Drain on shutdown to let enqueued runs finish persisting.
type Server struct {
	store   *store.Store
	runner  *harness.Runner
	opts    harness.Options
	metrics *obs.Metrics

	// Fleet placement: nil ring = single node.
	ring     *fleet.Ring
	self     string
	replicas int
	peerHTTP *http.Client

	// Fleet resilience: per-peer circuit breakers, the async replication
	// queue, and the anti-entropy bookkeeping. All nil/zero when single
	// node.
	health        *fleet.Health
	repl          *replicator
	peerBudget    time.Duration
	stopc         chan struct{} // closes to stop the probe and sweep loops
	stopOnce      sync.Once
	lastSweepUnix int64 // atomic; 0 = never swept

	queueLimit int

	// Observability: the fleet span recorder (nil = tracing disabled), the
	// node label stamped on histogram series, and the start time /healthz
	// reports uptime from.
	traces    *obs.FleetRecorder
	nodeLabel string
	started   time.Time

	// baseCtx outlives individual HTTP requests: enqueued runs must not
	// die with the client connection that triggered them. Cancelling it
	// (via the cancel returned at New) aborts in-flight simulations during
	// a forced shutdown.
	baseCtx context.Context
	cancel  context.CancelFunc

	mux *http.ServeMux
	wg  sync.WaitGroup

	mu       sync.Mutex
	inflight map[string]bool
	active   int // admitted synchronous work (wait/grid runs) not in inflight
	draining bool
}

// New builds a server over cfg.
func New(cfg Config) *Server {
	m := cfg.Metrics
	if m == nil {
		m = obs.NewMetrics()
	}
	cfg.Store.SetMetrics(m)
	opts := cfg.Options
	opts.Store = cfg.Store
	opts.Metrics = m
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		store:      cfg.Store,
		runner:     harness.NewRunner(opts),
		opts:       opts,
		metrics:    m,
		queueLimit: cfg.QueueLimit,
		baseCtx:    ctx,
		cancel:     cancel,
		mux:        http.NewServeMux(),
		inflight:   make(map[string]bool),
		started:    time.Now(),
	}
	if s.queueLimit <= 0 {
		s.queueLimit = DefaultQueueLimit
	}
	s.nodeLabel = cfg.Fleet.Self
	if s.nodeLabel == "" {
		s.nodeLabel = "local"
	}
	if cfg.TraceCapacity >= 0 {
		s.traces = obs.NewFleetRecorder(s.nodeLabel, cfg.TraceCapacity, m)
	}
	if len(cfg.Fleet.Peers) > 1 {
		s.ring = fleet.New(cfg.Fleet.Peers)
		s.self = cfg.Fleet.Self
		s.replicas = cfg.Fleet.Replicas
		if s.replicas <= 0 {
			s.replicas = 2
		}
		if s.replicas > s.ring.Len() {
			s.replicas = s.ring.Len()
		}
		s.peerHTTP = cfg.Fleet.Client
		if s.peerHTTP == nil {
			s.peerHTTP = &http.Client{Timeout: defaultPeerTimeout}
		}
		s.peerBudget = cfg.Fleet.PeerBudget
		if s.peerBudget <= 0 {
			s.peerBudget = defaultPeerBudget
		}
		seed := cfg.Fleet.HealthSeed
		if seed == 0 {
			seed = 1
		}
		s.health = fleet.NewHealth(fleet.HealthConfig{
			Threshold: cfg.Fleet.BreakerThreshold,
			Backoff:   cfg.Fleet.BreakerBackoff,
			Seed:      seed,
			Metrics:   m,
		})
		s.repl = newReplicator(s, cfg.Fleet.ReplQueue, cfg.Fleet.ReplWorkers)
		s.stopc = make(chan struct{})
		go s.probeLoop()
		if cfg.Fleet.AntiEntropy > 0 {
			go s.sweepLoop(cfg.Fleet.AntiEntropy)
		}
	}
	s.mux.HandleFunc("POST /v1/runs", s.handleRuns)
	s.mux.HandleFunc("POST /v1/grids", s.handleGrids)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{key}", s.handleRun)
	s.mux.HandleFunc("PUT /v1/runs/{key}", s.handleReplicate)
	s.mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	s.mux.HandleFunc("GET /v1/traces/{key}", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain waits for every enqueued run to complete (and persist) or for ctx
// to expire, whichever comes first; on expiry it cancels the in-flight
// simulations. Queued replications are flushed within the same budget, so
// a graceful shutdown does not orphan forwards. Call after the HTTP
// listener has stopped accepting.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if s.stopc != nil {
		s.stopOnce.Do(func() { close(s.stopc) }) // stop probe + sweep loops
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel()
		<-done
		err = fmt.Errorf("server: drain cut short: %w", ctx.Err())
	}
	if s.repl != nil {
		// Flush what the drained runs enqueued; on expiry, stop the workers
		// (close aborts in-flight retries via baseCtx once cancelled).
		if qerr := s.repl.quiesce(ctx); qerr != nil && err == nil {
			err = fmt.Errorf("server: replication drain cut short: %w", qerr)
		}
		if ctx.Err() != nil {
			s.cancel()
		}
		s.repl.close()
	}
	return err
}

// probeLoop periodically asks the health tracker for open breakers whose
// probe time has arrived and probes each peer's /healthz; a success closes
// the breaker, a failure reopens it with doubled backoff. This is how a
// dead peer comes back without waiting for request traffic to retry it.
func (s *Server) probeLoop() {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case now := <-t.C:
			for _, peer := range s.health.Due(now) {
				ctx, cancel := context.WithTimeout(s.baseCtx, time.Second)
				ok := s.probePeer(ctx, peer)
				cancel()
				s.health.Report(peer, ok, 0)
			}
		}
	}
}

func (s *Server) probePeer(ctx context.Context, peer string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		return false
	}
	s.metrics.Counter(obs.MetricProbes).Inc()
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ---- admission control ------------------------------------------------

// admit reserves n slots of the bounded work queue, or refuses. Callers
// must release exactly n slots (possibly from other goroutines) once the
// admitted work finishes.
func (s *Server) admit(n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active+len(s.inflight)+n > s.queueLimit {
		s.metrics.Counter(obs.MetricServeThrottled).Inc()
		return false
	}
	s.active += n
	return true
}

// release gives back n admitted slots.
func (s *Server) release(n int) {
	s.mu.Lock()
	s.active -= n
	s.mu.Unlock()
}

// load reports the admitted-but-unfinished run count.
func (s *Server) load() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active + len(s.inflight)
}

// ---- request parsing --------------------------------------------------

// parse resolves the wire spec into a harness Request.
func (s *Server) parse(spec api.RunSpec) (harness.Request, error) {
	var req harness.Request
	if spec.Workload == "" {
		return req, errors.New("missing workload")
	}
	if _, err := workloads.ByName(spec.Workload); err != nil {
		return req, err
	}
	req.Workload = spec.Workload
	req.Scale = s.opts.Scale
	if spec.Scale != "" {
		var err error
		if req.Scale, err = workloads.ParseScale(spec.Scale); err != nil {
			return req, err
		}
	}
	if spec.HTM != "" {
		var err error
		if req.HTM, err = sim.ParseHTMKind(spec.HTM); err != nil {
			return req, err
		}
	}
	if spec.Hints != "" {
		var err error
		if req.Hints, err = sim.ParseHintMode(spec.Hints); err != nil {
			return req, err
		}
	}
	req.SMT = spec.SMT
	return req, nil
}

// parseAll parses a batch, attributing the first failure to its index.
func (s *Server) parseAll(specs []api.RunSpec) ([]harness.Request, *api.Error) {
	reqs := make([]harness.Request, len(specs))
	for i, spec := range specs {
		var err error
		if reqs[i], err = s.parse(spec); err != nil {
			e := api.Errorf(api.CodeBadRequest, "invalid run spec")
			e.Detail = fmt.Sprintf("requests[%d]: %v", i, err)
			return nil, e
		}
	}
	return reqs, nil
}

// checkSchema validates an explicit request-body schema declaration.
func checkSchema(schema string) *api.Error {
	if schema != "" && schema != api.Schema {
		e := api.Errorf(api.CodeBadRequest, "unsupported request schema %q", schema)
		e.Detail = "this server speaks " + api.Schema
		return e
	}
	return nil
}

// ---- the resolution pipeline ------------------------------------------

// observeRequest records one resolve's wall time into the node-labeled
// serve_request_seconds histogram, by outcome.
func (s *Server) observeRequest(d time.Duration, outcome string) {
	s.metrics.Histogram(obs.MetricServeRequestSec,
		obs.L("node", s.nodeLabel), obs.L("outcome", outcome)).ObserveDuration(d)
}

// observePhase records one pipeline phase's wall time into the
// serve_phase_seconds histogram, labeled by node, phase, and outcome.
func (s *Server) observePhase(phase, outcome string, d time.Duration) {
	s.metrics.Histogram(obs.MetricServePhaseSec,
		obs.L("node", s.nodeLabel), obs.L("phase", phase), obs.L("outcome", outcome)).ObserveDuration(d)
}

// resolve answers one request end to end: the local store, then the key's
// ring owner and replicas (peer fetch), and only then — cold everywhere —
// the simulator. A cold result is forwarded to the key's owners so the
// next lookup is warm on any node. The warm path never simulates: it is
// bounded by one store lookup plus at most Replicas network hops.
//
// Each execution roots a fleet trace under the key's deterministic trace
// id, records one span per phase, and feeds the phase histograms.
// admitWait is the admission time the caller measured before calling in;
// it becomes the admission span.
func (s *Server) resolve(ctx context.Context, req harness.Request, admitWait time.Duration) api.RunStatus {
	key := s.runner.StoreKey(req)
	begin := time.Now()
	tr := s.traces.Root(key)
	root := tr.Start(0, obs.SpanRequest)
	tr.Add(root, obs.SpanAdmission, "", admitWait)
	s.observePhase("admission", "ok", admitWait)
	finish := func(rs api.RunStatus, outcome string, err error) api.RunStatus {
		tr.End(root, outcome, err)
		s.observeRequest(time.Since(begin), outcome)
		return rs
	}
	rs := api.RunStatus{Key: key, Request: req.String(), ResultURL: "/v1/runs/" + key}

	gid := tr.Start(root, obs.SpanStoreGet)
	gbegin := time.Now()
	if s.store.Contains(key) {
		tr.End(gid, "hit", nil)
		s.observePhase("store", "hit", time.Since(gbegin))
		rs.Status, rs.Source = "hit", "store"
		return finish(rs, "hit-store", nil)
	}
	tr.End(gid, "miss", nil)
	s.observePhase("store", "miss", time.Since(gbegin))

	if s.ring != nil {
		pbegin := time.Now()
		if raw := s.peerFetch(ctx, key, tr, root); raw != nil {
			s.observePhase("peer", "hit", time.Since(pbegin))
			pid := tr.Start(root, obs.SpanStorePut)
			_, err := s.store.PutRaw(raw)
			tr.End(pid, "peer-bytes", err)
			if err == nil {
				rs.Status, rs.Source = "hit", "peer"
				return finish(rs, "hit-peer", nil)
			}
			// A peer handed back bytes our store rejects: treat as a miss.
			s.metrics.Counter(obs.MetricPeerInvalid).Inc()
		} else {
			s.observePhase("peer", "miss", time.Since(pbegin))
		}
	}

	mid := tr.Start(root, obs.SpanSimulate)
	mbegin := time.Now()
	if _, err := s.runner.Run(ctx, req); err != nil {
		tr.End(mid, "", err)
		s.observePhase("sim", "error", time.Since(mbegin))
		rs.Status = "failed"
		rs.Error = &api.Error{Code: api.CodeRunFailed, Message: err.Error()}
		return finish(rs, "failed", err)
	}
	tr.End(mid, "", nil)
	s.observePhase("sim", "ok", time.Since(mbegin))
	rs.Status, rs.Source = "done", "sim"
	// Replication is queued, not awaited, and runs on the server's base
	// context: the response does not wait for peer PUTs, and a client
	// disconnect cannot cancel replication mid-flight. The queued item
	// carries the trace context so the push spans land in this trace.
	qid := tr.Start(root, obs.SpanReplEnqueue)
	s.forward(key, tr.Context(qid))
	tr.End(qid, "", nil)
	return finish(rs, "sim", nil)
}

// ---- handlers ----------------------------------------------------------

// handleRuns is POST /v1/runs: submit a request or a grid. With ?wait=1
// the response blocks until every submitted run completes (store and peer
// hits still answer without simulating); without it, misses are enqueued
// and the client polls GET /v1/runs/{key}.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter(obs.MetricServeRequests).Inc()
	if !s.checkVersion(w, r) {
		return
	}
	var body api.RunsRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.writeError(w, r, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	if e := checkSchema(body.Schema); e != nil {
		s.writeError(w, r, http.StatusBadRequest, e)
		return
	}
	specs := body.Requests
	if len(specs) == 0 {
		specs = []api.RunSpec{body.RunSpec}
	}
	reqs, perr := s.parseAll(specs)
	if perr != nil {
		s.writeError(w, r, http.StatusBadRequest, perr)
		return
	}
	admitBegin := time.Now()
	if !s.admit(len(reqs)) {
		s.throttle(w, r, len(reqs))
		return
	}
	admitWait := time.Since(admitBegin)
	transferred := 0 // slots handed off to async goroutines

	wait := r.URL.Query().Get("wait") != ""
	out := api.RunsResponse{Schema: api.Schema, Runs: make([]api.RunStatus, len(reqs))}
	status := http.StatusOK
	for i, req := range reqs {
		var rs api.RunStatus
		if wait {
			// The runner single-flights concurrent duplicates, so a grid
			// containing repeats still simulates each point once.
			rs = s.resolve(r.Context(), req, admitWait)
		} else {
			key := s.runner.StoreKey(req)
			rs = api.RunStatus{Key: key, Request: req.String(), ResultURL: "/v1/runs/" + key}
			switch {
			case s.store.Contains(key):
				rs.Status, rs.Source = "hit", "store"
			default:
				rs.Status = s.enqueue(key, req)
				switch rs.Status {
				case "enqueued":
					transferred++
					status = http.StatusAccepted
				case "running":
					status = http.StatusAccepted
				case "failed":
					rs.Error = &api.Error{Code: api.CodeDraining, Message: "server is draining; no new work accepted"}
				}
			}
		}
		out.Runs[i] = rs
	}
	s.release(len(reqs) - transferred)
	s.respond(w, status, out)
}

// enqueue starts req on the scheduler unless that key is already in
// flight; it reports the resulting status. An "enqueued" return transfers
// one admitted queue slot to the background goroutine.
func (s *Server) enqueue(key string, req harness.Request) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[key] {
		return "running"
	}
	if s.draining || s.baseCtx.Err() != nil {
		return "failed" // draining: no new work
	}
	s.inflight[key] = true
	s.metrics.Counter(obs.MetricServeQueueDepth).Set(int64(len(s.inflight)))
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.release(1)
		// Errors are not lost: the failed key stays absent from the store
		// and a ?wait=1 resubmission reports the error inline. resolve
		// consults peers before simulating, same as the synchronous path.
		s.resolve(s.baseCtx, req, 0)
		s.mu.Lock()
		delete(s.inflight, key)
		s.metrics.Counter(obs.MetricServeQueueDepth).Set(int64(len(s.inflight)))
		s.mu.Unlock()
	}()
	return "enqueued"
}

// handleRun is GET /v1/runs/{key}: the stored entry verbatim (200, local
// or fetched from the key's ring owners), a progress report while the run
// is in flight (202), or a 404 envelope. ?local=1 restricts the lookup to
// this node's store — the form peers use, so fetches never cascade.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter(obs.MetricServeRequests).Inc()
	key := r.PathValue("key")
	localOnly := r.URL.Query().Get("local") != ""
	outcome := "miss"
	if localOnly {
		s.metrics.Counter(obs.MetricServedForPeer).Inc()
		// The serving half of a propagated peer fetch: record it into the
		// caller's trace so the assembled view shows both sides of the hop.
		if sc, ok := obs.ParseSpanContext(r.Header.Get(api.TraceHeader)); ok {
			tr := s.traces.Join(sc)
			sid := tr.StartFrom(sc, obs.SpanPeerServe)
			defer func() { tr.End(sid, outcome, nil) }()
		}
	}
	_, raw, err := s.store.Get(key)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	if raw == nil && !localOnly {
		if praw := s.peerFetch(r.Context(), key, nil, 0); praw != nil {
			if _, err := s.store.PutRaw(praw); err == nil {
				s.serveRaw(w, praw, "peer")
				return
			}
			s.metrics.Counter(obs.MetricPeerInvalid).Inc()
		}
	}
	if raw != nil {
		// The raw object file bytes, verbatim: every hit of a key — on any
		// node — serves the identical body.
		outcome = "hit"
		s.serveRaw(w, raw, "hit")
		return
	}
	s.mu.Lock()
	running := s.inflight[key]
	queue := len(s.inflight)
	s.mu.Unlock()
	w.Header().Set(api.StoreHeader, "miss")
	if running {
		s.respond(w, http.StatusAccepted, map[string]any{
			"schema": api.Schema, "key": key, "status": "running", "queueDepth": queue,
		})
		return
	}
	s.writeError(w, r, http.StatusNotFound,
		api.Errorf(api.CodeNotFound, "no run with key %s (POST /v1/runs to submit)", key))
}

func (s *Server) serveRaw(w http.ResponseWriter, raw []byte, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(api.Header, api.Schema)
	w.Header().Set(api.StoreHeader, source)
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

// handleReplicate is PUT /v1/runs/{key}: the fleet's internal replication
// path. The body is another node's raw object bytes; they are validated
// and stored verbatim, so replicas stay byte-identical to the original.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter(obs.MetricServeRequests).Inc()
	key := r.PathValue("key")
	outcome := "rejected"
	if sc, ok := obs.ParseSpanContext(r.Header.Get(api.TraceHeader)); ok {
		tr := s.traces.Join(sc)
		sid := tr.StartFrom(sc, obs.SpanReplRecv)
		defer func() { tr.End(sid, outcome, nil) }()
	}
	raw, err := readAll(r.Body, maxReplicaBytes)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "read body: %v", err))
		return
	}
	stored, err := s.store.PutRaw(raw)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	if stored != key {
		// The bytes were self-consistent but for a different key than the
		// URL claims; the store indexed them under their true address.
		s.writeError(w, r, http.StatusBadRequest,
			api.Errorf(api.CodeBadRequest, "body is entry %s, not %s", stored, key))
		return
	}
	outcome = "stored"
	s.metrics.Counter(obs.MetricReplicatedIn).Inc()
	s.respond(w, http.StatusOK, map[string]any{"schema": api.Schema, "key": key, "status": "stored"})
}

// handleFigure is GET /v1/figures/{name}: the named figure's rows,
// assembled by the scheduler — which means from the store when it is
// warm, so regenerating a figure over cached runs simulates nothing.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter(obs.MetricServeRequests).Inc()
	name := r.PathValue("name")
	build, ok := s.figureBuilders()[name]
	if !ok {
		s.writeError(w, r, http.StatusNotFound,
			api.Errorf(api.CodeNotFound, "unknown figure %q (want one of %v)", name, s.figureNames()))
		return
	}
	rows, err := build(r.Context())
	if r.Context().Err() != nil {
		s.writeError(w, r, http.StatusServiceUnavailable, api.Errorf(api.CodeUnavailable, "%v", r.Context().Err()))
		return
	}
	resp := map[string]any{"schema": api.Schema, "figure": name, "rows": rows}
	if err != nil {
		// Degraded figures still serve their surviving rows, same contract
		// as hintm-bench.
		resp["error"] = err.Error()
	}
	s.respond(w, http.StatusOK, resp)
}

// figureBuilders maps API figure names onto harness builders.
func (s *Server) figureBuilders() map[string]func(context.Context) (any, error) {
	return map[string]func(context.Context) (any, error){
		"fig1": func(ctx context.Context) (any, error) { return s.runner.Fig1(ctx) },
		"fig4": func(ctx context.Context) (any, error) { return s.runner.Fig4(ctx) },
		"fig5": func(ctx context.Context) (any, error) { return s.runner.Fig5(ctx) },
		"fig6": func(ctx context.Context) (any, error) { return s.runner.Fig6(ctx) },
		"fig7": func(ctx context.Context) (any, error) { return s.runner.Fig7(ctx) },
		"fig8": func(ctx context.Context) (any, error) { return s.runner.Fig8(ctx) },
	}
}

func (s *Server) figureNames() []string {
	names := make([]string, 0, 6)
	for name := range s.figureBuilders() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// handleHealthz is the liveness/readiness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queue := len(s.inflight)
	active := s.active
	s.mu.Unlock()
	resp := map[string]any{
		"status":        "ok",
		"schema":        store.Schema,
		"api":           api.Schema,
		"storeEntries":  s.store.Len(),
		"queueDepth":    queue,
		"active":        active,
		"queueLimit":    s.queueLimit,
		"uptimeSeconds": int64(time.Since(s.started).Seconds()),
		"buildInfo":     buildInfo(),
	}
	if s.ring != nil {
		resp["node"] = s.self
		resp["peers"] = s.ring.Nodes()
		// The fleet view: per-peer breaker state, replication queue
		// pressure, and anti-entropy progress. Schema documented in
		// DESIGN.md §15.
		fleetView := map[string]any{
			"breakers":           s.health.Snapshot(),
			"replicationQueue":   s.repl.depth(),
			"replicationDropped": s.metrics.Value(obs.MetricReplDropped),
			"repairedKeys":       s.metrics.Value(obs.MetricRepairKeys),
			"sweeps":             s.metrics.Value(obs.MetricAntiEntropySweep),
		}
		if last := atomic.LoadInt64(&s.lastSweepUnix); last > 0 {
			fleetView["lastSweep"] = time.Unix(last, 0).UTC().Format(time.RFC3339)
		}
		resp["fleet"] = fleetView
	}
	s.respond(w, http.StatusOK, resp)
}

// buildInfo reports what binary is serving: the Go toolchain version and,
// when the binary was built inside a git checkout, the VCS revision stamped
// by the toolchain.
func buildInfo() map[string]string {
	info := map[string]string{"goVersion": runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				info["vcsRevision"] = kv.Value
			case "vcs.time":
				info["vcsTime"] = kv.Value
			case "vcs.modified":
				info["vcsModified"] = kv.Value
			}
		}
	}
	return info
}

// handleMetrics renders the shared registry (store hit/miss/put counters,
// scheduler run counts, fleet peer fetch/hit/forward counters, latency
// histograms, queue depth) in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.metrics.Counter(obs.MetricServeQueueDepth).Set(int64(len(s.inflight)))
	s.metrics.Counter(obs.MetricServeActive).Set(int64(s.active))
	s.mu.Unlock()
	s.metrics.Counter(obs.MetricStoreEntries).Set(int64(s.store.Len()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Header().Set(api.Header, api.Schema)
	s.metrics.Render(w)
}

// ---- response plumbing -------------------------------------------------

// checkVersion rejects requests pinning an API version this server does
// not speak. Absent header = current version.
func (s *Server) checkVersion(w http.ResponseWriter, r *http.Request) bool {
	switch r.Header.Get(api.Header) {
	case "", api.Schema, api.SchemaV1:
		return true
	}
	s.writeError(w, r, http.StatusBadRequest,
		api.Errorf(api.CodeBadRequest, "unsupported %s %q (this server speaks %s)",
			api.Header, r.Header.Get(api.Header), api.Schema))
	return false
}

// throttle answers an over-limit submission: 429, a Retry-After derived
// from actual queue pressure, and a typed envelope naming the limit.
func (s *Server) throttle(w http.ResponseWriter, r *http.Request, n int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.load(), n, s.queueLimit)))
	e := api.Errorf(api.CodeOverloaded, "work queue full")
	e.Detail = fmt.Sprintf("load %d + submitted %d exceeds queue limit %d; retry after Retry-After seconds",
		s.load(), n, s.queueLimit)
	s.writeError(w, r, http.StatusTooManyRequests, e)
}

// retryAfterSeconds scales the retry hint with queue pressure: roughly 10
// seconds per full queue's worth of excess, clamped to [1, 30]. A barely
// over-limit submission is told to come right back; one that would double
// the queue is told to wait.
func retryAfterSeconds(load, submitted, limit int) int {
	if limit <= 0 {
		return 1
	}
	excess := load + submitted - limit
	if excess < 0 {
		excess = 0
	}
	secs := (excess*10 + limit - 1) / limit
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// respond writes a v2 success body with the version header.
func (s *Server) respond(w http.ResponseWriter, status int, v any) {
	w.Header().Set(api.Header, api.Schema)
	writeJSON(w, status, v)
}

// writeError writes the typed v2 error envelope — or, for clients pinning
// hintm-api/v1 via the X-Hintm-Api request header, the deprecated v1
// {"error": "..."} shape with a Deprecation note.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, e *api.Error) {
	if r.Header.Get(api.Header) == api.SchemaV1 {
		w.Header().Set(api.Header, api.SchemaV1)
		w.Header().Set("Deprecation", "true")
		w.Header().Set("X-Hintm-Api-Note",
			"hintm-api/v1 error bodies are deprecated; omit the X-Hintm-Api request header for "+api.Schema+" {code,message,detail} envelopes")
		writeJSON(w, status, map[string]any{"error": e.Error()})
		return
	}
	w.Header().Set(api.Header, api.Schema)
	writeJSON(w, status, api.ErrorEnvelope{Schema: api.Schema, Error: e})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// readAll reads r up to limit bytes, erroring beyond it.
func readAll(r io.Reader, limit int64) ([]byte, error) {
	buf, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(buf)) > limit {
		return nil, fmt.Errorf("body exceeds %d bytes", limit)
	}
	return buf, nil
}
