// Package profile implements the memory-sharing profiler behind the paper's
// Fig.-1 opportunity study: for every memory region touched by worker
// threads — at cache-block (64 B) and page (4 KiB) granularity — it records
// which threads read and wrote it, classifies the region as safe (no
// inter-thread read-write sharing across the whole run), and counts how many
// transactional reads target safe regions.
package profile

import (
	"hintm/internal/flat"
	"hintm/internal/mem"
	"hintm/internal/sim"
)

// threadSet is a bitmask of worker thread ids (the suite runs ≤ 16 threads).
type threadSet uint64

func (s threadSet) count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

type regionInfo struct {
	readers threadSet
	writers threadSet
}

// safe implements the paper's §II-B region criterion: a region is safe if
// there is no read-write sharing between two or more threads — i.e. it is
// never written, or accessed by a single thread only.
func (r regionInfo) safe() bool {
	if r.writers == 0 {
		return true
	}
	all := r.readers | r.writers
	return all.count() == 1
}

// Sharing profiles one run. It implements sim.Profiler.
type Sharing struct {
	// MaxWorkerTID filters out the main (setup) thread: only accesses by
	// tids <= MaxWorkerTID count, since Fig. 1 studies the parallel phase.
	MaxWorkerTID int

	blocks flat.Tab[regionInfo]
	pages  flat.Tab[regionInfo]

	txReads        uint64 // transactional reads observed
	txAccesses     uint64 // all transactional accesses
	deferredBlocks []access
}

type access struct {
	block, page uint64
	read        bool
}

// NewSharing returns a profiler accepting worker tids up to maxWorkerTID.
func NewSharing(maxWorkerTID int) *Sharing {
	s := &Sharing{MaxWorkerTID: maxWorkerTID}
	s.blocks.Init(1<<12, false)
	s.pages.Init(1<<8, false)
	return s
}

var _ sim.Profiler = (*Sharing)(nil)

// OnAccess implements sim.Profiler.
func (s *Sharing) OnAccess(tid int, addr mem.Addr, write, inTx bool) {
	if tid > s.MaxWorkerTID {
		return
	}
	bit := threadSet(1) << uint(tid&63)
	b := region(&s.blocks, addr.Block())
	p := region(&s.pages, addr.Page())
	if write {
		b.writers |= bit
		p.writers |= bit
	} else {
		b.readers |= bit
		p.readers |= bit
	}
	if inTx {
		s.txAccesses++
		if !write {
			s.txReads++
			s.deferredBlocks = append(s.deferredBlocks, access{
				block: addr.Block(), page: addr.Page(), read: true})
		}
	}
}

// region returns a pointer into the table's value slot for key, inserting an
// empty record on first touch. The pointer is only valid until the next Add
// (a grow rehashes into fresh backing), so callers must not retain it across
// OnAccess calls.
func region(t *flat.Tab[regionInfo], key uint64) *regionInfo {
	i, ok := t.Find(key)
	if !ok {
		i = t.Add(key, regionInfo{})
	}
	return &t.Vals[i]
}

// Report is the Fig.-1 metric set for one run.
type Report struct {
	// SafeBlockFrac / SafePageFrac: fraction of touched regions that are
	// safe over the whole execution, at each granularity.
	SafeBlockFrac, SafePageFrac float64
	// SafeReadFracBlock / SafeReadFracPage: fraction of transactional
	// accesses that are reads to safe regions, judged at each granularity
	// (the paper's ~60% / ~40% averages).
	SafeReadFracBlock, SafeReadFracPage float64
	// Totals for context.
	Blocks, Pages       int
	TxAccesses, TxReads uint64
}

// Report finalizes the metrics. Safety is judged over the whole run
// (post-mortem), exactly like the paper's limit study: a transactional read
// counts as safe if its region ends the run safe.
func (s *Sharing) Report() Report {
	var rep Report
	rep.Blocks = s.blocks.N
	rep.Pages = s.pages.N
	rep.TxAccesses = s.txAccesses
	rep.TxReads = s.txReads

	safeB, safeP := 0, 0
	for i, g := range s.blocks.Gens {
		if g == s.blocks.Gen && s.blocks.Vals[i].safe() {
			safeB++
		}
	}
	for i, g := range s.pages.Gens {
		if g == s.pages.Gen && s.pages.Vals[i].safe() {
			safeP++
		}
	}
	if rep.Blocks > 0 {
		rep.SafeBlockFrac = float64(safeB) / float64(rep.Blocks)
	}
	if rep.Pages > 0 {
		rep.SafePageFrac = float64(safeP) / float64(rep.Pages)
	}
	if s.txAccesses > 0 {
		var sb, sp uint64
		for _, a := range s.deferredBlocks {
			if bi, ok := s.blocks.Find(a.block); ok && s.blocks.Vals[bi].safe() {
				sb++
			}
			if pi, ok := s.pages.Find(a.page); ok && s.pages.Vals[pi].safe() {
				sp++
			}
		}
		rep.SafeReadFracBlock = float64(sb) / float64(s.txAccesses)
		rep.SafeReadFracPage = float64(sp) / float64(s.txAccesses)
	}
	return rep
}
