package profile

import (
	"testing"

	"hintm/internal/mem"
)

func TestRegionSafety(t *testing.T) {
	cases := []struct {
		name string
		r    regionInfo
		want bool
	}{
		{"untouched-read-only", regionInfo{readers: 0b111}, true},
		{"single-thread-rw", regionInfo{readers: 0b1, writers: 0b1}, true},
		{"single-writer-only", regionInfo{writers: 0b10}, true},
		{"reader-and-writer-differ", regionInfo{readers: 0b1, writers: 0b10}, false},
		{"two-writers", regionInfo{writers: 0b11}, false},
		{"many-readers-one-writer", regionInfo{readers: 0b111, writers: 0b100}, false},
	}
	for _, c := range cases {
		if got := c.r.safe(); got != c.want {
			t.Errorf("%s: safe = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSharingReport(t *testing.T) {
	s := NewSharing(7)
	blk := func(i uint64) mem.Addr { return mem.Addr(i * mem.BlockSize) }

	// Region A (block 0): read-only shared by threads 0,1 — safe.
	s.OnAccess(0, blk(0), false, true)
	s.OnAccess(1, blk(0), false, true)
	// Region B (block 1): thread 0 private RW — safe.
	s.OnAccess(0, blk(1), true, true)
	s.OnAccess(0, blk(1), false, true)
	// Region C (block 2): RW-shared — unsafe.
	s.OnAccess(0, blk(2), false, true)
	s.OnAccess(1, blk(2), true, true)
	// Main thread (tid 8 > max 7) must be ignored.
	s.OnAccess(8, blk(3), true, false)

	rep := s.Report()
	if rep.Blocks != 3 {
		t.Fatalf("blocks = %d, want 3 (main filtered)", rep.Blocks)
	}
	if rep.SafeBlockFrac < 0.66 || rep.SafeBlockFrac > 0.67 {
		t.Fatalf("safe block frac = %f, want 2/3", rep.SafeBlockFrac)
	}
	// 6 TX accesses; safe reads: 2 (A) + 1 (B read) + C read is unsafe.
	if rep.TxAccesses != 6 {
		t.Fatalf("tx accesses = %d", rep.TxAccesses)
	}
	want := 3.0 / 6.0
	if rep.SafeReadFracBlock != want {
		t.Fatalf("safe read frac = %f, want %f", rep.SafeReadFracBlock, want)
	}
}

func TestPageCoarserThanBlock(t *testing.T) {
	s := NewSharing(7)
	// Two blocks on the same page: thread 0 writes block 0, thread 1
	// writes block 70 (different page? no: block 70 is within page 1).
	// Use same-page blocks 0 and 1: block-granular both private-safe,
	// page-granular unsafe (two writers on one page).
	s.OnAccess(0, 0, true, true)
	s.OnAccess(1, mem.BlockSize, true, true)
	rep := s.Report()
	if rep.SafeBlockFrac != 1.0 {
		t.Fatalf("block frac = %f, want 1", rep.SafeBlockFrac)
	}
	if rep.SafePageFrac != 0.0 {
		t.Fatalf("page frac = %f, want 0", rep.SafePageFrac)
	}
	if rep.Pages != 1 || rep.Blocks != 2 {
		t.Fatalf("regions: %d pages %d blocks", rep.Pages, rep.Blocks)
	}
}

func TestNonTxNotCounted(t *testing.T) {
	s := NewSharing(7)
	s.OnAccess(0, 0, false, false)
	rep := s.Report()
	if rep.TxAccesses != 0 || rep.TxReads != 0 {
		t.Fatal("non-TX access counted as transactional")
	}
	if rep.Blocks != 1 {
		t.Fatal("region sharing must still be tracked outside TXs")
	}
}

func TestEmptyReportSafe(t *testing.T) {
	rep := NewSharing(7).Report()
	if rep.SafeBlockFrac != 0 || rep.SafeReadFracPage != 0 {
		t.Fatal("empty profiler should report zeros")
	}
}
