// Package cfg provides control-flow-graph utilities over TIR functions:
// successor/predecessor maps, reverse postorder, and the transaction-region
// analysis that determines which instructions execute inside a transaction
// (and under which TxBegin). The static classification passes build on it.
package cfg

import (
	"fmt"

	"hintm/internal/ir"
)

// Graph is the CFG of one function.
type Graph struct {
	F     *ir.Func
	Succs map[*ir.Block][]*ir.Block
	Preds map[*ir.Block][]*ir.Block
	// RPO is the blocks in reverse postorder from the entry; unreachable
	// blocks are excluded.
	RPO []*ir.Block
}

// New builds the CFG for f.
func New(f *ir.Func) *Graph {
	g := &Graph{
		F:     f,
		Succs: make(map[*ir.Block][]*ir.Block, len(f.Blocks)),
		Preds: make(map[*ir.Block][]*ir.Block, len(f.Blocks)),
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		term := b.Instrs[len(b.Instrs)-1]
		switch term.Op {
		case ir.OpBr:
			g.addEdge(b, f.Block(term.Then))
		case ir.OpCondBr:
			g.addEdge(b, f.Block(term.Then))
			g.addEdge(b, f.Block(term.Else))
		}
	}
	g.computeRPO()
	return g
}

func (g *Graph) addEdge(from, to *ir.Block) {
	if to == nil {
		return // verifier reports dangling targets
	}
	g.Succs[from] = append(g.Succs[from], to)
	g.Preds[to] = append(g.Preds[to], from)
}

func (g *Graph) computeRPO() {
	if len(g.F.Blocks) == 0 {
		return
	}
	seen := make(map[*ir.Block]bool)
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range g.Succs[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.F.Entry())
	g.RPO = make([]*ir.Block, len(post))
	for i, b := range post {
		g.RPO[len(post)-1-i] = b
	}
}

// Reachable reports the blocks reachable from the entry.
func (g *Graph) Reachable() map[*ir.Block]bool {
	r := make(map[*ir.Block]bool, len(g.RPO))
	for _, b := range g.RPO {
		r[b] = true
	}
	return r
}

// TxRegion maps each instruction inside a transaction to the ID of the
// TxBegin instruction that opens it. Instructions outside any transaction
// are absent. TxBegin itself is not in the region; TxEnd is.
type TxRegion map[*ir.Instr]int

// TxRegions computes the transaction membership of every instruction in f.
// Transactions may span blocks but must not nest, and every join point must
// agree on transaction state; violations return an error (they would be
// programming bugs in a workload kernel).
func TxRegions(f *ir.Func) (TxRegion, error) {
	g := New(f)
	region := make(TxRegion)
	// in[b] = ID of the open TxBegin at block entry, 0 if none, -1 unknown.
	in := make(map[*ir.Block]int, len(f.Blocks))
	for _, b := range f.Blocks {
		in[b] = -1
	}
	if len(g.RPO) == 0 {
		return region, nil
	}
	in[g.RPO[0]] = 0
	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO {
			state := in[b]
			if state == -1 {
				continue
			}
			for _, instr := range b.Instrs {
				switch instr.Op {
				case ir.OpTxBegin:
					if state != 0 {
						return nil, fmt.Errorf("cfg: nested TxBegin in %s.%s", f.Name, b.Name)
					}
					state = instr.ID
				case ir.OpTxEnd:
					if state == 0 {
						return nil, fmt.Errorf("cfg: TxEnd without TxBegin in %s.%s", f.Name, b.Name)
					}
					region[instr] = state
					state = 0
				default:
					if state != 0 {
						region[instr] = state
					}
				}
			}
			for _, s := range g.Succs[b] {
				switch in[s] {
				case -1:
					in[s] = state
					changed = true
				case state:
					// consistent
				default:
					return nil, fmt.Errorf("cfg: inconsistent transaction state at %s.%s", f.Name, s.Name)
				}
			}
		}
	}
	return region, nil
}

// InTx reports whether the instruction runs inside a transaction.
func (r TxRegion) InTx(in *ir.Instr) bool { _, ok := r[in]; return ok }
