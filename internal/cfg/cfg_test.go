package cfg

import (
	"strings"
	"testing"

	"hintm/internal/ir"
)

// diamond builds: entry -> (then|else) -> exit, with a TX spanning it all.
func diamond(t *testing.T, txSpans bool) *ir.Func {
	t.Helper()
	b := ir.NewBuilder("m")
	b.Global("g", 1)
	f := b.Function("main", 0)
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	exit := f.NewBlock("exit")

	if txSpans {
		f.TxBegin()
	}
	c := f.C(1)
	f.CondBr(c, then, els)

	f.SetBlock(then)
	g := f.GlobalAddr("g")
	f.Store(g, 0, c)
	f.Br(exit)

	f.SetBlock(els)
	f.Br(exit)

	f.SetBlock(exit)
	if txSpans {
		f.TxEnd()
	}
	f.RetVoid()

	if err := b.M.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return f.F
}

func TestCFGEdges(t *testing.T) {
	f := diamond(t, false)
	g := New(f)
	entry := f.Entry()
	if len(g.Succs[entry]) != 2 {
		t.Fatalf("entry succs = %d, want 2", len(g.Succs[entry]))
	}
	exit := f.Block("exit")
	if len(g.Preds[exit]) != 2 {
		t.Fatalf("exit preds = %d, want 2", len(g.Preds[exit]))
	}
	if len(g.RPO) != 4 {
		t.Fatalf("RPO covers %d blocks, want 4", len(g.RPO))
	}
	if g.RPO[0] != entry {
		t.Fatal("RPO does not start at entry")
	}
	// Exit must come after both branches in RPO.
	pos := map[string]int{}
	for i, blk := range g.RPO {
		pos[blk.Name] = i
	}
	if pos["exit"] < pos["then"] || pos["exit"] < pos["else"] {
		t.Fatalf("RPO order wrong: %v", pos)
	}
}

func TestUnreachableBlockExcluded(t *testing.T) {
	b := ir.NewBuilder("m")
	f := b.Function("main", 0)
	dead := f.NewBlock("dead")
	f.RetVoid()
	f.SetBlock(dead)
	f.RetVoid()
	g := New(f.F)
	if len(g.RPO) != 1 {
		t.Fatalf("RPO = %d blocks, want 1 (dead excluded)", len(g.RPO))
	}
	if g.Reachable()[dead] {
		t.Fatal("dead block reported reachable")
	}
}

func TestTxRegionSpanningBlocks(t *testing.T) {
	f := diamond(t, true)
	region, err := TxRegions(f)
	if err != nil {
		t.Fatalf("TxRegions: %v", err)
	}
	var begins, stores, ends, inTx int
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpTxBegin:
			begins++
			if region.InTx(in) {
				t.Error("TxBegin should not be inside its own region")
			}
		case ir.OpTxEnd:
			ends++
			if !region.InTx(in) {
				t.Error("TxEnd should belong to the region")
			}
		case ir.OpStore:
			stores++
			if !region.InTx(in) {
				t.Error("store inside TX not in region")
			}
		}
		if region.InTx(in) {
			inTx++
		}
	})
	if begins != 1 || ends != 1 || stores != 1 {
		t.Fatalf("unexpected counts: %d %d %d", begins, ends, stores)
	}
	if inTx < 4 {
		t.Fatalf("region too small: %d instrs", inTx)
	}
}

func TestTxRegionOutsideEmpty(t *testing.T) {
	f := diamond(t, false)
	region, err := TxRegions(f)
	if err != nil {
		t.Fatalf("TxRegions: %v", err)
	}
	if len(region) != 0 {
		t.Fatalf("no TX, but region has %d instrs", len(region))
	}
}

func TestTxRegionRejectsNesting(t *testing.T) {
	b := ir.NewBuilder("m")
	f := b.Function("main", 0)
	f.TxBegin()
	f.TxBegin()
	f.TxEnd()
	f.TxEnd()
	f.RetVoid()
	if _, err := TxRegions(f.F); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Fatalf("want nesting error, got %v", err)
	}
}

func TestTxRegionRejectsUnmatchedEnd(t *testing.T) {
	b := ir.NewBuilder("m")
	f := b.Function("main", 0)
	f.TxEnd()
	f.RetVoid()
	if _, err := TxRegions(f.F); err == nil || !strings.Contains(err.Error(), "without TxBegin") {
		t.Fatalf("want unmatched error, got %v", err)
	}
}

func TestTxRegionRejectsInconsistentJoin(t *testing.T) {
	// entry: condbr -> a (txbegin, br join) | b (br join); join: ret
	// Join sees TX-open from a and TX-closed from b.
	b := ir.NewBuilder("m")
	f := b.Function("main", 0)
	ba := f.NewBlock("a")
	bb := f.NewBlock("b")
	join := f.NewBlock("join")
	c := f.C(1)
	f.CondBr(c, ba, bb)
	f.SetBlock(ba)
	f.TxBegin()
	f.Br(join)
	f.SetBlock(bb)
	f.Br(join)
	f.SetBlock(join)
	f.TxEnd()
	f.RetVoid()
	if _, err := TxRegions(f.F); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("want inconsistency error, got %v", err)
	}
}

func TestTxRegionLoopInsideTx(t *testing.T) {
	// txbegin; loop { store } cond; txend — region must be stable across
	// the back edge.
	b := ir.NewBuilder("m")
	b.Global("g", 1)
	f := b.Function("main", 0)
	loop := f.NewBlock("loop")
	done := f.NewBlock("done")
	f.TxBegin()
	f.Br(loop)
	f.SetBlock(loop)
	g := f.GlobalAddr("g")
	v := f.C(7)
	f.Store(g, 0, v)
	c := f.RandI(2)
	f.CondBr(c, loop, done)
	f.SetBlock(done)
	f.TxEnd()
	f.RetVoid()
	region, err := TxRegions(f.F)
	if err != nil {
		t.Fatalf("TxRegions: %v", err)
	}
	f.F.ForEachInstr(func(blk *ir.Block, in *ir.Instr) {
		if blk.Name == "loop" && !region.InTx(in) {
			t.Errorf("loop instr %v not in TX region", in)
		}
	})
}

func TestTwoSequentialTransactionsDistinct(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("g", 1)
	f := b.Function("main", 0)
	g := f.GlobalAddr("g")
	v := f.C(1)
	f.TxBegin()
	f.Store(g, 0, v)
	f.TxEnd()
	f.TxBegin()
	f.Store(g, 0, v)
	f.TxEnd()
	f.RetVoid()
	region, err := TxRegions(f.F)
	if err != nil {
		t.Fatalf("TxRegions: %v", err)
	}
	ids := map[int]bool{}
	f.F.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpStore {
			ids[region[in]] = true
		}
	})
	if len(ids) != 2 {
		t.Fatalf("stores should belong to 2 distinct regions, got %d", len(ids))
	}
}
