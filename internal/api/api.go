// Package api is the hintm-served wire format, version hintm-api/v2.
//
// Every request and response that crosses the HTTP boundary is spelled
// here, in one place, so the server (internal/server), the load generator
// (internal/loadgen), and any external client agree on the bytes. The
// format is explicitly versioned: responses carry a `schema` field and the
// X-Hintm-Api header, requests may state the schema they speak (an
// unrecognized one is rejected rather than misread), and errors are a
// typed envelope — {code, message, detail} — instead of prose, so clients
// branch on Code and humans read Message.
//
// v1 compatibility: the v1 surface (plain {"error": "..."} bodies) is
// still reachable by sending `X-Hintm-Api: hintm-api/v1`; such responses
// carry a Deprecation header. New clients should not use it.
package api

import "fmt"

// Schema versions the wire format. It appears on every v2 response body
// and in the X-Hintm-Api response header.
const (
	Schema   = "hintm-api/v2"
	SchemaV1 = "hintm-api/v1"
)

// Header is the API version header. Servers set it on every response;
// clients may set it on requests to pin a version (unknown values are
// rejected with CodeBadRequest).
const Header = "X-Hintm-Api"

// StoreHeader reports how GET /v1/runs/{key} was served: "hit" (local
// store), "peer" (fetched from a sibling node), or "miss".
const StoreHeader = "X-Hintm-Store"

// TraceHeader carries the fleet trace context between nodes:
// "trace|root|parentNode|parentSpan|hop" (see obs.SpanContext). Absent or
// malformed values mean the request is untraced; they are never an error.
const TraceHeader = "X-Hintm-Trace"

// Error codes. Clients branch on these; Message/Detail are for humans.
const (
	CodeBadRequest  = "bad_request" // malformed body, unknown field value
	CodeNotFound    = "not_found"   // no such run key or figure
	CodeOverloaded  = "overloaded"  // admission control refused; retry later
	CodeDraining    = "draining"    // shutting down; no new work accepted
	CodeUnavailable = "unavailable" // transient server-side condition
	CodeInternal    = "internal"    // bug or I/O failure; not the client's fault
	CodeRunFailed   = "run_failed"  // the simulation itself failed
)

// Error is the typed error payload: Code is stable and machine-matchable,
// Message says what went wrong, Detail (optional) says about which input.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
}

// Error implements the error interface so an api.Error can travel through
// ordinary Go error plumbing.
func (e *Error) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s: %s (%s)", e.Code, e.Message, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Errorf builds a typed Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorEnvelope is the v2 error response body.
type ErrorEnvelope struct {
	Schema string `json:"schema"`
	Error  *Error `json:"error"`
}

// RunSpec is the wire form of one experiment request. Zero fields default
// server-side: Scale to the server's configured scale, HTM to p8, Hints to
// none, SMT to 1.
type RunSpec struct {
	Workload string `json:"workload"`
	Scale    string `json:"scale,omitempty"`
	HTM      string `json:"htm,omitempty"`
	Hints    string `json:"hints,omitempty"`
	SMT      int    `json:"smt,omitempty"`
}

// RunStatus is one submitted request's disposition.
type RunStatus struct {
	// Key is the request's content address; ResultURL dereferences it on
	// any node of the fleet.
	Key       string `json:"key"`
	Request   string `json:"request"`
	ResultURL string `json:"resultUrl"`
	// Status: "hit" (result already existed), "done" (simulated now),
	// "enqueued" (simulation started), "running" (already in flight),
	// "failed" (Error has details).
	Status string `json:"status"`
	// Source says where a hit/done result came from: "store" (this node's
	// store), "peer" (fetched from a sibling), "sim" (simulated here).
	Source string `json:"source,omitempty"`
	Error  *Error `json:"error,omitempty"`
}

// RunsRequest is the POST /v1/runs body: either {"requests":[spec...]} or
// one inline spec. Schema, when present, must name a version the server
// speaks.
type RunsRequest struct {
	Schema   string    `json:"schema,omitempty"`
	Requests []RunSpec `json:"requests"`
	RunSpec
}

// RunsResponse is the POST /v1/runs response body.
type RunsResponse struct {
	Schema string      `json:"schema"`
	Runs   []RunStatus `json:"runs"`
}

// GridRequest is the POST /v1/grids body: a batched submission of up to
// hundreds of RunSpecs, answered as an NDJSON event stream.
type GridRequest struct {
	Schema   string    `json:"schema,omitempty"`
	Requests []RunSpec `json:"requests"`
}

// GridRun is one grid cell's outcome, indexed by its position in the
// submitted Requests slice.
type GridRun struct {
	Index int `json:"index"`
	RunStatus
}

// GridSummary totals a grid submission. Hits counts local-store answers,
// PeerHits results fetched from siblings, Simulated cold runs executed
// here, Failed runs that errored.
type GridSummary struct {
	Total     int `json:"total"`
	Hits      int `json:"hits"`
	PeerHits  int `json:"peerHits"`
	Simulated int `json:"simulated"`
	Failed    int `json:"failed"`
}

// GridEvent is one line of the POST /v1/grids NDJSON response stream:
//
//	{"schema":"hintm-api/v2","event":"accepted","total":N}
//	{"schema":"hintm-api/v2","event":"run","run":{"index":0,...}}   × N, in index order
//	{"schema":"hintm-api/v2","event":"done","summary":{...}}
//
// Run events are emitted in submission-index order (completions buffer
// until every lower index has been reported), so the whole stream is
// byte-deterministic whenever the per-run outcomes are — the property the
// grid determinism test asserts.
type GridEvent struct {
	Schema  string       `json:"schema"`
	Event   string       `json:"event"` // "accepted" | "run" | "done"
	Total   int          `json:"total,omitempty"`
	Run     *GridRun     `json:"run,omitempty"`
	Summary *GridSummary `json:"summary,omitempty"`
}

// ListItem is one stored run in a GET /v1/runs listing: the store-index
// summary plus the dereferencing URL.
type ListItem struct {
	Key       string `json:"key"`
	Seq       uint64 `json:"seq"`
	Size      int64  `json:"size"`
	Workload  string `json:"workload,omitempty"`
	Scale     string `json:"scale,omitempty"`
	HTM       string `json:"htm,omitempty"`
	Hints     string `json:"hints,omitempty"`
	ResultURL string `json:"resultUrl"`
}

// ListResponse is the GET /v1/runs response. NextAfter, when non-zero, is
// the `after` cursor for the next page (pagination is by store sequence
// number, which is stable across reads).
type ListResponse struct {
	Schema    string     `json:"schema"`
	Runs      []ListItem `json:"runs"`
	NextAfter uint64     `json:"nextAfter,omitempty"`
}
