package api

import (
	"encoding/json"
	"testing"
)

func TestErrorRendering(t *testing.T) {
	e := Errorf(CodeBadRequest, "invalid run spec")
	if got := e.Error(); got != "bad_request: invalid run spec" {
		t.Errorf("Error() = %q", got)
	}
	e.Detail = "requests[2]: unknown workload"
	if got := e.Error(); got != "bad_request: invalid run spec (requests[2]: unknown workload)" {
		t.Errorf("Error() with detail = %q", got)
	}
}

// TestEnvelopeWireShape pins the JSON field names clients match on.
func TestEnvelopeWireShape(t *testing.T) {
	env := ErrorEnvelope{Schema: Schema, Error: &Error{Code: CodeOverloaded, Message: "work queue full", Detail: "limit 2"}}
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"hintm-api/v2","error":{"code":"overloaded","message":"work queue full","detail":"limit 2"}}`
	if string(raw) != want {
		t.Errorf("envelope bytes:\n%s\nwant\n%s", raw, want)
	}
}

// TestRunsRequestBothShapes: the body accepts a batch and a single inline
// spec, like the v1 API did.
func TestRunsRequestBothShapes(t *testing.T) {
	var batch RunsRequest
	if err := json.Unmarshal([]byte(`{"schema":"hintm-api/v2","requests":[{"workload":"a"},{"workload":"b"}]}`), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Requests) != 2 || batch.Requests[1].Workload != "b" || batch.Schema != Schema {
		t.Errorf("batch: %+v", batch)
	}
	var single RunsRequest
	if err := json.Unmarshal([]byte(`{"workload":"labyrinth","htm":"p8s","smt":2}`), &single); err != nil {
		t.Fatal(err)
	}
	if len(single.Requests) != 0 || single.Workload != "labyrinth" || single.HTM != "p8s" || single.SMT != 2 {
		t.Errorf("single: %+v", single)
	}
}

// TestGridEventOmitsEmpty: run and summary events stay compact — absent
// sections are omitted, which the NDJSON byte-determinism tests rely on.
func TestGridEventOmitsEmpty(t *testing.T) {
	raw, _ := json.Marshal(GridEvent{Schema: Schema, Event: "accepted", Total: 3})
	want := `{"schema":"hintm-api/v2","event":"accepted","total":3}`
	if string(raw) != want {
		t.Errorf("accepted event: %s", raw)
	}
}
