package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if WordsPerPage != 512 || WordsPerBlock != 8 || BlocksPerPage != 64 {
		t.Fatalf("geometry mismatch: %d %d %d", WordsPerPage, WordsPerBlock, BlocksPerPage)
	}
}

func TestAddrDerivations(t *testing.T) {
	a := Addr(0x1234)
	if a.Block() != 0x1234/64 {
		t.Errorf("Block() = %d", a.Block())
	}
	if a.Page() != 0x1234/4096 {
		t.Errorf("Page() = %d", a.Page())
	}
	if a.BlockBase() != 0x1200 {
		t.Errorf("BlockBase() = %v", a.BlockBase())
	}
	if a.PageBase() != 0x1000 {
		t.Errorf("PageBase() = %v", a.PageBase())
	}
	if !Addr(16).WordAligned() || Addr(17).WordAligned() {
		t.Error("WordAligned misbehaves")
	}
	if PageAddr(3) != 3*4096 || BlockAddr(5) != 5*64 {
		t.Error("PageAddr/BlockAddr misbehave")
	}
}

func TestAddrDerivationsProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw &^ 7) // word aligned
		return a.BlockBase() <= a &&
			a < a.BlockBase()+BlockSize &&
			a.PageBase() <= a &&
			a < a.PageBase()+PageSize &&
			a.BlockBase().Block() == a.Block() &&
			a.PageBase().Page() == a.Page()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if got := m.ReadWord(0x1000); got != 0 {
		t.Fatalf("unwritten memory read %d, want 0", got)
	}
	m.WriteWord(0x1000, 42)
	m.WriteWord(0x1008, -7)
	if got := m.ReadWord(0x1000); got != 42 {
		t.Errorf("ReadWord(0x1000) = %d", got)
	}
	if got := m.ReadWord(0x1008); got != -7 {
		t.Errorf("ReadWord(0x1008) = %d", got)
	}
	if m.TouchedPages() != 1 {
		t.Errorf("TouchedPages = %d, want 1", m.TouchedPages())
	}
	m.WriteWord(PageAddr(99), 1)
	if m.TouchedPages() != 2 {
		t.Errorf("TouchedPages = %d, want 2", m.TouchedPages())
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	m := NewMemory()
	f := func(raw uint64, v int64) bool {
		a := Addr(raw &^ 7)
		m.WriteWord(a, v)
		return m.ReadWord(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryUnalignedPanics(t *testing.T) {
	m := NewMemory()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned read")
		}
	}()
	m.ReadWord(3)
}

func TestSegments(t *testing.T) {
	al := NewAllocator()
	g := al.AllocGlobal(16)
	h := al.Malloc(0, 16)
	s := al.StackAlloc(2, 16)
	if SegmentOf(g) != SegGlobals {
		t.Errorf("global segment = %v", SegmentOf(g))
	}
	if SegmentOf(h) != SegHeap {
		t.Errorf("heap segment = %v", SegmentOf(h))
	}
	if SegmentOf(s) != SegStack {
		t.Errorf("stack segment = %v", SegmentOf(s))
	}
	if StackOwner(s) != 2 {
		t.Errorf("StackOwner = %d, want 2", StackOwner(s))
	}
	if SegmentOf(0x10) != SegUnknown {
		t.Errorf("low address should be unknown segment")
	}
	for _, seg := range []Segment{SegGlobals, SegHeap, SegStack, SegUnknown} {
		if seg.String() == "" {
			t.Error("empty segment name")
		}
	}
}

func TestAllocatorGlobalBump(t *testing.T) {
	al := NewAllocator()
	a := al.AllocGlobal(10) // rounds to 16
	b := al.AllocGlobal(8)
	if b != a+16 {
		t.Errorf("global bump: a=%v b=%v", a, b)
	}
	c := al.AllocGlobalPageAligned(8)
	if uint64(c)%PageSize != 0 {
		t.Errorf("page-aligned global %v not aligned", c)
	}
	if c < b {
		t.Errorf("page-aligned global %v overlaps previous %v", c, b)
	}
}

func TestMallocPerThreadArenaSeparation(t *testing.T) {
	al := NewAllocator()
	a0 := al.Malloc(0, 64)
	a1 := al.Malloc(1, 64)
	if a0.Page() == a1.Page() {
		t.Errorf("threads share an arena page: %v vs %v", a0, a1)
	}
	b0 := al.Malloc(0, 64)
	if b0.Page() != a0.Page() {
		t.Errorf("same-thread small allocs should share a page early on")
	}
}

func TestMallocFreeRecycles(t *testing.T) {
	al := NewAllocator()
	a := al.Malloc(0, 48)
	al.Free(0, a, 48)
	b := al.Malloc(0, 48)
	if a != b {
		t.Errorf("free-list recycle failed: %v then %v", a, b)
	}
}

func TestMallocLargePageAligned(t *testing.T) {
	al := NewAllocator()
	a := al.Malloc(0, 1<<17)
	if uint64(a)%PageSize != 0 {
		t.Errorf("large alloc %v not page aligned", a)
	}
	b := al.Malloc(0, 8)
	if b >= a && b < a+(1<<17) {
		t.Errorf("small alloc %v landed inside large block at %v", b, a)
	}
}

func TestMallocNonOverlapProperty(t *testing.T) {
	al := NewAllocator()
	type span struct{ lo, hi Addr }
	var spans []span
	sizes := []int64{8, 16, 24, 64, 128, 4096, 70000}
	for i := 0; i < 400; i++ {
		tid := i % 4
		sz := sizes[i%len(sizes)]
		a := al.Malloc(tid, sz)
		rounded := (sz + 7) &^ 7
		s := span{a, a + Addr(rounded)}
		for _, prev := range spans {
			if s.lo < prev.hi && prev.lo < s.hi {
				t.Fatalf("overlap: [%v,%v) with [%v,%v)", s.lo, s.hi, prev.lo, prev.hi)
			}
		}
		spans = append(spans, s)
	}
}

func TestStackAllocRelease(t *testing.T) {
	al := NewAllocator()
	base := al.StackTop(1)
	f1 := al.StackAlloc(1, 32)
	if f1 != base {
		t.Errorf("first frame at %v, want %v", f1, base)
	}
	f2 := al.StackAlloc(1, 32)
	if f2 != f1+32 {
		t.Errorf("second frame at %v, want %v", f2, f1+32)
	}
	al.StackRelease(1, f2)
	f3 := al.StackAlloc(1, 8)
	if f3 != f2 {
		t.Errorf("release/realloc: %v, want %v", f3, f2)
	}
}

func TestStackIsolationBetweenThreads(t *testing.T) {
	al := NewAllocator()
	s0 := al.StackAlloc(0, 1024)
	s1 := al.StackAlloc(1, 1024)
	if StackOwner(s0) != 0 || StackOwner(s1) != 1 {
		t.Errorf("stack owners wrong: %d %d", StackOwner(s0), StackOwner(s1))
	}
	if s0.Page() == s1.Page() {
		t.Error("thread stacks share a page")
	}
}

func TestStackOverflowPanics(t *testing.T) {
	al := NewAllocator()
	defer func() {
		if recover() == nil {
			t.Fatal("expected stack overflow panic")
		}
	}()
	for i := 0; i < 20; i++ {
		al.StackAlloc(0, StackStride/8)
	}
}
