package mem

import "testing"

func TestMemoryCloneIndependence(t *testing.T) {
	m := NewMemory()
	// Touch several pages so the clone copies a multi-page index.
	for i := 0; i < 5; i++ {
		m.WriteWord(Addr(uint64(i)*PageSize), int64(i+1))
	}
	c := m.Clone()
	if c.TouchedPages() != m.TouchedPages() {
		t.Fatalf("clone touched %d pages, original %d", c.TouchedPages(), m.TouchedPages())
	}
	for i := 0; i < 5; i++ {
		if v := c.ReadWord(Addr(uint64(i) * PageSize)); v != int64(i+1) {
			t.Fatalf("clone page %d = %d, want %d", i, v, i+1)
		}
	}

	// Writes through either side — to existing pages and to fresh ones —
	// must never reach the other.
	c.WriteWord(Addr(0), 42)
	c.WriteWord(Addr(100*PageSize), 7)
	m.WriteWord(Addr(PageSize), -1)
	if v := m.ReadWord(Addr(0)); v != 1 {
		t.Fatalf("original saw clone write: %d", v)
	}
	if v := m.ReadWord(Addr(100 * PageSize)); v != 0 {
		t.Fatalf("original saw clone's fresh page: %d", v)
	}
	if v := c.ReadWord(Addr(PageSize)); v != 2 {
		t.Fatalf("clone saw original write: %d", v)
	}
}

func TestAllocatorCloneIdenticalSequences(t *testing.T) {
	al := NewAllocator()
	al.AllocGlobal(128)
	a := al.Malloc(1, 64)
	al.Malloc(1, 256)
	al.Free(1, a, 64) // populate a size-class free list
	al.StackAlloc(2, 512)

	c := al.Clone()

	// Identical allocation sequences through original and clone must carve
	// identical addresses — forks from one snapshot rely on this.
	ops := func(x *Allocator) []Addr {
		return []Addr{
			x.AllocGlobal(64),
			x.Malloc(1, 64), // must reuse the freed block identically
			x.Malloc(1, 32),
			x.Malloc(3, 16), // fresh arena
			x.StackAlloc(2, 64),
		}
	}
	got, want := ops(c), ops(al)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: clone %#x, original %#x", i, got[i], want[i])
		}
	}
}

func TestAllocatorCloneIndependence(t *testing.T) {
	al := NewAllocator()
	al.Malloc(1, 64)
	c := al.Clone()

	// Divergent allocations must not disturb the other side's cursors.
	for i := 0; i < 10; i++ {
		c.Malloc(1, 128)
	}
	a1 := al.Malloc(1, 128)
	c2 := NewAllocator()
	c2.Malloc(1, 64)
	if a2 := c2.Malloc(1, 128); a1 != a2 {
		t.Fatalf("original drifted after clone allocations: %#x vs %#x", a1, a2)
	}
}
