// Package mem provides the simulated physical address space used by the
// HinTM architectural simulator: a sparse, 64-bit, word-addressed memory
// with page-granular backing storage, plus geometry helpers for the cache
// block (64 B) and page (4 KiB) sizes the paper's evaluation assumes.
//
// Addresses are byte addresses, but all simulated accesses are word (8 B)
// sized and word aligned; this matches the granularity at which the TIR
// interpreter issues loads and stores. Cache-block and page identities are
// derived from the byte address.
package mem

import (
	"fmt"

	"hintm/internal/flat"
)

// Geometry constants shared by the whole simulator (paper Table II).
const (
	// WordSize is the size of one simulated machine word in bytes.
	WordSize = 8
	// BlockSize is the cache block size in bytes.
	BlockSize = 64
	// PageSize is the virtual memory page size in bytes.
	PageSize = 4096
	// WordsPerPage is the number of words backing one page.
	WordsPerPage = PageSize / WordSize
	// WordsPerBlock is the number of words in one cache block.
	WordsPerBlock = BlockSize / WordSize
	// BlocksPerPage is the number of cache blocks in one page.
	BlocksPerPage = PageSize / BlockSize
)

// Addr is a simulated virtual (and, in this machine, physical) byte address.
type Addr uint64

// Block returns the cache-block number containing a.
func (a Addr) Block() uint64 { return uint64(a) / BlockSize }

// Page returns the page number containing a.
func (a Addr) Page() uint64 { return uint64(a) / PageSize }

// BlockBase returns the address of the first byte of a's cache block.
func (a Addr) BlockBase() Addr { return a &^ (BlockSize - 1) }

// PageBase returns the address of the first byte of a's page.
func (a Addr) PageBase() Addr { return a &^ (PageSize - 1) }

// WordAligned reports whether a is aligned to the machine word size.
func (a Addr) WordAligned() bool { return a%WordSize == 0 }

// String formats the address in hex for diagnostics.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// PageAddr returns the base address of page number pn.
func PageAddr(pn uint64) Addr { return Addr(pn * PageSize) }

// BlockAddr returns the base address of cache-block number bn.
func BlockAddr(bn uint64) Addr { return Addr(bn * BlockSize) }

// page is the backing store for one 4 KiB page of simulated memory.
type page [WordsPerPage]int64

// Memory is a sparse simulated physical memory in which every unwritten
// word reads as zero. Create with NewMemory. Pages are reached through an
// open-addressed index plus a last-page cache: simulated accesses have
// strong page locality, so most words resolve without even a table probe.
// Memory is not safe for concurrent use; the simulator is single-goroutine
// and interleaves simulated threads deterministically.
type Memory struct {
	idx flat.Tab[*page]
	// lastPN/lastPage memoize the most recently touched page.
	lastPN   uint64
	lastPage *page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	m := &Memory{}
	m.idx.Init(256, false)
	return m
}

// lookup returns the backing page for page number pn, or nil if untouched.
func (m *Memory) lookup(pn uint64) *page {
	if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage
	}
	i, ok := m.idx.Find(pn)
	if !ok {
		return nil
	}
	p := m.idx.Vals[i]
	m.lastPN, m.lastPage = pn, p
	return p
}

// ReadWord returns the word stored at word-aligned address a.
// Unwritten memory reads as zero. Panics on unaligned access: the
// interpreter only ever issues aligned accesses, so misalignment is an
// internal invariant violation, not a simulated program error.
func (m *Memory) ReadWord(a Addr) int64 {
	if !a.WordAligned() {
		panic(fmt.Sprintf("mem: unaligned read at %v", a))
	}
	p := m.lookup(a.Page())
	if p == nil {
		return 0
	}
	return p[wordIndex(a)]
}

// WriteWord stores v at word-aligned address a, allocating backing storage
// on first touch.
func (m *Memory) WriteWord(a Addr, v int64) {
	if !a.WordAligned() {
		panic(fmt.Sprintf("mem: unaligned write at %v", a))
	}
	pn := a.Page()
	p := m.lookup(pn)
	if p == nil {
		p = new(page)
		m.idx.Add(pn, p)
		m.lastPN, m.lastPage = pn, p
	}
	p[wordIndex(a)] = v
}

// TouchedPages returns the number of pages that have backing storage, i.e.
// pages written at least once.
func (m *Memory) TouchedPages() int { return m.idx.N }

// Clone returns an independent deep copy of the memory: the page index and
// every touched page's backing storage are copied, so writes through either
// memory never reach the other. Cost is O(touched pages). The original may
// be read concurrently by other Clone calls but must not be written during
// a clone.
func (m *Memory) Clone() *Memory {
	c := &Memory{idx: m.idx.Clone()}
	for i, g := range c.idx.Gens {
		if g == c.idx.Gen && c.idx.Vals[i] != nil {
			p := *c.idx.Vals[i]
			c.idx.Vals[i] = &p
		}
	}
	return c
}

func wordIndex(a Addr) int {
	return int(uint64(a)%PageSize) / WordSize
}
