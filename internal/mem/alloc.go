package mem

import "fmt"

// Address-space layout. The simulator uses a single flat address space per
// simulated process, carved into segments so that diagnostics can identify
// what kind of memory an address belongs to.
const (
	// GlobalsBase is the start of the global data segment.
	GlobalsBase Addr = 0x0000_0000_0001_0000
	// HeapBase is the start of the shared heap segment.
	HeapBase Addr = 0x0000_0001_0000_0000
	// StackBase is the start of the stack area; each thread's stack is a
	// disjoint StackStride-sized window above this.
	StackBase Addr = 0x0000_7000_0000_0000
	// StackStride is the virtual-address distance between thread stacks.
	StackStride = 1 << 24 // 16 MiB
	// arenaChunk is the unit in which per-thread heap arenas grow.
	arenaChunk = 1 << 16 // 64 KiB
)

// Segment classifies an address by the region it falls into.
type Segment int

// Address-space segments.
const (
	SegUnknown Segment = iota
	SegGlobals
	SegHeap
	SegStack
)

// String returns the conventional segment name.
func (s Segment) String() string {
	switch s {
	case SegGlobals:
		return "globals"
	case SegHeap:
		return "heap"
	case SegStack:
		return "stack"
	default:
		return "unknown"
	}
}

// SegmentOf reports which address-space segment a falls into.
func SegmentOf(a Addr) Segment {
	switch {
	case a >= StackBase:
		return SegStack
	case a >= HeapBase:
		return SegHeap
	case a >= GlobalsBase:
		return SegGlobals
	default:
		return SegUnknown
	}
}

// StackOwner returns the thread id owning the stack containing a.
// Only meaningful when SegmentOf(a) == SegStack.
func StackOwner(a Addr) int {
	return int((uint64(a) - uint64(StackBase)) / StackStride)
}

// Allocator manages the simulated address space: a bump-allocated globals
// segment, per-thread heap arenas (mirroring the per-thread memory pools of
// real TM runtimes such as STAMP's), and per-thread stacks.
//
// Per-thread arenas matter for fidelity: they keep thread-private heap
// allocations on thread-private pages, which is precisely the sharing
// pattern HinTM's dynamic page classifier exploits.
type Allocator struct {
	globalsNext Addr
	heapNext    Addr
	arenas      map[int]*arena
	stackNext   map[int]Addr
}

type arena struct {
	next Addr // next free byte within the current chunk
	end  Addr // end of the current chunk
	free map[int64][]Addr
}

// NewAllocator returns an allocator with empty segments.
func NewAllocator() *Allocator {
	return &Allocator{
		globalsNext: GlobalsBase,
		heapNext:    HeapBase,
		arenas:      make(map[int]*arena),
		stackNext:   make(map[int]Addr),
	}
}

// AllocGlobal reserves size bytes (word-rounded) in the globals segment and
// returns the base address. Globals are allocated before threads start.
func (al *Allocator) AllocGlobal(size int64) Addr {
	a := al.globalsNext
	al.globalsNext += Addr(roundWords(size))
	return a
}

// AllocGlobalPageAligned reserves size bytes starting at a fresh page in the
// globals segment. Used for large shared tables so that page-level sharing
// metrics are not polluted by segment-neighbour false sharing.
func (al *Allocator) AllocGlobalPageAligned(size int64) Addr {
	al.globalsNext = (al.globalsNext + PageSize - 1) &^ (PageSize - 1)
	return al.AllocGlobal(size)
}

// Malloc allocates size bytes (word-rounded) on the heap from thread tid's
// arena. Allocations never straddle an arena chunk boundary's end; a chunk
// that cannot fit the request is abandoned and a new one is carved.
// Requests larger than one chunk get dedicated page-aligned space.
func (al *Allocator) Malloc(tid int, size int64) Addr {
	if size <= 0 {
		size = WordSize
	}
	size = roundWords(size)
	if size >= arenaChunk {
		// Large allocation: dedicated page-aligned region straight from
		// the shared heap cursor.
		al.heapNext = (al.heapNext + PageSize - 1) &^ (PageSize - 1)
		a := al.heapNext
		al.heapNext += Addr((size + PageSize - 1) &^ (PageSize - 1))
		return a
	}
	ar := al.arenas[tid]
	if ar == nil {
		ar = &arena{free: make(map[int64][]Addr)}
		al.arenas[tid] = ar
	}
	if lst := ar.free[size]; len(lst) > 0 {
		a := lst[len(lst)-1]
		ar.free[size] = lst[:len(lst)-1]
		return a
	}
	if ar.next+Addr(size) > ar.end {
		// Carve a fresh page-aligned chunk for this thread.
		al.heapNext = (al.heapNext + PageSize - 1) &^ (PageSize - 1)
		ar.next = al.heapNext
		ar.end = ar.next + arenaChunk
		al.heapNext = ar.end
	}
	a := ar.next
	ar.next += Addr(size)
	return a
}

// Free returns a previously Malloc'd block of the given size to tid's arena
// free list. Size must match the original request's rounded size; the
// simulator's workloads always free what they allocated.
func (al *Allocator) Free(tid int, a Addr, size int64) {
	if size <= 0 {
		size = WordSize
	}
	size = roundWords(size)
	if size >= arenaChunk {
		return // large blocks are not recycled
	}
	ar := al.arenas[tid]
	if ar == nil {
		ar = &arena{free: make(map[int64][]Addr)}
		al.arenas[tid] = ar
	}
	ar.free[size] = append(ar.free[size], a)
}

// StackAlloc reserves size bytes on thread tid's stack and returns the base
// address of the new frame region. Frames are released with StackRelease.
func (al *Allocator) StackAlloc(tid int, size int64) Addr {
	sp, ok := al.stackNext[tid]
	if !ok {
		sp = StackBase + Addr(uint64(tid)*StackStride)
	}
	a := sp
	sp += Addr(roundWords(size))
	if uint64(sp) >= uint64(StackBase)+uint64(tid+1)*StackStride {
		panic(fmt.Sprintf("mem: stack overflow for thread %d", tid))
	}
	al.stackNext[tid] = sp
	return a
}

// StackRelease pops thread tid's stack back to base (a value previously
// returned by StackAlloc).
func (al *Allocator) StackRelease(tid int, base Addr) {
	al.stackNext[tid] = base
}

// StackTop returns the current stack cursor for tid.
func (al *Allocator) StackTop(tid int) Addr {
	sp, ok := al.stackNext[tid]
	if !ok {
		sp = StackBase + Addr(uint64(tid)*StackStride)
	}
	return sp
}

// Clone returns an independent deep copy of the allocator: segment cursors,
// every thread's arena (including its size-class free lists), and the stack
// cursors. Allocations through either allocator never disturb the other, so
// forked machines resuming from one snapshot carve identical addresses.
func (al *Allocator) Clone() *Allocator {
	c := &Allocator{
		globalsNext: al.globalsNext,
		heapNext:    al.heapNext,
		arenas:      make(map[int]*arena, len(al.arenas)),
		stackNext:   make(map[int]Addr, len(al.stackNext)),
	}
	for tid, ar := range al.arenas {
		na := &arena{next: ar.next, end: ar.end, free: make(map[int64][]Addr, len(ar.free))}
		for size, lst := range ar.free {
			na.free[size] = append([]Addr(nil), lst...)
		}
		c.arenas[tid] = na
	}
	for tid, sp := range al.stackNext {
		c.stackNext[tid] = sp
	}
	return c
}

// HeapBytes reports the total bytes carved from the heap segment so far.
func (al *Allocator) HeapBytes() int64 { return int64(al.heapNext - HeapBase) }

func roundWords(size int64) int64 {
	return (size + WordSize - 1) &^ (WordSize - 1)
}
