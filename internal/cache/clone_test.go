package cache

import (
	"math/rand"
	"testing"
)

func cloneConfig() Config {
	return Config{
		Cores:  2,
		L1Sets: 4, L1Ways: 2,
		L2Sets: 8, L2Ways: 2,
		L1Latency: 3, L2Latency: 12, MemLatency: 100,
	}
}

// A clone replayed against the same access sequence must behave exactly like
// the original: same latencies, same bus ops, same evictions, same stats.
// Eviction-victim selection depends on the copied LRU clocks, so this pins
// the deep copy, not just the line contents.
func TestHierarchyCloneReplaysIdentically(t *testing.T) {
	h := New(cloneConfig())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		h.Access(rng.Intn(2), uint64(rng.Intn(64)), rng.Intn(3) == 0)
	}
	c := h.Clone()
	if c.Stats() != h.Stats() {
		t.Fatalf("clone stats %+v != original %+v", c.Stats(), h.Stats())
	}

	seq := make([][3]int, 300)
	for i := range seq {
		seq[i] = [3]int{rng.Intn(2), rng.Intn(64), rng.Intn(3)}
	}
	for i, s := range seq {
		rh := h.Access(s[0], uint64(s[1]), s[2] == 0)
		rc := c.Access(s[0], uint64(s[1]), s[2] == 0)
		if rh.Latency != rc.Latency || rh.BusOp != rc.BusOp || len(rh.Evicted) != len(rc.Evicted) {
			t.Fatalf("access %d diverged: original %+v, clone %+v", i, rh, rc)
		}
	}
	if c.Stats() != h.Stats() {
		t.Fatalf("replayed stats diverged: clone %+v, original %+v", c.Stats(), h.Stats())
	}
}

func TestHierarchyCloneIndependence(t *testing.T) {
	h := New(cloneConfig())
	for b := uint64(0); b < 8; b++ {
		h.Access(0, b, true)
	}
	before := h.Stats()
	c := h.Clone()

	// Hammer the clone: the original's stats and line states must not move.
	for b := uint64(0); b < 64; b++ {
		c.Access(1, b, true)
	}
	if h.Stats() != before {
		t.Fatalf("original stats moved with the clone: %+v -> %+v", before, h.Stats())
	}
	// The original must still hit its warmed L1 lines (clone invalidations
	// leaking through would force misses).
	r := h.Access(0, 3, false)
	if r.Latency != cloneConfig().L1Latency {
		t.Fatalf("original lost its L1 line to the clone: latency %d", r.Latency)
	}

	c.Release()
	// Released clone must not have freed backing shared with the original.
	r = h.Access(0, 4, false)
	if r.Latency != cloneConfig().L1Latency {
		t.Fatalf("original broken after clone Release: latency %d", r.Latency)
	}
	h.Release()
}
