package cache

import (
	"testing"
	"testing/quick"
)

func small() *Hierarchy {
	cfg := DefaultConfig(4)
	return New(cfg)
}

func TestColdMissGoesToMemory(t *testing.T) {
	h := small()
	res := h.Access(0, 100, false)
	if res.Latency != 100 {
		t.Fatalf("cold miss latency = %d, want 100", res.Latency)
	}
	if !res.BusOp {
		t.Fatal("cold miss must be a bus op")
	}
	if h.StateOf(0, 100) != Exclusive {
		t.Fatalf("sole reader should be E, got %v", h.StateOf(0, 100))
	}
}

func TestL1Hit(t *testing.T) {
	h := small()
	h.Access(0, 100, false)
	res := h.Access(0, 100, false)
	if res.Latency != 3 || res.BusOp {
		t.Fatalf("L1 hit: latency=%d busop=%v", res.Latency, res.BusOp)
	}
}

func TestL2HitAfterOtherCoreFetched(t *testing.T) {
	h := small()
	h.Access(0, 100, false) // memory -> L2 + core0 L1
	res := h.Access(1, 100, false)
	if res.Latency != 12 {
		t.Fatalf("L2/shared hit latency = %d, want 12", res.Latency)
	}
	if h.StateOf(0, 100) != Exclusive && h.StateOf(0, 100) != Shared {
		t.Fatalf("core0 state %v", h.StateOf(0, 100))
	}
}

func TestWriteUpgradesAndInvalidates(t *testing.T) {
	h := small()
	h.Access(0, 100, false)
	h.Access(1, 100, false) // both share
	res := h.Access(0, 100, true)
	if !res.BusOp {
		t.Fatal("upgrade must generate a bus op")
	}
	if h.StateOf(0, 100) != Modified {
		t.Fatalf("writer state %v, want M", h.StateOf(0, 100))
	}
	if h.StateOf(1, 100) != Invalid {
		t.Fatalf("sharer state %v, want I", h.StateOf(1, 100))
	}
}

func TestSilentWriteOnExclusive(t *testing.T) {
	h := small()
	h.Access(0, 100, false) // E
	res := h.Access(0, 100, true)
	if res.BusOp {
		t.Fatal("E->M must be silent")
	}
	if h.StateOf(0, 100) != Modified {
		t.Fatalf("state %v, want M", h.StateOf(0, 100))
	}
}

func TestReadOfModifiedDowngrades(t *testing.T) {
	h := small()
	h.Access(0, 100, true) // core0 M
	res := h.Access(1, 100, false)
	if res.Latency != 12 {
		t.Fatalf("c2c latency = %d, want 12", res.Latency)
	}
	if h.StateOf(0, 100) != Shared {
		t.Fatalf("owner state %v, want S", h.StateOf(0, 100))
	}
	if h.StateOf(1, 100) != Shared {
		t.Fatalf("reader state %v, want S", h.StateOf(1, 100))
	}
	if h.Stats().CacheToCacheXfers != 1 {
		t.Fatalf("c2c count %d", h.Stats().CacheToCacheXfers)
	}
}

func TestWriteOfRemoteModifiedInvalidatesOwner(t *testing.T) {
	h := small()
	h.Access(0, 100, true) // core0 M
	h.Access(1, 100, true)
	if h.StateOf(0, 100) != Invalid {
		t.Fatalf("old owner %v, want I", h.StateOf(0, 100))
	}
	if h.StateOf(1, 100) != Modified {
		t.Fatalf("new owner %v, want M", h.StateOf(1, 100))
	}
}

func TestEvictionOnSetOverflow(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.L1Sets, cfg.L1Ways = 2, 2 // 4-block L1
	h := New(cfg)
	// Fill set 0 (blocks ≡ 0 mod 2) beyond capacity.
	h.Access(0, 0, false)
	h.Access(0, 2, false)
	res := h.Access(0, 4, false)
	if len(res.Evicted) != 1 || res.Evicted[0] != 0 {
		t.Fatalf("evicted = %v, want [0] (LRU)", res.Evicted)
	}
	if !h.HasBlock(0, 2) || !h.HasBlock(0, 4) {
		t.Fatal("resident set wrong after eviction")
	}
}

func TestLRUTouchPreventsEviction(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.L1Sets, cfg.L1Ways = 2, 2
	h := New(cfg)
	h.Access(0, 0, false)
	h.Access(0, 2, false)
	h.Access(0, 0, false) // touch 0: now 2 is LRU
	res := h.Access(0, 4, false)
	if len(res.Evicted) != 1 || res.Evicted[0] != 2 {
		t.Fatalf("evicted = %v, want [2]", res.Evicted)
	}
}

func TestMESISingleWriterInvariant(t *testing.T) {
	// Property: after any access sequence, a Modified line is the only
	// valid copy, and E lines are unique.
	cfg := DefaultConfig(3)
	cfg.L1Sets, cfg.L1Ways = 4, 2
	h := New(cfg)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			core := int(op % 3)
			block := uint64((op / 3) % 16)
			write := op&0x8000 != 0
			h.Access(core, block, write)
			for b := uint64(0); b < 16; b++ {
				var m, valid int
				for c := 0; c < 3; c++ {
					switch h.StateOf(c, b) {
					case Modified, Exclusive:
						m++
						valid++
					case Shared:
						valid++
					}
				}
				if m > 1 || (m == 1 && valid > 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := small()
	h.Access(0, 1, false)
	h.Access(0, 1, false)
	h.Access(1, 1, true)
	s := h.Stats()
	if s.L1Hits != 1 || s.L1Misses != 2 {
		t.Fatalf("hits=%d misses=%d", s.L1Hits, s.L1Misses)
	}
	if s.Invalidations == 0 {
		t.Fatal("expected an invalidation")
	}
	if s.BusOps < 2 {
		t.Fatalf("bus ops = %d", s.BusOps)
	}
}

func TestStateString(t *testing.T) {
	for _, st := range []State{Invalid, Shared, Exclusive, Modified} {
		if st.String() == "?" {
			t.Errorf("state %d has no name", st)
		}
	}
}

func TestMSIProtocolNoExclusive(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Protocol = MSI
	h := New(cfg)
	h.Access(0, 100, false)
	if h.StateOf(0, 100) != Shared {
		t.Fatalf("MSI sole reader state = %v, want S", h.StateOf(0, 100))
	}
	// First write must be a visible bus upgrade under MSI.
	res := h.Access(0, 100, true)
	if !res.BusOp {
		t.Fatal("MSI first write must hit the bus")
	}
	// Under MESI the same sequence is silent.
	h2 := New(DefaultConfig(2))
	h2.Access(0, 100, false)
	if res2 := h2.Access(0, 100, true); res2.BusOp {
		t.Fatal("MESI E->M upgrade must be silent")
	}
	if MESI.String() == MSI.String() {
		t.Fatal("protocol names collide")
	}
}
