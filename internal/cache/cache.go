// Package cache models the simulated machine's memory hierarchy: per-core
// private L1 data caches and a shared L2, kept coherent with a snoopy MESI
// protocol over a logical bus (paper Table II). The model is a timing and
// event model: data values live in internal/mem; the hierarchy decides
// access latencies, generates the bus transactions HTM controllers snoop for
// eager conflict detection, and reports L1 evictions (which matter to HTMs
// that track transactional state in the L1).
package cache

import (
	"fmt"
	"sync"
)

// State is a MESI coherence state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Protocol selects the coherence protocol variant.
type Protocol uint8

// Coherence protocols.
const (
	// MESI grants a silent Exclusive state to sole readers (the paper's
	// machine): a later write upgrades E→M without a bus transaction,
	// invisible to other HTM controllers.
	MESI Protocol = iota
	// MSI has no Exclusive state: every first write is a bus upgrade, so
	// HTM conflict detection sees strictly more traffic.
	MSI
)

func (p Protocol) String() string {
	if p == MSI {
		return "MSI"
	}
	return "MESI"
}

// Config sizes the hierarchy. Counts are in cache blocks (64 B).
type Config struct {
	Cores    int
	Protocol Protocol
	// L1Sets × L1Ways blocks per core (32 KiB 8-way => 64 sets × 8 ways).
	L1Sets, L1Ways int
	// L2Sets × L2Ways blocks shared (8 MiB 16-way => 8192 sets × 16 ways).
	L2Sets, L2Ways int
	// Latencies in cycles.
	L1Latency, L2Latency, MemLatency int64
}

// DefaultConfig returns the paper's Table II hierarchy for n cores.
func DefaultConfig(n int) Config {
	return Config{
		Cores:  n,
		L1Sets: 64, L1Ways: 8,
		L2Sets: 8192, L2Ways: 16,
		L1Latency: 3, L2Latency: 12, MemLatency: 100,
	}
}

// line is one cache line's bookkeeping.
type line struct {
	block uint64
	state State
	lru   uint64
}

// array is a set-associative structure. All lines live in one flat backing
// slice — set s occupies lines[s*ways : s*ways+used[s]] — so building an
// array is two allocations regardless of geometry (the paper's L2 has 8192
// sets; a slice per set made machine construction the dominant cost of
// short simulations).
type array struct {
	lines []line
	// used[s] counts the populated slots of set s; slots fill in append
	// order, preserving the set-internal visit order of the per-set-slice
	// representation this replaces.
	used []int32
	ways int
	tick uint64
}

// linePools recycles line backings by size, because zeroing the L2's backing
// (8192 sets x 16 ways x 24 B) dominates hierarchy construction for short
// runs. A recycled backing holds stale lines, which is safe: no reader ever
// looks past used[s], and used is freshly zeroed per array.
var linePools sync.Map // map[int]*sync.Pool of *[]line

func getLines(n int) []line {
	if p, ok := linePools.Load(n); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			return *(v.(*[]line))
		}
	}
	return make([]line, n)
}

func putLines(s []line) {
	if s == nil {
		return
	}
	p, ok := linePools.Load(len(s))
	if !ok {
		p, _ = linePools.LoadOrStore(len(s), &sync.Pool{})
	}
	p.(*sync.Pool).Put(&s)
}

func newArray(sets, ways int) *array {
	return &array{
		lines: getLines(sets * ways),
		used:  make([]int32, sets),
		ways:  ways,
	}
}

func (a *array) setOf(block uint64) int { return int(block % uint64(len(a.used))) }

// set returns the populated portion of block's set.
func (a *array) set(block uint64) []line {
	si := a.setOf(block)
	return a.lines[si*a.ways : si*a.ways+int(a.used[si])]
}

// find returns the line holding block, or nil.
func (a *array) find(block uint64) *line {
	set := a.set(block)
	for i := range set {
		if set[i].block == block && set[i].state != Invalid {
			a.tick++
			set[i].lru = a.tick
			return &set[i]
		}
	}
	return nil
}

// insert places block (replacing the LRU victim if the set is full) and
// returns the evicted block and its state, if any.
func (a *array) insert(block uint64, st State) (evicted uint64, evictedState State, didEvict bool) {
	si := a.setOf(block)
	set := a.lines[si*a.ways : si*a.ways+int(a.used[si])]
	a.tick++
	// Reuse an invalid slot first.
	for i := range set {
		if set[i].state == Invalid {
			set[i] = line{block: block, state: st, lru: a.tick}
			return 0, Invalid, false
		}
	}
	if int(a.used[si]) < a.ways {
		a.lines[si*a.ways+int(a.used[si])] = line{block: block, state: st, lru: a.tick}
		a.used[si]++
		return 0, Invalid, false
	}
	victim := 0
	for i := range set {
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	ev, evSt := set[victim].block, set[victim].state
	set[victim] = line{block: block, state: st, lru: a.tick}
	return ev, evSt, true
}

// invalidate drops block if present, returning its previous state.
func (a *array) invalidate(block uint64) State {
	set := a.set(block)
	for i := range set {
		if set[i].block == block && set[i].state != Invalid {
			st := set[i].state
			set[i].state = Invalid
			return st
		}
	}
	return Invalid
}

// Stats counts hierarchy events.
type Stats struct {
	L1Hits, L1Misses   uint64
	L2Hits, L2Misses   uint64
	BusOps             uint64
	Invalidations      uint64
	CacheToCacheXfers  uint64
	L1Evictions        uint64
	UpgradeTransaction uint64
}

// AccessResult describes one access's outcome.
type AccessResult struct {
	// Latency is the access's cycle cost.
	Latency int64
	// BusOp reports whether the access generated a bus transaction, which
	// every other core's HTM controller snoops.
	BusOp bool
	// Evicted lists blocks this access displaced from the requesting
	// core's L1 (at most one). The slice aliases scratch storage owned by
	// the Hierarchy: consume it before the next Access call.
	Evicted []uint64
}

// Hierarchy is the full multi-core cache system.
type Hierarchy struct {
	cfg   Config
	l1    []*array
	l2    *array
	stats Stats
	// evBuf backs AccessResult.Evicted so the eviction path allocates
	// nothing (an access displaces at most one L1 block).
	evBuf [1]uint64
}

// New builds a hierarchy.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{cfg: cfg, l2: newArray(cfg.L2Sets, cfg.L2Ways)}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, newArray(cfg.L1Sets, cfg.L1Ways))
	}
	return h
}

// Release returns the hierarchy's line backings to the recycle pool. The
// hierarchy must not be used afterwards. Optional: skipping it only forfeits
// backing reuse for the next hierarchy of the same geometry.
func (h *Hierarchy) Release() {
	putLines(h.l2.lines)
	h.l2.lines = nil
	for _, a := range h.l1 {
		putLines(a.lines)
		a.lines = nil
	}
}

// clone deep-copies an array. The line backing comes from the recycle pool
// (one memcpy regardless of geometry), so cloning costs no more allocations
// than building a fresh array.
func (a *array) clone() *array {
	c := &array{
		lines: getLines(len(a.lines)),
		used:  append([]int32(nil), a.used...),
		ways:  a.ways,
		tick:  a.tick,
	}
	// Copy only each set's populated prefix: no reader ever looks past
	// used[s], so the recycled backing's stale slots can stay. A snapshot
	// taken at a warm-up boundary leaves the paper's 8192-set L2 almost
	// empty, and cloning must cost O(live lines), not O(geometry) — a full
	// backing copy was the dominant cost of forking a machine.
	for s, u := range a.used {
		if u != 0 {
			base := s * a.ways
			copy(c.lines[base:base+int(u)], a.lines[base:base+int(u)])
		}
	}
	return c
}

// Clone returns an independent deep copy of the hierarchy: every L1, the
// shared L2 (line contents, LRU clocks, per-set occupancy), and the event
// counters. Accesses through either hierarchy never disturb the other. Safe
// to call concurrently on the same receiver as long as nothing mutates it —
// the regime the snapshot/fork subsystem runs it in.
func (h *Hierarchy) Clone() *Hierarchy {
	c := &Hierarchy{cfg: h.cfg, l2: h.l2.clone(), stats: h.stats}
	for _, a := range h.l1 {
		c.l1 = append(c.l1, a.clone())
	}
	return c
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the event counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Access performs a read or write of block by core, updating MESI state
// across all caches and returning the latency/event outcome.
func (h *Hierarchy) Access(core int, block uint64, write bool) AccessResult {
	if core < 0 || core >= h.cfg.Cores {
		panic(fmt.Sprintf("cache: core %d out of range", core))
	}
	l1 := h.l1[core]
	if ln := l1.find(block); ln != nil {
		if !write {
			h.stats.L1Hits++
			return AccessResult{Latency: h.cfg.L1Latency}
		}
		switch ln.state {
		case Modified, Exclusive:
			ln.state = Modified
			h.stats.L1Hits++
			return AccessResult{Latency: h.cfg.L1Latency}
		case Shared:
			// Upgrade: invalidate every other copy via the bus.
			h.invalidateOthers(core, block)
			ln.state = Modified
			h.stats.L1Hits++
			h.stats.BusOps++
			h.stats.UpgradeTransaction++
			return AccessResult{Latency: h.cfg.L1Latency, BusOp: true}
		}
	}
	// L1 miss: go to the bus.
	h.stats.L1Misses++
	h.stats.BusOps++
	res := AccessResult{BusOp: true}

	othersHold, dirtyOwner := h.probeOthers(core, block)
	switch {
	case dirtyOwner >= 0:
		// Cache-to-cache transfer from the modified owner.
		res.Latency = h.cfg.L2Latency
		h.stats.CacheToCacheXfers++
		if write {
			h.invalidateOthers(core, block)
			othersHold = false
		} else if ln := h.l1[dirtyOwner].find(block); ln != nil {
			ln.state = Shared // owner downgrades, line now clean in L2
		}
		// The (possibly downgraded) line is now present in L2 as well.
		h.l2.insert(block, Shared)
	default:
		if h.l2.find(block) != nil {
			res.Latency = h.cfg.L2Latency
			h.stats.L2Hits++
		} else {
			res.Latency = h.cfg.MemLatency
			h.stats.L2Misses++
			h.l2.insert(block, Shared)
		}
		switch {
		case write && othersHold:
			h.invalidateOthers(core, block)
			othersHold = false
		case othersHold:
			h.downgradeOthers(core, block)
		}
	}

	st := Shared
	switch {
	case write:
		st = Modified
	case !othersHold && dirtyOwner < 0 && h.cfg.Protocol == MESI:
		st = Exclusive
	}
	if ev, _, did := l1.insert(block, st); did {
		h.evBuf[0] = ev
		res.Evicted = h.evBuf[:1]
		h.stats.L1Evictions++
	}
	return res
}

// probeOthers reports whether any other core holds block, and which core (if
// any) holds it Modified (-1 if none).
func (h *Hierarchy) probeOthers(core int, block uint64) (held bool, dirtyOwner int) {
	dirtyOwner = -1
	for c, l1 := range h.l1 {
		if c == core {
			continue
		}
		set := l1.set(block)
		for i := range set {
			if set[i].block == block && set[i].state != Invalid {
				held = true
				if set[i].state == Modified {
					dirtyOwner = c
				}
			}
		}
	}
	return held, dirtyOwner
}

// downgradeOthers moves other cores' Exclusive copies to Shared when a new
// reader joins (Modified copies are handled by the cache-to-cache path).
func (h *Hierarchy) downgradeOthers(core int, block uint64) {
	for c, l1 := range h.l1 {
		if c == core {
			continue
		}
		set := l1.set(block)
		for i := range set {
			if set[i].block == block && set[i].state == Exclusive {
				set[i].state = Shared
			}
		}
	}
}

func (h *Hierarchy) invalidateOthers(core int, block uint64) {
	for c, l1 := range h.l1 {
		if c == core {
			continue
		}
		if st := l1.invalidate(block); st != Invalid {
			h.stats.Invalidations++
			if st == Modified {
				h.l2.insert(block, Shared) // writeback
			}
		}
	}
}

// HasBlock reports whether core's L1 currently holds block (any valid
// state). HTM trackers that keep transactional state in the L1 use it.
func (h *Hierarchy) HasBlock(core int, block uint64) bool {
	return h.l1[core].find(block) != nil
}

// StateOf returns core's L1 state for block (Invalid if absent). Exposed
// for tests and diagnostics.
func (h *Hierarchy) StateOf(core int, block uint64) State {
	set := h.l1[core].set(block)
	for i := range set {
		if set[i].block == block {
			return set[i].state
		}
	}
	return Invalid
}
