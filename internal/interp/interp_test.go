package interp

import (
	"testing"

	"hintm/internal/ir"
	"hintm/internal/mem"
)

// plainEnv executes directly against memory with no transactional effects —
// the minimal Env for testing interpreter semantics.
type plainEnv struct {
	mem *mem.Memory
	al  *mem.Allocator
	// abortAtStore triggers one simulated abort+rollback on the nth store.
	abortAtStore int
	storeCount   int
	parallelDone bool
	spawned      []*Thread
	prog         *Program
}

func newPlainEnv(p *Program) *plainEnv {
	e := &plainEnv{mem: mem.NewMemory(), al: mem.NewAllocator(), abortAtStore: -1, prog: p}
	p.LayoutGlobals(e.al, e.mem)
	return e
}

func (e *plainEnv) Load(t *Thread, a mem.Addr, safe bool) (int64, Ctrl) {
	return e.mem.ReadWord(a), CtrlOK
}

func (e *plainEnv) Store(t *Thread, a mem.Addr, v int64, safe bool) Ctrl {
	e.storeCount++
	if e.storeCount == e.abortAtStore && t.HasCheckpoint() {
		cp := t.Restore()
		e.al.StackRelease(t.ID, cp.StackTop)
		return CtrlAbort
	}
	e.mem.WriteWord(a, v)
	return CtrlOK
}

func (e *plainEnv) Malloc(t *Thread, size int64) mem.Addr { return e.al.Malloc(t.ID, size) }
func (e *plainEnv) Free(t *Thread, a mem.Addr, size int64) {
	e.al.Free(t.ID, a, size)
}
func (e *plainEnv) StackAlloc(t *Thread, words int64) mem.Addr {
	return e.al.StackAlloc(t.ID, words*mem.WordSize)
}
func (e *plainEnv) StackRelease(t *Thread, base mem.Addr) { e.al.StackRelease(t.ID, base) }

func (e *plainEnv) TxBegin(t *Thread) Ctrl {
	t.Capture(e.al.StackTop(t.ID))
	t.InTx = true
	return CtrlOK
}

func (e *plainEnv) TxSuspend(t *Thread) Ctrl { return CtrlOK }
func (e *plainEnv) TxResume(t *Thread) Ctrl  { return CtrlOK }

func (e *plainEnv) TxEnd(t *Thread) Ctrl {
	t.InTx = false
	return CtrlOK
}

func (e *plainEnv) Parallel(t *Thread, n int64, fn string, args []int64) Ctrl {
	if e.parallelDone {
		return CtrlOK
	}
	for i := int64(0); i < n; i++ {
		th := e.prog.NewThread(int(i), fn, append([]int64{i}, args...),
			e.al.StackAlloc(int(i), e.prog.M.Func(fn).AllocaWords*mem.WordSize), 42)
		e.spawned = append(e.spawned, th)
	}
	// Run children to completion round-robin.
	for progress := true; progress; {
		progress = false
		for _, th := range e.spawned {
			if !th.Done && e.prog.Step(e, th) {
				progress = true
			}
		}
	}
	e.parallelDone = true
	return CtrlOK
}

func (e *plainEnv) AbortHint(t *Thread, cond int64) Ctrl { return CtrlOK }

func runMain(t *testing.T, b *ir.Builder) (*Program, *plainEnv) {
	t.Helper()
	p, err := NewProgram(b.M)
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	env := newPlainEnv(p)
	mn := p.M.Func("main")
	th := p.NewThread(0, "main", nil,
		env.al.StackAlloc(0, mn.AllocaWords*mem.WordSize), 7)
	for i := 0; i < 1_000_000 && !th.Done; i++ {
		if !p.Step(env, th) && !th.Done {
			t.Fatalf("main stalled at %v", th.CurrentInstr())
		}
	}
	if !th.Done {
		t.Fatal("main did not finish")
	}
	return p, env
}

func TestArithmeticAndGlobals(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("out", 4)
	f := b.Function("main", 0)
	g := f.GlobalAddr("out")
	f.Store(g, 0, f.AddI(f.C(40), 2))
	f.Store(g, 8, f.Mul(f.C(6), f.C(7)))
	f.Store(g, 16, f.Bin(ir.BinShl, f.C(1), f.C(10)))
	x := f.Cmp(ir.CmpLT, f.C(3), f.C(5))
	f.Store(g, 24, x)
	f.RetVoid()

	p, env := runMain(t, b)
	base := p.GlobalAddr("out")
	for i, want := range []int64{42, 42, 1024, 1} {
		if got := env.mem.ReadWord(base + mem.Addr(i*8)); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestLoopSum(t *testing.T) {
	// sum 1..10 into a global.
	b := ir.NewBuilder("m")
	b.Global("sum", 1)
	f := b.Function("main", 0)
	loop := f.NewBlock("loop")
	done := f.NewBlock("done")
	i := f.C(1)
	acc := f.C(0)
	f.Br(loop)
	f.SetBlock(loop)
	f.MovTo(acc, f.Add(acc, i))
	f.MovTo(i, f.AddI(i, 1))
	c := f.Cmp(ir.CmpLE, i, f.C(10))
	f.CondBr(c, loop, done)
	f.SetBlock(done)
	g := f.GlobalAddr("sum")
	f.Store(g, 0, acc)
	f.RetVoid()

	p, env := runMain(t, b)
	if got := env.mem.ReadWord(p.GlobalAddr("sum")); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestCallReturnAndAlloca(t *testing.T) {
	// square(x) stores x*x in an alloca, loads it back, returns it.
	b := ir.NewBuilder("m")
	b.Global("out", 1)
	sq := b.Function("square", 1)
	slot := sq.Alloca(1)
	sq.Store(slot, 0, sq.Mul(sq.Param(0), sq.Param(0)))
	sq.Ret(sq.Load(slot, 0))
	f := b.Function("main", 0)
	r := f.Call("square", f.C(9))
	g := f.GlobalAddr("out")
	f.Store(g, 0, r)
	f.RetVoid()

	p, env := runMain(t, b)
	if got := env.mem.ReadWord(p.GlobalAddr("out")); got != 81 {
		t.Fatalf("square(9) = %d", got)
	}
}

func TestRecursionFactorial(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("out", 1)
	fac := b.Function("fac", 1)
	rec := fac.NewBlock("rec")
	base := fac.NewBlock("base")
	c := fac.Cmp(ir.CmpLE, fac.Param(0), fac.C(1))
	fac.CondBr(c, base, rec)
	fac.SetBlock(base)
	fac.Ret(fac.C(1))
	fac.SetBlock(rec)
	sub := fac.Call("fac", fac.Sub(fac.Param(0), fac.C(1)))
	fac.Ret(fac.Mul(fac.Param(0), sub))

	f := b.Function("main", 0)
	r := f.Call("fac", f.C(6))
	g := f.GlobalAddr("out")
	f.Store(g, 0, r)
	f.RetVoid()

	p, env := runMain(t, b)
	if got := env.mem.ReadWord(p.GlobalAddr("out")); got != 720 {
		t.Fatalf("6! = %d", got)
	}
}

func TestMallocFreeRoundTrip(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("out", 1)
	f := b.Function("main", 0)
	buf := f.MallocI(64)
	f.Store(buf, 8, f.C(123))
	v := f.Load(buf, 8)
	g := f.GlobalAddr("out")
	f.Store(g, 0, v)
	f.FreeI(buf, 64)
	f.RetVoid()

	p, env := runMain(t, b)
	if got := env.mem.ReadWord(p.GlobalAddr("out")); got != 123 {
		t.Fatalf("heap round trip = %d", got)
	}
}

func TestGlobalInitValues(t *testing.T) {
	b := ir.NewBuilder("m")
	b.GlobalInit("tbl", 3, []int64{10, 20, 30})
	b.Global("out", 1)
	f := b.Function("main", 0)
	tp := f.GlobalAddr("tbl")
	sum := f.Add(f.Load(tp, 0), f.Add(f.Load(tp, 8), f.Load(tp, 16)))
	g := f.GlobalAddr("out")
	f.Store(g, 0, sum)
	f.RetVoid()

	p, env := runMain(t, b)
	if got := env.mem.ReadWord(p.GlobalAddr("out")); got != 60 {
		t.Fatalf("init sum = %d", got)
	}
}

func TestRandDeterministicAndBounded(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("out", 8)
	f := b.Function("main", 0)
	g := f.GlobalAddr("out")
	for i := 0; i < 8; i++ {
		f.Store(g, int64(i*8), f.RandI(100))
	}
	f.RetVoid()

	p1, env1 := runMain(t, b)
	base := p1.GlobalAddr("out")
	var first [8]int64
	for i := range first {
		first[i] = env1.mem.ReadWord(base + mem.Addr(i*8))
		if first[i] < 0 || first[i] >= 100 {
			t.Fatalf("rand out of bounds: %d", first[i])
		}
	}
	// Re-run: same module state (Safe flags etc. unchanged) → same stream.
	_, env2 := runMain(t, b)
	for i := range first {
		if got := env2.mem.ReadWord(base + mem.Addr(i*8)); got != first[i] {
			t.Fatalf("rand not deterministic at %d: %d vs %d", i, got, first[i])
		}
	}
}

func TestParallelThreadsSeparateState(t *testing.T) {
	// Each thread writes tid into out[tid].
	b := ir.NewBuilder("m")
	b.Global("out", 8)
	w := b.ThreadBody("worker", 1)
	g := w.GlobalAddr("out")
	off := w.MulI(w.Param(0), 8)
	w.Store(w.Add(g, off), 0, w.Param(0))
	w.RetVoid()
	f := b.Function("main", 0)
	f.Parallel(f.C(8), "worker")
	f.RetVoid()

	p, env := runMain(t, b)
	base := p.GlobalAddr("out")
	for i := int64(0); i < 8; i++ {
		if got := env.mem.ReadWord(base + mem.Addr(i*8)); got != i {
			t.Fatalf("out[%d] = %d", i, got)
		}
	}
}

func TestCheckpointRollback(t *testing.T) {
	// TX stores 5 then 6; env aborts at the second store (after restore the
	// TX re-runs and both stores complete). Without correct rollback, the
	// register state would be corrupted.
	b := ir.NewBuilder("m")
	b.Global("a", 2)
	f := b.Function("main", 0)
	g := f.GlobalAddr("a")
	f.TxBegin()
	f.Store(g, 0, f.C(5))
	f.Store(g, 8, f.C(6))
	f.TxEnd()
	f.RetVoid()

	p, err := NewProgram(b.M)
	if err != nil {
		t.Fatal(err)
	}
	env := newPlainEnv(p)
	env.abortAtStore = 2
	mn := p.M.Func("main")
	th := p.NewThread(0, "main", nil, env.al.StackAlloc(0, mn.AllocaWords*8), 7)
	for i := 0; i < 10000 && !th.Done; i++ {
		p.Step(env, th)
	}
	if !th.Done {
		t.Fatal("main did not finish after abort/retry")
	}
	base := p.GlobalAddr("a")
	if env.mem.ReadWord(base) != 5 || env.mem.ReadWord(base+8) != 6 {
		t.Fatalf("values after retry: %d %d",
			env.mem.ReadWord(base), env.mem.ReadWord(base+8))
	}
	// The TX body ran twice: 2 stores first attempt (second aborted before
	// writing), 2 on retry => storeCount sees 4 attempts.
	if env.storeCount != 4 {
		t.Fatalf("storeCount = %d, want 4", env.storeCount)
	}
}

func TestGlobalOf(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("g1", 2)
	b.Global("g2", 2)
	f := b.Function("main", 0)
	f.RetVoid()
	p, _ := runMain(t, b)
	a := p.GlobalAddr("g2")
	if name, ok := p.GlobalOf(a + 8); !ok || name != "g2" {
		t.Fatalf("GlobalOf = %q,%v", name, ok)
	}
	if _, ok := p.GlobalOf(0xdead0000); ok {
		t.Fatal("bogus address resolved")
	}
}

func TestStepDoneThreadNoop(t *testing.T) {
	b := ir.NewBuilder("m")
	f := b.Function("main", 0)
	f.RetVoid()
	p, err := NewProgram(b.M)
	if err != nil {
		t.Fatal(err)
	}
	env := newPlainEnv(p)
	th := p.NewThread(0, "main", nil, 0, 1)
	for !th.Done {
		p.Step(env, th)
	}
	if p.Step(env, th) {
		t.Fatal("stepping a done thread must be a no-op")
	}
	if th.CurrentInstr() != nil {
		t.Fatal("done thread has a current instruction")
	}
}
