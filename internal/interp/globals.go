package interp

import (
	"fmt"

	"hintm/internal/mem"
)

// LayoutGlobals assigns addresses to every module global using the
// allocator, writes initial values into memory, and records each address in
// the program's dense global table (OpGlobalAddr resolves by index). Call
// once before execution.
func (p *Program) LayoutGlobals(al *mem.Allocator, m *mem.Memory) {
	for gi, g := range p.M.Globals {
		var a mem.Addr
		if g.PageAligned {
			a = al.AllocGlobalPageAligned(g.Words * mem.WordSize)
		} else {
			a = al.AllocGlobal(g.Words * mem.WordSize)
		}
		p.globalAddrs[gi] = a
		for i, v := range g.Init {
			m.WriteWord(a+mem.Addr(i*mem.WordSize), v)
		}
	}
	p.globalsLaid = true
}

// GlobalAddr returns the laid-out address of global name.
func (p *Program) GlobalAddr(name string) mem.Addr {
	if p.globalsLaid {
		for gi, g := range p.M.Globals {
			if g.Name == name {
				return p.globalAddrs[gi]
			}
		}
	}
	panic(fmt.Sprintf("interp: global @%s not laid out", name))
}

// GlobalOf returns the name of the global containing addr, if any; used by
// diagnostics and the sharing profiler.
func (p *Program) GlobalOf(addr mem.Addr) (string, bool) {
	if !p.globalsLaid {
		return "", false
	}
	for gi, g := range p.M.Globals {
		base := p.globalAddrs[gi]
		if addr >= base && addr < base+mem.Addr(g.Words*mem.WordSize) {
			return g.Name, true
		}
	}
	return "", false
}
