package interp

import (
	"fmt"

	"hintm/internal/mem"
)

// LayoutGlobals assigns addresses to every module global using the
// allocator, writes initial values into memory, and records the mapping for
// OpGlobalAddr resolution. Call once before execution.
func (p *Program) LayoutGlobals(al *mem.Allocator, m *mem.Memory) {
	if p.layout == nil {
		p.layout = make(map[string]mem.Addr, len(p.M.Globals))
	}
	for _, g := range p.M.Globals {
		var a mem.Addr
		if g.PageAligned {
			a = al.AllocGlobalPageAligned(g.Words * mem.WordSize)
		} else {
			a = al.AllocGlobal(g.Words * mem.WordSize)
		}
		p.layout[g.Name] = a
		for i, v := range g.Init {
			m.WriteWord(a+mem.Addr(i*mem.WordSize), v)
		}
	}
}

// GlobalAddr returns the laid-out address of global name.
func (p *Program) GlobalAddr(name string) mem.Addr {
	a, ok := p.layout[name]
	if !ok {
		panic(fmt.Sprintf("interp: global @%s not laid out", name))
	}
	return a
}

func globalAddr(p *Program, sym string) mem.Addr { return p.GlobalAddr(sym) }

// GlobalOf returns the name of the global containing addr, if any; used by
// diagnostics and the sharing profiler.
func (p *Program) GlobalOf(addr mem.Addr) (string, bool) {
	for _, g := range p.M.Globals {
		base := p.layout[g.Name]
		if addr >= base && addr < base+mem.Addr(g.Words*mem.WordSize) {
			return g.Name, true
		}
	}
	return "", false
}
