package interp

import (
	"testing"

	"hintm/internal/ir"
	"hintm/internal/mem"
)

// The decoded-instruction step loop is the simulator's innermost loop; once
// a thread is past its allocas, stepping must not allocate.
func TestStepLoopDoesNotAllocate(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("acc", 1)
	f := b.Function("main", 0)
	loop := f.NewBlock("loop")
	done := f.NewBlock("done")
	i := f.C(0)
	g := f.GlobalAddr("acc")
	f.Br(loop)
	f.SetBlock(loop)
	v := f.Load(g, 0)
	f.Store(g, 0, f.AddI(v, 1))
	f.MovTo(i, f.AddI(i, 1))
	c := f.Cmp(ir.CmpLT, i, f.C(1_000_000))
	f.CondBr(c, loop, done)
	f.SetBlock(done)
	f.RetVoid()

	p, err := NewProgram(b.M)
	if err != nil {
		t.Fatal(err)
	}
	env := newPlainEnv(p)
	mn := p.M.Func("main")
	th := p.NewThread(0, "main", nil,
		env.al.StackAlloc(0, mn.AllocaWords*mem.WordSize), 7)
	for i := 0; i < 100; i++ { // warm: fault in the global's page
		p.Step(env, th)
	}
	if n := testing.AllocsPerRun(200, func() {
		for i := 0; i < 50; i++ {
			p.Step(env, th)
		}
	}); n != 0 {
		t.Errorf("steady-state Step allocates %.2f per 50 steps", n)
	}
	if th.Done {
		t.Fatal("loop finished during the pin — iteration bound too low")
	}
}

// Capture/Restore back every transactional retry; the double-buffered
// checkpoint and frame pools make the steady-state retry loop free.
func TestCaptureRestoreDoesNotAllocate(t *testing.T) {
	b := ir.NewBuilder("m")
	f := b.Function("main", 0)
	f.RetVoid()
	p, err := NewProgram(b.M)
	if err != nil {
		t.Fatal(err)
	}
	env := newPlainEnv(p)
	mn := p.M.Func("main")
	th := p.NewThread(0, "main", nil,
		env.al.StackAlloc(0, mn.AllocaWords*mem.WordSize), 7)
	th.Capture(0x1000)
	th.Restore()
	th.Capture(0x1000)
	th.Restore()
	if n := testing.AllocsPerRun(200, func() {
		th.Capture(0x1000)
		th.Restore()
	}); n != 0 {
		t.Errorf("capture/restore cycle allocates %.1f per retry", n)
	}
}
