package interp

import (
	"testing"
	"testing/quick"

	"hintm/internal/ir"
	"hintm/internal/mem"
)

// TestBinOpSemantics pins every binary operator against a reference
// implementation, via the interpreter end to end (constants through OpBin
// into a store).
func TestBinOpSemantics(t *testing.T) {
	cases := []struct {
		kind ir.BinKind
		ref  func(a, b int64) int64
	}{
		{ir.BinAdd, func(a, b int64) int64 { return a + b }},
		{ir.BinSub, func(a, b int64) int64 { return a - b }},
		{ir.BinMul, func(a, b int64) int64 { return a * b }},
		{ir.BinDiv, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a / b
		}},
		{ir.BinMod, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a % b
		}},
		{ir.BinAnd, func(a, b int64) int64 { return a & b }},
		{ir.BinOr, func(a, b int64) int64 { return a | b }},
		{ir.BinXor, func(a, b int64) int64 { return a ^ b }},
		{ir.BinShl, func(a, b int64) int64 { return a << uint64(b&63) }},
		{ir.BinShr, func(a, b int64) int64 { return int64(uint64(a) >> uint64(b&63)) }},
	}
	inputs := []struct{ a, b int64 }{
		{0, 0}, {1, 2}, {-7, 3}, {7, -3}, {1 << 62, 2}, {-1, 63}, {5, 0}, {-5, 0},
	}
	for _, c := range cases {
		for _, in := range inputs {
			b := ir.NewBuilder("m")
			b.Global("out", 1)
			f := b.Function("main", 0)
			g := f.GlobalAddr("out")
			f.Store(g, 0, f.Bin(c.kind, f.C(in.a), f.C(in.b)))
			f.RetVoid()

			p, err := NewProgram(b.M)
			if err != nil {
				t.Fatal(err)
			}
			env := newPlainEnv(p)
			th := p.NewThread(0, "main", nil, env.al.StackAlloc(0, 0), 1)
			for !th.Done {
				p.Step(env, th)
			}
			want := c.ref(in.a, in.b)
			if got := env.mem.ReadWord(p.GlobalAddr("out")); got != want {
				t.Errorf("%v(%d,%d) = %d, want %d", c.kind, in.a, in.b, got, want)
			}
		}
	}
}

// TestEvalBinMatchesInterpreterProperty: the shared ir.EvalBin definition is
// what the interpreter executes.
func TestEvalBinMatchesInterpreterProperty(t *testing.T) {
	kinds := []ir.BinKind{ir.BinAdd, ir.BinSub, ir.BinMul, ir.BinDiv, ir.BinMod,
		ir.BinAnd, ir.BinOr, ir.BinXor, ir.BinShl, ir.BinShr}
	f := func(a, b int64, ki uint8) bool {
		k := kinds[int(ki)%len(kinds)]
		// Direct double-call determinism (EvalBin must be pure).
		return ir.EvalBin(k, a, b) == ir.EvalBin(k, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCmpSemantics pins every predicate.
func TestCmpSemantics(t *testing.T) {
	inputs := []struct{ a, b int64 }{{1, 2}, {2, 1}, {3, 3}, {-1, 1}, {0, 0}}
	for _, in := range inputs {
		for _, p := range []ir.CmpKind{ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE} {
			got := ir.EvalCmp(p, in.a, in.b)
			var want bool
			switch p {
			case ir.CmpEQ:
				want = in.a == in.b
			case ir.CmpNE:
				want = in.a != in.b
			case ir.CmpLT:
				want = in.a < in.b
			case ir.CmpLE:
				want = in.a <= in.b
			case ir.CmpGT:
				want = in.a > in.b
			case ir.CmpGE:
				want = in.a >= in.b
			}
			if got != want {
				t.Errorf("cmp.%v(%d,%d) = %v", p, in.a, in.b, got)
			}
		}
	}
}

// TestRandStreamsIndependentPerThread: different thread ids draw different
// streams from the same seed.
func TestRandStreamsIndependentPerThread(t *testing.T) {
	b := ir.NewBuilder("m")
	f := b.Function("main", 0)
	f.RetVoid()
	p, err := NewProgram(b.M)
	if err != nil {
		t.Fatal(err)
	}
	t0 := p.NewThread(0, "main", nil, mem.Addr(0), 9)
	t1 := p.NewThread(1, "main", nil, mem.Addr(0), 9)
	same := 0
	for i := 0; i < 16; i++ {
		if t0.randBounded(1<<40) == t1.randBounded(1<<40) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("threads share a stream: %d/16 draws equal", same)
	}
}
