package interp

import (
	"fmt"

	"hintm/internal/ir"
	"hintm/internal/mem"
)

// Thread snapshot/fork support: a ThreadState is a deep, self-contained copy
// of one thread's architectural state — the frame stack with register files
// and PCs, and the PRNG cursor — taken between transactions. It extends the
// Checkpoint machinery (which snapshots the same state transiently, inside
// one thread, for abort rollback) into a durable form that outlives the
// capturing thread and can instantiate any number of independent new
// threads on the same Program. The snapshot/fork subsystem (internal/snap)
// uses it to resume sibling grid runs from a shared warm-up prefix.

// frameState is one captured activation record.
type frameState struct {
	df        *dfunc
	regs      []int64
	block, pc int
	stackBase mem.Addr
	retReg    ir.Reg
}

// ThreadState is a durable snapshot of a thread captured by CaptureState.
// It is immutable after capture and safe for concurrent NewThread calls.
type ThreadState struct {
	ID  int
	RNG uint64

	prog   *Program
	frames []frameState
}

// NextOp returns the opcode the thread will execute at its next Step
// (ir.OpRet is returned for a Done thread, which cannot step). The prefix
// boundary scan uses it to stop the machine *before* an instruction class
// executes, so a resumed run re-executes the boundary instruction exactly
// as the cold run would have.
func (t *Thread) NextOp() ir.Op {
	if t.Done || len(t.Frames) == 0 {
		return ir.OpRet
	}
	f := t.Frames[len(t.Frames)-1]
	return f.code[f.PC].op
}

// CaptureState deep-copies the thread's architectural state. The thread
// must be quiescent with respect to transactions: capturing with a pending
// abort checkpoint (or inside a transaction or fallback section) would bake
// half a transaction into every fork, so it panics — the caller declares
// boundaries only where this cannot hold.
func (t *Thread) CaptureState() *ThreadState {
	if t.checkpoint != nil || t.InTx || t.Fallback {
		panic("interp: CaptureState inside a transaction")
	}
	st := &ThreadState{ID: t.ID, RNG: t.RNG, prog: t.Prog, frames: make([]frameState, len(t.Frames))}
	for i, f := range t.Frames {
		st.frames[i] = frameState{
			df:        f.df,
			regs:      append([]int64(nil), f.Regs...),
			block:     f.Block,
			pc:        f.PC,
			stackBase: f.StackBase,
			retReg:    f.RetReg,
		}
	}
	return st
}

// NewThread instantiates an independent thread resuming from the snapshot.
// Each call allocates fresh frames and register files, so any number of
// forks execute without aliasing each other (or the snapshot). The thread
// must run against the same Program the snapshot was captured from — the
// captured frames reference its decoded code.
func (st *ThreadState) NewThread(p *Program) *Thread {
	if p != st.prog {
		panic(fmt.Sprintf("interp: ThreadState for thread %d restored onto a different Program", st.ID))
	}
	t := &Thread{ID: st.ID, Prog: p, RNG: st.RNG, Frames: make([]*Frame, len(st.frames))}
	for i, fs := range st.frames {
		t.Frames[i] = &Frame{
			Fn:        fs.df.fn,
			Regs:      append([]int64(nil), fs.regs...),
			Block:     fs.block,
			PC:        fs.pc,
			StackBase: fs.stackBase,
			RetReg:    fs.retReg,
			df:        fs.df,
			code:      fs.df.blocks[fs.block],
		}
	}
	return t
}
