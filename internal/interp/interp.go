// Package interp executes TIR programs one instruction at a time, under the
// control of a simulation environment (internal/sim). The interpreter owns
// architectural state — frames, registers, program counters, the per-thread
// PRNG — and delegates every memory-system effect (loads, stores,
// allocation, transactions, thread forking) to an Env. Transactional
// rollback is precise: TxBegin captures a checkpoint of the whole frame
// stack, and an abort restores it, resuming execution at the TxBegin so the
// environment can re-decide retry/fallback policy.
package interp

import (
	"fmt"

	"hintm/internal/ir"
	"hintm/internal/mem"
)

// Ctrl is the environment's verdict on an instruction's side effect.
type Ctrl uint8

// Control outcomes.
const (
	// CtrlOK: effect performed; advance.
	CtrlOK Ctrl = iota
	// CtrlAbort: the thread's transaction aborted and its checkpoint was
	// restored; do not advance (the PC now sits at the TxBegin).
	CtrlAbort
	// CtrlStall: the effect cannot proceed yet (fallback lock wait,
	// barrier); retry the same instruction later.
	CtrlStall
)

// Env is the simulation environment the interpreter runs against.
type Env interface {
	// Load/Store perform one word access with its static safety hint.
	Load(t *Thread, addr mem.Addr, safe bool) (int64, Ctrl)
	Store(t *Thread, addr mem.Addr, val int64, safe bool) Ctrl
	// Malloc/Free manage simulated heap memory for the thread.
	Malloc(t *Thread, size int64) mem.Addr
	Free(t *Thread, addr mem.Addr, size int64)
	// StackAlloc/StackRelease manage the thread's frame storage.
	StackAlloc(t *Thread, words int64) mem.Addr
	StackRelease(t *Thread, base mem.Addr)
	// TxBegin is consulted every time the PC reaches a TxBegin — including
	// after an abort — and decides whether the thread enters (or re-enters)
	// a transaction now.
	TxBegin(t *Thread) Ctrl
	// TxEnd commits (or, under fallback, releases the lock).
	TxEnd(t *Thread) Ctrl
	// TxSuspend/TxResume toggle escape-action mode (paper §VII): between
	// them, memory accesses bypass transactional tracking entirely.
	TxSuspend(t *Thread) Ctrl
	TxResume(t *Thread) Ctrl
	// Parallel forks n threads of fn(tid, args...); it stalls the caller
	// until all children finish, then returns CtrlOK exactly once.
	Parallel(t *Thread, n int64, fn string, args []int64) Ctrl
	// AbortHint requests an explicit abort when cond != 0.
	AbortHint(t *Thread, cond int64) Ctrl
}

// Program wraps a verified module with interpreter-side lookup caches.
type Program struct {
	M        *ir.Module
	blockIdx map[*ir.Func]map[string]int
	layout   map[string]mem.Addr
	// counts, when non-nil, accumulates per-instruction execution counts
	// (keyed by instruction ID) — the simulator's profiling hook.
	counts map[int]uint64
}

// EnableProfile turns on per-instruction execution counting.
func (p *Program) EnableProfile() { p.counts = make(map[int]uint64) }

// ProfileCounts returns the execution counts (nil unless enabled).
func (p *Program) ProfileCounts() map[int]uint64 { return p.counts }

// NewProgram prepares m for execution. The module must verify.
func NewProgram(m *ir.Module) (*Program, error) {
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	p := &Program{M: m, blockIdx: make(map[*ir.Func]map[string]int)}
	for _, f := range m.Funcs {
		idx := make(map[string]int, len(f.Blocks))
		for i, b := range f.Blocks {
			idx[b.Name] = i
		}
		p.blockIdx[f] = idx
	}
	return p, nil
}

// Frame is one activation record.
type Frame struct {
	Fn    *ir.Func
	Regs  []int64
	Block int // index into Fn.Blocks
	PC    int // index into current block's Instrs
	// StackBase is the frame's alloca storage base address.
	StackBase mem.Addr
	// RetReg is the caller register receiving this frame's return value.
	RetReg ir.Reg
}

// Checkpoint is the architectural state snapshot TxBegin captures.
type Checkpoint struct {
	Frames []*Frame
	RNG    uint64
	// StackTop is the thread's stack cursor at capture; the machine
	// restores the allocator to it on abort.
	StackTop mem.Addr
}

// Thread is one simulated software thread.
type Thread struct {
	ID   int
	Prog *Program

	Frames []*Frame
	RNG    uint64
	InTx   bool
	// Fallback reports the thread is executing its critical section under
	// the global fallback lock rather than in HTM mode.
	Fallback bool
	Done     bool

	checkpoint *Checkpoint
}

// Where describes the thread's current position as "fn/block:pc" for
// diagnostic snapshots (watchdog reports, livelock dumps).
func (t *Thread) Where() string {
	if t.Done {
		return "done"
	}
	if len(t.Frames) == 0 {
		return "no-frame"
	}
	f := t.Frames[len(t.Frames)-1]
	if f.Block < 0 || f.Block >= len(f.Fn.Blocks) {
		return fmt.Sprintf("%s/block%d:%d", f.Fn.Name, f.Block, f.PC)
	}
	return fmt.Sprintf("%s/%s:%d", f.Fn.Name, f.Fn.Blocks[f.Block].Name, f.PC)
}

// NewThread prepares a thread executing fn(args...). The environment must
// have been consulted for the entry frame's stack storage.
func (p *Program) NewThread(id int, fn string, args []int64, stackBase mem.Addr, seed uint64) *Thread {
	f := p.M.Func(fn)
	if f == nil {
		panic("interp: unknown function " + fn)
	}
	if len(args) != len(f.Params) {
		panic(fmt.Sprintf("interp: %s wants %d args, got %d", fn, len(f.Params), len(args)))
	}
	fr := &Frame{Fn: f, Regs: make([]int64, f.NumRegs), StackBase: stackBase, RetReg: ir.NoReg}
	for i, a := range args {
		fr.Regs[f.Params[i]] = a
	}
	return &Thread{
		ID:     id,
		Prog:   p,
		Frames: []*Frame{fr},
		RNG:    seed*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 1,
	}
}

// Top returns the active frame.
func (t *Thread) Top() *Frame { return t.Frames[len(t.Frames)-1] }

// CurrentInstr returns the instruction at the PC (nil when done).
func (t *Thread) CurrentInstr() *ir.Instr {
	if t.Done || len(t.Frames) == 0 {
		return nil
	}
	f := t.Top()
	return f.Fn.Blocks[f.Block].Instrs[f.PC]
}

// Capture snapshots the thread's architectural state with the PC at the
// current instruction (called by the environment at TxBegin, before the
// transaction is entered).
func (t *Thread) Capture(stackTop mem.Addr) {
	cp := &Checkpoint{RNG: t.RNG, StackTop: stackTop}
	for _, f := range t.Frames {
		nf := *f
		nf.Regs = append([]int64(nil), f.Regs...)
		cp.Frames = append(cp.Frames, &nf)
	}
	t.checkpoint = cp
}

// Restore rolls architectural state back to the checkpoint and returns it
// (so the environment can restore the stack allocator); the checkpoint is
// consumed — the re-executed TxBegin captures a fresh one.
func (t *Thread) Restore() *Checkpoint {
	cp := t.checkpoint
	if cp == nil {
		panic("interp: restore without checkpoint")
	}
	t.Frames = cp.Frames
	t.RNG = cp.RNG
	t.InTx = false
	t.Fallback = false
	t.checkpoint = nil
	return cp
}

// HasCheckpoint reports whether a transaction checkpoint is pending.
func (t *Thread) HasCheckpoint() bool { return t.checkpoint != nil }

// randBounded draws the next pseudo-random value in [0, bound) from the
// thread's xorshift stream (deterministic per thread and seed).
func (t *Thread) randBounded(bound int64) int64 {
	x := t.RNG
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.RNG = x
	if bound <= 0 {
		return 0
	}
	return int64(x % uint64(bound))
}

// Step executes one instruction of t against env. It returns true if the
// instruction completed (PC advanced or control transferred), false if the
// thread stalled or aborted-and-rolled-back (no forward progress).
// Stepping a Done thread is a no-op returning false.
func (p *Program) Step(env Env, t *Thread) bool {
	if t.Done {
		return false
	}
	f := t.Top()
	in := f.Fn.Blocks[f.Block].Instrs[f.PC]
	if p.counts != nil {
		p.counts[in.ID]++
	}

	advance := func() { f.PC++ }

	switch in.Op {
	case ir.OpConst:
		f.Regs[in.Dst] = in.Imm
		advance()
	case ir.OpMov:
		f.Regs[in.Dst] = f.Regs[in.A]
		advance()
	case ir.OpBin:
		f.Regs[in.Dst] = ir.EvalBin(in.Bin, f.Regs[in.A], f.Regs[in.B])
		advance()
	case ir.OpCmp:
		if ir.EvalCmp(in.Pred, f.Regs[in.A], f.Regs[in.B]) {
			f.Regs[in.Dst] = 1
		} else {
			f.Regs[in.Dst] = 0
		}
		advance()
	case ir.OpLoad:
		v, ctrl := env.Load(t, mem.Addr(f.Regs[in.A]+in.Imm), in.Safe)
		if ctrl != CtrlOK {
			return false
		}
		f.Regs[in.Dst] = v
		advance()
	case ir.OpStore:
		ctrl := env.Store(t, mem.Addr(f.Regs[in.A]+in.Imm), f.Regs[in.B], in.Safe)
		if ctrl != CtrlOK {
			return false
		}
		advance()
	case ir.OpAlloca:
		f.Regs[in.Dst] = int64(f.StackBase) + in.Imm*mem.WordSize
		advance()
	case ir.OpGlobalAddr:
		f.Regs[in.Dst] = int64(globalAddr(p, in.Sym))
		advance()
	case ir.OpMalloc:
		f.Regs[in.Dst] = int64(env.Malloc(t, f.Regs[in.A]))
		advance()
	case ir.OpFree:
		env.Free(t, mem.Addr(f.Regs[in.A]), f.Regs[in.B])
		advance()
	case ir.OpCall:
		callee := p.M.Func(in.Sym)
		base := env.StackAlloc(t, callee.AllocaWords)
		nf := &Frame{
			Fn:        callee,
			Regs:      make([]int64, callee.NumRegs),
			StackBase: base,
			RetReg:    in.Dst,
		}
		for i, arg := range in.Args {
			nf.Regs[callee.Params[i]] = f.Regs[arg]
		}
		advance() // caller resumes after the call
		t.Frames = append(t.Frames, nf)
	case ir.OpRet:
		var ret int64
		if in.A != ir.NoReg {
			ret = f.Regs[in.A]
		}
		env.StackRelease(t, f.StackBase)
		t.Frames = t.Frames[:len(t.Frames)-1]
		if len(t.Frames) == 0 {
			t.Done = true
			return true
		}
		caller := t.Top()
		if f.RetReg != ir.NoReg {
			caller.Regs[f.RetReg] = ret
		}
	case ir.OpBr:
		f.Block = p.blockIdx[f.Fn][in.Then]
		f.PC = 0
	case ir.OpCondBr:
		if f.Regs[in.A] != 0 {
			f.Block = p.blockIdx[f.Fn][in.Then]
		} else {
			f.Block = p.blockIdx[f.Fn][in.Else]
		}
		f.PC = 0
	case ir.OpTxBegin:
		ctrl := env.TxBegin(t)
		if ctrl != CtrlOK {
			return false
		}
		advance()
	case ir.OpTxEnd:
		ctrl := env.TxEnd(t)
		if ctrl != CtrlOK {
			return false
		}
		advance()
	case ir.OpTxSuspend:
		if env.TxSuspend(t) != CtrlOK {
			return false
		}
		advance()
	case ir.OpTxResume:
		if env.TxResume(t) != CtrlOK {
			return false
		}
		advance()
	case ir.OpParallel:
		args := make([]int64, len(in.Args))
		for i, a := range in.Args {
			args[i] = f.Regs[a]
		}
		ctrl := env.Parallel(t, f.Regs[in.A], in.Sym, args)
		if ctrl != CtrlOK {
			return false
		}
		advance()
	case ir.OpRand:
		f.Regs[in.Dst] = t.randBounded(f.Regs[in.A])
		advance()
	case ir.OpAbortHint:
		ctrl := env.AbortHint(t, f.Regs[in.A])
		if ctrl != CtrlOK {
			return false
		}
		advance()
	default:
		panic(fmt.Sprintf("interp: unhandled op in %s: %v", f.Fn.Name, in))
	}
	return true
}
