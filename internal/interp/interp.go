// Package interp executes TIR programs one instruction at a time, under the
// control of a simulation environment (internal/sim). The interpreter owns
// architectural state — frames, registers, program counters, the per-thread
// PRNG — and delegates every memory-system effect (loads, stores,
// allocation, transactions, thread forking) to an Env. Transactional
// rollback is precise: TxBegin captures a checkpoint of the whole frame
// stack, and an abort restores it, resuming execution at the TxBegin so the
// environment can re-decide retry/fallback policy.
//
// The hot loop is allocation-free: NewProgram pre-decodes every instruction
// into a dense dispatch form (branch targets and callees resolved to
// indices/pointers, no map lookups in Step), and frames, register files, and
// checkpoints are pooled per thread so calls and Capture/Restore reuse
// storage across transaction attempts.
package interp

import (
	"fmt"

	"hintm/internal/ir"
	"hintm/internal/mem"
)

// Ctrl is the environment's verdict on an instruction's side effect.
type Ctrl uint8

// Control outcomes.
const (
	// CtrlOK: effect performed; advance.
	CtrlOK Ctrl = iota
	// CtrlAbort: the thread's transaction aborted and its checkpoint was
	// restored; do not advance (the PC now sits at the TxBegin).
	CtrlAbort
	// CtrlStall: the effect cannot proceed yet (fallback lock wait,
	// barrier); retry the same instruction later.
	CtrlStall
)

// Env is the simulation environment the interpreter runs against.
type Env interface {
	// Load/Store perform one word access with its static safety hint.
	Load(t *Thread, addr mem.Addr, safe bool) (int64, Ctrl)
	Store(t *Thread, addr mem.Addr, val int64, safe bool) Ctrl
	// Malloc/Free manage simulated heap memory for the thread.
	Malloc(t *Thread, size int64) mem.Addr
	Free(t *Thread, addr mem.Addr, size int64)
	// StackAlloc/StackRelease manage the thread's frame storage.
	StackAlloc(t *Thread, words int64) mem.Addr
	StackRelease(t *Thread, base mem.Addr)
	// TxBegin is consulted every time the PC reaches a TxBegin — including
	// after an abort — and decides whether the thread enters (or re-enters)
	// a transaction now.
	TxBegin(t *Thread) Ctrl
	// TxEnd commits (or, under fallback, releases the lock).
	TxEnd(t *Thread) Ctrl
	// TxSuspend/TxResume toggle escape-action mode (paper §VII): between
	// them, memory accesses bypass transactional tracking entirely.
	TxSuspend(t *Thread) Ctrl
	TxResume(t *Thread) Ctrl
	// Parallel forks n threads of fn(tid, args...); it stalls the caller
	// until all children finish, then returns CtrlOK exactly once.
	Parallel(t *Thread, n int64, fn string, args []int64) Ctrl
	// AbortHint requests an explicit abort when cond != 0.
	AbortHint(t *Thread, cond int64) Ctrl
}

// dinstr is one pre-decoded instruction: branch targets resolved to block
// indices, callees and globals to side-table indices, so Step dispatches
// with array indexing only. The struct is kept to 32 bytes (half a cache
// line) — per-op cold payloads (call sites, parallel sites, profile IDs)
// live in dfunc side tables reached through aux.
//
// Field use by op: aux is the target block (Br, CondBr — else target in
// imm), the global slot (GlobalAddr), or the side-table index (Call,
// Parallel). imm is the literal (Const), the byte offset (Load/Store), the
// pre-scaled byte size (Alloca), or the else-block index (CondBr).
type dinstr struct {
	op        ir.Op
	safe      bool
	bin       ir.BinKind
	pred      ir.CmpKind
	dst, a, b ir.Reg
	aux       int32
	imm       int64
}

// callSite is the cold payload of one OpCall instruction.
type callSite struct {
	callee *dfunc
	args   []ir.Reg
}

// parSite is the cold payload of one OpParallel instruction.
type parSite struct {
	sym  string
	args []ir.Reg
}

// dfunc is a function's decoded body.
type dfunc struct {
	fn     *ir.Func
	blocks [][]dinstr
	// ids mirrors blocks with each instruction's module-wide ID; only the
	// profiling path (Program.counts != nil) reads it.
	ids   [][]int32
	calls []callSite
	pars  []parSite
}

// Program wraps a verified module with its pre-decoded executable form.
type Program struct {
	M *ir.Module

	dfuncs map[string]*dfunc
	// globalAddrs is the laid-out address per module global, in
	// Module.Globals order; globalsLaid flips when LayoutGlobals ran.
	globalAddrs []mem.Addr
	globalsLaid bool
	// counts, when non-nil, accumulates per-instruction execution counts
	// indexed by instruction ID — the simulator's profiling hook. A dense
	// slice (IDs are module-sequential), so the per-Step overhead when
	// enabled is one bounds-checked increment; nil costs one branch.
	counts []uint64
	maxID  int
}

// EnableProfile turns on per-instruction execution counting. The count
// store is presized to the module's instruction-ID range, so profiled runs
// pay one slice increment per step and no map growth.
func (p *Program) EnableProfile() {
	p.counts = make([]uint64, p.maxID+1)
}

// ProfileCounts returns the execution counts keyed by instruction ID (nil
// unless enabled). Built on demand; call once per run, not per step.
func (p *Program) ProfileCounts() map[int]uint64 {
	if p.counts == nil {
		return nil
	}
	out := make(map[int]uint64)
	for id, c := range p.counts {
		if c != 0 {
			out[id] = c
		}
	}
	return out
}

// NewProgram prepares m for execution. The module must verify.
func NewProgram(m *ir.Module) (*Program, error) {
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	p := &Program{
		M:           m,
		dfuncs:      make(map[string]*dfunc, len(m.Funcs)),
		globalAddrs: make([]mem.Addr, len(m.Globals)),
	}
	globalIdx := make(map[string]int32, len(m.Globals))
	for i, g := range m.Globals {
		globalIdx[g.Name] = int32(i)
	}
	// Two passes: allocate every dfunc first so call sites can resolve
	// callees (including recursion and forward references).
	for _, f := range m.Funcs {
		p.dfuncs[f.Name] = &dfunc{
			fn:     f,
			blocks: make([][]dinstr, len(f.Blocks)),
			ids:    make([][]int32, len(f.Blocks)),
		}
	}
	for _, f := range m.Funcs {
		df := p.dfuncs[f.Name]
		blockIdx := make(map[string]int32, len(f.Blocks))
		for i, b := range f.Blocks {
			blockIdx[b.Name] = int32(i)
		}
		for bi, b := range f.Blocks {
			code := make([]dinstr, len(b.Instrs))
			ids := make([]int32, len(b.Instrs))
			for ii, in := range b.Instrs {
				if in.ID > p.maxID {
					p.maxID = in.ID
				}
				ids[ii] = int32(in.ID)
				d := dinstr{
					op:   in.Op,
					safe: in.Safe,
					bin:  in.Bin,
					pred: in.Pred,
					dst:  in.Dst,
					a:    in.A,
					b:    in.B,
					imm:  in.Imm,
				}
				switch in.Op {
				case ir.OpBr:
					d.aux = blockIdx[in.Then]
				case ir.OpCondBr:
					d.aux = blockIdx[in.Then]
					d.imm = int64(blockIdx[in.Else])
				case ir.OpCall:
					callee := p.dfuncs[in.Sym]
					if callee == nil {
						return nil, fmt.Errorf("interp: call to unknown function %s", in.Sym)
					}
					d.aux = int32(len(df.calls))
					df.calls = append(df.calls, callSite{callee: callee, args: in.Args})
				case ir.OpParallel:
					d.aux = int32(len(df.pars))
					df.pars = append(df.pars, parSite{sym: in.Sym, args: in.Args})
				case ir.OpGlobalAddr:
					gi, ok := globalIdx[in.Sym]
					if !ok {
						return nil, fmt.Errorf("interp: reference to unknown global %s", in.Sym)
					}
					d.aux = gi
				case ir.OpAlloca:
					// Fold the word offset into a byte offset once.
					d.imm = in.Imm * mem.WordSize
				}
				code[ii] = d
			}
			df.blocks[bi] = code
			df.ids[bi] = ids
		}
	}
	return p, nil
}

// Frame is one activation record.
type Frame struct {
	Fn    *ir.Func
	Regs  []int64
	Block int // index into Fn.Blocks
	PC    int // index into current block's Instrs
	// StackBase is the frame's alloca storage base address.
	StackBase mem.Addr
	// RetReg is the caller register receiving this frame's return value.
	RetReg ir.Reg

	df *dfunc
	// code caches df.blocks[Block] so the fetch is one indexed load;
	// maintained at every block transfer (call entry, Br, CondBr).
	code []dinstr
}

// Checkpoint is the architectural state snapshot TxBegin captures.
type Checkpoint struct {
	Frames []*Frame
	RNG    uint64
	// StackTop is the thread's stack cursor at capture; the machine
	// restores the allocator to it on abort.
	StackTop mem.Addr
}

// Thread is one simulated software thread.
type Thread struct {
	ID   int
	Prog *Program

	Frames []*Frame
	RNG    uint64
	InTx   bool
	// Fallback reports the thread is executing its critical section under
	// the global fallback lock rather than in HTM mode.
	Fallback bool
	Done     bool

	checkpoint *Checkpoint
	// cpSpare is the recycled Checkpoint (with its Frames backing array)
	// the next Capture reuses; framePool recycles Frame+Regs storage from
	// returns, aborts, and superseded checkpoints.
	cpSpare   *Checkpoint
	framePool []*Frame
	// parArgs is the reused argument buffer for OpParallel.
	parArgs []int64
}

// Where describes the thread's current position as "fn/block:pc" for
// diagnostic snapshots (watchdog reports, livelock dumps).
func (t *Thread) Where() string {
	if t.Done {
		return "done"
	}
	if len(t.Frames) == 0 {
		return "no-frame"
	}
	f := t.Frames[len(t.Frames)-1]
	if f.Block < 0 || f.Block >= len(f.Fn.Blocks) {
		return fmt.Sprintf("%s/block%d:%d", f.Fn.Name, f.Block, f.PC)
	}
	return fmt.Sprintf("%s/%s:%d", f.Fn.Name, f.Fn.Blocks[f.Block].Name, f.PC)
}

// takeFrame returns a pooled (or new) frame with a register file of exactly
// nregs zeroed words.
func (t *Thread) takeFrame(nregs int) *Frame {
	var f *Frame
	if n := len(t.framePool); n > 0 {
		f = t.framePool[n-1]
		t.framePool[n-1] = nil
		t.framePool = t.framePool[:n-1]
	} else {
		f = &Frame{}
	}
	if cap(f.Regs) < nregs {
		f.Regs = make([]int64, nregs)
	} else {
		f.Regs = f.Regs[:nregs]
		for i := range f.Regs {
			f.Regs[i] = 0
		}
	}
	return f
}

func (t *Thread) releaseFrame(f *Frame) {
	t.framePool = append(t.framePool, f)
}

// NewThread prepares a thread executing fn(args...). The environment must
// have been consulted for the entry frame's stack storage.
func (p *Program) NewThread(id int, fn string, args []int64, stackBase mem.Addr, seed uint64) *Thread {
	df := p.dfuncs[fn]
	if df == nil {
		panic("interp: unknown function " + fn)
	}
	f := df.fn
	if len(args) != len(f.Params) {
		panic(fmt.Sprintf("interp: %s wants %d args, got %d", fn, len(f.Params), len(args)))
	}
	fr := &Frame{Fn: f, Regs: make([]int64, f.NumRegs), StackBase: stackBase, RetReg: ir.NoReg, df: df, code: df.blocks[0]}
	for i, a := range args {
		fr.Regs[f.Params[i]] = a
	}
	return &Thread{
		ID:     id,
		Prog:   p,
		Frames: []*Frame{fr},
		RNG:    seed*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 1,
	}
}

// Top returns the active frame.
func (t *Thread) Top() *Frame { return t.Frames[len(t.Frames)-1] }

// CurrentInstr returns the instruction at the PC (nil when done).
func (t *Thread) CurrentInstr() *ir.Instr {
	if t.Done || len(t.Frames) == 0 {
		return nil
	}
	f := t.Top()
	return f.Fn.Blocks[f.Block].Instrs[f.PC]
}

// Capture snapshots the thread's architectural state with the PC at the
// current instruction (called by the environment at TxBegin, before the
// transaction is entered). Checkpoint and frame storage is recycled from
// the previous capture, so steady-state retry loops allocate nothing.
func (t *Thread) Capture(stackTop mem.Addr) {
	if old := t.checkpoint; old != nil {
		// The previous transaction committed without consuming its
		// checkpoint; recycle it.
		t.recycleCheckpoint(old)
	}
	cp := t.cpSpare
	if cp == nil {
		cp = &Checkpoint{}
	}
	t.cpSpare = nil
	cp.RNG = t.RNG
	cp.StackTop = stackTop
	cp.Frames = cp.Frames[:0]
	for _, f := range t.Frames {
		nf := t.takeFrame(len(f.Regs))
		regs := nf.Regs
		*nf = *f
		nf.Regs = regs
		copy(nf.Regs, f.Regs)
		cp.Frames = append(cp.Frames, nf)
	}
	t.checkpoint = cp
}

// recycleCheckpoint returns cp's frames to the pool and keeps the struct
// (with its Frames backing array) for the next Capture.
func (t *Thread) recycleCheckpoint(cp *Checkpoint) {
	for i, f := range cp.Frames {
		t.releaseFrame(f)
		cp.Frames[i] = nil
	}
	cp.Frames = cp.Frames[:0]
	t.checkpoint = nil
	if t.cpSpare == nil {
		t.cpSpare = cp
	}
}

// Restore rolls architectural state back to the checkpoint and returns it
// (so the environment can restore the stack allocator); the checkpoint is
// consumed — the re-executed TxBegin captures a fresh one. The returned
// Checkpoint's Frames are no longer valid: the restored frames become the
// thread's live stack, and the aborted attempt's frames are recycled.
func (t *Thread) Restore() *Checkpoint {
	cp := t.checkpoint
	if cp == nil {
		panic("interp: restore without checkpoint")
	}
	oldLive := t.Frames
	t.Frames = cp.Frames
	t.RNG = cp.RNG
	t.InTx = false
	t.Fallback = false
	t.checkpoint = nil
	// Double-buffer swap: the aborted attempt's frames go back to the pool,
	// and their slice becomes the spare checkpoint's Frames storage.
	for i, f := range oldLive {
		t.releaseFrame(f)
		oldLive[i] = nil
	}
	cp.Frames = oldLive[:0]
	if t.cpSpare == nil {
		t.cpSpare = cp
	}
	return cp
}

// HasCheckpoint reports whether a transaction checkpoint is pending.
func (t *Thread) HasCheckpoint() bool { return t.checkpoint != nil }

// randBounded draws the next pseudo-random value in [0, bound) from the
// thread's xorshift stream (deterministic per thread and seed).
func (t *Thread) randBounded(bound int64) int64 {
	x := t.RNG
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.RNG = x
	if bound <= 0 {
		return 0
	}
	return int64(x % uint64(bound))
}

// Step executes one instruction of t against env. It returns true if the
// instruction completed (PC advanced or control transferred), false if the
// thread stalled or aborted-and-rolled-back (no forward progress).
// Stepping a Done thread is a no-op returning false.
func (p *Program) Step(env Env, t *Thread) bool {
	if t.Done {
		return false
	}
	f := t.Frames[len(t.Frames)-1]
	in := &f.code[f.PC]
	if p.counts != nil {
		p.counts[f.df.ids[f.Block][f.PC]]++
	}

	switch in.op {
	case ir.OpConst:
		f.Regs[in.dst] = in.imm
		f.PC++
	case ir.OpMov:
		f.Regs[in.dst] = f.Regs[in.a]
		f.PC++
	case ir.OpBin:
		// The common arithmetic kinds are open-coded: ir.EvalBin contains a
		// panic and is not inlinable, and this is the hottest ALU path.
		a, b := f.Regs[in.a], f.Regs[in.b]
		switch in.bin {
		case ir.BinAdd:
			f.Regs[in.dst] = a + b
		case ir.BinSub:
			f.Regs[in.dst] = a - b
		case ir.BinMul:
			f.Regs[in.dst] = a * b
		default:
			f.Regs[in.dst] = ir.EvalBin(in.bin, a, b)
		}
		f.PC++
	case ir.OpCmp:
		if ir.EvalCmp(in.pred, f.Regs[in.a], f.Regs[in.b]) {
			f.Regs[in.dst] = 1
		} else {
			f.Regs[in.dst] = 0
		}
		f.PC++
	case ir.OpLoad:
		v, ctrl := env.Load(t, mem.Addr(f.Regs[in.a]+in.imm), in.safe)
		if ctrl != CtrlOK {
			return false
		}
		f.Regs[in.dst] = v
		f.PC++
	case ir.OpStore:
		ctrl := env.Store(t, mem.Addr(f.Regs[in.a]+in.imm), f.Regs[in.b], in.safe)
		if ctrl != CtrlOK {
			return false
		}
		f.PC++
	case ir.OpAlloca:
		// imm is pre-scaled to bytes by the decoder.
		f.Regs[in.dst] = int64(f.StackBase) + in.imm
		f.PC++
	case ir.OpGlobalAddr:
		if !p.globalsLaid {
			panic(fmt.Sprintf("interp: global %v not laid out", f.Fn.Blocks[f.Block].Instrs[f.PC]))
		}
		f.Regs[in.dst] = int64(p.globalAddrs[in.aux])
		f.PC++
	case ir.OpMalloc:
		f.Regs[in.dst] = int64(env.Malloc(t, f.Regs[in.a]))
		f.PC++
	case ir.OpFree:
		env.Free(t, mem.Addr(f.Regs[in.a]), f.Regs[in.b])
		f.PC++
	case ir.OpCall:
		cs := &f.df.calls[in.aux]
		callee := cs.callee
		base := env.StackAlloc(t, callee.fn.AllocaWords)
		nf := t.takeFrame(callee.fn.NumRegs)
		nf.Fn = callee.fn
		nf.df = callee
		nf.Block = 0
		nf.PC = 0
		nf.code = callee.blocks[0]
		nf.StackBase = base
		nf.RetReg = in.dst
		for i, arg := range cs.args {
			nf.Regs[callee.fn.Params[i]] = f.Regs[arg]
		}
		f.PC++ // caller resumes after the call
		t.Frames = append(t.Frames, nf)
	case ir.OpRet:
		var ret int64
		if in.a != ir.NoReg {
			ret = f.Regs[in.a]
		}
		retReg := f.RetReg
		env.StackRelease(t, f.StackBase)
		t.Frames[len(t.Frames)-1] = nil
		t.Frames = t.Frames[:len(t.Frames)-1]
		t.releaseFrame(f)
		if len(t.Frames) == 0 {
			t.Done = true
			return true
		}
		if retReg != ir.NoReg {
			t.Frames[len(t.Frames)-1].Regs[retReg] = ret
		}
	case ir.OpBr:
		f.Block = int(in.aux)
		f.code = f.df.blocks[f.Block]
		f.PC = 0
	case ir.OpCondBr:
		if f.Regs[in.a] != 0 {
			f.Block = int(in.aux)
		} else {
			f.Block = int(in.imm) // else target rides in imm
		}
		f.code = f.df.blocks[f.Block]
		f.PC = 0
	case ir.OpTxBegin:
		ctrl := env.TxBegin(t)
		if ctrl != CtrlOK {
			return false
		}
		f.PC++
	case ir.OpTxEnd:
		ctrl := env.TxEnd(t)
		if ctrl != CtrlOK {
			return false
		}
		f.PC++
	case ir.OpTxSuspend:
		if env.TxSuspend(t) != CtrlOK {
			return false
		}
		f.PC++
	case ir.OpTxResume:
		if env.TxResume(t) != CtrlOK {
			return false
		}
		f.PC++
	case ir.OpParallel:
		ps := &f.df.pars[in.aux]
		if cap(t.parArgs) < len(ps.args) {
			t.parArgs = make([]int64, len(ps.args))
		}
		args := t.parArgs[:len(ps.args)]
		for i, a := range ps.args {
			args[i] = f.Regs[a]
		}
		ctrl := env.Parallel(t, f.Regs[in.a], ps.sym, args)
		if ctrl != CtrlOK {
			return false
		}
		f.PC++
	case ir.OpRand:
		f.Regs[in.dst] = t.randBounded(f.Regs[in.a])
		f.PC++
	case ir.OpAbortHint:
		ctrl := env.AbortHint(t, f.Regs[in.a])
		if ctrl != CtrlOK {
			return false
		}
		f.PC++
	default:
		panic(fmt.Sprintf("interp: unhandled op in %s: %v", f.Fn.Name, f.Fn.Blocks[f.Block].Instrs[f.PC]))
	}
	return true
}
