package cli

import (
	"flag"
	"testing"
	"time"

	"hintm/internal/sim"
	"hintm/internal/workloads"
)

func TestHarnessFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	h := RegisterHarness(fs)
	err := fs.Parse([]string{
		"-scale", "small", "-large", "medium", "-workloads", "labyrinth,vacation",
		"-seed", "7", "-workers", "3", "-watchdog", "100", "-max-cycles", "200",
		"-trace-dir", "/tmp/traces", "-faults", "spurious=0.01",
	})
	if err != nil {
		t.Fatal(err)
	}
	opts, err := h.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Scale != workloads.Small || opts.LargeScale != workloads.Medium {
		t.Errorf("scales: %v/%v", opts.Scale, opts.LargeScale)
	}
	if len(opts.Filter) != 2 || opts.Seed != 7 || opts.Workers != 3 ||
		opts.WatchdogCycles != 100 || opts.MaxCycles != 200 || opts.TraceDir != "/tmp/traces" {
		t.Errorf("options: %+v", opts)
	}
	if !opts.Faults.Enabled() {
		t.Error("fault plan not parsed")
	}
}

func TestHarnessFlagsRejectBadScale(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	h := RegisterHarness(fs)
	if err := fs.Parse([]string{"-scale", "tiny"}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Options(); err == nil {
		t.Error("bad -scale accepted")
	}
}

func TestSimFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterSim(fs)
	if err := fs.Parse([]string{"-htm", "p8s", "-hints", "dyn", "-scale", "large", "-smt", "2", "-seed", "9", "-sig-bits", "256"}); err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HTM != sim.HTMP8S || cfg.Hints != sim.HintDynamic || cfg.SMT != 2 || cfg.Seed != 9 {
		t.Errorf("config: htm=%v hints=%v smt=%d seed=%d", cfg.HTM, cfg.Hints, cfg.SMT, cfg.Seed)
	}
	if cfg.SigBits != 256 {
		t.Errorf("sig bits: %d, want 256", cfg.SigBits)
	}

	// -sig-bits 0 keeps the config default rather than zeroing it.
	fs0 := flag.NewFlagSet("test", flag.ContinueOnError)
	f0 := RegisterSim(fs0)
	if err := fs0.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg0, err := f0.Config(); err != nil || cfg0.SigBits != sim.DefaultConfig().SigBits {
		t.Errorf("default sig bits: %v, %v", cfg0.SigBits, err)
	}
	scale, err := f.Scale()
	if err != nil || scale != workloads.Large {
		t.Errorf("scale: %v, %v", scale, err)
	}

	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	f2 := RegisterSim(fs2)
	if err := fs2.Parse([]string{"-htm", "p99"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Config(); err == nil {
		t.Error("bad -htm accepted")
	}
}

func TestFleetFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterFleet(fs)
	err := fs.Parse([]string{
		"-node", "http://a:1", "-peers", "http://a:1,http://b:2", "-replicas", "3",
		"-peer-budget", "750ms", "-breaker-threshold", "5", "-breaker-backoff", "200ms",
		"-health-seed", "9", "-repl-queue", "64", "-repl-workers", "4", "-anti-entropy", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Enabled() {
		t.Fatal("fleet flags not enabled with -peers set")
	}
	cfg, err := f.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Self != "http://a:1" || len(cfg.Peers) != 2 || cfg.Replicas != 3 {
		t.Errorf("membership: %+v", cfg)
	}
	if cfg.PeerBudget != 750*time.Millisecond || cfg.BreakerThreshold != 5 ||
		cfg.BreakerBackoff != 200*time.Millisecond || cfg.HealthSeed != 9 {
		t.Errorf("resilience knobs: %+v", cfg)
	}
	if cfg.ReplQueue != 64 || cfg.ReplWorkers != 4 || cfg.AntiEntropy != 2*time.Second {
		t.Errorf("replication knobs: %+v", cfg)
	}
}

func TestFleetFlagsRequireNode(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterFleet(fs)
	if err := fs.Parse([]string{"-peers", "http://a:1,http://b:2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Config(); err == nil {
		t.Error("-peers without -node accepted")
	}

	// No fleet flags at all: single-node zero config, no error.
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	f2 := RegisterFleet(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg, err := f2.Config(); err != nil || cfg.Self != "" || f2.Enabled() {
		t.Errorf("zero fleet config: %+v (%v)", cfg, err)
	}
}

func TestOpenStore(t *testing.T) {
	st, err := OpenStore("")
	if err != nil || st != nil {
		t.Errorf("OpenStore(\"\") = %v, %v; want nil, nil", st, err)
	}
	st, err = OpenStore(t.TempDir())
	if err != nil || st == nil {
		t.Errorf("OpenStore(dir) = %v, %v", st, err)
	}
}

func TestContextTimeout(t *testing.T) {
	ctx, stop := Context(10 * time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout context never expired")
	}
}
