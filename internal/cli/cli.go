// Package cli is the shared command-line surface of the hintm binaries.
//
// hintm-sim, hintm-bench, hintm-served, and hintm-load configure the same
// machinery — input scales, HTM kind and hint mode, seeds, fault plans,
// the result store, worker counts, timeouts — and before this package each
// binary re-registered and re-parsed those flags by hand, drifting in
// defaults and usage text. The flag groups live here once: a binary
// registers the group(s) it needs on its FlagSet and asks the group for
// the parsed, validated configuration. Spellings are validated with the
// same parsers the wire format uses (workloads.ParseScale,
// sim.ParseHTMKind, sim.ParseHintMode), so `-htm p8s` on a command line
// and `"htm":"p8s"` in a request body accept exactly the same values.
package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"hintm/internal/fault"
	"hintm/internal/harness"
	"hintm/internal/server"
	"hintm/internal/sim"
	"hintm/internal/store"
	"hintm/internal/workloads"
)

// ---- harness options (hintm-bench, hintm-served) -----------------------

// HarnessFlags collects the scheduler-facing flags. Register with
// RegisterHarness, then call Options after flag parsing.
type HarnessFlags struct {
	scale        *string
	large        *string
	workloads    *string
	seed         *uint64
	workers      *int
	faults       *string
	watchdog     *int64
	maxCycles    *int64
	traceDir     *string
	sampleCycles *int64
	prefixShare  *bool
}

// RegisterHarness registers the shared scheduler flags (-scale, -large,
// -workloads, -seed, -workers, -faults, -watchdog, -max-cycles,
// -trace-dir, -sample-cycles, -prefix-share) on fs.
func RegisterHarness(fs *flag.FlagSet) *HarnessFlags {
	h := &HarnessFlags{}
	h.scale = fs.String("scale", "medium", "input scale for requests and P8 figures: small|medium|large")
	h.large = fs.String("large", "large", "input scale for Fig 7/8: small|medium|large")
	h.workloads = fs.String("workloads", "", "comma-separated workload subset")
	h.seed = fs.Uint64("seed", 1, "simulation seed (part of every store key)")
	h.workers = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	h.faults = fs.String("faults", "", `fault-injection plan, e.g. "spurious=0.01,storm=0.001"`)
	h.watchdog = fs.Int64("watchdog", 0, "fail a run after this many cycles without forward progress (0 = off)")
	h.maxCycles = fs.Int64("max-cycles", 0, "hard cap on each run's simulated cycles (0 = none)")
	h.traceDir = fs.String("trace-dir", "", "write per-run Chrome traces and abort autopsies into this directory")
	h.sampleCycles = fs.Int64("sample-cycles", 0, "counter-sample period for traced runs (0 = 10000-cycle default)")
	h.prefixShare = fs.Bool("prefix-share", true, "share each grid group's warm-up prefix via snapshot/fork (results stay byte-identical)")
	return h
}

// Options validates the parsed flags into harness.Options.
func (h *HarnessFlags) Options() (harness.Options, error) {
	opts := harness.DefaultOptions()
	var err error
	if opts.Scale, err = workloads.ParseScale(*h.scale); err != nil {
		return opts, err
	}
	if opts.LargeScale, err = workloads.ParseScale(*h.large); err != nil {
		return opts, err
	}
	if *h.workloads != "" {
		opts.Filter = strings.Split(*h.workloads, ",")
	}
	opts.Seed = *h.seed
	opts.Workers = *h.workers
	if opts.Faults, err = fault.ParsePlan(*h.faults); err != nil {
		return opts, err
	}
	opts.WatchdogCycles = *h.watchdog
	opts.MaxCycles = *h.maxCycles
	opts.TraceDir = *h.traceDir
	opts.SampleCycles = *h.sampleCycles
	opts.NoPrefixShare = !*h.prefixShare
	return opts, nil
}

// ---- simulator config (hintm-sim) --------------------------------------

// SimFlags collects the per-run simulator flags. Register with
// RegisterSim, then call Config/Scale after flag parsing.
type SimFlags struct {
	htm       *string
	hints     *string
	scale     *string
	smt       *int
	seed      *uint64
	sigBits   *uint64
	faults    *string
	watchdog  *int64
	maxCycles *int64
}

// RegisterSim registers the shared single-run flags (-htm, -hints, -scale,
// -smt, -seed, -sig-bits, -faults, -watchdog, -max-cycles) on fs.
func RegisterSim(fs *flag.FlagSet) *SimFlags {
	f := &SimFlags{}
	f.htm = fs.String("htm", "p8", "baseline HTM: p8|p8s|l1tm|infcap|stm")
	f.hints = fs.String("hints", "none", "hint mode: none|st|dyn|full")
	f.scale = fs.String("scale", "medium", "input scale: small|medium|large")
	f.smt = fs.Int("smt", 1, "hardware threads per core")
	f.seed = fs.Uint64("seed", 1, "simulation seed")
	f.sigBits = fs.Uint64("sig-bits", 0, "P8S read-signature size in bits (0 = config default, 1024)")
	f.faults = fs.String("faults", "", `fault-injection plan, e.g. "spurious=0.01,storm=0.001,inval-delay=200"`)
	f.watchdog = fs.Int64("watchdog", 0, "fail after this many cycles without forward progress (0 = off)")
	f.maxCycles = fs.Int64("max-cycles", 0, "hard cap on simulated cycles (0 = none)")
	return f
}

// Config validates the parsed flags into a sim.Config seeded from
// sim.DefaultConfig.
func (f *SimFlags) Config() (sim.Config, error) {
	cfg := sim.DefaultConfig()
	cfg.Seed = *f.seed
	cfg.SMT = *f.smt
	if *f.sigBits != 0 {
		cfg.SigBits = *f.sigBits
	}
	var err error
	if cfg.Faults, err = fault.ParsePlan(*f.faults); err != nil {
		return cfg, err
	}
	cfg.WatchdogCycles = *f.watchdog
	cfg.MaxCycles = *f.maxCycles
	if cfg.HTM, err = sim.ParseHTMKind(*f.htm); err != nil {
		return cfg, err
	}
	if cfg.Hints, err = sim.ParseHintMode(*f.hints); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Scale parses the -scale flag.
func (f *SimFlags) Scale() (workloads.Scale, error) {
	return workloads.ParseScale(*f.scale)
}

// ---- fleet membership and resilience (hintm-served) ---------------------

// FleetFlags collects the fleet flags: membership (-node, -peers,
// -replicas) plus the resilience knobs (peer budget, breaker threshold and
// backoff, replication queue and workers, anti-entropy interval). Register
// with RegisterFleet, then call Config after flag parsing.
type FleetFlags struct {
	node             *string
	peers            *string
	replicas         *int
	peerBudget       *time.Duration
	breakerThreshold *int
	breakerBackoff   *time.Duration
	healthSeed       *uint64
	replQueue        *int
	replWorkers      *int
	antiEntropy      *time.Duration
}

// RegisterFleet registers the fleet flag group on fs.
func RegisterFleet(fs *flag.FlagSet) *FleetFlags {
	f := &FleetFlags{}
	f.node = fs.String("node", "", "this node's advertised base URL, e.g. http://127.0.0.1:8347")
	f.peers = fs.String("peers", "", "comma-separated base URLs of every fleet node, including -node")
	f.replicas = fs.Int("replicas", 0, "ring owners per key (0 = default)")
	f.peerBudget = fs.Duration("peer-budget", 0, "total peer time one cold miss may spend before simulating locally (0 = 2s default)")
	f.breakerThreshold = fs.Int("breaker-threshold", 0, "consecutive peer failures that open its circuit breaker (0 = default)")
	f.breakerBackoff = fs.Duration("breaker-backoff", 0, "initial open-breaker probe backoff, doubled per failed probe (0 = default)")
	f.healthSeed = fs.Uint64("health-seed", 0, "breaker backoff jitter seed (0 = default)")
	f.replQueue = fs.Int("repl-queue", 0, "async replication queue capacity; overflow drops oldest (0 = default)")
	f.replWorkers = fs.Int("repl-workers", 0, "async replication worker count (0 = default)")
	f.antiEntropy = fs.Duration("anti-entropy", 0, "background repair sweep interval (0 = off)")
	return f
}

// Enabled reports whether fleet mode was requested.
func (f *FleetFlags) Enabled() bool { return *f.peers != "" }

// Config validates the parsed flags into a server.FleetConfig. It errors
// when -peers is set without -node; the zero config (single node) is
// returned when fleet mode is off.
func (f *FleetFlags) Config() (server.FleetConfig, error) {
	if !f.Enabled() {
		return server.FleetConfig{}, nil
	}
	if *f.node == "" {
		return server.FleetConfig{}, fmt.Errorf("-peers requires -node (this node's own base URL)")
	}
	return server.FleetConfig{
		Self:             *f.node,
		Peers:            strings.Split(*f.peers, ","),
		Replicas:         *f.replicas,
		PeerBudget:       *f.peerBudget,
		BreakerThreshold: *f.breakerThreshold,
		BreakerBackoff:   *f.breakerBackoff,
		HealthSeed:       *f.healthSeed,
		ReplQueue:        *f.replQueue,
		ReplWorkers:      *f.replWorkers,
		AntiEntropy:      *f.antiEntropy,
	}, nil
}

// ---- result store -------------------------------------------------------

// RegisterStore registers the -store flag with the binary's default
// directory ("" = store disabled).
func RegisterStore(fs *flag.FlagSet, def string) *string {
	usage := "recall/persist every run in this content-addressed result store directory"
	if def == "" {
		usage += ` ("" = off)`
	}
	return fs.String("store", def, usage)
}

// OpenStore opens the flagged store directory; "" means no store (nil).
func OpenStore(dir string) (*store.Store, error) {
	if dir == "" {
		return nil, nil
	}
	return store.Open(dir)
}

// ---- lifecycle ----------------------------------------------------------

// Context returns a context cancelled by SIGINT/SIGTERM — containerized
// and service-managed runs get the same graceful path as an interactive
// ^C — and additionally by the timeout when it is > 0.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() { cancel(); stop() }
}

// ---- pprof profiles ------------------------------------------------------

// ProfileFlags collects the -cpuprofile/-memprofile flags.
type ProfileFlags struct {
	prog string
	cpu  *string
	mem  *string
}

// RegisterProfiles registers -cpuprofile and -memprofile on fs; prog
// prefixes error output (e.g. "hintm-sim").
func RegisterProfiles(fs *flag.FlagSet, prog, of string) *ProfileFlags {
	p := &ProfileFlags{prog: prog}
	p.cpu = fs.String("cpuprofile", "", "write a Go CPU profile of the "+of+" to this file")
	p.mem = fs.String("memprofile", "", "write a Go heap profile of the "+of+" to this file")
	return p
}

// Start arms the requested profiles and returns the stop function that
// finalizes them. stop runs at most once, so it is safe to both defer it
// and call it explicitly on early-exit paths (os.Exit skips defers).
func (p *ProfileFlags) Start() (stop func(), err error) {
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if *p.cpu != "" {
			pprof.StopCPUProfile()
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", p.prog, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", p.prog, err)
			}
		}
	}, nil
}
