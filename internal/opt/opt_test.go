package opt

import (
	"context"
	"testing"

	"hintm/internal/classify"
	"hintm/internal/ir"
	"hintm/internal/sim"
	"hintm/internal/workloads"
)

func TestConstantFolding(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("out", 1)
	f := b.Function("main", 0)
	g := f.GlobalAddr("out")
	// (6*7) + (100-58) = 84, all foldable.
	x := f.Mul(f.C(6), f.C(7))
	y := f.Sub(f.C(100), f.C(58))
	f.Store(g, 0, f.Add(x, y))
	f.RetVoid()

	st, err := Run(b.M)
	if err != nil {
		t.Fatal(err)
	}
	if st.Simplified == 0 {
		t.Fatalf("nothing folded: %v", st)
	}
	// All three arithmetic ops must now be constants.
	var bins int
	b.M.Func("main").ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpBin {
			bins++
		}
	})
	if bins != 0 {
		t.Fatalf("%d binops survive folding", bins)
	}
	// Result still correct.
	m, err := sim.New(sim.DefaultConfig(), b.M)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadGlobal("out", 0); got != 84 {
		t.Fatalf("out = %d, want 84", got)
	}
}

func TestDivModByZeroNotFolded(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("out", 2)
	f := b.Function("main", 0)
	g := f.GlobalAddr("out")
	f.Store(g, 0, f.Bin(ir.BinDiv, f.C(10), f.C(0)))
	f.Store(g, 8, f.Bin(ir.BinMod, f.C(10), f.C(0)))
	f.RetVoid()

	if _, err := Run(b.M); err != nil {
		t.Fatal(err)
	}
	m, _ := sim.New(sim.DefaultConfig(), b.M)
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.ReadGlobal("out", 0) != 0 || m.ReadGlobal("out", 1) != 0 {
		t.Fatal("div/mod by zero semantics changed")
	}
}

func TestDeadCodeElimination(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("out", 1)
	f := b.Function("main", 0)
	g := f.GlobalAddr("out")
	f.C(111)              // dead const
	f.Load(g, 0)          // dead load (pure)
	f.Mul(f.C(3), f.C(5)) // dead arithmetic chain
	f.Store(g, 0, f.C(1)) // live
	f.RetVoid()

	before := ir.CollectStats(b.M).Instrs
	st, err := Run(b.M)
	if err != nil {
		t.Fatal(err)
	}
	after := ir.CollectStats(b.M).Instrs
	if st.DeadRemoved == 0 || after >= before {
		t.Fatalf("dce removed %d (instrs %d -> %d)", st.DeadRemoved, before, after)
	}
	// Rand must never be removed (PRNG stream side effect).
	b2 := ir.NewBuilder("m2")
	f2 := b2.Function("main", 0)
	f2.RandI(10) // dead result, live side effect
	f2.RetVoid()
	if _, err := Run(b2.M); err != nil {
		t.Fatal(err)
	}
	var rands int
	b2.M.Func("main").ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpRand {
			rands++
		}
	})
	if rands != 1 {
		t.Fatal("dce removed a Rand")
	}
}

func TestBranchSimplificationAndUnreachable(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("out", 1)
	f := b.Function("main", 0)
	then := f.NewBlock("then")
	els := f.NewBlock("els")
	g := f.GlobalAddr("out")
	c := f.Cmp(ir.CmpLT, f.C(1), f.C(2)) // constant true
	f.CondBr(c, then, els)
	f.SetBlock(then)
	f.Store(g, 0, f.C(7))
	f.RetVoid()
	f.SetBlock(els)
	f.Store(g, 0, f.C(9))
	f.RetVoid()

	st, err := Run(b.M)
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchesFixed != 1 {
		t.Fatalf("branches fixed = %d", st.BranchesFixed)
	}
	if st.BlocksRemoved == 0 {
		t.Fatal("unreachable else block survived")
	}
	if b.M.Func("main").Block("els") != nil {
		t.Fatal("els block still present")
	}
	m, _ := sim.New(sim.DefaultConfig(), b.M)
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadGlobal("out", 0); got != 7 {
		t.Fatalf("out = %d, want 7", got)
	}
}

func TestStraightening(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("out", 1)
	f := b.Function("main", 0)
	next := f.NewBlock("next")
	g := f.GlobalAddr("out")
	f.Br(next)
	f.SetBlock(next)
	f.Store(g, 0, f.C(3))
	f.RetVoid()

	st, err := Run(b.M)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksRemoved == 0 {
		t.Fatal("single-pred block not merged")
	}
	if len(b.M.Func("main").Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(b.M.Func("main").Blocks))
	}
}

// TestWorkloadsSemanticsPreserved: optimizing the kernels must not change
// their schedule-independent outputs.
func TestWorkloadsSemanticsPreserved(t *testing.T) {
	for _, name := range []string{"kmeans", "yada", "tpcc-p"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func(optimize bool) *sim.Machine {
			mod := spec.Build(spec.DefaultThreads, workloads.Small)
			if optimize {
				if _, err := Run(mod); err != nil {
					t.Fatalf("%s: opt: %v", name, err)
				}
			}
			if _, err := classify.Run(mod); err != nil {
				t.Fatalf("%s: classify: %v", name, err)
			}
			cfg := sim.DefaultConfig()
			cfg.HTM = sim.HTMInfCap // avoid abort-count timing divergence
			m, err := sim.New(cfg, mod)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			return m
		}
		plain := run(false)
		optimized := run(true)
		// Compare a schedule-independent aggregate: totals that depend only
		// on per-thread PRNG streams and TX atomicity, not interleaving.
		aggregate := func(m *sim.Machine) int64 {
			switch name {
			case "kmeans": // sum of cluster counts == points processed
				var sum int64
				for c := int64(0); c < 32; c++ {
					sum += m.ReadGlobal("centers", c*16)
				}
				return sum
			case "yada": // refined counter == threads * refinements
				return m.ReadGlobal("refined", 0)
			default: // tpcc-p: warehouse YTD == initial + all amounts
				return m.ReadGlobal("warehouse", 0)
			}
		}
		if a, b := aggregate(plain), aggregate(optimized); a != b {
			t.Fatalf("%s: aggregate changed: %d vs %d", name, a, b)
		}
	}
}

// TestOptimizerIdempotent: a second Run finds nothing.
func TestOptimizerIdempotent(t *testing.T) {
	spec, _ := workloads.ByName("genome")
	mod := spec.BuildDefault(workloads.Small)
	if _, err := Run(mod); err != nil {
		t.Fatal(err)
	}
	st, err := Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	if st != (Stats{}) {
		t.Fatalf("second run not a no-op: %v", st)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Simplified: 1, DeadRemoved: 2, BranchesFixed: 3, BlocksRemoved: 4}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}
