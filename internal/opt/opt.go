// Package opt implements the standard cleanup optimizations a compiler runs
// before analysis passes like HinTM's classifier: per-block constant folding
// and copy propagation, dead-instruction elimination, constant-branch
// simplification, unreachable-block removal, and block straightening.
//
// The passes are semantics-preserving for the *architectural* program; like
// any real compiler they may remove dead memory loads, which changes the
// simulated access stream — so the experiment harness runs unoptimized
// kernels (footprints are part of the workload definition) while tirc -O
// exposes the pipeline for inspection and hand-written programs.
package opt

import (
	"fmt"

	"hintm/internal/cfg"
	"hintm/internal/ir"
)

// Stats reports what the pipeline did.
type Stats struct {
	// Simplified counts folded constants and propagated copies.
	Simplified int
	// DeadRemoved counts side-effect-free instructions removed.
	DeadRemoved int
	// BranchesFixed counts constant CondBr turned into Br.
	BranchesFixed int
	// BlocksRemoved counts unreachable or merged-away blocks.
	BlocksRemoved int
}

// String renders the stats for CLI output.
func (s Stats) String() string {
	return fmt.Sprintf("simplified %d, dce %d, branches %d, blocks %d",
		s.Simplified, s.DeadRemoved, s.BranchesFixed, s.BlocksRemoved)
}

// Run optimizes every function of m in place to a fixed point and returns
// aggregate statistics. The module must verify before and after.
func Run(m *ir.Module) (Stats, error) {
	if err := m.Verify(); err != nil {
		return Stats{}, fmt.Errorf("opt: %w", err)
	}
	var total Stats
	for _, f := range m.Funcs {
		for {
			round := Stats{
				Simplified:    foldAndPropagate(f),
				BranchesFixed: simplifyBranches(f),
			}
			round.BlocksRemoved = removeUnreachable(f) + straighten(f)
			round.DeadRemoved = removeDead(f)
			total.Simplified += round.Simplified
			total.DeadRemoved += round.DeadRemoved
			total.BranchesFixed += round.BranchesFixed
			total.BlocksRemoved += round.BlocksRemoved
			if round == (Stats{}) {
				break
			}
		}
	}
	if err := m.Verify(); err != nil {
		return total, fmt.Errorf("opt: post-pass verify: %w", err)
	}
	return total, nil
}

// value is the per-block abstract value of a register.
type value struct {
	isConst bool
	k       int64
	// copyOf holds the original register this one mirrors (ir.NoReg: none).
	copyOf ir.Reg
}

// foldAndPropagate performs block-local constant folding and copy
// propagation. Non-SSA registers require kill-on-redefine discipline:
// assigning a register invalidates both its own value and every copy
// relation that references it.
func foldAndPropagate(f *ir.Func) int {
	changed := 0
	for _, b := range f.Blocks {
		vals := make(map[ir.Reg]value)
		kill := func(r ir.Reg) {
			delete(vals, r)
			for reg, v := range vals {
				if v.copyOf == r {
					delete(vals, reg)
				}
			}
		}
		resolve := func(r ir.Reg) ir.Reg {
			if v, ok := vals[r]; ok && v.copyOf != ir.NoReg {
				return v.copyOf
			}
			return r
		}
		constOf := func(r ir.Reg) (int64, bool) {
			v, ok := vals[r]
			return v.k, ok && v.isConst
		}

		for _, in := range b.Instrs {
			// Copy-propagate operand registers first.
			for _, p := range []*ir.Reg{&in.A, &in.B} {
				if *p != ir.NoReg {
					if r := resolve(*p); r != *p {
						*p = r
						changed++
					}
				}
			}
			for i := range in.Args {
				if r := resolve(in.Args[i]); r != in.Args[i] {
					in.Args[i] = r
					changed++
				}
			}

			switch in.Op {
			case ir.OpConst:
				kill(in.Dst)
				vals[in.Dst] = value{isConst: true, k: in.Imm, copyOf: ir.NoReg}
			case ir.OpMov:
				src := in.A
				kill(in.Dst)
				if k, ok := constOf(src); ok {
					in.Op = ir.OpConst
					in.Imm = k
					in.A = ir.NoReg
					vals[in.Dst] = value{isConst: true, k: k, copyOf: ir.NoReg}
					changed++
				} else if in.Dst != src {
					vals[in.Dst] = value{copyOf: src}
				}
			case ir.OpBin:
				ka, okA := constOf(in.A)
				kb, okB := constOf(in.B)
				kill(in.Dst)
				if okA && okB && !(in.Bin == ir.BinDiv && kb == 0) && !(in.Bin == ir.BinMod && kb == 0) {
					in.Op = ir.OpConst
					in.Imm = ir.EvalBin(in.Bin, ka, kb)
					in.A, in.B = ir.NoReg, ir.NoReg
					vals[in.Dst] = value{isConst: true, k: in.Imm, copyOf: ir.NoReg}
					changed++
				}
			case ir.OpCmp:
				ka, okA := constOf(in.A)
				kb, okB := constOf(in.B)
				kill(in.Dst)
				if okA && okB {
					in.Op = ir.OpConst
					if ir.EvalCmp(in.Pred, ka, kb) {
						in.Imm = 1
					} else {
						in.Imm = 0
					}
					in.A, in.B = ir.NoReg, ir.NoReg
					vals[in.Dst] = value{isConst: true, k: in.Imm, copyOf: ir.NoReg}
					changed++
				}
			default:
				if d := in.Def(); d != ir.NoReg {
					kill(d)
				}
			}
		}
	}
	return changed
}

// simplifyBranches turns CondBr on a block-locally-known constant into Br.
func simplifyBranches(f *ir.Func) int {
	changed := 0
	for _, b := range f.Blocks {
		consts := make(map[ir.Reg]int64)
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpConst:
				consts[in.Dst] = in.Imm
			case ir.OpCondBr:
				if k, ok := consts[in.A]; ok {
					in.Op = ir.OpBr
					if k == 0 {
						in.Then = in.Else
					}
					in.A = ir.NoReg
					in.Else = ""
					changed++
				}
			default:
				if d := in.Def(); d != ir.NoReg {
					delete(consts, d)
				}
			}
		}
	}
	return changed
}

// removeUnreachable drops blocks not reachable from the entry.
func removeUnreachable(f *ir.Func) int {
	reach := cfg.New(f).Reachable()
	kept := f.Blocks[:0]
	removed := 0
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	if removed > 0 {
		f.Blocks = kept
		f.RebuildBlockIndex()
	}
	return removed
}

// straighten merges one block into its unique Br-predecessor per call; the
// fixed-point driver re-invokes it until nothing merges.
func straighten(f *ir.Func) int {
	g := cfg.New(f)
	for _, b := range f.Blocks {
		preds := g.Preds[b]
		if len(preds) != 1 || b == f.Entry() || preds[0] == b {
			continue
		}
		p := preds[0]
		term := p.Instrs[len(p.Instrs)-1]
		if term.Op != ir.OpBr || term.Then != b.Name {
			continue
		}
		p.Instrs = append(p.Instrs[:len(p.Instrs)-1], b.Instrs...)
		// Drop b from the function.
		kept := f.Blocks[:0]
		for _, blk := range f.Blocks {
			if blk != b {
				kept = append(kept, blk)
			}
		}
		f.Blocks = kept
		f.RebuildBlockIndex()
		return 1
	}
	return 0
}

// removeDead deletes side-effect-free instructions whose results are unused
// anywhere in the function. Loads are treated as pure (a real compiler
// removes dead loads); Rand, Malloc, calls, and control flow are not.
func removeDead(f *ir.Func) int {
	used := make(map[ir.Reg]bool)
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		for _, u := range in.Uses() {
			used[u] = true
		}
	})
	removed := 0
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			dead := false
			switch in.Op {
			case ir.OpConst, ir.OpMov, ir.OpBin, ir.OpCmp, ir.OpGlobalAddr, ir.OpLoad:
				dead = in.Dst != ir.NoReg && !used[in.Dst]
			}
			if dead {
				removed++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return removed
}
