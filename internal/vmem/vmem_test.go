package vmem

import (
	"testing"
	"testing/quick"
)

func mgr(enabled bool) *Manager {
	return New(4, 8, DefaultCosts(), enabled)
}

func TestFirstReadMakesPrivateROSafe(t *testing.T) {
	m := mgr(true)
	out := m.Access(0, 0, 100, false)
	if !out.Safe {
		t.Fatal("first private read should be safe")
	}
	if !out.TLBMiss {
		t.Fatal("first access must miss TLB")
	}
	if mode, tid := m.PageMode(100); mode != PrivateRO || tid != 0 {
		t.Fatalf("page mode %v/%d", mode, tid)
	}
}

func TestFirstWriteMakesPrivateRW(t *testing.T) {
	m := mgr(true)
	out := m.Access(0, 0, 100, true)
	if out.Safe {
		t.Fatal("writes are never dynamically safe")
	}
	if mode, _ := m.PageMode(100); mode != PrivateRW {
		t.Fatalf("mode %v", mode)
	}
	// Subsequent reads by the owner are safe.
	if !m.Access(0, 0, 100, false).Safe {
		t.Fatal("owner read of private-rw page should be safe")
	}
}

func TestMinorFaultOnOwnUpgrade(t *testing.T) {
	m := mgr(true)
	m.Access(0, 0, 100, false) // private-ro
	out := m.Access(0, 0, 100, true)
	if out.FaultCycles < DefaultCosts().MinorFault {
		t.Fatalf("minor fault cycles = %d", out.FaultCycles)
	}
	if out.Transition != nil {
		t.Fatal("own upgrade must not be a page-mode transition")
	}
	if mode, _ := m.PageMode(100); mode != PrivateRW {
		t.Fatalf("mode %v", mode)
	}
	if m.Stats().MinorFaults != 1 {
		t.Fatalf("minor fault count %d", m.Stats().MinorFaults)
	}
}

func TestSecondReaderSharesReadOnly(t *testing.T) {
	m := mgr(true)
	m.Access(0, 0, 100, false)
	out := m.Access(1, 1, 100, false)
	if !out.Safe {
		t.Fatal("shared-ro read should be safe")
	}
	if out.Transition != nil {
		t.Fatal("ro sharing is not a transition")
	}
	if mode, _ := m.PageMode(100); mode != SharedRO {
		t.Fatalf("mode %v", mode)
	}
}

func TestWriteToSharedROTransitions(t *testing.T) {
	m := mgr(true)
	m.Access(0, 0, 100, false)
	m.Access(1, 1, 100, false) // shared-ro; both TLBs hold it
	out := m.Access(1, 1, 100, true)
	if out.Transition == nil {
		t.Fatal("expected safe→unsafe transition")
	}
	if len(out.Transition.Slaves) != 1 || out.Transition.Slaves[0] != 0 {
		t.Fatalf("slaves = %v, want [0]", out.Transition.Slaves)
	}
	if out.FaultCycles < DefaultCosts().ShootdownInitiator {
		t.Fatalf("initiator cycles = %d", out.FaultCycles)
	}
	if m.HasTLBEntry(0, 100) {
		t.Fatal("slave TLB entry not shot down")
	}
	if mode, _ := m.PageMode(100); mode != SharedRW {
		t.Fatalf("mode %v", mode)
	}
	// Afterwards everything is unsafe and stable.
	if m.Access(0, 0, 100, false).Safe {
		t.Fatal("shared-rw read must be unsafe")
	}
	if m.Access(2, 2, 100, true).Transition != nil {
		t.Fatal("shared-rw is absorbing; no second transition")
	}
	if m.Stats().Transitions != 1 {
		t.Fatalf("transitions = %d", m.Stats().Transitions)
	}
}

func TestSecondThreadWritePrivatePageTransitions(t *testing.T) {
	m := mgr(true)
	m.Access(0, 0, 100, true) // private-rw owned by 0
	out := m.Access(1, 1, 100, false)
	if out.Transition == nil {
		t.Fatal("foreign access to private-rw page must transition")
	}
	if out.Safe {
		t.Fatal("the transitioning access is itself unsafe")
	}
}

func TestPrivateROForeignWriteTransitions(t *testing.T) {
	m := mgr(true)
	m.Access(0, 0, 100, false) // private-ro(0)
	out := m.Access(1, 1, 100, true)
	if out.Transition == nil {
		t.Fatal("foreign write to private-ro page must transition")
	}
}

func TestTLBHitAvoidsWalk(t *testing.T) {
	m := mgr(true)
	m.Access(0, 0, 100, false)
	out := m.Access(0, 0, 100, false)
	if out.TLBMiss {
		t.Fatal("second access should hit TLB")
	}
	if !out.Safe {
		t.Fatal("TLB-derived safety lost")
	}
}

func TestTLBWriteHitOnROModeWalks(t *testing.T) {
	// Cached private-ro + write must take the fault path even on a TLB hit.
	m := mgr(true)
	m.Access(0, 0, 100, false)
	out := m.Access(0, 0, 100, true)
	if out.FaultCycles < DefaultCosts().MinorFault {
		t.Fatal("write to cached ro entry must fault")
	}
}

func TestTLBEvictionLRU(t *testing.T) {
	m := New(1, 2, DefaultCosts(), true)
	m.Access(0, 0, 1, false)
	m.Access(0, 0, 2, false)
	m.Access(0, 0, 1, false) // touch 1; 2 becomes LRU
	m.Access(0, 0, 3, false) // evicts 2
	if m.HasTLBEntry(0, 2) {
		t.Fatal("LRU entry not evicted")
	}
	if !m.HasTLBEntry(0, 1) || !m.HasTLBEntry(0, 3) {
		t.Fatal("wrong entries resident")
	}
	out := m.Access(0, 0, 2, false)
	if !out.TLBMiss {
		t.Fatal("evicted page must re-miss")
	}
}

func TestDisabledManagerNeverSafe(t *testing.T) {
	m := mgr(false)
	out := m.Access(0, 0, 100, false)
	if out.Safe {
		t.Fatal("disabled manager derived safety")
	}
	if !out.TLBMiss {
		t.Fatal("TLB modelling should stay active when disabled")
	}
	out = m.Access(1, 1, 100, true)
	if out.Transition != nil || out.FaultCycles > DefaultCosts().TLBMiss {
		t.Fatal("disabled manager must not track sharing")
	}
	if m.Enabled() {
		t.Fatal("Enabled() lies")
	}
}

func TestStatsSafeAccessCount(t *testing.T) {
	m := mgr(true)
	m.Access(0, 0, 1, false)
	m.Access(0, 0, 1, false)
	m.Access(0, 0, 2, true)
	if got := m.Stats().SafeAccesses; got != 2 {
		t.Fatalf("safe accesses = %d, want 2", got)
	}
}

func TestModeStrings(t *testing.T) {
	for _, mo := range []Mode{Untouched, PrivateRO, PrivateRW, SharedRO, SharedRW} {
		if mo.String() == "" {
			t.Error("empty mode name")
		}
	}
}

func TestTransitionChainPrivateROToSharedROToSharedRW(t *testing.T) {
	// Full Fig.-2 path with three threads.
	m := mgr(true)
	m.Access(0, 0, 5, false) // private-ro(0)
	m.Access(1, 1, 5, false) // shared-ro
	m.Access(2, 2, 5, false) // still shared-ro, three TLBs hold it
	out := m.Access(0, 0, 5, true)
	if out.Transition == nil {
		t.Fatal("expected transition")
	}
	if len(out.Transition.Slaves) != 2 {
		t.Fatalf("slaves = %v, want two", out.Transition.Slaves)
	}
}

// TestStateMachineAbsorbingProperty: random access sequences never make a
// page safe again after it reaches shared-rw, and writes are never safe.
func TestStateMachineAbsorbingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := New(4, 8, DefaultCosts(), true)
		poisoned := map[uint64]bool{}
		for _, op := range ops {
			ctx := int(op % 4)
			page := uint64((op / 4) % 8)
			write := op&0x8000 != 0
			out := m.Access(ctx, ctx, page, write)
			if write && out.Safe {
				return false // dynamic classification never marks writes
			}
			if poisoned[page] && out.Safe {
				return false // shared-rw is absorbing
			}
			if mode, _ := m.PageMode(page); mode == SharedRW {
				poisoned[page] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTransitionAtMostOncePerPage: the paper's "each page may transition at
// most once" invariant.
func TestTransitionAtMostOncePerPage(t *testing.T) {
	f := func(ops []uint16) bool {
		m := New(4, 8, DefaultCosts(), true)
		transitions := map[uint64]int{}
		for _, op := range ops {
			ctx := int(op % 4)
			page := uint64((op / 4) % 8)
			write := op&0x8000 != 0
			out := m.Access(ctx, ctx, page, write)
			if out.Transition != nil {
				transitions[out.Transition.Page]++
				if transitions[out.Transition.Page] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
