package vmem

import "testing"

// The TLB-hit path runs once per simulated memory access; after a page's
// entry is cached, repeated accesses must not allocate.
func TestTLBHitDoesNotAllocate(t *testing.T) {
	m := New(4, 8, DefaultCosts(), true)
	m.Access(0, 0, 100, false) // walk + fill
	if n := testing.AllocsPerRun(200, func() {
		m.Access(0, 0, 100, false)
	}); n != 0 {
		t.Errorf("TLB hit allocates %.1f per access", n)
	}
}

// Even TLB misses on already-mapped pages stay allocation-free: page-table
// entries live in the manager's arena and TLB slots are recycled in place.
func TestWarmTLBMissDoesNotAllocate(t *testing.T) {
	m := New(1, 2, DefaultCosts(), true)
	// Map more pages than TLB entries so every access below misses.
	for p := uint64(0); p < 8; p++ {
		m.Access(0, 0, p, false)
	}
	if n := testing.AllocsPerRun(100, func() {
		for p := uint64(0); p < 8; p++ {
			m.Access(0, 0, p, false)
		}
	}); n != 0 {
		t.Errorf("warm TLB miss allocates %.1f per sweep", n)
	}
}
