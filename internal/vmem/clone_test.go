package vmem

import (
	"math/rand"
	"testing"
)

// A clone replayed against the same translation sequence must produce the
// same outcomes (safety, TLB misses, faults, cycles): eviction victims
// depend on the copied TLB LRU clocks and sharing transitions on the copied
// page table, so this pins the deep copy end to end.
func TestManagerCloneReplaysIdentically(t *testing.T) {
	m := New(4, 4, DefaultCosts(), true)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		ctx := rng.Intn(4)
		m.Access(ctx, ctx, uint64(rng.Intn(16)), rng.Intn(4) == 0)
	}
	c := m.Clone()
	if c.Stats() != m.Stats() {
		t.Fatalf("clone stats %+v != original %+v", c.Stats(), m.Stats())
	}
	for ctx := 0; ctx < 4; ctx++ {
		for pg := uint64(0); pg < 16; pg++ {
			if c.HasTLBEntry(ctx, pg) != m.HasTLBEntry(ctx, pg) {
				t.Fatalf("ctx %d page %d: TLB residency diverged", ctx, pg)
			}
		}
	}

	for i := 0; i < 400; i++ {
		ctx := rng.Intn(4)
		pg, wr := uint64(rng.Intn(16)), rng.Intn(4) == 0
		om := m.Access(ctx, ctx, pg, wr)
		oc := c.Access(ctx, ctx, pg, wr)
		if om != oc {
			t.Fatalf("access %d (ctx %d page %d write %v) diverged: original %+v, clone %+v",
				i, ctx, pg, wr, om, oc)
		}
	}
}

func TestManagerCloneIndependence(t *testing.T) {
	m := New(2, 4, DefaultCosts(), true)
	m.Access(0, 0, 1, false) // page 1: (private, ro) to ctx 0, TLB-resident
	c := m.Clone()

	// A write through the clone upgrades its page mode and invalidates —
	// none of which may leak into the original.
	c.Access(1, 1, 1, true)
	before := m.Stats()
	out := m.Access(0, 0, 1, false)
	if !out.Safe || out.TLBMiss {
		t.Fatalf("original's page state disturbed by clone write: %+v", out)
	}
	_ = before

	// And mutations through the original must not reach the clone: force
	// page 2 unsafe in the original only.
	m.Access(0, 0, 2, false)
	c.Access(0, 0, 2, false)
	m.ForceUnsafe(0, 2)
	if out := c.Access(0, 0, 2, false); !out.Safe {
		t.Fatalf("clone's page went unsafe with the original: %+v", out)
	}
}
