// Package vmem implements HinTM's dynamic, page-granular memory access
// classification (paper §III-B, §IV-B): the page table is extended with a
// per-page {tid, ro, shared} record tracking inter-thread sharing at
// runtime, mirrored into per-context TLBs. Reads to (private,*) pages by the
// owning thread and to (shared,ro) pages are safe; a page transitioning from
// a safe mode to (shared,rw) is a page-mode event that must abort every
// active transaction that touched the page and shoot down stale TLB entries
// (modelled with the paper's 6600-cycle initiator / 1450-cycle slave costs).
package vmem

import (
	"fmt"

	"hintm/internal/flat"
)

// Mode is a page's sharing mode (paper Fig. 2).
type Mode uint8

// Page modes.
const (
	Untouched Mode = iota
	PrivateRO
	PrivateRW
	SharedRO
	SharedRW
)

func (m Mode) String() string {
	switch m {
	case Untouched:
		return "untouched"
	case PrivateRO:
		return "private-ro"
	case PrivateRW:
		return "private-rw"
	case SharedRO:
		return "shared-ro"
	case SharedRW:
		return "shared-rw"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// safeFor reports whether a READ of a page in this mode by thread tid is
// safe. Writes are never dynamically safe (initializing-ness cannot be
// established at runtime, paper §III-B).
func (m Mode) safeFor(tid, owner int) bool {
	switch m {
	case PrivateRO, PrivateRW:
		return tid == owner
	case SharedRO:
		return true
	}
	return false
}

// Costs parameterizes the paper's page-management latencies (cycles).
type Costs struct {
	// TLBMiss is the page-walk latency added on a TLB miss.
	TLBMiss int64
	// MinorFault is the (private,ro)→(private,rw) fault cost.
	MinorFault int64
	// ShootdownInitiator / ShootdownSlave are the TLB-shootdown costs for a
	// safe→unsafe transition.
	ShootdownInitiator int64
	ShootdownSlave     int64
}

// DefaultCosts returns the paper's §V cost model.
func DefaultCosts() Costs {
	return Costs{TLBMiss: 20, MinorFault: 1450, ShootdownInitiator: 6600, ShootdownSlave: 1450}
}

// Transition describes a safe→unsafe page-mode event.
type Transition struct {
	Page uint64
	// Slaves lists contexts (other than the initiator) whose TLBs held the
	// page and were shot down.
	Slaves []int
	// InitiatorCycles is the cost already charged to the initiating
	// context: the page fault, plus the full shootdown-initiation overhead
	// when remote TLB entries had to be invalidated.
	InitiatorCycles int64
}

// Outcome describes one access's translation result.
type Outcome struct {
	// Safe reports page-derived safety: true only for reads of safe pages
	// when dynamic classification is enabled.
	Safe bool
	// TLBMiss reports a page walk occurred.
	TLBMiss bool
	// MinorFault reports a (private,ro)→(private,rw) upgrade fault fired.
	MinorFault bool
	// FaultCycles is extra latency charged to the initiator (minor fault
	// and/or shootdown initiation).
	FaultCycles int64
	// Transition is non-nil when the access turned a safe page unsafe;
	// the machine must abort every TX that touched the page and charge
	// slave costs.
	Transition *Transition
}

// Stats counts translation events.
type Stats struct {
	TLBMisses    uint64
	MinorFaults  uint64
	Transitions  uint64
	SafeAccesses uint64
}

// pageEntry is one extended page-table record. Entries live by value in the
// Manager's slice-backed arena; the flat page-number index maps to arena
// positions, so the walk path chases no per-entry pointers.
type pageEntry struct {
	mode Mode
	tid  int32
}

// tlbEntry is one translation-cache record, stored by value in the table.
type tlbEntry struct {
	mode Mode
	tid  int32
	lru  uint64
}

// tlb is one hardware context's translation cache. It stays fully
// associative with exact-LRU replacement — the model the TLB-miss counts in
// every committed result were produced under — but entries live by value in
// a fixed open-addressed table (2× capacity slots, reused forever), and the
// eviction scan walks a flat array instead of a map.
type tlb struct {
	tab      flat.Tab[tlbEntry]
	capacity int
	tick     uint64
}

func newTLB(capacity int) *tlb {
	t := &tlb{capacity: capacity}
	t.tab.Init(2*capacity, true)
	return t
}

// lookup returns the entry for page, bumping its LRU stamp, or nil on miss.
// The pointer aliases table storage and is valid until the next install.
func (t *tlb) lookup(page uint64) *tlbEntry {
	i, ok := t.tab.Find(page)
	if !ok {
		return nil
	}
	t.tick++
	t.tab.Vals[i].lru = t.tick
	return &t.tab.Vals[i]
}

func (t *tlb) install(page uint64, mode Mode, tid int32) {
	if t.tab.N >= t.capacity {
		// Exact LRU: tick stamps are unique, so the minimum is a single
		// deterministic victim regardless of slot order.
		var victim uint64
		var min uint64 = ^uint64(0)
		for i, g := range t.tab.Gens {
			if g == t.tab.Gen && t.tab.Vals[i].lru < min {
				min = t.tab.Vals[i].lru
				victim = t.tab.Keys[i]
			}
		}
		t.tab.Del(victim)
	}
	t.tick++
	t.tab.Add(page, tlbEntry{mode: mode, tid: tid, lru: t.tick})
}

func (t *tlb) invalidate(page uint64) bool {
	return t.tab.Del(page)
}

func (t *tlb) has(page uint64) bool {
	_, ok := t.tab.Find(page)
	return ok
}

// Manager is the translation subsystem for all hardware contexts.
type Manager struct {
	// Enabled selects HinTM-dyn; when false, translation still models TLB
	// costs but never derives safety nor tracks sharing.
	enabled bool
	costs   Costs
	// pt maps page number → index into the arena; pages live by value.
	pt    flat.Tab[int32]
	arena []pageEntry
	tlbs  []*tlb
	stats Stats
}

// New builds a manager for nContexts hardware contexts with tlbEntries-entry
// TLBs.
func New(nContexts, tlbEntries int, costs Costs, enabled bool) *Manager {
	m := &Manager{
		enabled: enabled,
		costs:   costs,
	}
	m.pt.Init(256, false)
	m.arena = make([]pageEntry, 0, 256)
	for i := 0; i < nContexts; i++ {
		m.tlbs = append(m.tlbs, newTLB(tlbEntries))
	}
	return m
}

// Enabled reports whether dynamic classification is active.
func (m *Manager) Enabled() bool { return m.enabled }

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// PageMode returns the page's current mode (for tests and diagnostics).
func (m *Manager) PageMode(page uint64) (Mode, int) {
	if i, ok := m.pt.Find(page); ok {
		pe := &m.arena[m.pt.Vals[i]]
		return pe.mode, int(pe.tid)
	}
	return Untouched, -1
}

// pageFor returns the arena entry for page, creating it as Untouched.
func (m *Manager) pageFor(page uint64) *pageEntry {
	if i, ok := m.pt.Find(page); ok {
		return &m.arena[m.pt.Vals[i]]
	}
	m.arena = append(m.arena, pageEntry{mode: Untouched})
	m.pt.Add(page, int32(len(m.arena)-1))
	return &m.arena[len(m.arena)-1]
}

// Access translates one access by thread tid on hardware context ctx.
func (m *Manager) Access(ctx, tid int, page uint64, write bool) Outcome {
	var out Outcome
	t := m.tlbs[ctx]
	e := t.lookup(page)
	if e == nil {
		out.TLBMiss = true
		out.FaultCycles += m.costs.TLBMiss
		m.stats.TLBMisses++
	}
	if !m.enabled {
		if e == nil {
			t.install(page, Untouched, int32(tid))
		}
		return out
	}

	// A TLB hit can only satisfy the access when no permission/mode change
	// is needed: writes to cached read-only modes must walk (fault path),
	// exactly as real hardware traps on a protection violation.
	if e != nil {
		switch {
		case !write:
			out.Safe = e.mode.safeFor(tid, int(e.tid))
			if out.Safe {
				m.stats.SafeAccesses++
			}
			return out
		case e.mode == PrivateRW && int(e.tid) == tid, e.mode == SharedRW:
			return out // write permitted, unsafe
		}
		// Fall through to the page walk with fault semantics.
	}

	pe := m.pageFor(page)
	m.walk(ctx, tid, page, write, pe, &out)
	t.invalidate(page)
	t.install(page, pe.mode, pe.tid)
	if out.Safe {
		m.stats.SafeAccesses++
	}
	return out
}

// walk applies the paper's Fig.-2 state machine.
func (m *Manager) walk(ctx, tid int, page uint64, write bool, pe *pageEntry, out *Outcome) {
	switch pe.mode {
	case Untouched:
		pe.tid = int32(tid)
		if write {
			pe.mode = PrivateRW
		} else {
			pe.mode = PrivateRO
			out.Safe = true
		}
	case PrivateRO:
		switch {
		case tid == int(pe.tid) && !write:
			out.Safe = true
		case tid == int(pe.tid) && write:
			// Minor fault: own page upgrades ro→rw.
			pe.mode = PrivateRW
			out.MinorFault = true
			out.FaultCycles += m.costs.MinorFault
			m.stats.MinorFaults++
		case !write:
			// Second thread reads: page becomes shared read-only. Reads
			// stay safe for everyone; no shootdown needed.
			pe.mode = SharedRO
			out.Safe = true
		default:
			// Second thread writes a page another thread read privately:
			// safe→unsafe transition.
			m.transition(ctx, page, pe, out)
		}
	case PrivateRW:
		if tid == int(pe.tid) {
			if !write {
				out.Safe = true
			}
			return
		}
		// Any access by another thread turns the page shared-rw.
		m.transition(ctx, page, pe, out)
	case SharedRO:
		if !write {
			out.Safe = true
			return
		}
		m.transition(ctx, page, pe, out)
	case SharedRW:
		// Absorbing unsafe state.
	}
}

// transition moves pe to SharedRW, shooting down every other context's TLB
// entry for the page and charging the paper's costs. The full 6600-cycle
// initiator overhead (OS handler + IPI round) applies only when remote TLB
// entries actually exist; a transition nobody else has cached costs one
// minor fault, as in OSes that track per-page TLB presence.
func (m *Manager) transition(ctx int, page uint64, pe *pageEntry, out *Outcome) {
	pe.mode = SharedRW
	tr := &Transition{Page: page}
	for c, t := range m.tlbs {
		if c == ctx {
			continue
		}
		if t.invalidate(page) {
			tr.Slaves = append(tr.Slaves, c)
		}
	}
	tr.InitiatorCycles = m.costs.MinorFault
	if len(tr.Slaves) > 0 {
		tr.InitiatorCycles = m.costs.ShootdownInitiator
	}
	out.FaultCycles += tr.InitiatorCycles
	out.Transition = tr
	m.stats.Transitions++
}

// ForceUnsafe forces page straight to shared-rw on behalf of hardware
// context ctx — the fault layer's page-mode abort storm. It returns the
// resulting Transition, or nil when there is nothing to force: dynamic
// classification disabled, the page untouched, or already shared-rw. The
// initiator's own TLB entry is invalidated too, so later reads re-walk and
// observe the unsafe mode instead of a stale safe hit.
func (m *Manager) ForceUnsafe(ctx int, page uint64) *Transition {
	if !m.enabled {
		return nil
	}
	i, ok := m.pt.Find(page)
	if !ok {
		return nil
	}
	pe := &m.arena[m.pt.Vals[i]]
	if pe.mode == Untouched || pe.mode == SharedRW {
		return nil
	}
	var out Outcome
	m.transition(ctx, page, pe, &out)
	m.tlbs[ctx].invalidate(page)
	return out.Transition
}

// SlaveCost returns the per-slave shootdown cost for charging by the machine.
func (m *Manager) SlaveCost() int64 { return m.costs.ShootdownSlave }

// ResetSharing clears all page-sharing state and TLB contents, keeping
// backing storage. The machine calls it when a parallel region starts:
// dynamic classification tracks the region's inter-thread sharing, not the
// single-threaded setup phase whose writes would otherwise force every
// initialized page straight to shared-rw.
func (m *Manager) ResetSharing() {
	m.pt.Reset()
	m.arena = m.arena[:0]
	for _, t := range m.tlbs {
		t.tab.Reset()
	}
}

// Clone returns an independent deep copy of the manager: the page table and
// its arena, every context's TLB (entries, LRU clocks), and the counters.
// Translations through either manager never disturb the other, and probe
// layouts are copied verbatim so eviction-victim selection stays identical —
// part of the snapshot/fork byte-identity guarantee.
func (m *Manager) Clone() *Manager {
	c := &Manager{
		enabled: m.enabled,
		costs:   m.costs,
		pt:      m.pt.Clone(),
		arena:   append(make([]pageEntry, 0, cap(m.arena)), m.arena...),
		stats:   m.stats,
	}
	for _, t := range m.tlbs {
		c.tlbs = append(c.tlbs, &tlb{tab: t.tab.Clone(), capacity: t.capacity, tick: t.tick})
	}
	return c
}

// HasTLBEntry reports whether context ctx caches page (tests/diagnostics).
func (m *Manager) HasTLBEntry(ctx int, page uint64) bool {
	return m.tlbs[ctx].has(page)
}
