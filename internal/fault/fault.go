// Package fault implements a deterministic, seeded fault-injection engine
// for the simulator. Real HTMs suffer aborts the paper's clean model never
// generates — POWER8 and TSX transactions die on timer interrupts and TLB
// misses, page-mode classification can be perturbed by hostile sharing, and
// coherence traffic arrives late and in bursts under heavy load. The engine
// injects those hostile events into a run the same way the classify fuzzer
// injects hostile programs into the compiler: as a validation harness for
// the abort/rollback/fallback recovery machinery.
//
// Every decision is drawn from per-context xorshift streams seeded from the
// simulation seed, so a fault campaign replays bit-identically: same plan +
// same seed + same program ⇒ same injected faults, same statistics.
//
// Fault classes:
//
//   - Spurious transaction aborts (Plan.SpuriousProb): with the given
//     per-attempt probability, a transaction is doomed at begin to abort
//     after a bounded random number of transactional accesses, modeling
//     interrupt- and TLB-miss-induced aborts (htm.AbortSpurious).
//   - Page-mode abort storms (Plan.StormProb): per-access, the touched page
//     is forced safe→unsafe, triggering the full shootdown + page-mode-abort
//     path on hot pages (requires dynamic classification).
//   - Delayed/bursty invalidation delivery (Plan.InvalDelaySteps /
//     Plan.InvalBurst): bus invalidations destined for remote contexts are
//     held in per-context queues and delivered late — in bursts once a queue
//     fills — stressing eager conflict detection. Delivery is always forced
//     before the receiver commits, so atomicity is preserved (the hardware
//     analogue: a coherence response is on the commit critical path).
//   - Injected worker panic (Plan.PanicTx): the engine panics at the Nth
//     transaction begin, machine-wide — the hook the harness degradation
//     tests use to prove one crashed run cannot take down a figure grid.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Plan declares which faults a run injects. The zero Plan injects nothing.
// All fields are scalars so a Plan can ride inside sim.Config by value.
type Plan struct {
	// SpuriousProb is the per-transaction-attempt probability in [0,1] that
	// the attempt suffers a spurious abort.
	SpuriousProb float64
	// SpuriousWindow bounds how many transactional accesses a doomed attempt
	// performs before the injected abort fires (0 = default 32).
	SpuriousWindow int
	// StormProb is the per-access probability in [0,1] of forcing the
	// accessed page safe→unsafe (a page-mode abort storm). Only meaningful
	// when dynamic classification is on; otherwise pages have no safe modes
	// and the draw is a no-op.
	StormProb float64
	// InvalDelaySteps holds every bus invalidation for this many machine
	// steps before delivering it to remote HTM controllers (0 = immediate).
	InvalDelaySteps int64
	// InvalBurst additionally flushes a context's whole queue once it holds
	// this many invalidations, making delivery bursty (0 = delay only).
	InvalBurst int
	// PanicTx, when non-zero, panics at the PanicTx-th transaction begin
	// counted machine-wide — deterministic worker-crash injection.
	PanicTx uint64
}

// Enabled reports whether the plan injects anything.
func (p Plan) Enabled() bool {
	return p.SpuriousProb > 0 || p.StormProb > 0 || p.InvalDelaySteps > 0 || p.PanicTx > 0
}

// Validate rejects out-of-range probabilities and negative knobs.
func (p Plan) Validate() error {
	if p.SpuriousProb < 0 || p.SpuriousProb > 1 {
		return fmt.Errorf("fault: spurious probability %v outside [0,1]", p.SpuriousProb)
	}
	if p.StormProb < 0 || p.StormProb > 1 {
		return fmt.Errorf("fault: storm probability %v outside [0,1]", p.StormProb)
	}
	if p.SpuriousWindow < 0 || p.InvalDelaySteps < 0 || p.InvalBurst < 0 {
		return fmt.Errorf("fault: negative plan knob: %+v", p)
	}
	return nil
}

// String renders the plan in ParsePlan's syntax (empty for the zero plan).
func (p Plan) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if p.SpuriousProb > 0 {
		add("spurious", strconv.FormatFloat(p.SpuriousProb, 'g', -1, 64))
	}
	if p.SpuriousWindow > 0 {
		add("spurious-window", strconv.Itoa(p.SpuriousWindow))
	}
	if p.StormProb > 0 {
		add("storm", strconv.FormatFloat(p.StormProb, 'g', -1, 64))
	}
	if p.InvalDelaySteps > 0 {
		add("inval-delay", strconv.FormatInt(p.InvalDelaySteps, 10))
	}
	if p.InvalBurst > 0 {
		add("inval-burst", strconv.Itoa(p.InvalBurst))
	}
	if p.PanicTx > 0 {
		add("panic-tx", strconv.FormatUint(p.PanicTx, 10))
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the CLI fault spec: comma-separated key=value pairs, e.g.
// "spurious=0.01,storm=0.001,inval-delay=200,inval-burst=8,panic-tx=500".
// The empty string is the zero (disabled) plan.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: bad spec entry %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "spurious":
			p.SpuriousProb, err = strconv.ParseFloat(v, 64)
		case "spurious-window":
			p.SpuriousWindow, err = strconv.Atoi(v)
		case "storm":
			p.StormProb, err = strconv.ParseFloat(v, 64)
		case "inval-delay":
			p.InvalDelaySteps, err = strconv.ParseInt(v, 10, 64)
		case "inval-burst":
			p.InvalBurst, err = strconv.Atoi(v)
		case "panic-tx":
			p.PanicTx, err = strconv.ParseUint(v, 10, 64)
		default:
			keys := []string{"spurious", "spurious-window", "storm", "inval-delay", "inval-burst", "panic-tx"}
			sort.Strings(keys)
			return Plan{}, fmt.Errorf("fault: unknown spec key %q (have %v)", k, keys)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fault: bad value for %q: %v", k, err)
		}
	}
	return p, p.Validate()
}

// Stats counts what the engine actually injected, so campaigns can assert
// they were not vacuous.
type Stats struct {
	// SpuriousAborts fired; StormsForced succeeded in turning a page unsafe
	// (draws on already-unsafe pages do not count); InvalsHeld were delayed,
	// of which InvalBursts whole-queue flushes were burst-triggered.
	SpuriousAborts uint64
	StormsForced   uint64
	InvalsHeld     uint64
	InvalBursts    uint64
}

// Inval is one held bus invalidation awaiting delivery to a remote context.
type Inval struct {
	Block uint64
	Write bool
	due   int64
}

// InjectedPanic is the value the engine panics with at Plan.PanicTx, typed
// so recovery layers can tell an injected crash from a genuine bug.
type InjectedPanic struct {
	// Tx is the machine-wide transaction ordinal that triggered the panic.
	Tx uint64
}

func (p InjectedPanic) Error() string {
	return fmt.Sprintf("fault: injected panic at transaction %d", p.Tx)
}

// Engine draws injection decisions for one machine. It is not safe for
// concurrent use; the simulator is single-goroutine by construction.
type Engine struct {
	plan  Plan
	stats Stats

	// streams holds one xorshift64 state per hardware context, decoupled
	// from the interpreter's per-thread streams so injecting faults never
	// perturbs program-visible randomness.
	streams []uint64
	// countdown[ctx] is the number of transactional accesses until the armed
	// spurious abort fires (0 = not armed).
	countdown []int64
	// inbox[ctx] queues invalidations held for that context, in arrival
	// (deterministic) order.
	inbox [][]Inval

	txCount uint64
}

// NewEngine builds an engine for nContexts hardware contexts. Distinct
// mixing constants keep its streams uncorrelated with interp's thread RNGs
// even though both derive from the same simulation seed.
func NewEngine(plan Plan, seed uint64, nContexts int) *Engine {
	e := &Engine{
		plan:      plan,
		streams:   make([]uint64, nContexts),
		countdown: make([]int64, nContexts),
		inbox:     make([][]Inval, nContexts),
	}
	if e.plan.SpuriousWindow <= 0 {
		e.plan.SpuriousWindow = 32
	}
	for i := range e.streams {
		e.streams[i] = seed*0x94D049BB133111EB + uint64(i)*0xDA942042E4DD58B5 + 0x632BE59BD9B4E019
	}
	return e
}

// Stats returns a copy of the injection counters.
func (e *Engine) Stats() Stats { return e.stats }

func (e *Engine) next(ctx int) uint64 {
	x := e.streams[ctx]
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	e.streams[ctx] = x
	return x
}

// draw returns true with probability p on ctx's stream. A probability of 0
// consumes no randomness, keeping disabled fault classes free and plans
// with one class enabled independent of the others.
func (e *Engine) draw(ctx int, p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(e.next(ctx)>>11)/(1<<53) < p
}

// TxBegun records a transaction begin on ctx: it advances the machine-wide
// transaction counter (panicking at Plan.PanicTx) and arms the spurious
// countdown for this attempt.
func (e *Engine) TxBegun(ctx int) {
	e.txCount++
	if e.plan.PanicTx > 0 && e.txCount == e.plan.PanicTx {
		panic(InjectedPanic{Tx: e.txCount})
	}
	e.countdown[ctx] = 0
	if e.draw(ctx, e.plan.SpuriousProb) {
		e.countdown[ctx] = 1 + int64(e.next(ctx)%uint64(e.plan.SpuriousWindow))
	}
}

// SpuriousAbortNow reports whether the armed spurious abort fires on this
// transactional access.
func (e *Engine) SpuriousAbortNow(ctx int) bool {
	if e.countdown[ctx] == 0 {
		return false
	}
	e.countdown[ctx]--
	if e.countdown[ctx] == 0 {
		e.stats.SpuriousAborts++
		return true
	}
	return false
}

// ForceUnsafe reports whether this access should force its page unsafe.
func (e *Engine) ForceUnsafe(ctx int) bool {
	return e.draw(ctx, e.plan.StormProb)
}

// StormForced records that a forced transition actually happened (the page
// was in a safe mode).
func (e *Engine) StormForced() { e.stats.StormsForced++ }

// HoldInval queues a bus invalidation for the target context instead of
// delivering it now. It returns false when delayed delivery is disabled.
func (e *Engine) HoldInval(target int, block uint64, write bool, now int64) bool {
	if e.plan.InvalDelaySteps <= 0 {
		return false
	}
	e.inbox[target] = append(e.inbox[target], Inval{Block: block, Write: write, due: now + e.plan.InvalDelaySteps})
	e.stats.InvalsHeld++
	return true
}

// DueInvals pops the target's deliverable invalidations: everything, once
// the queue reaches the burst threshold (a bursty flush), else the prefix
// whose delay has expired.
func (e *Engine) DueInvals(target int, now int64) []Inval {
	q := e.inbox[target]
	if len(q) == 0 {
		return nil
	}
	if e.plan.InvalBurst > 0 && len(q) >= e.plan.InvalBurst {
		e.stats.InvalBursts++
		e.inbox[target] = nil
		return q
	}
	n := 0
	for n < len(q) && q[n].due <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	due := q[:n:n]
	e.inbox[target] = q[n:]
	return due
}

// FlushInvals pops everything held for the target, regardless of due time.
// The machine calls it before the target commits: a transaction may never
// commit past a pending invalidation, which is what keeps delayed delivery
// semantics-preserving.
func (e *Engine) FlushInvals(target int) []Inval {
	q := e.inbox[target]
	e.inbox[target] = nil
	return q
}
