package fault

import (
	"errors"
	"testing"
)

func TestParsePlanRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"spurious=0.01",
		"spurious=0.25,spurious-window=8",
		"storm=0.001",
		"inval-delay=200",
		"inval-delay=200,inval-burst=8",
		"spurious=0.01,storm=0.001,inval-delay=200,inval-burst=8,panic-tx=500",
	}
	for _, spec := range specs {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		// Round-trip: String() must parse back to the same plan.
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("ParsePlan(%q.String()=%q): %v", spec, p.String(), err)
		}
		if p != p2 {
			t.Errorf("round trip %q: %+v != %+v", spec, p, p2)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"spurious",          // no value
		"spurious=x",        // bad float
		"spurious=1.5",      // out of [0,1]
		"storm=-0.1",        // negative probability
		"inval-delay=-5",    // negative knob
		"frobnicate=1",      // unknown key
		"spurious=0.1,,",    // empty entry
		"panic-tx=notanint", // bad uint
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

func TestPlanEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan enabled")
	}
	if (Plan{SpuriousWindow: 8}).Enabled() {
		t.Error("window alone should not enable the plan")
	}
	for _, p := range []Plan{
		{SpuriousProb: 0.1},
		{StormProb: 0.1},
		{InvalDelaySteps: 10},
		{PanicTx: 1},
	} {
		if !p.Enabled() {
			t.Errorf("%+v not enabled", p)
		}
	}
}

// Engines with the same (plan, seed) must make identical decisions, and
// different seeds must diverge — the property campaign replay rests on.
func TestEngineDeterminism(t *testing.T) {
	plan := Plan{SpuriousProb: 0.3, StormProb: 0.2}
	drawSeq := func(seed uint64) []bool {
		e := NewEngine(plan, seed, 4)
		var out []bool
		for i := 0; i < 256; i++ {
			ctx := i % 4
			e.TxBegun(ctx)
			out = append(out, e.SpuriousAbortNow(ctx), e.ForceUnsafe(ctx))
		}
		return out
	}
	a, b := drawSeq(7), drawSeq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := drawSeq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical decision sequences")
	}
}

// A zero probability must not consume randomness: a spurious-only plan and a
// combined plan must agree on the spurious stream.
func TestDisabledClassConsumesNoRandomness(t *testing.T) {
	seq := func(plan Plan) []bool {
		e := NewEngine(plan, 3, 1)
		var out []bool
		for i := 0; i < 128; i++ {
			e.TxBegun(0)
			fired := false
			for j := 0; j < 64 && !fired; j++ {
				fired = e.SpuriousAbortNow(0)
			}
			out = append(out, fired)
		}
		return out
	}
	only := seq(Plan{SpuriousProb: 0.5})
	withStorm := seq(Plan{SpuriousProb: 0.5}) // storm disabled: same stream
	for i := range only {
		if only[i] != withStorm[i] {
			t.Fatalf("spurious stream diverged at tx %d", i)
		}
	}
}

func TestSpuriousProbabilityBounds(t *testing.T) {
	// p=1 arms every transaction; p=0 arms none.
	e := NewEngine(Plan{SpuriousProb: 1}, 1, 1)
	for i := 0; i < 50; i++ {
		e.TxBegun(0)
		fired := false
		for j := 0; j < 64; j++ {
			if e.SpuriousAbortNow(0) {
				fired = true
				break
			}
		}
		if !fired {
			t.Fatalf("tx %d: p=1 did not fire within the window", i)
		}
	}
	if got := e.Stats().SpuriousAborts; got != 50 {
		t.Errorf("spurious aborts = %d, want 50", got)
	}

	z := NewEngine(Plan{SpuriousProb: 0, StormProb: 0}, 1, 1)
	for i := 0; i < 50; i++ {
		z.TxBegun(0)
		if z.SpuriousAbortNow(0) || z.ForceUnsafe(0) {
			t.Fatal("p=0 fired")
		}
	}
}

func TestSpuriousWindowBoundsCountdown(t *testing.T) {
	e := NewEngine(Plan{SpuriousProb: 1, SpuriousWindow: 4}, 9, 1)
	for i := 0; i < 100; i++ {
		e.TxBegun(0)
		fired := -1
		for j := 0; j < 8; j++ {
			if e.SpuriousAbortNow(0) {
				fired = j
				break
			}
		}
		if fired < 0 || fired >= 4 {
			t.Fatalf("tx %d: abort fired at access %d, want within [0,4)", i, fired)
		}
	}
}

func TestInvalQueueDelayAndBurst(t *testing.T) {
	e := NewEngine(Plan{InvalDelaySteps: 100, InvalBurst: 3}, 1, 2)

	if e.HoldInval(0, 1, false, 0) != true {
		t.Fatal("HoldInval refused with delay enabled")
	}
	// Nothing due before the delay expires and below the burst threshold.
	if got := e.DueInvals(0, 50); got != nil {
		t.Fatalf("premature delivery: %v", got)
	}
	// Due-prefix pop after the delay.
	if got := e.DueInvals(0, 100); len(got) != 1 || got[0].Block != 1 {
		t.Fatalf("due pop = %v, want block 1", got)
	}
	// Filling to the burst threshold flushes everything regardless of due
	// times.
	e.HoldInval(0, 2, true, 10)
	e.HoldInval(0, 3, false, 10)
	e.HoldInval(0, 4, true, 10)
	got := e.DueInvals(0, 11)
	if len(got) != 3 {
		t.Fatalf("burst flush returned %d invals, want 3", len(got))
	}
	if got[0].Block != 2 || !got[0].Write || got[2].Block != 4 {
		t.Fatalf("burst order/content wrong: %v", got)
	}
	if e.DueInvals(0, 1<<40) != nil {
		t.Fatal("queue not empty after burst")
	}

	// FlushInvals drains everything immediately.
	e.HoldInval(1, 7, false, 0)
	e.HoldInval(1, 8, true, 0)
	if got := e.FlushInvals(1); len(got) != 2 {
		t.Fatalf("flush returned %d, want 2", len(got))
	}
	if e.FlushInvals(1) != nil {
		t.Fatal("double flush returned invals")
	}

	st := e.Stats()
	if st.InvalsHeld != 6 || st.InvalBursts != 1 {
		t.Errorf("stats = %+v, want 6 held / 1 burst", st)
	}
}

func TestHoldInvalDisabled(t *testing.T) {
	e := NewEngine(Plan{SpuriousProb: 0.5}, 1, 1)
	if e.HoldInval(0, 1, false, 0) {
		t.Fatal("HoldInval held with delay disabled")
	}
}

func TestPanicTx(t *testing.T) {
	e := NewEngine(Plan{PanicTx: 3}, 1, 1)
	e.TxBegun(0)
	e.TxBegun(0)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic at PanicTx")
		}
		ip, ok := v.(InjectedPanic)
		if !ok {
			t.Fatalf("panic value %T, want InjectedPanic", v)
		}
		if ip.Tx != 3 {
			t.Errorf("panic at tx %d, want 3", ip.Tx)
		}
		var err error = ip
		var target InjectedPanic
		if !errors.As(err, &target) {
			t.Error("InjectedPanic not matchable with errors.As")
		}
	}()
	e.TxBegun(0)
}
