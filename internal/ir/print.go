package ir

import (
	"fmt"
	"strings"
)

// String renders the module in a readable textual form, used by the tirc
// CLI to dump IR before/after classification and by tests for golden
// comparisons of pass output.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, g := range m.Globals {
		align := ""
		if g.PageAligned {
			align = " pagealigned"
		}
		fmt.Fprintf(&sb, "global @%s [%d words]%s\n", g.Name, g.Words, align)
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	kind := "func"
	if f.ThreadBody {
		kind = "threadbody"
	}
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.String()
	}
	fmt.Fprintf(&sb, "\n%s @%s(%s) regs=%d frame=%dw {\n",
		kind, f.Name, strings.Join(params, ", "), f.NumRegs, f.AllocaWords)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "\t%v\n", in)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Stats summarizes a module for reports.
type Stats struct {
	Funcs, Blocks, Instrs int
	Loads, Stores         int
	SafeLoads, SafeStores int
}

// CollectStats counts instructions and safety annotations.
func CollectStats(m *Module) Stats {
	var s Stats
	s.Funcs = len(m.Funcs)
	for _, f := range m.Funcs {
		s.Blocks += len(f.Blocks)
		for _, b := range f.Blocks {
			s.Instrs += len(b.Instrs)
			for _, in := range b.Instrs {
				switch in.Op {
				case OpLoad:
					s.Loads++
					if in.Safe {
						s.SafeLoads++
					}
				case OpStore:
					s.Stores++
					if in.Safe {
						s.SafeStores++
					}
				}
			}
		}
	}
	return s
}
