package ir

// EvalBin computes a binary operation on concrete values — the single
// semantic definition shared by the interpreter and the constant folder.
// Division and modulo by zero yield 0 (the simulated machine's convention).
func EvalBin(k BinKind, a, b int64) int64 {
	switch k {
	case BinAdd:
		return a + b
	case BinSub:
		return a - b
	case BinMul:
		return a * b
	case BinDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case BinMod:
		if b == 0 {
			return 0
		}
		return a % b
	case BinAnd:
		return a & b
	case BinOr:
		return a | b
	case BinXor:
		return a ^ b
	case BinShl:
		return a << uint64(b&63)
	case BinShr:
		return int64(uint64(a) >> uint64(b&63))
	}
	panic("ir: bad binop")
}

// EvalCmp computes a comparison predicate on concrete values.
func EvalCmp(p CmpKind, a, b int64) bool {
	switch p {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	panic("ir: bad cmp")
}
