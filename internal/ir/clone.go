package ir

// CloneFunc deep-copies f under a new name and registers the clone in m.
// The classification pass uses it for the paper's function replication:
// specializing a callee for call sites whose pointer arguments are all safe,
// so the original remains available for unsafe or non-transactional callers.
// Instruction IDs are freshly assigned so analyses can hold per-clone facts.
func (m *Module) CloneFunc(f *Func, newName string) *Func {
	nf := &Func{
		Name:        newName,
		Params:      append([]Reg(nil), f.Params...),
		NumRegs:     f.NumRegs,
		AllocaWords: f.AllocaWords,
		ThreadBody:  f.ThreadBody,
	}
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name}
		for _, in := range b.Instrs {
			ci := *in
			ci.ID = m.NextInstrID()
			ci.Args = append([]Reg(nil), in.Args...)
			nb.Instrs = append(nb.Instrs, &ci)
		}
		nf.addBlock(nb)
	}
	m.AddFunc(nf)
	return nf
}
