package ir

import (
	"strings"
	"testing"
)

// buildCounterModule emits a tiny valid module:
//
//	main: parallel 4 x worker; ret
//	worker(tid): txbegin; g[0] += tid; txend; ret
func buildCounterModule(t *testing.T) *Module {
	t.Helper()
	b := NewBuilder("counter")
	b.Global("g", 1)

	w := b.ThreadBody("worker", 1)
	w.TxBegin()
	g := w.GlobalAddr("g")
	v := w.Load(g, 0)
	sum := w.Add(v, w.Param(0))
	w.Store(g, 0, sum)
	w.TxEnd()
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(4)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	if err := b.M.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return b.M
}

func TestBuildAndVerify(t *testing.T) {
	m := buildCounterModule(t)
	if m.Func("worker") == nil || m.Func("main") == nil {
		t.Fatal("functions not registered")
	}
	if m.Global("g") == nil {
		t.Fatal("global not registered")
	}
}

func TestInstrIDsUnique(t *testing.T) {
	m := buildCounterModule(t)
	seen := map[int]bool{}
	m.ForEachInstr(func(_ *Func, _ *Block, in *Instr) {
		if in.ID == 0 {
			t.Errorf("instruction %v has zero ID", in)
		}
		if seen[in.ID] {
			t.Errorf("duplicate instruction ID %d", in.ID)
		}
		seen[in.ID] = true
	})
}

func TestVerifyCatchesMissingMain(t *testing.T) {
	b := NewBuilder("nomain")
	f := b.Function("f", 0)
	f.RetVoid()
	if err := b.M.Verify(); err == nil || !strings.Contains(err.Error(), "no main") {
		t.Fatalf("want missing-main error, got %v", err)
	}
}

func TestVerifyCatchesUnterminatedBlock(t *testing.T) {
	b := NewBuilder("m")
	f := b.Function("main", 0)
	f.C(1) // no terminator
	if err := b.M.Verify(); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("want terminator error, got %v", err)
	}
}

func TestVerifyCatchesBadBranchTarget(t *testing.T) {
	b := NewBuilder("m")
	f := b.Function("main", 0)
	f.emit(&Instr{Op: OpBr, Then: "nowhere"})
	if err := b.M.Verify(); err == nil || !strings.Contains(err.Error(), "unknown block") {
		t.Fatalf("want unknown-block error, got %v", err)
	}
}

func TestVerifyCatchesBadCallee(t *testing.T) {
	b := NewBuilder("m")
	f := b.Function("main", 0)
	f.emit(&Instr{Op: OpCall, Dst: NoReg, Sym: "ghost"})
	f.RetVoid()
	if err := b.M.Verify(); err == nil || !strings.Contains(err.Error(), "unknown callee") {
		t.Fatalf("want unknown-callee error, got %v", err)
	}
}

func TestVerifyCatchesArityMismatch(t *testing.T) {
	b := NewBuilder("m")
	g := b.Function("g", 2)
	g.RetVoid()
	f := b.Function("main", 0)
	one := f.C(1)
	f.emit(&Instr{Op: OpCall, Dst: NoReg, Sym: "g", Args: []Reg{one}})
	f.RetVoid()
	if err := b.M.Verify(); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("want arity error, got %v", err)
	}
}

func TestVerifyCatchesParallelToNonThreadBody(t *testing.T) {
	b := NewBuilder("m")
	g := b.Function("g", 1)
	g.RetVoid()
	f := b.Function("main", 0)
	n := f.C(2)
	f.emit(&Instr{Op: OpParallel, A: n, Sym: "g"})
	f.RetVoid()
	if err := b.M.Verify(); err == nil || !strings.Contains(err.Error(), "not a thread body") {
		t.Fatalf("want thread-body error, got %v", err)
	}
}

func TestVerifyCatchesRegisterOutOfRange(t *testing.T) {
	b := NewBuilder("m")
	f := b.Function("main", 0)
	f.emit(&Instr{Op: OpMov, Dst: 0, A: 99})
	f.RetVoid()
	f.F.NumRegs = 1
	if err := b.M.Verify(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}

func TestBuilderPanicsAfterTerminator(t *testing.T) {
	b := NewBuilder("m")
	f := b.Function("main", 0)
	f.RetVoid()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic emitting after terminator")
		}
	}()
	f.C(1)
}

func TestAllocaFrameOffsets(t *testing.T) {
	b := NewBuilder("m")
	f := b.Function("main", 0)
	a1 := f.Alloca(4)
	a2 := f.Alloca(2)
	_ = a1
	_ = a2
	f.RetVoid()
	if f.F.AllocaWords != 6 {
		t.Fatalf("AllocaWords = %d, want 6", f.F.AllocaWords)
	}
	if err := b.M.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	var offs []int64
	f.F.ForEachInstr(func(_ *Block, in *Instr) {
		if in.Op == OpAlloca {
			offs = append(offs, in.Imm)
		}
	})
	if len(offs) != 2 || offs[0] != 0 || offs[1] != 4 {
		t.Fatalf("alloca offsets = %v", offs)
	}
}

func TestUsesAndDefs(t *testing.T) {
	in := &Instr{Op: OpStore, A: 1, B: 2}
	uses := in.Uses()
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Errorf("store uses = %v", uses)
	}
	if in.Def() != NoReg {
		t.Errorf("store def = %v", in.Def())
	}
	ld := &Instr{Op: OpLoad, Dst: 3, A: 1}
	if ld.Def() != 3 || len(ld.Uses()) != 1 {
		t.Errorf("load def/uses wrong")
	}
	call := &Instr{Op: OpCall, Dst: 5, Args: []Reg{1, 2}}
	if got := call.Uses(); len(got) != 2 {
		t.Errorf("call uses = %v", got)
	}
	ret := &Instr{Op: OpRet, A: NoReg}
	if len(ret.Uses()) != 0 {
		t.Errorf("void ret should use nothing")
	}
}

func TestPrinterMentionsEverything(t *testing.T) {
	m := buildCounterModule(t)
	s := m.String()
	for _, want := range []string{"module counter", "global @g", "threadbody @worker",
		"txbegin", "txend", "parallel", "load", "store"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
}

func TestSafePrinting(t *testing.T) {
	in := &Instr{Op: OpLoad, Dst: 1, A: 0, Safe: true}
	if !strings.Contains(in.String(), "load.safe") {
		t.Errorf("safe load prints as %q", in.String())
	}
	st := &Instr{Op: OpStore, A: 0, B: 1, Safe: true}
	if !strings.Contains(st.String(), "store.safe") {
		t.Errorf("safe store prints as %q", st.String())
	}
}

func TestCollectStats(t *testing.T) {
	m := buildCounterModule(t)
	s := CollectStats(m)
	if s.Funcs != 2 || s.Loads != 1 || s.Stores != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SafeLoads != 0 || s.SafeStores != 0 {
		t.Fatalf("unexpected safe counts: %+v", s)
	}
	m.Func("worker").ForEachInstr(func(_ *Block, in *Instr) {
		if in.IsMemAccess() {
			in.Safe = true
		}
	})
	s = CollectStats(m)
	if s.SafeLoads != 1 || s.SafeStores != 1 {
		t.Fatalf("after marking: %+v", s)
	}
}

func TestCloneFunc(t *testing.T) {
	m := buildCounterModule(t)
	orig := m.Func("worker")
	clone := m.CloneFunc(orig, "worker$safe")
	if m.Func("worker$safe") != clone {
		t.Fatal("clone not registered")
	}
	if len(clone.Blocks) != len(orig.Blocks) {
		t.Fatal("clone block count differs")
	}
	// Mutating the clone must not touch the original.
	clone.ForEachInstr(func(_ *Block, in *Instr) {
		if in.IsMemAccess() {
			in.Safe = true
		}
	})
	orig.ForEachInstr(func(_ *Block, in *Instr) {
		if in.Safe {
			t.Fatal("clone mutation leaked into original")
		}
	})
	// IDs must be fresh.
	ids := map[int]bool{}
	m.ForEachInstr(func(_ *Func, _ *Block, in *Instr) {
		if ids[in.ID] {
			t.Fatalf("duplicate instr id %d after clone", in.ID)
		}
		ids[in.ID] = true
	})
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify after clone: %v", err)
	}
}

func TestBinCmpStrings(t *testing.T) {
	kinds := []BinKind{BinAdd, BinSub, BinMul, BinDiv, BinMod, BinAnd, BinOr, BinXor, BinShl, BinShr}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate BinKind name %q", s)
		}
		seen[s] = true
	}
	preds := []CmpKind{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}
	seen = map[string]bool{}
	for _, p := range preds {
		s := p.String()
		if seen[s] {
			t.Errorf("duplicate CmpKind name %q", s)
		}
		seen[s] = true
	}
}
