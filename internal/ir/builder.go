package ir

import "fmt"

// Builder constructs a Module programmatically. Workload kernels use it the
// way a compiler front end would emit IR.
type Builder struct {
	M *Module
}

// NewBuilder returns a builder for a fresh module.
func NewBuilder(name string) *Builder {
	return &Builder{M: NewModule(name)}
}

// Global declares a module global of the given word count.
func (b *Builder) Global(name string, words int64) *Global {
	return b.M.AddGlobal(&Global{Name: name, Words: words})
}

// GlobalPageAligned declares a page-aligned global (large shared tables).
func (b *Builder) GlobalPageAligned(name string, words int64) *Global {
	return b.M.AddGlobal(&Global{Name: name, Words: words, PageAligned: true})
}

// GlobalInit declares a global with initial values.
func (b *Builder) GlobalInit(name string, words int64, init []int64) *Global {
	if int64(len(init)) > words {
		panic("ir: init longer than global " + name)
	}
	return b.M.AddGlobal(&Global{Name: name, Words: words, Init: init})
}

// Function opens a new function with nparams parameters and returns its
// builder, positioned at a fresh "entry" block.
func (b *Builder) Function(name string, nparams int) *FuncBuilder {
	f := &Func{Name: name}
	for i := 0; i < nparams; i++ {
		f.Params = append(f.Params, Reg(i))
	}
	f.NumRegs = nparams
	b.M.AddFunc(f)
	fb := &FuncBuilder{b: b, F: f, nextReg: Reg(nparams)}
	fb.cur = fb.NewBlock("entry")
	return fb
}

// ThreadBody opens a function flagged as a Parallel target. Its first
// parameter is the thread id.
func (b *Builder) ThreadBody(name string, nparams int) *FuncBuilder {
	fb := b.Function(name, nparams)
	fb.F.ThreadBody = true
	return fb
}

// FuncBuilder emits instructions into one function, at a cursor block.
type FuncBuilder struct {
	b       *Builder
	F       *Func
	cur     *Block
	nextReg Reg
}

// Param returns the i-th parameter register.
func (fb *FuncBuilder) Param(i int) Reg { return fb.F.Params[i] }

// NewBlock creates a block without moving the cursor.
func (fb *FuncBuilder) NewBlock(name string) *Block {
	return fb.F.addBlock(&Block{Name: name})
}

// SetBlock moves the emission cursor.
func (fb *FuncBuilder) SetBlock(blk *Block) { fb.cur = blk }

// Cur returns the cursor block.
func (fb *FuncBuilder) Cur() *Block { return fb.cur }

func (fb *FuncBuilder) newReg() Reg {
	r := fb.nextReg
	fb.nextReg++
	fb.F.NumRegs = int(fb.nextReg)
	return r
}

func (fb *FuncBuilder) emit(in *Instr) *Instr {
	if fb.cur == nil {
		panic("ir: no cursor block in " + fb.F.Name)
	}
	if n := len(fb.cur.Instrs); n > 0 && fb.cur.Instrs[n-1].IsTerminator() {
		panic(fmt.Sprintf("ir: emitting %v after terminator in %s.%s",
			in, fb.F.Name, fb.cur.Name))
	}
	in.ID = fb.b.M.NextInstrID()
	fb.cur.Instrs = append(fb.cur.Instrs, in)
	return in
}

// C emits a constant and returns its register.
func (fb *FuncBuilder) C(v int64) Reg {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpConst, Dst: r, Imm: v})
	return r
}

// Mov copies src into a fresh register.
func (fb *FuncBuilder) Mov(src Reg) Reg {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpMov, Dst: r, A: src})
	return r
}

// MovTo copies src into dst (loop-carried variables).
func (fb *FuncBuilder) MovTo(dst, src Reg) {
	fb.emit(&Instr{Op: OpMov, Dst: dst, A: src})
}

// Bin emits a binary operation.
func (fb *FuncBuilder) Bin(k BinKind, a, b Reg) Reg {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpBin, Dst: r, Bin: k, A: a, B: b})
	return r
}

// Convenience arithmetic wrappers.
func (fb *FuncBuilder) Add(a, b Reg) Reg { return fb.Bin(BinAdd, a, b) }
func (fb *FuncBuilder) Sub(a, b Reg) Reg { return fb.Bin(BinSub, a, b) }
func (fb *FuncBuilder) Mul(a, b Reg) Reg { return fb.Bin(BinMul, a, b) }
func (fb *FuncBuilder) Mod(a, b Reg) Reg { return fb.Bin(BinMod, a, b) }
func (fb *FuncBuilder) Xor(a, b Reg) Reg { return fb.Bin(BinXor, a, b) }

// AddI adds an immediate.
func (fb *FuncBuilder) AddI(a Reg, imm int64) Reg { return fb.Add(a, fb.C(imm)) }

// MulI multiplies by an immediate.
func (fb *FuncBuilder) MulI(a Reg, imm int64) Reg { return fb.Mul(a, fb.C(imm)) }

// Cmp emits a comparison producing 0/1.
func (fb *FuncBuilder) Cmp(p CmpKind, a, b Reg) Reg {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpCmp, Dst: r, Pred: p, A: a, B: b})
	return r
}

// Load emits an (unsafe) word load from [addr+off bytes].
func (fb *FuncBuilder) Load(addr Reg, off int64) Reg {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpLoad, Dst: r, A: addr, Imm: off})
	return r
}

// Store emits an (unsafe) word store to [addr+off bytes].
func (fb *FuncBuilder) Store(addr Reg, off int64, val Reg) {
	fb.emit(&Instr{Op: OpStore, A: addr, Imm: off, B: val})
}

// LoadSafe emits a load pre-marked safe — the Notary-style manual
// annotation path the paper notes HinTM trivially supports. The programmer
// asserts the location cannot race; the classifier leaves explicit marks
// untouched.
func (fb *FuncBuilder) LoadSafe(addr Reg, off int64) Reg {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpLoad, Dst: r, A: addr, Imm: off, Safe: true})
	return r
}

// StoreSafe emits a store pre-marked safe. The programmer asserts the
// target is thread-private AND the store is initializing; an aborted
// transaction will NOT restore the old value (exactly the hardware
// semantics the hint enables), so a wrong annotation corrupts state.
func (fb *FuncBuilder) StoreSafe(addr Reg, off int64, val Reg) {
	fb.emit(&Instr{Op: OpStore, A: addr, Imm: off, B: val, Safe: true})
}

// Alloca reserves words in the frame and returns the slot's address register.
func (fb *FuncBuilder) Alloca(words int64) Reg {
	r := fb.newReg()
	off := fb.F.AllocaWords
	fb.F.AllocaWords += words
	fb.emit(&Instr{Op: OpAlloca, Dst: r, Words: words, Imm: off})
	return r
}

// GlobalAddr materializes the address of a global.
func (fb *FuncBuilder) GlobalAddr(name string) Reg {
	if fb.b.M.Global(name) == nil {
		panic("ir: unknown global @" + name)
	}
	r := fb.newReg()
	fb.emit(&Instr{Op: OpGlobalAddr, Dst: r, Sym: name})
	return r
}

// Malloc allocates size(bytes held in reg) heap bytes.
func (fb *FuncBuilder) Malloc(size Reg) Reg {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpMalloc, Dst: r, A: size})
	return r
}

// MallocI allocates a constant number of heap bytes.
func (fb *FuncBuilder) MallocI(bytes int64) Reg { return fb.Malloc(fb.C(bytes)) }

// Free releases a heap block of the given size.
func (fb *FuncBuilder) Free(addr, size Reg) {
	fb.emit(&Instr{Op: OpFree, A: addr, B: size})
}

// FreeI releases a heap block of a constant size.
func (fb *FuncBuilder) FreeI(addr Reg, bytes int64) { fb.Free(addr, fb.C(bytes)) }

// Call emits a call with a result register.
func (fb *FuncBuilder) Call(callee string, args ...Reg) Reg {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpCall, Dst: r, Sym: callee, Args: args})
	return r
}

// CallVoid emits a call discarding any result.
func (fb *FuncBuilder) CallVoid(callee string, args ...Reg) {
	fb.emit(&Instr{Op: OpCall, Dst: NoReg, Sym: callee, Args: args})
}

// Ret returns a value.
func (fb *FuncBuilder) Ret(v Reg) { fb.emit(&Instr{Op: OpRet, A: v}) }

// RetVoid returns without a value.
func (fb *FuncBuilder) RetVoid() { fb.emit(&Instr{Op: OpRet, A: NoReg}) }

// Br jumps unconditionally.
func (fb *FuncBuilder) Br(target *Block) {
	fb.emit(&Instr{Op: OpBr, Then: target.Name})
}

// CondBr branches on cond != 0.
func (fb *FuncBuilder) CondBr(cond Reg, then, els *Block) {
	fb.emit(&Instr{Op: OpCondBr, A: cond, Then: then.Name, Else: els.Name})
}

// TxBegin opens a transaction.
func (fb *FuncBuilder) TxBegin() { fb.emit(&Instr{Op: OpTxBegin}) }

// TxEnd commits the open transaction.
func (fb *FuncBuilder) TxEnd() { fb.emit(&Instr{Op: OpTxEnd}) }

// TxSuspend pauses transactional tracking (escape action); accesses until
// TxResume are non-transactional.
func (fb *FuncBuilder) TxSuspend() { fb.emit(&Instr{Op: OpTxSuspend}) }

// TxResume re-enables transactional tracking after TxSuspend.
func (fb *FuncBuilder) TxResume() { fb.emit(&Instr{Op: OpTxResume}) }

// Parallel forks nThreads (a register) threads running body(tid, args...).
func (fb *FuncBuilder) Parallel(nThreads Reg, body string, args ...Reg) {
	fb.emit(&Instr{Op: OpParallel, A: nThreads, Sym: body, Args: args})
}

// AbortIf requests an explicit transaction abort when cond != 0 (a
// diagnostic escape hatch used by tests and by programs with software
// validation logic).
func (fb *FuncBuilder) AbortIf(cond Reg) {
	fb.emit(&Instr{Op: OpAbortHint, A: cond})
}

// Rand draws a pseudo-random value in [0, bound).
func (fb *FuncBuilder) Rand(bound Reg) Reg {
	r := fb.newReg()
	fb.emit(&Instr{Op: OpRand, Dst: r, A: bound})
	return r
}

// RandI draws a pseudo-random value in [0, bound) for a constant bound.
func (fb *FuncBuilder) RandI(bound int64) Reg { return fb.Rand(fb.C(bound)) }
