package ir

import (
	"strings"
	"testing"
)

// roundTrip prints m and parses it back, asserting the re-print matches.
func roundTrip(t *testing.T, m *Module) *Module {
	t.Helper()
	text := m.String()
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, text)
	}
	if got := parsed.String(); got != text {
		t.Fatalf("round trip differs:\n--- printed ---\n%s\n--- reparsed ---\n%s", text, got)
	}
	return parsed
}

func TestParseRoundTripCounter(t *testing.T) {
	m := buildCounterModule(t)
	roundTrip(t, m)
}

func TestParseRoundTripAllOps(t *testing.T) {
	b := NewBuilder("allops")
	b.GlobalPageAligned("table", 64)
	b.Global("ctr", 1)

	h := b.Function("helper", 2)
	v := h.Load(h.Param(0), 8)
	h.Store(h.Param(0), 16, v)
	h.Ret(h.Add(v, h.Param(1)))

	w := b.ThreadBody("worker", 1)
	loop := w.NewBlock("loop")
	done := w.NewBlock("done")
	slot := w.Alloca(2)
	buf := w.MallocI(128)
	g := w.GlobalAddr("table")
	i := w.C(0)
	w.Br(loop)
	w.SetBlock(loop)
	w.TxBegin()
	x := w.RandI(100)
	y := w.Bin(BinXor, x, w.Param(0))
	c := w.Cmp(CmpLE, y, w.C(50))
	w.Store(slot, 0, c)
	sv := w.LoadSafe(slot, 0)
	w.StoreSafe(buf, 0, sv)
	r := w.Call("helper", g, y)
	w.emit(&Instr{Op: OpAbortHint, A: w.Mov(r)})
	w.TxEnd()
	w.MovTo(i, w.AddI(i, 1))
	cc := w.Cmp(CmpLT, i, w.C(3))
	w.CondBr(cc, loop, done)
	w.SetBlock(done)
	w.FreeI(buf, 128)
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(4)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	if err := b.M.Verify(); err != nil {
		t.Fatal(err)
	}
	parsed := roundTrip(t, b.M)

	// Safety bits must survive the round trip.
	var safeLoads, safeStores int
	parsed.ForEachInstr(func(_ *Func, _ *Block, in *Instr) {
		if in.Op == OpLoad && in.Safe {
			safeLoads++
		}
		if in.Op == OpStore && in.Safe {
			safeStores++
		}
	})
	if safeLoads != 1 || safeStores != 1 {
		t.Fatalf("safety bits lost: %d/%d", safeLoads, safeStores)
	}
	if parsed.Func("worker") == nil || !parsed.Func("worker").ThreadBody {
		t.Fatal("threadbody flag lost")
	}
	if g := parsed.Global("table"); g == nil || !g.PageAligned || g.Words != 64 {
		t.Fatalf("global attributes lost: %+v", g)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no module", "func @f() regs=0 frame=0w {\n}\n", "expected 'module"},
		{"bad global", "module m\nglobal @g oops\n", "expected [N words]"},
		{"bad instr", "module m\nfunc @main() regs=0 frame=0w {\nentry:\n\tfrobnicate r1\n}\n", "unknown instruction"},
		{"instr before label", "module m\nfunc @main() regs=1 frame=0w {\n\tret\n}\n", "before any label"},
		{"eof in func", "module m\nfunc @main() regs=0 frame=0w {\nentry:\n\tret\n", "unexpected EOF"},
		{"invalid module", "module m\nfunc @f() regs=0 frame=0w {\nentry:\n\tret\n}\n", "no main"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestParseHandwritten(t *testing.T) {
	src := `module hand
global @g [4 words]

func @main() regs=3 frame=0w {
entry:
	r0 = global @g
	r1 = const 7
	store [r0+8], r1
	r2 = load [r0+8]
	ret
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "hand" {
		t.Fatalf("name = %q", m.Name)
	}
	var stores int
	m.ForEachInstr(func(_ *Func, _ *Block, in *Instr) {
		if in.Op == OpStore {
			stores++
			if in.Imm != 8 {
				t.Errorf("store offset = %d", in.Imm)
			}
		}
	})
	if stores != 1 {
		t.Fatalf("stores = %d", stores)
	}
}
