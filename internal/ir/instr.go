package ir

import "fmt"

// Op is a TIR opcode.
type Op uint8

// TIR opcodes.
const (
	OpInvalid Op = iota

	// OpConst: Dst = Imm.
	OpConst
	// OpMov: Dst = A.
	OpMov
	// OpBin: Dst = A <Bin> B.
	OpBin
	// OpCmp: Dst = (A <Pred> B) ? 1 : 0.
	OpCmp

	// OpLoad: Dst = mem[A + Imm]. Safe marks the paper's load_word_safe.
	OpLoad
	// OpStore: mem[A + Imm] = B. Safe marks the paper's store_word_safe.
	OpStore

	// OpAlloca: Dst = address of a Words-sized slot in the current frame.
	// Imm holds the precomputed frame offset in words (set by the builder).
	OpAlloca
	// OpGlobalAddr: Dst = address of global Sym.
	OpGlobalAddr
	// OpMalloc: Dst = heap address of A bytes, from the calling thread's arena.
	OpMalloc
	// OpFree: release heap block at address A of B bytes.
	OpFree

	// OpCall: Dst (optional) = Sym(Args...).
	OpCall
	// OpRet: return A (optional).
	OpRet
	// OpBr: unconditional jump to block Then.
	OpBr
	// OpCondBr: jump to Then if A != 0, else to Else.
	OpCondBr

	// OpTxBegin opens a transaction; OpTxEnd commits it.
	OpTxBegin
	OpTxEnd
	// OpTxSuspend/OpTxResume are the escape actions some HTMs provide
	// (paper §VII): accesses between them execute non-transactionally —
	// untracked, unlogged, invisible to conflict detection. A
	// coarse-grained alternative to per-instruction safety hints.
	OpTxSuspend
	OpTxResume

	// OpParallel: fork A threads each running Sym(tid, Args...); barrier.
	OpParallel

	// OpRand: Dst = uniform pseudo-random value in [0, A), from the
	// executing thread's deterministic PRNG stream.
	OpRand
	// OpAbortHint is a diagnostic no-op that requests an explicit TX abort
	// when A != 0 (used by tests to exercise explicit abort paths).
	OpAbortHint
)

// BinKind selects an OpBin operation.
type BinKind uint8

// Binary operations.
const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
)

// CmpKind selects an OpCmp predicate.
type CmpKind uint8

// Comparison predicates.
const (
	CmpEQ CmpKind = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// Instr is one TIR instruction. Fields are interpreted per-opcode; see the
// Op constants. A flat struct (rather than per-op types) keeps the
// interpreter's dispatch loop simple and fast.
type Instr struct {
	// ID is module-unique; analyses key per-instruction facts on it.
	ID int
	Op Op

	Dst  Reg
	A, B Reg
	Imm  int64

	Bin  BinKind
	Pred CmpKind

	// Sym names a global (OpGlobalAddr), callee (OpCall), or thread body
	// (OpParallel).
	Sym string
	// Args are call/parallel argument registers.
	Args []Reg
	// Then/Else are branch target block names.
	Then, Else string

	// Safe is the static safety hint on OpLoad/OpStore, set by the
	// classification passes (or by hand in tests).
	Safe bool
	// Words is the OpAlloca size.
	Words int64
}

// IsTerminator reports whether the instruction must end a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpBr, OpCondBr, OpRet:
		return true
	}
	return false
}

// IsMemAccess reports whether the instruction loads or stores simulated
// memory through an address register.
func (in *Instr) IsMemAccess() bool { return in.Op == OpLoad || in.Op == OpStore }

// Uses returns the registers the instruction reads.
func (in *Instr) Uses() []Reg {
	var u []Reg
	add := func(r Reg) {
		if r != NoReg {
			u = append(u, r)
		}
	}
	switch in.Op {
	case OpMov, OpLoad, OpMalloc, OpRand, OpCondBr, OpAbortHint:
		add(in.A)
	case OpBin, OpCmp, OpStore, OpFree:
		add(in.A)
		add(in.B)
	case OpRet:
		add(in.A)
	case OpCall, OpParallel:
		if in.Op == OpParallel {
			add(in.A)
		}
		u = append(u, in.Args...)
	}
	return u
}

// Def returns the register the instruction writes, or NoReg.
func (in *Instr) Def() Reg {
	switch in.Op {
	case OpConst, OpMov, OpBin, OpCmp, OpLoad, OpAlloca, OpGlobalAddr,
		OpMalloc, OpRand:
		return in.Dst
	case OpCall:
		return in.Dst // may be NoReg for void calls
	}
	return NoReg
}

func (k BinKind) String() string {
	switch k {
	case BinAdd:
		return "add"
	case BinSub:
		return "sub"
	case BinMul:
		return "mul"
	case BinDiv:
		return "div"
	case BinMod:
		return "mod"
	case BinAnd:
		return "and"
	case BinOr:
		return "or"
	case BinXor:
		return "xor"
	case BinShl:
		return "shl"
	case BinShr:
		return "shr"
	}
	return fmt.Sprintf("bin(%d)", uint8(k))
}

func (k CmpKind) String() string {
	switch k {
	case CmpEQ:
		return "eq"
	case CmpNE:
		return "ne"
	case CmpLT:
		return "lt"
	case CmpLE:
		return "le"
	case CmpGT:
		return "gt"
	case CmpGE:
		return "ge"
	}
	return fmt.Sprintf("cmp(%d)", uint8(k))
}

// String renders the instruction in the textual TIR syntax.
func (in *Instr) String() string {
	safe := ""
	if in.Safe {
		safe = ".safe"
	}
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%v = const %d", in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("%v = mov %v", in.Dst, in.A)
	case OpBin:
		return fmt.Sprintf("%v = %v %v, %v", in.Dst, in.Bin, in.A, in.B)
	case OpCmp:
		return fmt.Sprintf("%v = cmp.%v %v, %v", in.Dst, in.Pred, in.A, in.B)
	case OpLoad:
		return fmt.Sprintf("%v = load%s [%v+%d]", in.Dst, safe, in.A, in.Imm)
	case OpStore:
		return fmt.Sprintf("store%s [%v+%d], %v", safe, in.A, in.Imm, in.B)
	case OpAlloca:
		return fmt.Sprintf("%v = alloca %d words (off %d)", in.Dst, in.Words, in.Imm)
	case OpGlobalAddr:
		return fmt.Sprintf("%v = global @%s", in.Dst, in.Sym)
	case OpMalloc:
		return fmt.Sprintf("%v = malloc %v", in.Dst, in.A)
	case OpFree:
		return fmt.Sprintf("free %v, %v", in.A, in.B)
	case OpCall:
		return fmt.Sprintf("%v = call @%s%v", in.Dst, in.Sym, in.Args)
	case OpRet:
		if in.A == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret %v", in.A)
	case OpBr:
		return fmt.Sprintf("br %s", in.Then)
	case OpCondBr:
		return fmt.Sprintf("condbr %v, %s, %s", in.A, in.Then, in.Else)
	case OpTxBegin:
		return "txbegin"
	case OpTxEnd:
		return "txend"
	case OpTxSuspend:
		return "txsuspend"
	case OpTxResume:
		return "txresume"
	case OpParallel:
		return fmt.Sprintf("parallel %v x @%s%v", in.A, in.Sym, in.Args)
	case OpRand:
		return fmt.Sprintf("%v = rand %v", in.Dst, in.A)
	case OpAbortHint:
		return fmt.Sprintf("aborthint %v", in.A)
	}
	return fmt.Sprintf("op(%d)", in.Op)
}
