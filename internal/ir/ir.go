// Package ir defines TIR, the small typed register IR in which the
// simulator's transactional workloads are written. TIR plays the role the
// LLVM IR + MIPS backend play in the paper: HinTM's static classification
// passes (internal/alias, internal/escape, internal/classify) analyze and
// rewrite TIR, and the interpreter (internal/interp) executes it on the
// simulated machine.
//
// TIR is a register machine, not SSA: each function owns a flat space of
// virtual registers holding 64-bit integers (scalar values or addresses).
// Memory is reached explicitly through Load/Store instructions; the safe
// variants of those instructions (the Safe flag) model the paper's
// load_word_safe / store_word_safe opcodes.
//
// A program is a Module: a set of globals and functions. Execution starts
// at the function named "main", which runs single-threaded; a Parallel
// instruction forks N simulated threads each running a named thread-body
// function (first parameter = thread id), with an implicit barrier at the
// end. Transactions are delimited by TxBegin/TxEnd.
package ir

import "fmt"

// Reg is a virtual register index within a function. Register 0 is valid;
// NoReg marks an unused register operand.
type Reg int32

// NoReg marks an absent register operand (e.g. a Ret with no value).
const NoReg Reg = -1

// String formats the register for IR dumps.
func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", int32(r))
}

// Module is a whole TIR program.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func

	funcByName   map[string]*Func
	globalByName map[string]*Global
	nextInstrID  int
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:         name,
		funcByName:   make(map[string]*Func),
		globalByName: make(map[string]*Global),
	}
}

// Global is a module-level data object of a fixed word count.
type Global struct {
	Name  string
	Words int64
	// PageAligned requests placement at a page boundary, used for large
	// shared tables so page-granularity metrics are not polluted by
	// neighbouring objects.
	PageAligned bool
	// Init holds optional initial word values (len(Init) <= Words).
	Init []int64
}

// Func is a TIR function.
type Func struct {
	Name   string
	Params []Reg // parameter registers, defined on entry
	Blocks []*Block
	// NumRegs is the size of the virtual register file.
	NumRegs int
	// AllocaWords is the total stack frame size in words, covering every
	// Alloca in the function; individual Allocas carry their frame offset.
	AllocaWords int64
	// ThreadBody marks functions used as Parallel targets.
	ThreadBody bool

	blockByName map[string]*Block
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator (Br, CondBr, or Ret).
type Block struct {
	Name   string
	Instrs []*Instr
}

// AddGlobal registers a global object and returns it. Duplicate names panic:
// modules are built programmatically and a clash is a builder bug.
func (m *Module) AddGlobal(g *Global) *Global {
	if _, dup := m.globalByName[g.Name]; dup {
		panic("ir: duplicate global " + g.Name)
	}
	m.Globals = append(m.Globals, g)
	m.globalByName[g.Name] = g
	return g
}

// AddFunc registers a function and returns it.
func (m *Module) AddFunc(f *Func) *Func {
	if _, dup := m.funcByName[f.Name]; dup {
		panic("ir: duplicate function " + f.Name)
	}
	if f.blockByName == nil {
		f.blockByName = make(map[string]*Block)
		for _, b := range f.Blocks {
			f.blockByName[b.Name] = b
		}
	}
	m.Funcs = append(m.Funcs, f)
	m.funcByName[f.Name] = f
	return f
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func { return m.funcByName[name] }

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global { return m.globalByName[name] }

// NextInstrID hands out module-unique instruction ids (used as analysis keys).
func (m *Module) NextInstrID() int {
	m.nextInstrID++
	return m.nextInstrID
}

// Block returns the block with the given name, or nil.
func (f *Func) Block(name string) *Block { return f.blockByName[name] }

// addBlock appends a block to the function.
func (f *Func) addBlock(b *Block) *Block {
	if f.blockByName == nil {
		f.blockByName = make(map[string]*Block)
	}
	if _, dup := f.blockByName[b.Name]; dup {
		panic("ir: duplicate block " + b.Name + " in " + f.Name)
	}
	f.Blocks = append(f.Blocks, b)
	f.blockByName[b.Name] = b
	return b
}

// RebuildBlockIndex recomputes the name→block lookup after a transform has
// added or removed blocks directly (the optimizer does).
func (f *Func) RebuildBlockIndex() {
	f.blockByName = make(map[string]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		f.blockByName[b.Name] = b
	}
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		panic("ir: function " + f.Name + " has no blocks")
	}
	return f.Blocks[0]
}

// ForEachInstr invokes fn for every instruction in the function, in block
// order.
func (f *Func) ForEachInstr(fn func(b *Block, in *Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(b, in)
		}
	}
}

// ForEachInstr invokes fn for every instruction in the module.
func (m *Module) ForEachInstr(fn func(f *Func, b *Block, in *Instr)) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				fn(f, b, in)
			}
		}
	}
}
