package ir

import (
	"errors"
	"fmt"
)

// Verify checks module well-formedness: every block is terminated, branch
// targets and call/parallel/global symbols resolve, register operands are in
// range, main exists, Parallel appears only outside transactions and only in
// non-thread-body code, and alloca frame offsets are consistent.
func (m *Module) Verify() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if m.Func("main") == nil {
		bad("module %s: no main function", m.Name)
	}
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			bad("%s: no blocks", f.Name)
			continue
		}
		if f.ThreadBody && len(f.Params) == 0 {
			bad("%s: thread body needs a tid parameter", f.Name)
		}
		var allocaSeen int64
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				bad("%s.%s: empty block", f.Name, b.Name)
				continue
			}
			for i, in := range b.Instrs {
				last := i == len(b.Instrs)-1
				if in.IsTerminator() != last {
					if last {
						bad("%s.%s: block does not end in a terminator", f.Name, b.Name)
					} else {
						bad("%s.%s: terminator %v mid-block", f.Name, b.Name, in)
					}
				}
				m.verifyInstr(f, b, in, &allocaSeen, bad)
			}
		}
		if allocaSeen != f.AllocaWords {
			bad("%s: AllocaWords=%d but allocas cover %d", f.Name, f.AllocaWords, allocaSeen)
		}
	}
	return errors.Join(errs...)
}

func (m *Module) verifyInstr(f *Func, b *Block, in *Instr, allocaSeen *int64,
	bad func(string, ...any)) {

	checkReg := func(r Reg, what string) {
		if r == NoReg {
			return
		}
		if int(r) < 0 || int(r) >= f.NumRegs {
			bad("%s.%s: %v: %s register %v out of range [0,%d)",
				f.Name, b.Name, in, what, r, f.NumRegs)
		}
	}
	for _, u := range in.Uses() {
		checkReg(u, "use")
	}
	checkReg(in.Def(), "def")

	checkTarget := func(name string) {
		if name == "" || f.Block(name) == nil {
			bad("%s.%s: %v: unknown block %q", f.Name, b.Name, in, name)
		}
	}
	switch in.Op {
	case OpInvalid:
		bad("%s.%s: invalid opcode", f.Name, b.Name)
	case OpBr:
		checkTarget(in.Then)
	case OpCondBr:
		checkTarget(in.Then)
		checkTarget(in.Else)
	case OpGlobalAddr:
		if m.Global(in.Sym) == nil {
			bad("%s.%s: %v: unknown global @%s", f.Name, b.Name, in, in.Sym)
		}
	case OpCall:
		callee := m.Func(in.Sym)
		if callee == nil {
			bad("%s.%s: %v: unknown callee @%s", f.Name, b.Name, in, in.Sym)
		} else if len(in.Args) != len(callee.Params) {
			bad("%s.%s: %v: arity %d, callee @%s wants %d",
				f.Name, b.Name, in, len(in.Args), in.Sym, len(callee.Params))
		}
	case OpParallel:
		body := m.Func(in.Sym)
		switch {
		case body == nil:
			bad("%s.%s: %v: unknown thread body @%s", f.Name, b.Name, in, in.Sym)
		case !body.ThreadBody:
			bad("%s.%s: %v: @%s is not a thread body", f.Name, b.Name, in, in.Sym)
		case len(in.Args)+1 != len(body.Params):
			bad("%s.%s: %v: parallel passes %d args, body @%s wants tid+%d",
				f.Name, b.Name, in, len(in.Args), in.Sym, len(body.Params)-1)
		}
		if f.ThreadBody {
			bad("%s.%s: nested Parallel in thread body", f.Name, b.Name)
		}
	case OpAlloca:
		if in.Words <= 0 {
			bad("%s.%s: %v: non-positive alloca size", f.Name, b.Name, in)
		}
		if in.Imm != *allocaSeen {
			bad("%s.%s: %v: frame offset %d, expected %d",
				f.Name, b.Name, in, in.Imm, *allocaSeen)
		}
		*allocaSeen += in.Words
	case OpLoad, OpStore:
		if in.Imm%8 != 0 {
			bad("%s.%s: %v: unaligned byte offset %d", f.Name, b.Name, in, in.Imm)
		}
	}
}
