package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual TIR syntax emitted by Module.String back into a
// Module, enabling round-trip tooling: dumping a classified module with tirc,
// editing it by hand, and re-running it. The grammar is exactly the printer's
// output:
//
//	module NAME
//	global @name [N words] [pagealigned]
//	func @name(r0, r1) regs=N frame=Nw {
//	label:
//		r2 = const 42
//		r3 = load.safe [r2+8]
//		store [r2+0], r3
//		...
//	}
//
// Parse errors carry 1-based line numbers.
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	return p.parse()
}

type parser struct {
	lines []string
	pos   int
	m     *Module
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("tir:%d: %s", p.pos, fmt.Sprintf(format, args...))
}

// next returns the next non-empty line (trimmed) or "", false at EOF.
func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		if line != "" {
			return line, true
		}
	}
	return "", false
}

func (p *parser) parse() (*Module, error) {
	line, ok := p.next()
	if !ok || !strings.HasPrefix(line, "module ") {
		return nil, p.errf("expected 'module NAME'")
	}
	p.m = NewModule(strings.TrimSpace(strings.TrimPrefix(line, "module ")))

	for {
		line, ok := p.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, "global @"):
			if err := p.parseGlobal(line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "func @"), strings.HasPrefix(line, "threadbody @"):
			if err := p.parseFunc(line); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected top-level line %q", line)
		}
	}
	if err := p.m.Verify(); err != nil {
		return nil, fmt.Errorf("tir: parsed module invalid: %w", err)
	}
	return p.m, nil
}

// parseGlobal handles: global @name [N words] [pagealigned]
func (p *parser) parseGlobal(line string) error {
	rest := strings.TrimPrefix(line, "global @")
	name, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return p.errf("malformed global")
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "[") {
		return p.errf("global %s: expected [N words]", name)
	}
	inner, tail, ok := strings.Cut(rest[1:], "]")
	if !ok {
		return p.errf("global %s: unterminated size", name)
	}
	words, err := strconv.ParseInt(strings.TrimSuffix(inner, " words"), 10, 64)
	if err != nil {
		return p.errf("global %s: bad size %q", name, inner)
	}
	g := &Global{Name: name, Words: words,
		PageAligned: strings.Contains(tail, "pagealigned")}
	p.m.AddGlobal(g)
	return nil
}

// parseFunc handles the header line then blocks until '}'.
func (p *parser) parseFunc(header string) error {
	threadBody := strings.HasPrefix(header, "threadbody ")
	rest := header[strings.Index(header, "@")+1:]
	name, rest, ok := strings.Cut(rest, "(")
	if !ok {
		return p.errf("malformed function header")
	}
	params, rest, ok := strings.Cut(rest, ")")
	if !ok {
		return p.errf("func %s: missing ')'", name)
	}
	f := &Func{Name: name, ThreadBody: threadBody}
	for _, ps := range strings.Split(params, ",") {
		ps = strings.TrimSpace(ps)
		if ps == "" {
			continue
		}
		r, err := parseReg(ps)
		if err != nil {
			return p.errf("func %s: %v", name, err)
		}
		f.Params = append(f.Params, r)
	}
	var err error
	if f.NumRegs, err = extractInt(rest, "regs="); err != nil {
		return p.errf("func %s: %v", name, err)
	}
	frame, err := extractInt(rest, "frame=")
	if err != nil {
		return p.errf("func %s: %v", name, err)
	}
	f.AllocaWords = int64(frame)

	var cur *Block
	for {
		line, ok := p.next()
		if !ok {
			return p.errf("func %s: unexpected EOF", name)
		}
		if line == "}" {
			break
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			cur = &Block{Name: strings.TrimSuffix(line, ":")}
			f.addBlock(cur)
			continue
		}
		if cur == nil {
			return p.errf("func %s: instruction before any label", name)
		}
		in, err := p.parseInstr(line)
		if err != nil {
			return err
		}
		in.ID = p.m.NextInstrID()
		cur.Instrs = append(cur.Instrs, in)
	}
	p.m.AddFunc(f)
	return nil
}

func extractInt(s, key string) (int, error) {
	i := strings.Index(s, key)
	if i < 0 {
		return 0, fmt.Errorf("missing %q", key)
	}
	rest := s[i+len(key):]
	j := 0
	for j < len(rest) && (rest[j] >= '0' && rest[j] <= '9') {
		j++
	}
	if j == 0 {
		return 0, fmt.Errorf("bad %q value", key)
	}
	return strconv.Atoi(rest[:j])
}

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if s == "_" {
		return NoReg, nil
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

// parseMem parses "[rA+OFF]".
func parseMem(s string) (Reg, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad address %q", s)
	}
	base, off, ok := strings.Cut(s[1:len(s)-1], "+")
	if !ok {
		return 0, 0, fmt.Errorf("bad address %q", s)
	}
	r, err := parseReg(base)
	if err != nil {
		return 0, 0, err
	}
	imm, err := strconv.ParseInt(off, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, imm, nil
}

var binByName = map[string]BinKind{
	"add": BinAdd, "sub": BinSub, "mul": BinMul, "div": BinDiv, "mod": BinMod,
	"and": BinAnd, "or": BinOr, "xor": BinXor, "shl": BinShl, "shr": BinShr,
}

func isBinOp(op string) bool {
	_, ok := binByName[op]
	return ok
}

var cmpByName = map[string]CmpKind{
	"eq": CmpEQ, "ne": CmpNE, "lt": CmpLT, "le": CmpLE, "gt": CmpGT, "ge": CmpGE,
}

// parseInstr parses one instruction line (the printer's exact formats).
func (p *parser) parseInstr(line string) (*Instr, error) {
	// Assignment forms: "rN = <op> ...".
	if dstStr, rhs, ok := strings.Cut(line, " = "); ok &&
		(dstStr == "_" || strings.HasPrefix(dstStr, "r")) {
		dst, err := parseReg(dstStr)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		op, rest, _ := strings.Cut(rhs, " ")
		switch {
		case op == "const":
			imm, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, p.errf("bad const %q", rest)
			}
			return &Instr{Op: OpConst, Dst: dst, Imm: imm}, nil
		case op == "mov":
			a, err := parseReg(rest)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return &Instr{Op: OpMov, Dst: dst, A: a}, nil
		case isBinOp(op):
			a, b, err := twoRegs(rest)
			if err != nil {
				return nil, p.errf("%s: %v", op, err)
			}
			return &Instr{Op: OpBin, Bin: binByName[op], Dst: dst, A: a, B: b}, nil
		case strings.HasPrefix(op, "cmp."):
			pred, ok := cmpByName[strings.TrimPrefix(op, "cmp.")]
			if !ok {
				return nil, p.errf("bad predicate %q", op)
			}
			a, b, err := twoRegs(rest)
			if err != nil {
				return nil, p.errf("%s: %v", op, err)
			}
			return &Instr{Op: OpCmp, Pred: pred, Dst: dst, A: a, B: b}, nil
		case op == "load" || op == "load.safe":
			a, imm, err := parseMem(rest)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return &Instr{Op: OpLoad, Dst: dst, A: a, Imm: imm, Safe: op == "load.safe"}, nil
		case op == "alloca":
			// "alloca N words (off M)"
			fields := strings.Fields(rest)
			if len(fields) < 4 {
				return nil, p.errf("bad alloca %q", rest)
			}
			words, err1 := strconv.ParseInt(fields[0], 10, 64)
			off, err2 := strconv.ParseInt(strings.TrimSuffix(fields[3], ")"), 10, 64)
			if err1 != nil || err2 != nil {
				return nil, p.errf("bad alloca %q", rest)
			}
			return &Instr{Op: OpAlloca, Dst: dst, Words: words, Imm: off}, nil
		case op == "global":
			return &Instr{Op: OpGlobalAddr, Dst: dst, Sym: strings.TrimPrefix(rest, "@")}, nil
		case op == "malloc":
			a, err := parseReg(rest)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return &Instr{Op: OpMalloc, Dst: dst, A: a}, nil
		case op == "call":
			sym, args, err := parseCallBracket(rest)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return &Instr{Op: OpCall, Dst: dst, Sym: sym, Args: args}, nil
		case op == "rand":
			a, err := parseReg(rest)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return &Instr{Op: OpRand, Dst: dst, A: a}, nil
		}
		return nil, p.errf("unknown assignment op %q", op)
	}

	op, rest, _ := strings.Cut(line, " ")
	switch op {
	case "store", "store.safe":
		addrStr, valStr, ok := strings.Cut(rest, ", ")
		if !ok {
			return nil, p.errf("bad store %q", rest)
		}
		a, imm, err := parseMem(addrStr)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		b, err := parseReg(valStr)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &Instr{Op: OpStore, A: a, Imm: imm, B: b, Safe: op == "store.safe"}, nil
	case "free":
		a, b, err := twoRegs(rest)
		if err != nil {
			return nil, p.errf("free: %v", err)
		}
		return &Instr{Op: OpFree, A: a, B: b}, nil
	case "ret":
		if rest == "" {
			return &Instr{Op: OpRet, A: NoReg}, nil
		}
		a, err := parseReg(rest)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &Instr{Op: OpRet, A: a}, nil
	case "br":
		return &Instr{Op: OpBr, Then: rest}, nil
	case "condbr":
		parts := strings.Split(rest, ", ")
		if len(parts) != 3 {
			return nil, p.errf("bad condbr %q", rest)
		}
		a, err := parseReg(parts[0])
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &Instr{Op: OpCondBr, A: a, Then: parts[1], Else: parts[2]}, nil
	case "txbegin":
		return &Instr{Op: OpTxBegin}, nil
	case "txend":
		return &Instr{Op: OpTxEnd}, nil
	case "txsuspend":
		return &Instr{Op: OpTxSuspend}, nil
	case "txresume":
		return &Instr{Op: OpTxResume}, nil
	case "parallel":
		// "parallel rN x @fn[args]"
		nStr, callPart, ok := strings.Cut(rest, " x ")
		if !ok {
			return nil, p.errf("bad parallel %q", rest)
		}
		a, err := parseReg(nStr)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		sym, args, err := parseCallBracket(callPart)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &Instr{Op: OpParallel, A: a, Sym: sym, Args: args}, nil
	case "aborthint":
		a, err := parseReg(rest)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &Instr{Op: OpAbortHint, A: a}, nil
	}
	return nil, p.errf("unknown instruction %q", line)
}

func twoRegs(s string) (Reg, Reg, error) {
	aStr, bStr, ok := strings.Cut(s, ", ")
	if !ok {
		return 0, 0, fmt.Errorf("expected two registers in %q", s)
	}
	a, err := parseReg(aStr)
	if err != nil {
		return 0, 0, err
	}
	b, err := parseReg(bStr)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

// parseCallBracket parses the printer's call form "@fn[r1 r2]" (the fmt %v
// rendering of []Reg; an empty argument list prints as "@fn[]").
func parseCallBracket(s string) (string, []Reg, error) {
	s = strings.TrimPrefix(s, "@")
	name, argsPart, ok := strings.Cut(s, "[")
	if !ok {
		return s, nil, nil
	}
	argsPart = strings.TrimSuffix(argsPart, "]")
	var args []Reg
	for _, f := range strings.Fields(argsPart) {
		r, err := parseReg(f)
		if err != nil {
			return "", nil, err
		}
		args = append(args, r)
	}
	return name, args, nil
}
