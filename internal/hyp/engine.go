package hyp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"hintm/internal/harness"
	"hintm/internal/sim"
	"hintm/internal/stats"
	"hintm/internal/workloads"
)

// Engine executes hypothesis grids. Each cell — one (level, seed) pair —
// runs under its own harness.Runner because levels may perturb runner
// options (seed, fault plan) that are fixed per Runner; the runners share
// the engine's content-addressed store, so a cell that has ever completed
// anywhere (an earlier run, the serving fleet, CI) is recalled instead of
// simulated. Cell execution order is irrelevant to the output: the
// evaluation is assembled by (level, seed) index and every simulation is
// self-contained and seeded.
type Engine struct {
	// Opts carries the scale, store, trace, and worker configuration.
	// Seed and Faults act as the base the levels perturb (hypothesis specs
	// override Seed per cell from their seed list).
	Opts harness.Options
}

// Cell is one measured grid point.
type Cell struct {
	Level string
	Seed  uint64
	// Request is the cell's resolved simulation request (after the level's
	// Apply), recorded for the findings' method section.
	Request harness.Request
	// Result is the simulation result the metrics were extracted from.
	Result *sim.Result
	// Values are the spec's metrics evaluated on Result, metric-indexed.
	Values []float64
}

// Evaluation is a fully measured hypothesis grid plus its verdict.
type Evaluation struct {
	Spec  *Spec
	Scale workloads.Scale
	// Cells is indexed [level][seed-position].
	Cells [][]Cell
	// SimRuns counts actual simulator invocations across the grid — 0 on
	// a fully warm store, the property the check workflow asserts.
	SimRuns uint64
	// Outcome is the judge's verdict over the measured grid.
	Outcome Outcome
}

// Values returns metric m's across-seed sample for level l, in seed order.
func (e *Evaluation) Values(l, m int) []float64 {
	out := make([]float64, len(e.Cells[l]))
	for i, c := range e.Cells[l] {
		out[i] = c.Values[m]
	}
	return out
}

// Summary aggregates metric m across seeds for level l.
func (e *Evaluation) Summary(l, m int) stats.Summary {
	return stats.Summarize(e.Values(l, m))
}

// Mean is shorthand for the across-seed mean of metric m at level l.
func (e *Evaluation) Mean(l, m int) float64 { return stats.Mean(e.Values(l, m)) }

// Effect returns the Cohen's-d effect size of metric m at level l versus
// the control level. ok is false when the effect is undefined (single-seed
// grids, zero pooled variance) — judges report INCONCLUSIVE in that case
// rather than inventing a number.
func (e *Evaluation) Effect(l, m int) (d float64, ok bool) {
	if l == 0 {
		return 0, false
	}
	return stats.CohenD(e.Values(l, m), e.Values(0, m))
}

// GrowthVsControl returns mean(level)/mean(control) for metric m, and
// ok=false when the control mean is zero (no growth factor exists; judges
// fall back to absolute thresholds or INCONCLUSIVE).
func (e *Evaluation) GrowthVsControl(l, m int) (ratio float64, ok bool) {
	base := e.Mean(0, m)
	if base == 0 {
		return 0, false
	}
	return e.Mean(l, m) / base, true
}

// Run measures spec's full grid and judges it. Any cell failure aborts the
// evaluation: a hypothesis cannot be honestly judged on a partial grid.
func (g *Engine) Run(ctx context.Context, spec *Spec) (*Evaluation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluation{Spec: spec, Scale: g.Opts.Scale}
	e.Cells = make([][]Cell, len(spec.Levels))
	for l := range spec.Levels {
		e.Cells[l] = make([]Cell, len(spec.Seeds))
	}

	// One bounded pool for the whole grid; each cell's private Runner gets
	// a single worker slot so total concurrency is the engine's -workers.
	workers := g.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, len(spec.Levels)*len(spec.Seeds))
	var simRuns sync.Mutex
	var wg sync.WaitGroup
	for l, level := range spec.Levels {
		for s, seed := range spec.Seeds {
			wg.Add(1)
			go func(l, s int, level Level, seed uint64) {
				defer wg.Done()
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-ctx.Done():
					errs[l*len(spec.Seeds)+s] = ctx.Err()
					return
				}
				cell, runs, err := g.runCell(ctx, spec, level, seed)
				if err != nil {
					errs[l*len(spec.Seeds)+s] = fmt.Errorf("%s: level %s seed %d: %w", spec.Name, level.Name, seed, err)
					return
				}
				simRuns.Lock()
				e.SimRuns += runs
				simRuns.Unlock()
				e.Cells[l][s] = cell
			}(l, s, level, seed)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	e.Outcome = spec.Judge(e)
	return e, nil
}

// runCell executes one grid point through a dedicated single-worker
// harness.Runner sharing the engine's store.
func (g *Engine) runCell(ctx context.Context, spec *Spec, level Level, seed uint64) (Cell, uint64, error) {
	opts := g.Opts
	opts.Seed = seed
	opts.Workers = 1
	req := spec.Base
	req.Scale = g.Opts.Scale
	if level.Apply != nil {
		level.Apply(&req, &opts)
	}
	r := harness.NewRunner(opts)
	res, err := r.Run(ctx, req)
	if err != nil {
		return Cell{}, 0, err
	}
	cell := Cell{
		Level:   level.Name,
		Seed:    seed,
		Request: req,
		Result:  res,
		Values:  make([]float64, len(spec.Metrics)),
	}
	for m, metric := range spec.Metrics {
		cell.Values[m] = metric.Extract(res)
	}
	return cell, r.SimRuns(), nil
}
