package hyp

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hintm/internal/stats"
)

// FINDINGS.md generation. Render is a pure function of the evaluation:
// fixed section order, fixed-precision number formatting, no timestamps,
// no environment — the same spec, scale, and seeds produce the same bytes
// on every run, which is what lets the committed findings be re-verified
// byte-for-byte in CI (`hintm-exp check`) and what the content-addressed
// store makes cheap (a warm check simulates nothing).

// Path returns the findings file for spec under the hypotheses tree root.
func Path(root string, spec *Spec) string {
	return filepath.Join(root, spec.Name, "FINDINGS.md")
}

// Render produces the complete FINDINGS.md contents for a measured
// evaluation.
func Render(e *Evaluation) []byte {
	var b bytes.Buffer
	spec := e.Spec
	fmt.Fprintf(&b, "# Hypothesis: %s\n\n", spec.Name)
	fmt.Fprintf(&b, "**Claim.** %s\n\n", spec.Claim)
	fmt.Fprintf(&b, "**Verdict: %s** — %s\n", e.Outcome.Verdict, e.Outcome.Reason)
	if len(spec.Refs) > 0 {
		fmt.Fprintf(&b, "\nReferences:\n\n")
		for _, r := range spec.Refs {
			fmt.Fprintf(&b, "- %s\n", r)
		}
	}

	fmt.Fprintf(&b, "\n## Method\n\n")
	fmt.Fprintf(&b, "One-variable-at-a-time grid over **%s**; every other run determinant is\nfixed at the base request. The first level is the control; effect sizes are\nCohen's d versus it, across seeds.\n\n", spec.Variable)
	fmt.Fprintf(&b, "- base request: `%s` at scale `%s`\n", e.Cells[0][0].Request, e.Scale)
	names := make([]string, len(spec.Levels))
	for i, l := range spec.Levels {
		names[i] = "`" + l.Name + "`"
	}
	fmt.Fprintf(&b, "- levels: %s (first = control)\n", strings.Join(names, ", "))
	seeds := make([]string, len(spec.Seeds))
	for i, s := range spec.Seeds {
		seeds[i] = fmt.Sprint(s)
	}
	fmt.Fprintf(&b, "- seeds: %s\n", strings.Join(seeds, ", "))
	fmt.Fprintf(&b, "- grid: %d levels × %d seeds = %d simulations\n",
		len(spec.Levels), len(spec.Seeds), len(spec.Levels)*len(spec.Seeds))

	fmt.Fprintf(&b, "\n## Results\n")
	for m, metric := range spec.Metrics {
		fmt.Fprintf(&b, "\n### %s\n\n", metric.Name)
		header := []string{"level"}
		for _, s := range spec.Seeds {
			header = append(header, fmt.Sprintf("seed %d", s))
		}
		header = append(header, "mean", "median", "min", "max", "stddev", "effect(d)")
		t := stats.NewTable(header...)
		for l := range spec.Levels {
			row := []any{spec.Levels[l].Name}
			for s := range spec.Seeds {
				row = append(row, fmt.Sprintf(metric.Format, e.Cells[l][s].Values[m]))
			}
			sum := e.Summary(l, m)
			row = append(row,
				fmt.Sprintf(metric.Format, sum.Mean),
				fmt.Sprintf(metric.Format, sum.Median),
				fmt.Sprintf(metric.Format, sum.Min),
				fmt.Sprintf(metric.Format, sum.Max),
				fmt.Sprintf("%.3f", sum.StdDev),
				effectCell(e, l, m))
			t.Row(row...)
		}
		fmt.Fprintf(&b, "```\n%s```\n", t.String())
	}

	fmt.Fprintf(&b, "\n## Reproduce\n\n")
	fmt.Fprintf(&b, "```\ngo run ./cmd/hintm-exp -scale %s -hypothesis %s run\ngo run ./cmd/hintm-exp -scale %s -hypothesis %s check\n```\n\n", e.Scale, spec.Name, e.Scale, spec.Name)
	fmt.Fprintf(&b, "Every cell is a seeded-deterministic, content-addressed simulation:\n`check` re-runs the grid (warm cells are store recalls, not simulations —\npass `-store DIR` to keep one) and diffs this file byte-for-byte against\nthe committed copy, exiting non-zero on drift.\n")
	return b.Bytes()
}

// effectCell renders one effect-size cell: "control" on the control row,
// Cohen's d elsewhere, "n/a" when the statistic is undefined.
func effectCell(e *Evaluation, l, m int) string {
	if l == 0 {
		return "control"
	}
	d, ok := e.Effect(l, m)
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%+.2f", d)
}

// Write regenerates the findings file for e under root, creating the
// hypothesis directory if needed.
func Write(e *Evaluation, root string) error {
	path := Path(root, e.Spec)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, Render(e), 0o644)
}

// Check compares the freshly rendered findings against the committed file
// and returns a descriptive error on any difference — a missing file, a
// length change, or the first differing line. Byte identity is the
// contract: the committed findings are exactly what the current tree
// measures.
func Check(e *Evaluation, root string) error {
	path := Path(root, e.Spec)
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("hyp: %s: committed findings unreadable (generate with hintm-exp write): %w", e.Spec.Name, err)
	}
	got := Render(e)
	if bytes.Equal(got, want) {
		return nil
	}
	gotLines := strings.Split(string(got), "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			return fmt.Errorf("hyp: %s: findings drift at %s:%d:\n  committed: %s\n  measured:  %s",
				e.Spec.Name, path, i+1, wantLines[i], gotLines[i])
		}
	}
	return fmt.Errorf("hyp: %s: findings drift: %s has %d lines, regeneration has %d",
		e.Spec.Name, path, len(wantLines), len(gotLines))
}
