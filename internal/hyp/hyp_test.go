package hyp

import (
	"strings"
	"testing"

	"hintm/internal/harness"
	"hintm/internal/sim"
)

// validSpec returns a structurally complete spec for mutation tests.
func validSpec() *Spec {
	return &Spec{
		Name:     "test-spec",
		Claim:    "a claim",
		Base:     harness.Request{Workload: "ssca2"},
		Variable: "htm",
		Levels: []Level{
			{Name: "control"},
			{Name: "treatment", Apply: func(q *harness.Request, o *harness.Options) { q.HTM = sim.HTMInfCap }},
		},
		Seeds: []uint64{1, 2},
		Metrics: []Metric{
			{Name: "cycles", Format: "%.0f", Extract: func(r *sim.Result) float64 { return float64(r.Cycles) }},
		},
		Judge: func(e *Evaluation) Outcome { return Outcome{Verdict: Supported, Reason: "ok"} },
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	breakages := []struct {
		name  string
		mut   func(*Spec)
		wants string
	}{
		{"no-name", func(s *Spec) { s.Name = "" }, "no name"},
		{"no-claim", func(s *Spec) { s.Claim = "" }, "no claim"},
		{"no-workload", func(s *Spec) { s.Base.Workload = "" }, "no workload"},
		{"no-variable", func(s *Spec) { s.Variable = "" }, "swept variable"},
		{"one-level", func(s *Spec) { s.Levels = s.Levels[:1] }, "control and at least one treatment"},
		{"no-seeds", func(s *Spec) { s.Seeds = nil }, "no seeds"},
		{"no-metrics", func(s *Spec) { s.Metrics = nil }, "no metrics"},
		{"no-judge", func(s *Spec) { s.Judge = nil }, "no judge"},
		{"unnamed-level", func(s *Spec) { s.Levels[1].Name = "" }, "has no name"},
		{"dup-level", func(s *Spec) { s.Levels[1].Name = "control" }, "duplicate level"},
		{"bad-metric", func(s *Spec) { s.Metrics[0].Format = "" }, "incomplete"},
	}
	for _, tt := range breakages {
		t.Run(tt.name, func(t *testing.T) {
			s := validSpec()
			tt.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tt.wants) {
				t.Errorf("error %q does not mention %q", err, tt.wants)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	s := validSpec()
	s.Name = "zz-registry-probe"
	Register(s)
	got, err := ByName(s.Name)
	if err != nil || got != s {
		t.Fatalf("ByName: %v, %v", got, err)
	}
	if _, err := ByName("no-such-hypothesis"); err == nil {
		t.Error("unknown name accepted")
	}
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("All not sorted: %s >= %s", all[i-1].Name, all[i].Name)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Register did not panic")
			}
		}()
		dup := validSpec()
		dup.Name = s.Name
		Register(dup)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid Register did not panic")
			}
		}()
		bad := validSpec()
		bad.Claim = ""
		Register(bad)
	}()
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		Supported:    "SUPPORTED",
		Refuted:      "REFUTED",
		Inconclusive: "INCONCLUSIVE",
		Verdict(9):   "verdict(9)",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
	if (Outcome{}).Verdict != Inconclusive {
		t.Error("zero outcome must be INCONCLUSIVE")
	}
}
