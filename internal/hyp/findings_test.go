package hyp

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"hintm/internal/harness"
	"hintm/internal/sim"
	"hintm/internal/workloads"
)

// syntheticEval builds a fully populated evaluation without the simulator:
// values[l][s] feed the metric directly.
func syntheticEval(values [][]float64, judge func(*Evaluation) Outcome) *Evaluation {
	spec := &Spec{
		Name:     "synthetic",
		Claim:    "synthetic claim with a threshold of 2x",
		Refs:     []string{"Someone et al., Somewhere 2020"},
		Base:     harness.Request{Workload: "ssca2", HTM: sim.HTMP8},
		Variable: "knob",
		Seeds:    []uint64{1, 2, 3},
		Metrics: []Metric{
			{Name: "widgets", Format: "%.1f", Extract: func(*sim.Result) float64 { return 0 }},
		},
		Judge: judge,
	}
	e := &Evaluation{Spec: spec, Scale: workloads.Small}
	for l, lv := range values {
		name := "control"
		if l > 0 {
			name = "treatment"
		}
		spec.Levels = append(spec.Levels, Level{Name: name})
		var cells []Cell
		for s, v := range lv {
			cells = append(cells, Cell{
				Level:   name,
				Seed:    spec.Seeds[s],
				Request: spec.Base,
				Values:  []float64{v},
			})
		}
		e.Cells = append(e.Cells, cells)
	}
	e.Outcome = judge(e)
	return e
}

// effectJudge mirrors how real hypotheses guard effect sizes: an undefined
// Cohen's d (zero pooled variance, the deterministic-simulator case) must
// yield INCONCLUSIVE, never a divide-by-zero verdict.
func effectJudge(e *Evaluation) Outcome {
	d, ok := e.Effect(1, 0)
	if !ok {
		return Outcome{Verdict: Inconclusive, Reason: "effect size undefined (zero variance across seeds)"}
	}
	if d > 0 {
		return Outcome{Verdict: Supported, Reason: "positive effect"}
	}
	return Outcome{Verdict: Refuted, Reason: "no positive effect"}
}

func TestZeroVarianceIsInconclusive(t *testing.T) {
	// Identical constant samples at both levels: no spread, no effect size.
	e := syntheticEval([][]float64{{5, 5, 5}, {9, 9, 9}}, effectJudge)
	if e.Outcome.Verdict != Inconclusive {
		t.Fatalf("zero-variance verdict = %v, want INCONCLUSIVE", e.Outcome.Verdict)
	}
	if got := Render(e); !bytes.Contains(got, []byte("n/a")) {
		t.Error("undefined effect not rendered as n/a")
	}
	// With spread the same judge resolves.
	e = syntheticEval([][]float64{{4, 5, 6}, {8, 9, 10}}, effectJudge)
	if e.Outcome.Verdict != Supported {
		t.Fatalf("well-defined verdict = %v, want SUPPORTED", e.Outcome.Verdict)
	}
}

func TestEvaluationAggregates(t *testing.T) {
	e := syntheticEval([][]float64{{2, 4, 6}, {8, 10, 12}}, effectJudge)
	if got := e.Mean(1, 0); got != 10 {
		t.Errorf("Mean = %v", got)
	}
	if sum := e.Summary(0, 0); sum.Median != 4 || sum.Min != 2 || sum.Max != 6 {
		t.Errorf("Summary = %+v", sum)
	}
	ratio, ok := e.GrowthVsControl(1, 0)
	if !ok || ratio != 2.5 {
		t.Errorf("GrowthVsControl = %v, %v", ratio, ok)
	}
	zero := syntheticEval([][]float64{{0, 0, 0}, {1, 2, 3}}, effectJudge)
	if _, ok := zero.GrowthVsControl(1, 0); ok {
		t.Error("zero-control growth factor should be undefined")
	}
	if _, ok := e.Effect(0, 0); ok {
		t.Error("control-vs-control effect should be undefined")
	}
}

func TestRenderDeterministicAndComplete(t *testing.T) {
	e := syntheticEval([][]float64{{4, 5, 6}, {8, 9, 10}}, effectJudge)
	a, b := Render(e), Render(e)
	if !bytes.Equal(a, b) {
		t.Fatal("Render is not deterministic")
	}
	text := string(a)
	for _, want := range []string{
		"# Hypothesis: synthetic",
		"**Claim.** synthetic claim",
		"**Verdict: SUPPORTED**",
		"Someone et al.",
		"## Method",
		"- levels: `control`, `treatment` (first = control)",
		"- seeds: 1, 2, 3",
		"2 levels × 3 seeds = 6 simulations",
		"### widgets",
		"## Reproduce",
		"-hypothesis synthetic check",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered findings missing %q", want)
		}
	}
}

func TestWriteAndCheck(t *testing.T) {
	e := syntheticEval([][]float64{{4, 5, 6}, {8, 9, 10}}, effectJudge)
	root := t.TempDir()
	if err := Check(e, root); err == nil {
		t.Fatal("Check passed with no committed findings")
	}
	if err := Write(e, root); err != nil {
		t.Fatal(err)
	}
	if err := Check(e, root); err != nil {
		t.Fatalf("freshly written findings drift: %v", err)
	}

	// Any byte change is drift, reported with the first differing line.
	path := Path(root, e.Spec)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bytes.Replace(data, []byte("SUPPORTED"), []byte("REFUTED"), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	err = Check(e, root)
	if err == nil || !strings.Contains(err.Error(), "drift") {
		t.Fatalf("tampered findings not detected: %v", err)
	}

	// Truncation is also drift (line-count case).
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Check(e, root); err == nil {
		t.Fatal("truncated findings not detected")
	}
}
