// Package hyp is the hypothesis-driven experiment framework: the repo's
// methodology for stating claims about HinTM behavior as falsifiable,
// byte-reproducible experiments rather than ad-hoc figure grids.
//
// A hypothesis is a declarative Spec: a claim sentence, a base simulation
// Request, exactly one swept variable with named levels (the first level is
// the control), a seed set, headline-metric extractors, and a programmatic
// judge that turns the measured grid into a SUPPORTED / REFUTED /
// INCONCLUSIVE verdict with effect sizes. The Engine (engine.go) executes
// the one-variable-at-a-time grid — levels × seeds, each cell one
// simulation — through the existing harness.Runner machinery, so cells are
// deterministic, memoized, and content-addressed: a warm result store
// answers every cell without simulating, which is what makes the committed
// FINDINGS.md files (findings.go) cheap to re-verify byte-for-byte.
//
// Hypotheses register themselves (Register) from packages under the
// repository's hypotheses/ tree; cmd/hintm-exp lists, runs, and checks
// them.
package hyp

import (
	"fmt"
	"sort"
	"sync"

	"hintm/internal/harness"
	"hintm/internal/sim"
)

// Level is one value of a hypothesis's swept variable. Apply mutates the
// cell's request and/or runner options relative to the base — exactly one
// conceptual variable may move across a Spec's levels (one-variable-at-a-
// time is what makes the comparison table causal rather than correlational).
type Level struct {
	// Name labels the level in tables and verdicts (e.g. "sig=256").
	Name string
	// Apply perturbs the base request/options for this level. The control
	// level's Apply may be nil (run the base unchanged).
	Apply func(req *harness.Request, opts *harness.Options)
}

// Metric is one headline metric extracted from each cell's simulation
// result.
type Metric struct {
	// Name heads the metric's comparison table (e.g. "cycles",
	// "false-conflict aborts / 1k commits").
	Name string
	// Format is the fmt verb rendering one value (e.g. "%.0f", "%.2f").
	// Fixed-precision formatting is part of the byte-reproducibility
	// contract.
	Format string
	// Extract reduces a cell's result to the metric value.
	Extract func(*sim.Result) float64
}

// Verdict is a judge's conclusion about a claim.
type Verdict int

// Verdicts. Inconclusive is deliberately the zero value: a judge that
// cannot establish anything (undefined effect sizes, no headroom to
// recover, zero event counts) reports it rather than guessing.
const (
	Inconclusive Verdict = iota
	Supported
	Refuted
)

func (v Verdict) String() string {
	switch v {
	case Supported:
		return "SUPPORTED"
	case Refuted:
		return "REFUTED"
	case Inconclusive:
		return "INCONCLUSIVE"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Outcome is a judge's verdict plus its one-line quantitative reason. The
// reason is rendered into FINDINGS.md, so it must be deterministic: build
// it from fixed-precision formatting of the evaluation's aggregates, never
// from map iteration or timing.
type Outcome struct {
	Verdict Verdict
	Reason  string
}

// Spec declares one hypothesis.
type Spec struct {
	// Name is the hypothesis's identifier and its directory name under
	// hypotheses/ (kebab-case).
	Name string
	// Claim is the falsifiable statement under test, as prose with
	// explicit thresholds — the judge encodes exactly this sentence.
	Claim string
	// Refs cites the work the claim derives from.
	Refs []string
	// Base is the control-cell request. Scale is filled in by the engine
	// from its options (-scale), so a hypothesis checks at any scale;
	// everything else is fixed across the grid except the swept variable.
	Base harness.Request
	// Variable names the single swept variable for tables and docs.
	Variable string
	// Levels are the variable's values; Levels[0] is the control every
	// effect size is measured against.
	Levels []Level
	// Seeds are the simulation seeds; every level runs once per seed.
	Seeds []uint64
	// Metrics are the per-cell headline extractors.
	Metrics []Metric
	// Judge reduces the measured evaluation to a verdict.
	Judge func(*Evaluation) Outcome
}

// Validate reports the first structural problem with the spec.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("hyp: spec has no name")
	case s.Claim == "":
		return fmt.Errorf("hyp: %s: no claim", s.Name)
	case s.Base.Workload == "":
		return fmt.Errorf("hyp: %s: base request has no workload", s.Name)
	case s.Variable == "":
		return fmt.Errorf("hyp: %s: no swept variable name", s.Name)
	case len(s.Levels) < 2:
		return fmt.Errorf("hyp: %s: needs a control and at least one treatment level, have %d", s.Name, len(s.Levels))
	case len(s.Seeds) == 0:
		return fmt.Errorf("hyp: %s: no seeds", s.Name)
	case len(s.Metrics) == 0:
		return fmt.Errorf("hyp: %s: no metrics", s.Name)
	case s.Judge == nil:
		return fmt.Errorf("hyp: %s: no judge", s.Name)
	}
	seen := map[string]bool{}
	for i, l := range s.Levels {
		if l.Name == "" {
			return fmt.Errorf("hyp: %s: level %d has no name", s.Name, i)
		}
		if seen[l.Name] {
			return fmt.Errorf("hyp: %s: duplicate level %q", s.Name, l.Name)
		}
		seen[l.Name] = true
	}
	for i, m := range s.Metrics {
		if m.Name == "" || m.Format == "" || m.Extract == nil {
			return fmt.Errorf("hyp: %s: metric %d incomplete", s.Name, i)
		}
	}
	return nil
}

// Control returns the control level (Levels[0]).
func (s *Spec) Control() Level { return s.Levels[0] }

// ---- registry -----------------------------------------------------------

var (
	regMu    sync.Mutex
	registry = map[string]*Spec{}
)

// Register records a hypothesis; the hypotheses/ packages call it from
// init. Invalid or duplicate specs panic — a malformed hypothesis is a
// build-time bug, not a runtime condition.
func Register(s *Spec) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic("hyp: duplicate hypothesis " + s.Name)
	}
	registry[s.Name] = s
}

// All returns every registered hypothesis sorted by name.
func All() []*Spec {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks a hypothesis up.
func ByName(name string) (*Spec, error) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("hyp: unknown hypothesis %q", name)
	}
	return s, nil
}
