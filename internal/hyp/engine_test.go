package hyp

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"hintm/internal/harness"
	"hintm/internal/sim"
	"hintm/internal/store"
	"hintm/internal/workloads"
)

// engineSpec is a real two-level, two-seed hypothesis over the fastest
// workload, used to exercise the engine against the actual simulator.
func engineSpec() *Spec {
	s := validSpec()
	s.Judge = func(e *Evaluation) Outcome {
		return Outcome{
			Verdict: Supported,
			Reason: fmt.Sprintf("control mean %.0f cycles, treatment mean %.0f cycles",
				e.Mean(0, 0), e.Mean(1, 0)),
		}
	}
	return s
}

func smallEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := harness.QuickOptions()
	opts.Store = st
	return &Engine{Opts: opts}
}

func TestEngineGridShapeAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	e1, err := smallEngine(t, dir).Run(context.Background(), engineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(e1.Cells) != 2 || len(e1.Cells[0]) != 2 {
		t.Fatalf("grid shape: %d levels × %d seeds", len(e1.Cells), len(e1.Cells[0]))
	}
	// Cold grid: every distinct (level, seed) cell simulates exactly once.
	if e1.SimRuns != 4 {
		t.Errorf("cold SimRuns = %d, want 4", e1.SimRuns)
	}
	for l, cells := range e1.Cells {
		for s, c := range cells {
			if c.Result == nil || len(c.Values) != 1 || c.Values[0] <= 0 {
				t.Fatalf("cell[%d][%d] unmeasured: %+v", l, s, c)
			}
			if c.Seed != engineSpec().Seeds[s] {
				t.Errorf("cell[%d][%d] seed %d", l, s, c.Seed)
			}
		}
	}
	// The treatment level's Apply must have reached the request.
	if e1.Cells[1][0].Request.HTM != sim.HTMInfCap {
		t.Error("level Apply did not reach the cell request")
	}
	if e1.Cells[0][0].Request.Scale != workloads.Small {
		t.Error("engine scale did not reach the cell request")
	}
	if e1.Outcome.Verdict != Supported || e1.Outcome.Reason == "" {
		t.Errorf("outcome: %+v", e1.Outcome)
	}

	// Warm rerun through the shared store: byte-identical findings, zero
	// simulator invocations — the property `hintm-exp check` leans on.
	e2, err := smallEngine(t, dir).Run(context.Background(), engineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if e2.SimRuns != 0 {
		t.Errorf("warm SimRuns = %d, want 0", e2.SimRuns)
	}
	if !bytes.Equal(Render(e1), Render(e2)) {
		t.Error("warm rerun rendered different findings bytes")
	}
}

func TestEngineWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []byte {
		opts := harness.QuickOptions()
		opts.Workers = workers
		ev, err := (&Engine{Opts: opts}).Run(context.Background(), engineSpec())
		if err != nil {
			t.Fatal(err)
		}
		return Render(ev)
	}
	if !bytes.Equal(run(1), run(4)) {
		t.Error("findings depend on worker count")
	}
}

func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Engine{Opts: harness.QuickOptions()}).Run(ctx, engineSpec()); err == nil {
		t.Error("cancelled grid returned no error")
	}
}

func TestEngineRejectsBadSpecAndWorkload(t *testing.T) {
	bad := engineSpec()
	bad.Seeds = nil
	if _, err := (&Engine{Opts: harness.QuickOptions()}).Run(context.Background(), bad); err == nil {
		t.Error("invalid spec accepted")
	}
	ghost := engineSpec()
	ghost.Base.Workload = "no-such-workload"
	if _, err := (&Engine{Opts: harness.QuickOptions()}).Run(context.Background(), ghost); err == nil {
		t.Error("unknown workload accepted")
	}
}
